#!/usr/bin/env bash
# Trace one quick figure run and print the offline analyzer's report —
# the local twin of CI's "Analyze fig13 trace" step.
#
#   usage: trace-report.sh [figure] [jobs] [outdir]
#          (defaults: fig13 2 lrd-trace-<figure>)
#
# Leaves <outdir>/<figure>-trace.json (load it in ui.perfetto.dev) and
# <outdir>/<figure>-report.json (stable lrd-trace-report/1 JSON, diff it
# against an older run's to chase a regression) next to the text report
# on stdout.
set -euo pipefail

cd "$(dirname "$0")/.."

figure="${1:-fig13}"
jobs="${2:-2}"
outdir="${3:-lrd-trace-$figure}"

dune build bin/lrd_cli.exe
lrd=_build/default/bin/lrd_cli.exe

mkdir -p "$outdir"
trace="$outdir/$figure-trace.json"

echo "trace-report: tracing quick $figure (-j $jobs)" >&2
"$lrd" experiment "$figure" --quick -j "$jobs" --trace "$trace" > /dev/null

"$lrd" trace report "$trace" --json > "$outdir/$figure-report.json"
"$lrd" trace report "$trace"
