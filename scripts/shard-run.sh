#!/usr/bin/env bash
# Shard-equivalence gate: launch n local shard workers for one figure
# (quick grids), wait for them, merge the shard set, and diff the merged
# output against a whole (unsharded) run of the same figure.  CI runs
# this script, so the local and CI paths are identical.
#
#   usage: shard-run.sh [figure] [count] [outdir]
#          (defaults: fig4 2 lrd-shards-<figure>)
#
# Exit codes:
#   0  merged results and solver counters byte-identical to the whole run
#   1  a shard worker failed (its stderr is replayed)
#   2  the merge refused the shard set (malformed/mismatched files), or
#      the metrics diff found a non-identical solver counter
#   *  cmp's own exit code on a results byte difference
set -euo pipefail

cd "$(dirname "$0")/.."

figure="${1:-fig4}"
count="${2:-2}"
outdir="${3:-lrd-shards-$figure}"

dune build bin/lrd_cli.exe
lrd=_build/default/bin/lrd_cli.exe

rm -rf "$outdir"
mkdir -p "$outdir"

echo "shard-run: whole $figure run (baseline)" >&2
"$lrd" experiment "$figure" --quick \
  --results-out "$outdir/whole.results.txt" \
  --metrics json --metrics-out "$outdir/whole.metrics.json" > /dev/null

echo "shard-run: launching $count workers" >&2
pids=()
for k in $(seq 1 "$count"); do
  "$lrd" experiment "$figure" --quick --shard "$k/$count" --out "$outdir" \
    > /dev/null 2> "$outdir/worker-$k.stderr" &
  pids+=("$!")
done
fail=0
for i in "${!pids[@]}"; do
  if ! wait "${pids[$i]}"; then
    echo "shard-run: worker $((i + 1))/$count failed:" >&2
    cat "$outdir/worker-$((i + 1)).stderr" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

echo "shard-run: merging $count shards" >&2
"$lrd" experiment "$figure" --quick --merge "$outdir" > /dev/null

# The gate proper: merged results must be byte-identical to the whole
# run, and every solver counter must match exactly.  On a mismatch the
# diff report lands on stdout before the nonzero exit.
if ! cmp "$outdir/whole.results.txt" "$outdir/merged.results.txt"; then
  diff "$outdir/whole.results.txt" "$outdir/merged.results.txt" || true
  exit 1
fi
"$lrd" metrics diff --exact --filter solver/ \
  "$outdir/whole.metrics.json" "$outdir/merged.metrics.json"
echo "shard-run: $figure merged output byte-identical across $count shards"
