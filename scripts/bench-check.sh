#!/usr/bin/env bash
# Run the micro-benchmark suite and diff it against the committed
# BENCH_micro.json baseline with `lrd metrics diff`.  Exit codes:
#   0  no >2x regressions (kernels missing from the current run — e.g.
#      an --only-filtered sweep — warn but do not fail)
#   2  baseline missing/malformed, or unreadable diff input — fatal
#   3  at least one benchmark regressed >2x — CI annotates but does not
#      fail on this (shared runners are too noisy for a hard perf gate)
# The diff report lands on stdout (CI captures it into the step
# summary); benchmark progress goes to stderr.  Extra arguments are
# passed to the bench binary (e.g. --quick, --only kernel/fft).
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="BENCH_micro.json"
if [ ! -r "$baseline" ]; then
  echo "bench-check: baseline $baseline is missing or unreadable" >&2
  exit 2
fi
# Cheap structural sanity check before spending minutes benchmarking:
# the baseline must contain at least one row in the emit_json format.
if ! grep -q '"name":.*"ns_per_run":' "$baseline"; then
  echo "bench-check: $baseline has no parseable benchmark rows (malformed JSON?)" >&2
  exit 2
fi

# BENCH_CURRENT_JSON lets CI keep the freshly measured run around for
# follow-up diffs (the hard kernel-only gate) without re-benchmarking.
if [ -n "${BENCH_CURRENT_JSON:-}" ]; then
  current="$BENCH_CURRENT_JSON"
else
  current="$(mktemp -t bench-check-current.XXXXXX.json)"
  trap 'rm -f "$current"' EXIT
fi

# The bench table goes to stderr so stdout carries only the diff report.
dune exec bench/main.exe -- --micro --json "$current" "$@" 1>&2

# The diff engine owns the comparison policy (2x ratio, tolerate
# missing kernels); its exit code passes through untouched.
dune exec bin/lrd_cli.exe -- metrics diff "$baseline" "$current" --threshold 2
