#!/usr/bin/env bash
# Run the full micro-benchmark suite and compare against the committed
# BENCH_micro.json baseline.  Exit codes:
#   0  no >2x regressions
#   2  baseline missing or malformed (no parseable rows) — fatal
#   3  at least one benchmark regressed >2x — CI annotates but does not
#      fail on this (shared runners are too noisy for a hard perf gate)
# Equivalent to `dune build @bench-check` (which accepts 0 and 3).
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="BENCH_micro.json"
if [ ! -r "$baseline" ]; then
  echo "bench-check: baseline $baseline is missing or unreadable" >&2
  exit 2
fi
# Cheap structural sanity check before spending minutes benchmarking:
# the baseline must contain at least one row in the emit_json format.
if ! grep -q '"name":.*"ns_per_run":' "$baseline"; then
  echo "bench-check: $baseline has no parseable benchmark rows (malformed JSON?)" >&2
  exit 2
fi

# The bench binary exits 3 on regression and 2 on a malformed baseline;
# exec passes its exit code through untouched.
exec dune exec bench/main.exe -- --micro --check "$baseline" "$@"
