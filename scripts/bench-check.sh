#!/bin/sh
# Run the full micro-benchmark suite and compare against the committed
# BENCH_micro.json baseline.  Regressions >2x print warnings but never
# fail the script: shared CI runners are too noisy for a hard perf gate.
# Equivalent to `dune build @bench-check`.
set -eu
cd "$(dirname "$0")/.."
exec dune exec bench/main.exe -- --micro --check BENCH_micro.json "$@"
