(* Benchmark harness.

   Default mode regenerates the paper's entire evaluation — every figure
   (2 through 14) plus the ablations — printing each as an ASCII table;
   this is the output recorded in bench_output.txt and compared against
   the paper in EXPERIMENTS.md.

   [--micro] instead runs Bechamel micro-benchmarks: one Test.make per
   figure (timing that figure's representative computation cell) and a
   set of kernel benchmarks (FFT, convolution, solver, generators), so
   the paper's "runtime below a second on a workstation" claim is
   checkable.

   [--scaling] times full figure sweeps (fig12 by default; --only picks
   from fig4/fig12/fig13) sequentially and on domain pools of
   increasing size, reporting wall-clock seconds and speedup relative
   to the sequential run; [--json FILE] writes the rows (the
   BENCH_scaling.json trajectory).  The heap is compacted before every
   timed cell so one pool size's GC debt never lands in another's
   measurement.

   Options:
     --quick       small traces and coarse grids (used by CI); in micro
                   mode also shrinks the Bechamel quota for smoke runs
     --only IDS    comma-separated experiment ids (e.g. fig4,fig7)
     --jobs N      parallelism of the figure sweeps (1 sequential,
                   0 auto, N >= 2 domains); figures mode only
     --micro       run the Bechamel suite instead of the figures
     --scaling     run the domain-scaling benchmark instead
     --json FILE   in micro/scaling mode, also write results as JSON
                   (the BENCH_micro.json / BENCH_scaling.json perf
                   trajectories compared across PRs) *)

open Lrd_experiments

let quick = ref false
let only = ref []
let jobs = ref 1
let micro = ref false
let scaling = ref false
let json_file = ref ""
let check_file = ref ""
let metrics_file = ref ""
let metrics_interval = ref 0.0
let trace_file = ref ""
let manifest_file = ref ""

let usage =
  "main.exe [--quick] [--only fig4,fig7] [--jobs N] [--micro] [--scaling] \
   [--json FILE] [--check FILE] [--metrics FILE] [--trace FILE] \
   [--manifest FILE]"

let spec =
  [
    ("--quick", Arg.Set quick, " small traces and coarse grids");
    ( "--only",
      (* Repeated flags accumulate, tokens are whitespace-trimmed, and
         empty entries (trailing commas) are dropped, so
         [--only kernel/rfft, --only "fig12, fig13"] composes. *)
      Arg.String
        (fun s ->
          let ids =
            List.filter_map
              (fun id ->
                let id = String.trim id in
                if id = "" then None else Some id)
              (String.split_on_char ',' s)
          in
          only := !only @ ids),
      "IDS comma-separated experiment ids (micro mode: substring filter); \
       may be repeated" );
    ( "--jobs",
      Arg.Set_int jobs,
      "N parallelism of the figure sweeps (1 = sequential, 0 = auto)" );
    ("--micro", Arg.Set micro, " run Bechamel micro-benchmarks");
    ("--scaling", Arg.Set scaling, " run the domain-scaling benchmark");
    ( "--json",
      Arg.Set_string json_file,
      "FILE write micro/scaling results as JSON" );
    ( "--check",
      Arg.Set_string check_file,
      "FILE in micro mode, compare against a committed BENCH_micro.json; \
       warnings go to stderr and the exit code is 3 when any benchmark \
       regressed >2x (0 when clean)" );
    ( "--metrics",
      Arg.Set_string metrics_file,
      "FILE enable the Obs telemetry layer for the whole run and write \
       its JSON snapshot (solver iteration counts, pool scheduling, \
       cache traffic) to FILE at exit" );
    ( "--metrics-interval",
      Arg.Set_float metrics_interval,
      "SECS enable telemetry and stream a timestamped snapshot line \
       (JSONL) every SECS seconds to a ticker file (--metrics FILE minus \
       extension + .ticker.jsonl, else bench-metrics.ticker.jsonl); one \
       line is also written at start and at exit" );
    ( "--trace",
      Arg.Set_string trace_file,
      "FILE enable timeline tracing and write the merged event journal \
       as Chrome trace-event JSON (open in Perfetto or chrome://tracing) \
       to FILE; independent of --metrics, both can be given" );
    ( "--trace-out",
      Arg.Set_string trace_file,
      "FILE alias for --trace (the CLI's spelling of the same flag)" );
    ( "--manifest",
      Arg.Set_string manifest_file,
      "FILE write a run provenance manifest (parameters, seed, git rev, \
       OCaml version, wall time, final metrics snapshot) to FILE" );
  ]

(* When several modes run in one invocation (e.g. --micro --scaling),
   each mode's output files get the mode name spliced in before the
   extension, and the telemetry layers are reset between modes so no
   per-mode snapshot accumulates another mode's counts. *)
let mode_file ~multi mode file =
  if file = "" || not multi then file
  else Filename.remove_extension file ^ "." ^ mode ^ Filename.extension file

(* ------------------------------------------------------------------ *)
(* Bechamel micro suite.

   Each entry is a (name, test) pair so results print in this
   deterministic definition order (a Hashtbl.iter order would reshuffle
   between runs and make diffs of the output useless). *)

let micro_tests ctx =
  let open Bechamel in
  let mk name f = (name, Test.make ~name (Staged.stage f)) in
  let rng () = Lrd_rng.Rng.create ~seed:4242L in
  (* Shared ingredients, built once outside the timed closures. *)
  let mtv_model = Data.mtv_model ctx ~cutoff:10.0 in
  let bc_model = Data.bc_model ctx ~cutoff:10.0 in
  let mtv_trace = Data.mtv ctx in
  let bc_trace = Data.bellcore ctx in
  let mtv_c =
    Lrd_trace.Trace.service_rate_for_utilization mtv_trace
      ~utilization:Data.mtv_utilization
  in
  let solve ?params model ~utilization ~buffer_seconds () =
    ignore
      (Lrd_core.Solver.solve_utilization ?params model ~utilization
         ~buffer_seconds)
  in
  let sim trace ~utilization ~buffer_seconds =
    let c =
      Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
    in
    let s =
      Lrd_fluidsim.Queue_sim.make ~service_rate:c
        ~buffer:(buffer_seconds *. c) ()
    in
    ignore (Lrd_fluidsim.Queue_sim.run_trace s trace)
  in
  let figure_tests =
    [
      mk "fig2/snapshots-m100" (fun () ->
          ignore
            (Lrd_core.Solver.iterate_snapshots mtv_model ~service_rate:mtv_c
               ~buffer:(1.0 *. mtv_c) ~bins:100 ~at:[ 5; 10; 30 ]));
      mk "fig3/histogram-50bin" (fun () ->
          ignore (Lrd_trace.Histogram.marginal_of_trace ~bins:50 mtv_trace));
      mk "fig4/solve-mtv-cell"
        (solve mtv_model ~utilization:Data.mtv_utilization ~buffer_seconds:0.5);
      mk "fig5/solve-bc-cell"
        (solve bc_model ~utilization:Data.bc_utilization ~buffer_seconds:0.5);
      mk "fig6/acf-512" (fun () ->
          ignore
            (Lrd_stats.Autocorr.autocorrelation mtv_trace.Lrd_trace.Trace.rates
               ~max_lag:512));
      mk "fig7/shuffle-sim-mtv" (fun () ->
          let shuffled =
            Lrd_trace.Shuffle.external_shuffle (rng ()) mtv_trace ~block:300
          in
          sim shuffled ~utilization:Data.mtv_utilization ~buffer_seconds:0.1);
      mk "fig8/shuffle-sim-bc" (fun () ->
          let shuffled =
            Lrd_trace.Shuffle.external_shuffle (rng ()) bc_trace ~block:300
          in
          sim shuffled ~utilization:Data.bc_utilization ~buffer_seconds:0.1);
      mk "fig9/solve-equalized" (fun () ->
          let model =
            Lrd_core.Model.of_hurst ~marginal:(Data.bc_marginal ctx) ~hurst:0.9
              ~theta:0.020 ~cutoff:1.0
          in
          solve model ~utilization:(2.0 /. 3.0) ~buffer_seconds:1.0 ());
      mk "fig10/solve-scaled" (fun () ->
          let marginal =
            Lrd_dist.Marginal.scale ~clamp:true (Data.mtv_marginal ctx)
              ~factor:0.5
          in
          let model =
            Lrd_core.Model.of_hurst ~marginal ~hurst:0.75
              ~theta:(Data.mtv_theta ctx) ~cutoff:Float.infinity
          in
          solve model ~utilization:Data.mtv_utilization ~buffer_seconds:1.0 ());
      mk "fig11/superpose-5" (fun () ->
          ignore (Lrd_dist.Marginal.superpose (Data.mtv_marginal ctx) ~n:5));
      mk "fig12/solve-deep-buffer"
        (solve mtv_model ~utilization:Data.mtv_utilization ~buffer_seconds:5.0);
      mk "fig13/solve-deep-buffer-bc"
        (solve bc_model ~utilization:Data.bc_utilization ~buffer_seconds:5.0);
      mk "fig14/horizon" (fun () ->
          let series =
            Array.init 20 (fun i ->
                let tc = 0.1 *. (1.5 ** float_of_int i) in
                (tc, 1e-3 *. (1.0 -. exp (-.tc))))
          in
          ignore (Lrd_core.Horizon.detect series);
          ignore
            (Lrd_core.Horizon.estimate ~buffer:10.0 ~mean_epoch:0.08
               ~epoch_std:0.3 ~rate_std:1.7 ()));
    ]
  in
  let re = Array.init 4096 (fun i -> sin (float_of_int i)) in
  let kernel = Array.init 2049 (fun i -> float_of_int (i mod 7)) in
  let signal = Array.init 1025 (fun i -> float_of_int (i mod 5)) in
  let plan =
    Lrd_numerics.Convolution.make_plan ~kernel ~max_signal:1025
  in
  let exp_model =
    Lrd_core.Model.create
      ~marginal:(Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ])
      ~interarrival:(Lrd_dist.Interarrival.exponential ~mean:1.0)
  in
  let dual_plan =
    Lrd_numerics.Convolution.make_dual_plan ~kernel_a:kernel ~kernel_b:kernel
      ~max_signal:1025
  in
  let conv_dst = Array.make (1025 + 2049 - 1) 0.0 in
  let conv_dst2 = Array.make (1025 + 2049 - 1) 0.0 in
  (* Real-engine counterparts: the half-spectrum transform alone, the
     solver-shaped circular execute over Bigarray state, and a
     non-power-of-two size that a radix-3 grid serves without padding
     to 4096. *)
  let rfft_plan = Lrd_numerics.Fft.Real.make_plan 4096 in
  let rfft_spec_re = Array.make 2049 0.0 in
  let rfft_spec_im = Array.make 2049 0.0 in
  let conv_big_signal =
    let v =
      Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout 1025
    in
    for i = 0 to 1024 do v.{i} <- float_of_int (i mod 5) done;
    v
  in
  let conv_big_dst =
    let n = Lrd_numerics.Convolution.real_transform_size plan in
    Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n
  in
  let kernel1500 = Array.init 1500 (fun i -> float_of_int (i mod 7)) in
  let signal1500 = Array.init 1500 (fun i -> float_of_int (i mod 5)) in
  let plan1500 =
    Lrd_numerics.Convolution.make_plan ~kernel:kernel1500 ~max_signal:1500
  in
  let conv_dst1500 = Array.make (1500 + 1500 - 1) 0.0 in
  let kernel_tests =
    [
      mk "kernel/fft-4096" (fun () ->
          let r = Array.copy re and im = Array.make 4096 0.0 in
          Lrd_numerics.Fft.forward ~re:r ~im);
      mk "kernel/conv-direct-1k" (fun () ->
          ignore (Lrd_numerics.Convolution.direct signal kernel));
      mk "kernel/conv-fft-plan-1k" (fun () ->
          Lrd_numerics.Convolution.execute plan signal ~dst:conv_dst);
      mk "kernel/conv-dual-1k" (fun () ->
          Lrd_numerics.Convolution.execute_dual dual_plan ~a:signal ~b:signal
            ~dst_a:conv_dst ~dst_b:conv_dst2);
      mk "kernel/rfft-4096" (fun () ->
          Lrd_numerics.Fft.Real.forward_ip rfft_plan ~signal:re ~len:4096
            ~spec_re:rfft_spec_re ~spec_im:rfft_spec_im);
      mk "kernel/conv-real-1k" (fun () ->
          Lrd_numerics.Convolution.execute_real_circular plan
            ~signal:conv_big_signal ~len:1025 ~dst:conv_big_dst);
      mk "kernel/conv-real-1500" (fun () ->
          Lrd_numerics.Convolution.execute plan1500 signal1500
            ~dst:conv_dst1500);
      mk "kernel/solver-onoff-exp" (fun () ->
          ignore (Lrd_core.Solver.solve exp_model ~service_rate:1.25 ~buffer:2.0));
      mk "kernel/fgn-16k" (fun () ->
          ignore (Lrd_trace.Fgn.davies_harte (rng ()) ~hurst:0.8 ~n:16_384));
      mk "kernel/video-trace-16k" (fun () ->
          ignore (Lrd_trace.Video.generate_short (rng ()) ~n:16_384));
      mk "kernel/queue-sim-100k-slots" (fun () ->
          let r = rng () in
          let rates =
            Array.init 100_000 (fun _ -> Lrd_rng.Rng.float r *. 2.0)
          in
          let trace = Lrd_trace.Trace.create ~rates ~slot:0.01 in
          sim trace ~utilization:0.8 ~buffer_seconds:0.5);
      mk "kernel/erf-inv" (fun () ->
          ignore (Lrd_numerics.Special.erf_inv 0.123));
      mk "kernel/fgn-plan-16k"
        (* Counterpart of kernel/fgn-16k with the eigenvalue setup hoisted
           into a plan: one FFT per draw into a caller-held buffer. *)
        (let plan = Lrd_trace.Fgn.Plan.make ~hurst:0.8 ~n:16_384 in
         let dst = Array.make 16_384 0.0 in
         let r = rng () in
         fun () -> Lrd_trace.Fgn.Plan.draw plan r ~dst);
      mk "kernel/whittle-16k"
        (let data = Lrd_trace.Fgn.davies_harte (rng ()) ~hurst:0.8 ~n:16_384 in
         fun () -> ignore (Lrd_stats.Whittle.local_whittle data));
      mk "kernel/whittle-plan-16k"
        (let data = Lrd_trace.Fgn.davies_harte (rng ()) ~hurst:0.8 ~n:16_384 in
         let ws = Lrd_stats.Whittle.Workspace.make ~n:16_384 in
         fun () -> ignore (Lrd_stats.Whittle.Workspace.local_whittle ws data));
      mk "kernel/acf-plan-512"
        (* Counterpart of fig6/acf-512 through the planned workspace. *)
        (let rates = mtv_trace.Lrd_trace.Trace.rates in
         let ws =
           Lrd_stats.Autocorr.Workspace.make ~n:(Array.length rates)
         in
         fun () ->
           ignore
             (Lrd_stats.Autocorr.Workspace.autocorrelation ws rates
                ~max_lag:512));
      mk "kernel/mginf-trace-16k" (fun () ->
          ignore (Lrd_trace.Mginf.generate (rng ()) ~slots:16_384 ~slot:0.02));
      mk "kernel/solve-detailed-occupancy" (fun () ->
          ignore
            (Lrd_core.Solver.solve_detailed exp_model ~service_rate:1.25
               ~buffer:2.0));
      mk "kernel/ams-spectrum-n12" (fun () ->
          let sys =
            Lrd_baselines.Ams.create ~sources:12 ~on_rate:1.0 ~lambda:1.0
              ~mu:2.0 ~service_rate:5.3
          in
          ignore (Lrd_baselines.Ams.overflow_probability sys ~level:2.0));
      (* Transform-domain superposition vs the brute N-fold convolution
         ([Marginal.superpose]).  The brute baseline is measured at
         N = 100 only — it is linear in N (N - 1 convolutions onto a
         fixed support), so its 1e5 cost is the 1e2 number x1000; at
         that size the exact engine's O(log N) spectrum squarings win
         by three orders of magnitude (see EXPERIMENTS.md).  CI's
         kernel gate watches the exact/edgeworth rows. *)
      mk "superpose/brute-1e2" (fun () ->
          ignore (Lrd_dist.Marginal.superpose (Data.mtv_marginal ctx) ~n:100));
      mk "superpose/exact-1e3" (fun () ->
          ignore
            (Lrd_core.Superpose.superpose ~method_:Lrd_core.Superpose.Exact
               (Data.mtv_marginal ctx) ~n:1000));
      mk "superpose/exact-1e5" (fun () ->
          ignore
            (Lrd_core.Superpose.superpose ~method_:Lrd_core.Superpose.Exact
               (Data.mtv_marginal ctx) ~n:100_000));
      mk "superpose/edgeworth-1e5" (fun () ->
          ignore
            (Lrd_core.Superpose.superpose
               ~method_:Lrd_core.Superpose.Edgeworth (Data.mtv_marginal ctx)
               ~n:100_000));
      mk "superpose/hetero-1e4" (fun () ->
          ignore
            (Lrd_core.Superpose.aggregate
               (Fig11_scale.population ~n:10_000)));
    ]
  in
  (* Whole-surface sweep pair: the fig12 grid solved cold cell by cell
     (the classic sweep) versus through the gap-driven scheduler with
     neighbour warm-starts, at the same uniform 20% gap target.  CI's
     perf gate watches this pair — the scheduler must stay well ahead
     of the uniform baseline (see EXPERIMENTS.md).  Each variant owns
     its model cache so workload construction amortizes identically on
     both sides and the timed difference is solver iterations. *)
  let sweep_quick = Data.quick ctx in
  let sweep_buffers = Sweep.buffers ~quick:sweep_quick ~max_seconds:5.0 () in
  let sweep_scalings = Sweep.scalings ~quick:sweep_quick () in
  let sweep_params = Data.solver_params ctx in
  let sweep_marginal = Data.mtv_marginal ctx in
  let sweep_theta = Data.mtv_theta ctx in
  let sweep_model cache a =
    Lrd_core.Workload.Cache.model cache ~key:(Sweep.cell_key a) (fun () ->
        let marginal =
          Lrd_dist.Marginal.scale ~clamp:true sweep_marginal ~factor:a
        in
        Lrd_core.Model.of_hurst ~marginal ~hurst:Data.mtv_hurst
          ~theta:sweep_theta ~cutoff:Float.infinity)
  in
  let sweep_bc_marginal = Data.bc_marginal ctx in
  let sweep_bc_theta = Data.bc_theta ctx in
  let sweep_bc_model cache a =
    Lrd_core.Workload.Cache.model cache ~key:(Sweep.cell_key a) (fun () ->
        let marginal =
          Lrd_dist.Marginal.scale ~clamp:true sweep_bc_marginal ~factor:a
        in
        Lrd_core.Model.of_hurst ~marginal ~hurst:Data.bc_hurst
          ~theta:sweep_bc_theta ~cutoff:Float.infinity)
  in
  let sweep_pair name model_of utilization =
    let uniform_cache = Lrd_core.Workload.Cache.create () in
    let sched_cache = Lrd_core.Workload.Cache.create () in
    [
      mk (Printf.sprintf "sweep/%s-uniform" name) (fun () ->
          ignore
            (Sweep.surface ~xs:sweep_scalings ~ys:sweep_buffers
               ~f:(fun ~x:a ~y:buffer_seconds ->
                 (Lrd_core.Solver.solve_utilization ~params:sweep_params
                    ~cache:(uniform_cache, Sweep.cell_key a)
                    (model_of uniform_cache a) ~utilization ~buffer_seconds)
                   .Lrd_core.Solver.loss)
               ()));
      mk (Printf.sprintf "sweep/%s-scheduled" name) (fun () ->
          ignore
            (Sweep.scheduled_surface ~xs:sweep_scalings ~ys:sweep_buffers
               ~state:(fun a buffer_seconds ->
                 Lrd_core.Solver.State.create_utilization
                   ~params:sweep_params
                   ~cache:(sched_cache, Sweep.cell_key a)
                   (model_of sched_cache a) ~utilization ~buffer_seconds)
               ()));
    ]
  in
  figure_tests @ kernel_tests
  @ sweep_pair "fig12" sweep_model Data.mtv_utilization
  @ sweep_pair "fig13" sweep_bc_model Data.bc_utilization

let emit_json oc rows =
  let last = List.length rows - 1 in
  output_string oc "[\n";
  List.iteri
    (fun i (name, ns, samples) ->
      (* A failed estimate must render as null, not a literal "nan" (which
         is not JSON and would poison every downstream parse of the file). *)
      let ns_str =
        if Float.is_finite ns then Printf.sprintf "%.1f" ns else "null"
      in
      Printf.fprintf oc "  {\"name\": %S, \"ns_per_run\": %s, \"samples\": %d}%s\n"
        name ns_str samples
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

(* Parse a committed BENCH_micro.json (our own emit_json format: one
   object per line).  Lines that do not match are skipped, so a
   hand-edited or truncated baseline degrades to fewer comparisons
   instead of a crash. *)
let read_baseline file =
  let ic = open_in file in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         try
           Some
             (Scanf.sscanf line " {\"name\": %S, \"ns_per_run\": %f"
                (fun name ns -> (name, ns)))
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
       with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(* Soft regression gate: CI runners (often 1 core, noisy neighbours)
   are far too unstable for a hard perf failure, so the diagnostics go
   to stderr (keeping stdout parseable) and the caller exits with the
   distinct code 3 instead of a generic failure.  CI treats 3 as
   "annotate, don't fail"; the 2x threshold is wide enough that only a
   real algorithmic regression (or a new unplanned allocation hotspot)
   trips it.  Returns the number of regressed benchmarks.  An empty or
   malformed baseline (zero parseable rows) is an error: a silently
   vacuous comparison would let CI report success while checking
   nothing. *)
let check_against_baseline ~file rows =
  let baseline = read_baseline file in
  if baseline = [] then begin
    Printf.eprintf
      "check: ERROR no parseable baseline rows in %s (malformed or empty \
       JSON?)\n%!"
      file;
    exit 2
  end;
  let tolerance = 2.0 in
  let regressions = ref 0 in
  List.iter
    (fun (name, ns, _) ->
      match List.assoc_opt name baseline with
      | None ->
          Printf.eprintf "check: %s has no baseline in %s (new benchmark)\n%!"
            name file
      | Some base_ns ->
          if Float.is_nan ns then
            Printf.eprintf "check: %s produced no estimate this run\n%!" name
          else if base_ns > 0.0 && ns > tolerance *. base_ns then begin
            incr regressions;
            Printf.eprintf
              "check: WARNING %s regressed %.1fx (%.0f ns/run vs %.0f \
               baseline)\n%!"
              name (ns /. base_ns) ns base_ns
          end)
    rows;
  if !regressions = 0 then
    Printf.eprintf "check: no >%.0fx regressions against %s (%d baselines)\n%!"
      tolerance file (List.length baseline)
  else
    Printf.eprintf
      "check: %d benchmark(s) above the %.0fx threshold (exit code 3; rerun \
       on an idle machine before trusting the numbers)\n%!"
      !regressions tolerance;
  !regressions

(* --only filters the micro suite and the scaling figure list
   (substring match, so "--only kernel/whittle" selects the
   planned/one-shot pair and "--only fig13" picks the Bellcore
   surface). *)
let matches_token name id =
  let idl = String.length id and nl = String.length name in
  let rec at i = i + idl <= nl && (String.sub name i idl = id || at (i + 1)) in
  at 0

let selected name = !only = [] || List.exists (matches_token name) !only

(* --only tokens that match nothing are reported instead of silently
   dropped: a typo'd kernel name that empties the whole suite is a hard
   error (exit 2, listing what exists), a token that merely adds nothing
   while others still match is a stderr warning. *)
let check_only_coverage ~mode ~names ~selected_any =
  if !only <> [] then begin
    let unmatched =
      List.filter
        (fun id -> not (List.exists (fun n -> matches_token n id) names))
        !only
    in
    if not selected_any then begin
      Printf.eprintf
        "%s: ERROR --only %s matched no benchmark; available names:\n" mode
        (String.concat "," !only);
      List.iter (Printf.eprintf "  %s\n") names;
      Printf.eprintf "%!";
      exit 2
    end
    else
      List.iter
        (fun id ->
          Printf.eprintf "%s: warning --only token %S matched nothing\n%!"
            mode id)
        unmatched
  end

let run_micro ~json ctx =
  let open Bechamel in
  let open Toolkit in
  (* --quick is the CI smoke configuration: a tiny quota that still
     exercises every benchmarked code path once or twice.  The sample
     floor is the minimum the OLS estimator needs for a usable fit; the
     slow solver cells (fig12/fig13 deep buffers) miss it on the first
     quota, so measurement retries with a larger time budget instead of
     silently reporting a 3-sample estimate. *)
  let base_quota = if !quick then 0.05 else 0.5 in
  let limit = if !quick then 20 else 200 in
  let min_samples = if !quick then 3 else 10 in
  let cfg quota = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  (* One analysis configuration for the whole list (it is test
     independent; rebuilding it per test was pure overhead). *)
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let all_tests = micro_tests ctx in
  let tests = List.filter (fun (name, _) -> selected name) all_tests in
  check_only_coverage ~mode:"micro" ~names:(List.map fst all_tests)
    ~selected_any:(tests <> []);
  (* Open the JSON sink up front so a bad path fails before the suite
     runs, not after minutes of benchmarking. *)
  let json_oc = if json = "" then None else Some (open_out json) in
  Printf.printf "%-32s %14s %10s\n%!" "benchmark" "ns/run" "samples";
  let measure name test quota =
    (* Start every benchmark from a settled heap.  Without this, an
       allocation-heavy benchmark leaves major-GC debt that the NEXT
       benchmark pays inside its timed region: the planned-whittle cell
       read ~30% slower than its one-shot twin purely because it ran
       right after it (see EXPERIMENTS.md), and the skew moved with the
       suite order rather than the code. *)
    Gc.compact ();
    let results = Benchmark.all (cfg quota) Instance.[ monotonic_clock ] test in
    let estimates = Analyze.all ols Instance.monotonic_clock results in
    let ns =
      match Hashtbl.find_opt estimates name with
      | Some ols_result -> (
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | _ -> Float.nan)
      | None -> Float.nan
    in
    let samples =
      match Hashtbl.find_opt results name with
      | Some b -> b.Benchmark.stats.Benchmark.samples
      | None -> 0
    in
    (ns, samples)
  in
  let rows =
    List.map
      (fun (name, test) ->
        let rec go quota retries =
          let ns, samples = measure name test quota in
          if samples >= min_samples || retries = 0 then (ns, samples)
          else go (quota *. 4.0) (retries - 1)
        in
        let ns, samples = go base_quota 3 in
        (* Flush per test so a partial table survives interrupts. *)
        Printf.printf "%-32s %14.0f %10d\n%!" name ns samples;
        (name, ns, samples))
      tests
  in
  (* Anything still under the floor after three quota escalations (64x
     the base time budget) is genuinely too slow for this harness; flag it
     rather than let a noisy ns/run pass as a measurement. *)
  List.iter
    (fun (name, _, samples) ->
      if samples < min_samples then
        Printf.printf
          "warning: %s collected only %d samples (< %d) even after quota \
           escalation; its ns/run is noisy - compare across runs with \
           care\n%!"
          name samples min_samples)
    rows;
  let regressions =
    if !check_file <> "" then check_against_baseline ~file:!check_file rows
    else 0
  in
  (match json_oc with Some oc -> emit_json oc rows | None -> ());
  regressions

(* ------------------------------------------------------------------ *)
(* Domain-scaling benchmark: one full figure sweep per pool size.

   fig12 is the representative surface (35 solver cells at full scale,
   deep buffers, cross-cell workload cache): big enough that the pool's
   scheduling overhead is invisible and every cell is pure CPU.  Each
   run uses a fresh context at the given parallelism, with the shared
   trace ingredients forced outside the timed region so only the sweep
   itself is measured. *)

(* Figures a scaling run can time; --only (substring match) picks a
   subset, the default is the classic fig12 trajectory so the committed
   BENCH_scaling.json stays comparable across runs. *)
let scaling_figures =
  [
    ("fig4", fun ctx -> ignore (Fig04.compute ctx));
    ("fig12", fun ctx -> ignore (Fig12.compute ctx));
    ("fig13", fun ctx -> ignore (Fig13.compute ctx));
    ("fig11_scale", fun ctx -> ignore (Fig11_scale.compute ctx));
  ]

let time_figure ?shard ~jobs run =
  let ctx = Data.create ?shard ~jobs ~quick:!quick () in
  Fun.protect
    ~finally:(fun () -> Data.teardown ctx)
    (fun () ->
      ignore (Data.mtv_marginal ctx);
      ignore (Data.mtv_theta ctx);
      ignore (Data.bc_marginal ctx);
      ignore (Data.bc_theta ctx);
      (* Start every cell from a settled heap, for the same reason the
         micro suite compacts before each benchmark: without this the
         first pool sizes' major-GC debt is paid inside a later cell's
         timed region and the "speedup" column moves with run order. *)
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      run ctx;
      Unix.gettimeofday () -. t0)

(* One full figure computed as [shards] row-slices, sequentially in this
   process (jobs = 1 each).  The measured time is the summed per-shard
   work, so the interesting number is the partition overhead against the
   unsharded jobs=1 baseline — near 1.0x, since the row slicing keeps
   every warm-start chain intact — not parallel speedup; cross-process
   wall-clock scaling belongs to the CLI driver ([lrd experiment
   --shards]). *)
let time_sharded ~shards run =
  List.fold_left
    (fun total index ->
      let shard = Shard.compute { Shard.index; count = shards } in
      total +. time_figure ~shard ~jobs:1 run)
    0.0
    (List.init shards (fun i -> i + 1))

type scaling_row = {
  row_figure : string;
  row_jobs : int;
  row_shards : int;
  row_seconds : float;
  row_speedup : float;
  (* More pool domains than usable cores: the row measures
     oversubscription, not scaling.  Annotated in the JSON so a
     cross-machine comparison can drop these rows instead of trusting
     their "speedups". *)
  row_oversubscribed : bool;
}

let run_scaling ~json () =
  let jobs_list = [ 1; 2; 4; 8 ] in
  let shards_list = [ 1; 2 ] in
  let cores = Domain.recommended_domain_count () in
  (* Scaling rows are routinely compared across machines (the committed
     BENCH_scaling.json vs a CI rerun), so a host too small to exercise
     the pool sizes must be visible both at run time and in the data:
     every JSON row carries the core count plus an "oversubscribed"
     annotation when jobs exceeds it, and cramped hosts get a stderr
     warning rather than silently recording oversubscribed "speedups".
     A 1-core host (the common CI case) annotates every multi-domain
     row. *)
  if cores = 1 then
    Printf.eprintf
      "scaling: WARNING this host has a single usable core; every jobs>1 \
       row measures oversubscription, not scaling, and is annotated \
       \"oversubscribed\" in the JSON - compare speedups against a \
       same-\"cores\" baseline only\n%!"
  else if cores < 4 then
    Printf.eprintf
      "scaling: WARNING this host has only %d usable cores; pool sizes \
       beyond that measure oversubscription, not scaling - the affected \
       rows are annotated \"oversubscribed\" in the JSON\n%!"
      cores;
  let figures =
    if !only = [] then
      List.filter (fun (name, _) -> name = "fig12") scaling_figures
    else List.filter (fun (name, _) -> selected name) scaling_figures
  in
  (* A warning, not the micro suite's hard error: --only applies to
     every selected mode at once, so a kernel-only filter legitimately
     empties the scaling list in a combined --scaling --micro run. *)
  if figures = [] && !only <> [] then
    Printf.eprintf
      "scaling: warning --only %s matched no scaling figure (available: %s)\n%!"
      (String.concat "," !only)
      (String.concat ", " (List.map fst scaling_figures));
  let rows =
    List.concat_map
      (fun (figure, run) ->
        Printf.printf
          "domain scaling on %s (%s grids, machine has %d cores)\n%!" figure
          (if !quick then "quick" else "full")
          cores;
        Printf.printf "%8s %8s %12s %10s\n%!" "jobs" "shards" "seconds"
          "speedup";
        let timed =
          List.map (fun jobs -> (jobs, time_figure ~jobs run)) jobs_list
        in
        let baseline = match timed with (_, s) :: _ -> s | [] -> Float.nan in
        let print_row r =
          Printf.printf "%8d %8d %12.3f %10.2f%s\n%!" r.row_jobs r.row_shards
            r.row_seconds r.row_speedup
            (if r.row_oversubscribed then "  (oversubscribed)" else "")
        in
        let domain_rows =
          List.map
            (fun (jobs, seconds) ->
              let r =
                {
                  row_figure = figure;
                  row_jobs = jobs;
                  row_shards = 1;
                  row_seconds = seconds;
                  row_speedup = baseline /. seconds;
                  row_oversubscribed = jobs > cores;
                }
              in
              print_row r;
              r)
            timed
        in
        (* Sharded rows for fig12 only (the committed trajectory):
           sequential in-process slices, so never oversubscribed. *)
        let shard_rows =
          if figure <> "fig12" then []
          else
            List.map
              (fun shards ->
                let seconds = time_sharded ~shards run in
                let r =
                  {
                    row_figure = figure;
                    row_jobs = 1;
                    row_shards = shards;
                    row_seconds = seconds;
                    row_speedup = baseline /. seconds;
                    row_oversubscribed = false;
                  }
                in
                print_row r;
                r)
              shards_list
        in
        domain_rows @ shard_rows)
      figures
  in
  if json <> "" then begin
    let oc = open_out json in
    let last = List.length rows - 1 in
    output_string oc "[\n";
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "  {\"figure\": %S, \"jobs\": %d, \"shards\": %d, \"cores\": %d, \
           \"seconds\": %.3f, \"speedup\": %.3f, \"oversubscribed\": %b}%s\n"
          r.row_figure r.row_jobs r.row_shards cores r.row_seconds
          r.row_speedup r.row_oversubscribed
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc
  end

(* ------------------------------------------------------------------ *)

(* Write the Obs snapshot after the benchmarked work so the JSON
   reflects the whole run (bench emits a metrics snapshot alongside its
   results when --metrics is given). *)
let write_metrics file =
  if file <> "" then begin
    let oc = open_out file in
    output_string oc (Lrd_obs.Obs.to_json (Lrd_obs.Obs.snapshot ()));
    close_out oc
  end

let write_trace file =
  if file <> "" then begin
    let oc = open_out file in
    output_string oc (Lrd_obs.Obs.Trace.to_chrome_json ());
    close_out oc
  end

(* Manifest for the micro/scaling modes, which have no experiment
   context: the bench flag set is the full parameter set.  The figures
   mode instead routes through [Registry.run ?manifest], whose manifest
   carries the context's seed, solver parameters and sweep grids. *)
let write_bench_manifest ~tool file =
  if file <> "" then begin
    let metrics =
      if Lrd_obs.Obs.enabled () then
        match
          Lrd_obs.Json.parse (Lrd_obs.Obs.to_json (Lrd_obs.Obs.snapshot ()))
        with
        | Ok v -> Some v
        | Error _ -> None
      else None
    in
    let parameters =
      [
        ("quick", Lrd_obs.Json.Bool !quick);
        ("jobs", Lrd_obs.Json.Num (float_of_int !jobs));
        ( "only",
          Lrd_obs.Json.List (List.map (fun s -> Lrd_obs.Json.Str s) !only) );
      ]
    in
    Lrd_obs.Manifest.write file
      (Lrd_obs.Manifest.make ~parameters ?metrics ~tool ())
  end

let () =
  Arg.parse (Arg.align spec) (fun s -> raise (Arg.Bad ("unexpected " ^ s))) usage;
  if !metrics_file <> "" || !metrics_interval > 0.0 then
    Lrd_obs.Obs.set_enabled true;
  if !trace_file <> "" then Lrd_obs.Obs.Trace.set_enabled true;
  if !metrics_interval > 0.0 then begin
    let path =
      if !metrics_file <> "" then
        Filename.remove_extension !metrics_file ^ ".ticker.jsonl"
      else "bench-metrics.ticker.jsonl"
    in
    match Lrd_obs.Export.start_ticker ~interval:!metrics_interval ~path with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "bench: --metrics-interval: %s\n%!" e;
        exit 2
  end;
  at_exit Lrd_obs.Export.stop_ticker;
  (* Modes compose: --scaling and --micro can run in one invocation (in
     that order); the figure regeneration runs when neither is given. *)
  let modes =
    (if !scaling then [ `Scaling ] else [])
    @ (if !micro then [ `Micro ] else [])
    @ if (not !scaling) && not !micro then [ `Figures ] else []
  in
  let multi = List.length modes > 1 in
  let exit_code = ref 0 in
  List.iteri
    (fun i mode ->
      if i > 0 then begin
        (* Fresh telemetry per mode: each mode's --metrics / --trace
           file stands alone instead of accumulating earlier modes. *)
        Lrd_obs.Obs.reset ();
        Lrd_obs.Obs.Trace.reset ()
      end;
      match mode with
      | `Scaling ->
          let out f = mode_file ~multi "scaling" f in
          run_scaling ~json:(out !json_file) ();
          write_metrics (out !metrics_file);
          write_trace (out !trace_file);
          write_bench_manifest ~tool:"bench --scaling" (out !manifest_file)
      | `Micro ->
          let out f = mode_file ~multi "micro" f in
          let regressions =
            run_micro ~json:(out !json_file) (Data.create ~quick:!quick ())
          in
          write_metrics (out !metrics_file);
          write_trace (out !trace_file);
          write_bench_manifest ~tool:"bench --micro" (out !manifest_file);
          if regressions > 0 then exit_code := 3
      | `Figures ->
          let out f = mode_file ~multi "figures" f in
          let ctx = Data.create ~jobs:!jobs ~quick:!quick () in
          Fun.protect
            ~finally:(fun () -> Data.teardown ctx)
            (fun () ->
              let fmt = Format.std_formatter in
              Format.fprintf fmt
                "Reproduction of Grossglauser & Bolot, 'On the Relevance of \
                 Long-Range Dependence in Network Traffic' (SIGCOMM '96)@.";
              Format.fprintf fmt "mode: %s, jobs: %d@."
                (if !quick then "quick (small traces, coarse grids)"
                 else "full (paper-scale traces)")
                (Data.jobs ctx);
              let manifest =
                match out !manifest_file with "" -> None | f -> Some f
              in
              (match !only with
              | [] -> Registry.run ?manifest ctx fmt
              | ids -> Registry.run ~only:ids ?manifest ctx fmt);
              write_metrics (out !metrics_file);
              write_trace (out !trace_file)))
    modes;
  if !exit_code <> 0 then exit !exit_code
