(* Buffer provisioning: how much does enlarging a switch buffer help?

   The answer depends on how far the traffic's correlation extends
   (paper Figs. 4-5 and the "buffer ineffectiveness" discussion).  For
   short-range dependent traffic, loss falls roughly exponentially in
   the buffer; once the source carries correlation over many time
   scales, extra buffer buys very little, because long bursts arrive at
   time scales the buffer cannot absorb.

   This example sweeps the buffer for the same marginal under three
   correlation structures — cutoff at 0.5 s, cutoff at 50 s, and the
   untruncated self-similar source — and prints the marginal benefit of
   each doubling.

   Run with: dune exec examples/buffer_provisioning.exe *)

let utilization = 0.75

let () =
  let marginal =
    Lrd_dist.Marginal.of_points
      [ (0.0, 0.4); (1.0, 0.35); (2.5, 0.2); (5.0, 0.05) ]
  in
  let hurst = 0.85 in
  let theta =
    Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch:0.05
      ~alpha:(Lrd_core.Model.alpha_of_hurst hurst)
      ()
  in
  let variants =
    [
      ("cutoff 0.5 s (SRD-ish)", 0.5);
      ("cutoff 50 s", 50.0);
      ("self-similar (inf)", Float.infinity);
    ]
  in
  let buffers = [ 0.0625; 0.125; 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  Format.printf
    "marginal: mean %.3g, std %.3g; utilization %g; H = %g@.@."
    (Lrd_dist.Marginal.mean marginal)
    (Lrd_dist.Marginal.std marginal)
    utilization hurst;
  Format.printf "%10s" "buffer_s";
  List.iter (fun (name, _) -> Format.printf " %22s" name) variants;
  Format.printf "@.";
  let losses =
    List.map
      (fun (_, cutoff) ->
        let model = Lrd_core.Model.of_hurst ~marginal ~hurst ~theta ~cutoff in
        List.map
          (fun b ->
            (Lrd_core.Solver.solve_utilization model ~utilization
               ~buffer_seconds:b)
              .Lrd_core.Solver.loss)
          buffers)
      variants
  in
  List.iteri
    (fun i b ->
      Format.printf "%10g" b;
      List.iter
        (fun column -> Format.printf " %22.3e" (List.nth column i))
        losses;
      Format.printf "@.")
    buffers;
  (* Quantify buffer effectiveness: loss reduction per buffer doubling,
     averaged over the sweep. *)
  Format.printf "@.average loss reduction per buffer doubling:@.";
  List.iteri
    (fun j (name, _) ->
      let column = List.nth losses j in
      let ratios =
        List.filteri (fun i _ -> i > 0) column
        |> List.mapi (fun i l ->
               let prev = List.nth column i in
               if l > 0.0 && prev > 0.0 then Some (prev /. l) else None)
        |> List.filter_map Fun.id
      in
      let geometric_mean =
        match ratios with
        | [] -> Float.nan
        | rs ->
            exp
              (List.fold_left (fun acc r -> acc +. log r) 0.0 rs
              /. float_of_int (List.length rs))
      in
      Format.printf "  %-22s %.2fx per doubling@." name geometric_mean)
    variants;
  Format.printf
    "@.takeaway: buffer doublings pay off handsomely only while the \
     correlation is short; for long-memory input, control the marginal \
     (multiplexing, source rate control) instead.@."
