(* Capacity planning with certified bounds: dimension a video service
   end to end.

   Given a loss target, use the inverse solvers to compare the three
   control knobs (buffer, utilization headroom, statistical
   multiplexing), then report the delay consequences of the chosen
   design from the certified occupancy distribution — buffering trades
   loss against delay, multiplexing does not.

   Run with: dune exec examples/capacity_planning.exe *)

let target = 1e-6

let () =
  let rng = Lrd_rng.Rng.create ~seed:21L in
  let trace = Lrd_trace.Video.generate_short rng ~n:32_768 in
  let model = Lrd_core.Model.fit_from_trace ~hurst:0.83 trace in
  Format.printf "source: %a@." Lrd_core.Model.pp model;
  Format.printf "loss target: %.0e@.@." target;

  let describe = function
    | Lrd_core.Provision.Achieved v -> Printf.sprintf "%.4g" v
    | Lrd_core.Provision.Unachievable_within v ->
        Printf.sprintf "unachievable within %.4g" v
  in

  (* Knob 1: buffer at 80% utilization. *)
  let buffer_outcome =
    Lrd_core.Provision.buffer_for_loss ~max_buffer_seconds:20.0 model
      ~utilization:0.8 ~target
  in
  Format.printf "buffer needed at util 0.8:            %s s@."
    (describe buffer_outcome);

  (* Knob 2: utilization at a 50 ms buffer. *)
  let util_outcome =
    Lrd_core.Provision.utilization_for_loss model ~buffer_seconds:0.05
      ~target
  in
  Format.printf "max utilization at B = 50 ms:         %s@."
    (describe util_outcome);

  (* Knob 3: multiplexed streams at util 0.8, 50 ms per-stream buffer. *)
  let streams_outcome =
    Lrd_core.Provision.streams_for_loss model ~utilization:0.8
      ~buffer_seconds:0.05 ~target
  in
  Format.printf "streams at util 0.8, B = 50 ms:       %s@.@."
    (describe streams_outcome);

  (* Delay analysis of the multiplexing design. *)
  (match streams_outcome with
  | Lrd_core.Provision.Achieved n ->
      let n = int_of_float n in
      let marginal =
        Lrd_dist.Marginal.superpose model.Lrd_core.Model.marginal ~n
      in
      let mux_model = { model with Lrd_core.Model.marginal } in
      let c =
        Lrd_core.Model.service_rate_for_utilization mux_model
          ~utilization:0.8
      in
      let result, occupancy =
        Lrd_core.Solver.solve_detailed mux_model ~service_rate:c
          ~buffer:(0.05 *. c)
      in
      let delay_lo, delay_hi =
        Lrd_core.Solver.mean_virtual_delay occupancy ~service_rate:c
      in
      let p99_lo, p99_hi =
        Lrd_core.Solver.occupancy_quantile occupancy ~p:0.99
      in
      Format.printf
        "chosen design: %d multiplexed streams, util 0.8, 50 ms buffer@." n;
      Format.printf "  certified loss:        %s (bounds [%s, %s])@."
        (Printf.sprintf "%.3e" result.Lrd_core.Solver.loss)
        (Printf.sprintf "%.3e" result.Lrd_core.Solver.lower_bound)
        (Printf.sprintf "%.3e" result.Lrd_core.Solver.upper_bound);
      Format.printf "  mean virtual delay:    [%.3g, %.3g] ms@."
        (1000.0 *. delay_lo) (1000.0 *. delay_hi);
      Format.printf "  p99 occupancy delay:   [%.3g, %.3g] ms@."
        (1000.0 *. p99_lo /. c) (1000.0 *. p99_hi /. c)
  | Lrd_core.Provision.Unachievable_within _ ->
      Format.printf "multiplexing design not found within the stream cap@.");
  Format.printf
    "@.takeaway: buffering toward the loss target also buys delay; the \
     multiplexing design meets the target with the delay of a 50 ms \
     buffer - the paper's recommendation made concrete.@."
