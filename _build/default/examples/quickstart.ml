(* Quickstart: build a cutoff-correlated fluid source, solve the finite
   buffer queue for its loss rate, and ask where the correlation horizon
   lies.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* An on/off style marginal: silent half the time, bursting at
     2 Mb/s otherwise (mean 1 Mb/s). *)
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in

  (* Epoch lengths: truncated Pareto matched so that, with Hurst
     parameter H = 0.8 (alpha = 3 - 2H = 1.4), the mean rate-residence
     time is 100 ms and correlation vanishes beyond 30 s. *)
  let hurst = 0.8 in
  let theta =
    Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch:0.1
      ~alpha:(Lrd_core.Model.alpha_of_hurst hurst)
      ()
  in
  let model = Lrd_core.Model.of_hurst ~marginal ~hurst ~theta ~cutoff:30.0 in

  Format.printf "source: %a@." Lrd_core.Model.pp model;
  Format.printf "rate correlation at 1 s lag: %.4f; at 30 s: %.4f@."
    (Lrd_core.Model.residual_life_ccdf model 1.0)
    (Lrd_core.Model.residual_life_ccdf model 30.0);

  (* Loss at 80% utilization across a few buffer sizes. *)
  Format.printf "@.loss at utilization 0.8:@.";
  List.iter
    (fun buffer_seconds ->
      let result =
        Lrd_core.Solver.solve_utilization model ~utilization:0.8
          ~buffer_seconds
      in
      Format.printf "  B = %4g s: %a@." buffer_seconds
        Lrd_core.Solver.pp_result result)
    [ 0.1; 0.5; 1.0; 2.0 ];

  (* The correlation horizon: correlation beyond this lag cannot affect
     the loss of the 1-second buffer (eq. 26). *)
  let c = Lrd_core.Model.service_rate_for_utilization model ~utilization:0.8 in
  let horizon = Lrd_core.Horizon.estimate_for_model model ~buffer:c in
  Format.printf
    "@.correlation horizon for the 1 s buffer: %.3g s - a model only needs \
     to match the source's correlation up to there.@."
    horizon;

  (* Cross-check the solver against an exact fluid simulation of a
     sampled path. *)
  let rng = Lrd_rng.Rng.create ~seed:1L in
  let epochs = Lrd_core.Model.sample_epochs model rng ~n:500_000 in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:c () in
  let stats = Lrd_fluidsim.Queue_sim.run_epochs sim (Array.to_seq epochs) in
  let solver =
    Lrd_core.Solver.solve_utilization model ~utilization:0.8
      ~buffer_seconds:1.0
  in
  Format.printf
    "@.cross-check at B = 1 s: solver %.4g vs simulated %.4g (500k epochs)@."
    solver.Lrd_core.Solver.loss
    (Lrd_fluidsim.Queue_sim.loss_rate stats)
