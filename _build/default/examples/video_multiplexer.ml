(* Video multiplexer sizing: how many VBR video streams must be
   statistically multiplexed onto a shared link before the loss rate
   drops below a target?

   This is the paper's second headline finding in action (Figs. 11-12):
   superposing streams narrows the aggregate marginal like 1/sqrt(n),
   which cuts loss far faster than buying buffer.  The per-stream buffer
   and service rate are held constant, so utilization stays at 80%
   throughout — multiplexing here is pure statistical gain.

   Run with: dune exec examples/video_multiplexer.exe *)

let target_loss = 1e-6
let utilization = 0.8
let buffer_seconds = 0.25

let () =
  (* A synthetic MTV-like video source (scene-based, H = 0.83). *)
  let rng = Lrd_rng.Rng.create ~seed:11L in
  let trace = Lrd_trace.Video.generate_short rng ~n:32_768 in
  let model = Lrd_core.Model.fit_from_trace ~hurst:0.83 trace in
  let base_marginal = model.Lrd_core.Model.marginal in

  Format.printf
    "single video source: mean %.3g Mb/s, std %.3g, peak/mean %.2f@."
    (Lrd_dist.Marginal.mean base_marginal)
    (Lrd_dist.Marginal.std base_marginal)
    (Lrd_dist.Marginal.peak_to_mean base_marginal);
  Format.printf
    "link sized for %g%% utilization, %g ms of buffering per stream, \
     target loss %.0e@.@."
    (100.0 *. utilization)
    (1000.0 *. buffer_seconds)
    target_loss;

  Format.printf "%8s %12s %12s %14s@." "streams" "agg std" "loss" "verdict";
  let rec search n best =
    if n > 24 then best
    else begin
      let marginal =
        Lrd_dist.Marginal.superpose base_marginal ~n
      in
      let model = { model with Lrd_core.Model.marginal } in
      let result =
        Lrd_core.Solver.solve_utilization model ~utilization ~buffer_seconds
      in
      let loss = result.Lrd_core.Solver.loss in
      let ok = loss <= target_loss in
      Format.printf "%8d %12.4g %12.3e %14s@." n
        (Lrd_dist.Marginal.std marginal)
        loss
        (if ok then "meets target" else "-");
      if ok then Some n
      else
        (* Loss shrinks monotonically with n; step up geometrically-ish. *)
        search (n + max 1 (n / 3)) best
    end
  in
  match search 1 None with
  | Some n ->
      Format.printf
        "@.%d multiplexed streams meet the %.0e target at %g%% utilization \
         with only %g ms of buffer - statistical multiplexing does what \
         buffering cannot (compare Fig. 12: even seconds of buffer cannot \
         buy this for a single stream).@."
        n target_loss
        (100.0 *. utilization)
        (1000.0 *. buffer_seconds)
  | None ->
      Format.printf "@.target not met within 24 streams; raise the buffer \
                     or lower utilization.@."
