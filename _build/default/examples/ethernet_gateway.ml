(* Ethernet gateway engineering: fit the paper's fluid model to a
   measured LAN trace and validate its loss predictions against
   trace-driven simulation — the full modeling workflow of Section III.

   1. "Measure" an Ethernet segment (synthetic Bellcore-like aggregate of
      heavy-tailed on/off stations).
   2. Extract the model ingredients exactly as the paper does: 50-bin
      histogram marginal, mean rate-residence epoch (-> theta via
      eq. 25), wavelet Hurst estimate (-> alpha).
   3. Predict the loss at the gateway for several buffer sizes.
   4. Validate against the exact fluid simulator fed with the trace
      itself, and with a shuffled version whose correlation is cut at
      the estimated correlation horizon.

   Run with: dune exec examples/ethernet_gateway.exe *)

let utilization = 0.4

let () =
  let rng = Lrd_rng.Rng.create ~seed:77L in
  let trace = Lrd_trace.Ethernet.generate_short rng ~n:120_000 in
  Format.printf
    "measured segment: %d samples of %.3g s, mean %.3g Mb/s, peak %.3g@."
    (Lrd_trace.Trace.length trace)
    trace.Lrd_trace.Trace.slot
    (Lrd_trace.Trace.mean trace)
    (Lrd_trace.Trace.peak trace);
  let wavelet =
    (Lrd_stats.Hurst.abry_veitch trace.Lrd_trace.Trace.rates)
      .Lrd_stats.Hurst.hurst
  in
  let epoch = Lrd_trace.Epochs.mean_epoch_duration ~bins:50 trace in
  Format.printf "wavelet H estimate: %.3f; mean epoch: %.4g s@." wavelet epoch;

  let model = Lrd_core.Model.fit_from_trace trace in
  Format.printf "fitted model: %a@.@." Lrd_core.Model.pp model;

  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
  in
  Format.printf
    "gateway at %g%% utilization (service rate %.3g Mb/s)@.@."
    (100.0 *. utilization) c;

  Format.printf "%10s %14s %14s %16s@." "buffer_s" "model" "trace sim"
    "sim@horizon";
  List.iter
    (fun buffer_seconds ->
      let predicted =
        (Lrd_core.Solver.solve_utilization model ~utilization ~buffer_seconds)
          .Lrd_core.Solver.loss
      in
      let simulate t =
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c
            ~buffer:(buffer_seconds *. c) ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim t)
      in
      let measured = simulate trace in
      (* Cut correlation at the eq. 26 horizon: if the horizon is real,
         this must not change the simulated loss much. *)
      let hist = Lrd_trace.Histogram.of_trace ~bins:50 trace in
      let runs =
        Array.map
          (fun r -> float_of_int r *. trace.Lrd_trace.Trace.slot)
          (Lrd_trace.Epochs.run_lengths hist trace)
      in
      let horizon =
        Lrd_core.Horizon.estimate
          ~buffer:(buffer_seconds *. c)
          ~mean_epoch:epoch
          ~epoch_std:(Lrd_stats.Descriptive.std runs)
          ~rate_std:(Lrd_trace.Trace.std trace)
          ()
      in
      let block =
        max 1
          (int_of_float (Float.round (horizon /. trace.Lrd_trace.Trace.slot)))
      in
      let shuffled =
        Lrd_trace.Shuffle.external_shuffle rng trace ~block
      in
      let at_horizon = simulate shuffled in
      Format.printf "%10g %14.3e %14.3e %16.3e  (CH %.3g s)@." buffer_seconds
        predicted measured at_horizon horizon)
    [ 0.02; 0.05; 0.1; 0.25 ];
  Format.printf
    "@.reading: the model tracks the simulation at small buffers and \
     overestimates at larger ones - the paper reports the same for the \
     Bellcore trace (its single-rate epochs are heavier than the \
     aggregate's real residence times).  Shuffling at the correlation \
     horizon leaves the measured loss roughly unchanged, confirming that \
     correlation beyond the horizon is irrelevant to this buffer.@."
