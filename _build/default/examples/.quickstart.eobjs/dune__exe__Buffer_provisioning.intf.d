examples/buffer_provisioning.mli:
