examples/service_classes.ml: Array Format List Lrd_fluidsim Lrd_rng Lrd_trace Printf
