examples/arq_fec.mli:
