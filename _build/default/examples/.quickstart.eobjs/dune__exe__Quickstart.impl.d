examples/quickstart.ml: Array Format List Lrd_core Lrd_dist Lrd_fluidsim Lrd_rng
