examples/ethernet_gateway.mli:
