examples/buffer_provisioning.ml: Float Format Fun List Lrd_core Lrd_dist
