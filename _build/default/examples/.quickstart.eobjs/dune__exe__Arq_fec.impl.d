examples/arq_fec.ml: Array Float Format List Lrd_fluidsim Lrd_rng Lrd_trace Printf
