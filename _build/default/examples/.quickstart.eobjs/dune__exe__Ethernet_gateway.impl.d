examples/ethernet_gateway.ml: Array Float Format List Lrd_core Lrd_fluidsim Lrd_rng Lrd_stats Lrd_trace
