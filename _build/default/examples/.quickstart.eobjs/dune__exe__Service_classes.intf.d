examples/service_classes.mli:
