examples/quickstart.mli:
