examples/video_multiplexer.mli:
