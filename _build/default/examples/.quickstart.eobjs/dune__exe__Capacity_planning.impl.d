examples/capacity_planning.ml: Format Lrd_core Lrd_dist Lrd_rng Lrd_trace Printf
