(* Service classes on a shared link: FIFO vs strict priority vs
   weighted fair (GPS).

   A video stream (LRD, delay/loss sensitive) shares a link with
   Ethernet-like best-effort traffic.  The paper's statistical
   multiplexing analysis says sharing is efficient; this example shows
   how the *discipline* decides who pays for the LRD burstiness:

   - FIFO: one queue, everyone suffers the mixture's bursts;
   - strict priority: video is isolated completely, best effort absorbs
     everything;
   - GPS: the weight dials the split continuously between those poles.

   Run with: dune exec examples/service_classes.exe *)

let () =
  let rng = Lrd_rng.Rng.create ~seed:33L in
  let video = Lrd_trace.Video.generate_short rng ~n:32_768 in
  let background =
    let eth = Lrd_trace.Ethernet.generate_short rng ~n:110_000 in
    let regridded =
      Lrd_trace.Trace.resample eth ~slot:video.Lrd_trace.Trace.slot
    in
    Lrd_trace.Trace.scale_to_mean regridded
      ~mean:(Lrd_trace.Trace.mean video /. 2.0)
  in
  let n =
    min (Lrd_trace.Trace.length video) (Lrd_trace.Trace.length background)
  in
  let video = Lrd_trace.Trace.sub video ~pos:0 ~len:n in
  let background = Lrd_trace.Trace.sub background ~pos:0 ~len:n in
  let load = 0.85 in
  let total = Lrd_trace.Trace.mean video +. Lrd_trace.Trace.mean background in
  let c = total /. load in
  let buffer = 0.1 *. c in
  Format.printf
    "link at %.0f%% load (c = %.3g); video mean %.3g, background mean \
     %.3g; per-class buffers %.3g@.@."
    (100.0 *. load) c
    (Lrd_trace.Trace.mean video)
    (Lrd_trace.Trace.mean background)
    buffer;

  (* FIFO baseline. *)
  let mixed =
    Lrd_trace.Trace.create
      ~rates:
        (Array.mapi
           (fun i r -> r +. background.Lrd_trace.Trace.rates.(i))
           video.Lrd_trace.Trace.rates)
      ~slot:video.Lrd_trace.Trace.slot
  in
  let fifo =
    let sim =
      Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:(2.0 *. buffer) ()
    in
    Lrd_fluidsim.Queue_sim.loss_rate
      (Lrd_fluidsim.Queue_sim.run_trace sim mixed)
  in
  Format.printf "%-22s %12s %12s@." "discipline" "video loss" "bg loss";
  Format.printf "%-22s %12s %12s@." "fifo (shared queue)"
    (Printf.sprintf "%.3e" fifo)
    (Printf.sprintf "%.3e" fifo);

  (* Strict priority. *)
  let high_stats, low_stats =
    Lrd_fluidsim.Priority.run ~service_rate:c ~high_buffer:buffer
      ~low_buffer:buffer ~high:video ~low:background
  in
  Format.printf "%-22s %12s %12s@." "strict priority"
    (Printf.sprintf "%.3e" (Lrd_fluidsim.Queue_sim.loss_rate high_stats))
    (Printf.sprintf "%.3e" low_stats.Lrd_fluidsim.Priority.loss_rate);

  (* GPS at a few weights. *)
  List.iter
    (fun weight ->
      let s_video, s_bg =
        Lrd_fluidsim.Gps.run ~service_rate:c ~weight
          ~buffers:(buffer, buffer) ~first:video ~second:background
      in
      Format.printf "%-22s %12s %12s@."
        (Printf.sprintf "gps (weight %.2f)" weight)
        (Printf.sprintf "%.3e" s_video.Lrd_fluidsim.Gps.loss_rate)
        (Printf.sprintf "%.3e" s_bg.Lrd_fluidsim.Gps.loss_rate))
    [ 0.5; 0.7; 0.9 ];
  Format.printf
    "@.takeaway: the discipline chooses who absorbs the LRD bursts - \
     priority isolates the video entirely, GPS trades the classes off \
     smoothly, FIFO averages the pain.  The total carried work is the \
     same in every row (work conservation); only its allocation moves.@."
