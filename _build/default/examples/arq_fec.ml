(* ARQ vs FEC under long-range dependent loss (the paper's closing
   thought experiment, Section V).

   The paper argues that the relevant correlation time scale depends on
   the performance question, and picks error control as the example:
   ARQ likes bursty losses (one retransmission round recovers a whole
   burst), FEC likes dispersed losses (a (n, k) code corrects up to
   n - k losses per block, so clustered losses overwhelm it).
   Extending the correlation time scale should therefore widen ARQ's
   advantage — a question for which a short-memory model would mislead.

   We generate the packet-loss process from the queue itself: feed the
   finite-buffer fluid queue with video traffic whose correlation is cut
   at increasing lags, mark each slot lossy in proportion to the fluid
   lost in it, and compare:
     - FEC overhead: fraction of (n, k) = (16, 14) blocks with more than
       n - k lossy slots (unrecoverable);
     - ARQ efficiency: retransmission rounds per lossy slot, where one
       round covers a whole run of consecutive lossy slots (the burst).

   Run with: dune exec examples/arq_fec.exe *)

let utilization = 0.9
let buffer_seconds = 0.02
let fec_n = 16
let fec_k = 14

let () =
  let rng = Lrd_rng.Rng.create ~seed:5L in
  let trace = Lrd_trace.Video.generate_short rng ~n:65_536 in
  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
  in
  Format.printf
    "video source at %g%% utilization, %g ms buffer; FEC (%d, %d)@.@."
    (100.0 *. utilization)
    (1000.0 *. buffer_seconds)
    fec_n fec_k;
  Format.printf "%12s %12s %16s %18s %14s@." "cutoff_s" "loss rate"
    "lossy slots" "FEC unrecoverable" "ARQ rounds";
  List.iter
    (fun cutoff_seconds ->
      let shuffled =
        match cutoff_seconds with
        | None -> trace
        | Some tc ->
            let block =
              max 1
                (int_of_float
                   (Float.round (tc /. trace.Lrd_trace.Trace.slot)))
            in
            Lrd_trace.Shuffle.external_shuffle rng trace ~block
      in
      let sim =
        Lrd_fluidsim.Queue_sim.make ~service_rate:c
          ~buffer:(buffer_seconds *. c) ()
      in
      let losses, stats =
        Lrd_fluidsim.Queue_sim.losses_per_slot sim shuffled
      in
      let lossy = Array.map (fun l -> l > 0.0) losses in
      let n = Array.length lossy in
      let lossy_count =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 lossy
      in
      (* FEC: fraction of unrecoverable blocks among blocks containing
         at least one loss. *)
      let blocks = n / fec_n in
      let affected = ref 0 and dead = ref 0 in
      for b = 0 to blocks - 1 do
        let in_block = ref 0 in
        for i = b * fec_n to ((b + 1) * fec_n) - 1 do
          if lossy.(i) then incr in_block
        done;
        if !in_block > 0 then begin
          incr affected;
          if !in_block > fec_n - fec_k then incr dead
        end
      done;
      let fec_failure =
        if !affected = 0 then 0.0
        else float_of_int !dead /. float_of_int !affected
      in
      (* ARQ: one retransmission round per maximal run of lossy slots. *)
      let rounds = ref 0 in
      for i = 0 to n - 1 do
        if lossy.(i) && (i = 0 || not lossy.(i - 1)) then incr rounds
      done;
      let arq_rounds_per_loss =
        if lossy_count = 0 then 0.0
        else float_of_int !rounds /. float_of_int lossy_count
      in
      Format.printf "%12s %12.3e %16d %18.3f %14.3f@."
        (match cutoff_seconds with
        | None -> "inf"
        | Some tc -> Printf.sprintf "%g" tc)
        (Lrd_fluidsim.Queue_sim.loss_rate stats)
        lossy_count fec_failure arq_rounds_per_loss)
    [ Some 0.1; Some 1.0; Some 10.0; None ];
  Format.printf
    "@.reading: as the correlation time scale grows, losses cluster - the \
     fraction of loss-affected FEC blocks the code cannot repair rises, \
     while ARQ needs ever fewer rounds per lost slot (one round covers a \
     longer burst).  A model truncated at a short lag would predict the \
     small-cutoff row everywhere and overstate FEC; for this question the \
     full self-similar correlation matters, exactly as the paper argues.@."
