(** FIFO packet queue with a finite buffer and a constant-rate server:
    the packet-level counterpart of the paper's fluid queue.

    The backlog (in bits) drains continuously at the service rate; an
    arriving packet is accepted in full if it fits
    ([backlog + size <= buffer]) and dropped in full otherwise —
    tail-drop, the behaviour of the ATM switch buffers the paper
    motivates with.  Event-driven and exact between arrivals.

    The waiting time recorded for an accepted packet is the backlog in
    front of it divided by the service rate (FIFO). *)

type stats = {
  offered_packets : int;
  offered_work : float;  (** Bits offered. *)
  dropped_packets : int;
  dropped_work : float;
  mean_delay : float;  (** Mean waiting time of accepted packets (s). *)
  max_delay : float;
  max_backlog : float;  (** Bits. *)
  final_backlog : float;
}

val loss_rate : stats -> float
(** Dropped work / offered work. *)

val packet_loss_rate : stats -> float
(** Dropped packets / offered packets (equal to {!loss_rate} for fixed
    packet sizes). *)

val run :
  service_rate:float ->
  buffer:float ->
  Arrivals.packet Seq.t ->
  stats
(** Feeds the (time-ordered) packets through the queue.
    @raise Invalid_argument on nonpositive service rate, negative
    buffer, or arrivals that go back in time. *)
