type stats = {
  offered_packets : int;
  offered_work : float;
  dropped_packets : int;
  dropped_work : float;
  mean_delay : float;
  max_delay : float;
  max_backlog : float;
  final_backlog : float;
}

let loss_rate s =
  if s.offered_work > 0.0 then s.dropped_work /. s.offered_work else 0.0

let packet_loss_rate s =
  if s.offered_packets > 0 then
    float_of_int s.dropped_packets /. float_of_int s.offered_packets
  else 0.0

let run ~service_rate ~buffer arrivals =
  if not (service_rate > 0.0) then
    invalid_arg "Packet_queue.run: service rate must be positive";
  if not (buffer >= 0.0) then
    invalid_arg "Packet_queue.run: buffer must be nonnegative";
  let backlog = ref 0.0 in
  let clock = ref 0.0 in
  let offered_packets = ref 0 and dropped_packets = ref 0 in
  let offered_work = Lrd_numerics.Summation.create () in
  let dropped_work = Lrd_numerics.Summation.create () in
  let delay_sum = Lrd_numerics.Summation.create () in
  let accepted = ref 0 in
  let max_delay = ref 0.0 and max_backlog = ref 0.0 in
  Seq.iter
    (fun { Arrivals.time; size } ->
      if time < !clock -. 1e-9 then
        invalid_arg "Packet_queue.run: arrivals must be time ordered";
      (* Drain since the previous event. *)
      backlog :=
        Float.max 0.0 (!backlog -. (service_rate *. (time -. !clock)));
      clock := Float.max !clock time;
      incr offered_packets;
      Lrd_numerics.Summation.add offered_work size;
      if !backlog +. size <= buffer +. 1e-12 then begin
        let delay = !backlog /. service_rate in
        Lrd_numerics.Summation.add delay_sum delay;
        incr accepted;
        if delay > !max_delay then max_delay := delay;
        backlog := !backlog +. size;
        if !backlog > !max_backlog then max_backlog := !backlog
      end
      else begin
        incr dropped_packets;
        Lrd_numerics.Summation.add dropped_work size
      end)
    arrivals;
  {
    offered_packets = !offered_packets;
    offered_work = Lrd_numerics.Summation.total offered_work;
    dropped_packets = !dropped_packets;
    dropped_work = Lrd_numerics.Summation.total dropped_work;
    mean_delay =
      (if !accepted > 0 then
         Lrd_numerics.Summation.total delay_sum /. float_of_int !accepted
       else 0.0);
    max_delay = !max_delay;
    max_backlog = !max_backlog;
    final_backlog = !backlog;
  }
