lib/packet/packet_queue.ml: Arrivals Float Lrd_numerics Seq
