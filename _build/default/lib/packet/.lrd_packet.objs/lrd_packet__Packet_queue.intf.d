lib/packet/packet_queue.mli: Arrivals Seq
