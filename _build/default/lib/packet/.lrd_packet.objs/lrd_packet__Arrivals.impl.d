lib/packet/arrivals.ml: Array Float Fun Lrd_rng Lrd_trace Seq
