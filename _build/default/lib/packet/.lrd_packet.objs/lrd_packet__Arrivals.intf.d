lib/packet/arrivals.mli: Lrd_rng Lrd_trace Seq
