(** Packet arrival processes derived from fluid rate traces.

    The paper works entirely in the fluid abstraction; to quantify what
    that abstraction hides, a rate trace is "packetized": within each
    slot of average rate [r], packets of a fixed size are emitted as a
    Poisson stream of intensity [r / size] (a doubly stochastic Poisson
    process whose random intensity is the trace), or on a deterministic
    lattice with the same per-slot count in expectation. *)

type packet = {
  time : float;  (** Arrival instant (s). *)
  size : float;  (** Bits. *)
}

val poissonize :
  Lrd_rng.Rng.t ->
  Lrd_trace.Trace.t ->
  packet_size:float ->
  packet Seq.t
(** Doubly stochastic Poisson packetization: slot [i] with rate [r_i]
    emits [Poisson(r_i * slot / packet_size)] packets at i.i.d. uniform
    instants within the slot, sorted.  The sequence is produced lazily
    slot by slot.  @raise Invalid_argument if [packet_size <= 0]. *)

val paced :
  Lrd_trace.Trace.t -> packet_size:float -> packet Seq.t
(** Deterministic pacing: slot [i] emits its expected packet count
    (accumulated across slots so fractional packets are not lost),
    evenly spaced.  The smoothest packetization — isolates the effect of
    packet granularity from Poisson jitter. *)

val count : packet Seq.t -> int
(** Consumes the sequence. *)
