type packet = { time : float; size : float }

let check_size packet_size =
  if not (packet_size > 0.0) then
    invalid_arg "Arrivals: packet_size must be positive"

let poisson rng mean =
  if mean > 500.0 then
    max 0
      (int_of_float
         (Float.round (Lrd_rng.Sampler.normal rng ~mean ~std:(sqrt mean))))
  else begin
    let limit = exp (-.mean) in
    let rec go k p =
      let p = p *. Lrd_rng.Rng.float_pos rng in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end

let poissonize rng trace ~packet_size =
  check_size packet_size;
  let slot = trace.Lrd_trace.Trace.slot in
  let rates = trace.Lrd_trace.Trace.rates in
  let slot_packets i =
    let mean = rates.(i) *. slot /. packet_size in
    let n = if mean > 0.0 then poisson rng mean else 0 in
    let t0 = float_of_int i *. slot in
    let times =
      Array.init n (fun _ -> t0 +. (Lrd_rng.Rng.float rng *. slot))
    in
    Array.sort Float.compare times;
    Array.to_seq times |> Seq.map (fun time -> { time; size = packet_size })
  in
  Seq.concat_map slot_packets (Seq.init (Array.length rates) Fun.id)

let paced trace ~packet_size =
  check_size packet_size;
  let slot = trace.Lrd_trace.Trace.slot in
  let rates = trace.Lrd_trace.Trace.rates in
  (* Carry the fractional packet budget across slots so low-rate slots
     still contribute. *)
  let slot_packets (carry, i) =
    if i >= Array.length rates then None
    else begin
      let budget = carry +. (rates.(i) *. slot /. packet_size) in
      let n = int_of_float budget in
      let t0 = float_of_int i *. slot in
      let spacing = slot /. float_of_int (max n 1) in
      let packets =
        Seq.init n (fun k ->
            {
              time = t0 +. ((float_of_int k +. 0.5) *. spacing);
              size = packet_size;
            })
      in
      Some (packets, (budget -. float_of_int n, i + 1))
    end
  in
  Seq.concat (Seq.unfold slot_packets (0.0, 0))

let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s
