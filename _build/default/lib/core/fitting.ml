let for_buffer ?(bins = 50) ?hurst ?(no_reset_probability = 0.01) trace
    ~utilization ~buffer_seconds =
  let hurst =
    match hurst with
    | Some h -> Float.max 0.55 (Float.min 0.95 h)
    | None ->
        Float.max 0.55
          (Float.min 0.95
             (Lrd_stats.Hurst.abry_veitch trace.Lrd_trace.Trace.rates)
               .Lrd_stats.Hurst.hurst)
  in
  let alpha = Model.alpha_of_hurst hurst in
  let marginal = Lrd_trace.Histogram.marginal_of_trace ~bins trace in
  let mean_epoch = Lrd_trace.Epochs.mean_epoch_duration ~bins trace in
  (* Theta matched at infinite cutoff, as in the paper's procedure. *)
  let theta =
    Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch ~alpha ()
  in
  let c = Lrd_dist.Marginal.mean marginal /. utilization in
  (* Eq. 26 from the trace's empirical epoch statistics. *)
  let hist = Lrd_trace.Histogram.of_trace ~bins trace in
  let runs =
    Array.map
      (fun r -> float_of_int r *. trace.Lrd_trace.Trace.slot)
      (Lrd_trace.Epochs.run_lengths hist trace)
  in
  let cutoff =
    Horizon.estimate ~no_reset_probability ~buffer:(buffer_seconds *. c)
      ~mean_epoch
      ~epoch_std:(sqrt (Lrd_numerics.Array_ops.variance runs))
      ~rate_std:(Lrd_trace.Trace.std trace) ()
  in
  (Model.cutoff_pareto ~marginal ~theta ~alpha ~cutoff, cutoff)

