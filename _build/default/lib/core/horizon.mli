(** The correlation horizon (paper Section IV).

    A finite buffer "forgets" its past whenever it empties or fills (the
    resetting effect), so correlation in the arrivals at lags beyond the
    time within which a reset is near-certain cannot influence the loss
    rate.  The paper estimates this horizon with a central-limit
    argument, giving eq. 26:

    [T_CH = B mu / (2 sqrt 2 sigma_T sigma_lambda erf^-1(p))]

    where [mu] is the mean epoch length, [sigma_T] and [sigma_lambda]
    the standard deviations of the epoch length and of the rate marginal,
    and [p] the tolerated probability of {e no} reset.  The estimate
    scales linearly with the buffer — the [B / T_c = const] ridge of
    Fig. 14. *)

val estimate :
  ?no_reset_probability:float ->
  buffer:float ->
  mean_epoch:float ->
  epoch_std:float ->
  rate_std:float ->
  unit ->
  float
(** Eq. 26 verbatim.  [no_reset_probability] (default 0.05) is the
    residual probability that no reset happens within the horizon; the
    smaller it is, the longer (more conservative) the horizon.
    @raise Invalid_argument unless all quantities are positive and the
    probability lies in (0, 1). *)

val estimate_for_model :
  ?no_reset_probability:float -> Model.t -> buffer:float -> float
(** {!estimate} with the moments taken from the model.  The epoch
    variance of an untruncated Pareto with [alpha <= 2] is infinite, in
    which case the estimate degenerates to 0 — eq. 26 presumes a finite
    cutoff (or an empirical trace, whose variance is always finite). *)

val critical_time_scale :
  hurst:float -> buffer:float -> drift:float -> float
(** The Critical Time Scale of Ryu & Elwalid (SIGCOMM '96), which the
    paper's Section IV discusses as the independent large-deviations
    counterpart of its correlation horizon: for Gaussian self-similar
    input with Hurst parameter [H], the overflow probability at level
    [B] is dominated by fluctuations over the time scale

    [t* = (B / drift) * H / (1 - H)]

    where [drift = c - mean rate] is the service slack (the maximizer of
    [Var A(t) / (B + drift t)^2]).  Like eq. 26 it is linear in the
    buffer.  @raise Invalid_argument unless [0 < hurst < 1] and both
    [buffer] and [drift] are positive. *)

val detect :
  ?flatness:float -> (float * float) array -> float option
(** Empirical correlation horizon from a measured loss-vs-cutoff series
    [(T_c, loss)]: the smallest cutoff beyond which every loss value
    stays within a factor [1 + flatness] (default 0.25) of the loss at
    the largest cutoff.  Returns [None] when the series never flattens
    (the last point alone always qualifies, so [None] only occurs for an
    empty series or when the final loss is zero while earlier losses are
    not).  The input must be sorted by cutoff.
    @raise Invalid_argument if cutoffs are not strictly increasing. *)
