type outcome = Achieved of float | Unachievable_within of float

let check_target target =
  if not (target >= 1e-10 && target < 1.0) then
    invalid_arg "Provision: target loss must lie in [1e-10, 1)"

let loss ?params model ~utilization ~buffer_seconds =
  (Solver.solve_utilization ?params model ~utilization ~buffer_seconds)
    .Solver.loss

let buffer_for_loss ?params ?(max_buffer_seconds = 30.0) model ~utilization
    ~target =
  check_target target;
  if not (utilization > 0.0 && utilization < 1.0) then
    invalid_arg "Provision.buffer_for_loss: utilization must lie in (0, 1)";
  let loss_at b = loss ?params model ~utilization ~buffer_seconds:b in
  if loss_at max_buffer_seconds > target then
    Unachievable_within max_buffer_seconds
  else if loss_at 0.0 <= target then Achieved 0.0
  else begin
    (* Loss is nonincreasing in the buffer: bisect to 5% relative. *)
    let rec go lo hi =
      if hi -. lo <= 0.05 *. hi then Achieved hi
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if loss_at mid <= target then go lo mid else go mid hi
      end
    in
    go 0.0 max_buffer_seconds
  end

let utilization_for_loss ?params ?(min_utilization = 0.05) model
    ~buffer_seconds ~target =
  check_target target;
  if not (min_utilization > 0.0 && min_utilization < 1.0) then
    invalid_arg
      "Provision.utilization_for_loss: min utilization must lie in (0, 1)";
  let loss_at u = loss ?params model ~utilization:u ~buffer_seconds in
  if loss_at min_utilization > target then
    Unachievable_within min_utilization
  else begin
    (* Loss is nondecreasing in the utilization: find the largest
       admissible value by bisection to 1% absolute. *)
    let hi0 = 0.999 in
    if loss_at hi0 <= target then Achieved hi0
    else begin
      let rec go lo hi =
        if hi -. lo <= 0.01 then Achieved lo
        else begin
          let mid = (lo +. hi) /. 2.0 in
          if loss_at mid <= target then go mid hi else go lo mid
        end
      in
      go min_utilization hi0
    end
  end

let streams_for_loss ?params ?(max_streams = 64) model ~utilization
    ~buffer_seconds ~target =
  check_target target;
  if max_streams < 1 then
    invalid_arg "Provision.streams_for_loss: max_streams must be positive";
  let loss_with n =
    let marginal =
      Lrd_dist.Marginal.superpose model.Model.marginal ~n
    in
    loss ?params
      { model with Model.marginal }
      ~utilization ~buffer_seconds
  in
  (* Loss decreases in n; exponential search then bisection on the
     integer count. *)
  let rec bracket n =
    if loss_with n <= target then Some n
    else if n >= max_streams then None
    else bracket (min max_streams (2 * n))
  in
  match bracket 1 with
  | None -> Unachievable_within (float_of_int max_streams)
  | Some hi ->
      let rec refine lo hi =
        (* Invariant: loss(hi) <= target < loss(lo). *)
        if hi - lo <= 1 then Achieved (float_of_int hi)
        else begin
          let mid = (lo + hi) / 2 in
          if loss_with mid <= target then refine lo mid else refine mid hi
        end
      in
      if hi = 1 then Achieved 1.0 else refine (hi / 2) hi
