(** Inverse dimensioning: find the system parameter that achieves a loss
    target.

    The paper's engineering message is that loss targets should be met by
    shaping the marginal (multiplexing, source control) rather than by
    buffering; these helpers make the trade-off quantitative by inverting
    the solver along each axis.  All searches exploit the monotonicity of
    the loss rate: decreasing in the buffer, increasing in the
    utilization, decreasing in the number of superposed streams.

    Loss targets below the solver's negligible-loss threshold (1e-10)
    are not meaningful and are rejected. *)

type outcome =
  | Achieved of float  (** Parameter value meeting the target. *)
  | Unachievable_within of float
      (** The target is not met even at this search limit. *)

val buffer_for_loss :
  ?params:Solver.params ->
  ?max_buffer_seconds:float ->
  Model.t ->
  utilization:float ->
  target:float ->
  outcome
(** Smallest normalized buffer (seconds, within 5% bisection tolerance)
    with loss at most [target]; searches up to [max_buffer_seconds]
    (default 30).  Buffer ineffectiveness makes this the axis most
    likely to return [Unachievable_within] for LRD input.
    @raise Invalid_argument on a target outside [1e-10, 1) or a
    utilization outside (0, 1). *)

val utilization_for_loss :
  ?params:Solver.params ->
  ?min_utilization:float ->
  Model.t ->
  buffer_seconds:float ->
  target:float ->
  outcome
(** Largest utilization (within 1% tolerance) with loss at most
    [target]; searches down to [min_utilization] (default 0.05). *)

val streams_for_loss :
  ?params:Solver.params ->
  ?max_streams:int ->
  Model.t ->
  utilization:float ->
  buffer_seconds:float ->
  target:float ->
  outcome
(** Smallest number of statistically multiplexed streams (per-stream
    buffer and service rate held constant, marginal superposed and
    renormalized as in the paper's Fig. 11) with loss at most [target];
    searches up to [max_streams] (default 64).  Returns the count as a
    float for uniformity. *)
