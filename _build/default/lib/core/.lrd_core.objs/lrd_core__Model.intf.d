lib/core/model.mli: Format Lrd_dist Lrd_rng Lrd_trace
