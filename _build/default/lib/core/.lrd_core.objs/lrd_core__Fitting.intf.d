lib/core/fitting.mli: Lrd_trace Model
