lib/core/horizon.mli: Model
