lib/core/asymptotics.mli: Lrd_dist
