lib/core/fitting.ml: Array Float Horizon Lrd_dist Lrd_numerics Lrd_stats Lrd_trace Model
