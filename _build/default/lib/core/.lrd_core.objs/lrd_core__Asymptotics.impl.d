lib/core/asymptotics.ml: Array Float Lrd_dist Lrd_numerics
