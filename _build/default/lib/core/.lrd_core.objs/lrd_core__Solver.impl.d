lib/core/solver.ml: Array Float Format List Logs Lrd_dist Lrd_numerics Model Workload
