lib/core/horizon.ml: Array Float Lrd_dist Lrd_numerics Model
