lib/core/model.ml: Array Float Format Lrd_dist Lrd_stats Lrd_trace
