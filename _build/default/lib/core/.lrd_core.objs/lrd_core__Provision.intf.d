lib/core/provision.mli: Model Solver
