lib/core/provision.ml: Lrd_dist Model Solver
