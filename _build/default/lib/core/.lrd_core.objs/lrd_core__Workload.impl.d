lib/core/workload.ml: Array Float Lrd_dist Lrd_numerics Model
