lib/core/solver.mli: Format Model Workload
