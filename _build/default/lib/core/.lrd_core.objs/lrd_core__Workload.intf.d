lib/core/workload.mli: Model
