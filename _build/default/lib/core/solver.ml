type params = {
  initial_bins : int;
  max_bins : int;
  tolerance : float;
  negligible_loss : float;
  max_iterations : int;
  check_every : int;
  stall_factor : float;
  warm_restart : bool;
  convolution : [ `Auto | `Fft | `Direct ];
}

let default_params =
  {
    initial_bins = 128;
    max_bins = 16384;
    tolerance = 0.2;
    negligible_loss = 1e-10;
    max_iterations = 200_000;
    check_every = 16;
    stall_factor = 0.02;
    warm_restart = true;
    convolution = `Auto;
  }

type result = {
  loss : float;
  lower_bound : float;
  upper_bound : float;
  iterations : int;
  bins : int;
  refinements : int;
  converged : bool;
}

let pp_result fmt r =
  Format.fprintf fmt
    "loss=%.4g in [%.4g, %.4g] (%s after %d iterations, %d bins, %d \
     refinements)"
    r.loss r.lower_bound r.upper_bound
    (if r.converged then "converged" else "budget exhausted")
    r.iterations r.bins r.refinements

let log_src = Logs.Src.create "lrd.solver" ~doc:"fluid queue loss solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* One resolution level: the two chains, the discretized increment
   kernels with their FFT plans, and the per-bin expected overflow. *)
type level = {
  m : int;
  step : float;
  lower_kernel : [ `Plan of Lrd_numerics.Convolution.plan | `Direct of float array ];
  upper_kernel : [ `Plan of Lrd_numerics.Convolution.plan | `Direct of float array ];
  overflow : float array;  (* E[W_l | Q = j d], j = 0 .. m. *)
}

let make_level ?(convolution = `Auto) workload ~buffer ~m =
  let bins = Workload.discretize workload ~buffer ~bins:m in
  let use_fft =
    match convolution with
    | `Fft -> true
    | `Direct -> false
    (* FFT pays off once the direct product m * (2m+1) is large. *)
    | `Auto -> m >= 64
  in
  let kernel w =
    if use_fft then
      `Plan (Lrd_numerics.Convolution.make_plan ~kernel:w ~max_signal:(m + 1))
    else `Direct w
  in
  let overflow =
    Array.init (m + 1) (fun j ->
        Workload.expected_overflow workload ~buffer
          ~occupancy:(Float.min buffer (float_of_int j *. bins.Workload.step)))
  in
  {
    m;
    step = bins.Workload.step;
    lower_kernel = kernel bins.Workload.lower;
    upper_kernel = kernel bins.Workload.upper;
    overflow;
  }

let convolve kernel q =
  match kernel with
  | `Plan plan -> Lrd_numerics.Convolution.convolve_plan plan q
  | `Direct w -> Lrd_numerics.Convolution.direct q w

(* One Lindley step on the grid: convolve the occupancy pmf with the
   increment pmf, then fold spill-over into the boundary states
   (eqs. 19-20).  Index s of the convolution corresponds to the value
   (s - m) d. *)
let step level kernel q =
  let m = level.m in
  let u = convolve kernel q in
  let q' = Array.make (m + 1) 0.0 in
  q'.(0) <- Lrd_numerics.Summation.kahan_slice u ~pos:0 ~len:(m + 1);
  for j = 1 to m - 1 do
    q'.(j) <- Float.max 0.0 u.(m + j)
  done;
  q'.(m) <-
    Lrd_numerics.Summation.kahan_slice u ~pos:(2 * m)
      ~len:(Array.length u - (2 * m));
  (* FFT rounding can leave tiny negatives / drift; clamp and rescale so
     the pmf stays a probability vector. *)
  if q'.(0) < 0.0 then q'.(0) <- 0.0;
  if q'.(m) < 0.0 then q'.(m) <- 0.0;
  let total = Lrd_numerics.Summation.kahan q' in
  if total > 0.0 && Float.abs (total -. 1.0) > 1e-15 then
    for j = 0 to m do
      q'.(j) <- q'.(j) /. total
    done;
  q'

let loss_of level ~norm q =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun j p ->
      if p > 0.0 then Lrd_numerics.Summation.add acc (p *. level.overflow.(j)))
    q;
  Lrd_numerics.Summation.total acc /. norm

(* Doubling the grid: old point j d sits exactly at new point 2j (d/2),
   so re-quantization is an exact re-indexing and both chains keep their
   bound property (Proposition II.1 (v) plus footnote 3). *)
let refine_pmf q =
  let m = Array.length q - 1 in
  let q' = Array.make ((2 * m) + 1) 0.0 in
  Array.iteri (fun j p -> q'.(2 * j) <- p) q;
  q'

let initial_pmfs m =
  let lower = Array.make (m + 1) 0.0 and upper = Array.make (m + 1) 0.0 in
  lower.(0) <- 1.0;
  upper.(m) <- 1.0;
  (lower, upper)

type occupancy = {
  step : float;
  lower_pmf : float array;
  upper_pmf : float array;
}

let point_mass_occupancy =
  { step = 0.0; lower_pmf = [| 1.0 |]; upper_pmf = [| 1.0 |] }

let pmf_mean ~step pmf =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun j p -> Lrd_numerics.Summation.add acc (p *. float_of_int j *. step))
    pmf;
  Lrd_numerics.Summation.total acc

let mean_occupancy occ =
  (pmf_mean ~step:occ.step occ.lower_pmf, pmf_mean ~step:occ.step occ.upper_pmf)

let pmf_ccdf ~step pmf ~threshold =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun j p ->
      if float_of_int j *. step >= threshold then
        Lrd_numerics.Summation.add acc p)
    pmf;
  Float.min 1.0 (Lrd_numerics.Summation.total acc)

let occupancy_ccdf occ ~threshold =
  ( pmf_ccdf ~step:occ.step occ.lower_pmf ~threshold,
    pmf_ccdf ~step:occ.step occ.upper_pmf ~threshold )

let pmf_quantile ~step pmf ~p =
  let n = Array.length pmf in
  let rec go j cumulative =
    if j >= n - 1 then float_of_int (n - 1) *. step
    else begin
      let cumulative = cumulative +. pmf.(j) in
      if cumulative >= p -. 1e-15 then float_of_int j *. step
      else go (j + 1) cumulative
    end
  in
  go 0 0.0

let occupancy_quantile occ ~p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg "Solver.occupancy_quantile: p must lie in (0, 1]";
  ( pmf_quantile ~step:occ.step occ.lower_pmf ~p,
    pmf_quantile ~step:occ.step occ.upper_pmf ~p )

let mean_virtual_delay occ ~service_rate =
  if not (service_rate > 0.0) then
    invalid_arg "Solver.mean_virtual_delay: service rate must be positive";
  let lo, hi = mean_occupancy occ in
  (lo /. service_rate, hi /. service_rate)

let solve_detailed ?(params = default_params) model ~service_rate ~buffer =
  if not (service_rate > 0.0) then
    invalid_arg "Solver.solve: service rate must be positive";
  if not (buffer >= 0.0) then
    invalid_arg "Solver.solve: buffer must be nonnegative";
  let workload = Workload.create model ~service_rate in
  let norm =
    Model.mean_rate model *. model.Model.interarrival.Lrd_dist.Interarrival.mean
  in
  if buffer = 0.0 then begin
    let loss = Workload.zero_buffer_loss workload in
    ( {
        loss;
        lower_bound = loss;
        upper_bound = loss;
        iterations = 0;
        bins = 0;
        refinements = 0;
        converged = true;
      },
      point_mass_occupancy )
  end
  else if Workload.max_increment workload <= 0.0 then
    (* No rate ever exceeds the service rate: the queue never grows. *)
    ( {
        loss = 0.0;
        lower_bound = 0.0;
        upper_bound = 0.0;
        iterations = 0;
        bins = params.initial_bins;
        refinements = 0;
        converged = true;
      },
      point_mass_occupancy )
  else begin
    let level =
      ref
        (make_level ~convolution:params.convolution workload ~buffer
           ~m:params.initial_bins)
    in
    let lower, upper = initial_pmfs params.initial_bins in
    let lower = ref lower and upper = ref upper in
    let iterations = ref 0 and refinements = ref 0 in
    let prev_lower = ref Float.nan and prev_upper = ref Float.nan in
    let finish ~converged ~lo ~hi =
      ( {
          loss =
            (if hi < params.negligible_loss then 0.0 else (lo +. hi) /. 2.0);
          lower_bound = lo;
          upper_bound = hi;
          iterations = !iterations;
          bins = !level.m;
          refinements = !refinements;
          converged;
        },
        {
          step = !level.step;
          lower_pmf = Array.copy !lower;
          upper_pmf = Array.copy !upper;
        } )
    in
    let rec loop () =
      (* Advance both chains by one check period. *)
      let budget = params.max_iterations - !iterations in
      let steps = min params.check_every budget in
      for _ = 1 to steps do
        lower := step !level !level.lower_kernel !lower;
        upper := step !level !level.upper_kernel !upper;
        incr iterations
      done;
      let lo = loss_of !level ~norm !lower
      and hi = loss_of !level ~norm !upper in
      let gap = hi -. lo in
      let mid = (hi +. lo) /. 2.0 in
      Log.debug (fun f ->
          f "n=%d m=%d lower=%.4g upper=%.4g" !iterations !level.m lo hi);
      if hi < params.negligible_loss then finish ~converged:true ~lo ~hi
      else if gap <= params.tolerance *. mid then
        finish ~converged:true ~lo ~hi
      else if !iterations >= params.max_iterations then
        finish ~converged:false ~lo ~hi
      else begin
        (* Refine only when BOTH chains have individually plateaued:
           while a chain is still mixing toward its stationary value
           (e.g. the ceiling chain draining a deep buffer), iterating at
           the current resolution is cheap and refinement buys nothing. *)
        let plateaued previous current =
          Float.is_finite previous
          && Float.abs (previous -. current)
             <= params.stall_factor *. Float.max previous 1e-300
        in
        let stalled =
          plateaued !prev_lower lo && plateaued !prev_upper hi
        in
        prev_lower := lo;
        prev_upper := hi;
        if stalled then begin
          if !level.m * 2 <= params.max_bins then begin
            Log.debug (fun f -> f "refining grid to m=%d" (!level.m * 2));
            level :=
              make_level ~convolution:params.convolution workload ~buffer
                ~m:(!level.m * 2);
            if params.warm_restart then begin
              lower := refine_pmf !lower;
              upper := refine_pmf !upper
            end
            else begin
              let fresh_lower, fresh_upper = initial_pmfs !level.m in
              lower := fresh_lower;
              upper := fresh_upper
            end;
            incr refinements;
            prev_lower := Float.nan;
            prev_upper := Float.nan;
            loop ()
          end
          else
            (* Both chains have plateaued at the finest allowed grid:
               further iteration cannot close the gap.  Return the
               certified (if loose) bounds rather than burning the
               whole iteration budget at the most expensive level. *)
            finish ~converged:false ~lo ~hi
        end
        else loop ()
      end
    in
    loop ()
  end

let solve ?params model ~service_rate ~buffer =
  fst (solve_detailed ?params model ~service_rate ~buffer)

let solve_utilization ?params model ~utilization ~buffer_seconds =
  let c = Model.service_rate_for_utilization model ~utilization in
  solve ?params model ~service_rate:c ~buffer:(buffer_seconds *. c)

type snapshot = {
  iteration : int;
  lower_pmf : float array;
  upper_pmf : float array;
  lower_loss : float;
  upper_loss : float;
}

let iterate_snapshots model ~service_rate ~buffer ~bins ~at =
  if not (buffer > 0.0) then
    invalid_arg "Solver.iterate_snapshots: buffer must be positive";
  let sorted = List.sort_uniq compare at in
  if sorted <> at then
    invalid_arg "Solver.iterate_snapshots: iteration list must be ascending";
  List.iter
    (fun n ->
      if n < 0 then
        invalid_arg "Solver.iterate_snapshots: negative iteration count")
    at;
  let workload = Workload.create model ~service_rate in
  let norm =
    Model.mean_rate model *. model.Model.interarrival.Lrd_dist.Interarrival.mean
  in
  let level = make_level workload ~buffer ~m:bins in
  let lower, upper = initial_pmfs bins in
  let lower = ref lower and upper = ref upper in
  let current = ref 0 in
  List.map
    (fun n ->
      while !current < n do
        lower := step level level.lower_kernel !lower;
        upper := step level level.upper_kernel !upper;
        incr current
      done;
      {
        iteration = n;
        lower_pmf = Array.copy !lower;
        upper_pmf = Array.copy !upper;
        lower_loss = loss_of level ~norm !lower;
        upper_loss = loss_of level ~norm !upper;
      })
    sorted
