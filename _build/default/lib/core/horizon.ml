let estimate ?(no_reset_probability = 0.05) ~buffer ~mean_epoch ~epoch_std
    ~rate_std () =
  if not (buffer > 0.0) then invalid_arg "Horizon.estimate: buffer <= 0";
  if not (mean_epoch > 0.0) then
    invalid_arg "Horizon.estimate: mean epoch <= 0";
  if not (epoch_std >= 0.0) then invalid_arg "Horizon.estimate: epoch std < 0";
  if not (rate_std >= 0.0) then invalid_arg "Horizon.estimate: rate std < 0";
  if not (no_reset_probability > 0.0 && no_reset_probability < 1.0) then
    invalid_arg "Horizon.estimate: probability must lie in (0, 1)";
  if epoch_std = 0.0 || rate_std = 0.0 then Float.infinity
  else if not (Float.is_finite epoch_std) then 0.0
  else
    buffer *. mean_epoch
    /. (2.0 *. sqrt 2.0 *. epoch_std *. rate_std
       *. Lrd_numerics.Special.erf_inv no_reset_probability)

let estimate_for_model ?no_reset_probability model ~buffer =
  let law = model.Model.interarrival in
  let epoch_std =
    let v = law.Lrd_dist.Interarrival.variance in
    if Float.is_finite v then sqrt v else Float.infinity
  in
  estimate ?no_reset_probability ~buffer
    ~mean_epoch:law.Lrd_dist.Interarrival.mean ~epoch_std
    ~rate_std:(sqrt (Model.rate_variance model))
    ()

let critical_time_scale ~hurst ~buffer ~drift =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Horizon.critical_time_scale: hurst must lie in (0, 1)";
  if not (buffer > 0.0) then
    invalid_arg "Horizon.critical_time_scale: buffer must be positive";
  if not (drift > 0.0) then
    invalid_arg "Horizon.critical_time_scale: drift must be positive";
  buffer /. drift *. (hurst /. (1.0 -. hurst))

let detect ?(flatness = 0.25) series =
  let n = Array.length series in
  if n = 0 then None
  else begin
    for i = 1 to n - 1 do
      if fst series.(i) <= fst series.(i - 1) then
        invalid_arg "Horizon.detect: cutoffs must be strictly increasing"
    done;
    let final = snd series.(n - 1) in
    let within loss =
      if final = 0.0 then loss = 0.0
      else if loss = 0.0 then false
      else begin
        let ratio = loss /. final in
        ratio <= 1.0 +. flatness && ratio >= 1.0 /. (1.0 +. flatness)
      end
    in
    (* Smallest index from which the series stays flat to the end. *)
    let rec first_flat i =
      if i < 0 then 0 else if within (snd series.(i)) then first_flat (i - 1)
      else i + 1
    in
    let idx = first_flat (n - 1) in
    if idx >= n then None else Some (fst series.(idx))
  end
