(** Infinite-buffer tail asymptotics for the Introduction's motivating
    example: three arrival processes can share the same long-range
    correlation structure yet produce radically different queue tails —

    - fractional Brownian motion input gives a {e Weibullian} tail
      (Norros),
    - a single heavy-tailed on/off source gives a {e hyperbolic} tail
      (Brichet et al.),
    - light-tailed (e.g. exponential-epoch) modulation gives an
      {e exponential} tail (Cramér / effective bandwidths),

    which is precisely why the paper insists that correlation alone does
    not determine performance.  These closed forms are shape estimates
    (sharp up to sub-exponential prefactors), validated against the fluid
    simulator in the test suite and in the [abl-tails] experiment. *)

val kappa : float -> float
(** Norros' constant [H^H (1 - H)^(1-H)]. *)

val fbm_tail_exponent : hurst:float -> float
(** The Weibull shape [2 - 2H]: [log Pr{Q > b}] scales like
    [-b^(2 - 2H)]. *)

val fbm_tail :
  mean:float ->
  variance_coefficient:float ->
  hurst:float ->
  service_rate:float ->
  level:float ->
  float
(** Norros' lower-bound estimate for fBm input
    [A(t) = m t + sqrt(a m) Z(t)] with [Var A(t) = a m t^(2H)]:
    [Pr{Q > b} ~ exp(- (c - m)^(2H) b^(2-2H) / (2 kappa(H)^2 a m))].
    @raise Invalid_argument unless [0.5 <= hurst < 1], the queue is
    stable ([service_rate > mean]) and parameters are positive. *)

val onoff_tail :
  peak:float ->
  mean_on:float ->
  mean_off:float ->
  alpha:float ->
  service_rate:float ->
  level:float ->
  float
(** Hyperbolic shape estimate for a single on/off source with (shifted)
    Pareto ON periods of index [alpha] and mean [mean_on]: during an ON
    period the buffer grows at [peak - c], so a backlog above [b]
    requires a residual ON period longer than [b / (peak - c)], giving
    [Pr{Q > b} ~ rho_on ((b / ((peak - c) theta_on)) + 1)^(1 - alpha)]
    with [theta_on = mean_on (alpha - 1)].
    @raise Invalid_argument unless [mean rate < service_rate < peak] and
    [alpha > 1]. *)

val exponential_decay_rate :
  marginal:Lrd_dist.Marginal.t ->
  mean_epoch:float ->
  service_rate:float ->
  float
(** Cramér root of the embedded Lindley walk for the model with
    {e exponential} epochs: the unique [delta > 0] with
    [E[exp(delta W)] = sum_i pi_i / (1 - delta m (lambda_i - c)) = 1],
    so that [Pr{Q > b} ~ exp(-delta b)].  Requires stability
    ([mean rate < service_rate]) and at least one rate above the service
    rate (otherwise the queue is empty and the rate is infinite).
    @raise Invalid_argument if unstable or degenerate. *)

val exponential_tail :
  marginal:Lrd_dist.Marginal.t ->
  mean_epoch:float ->
  service_rate:float ->
  level:float ->
  float
(** [exp (-decay_rate * level)]. *)
