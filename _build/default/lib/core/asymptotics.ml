let kappa hurst = (hurst ** hurst) *. ((1.0 -. hurst) ** (1.0 -. hurst))

let fbm_tail_exponent ~hurst = 2.0 -. (2.0 *. hurst)

let fbm_tail ~mean ~variance_coefficient ~hurst ~service_rate ~level =
  if not (hurst >= 0.5 && hurst < 1.0) then
    invalid_arg "Asymptotics.fbm_tail: hurst must lie in [0.5, 1)";
  if not (mean > 0.0 && variance_coefficient > 0.0) then
    invalid_arg "Asymptotics.fbm_tail: parameters must be positive";
  if not (service_rate > mean) then
    invalid_arg "Asymptotics.fbm_tail: queue must be stable (c > mean)";
  if level <= 0.0 then 1.0
  else begin
    let k = kappa hurst in
    let gamma =
      ((service_rate -. mean) ** (2.0 *. hurst))
      /. (2.0 *. k *. k *. variance_coefficient *. mean)
    in
    exp (-.gamma *. (level ** fbm_tail_exponent ~hurst))
  end

let onoff_tail ~peak ~mean_on ~mean_off ~alpha ~service_rate ~level =
  if not (alpha > 1.0) then
    invalid_arg "Asymptotics.onoff_tail: alpha must exceed 1";
  if not (peak > 0.0 && mean_on > 0.0 && mean_off > 0.0) then
    invalid_arg "Asymptotics.onoff_tail: parameters must be positive";
  let rho_on = mean_on /. (mean_on +. mean_off) in
  let mean_rate = peak *. rho_on in
  if not (mean_rate < service_rate && service_rate < peak) then
    invalid_arg
      "Asymptotics.onoff_tail: need mean rate < service rate < peak";
  if level <= 0.0 then 1.0
  else begin
    let theta_on = mean_on *. (alpha -. 1.0) in
    let scaled = level /. ((peak -. service_rate) *. theta_on) in
    rho_on *. ((scaled +. 1.0) ** (1.0 -. alpha))
  end

let exponential_decay_rate ~marginal ~mean_epoch ~service_rate =
  if not (mean_epoch > 0.0) then
    invalid_arg "Asymptotics.exponential_decay_rate: mean epoch <= 0";
  let mean_rate = Lrd_dist.Marginal.mean marginal in
  if not (mean_rate < service_rate) then
    invalid_arg "Asymptotics.exponential_decay_rate: unstable queue";
  let rates = Lrd_dist.Marginal.rates marginal in
  let probs = Lrd_dist.Marginal.probs marginal in
  let max_delta =
    Array.fold_left
      (fun acc r -> Float.max acc (r -. service_rate))
      neg_infinity rates
  in
  if max_delta <= 0.0 then
    invalid_arg
      "Asymptotics.exponential_decay_rate: no rate above the service rate \
       (queue is always empty)";
  (* E[exp(delta W)] with W = T (lambda - c), T ~ exp(mean_epoch):
     sum_i pi_i / (1 - delta m (lambda_i - c)), finite for
     delta < 1 / (m max_delta).  At delta = 0 the value is 1 with
     negative derivative (E[W] < 0 by stability); it diverges to +inf at
     the pole, so a unique positive root exists. *)
  let mgf delta =
    let acc = ref 0.0 in
    Array.iteri
      (fun i p ->
        acc :=
          !acc
          +. (p /. (1.0 -. (delta *. mean_epoch *. (rates.(i) -. service_rate)))))
      probs;
    !acc
  in
  let pole = 1.0 /. (mean_epoch *. max_delta) in
  let f delta = mgf delta -. 1.0 in
  (* Bracket: f(eps) < 0 just above zero, f -> +inf near the pole. *)
  let lo = ref (pole *. 1e-9) in
  while f !lo > 0.0 && !lo > 1e-300 do
    lo := !lo /. 10.0
  done;
  let hi = ref (pole *. 0.5) in
  while f !hi < 0.0 do
    hi := (!hi +. pole) /. 2.0
  done;
  Lrd_numerics.Roots.bisection ~f ~lo:!lo ~hi:!hi ()

let exponential_tail ~marginal ~mean_epoch ~service_rate ~level =
  if level <= 0.0 then 1.0
  else begin
    let delta = exponential_decay_rate ~marginal ~mean_epoch ~service_rate in
    exp (-.delta *. level)
  end
