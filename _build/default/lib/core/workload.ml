type t = {
  service_rate : float;
  rates : float array;
  probs : float array;
  law : Lrd_dist.Interarrival.t;
  mean_rate : float;
}

let create model ~service_rate =
  if not (service_rate > 0.0) then
    invalid_arg "Workload.create: service rate must be positive";
  {
    service_rate;
    rates = Lrd_dist.Marginal.rates model.Model.marginal;
    probs = Lrd_dist.Marginal.probs model.Model.marginal;
    law = model.Model.interarrival;
    mean_rate = Model.mean_rate model;
  }

let mean t =
  t.law.Lrd_dist.Interarrival.mean *. (t.mean_rate -. t.service_rate)

(* Pr{W >= x} and Pr{W > x} by conditioning on the rate.  For a rate
   above the service rate the increment is positive and increasing in T;
   below, it is negative and decreasing in T, so the strict/weak
   survival functions of T swap roles; a rate exactly equal to c pins
   the increment at zero. *)
let survival ~weak t x =
  let acc = Lrd_numerics.Summation.create () in
  let s_gt = t.law.Lrd_dist.Interarrival.survival_gt
  and s_ge = t.law.Lrd_dist.Interarrival.survival_ge in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      let term =
        if delta > 0.0 then
          if weak then s_ge (x /. delta) else s_gt (x /. delta)
        else if delta < 0.0 then
          (* W = T delta <= 0: Pr{W >= x} = Pr{T <= x / delta}. *)
          if weak then 1.0 -. s_gt (x /. delta)
          else 1.0 -. s_ge (x /. delta)
        else if weak then (if x <= 0.0 then 1.0 else 0.0)
        else if x < 0.0 then 1.0
        else 0.0
      in
      Lrd_numerics.Summation.add acc (p *. term))
    t.probs;
  Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc))

let survival_ge t x = survival ~weak:true t x
let survival_gt t x = survival ~weak:false t x

let max_increment t =
  let max_delta =
    Array.fold_left
      (fun acc r -> Float.max acc (r -. t.service_rate))
      neg_infinity t.rates
  in
  if max_delta <= 0.0 then 0.0
  else
    match t.law.Lrd_dist.Interarrival.max_support with
    | None -> Float.infinity
    | Some sup -> sup *. max_delta

let expected_overflow t ~buffer ~occupancy =
  if not (buffer >= 0.0) then
    invalid_arg "Workload.expected_overflow: negative buffer";
  if not (occupancy >= 0.0 && occupancy <= buffer +. 1e-9) then
    invalid_arg "Workload.expected_overflow: occupancy outside [0, buffer]";
  let headroom = Float.max 0.0 (buffer -. occupancy) in
  (* E[(T delta - headroom)^+] = delta int_{headroom/delta}^inf Pr{T>t} dt. *)
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then
        Lrd_numerics.Summation.add acc
          (p *. delta
          *. t.law.Lrd_dist.Interarrival.survival_integral (headroom /. delta)))
    t.probs;
  Lrd_numerics.Summation.total acc

let loss_rate_of_occupancy t ~buffer ~occupancy_probs =
  let n = Array.length occupancy_probs in
  if n < 1 then invalid_arg "Workload.loss_rate_of_occupancy: empty pmf";
  let step = if n = 1 then 0.0 else buffer /. float_of_int (n - 1) in
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i q ->
      if q > 0.0 then
        Lrd_numerics.Summation.add acc
          (q
          *. expected_overflow t ~buffer ~occupancy:(float_of_int i *. step)))
    occupancy_probs;
  Lrd_numerics.Summation.total acc
  /. (t.mean_rate *. t.law.Lrd_dist.Interarrival.mean)

let zero_buffer_loss t =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then Lrd_numerics.Summation.add acc (p *. delta))
    t.probs;
  Lrd_numerics.Summation.total acc /. t.mean_rate

type bins = {
  lower : float array;
  upper : float array;
  half_width : int;
  step : float;
}

let discretize t ~buffer ~bins =
  if not (buffer > 0.0) then
    invalid_arg "Workload.discretize: buffer must be positive";
  if bins <= 0 then invalid_arg "Workload.discretize: bins must be positive";
  let m = bins in
  let d = buffer /. float_of_int m in
  let lower = Array.make ((2 * m) + 1) 0.0 in
  let upper = Array.make ((2 * m) + 1) 0.0 in
  (* Precompute the survival functions on the grid once; each bin mass is
     a difference of adjacent values (eqs. 21-22). *)
  let ge = Array.init ((2 * m) + 1) (fun k ->
      survival_ge t (float_of_int (k - m) *. d))
  and gt = Array.init ((2 * m) + 1) (fun k ->
      survival_gt t (float_of_int (k - m) *. d))
  in
  for k = 0 to 2 * m do
    let i = k - m in
    (* Floor chain, eq. 21. *)
    lower.(k) <-
      (if i = -m then 1.0 -. ge.(k + 1)
       else if i = m then ge.(k)
       else ge.(k) -. ge.(k + 1));
    (* Ceiling chain, eq. 22. *)
    upper.(k) <-
      (if i = -m then 1.0 -. gt.(k)
       else if i = m then gt.(k - 1)
       else gt.(k - 1) -. gt.(k))
  done;
  (* Guard against rounding producing tiny negatives. *)
  let clamp a =
    Array.iteri (fun k v -> if v < 0.0 then a.(k) <- 0.0) a
  in
  clamp lower;
  clamp upper;
  { lower; upper; half_width = m; step = d }
