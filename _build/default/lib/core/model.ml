type t = {
  marginal : Lrd_dist.Marginal.t;
  interarrival : Lrd_dist.Interarrival.t;
}

let create ~marginal ~interarrival = { marginal; interarrival }

let cutoff_pareto ~marginal ~theta ~alpha ~cutoff =
  create ~marginal
    ~interarrival:(Lrd_dist.Interarrival.truncated_pareto ~theta ~alpha ~cutoff)

let hurst_of_alpha alpha = (3.0 -. alpha) /. 2.0

let alpha_of_hurst hurst =
  if not (hurst > 0.5 && hurst < 1.0) then
    invalid_arg "Model.alpha_of_hurst: hurst must lie in (0.5, 1)";
  3.0 -. (2.0 *. hurst)

let of_hurst ~marginal ~hurst ~theta ~cutoff =
  cutoff_pareto ~marginal ~theta ~alpha:(alpha_of_hurst hurst) ~cutoff

let mean_rate t = Lrd_dist.Marginal.mean t.marginal
let rate_variance t = Lrd_dist.Marginal.variance t.marginal
let mean_epoch t = t.interarrival.Lrd_dist.Interarrival.mean

(* Pr{tau_res >= t} = int_t^inf Pr{T > x} dx / E[T] (eq. 5). *)
let residual_life_ccdf t lag =
  if lag <= 0.0 then 1.0
  else
    t.interarrival.Lrd_dist.Interarrival.survival_integral lag
    /. t.interarrival.Lrd_dist.Interarrival.mean

let covariance t lag = rate_variance t *. residual_life_ccdf t lag

let service_rate_for_utilization t ~utilization =
  if not (utilization > 0.0 && utilization < 1.0) then
    invalid_arg "Model.service_rate_for_utilization: utilization in (0, 1)";
  mean_rate t /. utilization

let sample_epochs t rng ~n =
  if n <= 0 then invalid_arg "Model.sample_epochs: n must be positive";
  let draw_rate = Lrd_dist.Marginal.sampler t.marginal in
  Array.init n (fun _ ->
      ( draw_rate rng,
        t.interarrival.Lrd_dist.Interarrival.sample rng ))

let sample_trace t rng ~slots ~slot =
  if slots <= 0 then invalid_arg "Model.sample_trace: slots must be positive";
  if not (slot > 0.0) then invalid_arg "Model.sample_trace: slot must be positive";
  let horizon = float_of_int slots *. slot in
  let work = Array.make slots 0.0 in
  let draw_rate = Lrd_dist.Marginal.sampler t.marginal in
  let time = ref 0.0 in
  while !time < horizon do
    let rate = draw_rate rng in
    let dur =
      Float.max 1e-12 (t.interarrival.Lrd_dist.Interarrival.sample rng)
    in
    let t0 = !time and t1 = Float.min horizon (!time +. dur) in
    (* Spread the epoch's work across the slots it overlaps. *)
    let first = int_of_float (t0 /. slot) in
    let last = min (slots - 1) (int_of_float ((t1 -. 1e-12) /. slot)) in
    for b = first to last do
      let lo = Float.max t0 (float_of_int b *. slot) in
      let hi = Float.min t1 (float_of_int (b + 1) *. slot) in
      if hi > lo then work.(b) <- work.(b) +. (rate *. (hi -. lo))
    done;
    time := !time +. dur
  done;
  Lrd_trace.Trace.create ~rates:(Array.map (fun w -> w /. slot) work) ~slot

let fit_from_trace ?(bins = 50) ?hurst ?(cutoff = Float.infinity) trace =
  let marginal = Lrd_trace.Histogram.marginal_of_trace ~bins trace in
  let hurst =
    match hurst with
    | Some h -> h
    | None -> (Lrd_stats.Hurst.abry_veitch trace.Lrd_trace.Trace.rates).hurst
  in
  (* Clamp estimator noise into the valid LRD range. *)
  let hurst = Float.max 0.55 (Float.min 0.95 hurst) in
  let alpha = alpha_of_hurst hurst in
  let mean_epoch = Lrd_trace.Epochs.mean_epoch_duration ~bins trace in
  (* Paper Section III: theta is matched for T_c = infinity, then the
     same theta is used for every finite cutoff. *)
  let theta =
    Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch ~alpha ()
  in
  cutoff_pareto ~marginal ~theta ~alpha ~cutoff

let pp fmt t =
  Format.fprintf fmt "model(%a, %s)" Lrd_dist.Marginal.pp t.marginal
    t.interarrival.Lrd_dist.Interarrival.name
