(** The cutoff-correlated modulated fluid traffic model (paper Section II).

    A source is a piecewise-constant fluid rate process: at the points of
    a renewal process with interarrival law [T], the rate is redrawn
    i.i.d. from a finite marginal distribution.  The autocovariance is
    then [phi(t) = sigma^2 Pr{tau_res >= t}] (eqs. 3-5) where [tau_res]
    is the residual interarrival time, so the correlation structure is
    inherited directly from the interarrival law:

    - with the truncated Pareto law (eq. 6), [phi(t)] matches the
      power-law decay [t^(1-alpha)] of an asymptotically second-order
      self-similar process with [H = (3 - alpha)/2] up to the cutoff lag
      [T_c], and is exactly zero beyond (eq. 8);
    - with an exponential law, the model degenerates into a short-range
      dependent (semi-Markov) source — the baseline of the
      interarrival-law ablation. *)

type t = {
  marginal : Lrd_dist.Marginal.t;  (** Fluid-rate distribution (Pi, Lambda). *)
  interarrival : Lrd_dist.Interarrival.t;  (** Epoch-length law. *)
}

val create :
  marginal:Lrd_dist.Marginal.t ->
  interarrival:Lrd_dist.Interarrival.t ->
  t

val cutoff_pareto :
  marginal:Lrd_dist.Marginal.t ->
  theta:float ->
  alpha:float ->
  cutoff:float ->
  t
(** The paper's model proper: truncated Pareto epochs. *)

val of_hurst :
  marginal:Lrd_dist.Marginal.t ->
  hurst:float ->
  theta:float ->
  cutoff:float ->
  t
(** Same, parameterized by the Hurst exponent: [alpha = 3 - 2 H].
    @raise Invalid_argument unless [0.5 < hurst < 1]. *)

val hurst_of_alpha : float -> float
(** [H = (3 - alpha) / 2]. *)

val alpha_of_hurst : float -> float
(** [alpha = 3 - 2 H].  @raise Invalid_argument unless [0.5 < H < 1]
    (the LRD regime, [1 < alpha < 2]). *)

val mean_rate : t -> float
(** [mu = Pi Lambda 1^T] (eq. 2). *)

val rate_variance : t -> float
(** [sigma^2 = Pi Lambda^2 1^T - (Pi Lambda 1^T)^2] (eq. 4). *)

val mean_epoch : t -> float
(** Mean epoch duration (eq. 25 for the truncated Pareto law). *)

val residual_life_ccdf : t -> float -> float
(** [p(t) = Pr{tau_res >= t}] (eqs. 5, 7): the normalized autocorrelation
    of the rate process. *)

val covariance : t -> float -> float
(** [phi(t) = sigma^2 p(t)] (eqs. 3, 8).  Zero beyond the cutoff. *)

val service_rate_for_utilization : t -> utilization:float -> float
(** [c = mean_rate / utilization].
    @raise Invalid_argument unless utilization is in (0, 1). *)

val sample_epochs : t -> Lrd_rng.Rng.t -> n:int -> (float * float) array
(** [n] i.i.d. [(rate, duration)] epochs — a sample path of the source,
    suitable for feeding {!Lrd_fluidsim.Queue_sim.run_epochs} in Monte
    Carlo cross-checks. *)

val sample_trace :
  t -> Lrd_rng.Rng.t -> slots:int -> slot:float -> Lrd_trace.Trace.t
(** A sample path binned into fixed slots (average rate per slot), for
    comparing the model against trace-driven experiments. *)

val fit_from_trace :
  ?bins:int ->
  ?hurst:float ->
  ?cutoff:float ->
  Lrd_trace.Trace.t ->
  t
(** The paper's fitting procedure (Section III): the marginal is the
    [bins]-bin histogram of the trace (default 50); [alpha] comes from
    the Hurst parameter (estimated with the Abry-Veitch wavelet estimator
    when not supplied); [theta] is set so that the mean epoch duration at
    infinite cutoff (eq. 25) matches the trace's mean rate-residence time;
    the cutoff defaults to infinity. *)

val pp : Format.formatter -> t -> unit
