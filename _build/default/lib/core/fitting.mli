(** Horizon-aware model fitting: the paper's main message as an
    algorithm.

    Section IV's conclusion is that any model capturing the traffic's
    correlation {e up to the correlation horizon of the target system}
    predicts the same loss; beyond that lag, correlation is irrelevant.
    {!for_buffer} turns this into a fitting procedure: marginal, theta
    and alpha come from the trace as in {!Model.fit_from_trace}, and the
    cutoff lag is set to the eq. 26 horizon of the queue being designed
    — producing the most parsimonious adequate model (finite memory, no
    LRD) for that queue. *)

val for_buffer :
  ?bins:int ->
  ?hurst:float ->
  ?no_reset_probability:float ->
  Lrd_trace.Trace.t ->
  utilization:float ->
  buffer_seconds:float ->
  Model.t * float
(** Returns the fitted model and the chosen cutoff lag (seconds).  The
    horizon is evaluated from the trace's empirical epoch statistics at
    [B = buffer_seconds * c], [c = mean / utilization]; the default
    [no_reset_probability] is a conservative 0.01.  Because the
    loss-vs-cutoff curve converges only hyperbolically for strongly
    LRD sources, the horizon-fitted model tracks the full self-similar
    fit within a small factor (rather than exactly) at its design
    buffer — versus the orders of magnitude lost by truncating below
    the horizon; see the [ext-parsimony] experiment. *)
