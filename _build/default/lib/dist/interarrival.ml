type t = {
  name : string;
  mean : float;
  variance : float;
  survival_gt : float -> float;
  survival_ge : float -> float;
  survival_integral : float -> float;
  max_support : float option;
  sample : Lrd_rng.Rng.t -> float;
}

let mean_given_cutoff ~theta ~alpha ~cutoff =
  if cutoff = Float.infinity then theta /. (alpha -. 1.0)
  else
    theta /. (alpha -. 1.0)
    *. (1.0 -. (((cutoff /. theta) +. 1.0) ** (1.0 -. alpha)))

let truncated_pareto ~theta ~alpha ~cutoff =
  if not (theta > 0.0) then
    invalid_arg "Interarrival.truncated_pareto: theta must be positive";
  if not (cutoff > 0.0) then
    invalid_arg "Interarrival.truncated_pareto: cutoff must be positive";
  let infinite = cutoff = Float.infinity in
  if infinite && not (alpha > 1.0) then
    invalid_arg
      "Interarrival.truncated_pareto: alpha must exceed 1 for an infinite \
       cutoff (finite mean)";
  if not (alpha > 0.0) then
    invalid_arg "Interarrival.truncated_pareto: alpha must be positive";
  (* Pareto ccdf before truncation. *)
  let ccdf t = ((t +. theta) /. theta) ** -.alpha in
  let survival_gt t =
    if t < 0.0 then 1.0 else if t >= cutoff then 0.0 else ccdf t
  in
  let survival_ge t =
    if t <= 0.0 then 1.0 else if t > cutoff then 0.0 else ccdf t
  in
  (* int_a^cutoff ((t+theta)/theta)^-alpha dt in closed form; the
     antiderivative is -(theta^alpha) (t+theta)^(1-alpha) / (alpha-1).
     Valid for alpha <> 1 (alpha = 1 only arises with a finite cutoff). *)
  let tail_integral a =
    let a = Float.max a 0.0 in
    if a >= cutoff then 0.0
    else if alpha = 1.0 then theta *. log ((cutoff +. theta) /. (a +. theta))
    else begin
      let power x = ((x +. theta) /. theta) ** (1.0 -. alpha) in
      let upper = if infinite then 0.0 else power cutoff in
      theta /. (alpha -. 1.0) *. (power a -. upper)
    end
  in
  let survival_integral a =
    if a <= 0.0 then tail_integral 0.0 +. Float.max 0.0 (-.a)
    else tail_integral a
  in
  let mean = tail_integral 0.0 in
  (* E[T^2] = 2 int_0^cutoff t ccdf(t) dt, finite atoms included. *)
  let second_moment =
    if infinite then
      if alpha > 2.0 then begin
        (* 2 theta^alpha int_theta^inf (s - theta) s^-alpha ds. *)
        let i1 = theta *. theta /. (alpha -. 2.0) in
        let i2 = theta *. theta /. (alpha -. 1.0) in
        2.0 *. (i1 -. i2)
      end
      else Float.infinity
    else begin
      (* Substitute s = t + theta over [theta, cutoff + theta]. *)
      let hi = cutoff +. theta in
      let pow_int p x =
        (* Antiderivative of s^p, with the log fallback at p = -1. *)
        if p = -1.0 then log x else (x ** (p +. 1.0)) /. (p +. 1.0)
      in
      let term p = pow_int p hi -. pow_int p theta in
      let integral =
        (theta ** alpha) *. (term (1.0 -. alpha) -. (theta *. term (-.alpha)))
      in
      2.0 *. integral
    end
  in
  let variance =
    if second_moment = Float.infinity then Float.infinity
    else second_moment -. (mean *. mean)
  in
  let sample rng =
    if infinite then Lrd_rng.Sampler.pareto rng ~theta ~alpha
    else Lrd_rng.Sampler.truncated_pareto rng ~theta ~alpha ~cutoff
  in
  {
    name =
      Printf.sprintf "truncated-pareto(theta=%g, alpha=%g, cutoff=%g)" theta
        alpha cutoff;
    mean;
    variance;
    survival_gt;
    survival_ge;
    survival_integral;
    max_support = (if infinite then None else Some cutoff);
    sample;
  }

let exponential ~mean =
  if not (mean > 0.0) then
    invalid_arg "Interarrival.exponential: mean must be positive";
  let survival t = if t <= 0.0 then 1.0 else exp (-.t /. mean) in
  {
    name = Printf.sprintf "exponential(mean=%g)" mean;
    mean;
    variance = mean *. mean;
    survival_gt = survival;
    survival_ge = survival;
    survival_integral =
      (fun a ->
        if a <= 0.0 then mean -. a else mean *. exp (-.a /. mean));
    max_support = None;
    sample = (fun rng -> Lrd_rng.Sampler.exponential rng ~rate:(1.0 /. mean));
  }

let deterministic ~value =
  if not (value > 0.0) then
    invalid_arg "Interarrival.deterministic: value must be positive";
  {
    name = Printf.sprintf "deterministic(%g)" value;
    mean = value;
    variance = 0.0;
    survival_gt = (fun t -> if t < value then 1.0 else 0.0);
    survival_ge = (fun t -> if t <= value then 1.0 else 0.0);
    survival_integral = (fun a -> Float.max 0.0 (value -. Float.max a 0.0)
                                  +. Float.max 0.0 (-.Float.min a 0.0));
    max_support = Some value;
    sample = (fun _ -> value);
  }

let uniform ~lo ~hi =
  if not (0.0 <= lo && lo < hi) then
    invalid_arg "Interarrival.uniform: need 0 <= lo < hi";
  let width = hi -. lo in
  let survival t =
    if t <= lo then 1.0 else if t >= hi then 0.0 else (hi -. t) /. width
  in
  let survival_integral a =
    if a >= hi then 0.0
    else if a >= lo then (hi -. a) *. (hi -. a) /. (2.0 *. width)
    else (lo -. a) +. (width /. 2.0)
  in
  {
    name = Printf.sprintf "uniform(%g, %g)" lo hi;
    mean = (lo +. hi) /. 2.0;
    variance = width *. width /. 12.0;
    survival_gt = survival;
    survival_ge = survival;
    survival_integral;
    max_support = Some hi;
    sample = (fun rng -> Lrd_rng.Sampler.uniform rng ~lo ~hi);
  }

let weibull ~shape ~scale =
  if not (shape > 0.0 && scale > 0.0) then
    invalid_arg "Interarrival.weibull: parameters must be positive";
  let survival t = if t <= 0.0 then 1.0 else exp (-.((t /. scale) ** shape)) in
  let gamma_fn x = exp (Lrd_numerics.Special.log_gamma x) in
  let mean = scale *. gamma_fn (1.0 +. (1.0 /. shape)) in
  let second = scale *. scale *. gamma_fn (1.0 +. (2.0 /. shape)) in
  let survival_integral a =
    if a <= 0.0 then mean -. a
    else
      Lrd_numerics.Quadrature.simpson_to_infinity ~f:survival ~a ~eps:1e-12
  in
  {
    name = Printf.sprintf "weibull(shape=%g, scale=%g)" shape scale;
    mean;
    variance = second -. (mean *. mean);
    survival_gt = survival;
    survival_ge = survival;
    survival_integral;
    max_support = None;
    sample =
      (fun rng ->
        let u = Lrd_rng.Rng.float_pos rng in
        scale *. ((-.log u) ** (1.0 /. shape)));
  }

let gamma ~shape ~scale =
  if not (shape > 0.0 && scale > 0.0) then
    invalid_arg "Interarrival.gamma: parameters must be positive";
  let survival t =
    if t <= 0.0 then 1.0
    else Lrd_numerics.Special.gamma_q ~a:shape ~x:(t /. scale)
  in
  let mean = shape *. scale in
  (* E[(T - a)^+] = mean Q(shape+1, a/scale) - a Q(shape, a/scale). *)
  let survival_integral a =
    if a <= 0.0 then mean -. a
    else
      (mean *. Lrd_numerics.Special.gamma_q ~a:(shape +. 1.0) ~x:(a /. scale))
      -. (a *. Lrd_numerics.Special.gamma_q ~a:shape ~x:(a /. scale))
  in
  {
    name = Printf.sprintf "gamma(shape=%g, scale=%g)" shape scale;
    mean;
    variance = shape *. scale *. scale;
    survival_gt = survival;
    survival_ge = survival;
    survival_integral;
    max_support = None;
    sample = (fun rng -> Lrd_rng.Sampler.gamma rng ~shape ~scale);
  }

let lognormal ~mu ~sigma =
  if not (sigma > 0.0) then
    invalid_arg "Interarrival.lognormal: sigma must be positive";
  let mean = exp (mu +. (sigma *. sigma /. 2.0)) in
  let variance = (exp (sigma *. sigma) -. 1.0) *. mean *. mean in
  let survival t =
    if t <= 0.0 then 1.0
    else 1.0 -. Lrd_numerics.Special.normal_cdf ((log t -. mu) /. sigma)
  in
  (* E[(T - a)^+] = mean Phi(sigma - d) - a (1 - Phi(d)),
     d = (ln a - mu) / sigma. *)
  let survival_integral a =
    if a <= 0.0 then mean -. a
    else begin
      let d = (log a -. mu) /. sigma in
      (mean *. Lrd_numerics.Special.normal_cdf (sigma -. d))
      -. (a *. (1.0 -. Lrd_numerics.Special.normal_cdf d))
    end
  in
  {
    name = Printf.sprintf "lognormal(mu=%g, sigma=%g)" mu sigma;
    mean;
    variance;
    survival_gt = survival;
    survival_ge = survival;
    survival_integral;
    max_support = None;
    sample = (fun rng -> Lrd_rng.Sampler.lognormal rng ~mu ~sigma);
  }

let hyperexponential ~weights ~means =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Interarrival.hyperexponential: empty mixture";
  if Array.length means <> k then
    invalid_arg "Interarrival.hyperexponential: mismatched lengths";
  Array.iter
    (fun m ->
      if not (m > 0.0) then
        invalid_arg "Interarrival.hyperexponential: means must be positive")
    means;
  Array.iter
    (fun w ->
      if not (w >= 0.0 && Float.is_finite w) then
        invalid_arg "Interarrival.hyperexponential: invalid weight")
    weights;
  let total = Lrd_numerics.Summation.kahan weights in
  if not (total > 0.0) then
    invalid_arg "Interarrival.hyperexponential: weights sum to zero";
  let w = Array.map (fun v -> v /. total) weights in
  let mix f =
    let acc = Lrd_numerics.Summation.create () in
    Array.iteri (fun i p -> Lrd_numerics.Summation.add acc (p *. f means.(i))) w;
    Lrd_numerics.Summation.total acc
  in
  let mean = mix Fun.id in
  let second = mix (fun m -> 2.0 *. m *. m) in
  let survival t =
    if t <= 0.0 then 1.0 else mix (fun m -> exp (-.t /. m))
  in
  let survival_integral a =
    if a <= 0.0 then mean -. a else mix (fun m -> m *. exp (-.a /. m))
  in
  let table = Lrd_rng.Sampler.discrete_of_weights w in
  {
    name = Printf.sprintf "hyperexponential(%d phases, mean=%g)" k mean;
    mean;
    variance = second -. (mean *. mean);
    survival_gt = survival;
    survival_ge = survival;
    survival_integral;
    max_support = None;
    sample =
      (fun rng ->
        let phase = Lrd_rng.Sampler.discrete_draw rng table in
        Lrd_rng.Sampler.exponential rng ~rate:(1.0 /. means.(phase)));
  }

let theta_for_mean_epoch ~mean_epoch ~alpha ?(cutoff = Float.infinity) () =
  if not (mean_epoch > 0.0) then
    invalid_arg "Interarrival.theta_for_mean_epoch: mean must be positive";
  if not (alpha > 1.0) then
    invalid_arg "Interarrival.theta_for_mean_epoch: alpha must exceed 1";
  if cutoff = Float.infinity then mean_epoch *. (alpha -. 1.0)
  else if mean_epoch >= cutoff then
    (* T = min(Pareto, cutoff) <= cutoff, so E[T] < cutoff always. *)
    invalid_arg
      "Interarrival.theta_for_mean_epoch: mean epoch must be below the \
       cutoff"
  else begin
    (* The truncated mean is increasing in theta, from 0 toward [cutoff],
       and truncation only lowers the mean, so the infinite-cutoff theta
       is a lower bracket endpoint; walk the upper endpoint up. *)
    let f theta = mean_given_cutoff ~theta ~alpha ~cutoff -. mean_epoch in
    let lo = mean_epoch *. (alpha -. 1.0) in
    let hi = ref (Float.max lo cutoff) in
    while f !hi < 0.0 do
      hi := !hi *. 2.0
    done;
    Lrd_numerics.Roots.bisection ~f ~lo ~hi:!hi ()
  end
