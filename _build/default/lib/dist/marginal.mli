(** Discrete marginal distributions of the fluid rate.

    The paper's source takes rates from a finite set [{lambda_1 ...
    lambda_M}] with probabilities [Pi = (pi_1 ... pi_M)], obtained in the
    experiments from a 50-bin histogram of a traffic trace.  This module
    represents such distributions and implements the two transformations
    of Section III used to study the impact of the marginal:

    - {!scale}: [lambda_i' = mean + a (lambda_i - mean)], width scaling at
      constant mean;
    - {!superpose}: the n-fold convolution renormalized to the original
      mean — the marginal of [n] statistically multiplexed copies with
      buffer and service rate per stream held constant. *)

type t
(** A finite rate distribution: strictly increasing rates with positive
    probabilities summing to one. *)

val create : rates:float array -> probs:float array -> t
(** Validates, sorts by rate, merges duplicate rates, drops zero-weight
    atoms, and normalizes the probabilities.
    @raise Invalid_argument on mismatched lengths, empty input, negative
    or non-finite entries, or an all-zero weight vector. *)

val of_points : (float * float) list -> t
(** [of_points [(rate, weight); ...]] — convenience over {!create}. *)

val constant : float -> t
(** Degenerate distribution at a single rate. *)

val rates : t -> float array
(** Strictly increasing support (fresh copy). *)

val probs : t -> float array
(** Probabilities aligned with {!rates} (fresh copy). *)

val size : t -> int
val mean : t -> float
val variance : t -> float
val std : t -> float

val support : t -> float * float
(** Smallest and largest rate. *)

val cdf : t -> float -> float
(** [cdf t x] is [Pr{rate <= x}]. *)

val quantile : t -> float -> float
(** Generalized inverse cdf: smallest rate with [cdf >= p], for
    [p] in (0, 1].  @raise Invalid_argument outside (0, 1]. *)

val peak_to_mean : t -> float
(** Largest rate divided by the mean (burstiness indicator). *)

val scale : ?clamp:bool -> t -> factor:float -> t
(** Width scaling at constant mean (Section III, second experiment set):
    [lambda_i' = mean + factor (lambda_i - mean)].  A factor below 1
    narrows the marginal.  Rates are fluid rates and must stay
    nonnegative: widening a marginal with atoms near zero can push them
    negative, in which case the default is to raise
    [Invalid_argument]; with [~clamp:true] such rates are clamped to
    zero instead (shifting the mean up slightly — the pragmatic choice
    for wide scalings of skewed marginals like the Ethernet trace's). *)

val superpose : ?bins:int -> t -> n:int -> t
(** Marginal of [n] independent superposed streams renormalized to the
    original mean: the n-fold convolution of the distribution, divided by
    [n].  The exact convolution support grows as [size^n], so the result
    is re-binned onto a uniform grid of at most [bins] (default 256)
    atoms after each convolution step; re-binning preserves total
    probability and the overall mean exactly (each bin keeps its
    conditional mean rate).  @raise Invalid_argument if [n < 1]. *)

val add : ?bins:int -> t -> t -> t
(** Marginal of the superposition of two {e different} independent
    streams: the convolution of the two distributions (no
    renormalization), re-binned to at most [bins] (default 256) atoms.
    Heterogeneous multiplexing: [add video ethernet] is the rate
    distribution a shared link sees. *)

val rebin : t -> bins:int -> t
(** Aggregates onto at most [bins] uniform-width bins over the support;
    each bin's representative rate is its conditional mean, so the
    distribution mean is preserved exactly. *)

val sampler : t -> (Lrd_rng.Rng.t -> float)
(** O(1) alias-method sampler for the distribution. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering: size, mean, std, support. *)
