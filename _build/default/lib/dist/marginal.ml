type t = { rates : float array; probs : float array }

let create ~rates ~probs =
  let n = Array.length rates in
  if n = 0 then invalid_arg "Marginal.create: empty support";
  if Array.length probs <> n then
    invalid_arg "Marginal.create: rates and probs must have equal lengths";
  Array.iter
    (fun r ->
      if not (Float.is_finite r) then
        invalid_arg "Marginal.create: rates must be finite")
    rates;
  Array.iter
    (fun p ->
      if not (p >= 0.0 && Float.is_finite p) then
        invalid_arg "Marginal.create: probabilities must be nonnegative")
    probs;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare rates.(i) rates.(j)) order;
  (* Merge duplicates and drop zero-weight atoms in one sorted pass. *)
  let merged_rates = ref [] and merged_probs = ref [] in
  Array.iter
    (fun i ->
      let r = rates.(i) and p = probs.(i) in
      if p > 0.0 then
        match (!merged_rates, !merged_probs) with
        | r0 :: _, p0 :: rest_p when r0 = r -> merged_probs := (p0 +. p) :: rest_p
        | _ ->
            merged_rates := r :: !merged_rates;
            merged_probs := p :: !merged_probs)
    order;
  let rates = Array.of_list (List.rev !merged_rates) in
  let probs = Array.of_list (List.rev !merged_probs) in
  if Array.length rates = 0 then
    invalid_arg "Marginal.create: all probabilities are zero";
  Lrd_numerics.Array_ops.normalize probs;
  { rates; probs }

let of_points points =
  let rates = Array.of_list (List.map fst points) in
  let probs = Array.of_list (List.map snd points) in
  create ~rates ~probs

let constant rate = create ~rates:[| rate |] ~probs:[| 1.0 |]
let rates t = Array.copy t.rates
let probs t = Array.copy t.probs
let size t = Array.length t.rates

let mean t =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p -> Lrd_numerics.Summation.add acc (p *. t.rates.(i)))
    t.probs;
  Lrd_numerics.Summation.total acc

let variance t =
  let m = mean t in
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let d = t.rates.(i) -. m in
      Lrd_numerics.Summation.add acc (p *. d *. d))
    t.probs;
  Float.max 0.0 (Lrd_numerics.Summation.total acc)

let std t = sqrt (variance t)
let support t = (t.rates.(0), t.rates.(Array.length t.rates - 1))

let cdf t x =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p -> if t.rates.(i) <= x then Lrd_numerics.Summation.add acc p)
    t.probs;
  Float.min 1.0 (Lrd_numerics.Summation.total acc)

let quantile t p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg "Marginal.quantile: p must lie in (0, 1]";
  let n = Array.length t.rates in
  let rec go i cumulative =
    if i >= n - 1 then t.rates.(n - 1)
    else begin
      let cumulative = cumulative +. t.probs.(i) in
      if cumulative >= p -. 1e-15 then t.rates.(i) else go (i + 1) cumulative
    end
  in
  go 0 0.0

let peak_to_mean t =
  let _, peak = support t in
  peak /. mean t

let scale ?(clamp = false) t ~factor =
  if not (factor >= 0.0) then
    invalid_arg "Marginal.scale: factor must be nonnegative";
  let m = mean t in
  let rates = Array.map (fun r -> m +. (factor *. (r -. m))) t.rates in
  let rates =
    Array.map
      (fun r ->
        if r >= 0.0 then r
        else if clamp then 0.0
        else invalid_arg "Marginal.scale: scaling produced a negative rate")
      rates
  in
  create ~rates ~probs:(Array.copy t.probs)

let rebin t ~bins =
  if bins < 1 then invalid_arg "Marginal.rebin: bins must be positive";
  let n = Array.length t.rates in
  if n <= bins then { rates = Array.copy t.rates; probs = Array.copy t.probs }
  else begin
    let lo, hi = support t in
    let width = (hi -. lo) /. float_of_int bins in
    let mass = Array.make bins 0.0 in
    let weighted_rate = Array.make bins 0.0 in
    for i = 0 to n - 1 do
      let b =
        if width = 0.0 then 0
        else min (bins - 1) (int_of_float ((t.rates.(i) -. lo) /. width))
      in
      mass.(b) <- mass.(b) +. t.probs.(i);
      weighted_rate.(b) <- weighted_rate.(b) +. (t.probs.(i) *. t.rates.(i))
    done;
    let rates = ref [] and probs = ref [] in
    for b = bins - 1 downto 0 do
      if mass.(b) > 0.0 then begin
        rates := (weighted_rate.(b) /. mass.(b)) :: !rates;
        probs := mass.(b) :: !probs
      end
    done;
    create ~rates:(Array.of_list !rates) ~probs:(Array.of_list !probs)
  end

(* Exact convolution of two discrete distributions followed by re-binning
   to keep the support size bounded. *)
let convolve_pair a b ~bins =
  let na = Array.length a.rates and nb = Array.length b.rates in
  let rates = Array.make (na * nb) 0.0 and probs = Array.make (na * nb) 0.0 in
  let k = ref 0 in
  for i = 0 to na - 1 do
    for j = 0 to nb - 1 do
      rates.(!k) <- a.rates.(i) +. b.rates.(j);
      probs.(!k) <- a.probs.(i) *. b.probs.(j);
      incr k
    done
  done;
  rebin (create ~rates ~probs) ~bins

let add ?(bins = 256) a b = convolve_pair a b ~bins

let superpose ?(bins = 256) t ~n =
  if n < 1 then invalid_arg "Marginal.superpose: n must be at least 1";
  if n = 1 then { rates = Array.copy t.rates; probs = Array.copy t.probs }
  else begin
    let rec aggregate acc k =
      if k = 0 then acc else aggregate (convolve_pair acc t ~bins) (k - 1)
    in
    let sum = aggregate t (n - 1) in
    (* Renormalize the aggregate to the original mean: divide rates by n. *)
    let inv_n = 1.0 /. float_of_int n in
    create
      ~rates:(Array.map (fun r -> r *. inv_n) sum.rates)
      ~probs:(Array.copy sum.probs)
  end

let sampler t =
  let table = Lrd_rng.Sampler.discrete_of_weights t.probs in
  let rates = Array.copy t.rates in
  fun rng -> rates.(Lrd_rng.Sampler.discrete_draw rng table)

let pp fmt t =
  let lo, hi = support t in
  Format.fprintf fmt "marginal(%d atoms, mean=%.4g, std=%.4g, [%.4g, %.4g])"
    (size t) (mean t) (std t) lo hi
