(** Continuous distributions used by the synthetic trace generators.

    The probability-integral transform that imposes a target marginal on
    fractional Gaussian noise needs cdfs and quantile functions; these are
    the laws used to mimic the paper's trace marginals (Gamma for the
    JPEG video rates, lognormal for Ethernet-like rates). *)

type t = {
  name : string;
  mean : float;
  variance : float;
  cdf : float -> float;
  quantile : float -> float;  (** Inverse cdf on (0, 1). *)
  sample : Lrd_rng.Rng.t -> float;
}

val gamma : shape:float -> scale:float -> t
(** Gamma distribution; quantile by safeguarded Newton on the cdf.
    @raise Invalid_argument unless both parameters are positive. *)

val lognormal : mu:float -> sigma:float -> t
(** Lognormal with log-mean [mu] and log-std [sigma]. *)

val normal : mean:float -> std:float -> t

val gamma_of_mean_cv : mean:float -> cv:float -> t
(** Gamma parameterized by mean and coefficient of variation
    ([std/mean]); convenient for matching trace statistics. *)

val lognormal_of_mean_cv : mean:float -> cv:float -> t
(** Lognormal matched to a target mean and coefficient of variation. *)
