open Lrd_numerics

type t = {
  name : string;
  mean : float;
  variance : float;
  cdf : float -> float;
  quantile : float -> float;
  sample : Lrd_rng.Rng.t -> float;
}

let gamma ~shape ~scale =
  if not (shape > 0.0 && scale > 0.0) then
    invalid_arg "Continuous.gamma: parameters must be positive";
  let cdf x = if x <= 0.0 then 0.0 else Special.gamma_p ~a:shape ~x:(x /. scale) in
  let mean = shape *. scale in
  let std = sqrt shape *. scale in
  let quantile p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Continuous.gamma quantile: p must lie in (0, 1)";
    (* Bracket around a normal approximation, then bisect/Newton. *)
    let guess = Float.max (mean +. (Special.normal_quantile p *. std)) 1e-12 in
    let lo = ref (Float.min guess 1e-12) and hi = ref (Float.max guess mean) in
    while cdf !lo > p do
      lo := !lo /. 4.0
    done;
    while cdf !hi < p do
      hi := !hi *. 2.0
    done;
    Roots.bisection ~f:(fun x -> cdf x -. p) ~lo:!lo ~hi:!hi ~eps:1e-13 ()
  in
  {
    name = Printf.sprintf "gamma(shape=%g, scale=%g)" shape scale;
    mean;
    variance = shape *. scale *. scale;
    cdf;
    quantile;
    sample = (fun rng -> Lrd_rng.Sampler.gamma rng ~shape ~scale);
  }

let normal ~mean ~std =
  if not (std > 0.0) then
    invalid_arg "Continuous.normal: std must be positive";
  {
    name = Printf.sprintf "normal(mean=%g, std=%g)" mean std;
    mean;
    variance = std *. std;
    cdf = (fun x -> Special.normal_cdf ((x -. mean) /. std));
    quantile =
      (fun p -> mean +. (std *. Special.normal_quantile p));
    sample = (fun rng -> Lrd_rng.Sampler.normal rng ~mean ~std);
  }

let lognormal ~mu ~sigma =
  if not (sigma > 0.0) then
    invalid_arg "Continuous.lognormal: sigma must be positive";
  let mean = exp (mu +. (sigma *. sigma /. 2.0)) in
  let variance = (exp (sigma *. sigma) -. 1.0) *. mean *. mean in
  {
    name = Printf.sprintf "lognormal(mu=%g, sigma=%g)" mu sigma;
    mean;
    variance;
    cdf =
      (fun x ->
        if x <= 0.0 then 0.0 else Special.normal_cdf ((log x -. mu) /. sigma));
    quantile = (fun p -> exp (mu +. (sigma *. Special.normal_quantile p)));
    sample = (fun rng -> Lrd_rng.Sampler.lognormal rng ~mu ~sigma);
  }

let gamma_of_mean_cv ~mean ~cv =
  if not (mean > 0.0 && cv > 0.0) then
    invalid_arg "Continuous.gamma_of_mean_cv: parameters must be positive";
  let shape = 1.0 /. (cv *. cv) in
  gamma ~shape ~scale:(mean /. shape)

let lognormal_of_mean_cv ~mean ~cv =
  if not (mean > 0.0 && cv > 0.0) then
    invalid_arg "Continuous.lognormal_of_mean_cv: parameters must be positive";
  let sigma2 = log (1.0 +. (cv *. cv)) in
  lognormal ~mu:(log mean -. (sigma2 /. 2.0)) ~sigma:(sqrt sigma2)
