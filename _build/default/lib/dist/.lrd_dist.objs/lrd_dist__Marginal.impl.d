lib/dist/marginal.ml: Array Float Format List Lrd_numerics Lrd_rng
