lib/dist/continuous.mli: Lrd_rng
