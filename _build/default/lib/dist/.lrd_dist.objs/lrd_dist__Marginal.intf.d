lib/dist/marginal.mli: Format Lrd_rng
