lib/dist/interarrival.mli: Lrd_rng
