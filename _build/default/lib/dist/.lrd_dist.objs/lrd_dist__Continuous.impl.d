lib/dist/continuous.ml: Float Lrd_numerics Lrd_rng Printf Roots Special
