lib/dist/interarrival.ml: Array Float Fun Lrd_numerics Lrd_rng Printf
