(** Interarrival-time (epoch-length) laws for the modulated fluid model.

    The paper's source model redraws the fluid rate at the points of a
    renewal process; the epoch length [T] determines both the correlation
    structure of the rate process (via the residual-life ccdf, eq. 5) and
    the increment distribution [W = T (lambda - c)] driving the queue.

    Everything the solver needs from a law is captured here:
    - strict and weak survival functions ([Pr{T > t}] and [Pr{T >= t}]),
      both required because laws with atoms (the truncated Pareto has one
      at the cutoff) must place atom mass on the correct side of each
      discretization boundary for the floor/ceiling bound construction
      (eqs. 21-22) to remain a true bound;
    - the integrated survival [int_a^inf Pr{T > t} dt], which gives the
      generic expected-overflow term
      [E[(T d - y)^+] = d * survival_integral (y / d)] for [d > 0];
    - the mean (eq. 25 for the truncated Pareto) and variance (used by the
      correlation-horizon estimate, eq. 26).

    The type is a first-class record so any law — the paper's truncated
    Pareto or an SRD stand-in — plugs into the same solver, which is
    exactly the paper's point: any model capturing correlation up to the
    correlation horizon predicts the same loss. *)

type t = {
  name : string;  (** Human-readable description for reports. *)
  mean : float;  (** E[T]. *)
  variance : float;  (** Var[T]. *)
  survival_gt : float -> float;  (** [Pr{T > t}]; 1 for [t < 0]. *)
  survival_ge : float -> float;  (** [Pr{T >= t}]; 1 for [t <= 0]. *)
  survival_integral : float -> float;
      (** [fun a -> int_a^inf Pr{T > t} dt]; equals [mean] at [a <= 0]. *)
  max_support : float option;  (** Supremum of the support if finite. *)
  sample : Lrd_rng.Rng.t -> float;  (** Random variate. *)
}

val truncated_pareto : theta:float -> alpha:float -> cutoff:float -> t
(** The paper's law (eq. 6): ccdf [((t + theta)/theta)^-alpha] for
    [t < cutoff], zero beyond, hence an atom of mass
    [((cutoff + theta)/theta)^-alpha] at [cutoff] (equivalently,
    [T = min(Pareto(theta, alpha), cutoff)]).  [cutoff = infinity] gives
    the pure Pareto law, asymptotically self-similar with
    [H = (3 - alpha)/2]; then [alpha > 1] is required for a finite mean
    and the variance is infinite for [alpha <= 2].
    @raise Invalid_argument unless [theta > 0], [alpha > 1] (for finite
    mean when [cutoff] is infinite; any [alpha > 0] with finite cutoff),
    and [cutoff > 0]. *)

val exponential : mean:float -> t
(** Memoryless epochs: the natural SRD baseline (geometric-like decay of
    rate correlation). *)

val deterministic : value:float -> t
(** Constant epochs. *)

val uniform : lo:float -> hi:float -> t
(** Uniform on [[lo, hi]], [0 <= lo < hi]. *)

val weibull : shape:float -> scale:float -> t
(** Weibull epochs; stretched-exponential correlation decay.  The
    survival integral is evaluated by adaptive quadrature. *)

val gamma : shape:float -> scale:float -> t
(** Gamma epochs (Erlang-like for integer shapes); survival via the
    regularized incomplete gamma function, survival integral in closed
    form. *)

val lognormal : mu:float -> sigma:float -> t
(** Lognormal epochs — moderately heavy-tailed but with all moments
    finite; survival integral in closed form (the Black-Scholes partial
    expectation). *)

val hyperexponential : weights:float array -> means:float array -> t
(** Mixture of exponentials: phase [i] is chosen with probability
    [weights.(i)] and the epoch is exponential with mean [means.(i)].
    With geometrically spread means this is the classical light-tailed
    stand-in for a power law over a finite range of scales — the
    epoch-level counterpart of the multi-time-scale Markov chain.
    Everything is in closed form.  @raise Invalid_argument on empty or
    mismatched inputs, nonpositive means, or weights that do not form a
    (normalizable) positive vector. *)

val theta_for_mean_epoch :
  mean_epoch:float -> alpha:float -> ?cutoff:float -> unit -> float
(** Solves eq. 25 for [theta]: the Pareto scale such that the truncated
    Pareto with the given [alpha] and [cutoff] (default infinity) has mean
    epoch duration [mean_epoch].  With an infinite cutoff this is
    [theta = mean_epoch * (alpha - 1)] in closed form; with a finite
    cutoff the equation is solved numerically. *)

val mean_given_cutoff : theta:float -> alpha:float -> cutoff:float -> float
(** Eq. 25: [E[T] = theta/(alpha-1) (1 - (cutoff/theta + 1)^(1-alpha))].
    Accepts [cutoff = infinity]. *)
