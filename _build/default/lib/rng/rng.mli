(** Deterministic pseudo-random number generation with explicit state.

    All stochastic code in this repository (trace generation, shuffling,
    Monte Carlo cross-checks) draws from this module so that every
    experiment is reproducible from a seed.  The generator is
    xoshiro256**, seeded through SplitMix64 as its authors recommend. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** Fresh generator deterministically derived from [seed]. *)

val split : t -> t
(** A new generator whose stream is independent of (and deterministically
    derived from) the current state of [t].  Advances [t]. *)

val copy : t -> t
(** Snapshot of the current state. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform on \[0, 1): 53-bit mantissa resolution. *)

val float_pos : t -> float
(** Uniform on (0, 1): never returns 0, safe for [log]. *)

val int : t -> bound:int -> int
(** Uniform on \[0, bound): rejection sampling, unbiased.
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
