(** Random variate generation on top of {!Rng}.

    These samplers feed the Monte Carlo cross-checks of the analytic
    solver and the synthetic trace generators (Gamma marginals for the
    video trace, Pareto on/off periods for the Ethernet trace). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with the given rate (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : Rng.t -> theta:float -> alpha:float -> float
(** Shifted Pareto with ccdf [((t + theta)/theta)^-alpha] on [t >= 0]
    (the paper's eq. 6 with no cutoff).
    @raise Invalid_argument unless [theta > 0 && alpha > 0]. *)

val truncated_pareto :
  Rng.t -> theta:float -> alpha:float -> cutoff:float -> float
(** The paper's truncated Pareto: [min (pareto theta alpha) cutoff], with
    an atom at [cutoff]. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via Box-Muller (no state caching, so sequences stay
    reproducible under [Rng.copy]). *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Gamma via Marsaglia-Tsang squeeze; handles [shape < 1] by boosting.
    @raise Invalid_argument unless both parameters are positive. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float

type discrete
(** Sampler for a finite discrete distribution (Walker alias method,
    O(1) per draw). *)

val discrete_of_weights : float array -> discrete
(** Builds the alias table.  Weights must be nonnegative with a positive
    sum.  @raise Invalid_argument otherwise. *)

val discrete_draw : Rng.t -> discrete -> int
(** Index distributed proportionally to the weights. *)
