lib/rng/sampler.mli: Rng
