lib/rng/rng.ml: Int64
