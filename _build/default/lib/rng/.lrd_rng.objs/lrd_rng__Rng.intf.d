lib/rng/rng.mli:
