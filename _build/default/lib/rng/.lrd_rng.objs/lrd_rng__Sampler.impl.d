lib/rng/sampler.ml: Array Float Lrd_numerics Queue Rng
