let uniform rng ~lo ~hi = lo +. ((hi -. lo) *. Rng.float rng)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Sampler.exponential: rate must be positive";
  -.log (Rng.float_pos rng) /. rate

let pareto rng ~theta ~alpha =
  if theta <= 0.0 || alpha <= 0.0 then
    invalid_arg "Sampler.pareto: parameters must be positive";
  (* Invert the ccdf ((t + theta)/theta)^-alpha = u. *)
  let u = Rng.float_pos rng in
  theta *. ((u ** (-1.0 /. alpha)) -. 1.0)

let truncated_pareto rng ~theta ~alpha ~cutoff =
  if cutoff <= 0.0 then
    invalid_arg "Sampler.truncated_pareto: cutoff must be positive";
  Float.min (pareto rng ~theta ~alpha) cutoff

let normal rng ~mean ~std =
  let u1 = Rng.float_pos rng and u2 = Rng.float rng in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Sampler.gamma: parameters must be positive";
  if shape < 1.0 then begin
    (* Boost: X(a) = X(a+1) * U^(1/a). *)
    let x = gamma rng ~shape:(shape +. 1.0) ~scale in
    let u = Rng.float_pos rng in
    x *. (u ** (1.0 /. shape))
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec go () =
      let x = normal rng ~mean:0.0 ~std:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then go ()
      else begin
        let v = v *. v *. v in
        let u = Rng.float_pos rng in
        let x2 = x *. x in
        if
          u < 1.0 -. (0.0331 *. x2 *. x2)
          || log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v))
        then d *. v
        else go ()
      end
    in
    scale *. go ()
  end

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

type discrete = { probabilities : float array; aliases : int array }

let discrete_of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampler.discrete_of_weights: empty weights";
  Array.iter
    (fun w ->
      if not (w >= 0.0) then
        invalid_arg "Sampler.discrete_of_weights: negative or NaN weight")
    weights;
  let total = Lrd_numerics.Summation.kahan weights in
  if not (total > 0.0) then
    invalid_arg "Sampler.discrete_of_weights: weights must sum to > 0";
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let probabilities = Array.make n 1.0 in
  let aliases = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    probabilities.(s) <- scaled.(s);
    aliases.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
  done;
  (* Whatever remains has probability numerically equal to 1. *)
  { probabilities; aliases }

let discrete_draw rng d =
  let n = Array.length d.probabilities in
  let i = Rng.int rng ~bound:n in
  if Rng.float rng < d.probabilities.(i) then i else d.aliases.(i)
