(** Token-bucket traffic shaping.

    The open-loop version of the paper's "source traffic control":
    a bucket of depth [burst] fills at [rate]; traffic passes while
    tokens last and the excess is queued in a shaping buffer (delayed)
    or dropped when that buffer is full.  Shaping clips the marginal's
    upper tail — exactly the scaling-down transformation the paper shows
    to dominate buffering. *)

type result = {
  shaped : Lrd_trace.Trace.t;  (** Rate trace entering the network. *)
  delayed_work : float;  (** Work that waited in the shaping buffer. *)
  dropped_work : float;  (** Work dropped at the shaper. *)
  max_shaper_backlog : float;
}

val shape :
  rate:float ->
  burst:float ->
  ?shaper_buffer:float ->
  Lrd_trace.Trace.t ->
  result
(** Shapes the trace slot by slot (fluid within a slot).  The default
    shaping buffer is infinite (pure delaying shaper).
    @raise Invalid_argument unless [rate > 0], [burst >= 0] and the
    buffer is nonnegative. *)
