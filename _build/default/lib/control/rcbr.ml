type params = {
  interval : float;
  quantile : float;
  headroom : float;
  hysteresis : float;
}

let default =
  { interval = 1.0; quantile = 0.9; headroom = 0.1; hysteresis = 0.05 }

type result = {
  reserved : Lrd_trace.Trace.t;
  renegotiations : int;
  renegotiation_rate : float;
  mean_reservation : float;
  reservation_std : float;
  smoothing_backlog : float;
}

(* Quantile of a scratch copy (small windows; sorting is fine). *)
let window_quantile data ~p =
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let idx =
    min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))
  in
  sorted.(idx)

let control ?(params = default) trace =
  if not (params.interval > 0.0) then
    invalid_arg "Rcbr.control: interval must be positive";
  if not (params.quantile > 0.0 && params.quantile <= 1.0) then
    invalid_arg "Rcbr.control: quantile must lie in (0, 1]";
  if not (params.headroom >= 0.0) then
    invalid_arg "Rcbr.control: headroom must be nonnegative";
  let slot = trace.Lrd_trace.Trace.slot in
  let window = max 1 (int_of_float (Float.round (params.interval /. slot))) in
  let n = Lrd_trace.Trace.length trace in
  if n < window then
    invalid_arg "Rcbr.control: trace shorter than one interval";
  let rates = trace.Lrd_trace.Trace.rates in
  let reserved = Array.make n 0.0 in
  (* Initial reservation from the first window (the paper's service
     would use the signalled traffic descriptor; the first window is
     the honest equivalent). *)
  let current =
    ref
      (window_quantile (Array.sub rates 0 window) ~p:params.quantile
      *. (1.0 +. params.headroom))
  in
  let renegotiations = ref 0 in
  let backlog = ref 0.0 and max_backlog = ref 0.0 in
  for i = 0 to n - 1 do
    (* Renegotiate at interval boundaries based on the last window. *)
    if i > 0 && i mod window = 0 then begin
      let proposal =
        window_quantile (Array.sub rates (i - window) window)
          ~p:params.quantile
        *. (1.0 +. params.headroom)
      in
      let relative_change =
        Float.abs (proposal -. !current) /. Float.max !current 1e-12
      in
      if relative_change > params.hysteresis then begin
        current := proposal;
        incr renegotiations
      end
    end;
    reserved.(i) <- !current;
    (* Source-side smoothing buffer absorbs work above the reservation
       and drains when the rate dips below it. *)
    backlog :=
      Float.max 0.0 (!backlog +. ((rates.(i) -. !current) *. slot));
    if !backlog > !max_backlog then max_backlog := !backlog
  done;
  let reserved_trace = Lrd_trace.Trace.create ~rates:reserved ~slot in
  {
    reserved = reserved_trace;
    renegotiations = !renegotiations;
    renegotiation_rate =
      float_of_int !renegotiations /. Lrd_trace.Trace.duration trace;
    mean_reservation = Lrd_trace.Trace.mean reserved_trace;
    reservation_std = Lrd_trace.Trace.std reserved_trace;
    smoothing_backlog = !max_backlog;
  }
