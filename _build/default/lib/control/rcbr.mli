(** Renegotiated CBR: the feedback rate control the paper points to.

    Section III closes by suggesting "a feedback-based rate control
    mechanism" as the efficient way to reshape an LRD source's marginal,
    citing the authors' RCBR service (Grossglauser, Keshav & Tse): the
    source periodically renegotiates a constant reservation that tracks
    its slow (scene-level) rate variations, while a small buffer absorbs
    the fast ones.  The carried process then has the reservation's
    marginal — much narrower than the raw rate's — at the price of a
    bounded renegotiation signalling rate.

    This implementation renegotiates at fixed intervals to a safety
    quantile of the rates observed over the previous interval (the
    measurement window), with hysteresis to suppress chatter. *)

type params = {
  interval : float;  (** Renegotiation interval (s). *)
  quantile : float;  (** Reservation = this quantile of the last window. *)
  headroom : float;  (** Multiplicative safety margin on the reservation. *)
  hysteresis : float;
      (** Skip a renegotiation when the new reservation is within this
          relative distance of the current one. *)
}

val default : params
(** 1 s interval, 0.9 quantile, 10% headroom, 5% hysteresis. *)

type result = {
  reserved : Lrd_trace.Trace.t;
      (** The reservation process — the traffic the network must carry;
          its marginal is what the queue sees. *)
  renegotiations : int;  (** Number of reservation changes. *)
  renegotiation_rate : float;  (** Changes per second. *)
  mean_reservation : float;
  reservation_std : float;
  smoothing_backlog : float;
      (** Largest backlog the source-side smoothing buffer absorbed
          (work above the reservation within an interval). *)
}

val control : ?params:params -> Lrd_trace.Trace.t -> result
(** Runs the controller over the trace.  @raise Invalid_argument on a
    nonpositive interval, a quantile outside (0, 1], negative headroom,
    or a trace shorter than one renegotiation interval. *)
