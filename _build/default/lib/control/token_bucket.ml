type result = {
  shaped : Lrd_trace.Trace.t;
  delayed_work : float;
  dropped_work : float;
  max_shaper_backlog : float;
}

let shape ~rate ~burst ?(shaper_buffer = Float.infinity) trace =
  if not (rate > 0.0) then
    invalid_arg "Token_bucket.shape: rate must be positive";
  if not (burst >= 0.0) then
    invalid_arg "Token_bucket.shape: burst must be nonnegative";
  if not (shaper_buffer >= 0.0) then
    invalid_arg "Token_bucket.shape: buffer must be nonnegative";
  let slot = trace.Lrd_trace.Trace.slot in
  let tokens = ref burst and backlog = ref 0.0 in
  let delayed = Lrd_numerics.Summation.create () in
  let dropped = Lrd_numerics.Summation.create () in
  let max_backlog = ref 0.0 in
  let shaped =
    Array.map
      (fun input_rate ->
        let supply = !tokens +. (rate *. slot) in
        let demand = !backlog +. (input_rate *. slot) in
        let sent = Float.min demand supply in
        let leftover = demand -. sent in
        let kept = Float.min leftover shaper_buffer in
        Lrd_numerics.Summation.add dropped (leftover -. kept);
        Lrd_numerics.Summation.add delayed kept;
        backlog := kept;
        if kept > !max_backlog then max_backlog := kept;
        tokens := Float.min burst (supply -. sent);
        sent /. slot)
      trace.Lrd_trace.Trace.rates
  in
  {
    shaped = Lrd_trace.Trace.create ~rates:shaped ~slot;
    delayed_work = Lrd_numerics.Summation.total delayed;
    dropped_work = Lrd_numerics.Summation.total dropped;
    max_shaper_backlog = !max_backlog;
  }
