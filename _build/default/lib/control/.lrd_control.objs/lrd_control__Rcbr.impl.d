lib/control/rcbr.ml: Array Float Lrd_trace
