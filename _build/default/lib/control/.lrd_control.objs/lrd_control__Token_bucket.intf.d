lib/control/token_bucket.mli: Lrd_trace
