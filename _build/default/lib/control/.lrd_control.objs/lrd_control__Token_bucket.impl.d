lib/control/token_bucket.ml: Array Float Lrd_numerics Lrd_trace
