lib/control/rcbr.mli: Lrd_trace
