(** Discrete autoregressive DAR(1) rate process: the classic parsimonious
    Markovian baseline.

    At each slot the rate is kept with probability [rho] and redrawn from
    the marginal otherwise, giving exactly geometric autocorrelation
    [rho^k] and an arbitrary marginal — the textbook short-range
    dependent model the paper contrasts with self-similar sources.  Its
    correlation becomes negligible beyond roughly
    [log eps / log rho] slots, so a DAR(1) matched to the traffic's
    short-lag correlation is exactly the kind of "model capturing
    correlation up to the correlation horizon" that the paper argues is
    sufficient for finite-buffer loss prediction. *)

type t

val create : marginal:Lrd_dist.Marginal.t -> rho:float -> t
(** @raise Invalid_argument unless [0 <= rho < 1]. *)

val of_lag1 : marginal:Lrd_dist.Marginal.t -> lag1:float -> t
(** DAR(1) whose lag-1 autocorrelation equals [lag1]. *)

val rho : t -> float
val marginal : t -> Lrd_dist.Marginal.t

val autocorrelation : t -> lag:int -> float
(** Exact: [rho^lag]. *)

val correlation_time : t -> epsilon:float -> float
(** Number of slots after which the autocorrelation drops below
    [epsilon]: [log epsilon / log rho] ([infinity] when [rho = 0] is
    never needed: returns 0). *)

val generate : t -> Lrd_rng.Rng.t -> slots:int -> slot:float -> Lrd_trace.Trace.t
(** Sample path binned at the given slot length. *)
