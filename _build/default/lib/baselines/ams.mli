(** Anick–Mitra–Sondhi: the exact spectral solution of a fluid queue fed
    by N independent exponential on/off sources.

    This is the canonical {e Markovian} fluid-queue result the paper's
    surrounding literature builds on (Elwalid et al.; Li & Hwang): the
    modulating process is a birth–death chain on the number of ON
    sources, and the stationary joint distribution
    [F_j(x) = Pr{J = j, Q <= x}] of an {e infinite} buffer satisfies
    [dF/dx D = F M] with [D = diag(j r - c)] and [M] the generator, so

    [F(x) = pi + sum_(z_k < 0) a_k e^(z_k x) phi_k]

    where [(z_k, phi_k)] solve the tridiagonal eigenproblem
    [z phi D = phi M] and the coefficients come from the boundary
    conditions [F_j(0) = 0] at the up-drift states.  Eigenvalues are
    found as sign changes of the (rescaled) tridiagonal determinant
    recurrence and polished by bisection; coefficients via LU.

    Uses within this repository: an exact analytic oracle for the fluid
    simulator; and the overflow probability [Pr{Q > b}] is the paper's
    footnote-2 upper bound on the loss rate of the corresponding
    finite-buffer queue. *)

type t

val create :
  sources:int ->
  on_rate:float ->
  lambda:float ->
  mu:float ->
  service_rate:float ->
  t
(** [sources] independent on/off sources, each emitting [on_rate] while
    ON, turning ON at rate [lambda] and OFF at rate [mu]; served at
    [service_rate].  Requirements checked: all parameters positive; the
    system stable ([mean rate < service_rate]); at least one state with
    positive drift ([sources * on_rate > service_rate], otherwise the
    queue is trivially empty); and no state with exactly zero drift
    ([j * on_rate <> service_rate] for all [j]).
    @raise Invalid_argument otherwise. *)

val mean_rate : t -> float
(** [sources * on_rate * lambda / (lambda + mu)]. *)

val utilization : t -> float

val stationary : t -> float array
(** Binomial distribution of the number of ON sources. *)

val negative_eigenvalues : t -> float array
(** The stable spectrum, sorted ascending (most negative first); one
    eigenvalue per positive-drift state. *)

val overflow_probability : t -> level:float -> float
(** [Pr{Q > level}] for the infinite buffer; at [level <= 0] this is the
    probability the queue is nonempty. *)

val all_eigenvalues : t -> float array
(** The complete spectrum of the pencil [z phi D = phi M], sorted
    ascending: one negative eigenvalue per positive-drift state, zero,
    and one positive eigenvalue per each remaining negative-drift state
    but one. *)

val finite_buffer_loss : t -> buffer:float -> float
(** The {e exact} stationary loss rate of the finite buffer [B]: the
    spectral expansion now uses the full spectrum, with boundary
    conditions [F_j(0) = 0] at up-drift states and [F_j(B) = pi_j] at
    down-drift states; the loss rate is
    [sum_(up j) d_j (pi_j - F_j(B)) / mean rate] (work overflows at
    rate [d_j] exactly while the buffer is full in an up state).
    Positive-eigenvalue modes are parameterized as [e^(z (x - B))] so
    the boundary system stays well conditioned for large buffers.
    @raise Invalid_argument unless [buffer > 0]. *)

val sample_epochs :
  t -> Lrd_rng.Rng.t -> n:int -> (float * float) array
(** Exact CTMC sample path of the aggregate rate: [n] epochs of
    [(rate, exponential holding time)], started from the stationary
    distribution — for Monte Carlo validation of the spectral result. *)
