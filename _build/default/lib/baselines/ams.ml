type t = {
  sources : int;
  on_rate : float;
  lambda : float;
  mu : float;
  service_rate : float;
}

let mean_rate t =
  float_of_int t.sources *. t.on_rate *. t.lambda /. (t.lambda +. t.mu)

let utilization t = mean_rate t /. t.service_rate

let drift t j = (float_of_int j *. t.on_rate) -. t.service_rate

let create ~sources ~on_rate ~lambda ~mu ~service_rate =
  if sources < 1 then invalid_arg "Ams.create: need at least one source";
  if not (on_rate > 0.0 && lambda > 0.0 && mu > 0.0 && service_rate > 0.0)
  then invalid_arg "Ams.create: parameters must be positive";
  let t = { sources; on_rate; lambda; mu; service_rate } in
  if not (mean_rate t < service_rate) then
    invalid_arg "Ams.create: unstable system (mean rate >= service rate)";
  if not (float_of_int sources *. on_rate > service_rate) then
    invalid_arg
      "Ams.create: peak rate below service rate (queue always empty)";
  for j = 0 to sources do
    if drift t j = 0.0 then
      invalid_arg "Ams.create: a state has exactly zero drift"
  done;
  t

let stationary t =
  let n = t.sources in
  let p = t.lambda /. (t.lambda +. t.mu) in
  let log_choose n k =
    Lrd_numerics.Special.log_gamma (float_of_int (n + 1))
    -. Lrd_numerics.Special.log_gamma (float_of_int (k + 1))
    -. Lrd_numerics.Special.log_gamma (float_of_int (n - k + 1))
  in
  Array.init (n + 1) (fun j ->
      exp
        (log_choose n j
        +. (float_of_int j *. log p)
        +. (float_of_int (n - j) *. log (1.0 -. p))))

(* Entries of T(z) = M^T - z D, tridiagonal over j = 0..N:
   diagonal  a_j(z) = -((N-j) lambda + j mu) - z d_j
   sub       b_j    = (N-j+1) lambda   (row j, column j-1)
   super     c_j    = (j+1) mu         (row j, column j+1). *)
let diag t z j =
  -.((float_of_int (t.sources - j) *. t.lambda) +. (float_of_int j *. t.mu))
  -. (z *. drift t j)

let sub t j = float_of_int (t.sources - j + 1) *. t.lambda
let super t j = float_of_int (j + 1) *. t.mu

(* Sign of det T(z) via the three-term recurrence with rescaling (the
   raw determinant overflows for moderate N). *)
let det_sign t z =
  let n = t.sources in
  let prev2 = ref 1.0 and prev1 = ref (diag t z 0) in
  for j = 1 to n do
    let v = (diag t z j *. !prev1) -. (sub t j *. super t (j - 1) *. !prev2) in
    prev2 := !prev1;
    prev1 := v;
    let m = Float.max (Float.abs !prev1) (Float.abs !prev2) in
    if m > 1e150 then begin
      prev1 := !prev1 /. m;
      prev2 := !prev2 /. m
    end
    else if m > 0.0 && m < 1e-150 then begin
      prev1 := !prev1 /. m;
      prev2 := !prev2 /. m
    end
  done;
  !prev1

(* Gershgorin bound for the pencil eigenvalues (rows of D^-1 M^T). *)
let spectral_radius t =
  let n = t.sources in
  let worst = ref 0.0 in
  for j = 0 to n do
    let off =
      (if j > 0 then Float.abs (sub t j) else 0.0)
      +. if j < n then Float.abs (super t j) else 0.0
    in
    let r = (Float.abs (diag t 0.0 j) +. off) /. Float.abs (drift t j) in
    if r > !worst then worst := r
  done;
  !worst *. 1.01

(* Sign-change scan over [lo, hi] refined until [wanted] roots appear. *)
let eigenvalues_in t ~lo ~hi ~wanted ~context =
  let find_roots points =
    let xs = Lrd_numerics.Array_ops.linspace lo hi points in
    let roots = ref [] in
    let prev = ref (det_sign t xs.(0)) in
    for i = 1 to points - 1 do
      let v = det_sign t xs.(i) in
      if (!prev < 0.0 && v > 0.0) || (!prev > 0.0 && v < 0.0) then
        roots :=
          Lrd_numerics.Roots.bisection ~f:(det_sign t) ~lo:xs.(i - 1)
            ~hi:xs.(i) ~eps:1e-13 ()
          :: !roots
      else if v = 0.0 then roots := xs.(i) :: !roots;
      prev := v
    done;
    List.sort_uniq Float.compare !roots
  in
  let rec search points =
    let roots = find_roots points in
    if List.length roots >= wanted || points > 400_000 then roots
    else search (points * 4)
  in
  let roots = search (64 * (t.sources + 1)) in
  if List.length roots <> wanted then
    failwith
      (Printf.sprintf "Ams.%s: found %d of %d expected eigenvalues" context
         (List.length roots) wanted);
  Array.of_list roots

let count_states t predicate =
  let count = ref 0 in
  for j = 0 to t.sources do
    if predicate (drift t j) then incr count
  done;
  !count

let negative_eigenvalues t =
  let radius = spectral_radius t in
  eigenvalues_in t ~lo:(-.radius) ~hi:(-.(radius *. 1e-12))
    ~wanted:(count_states t (fun d -> d > 0.0))
    ~context:"negative_eigenvalues"

let positive_eigenvalues t =
  let radius = spectral_radius t in
  (* All but one of the down-drift states contribute a positive
     eigenvalue (the remaining one is z = 0). *)
  let wanted = count_states t (fun d -> d < 0.0) - 1 in
  if wanted = 0 then [||]
  else
    eigenvalues_in t ~lo:(radius *. 1e-12) ~hi:radius ~wanted
      ~context:"positive_eigenvalues"

let all_eigenvalues t =
  Array.concat [ negative_eigenvalues t; [| 0.0 |]; positive_eigenvalues t ]

(* Eigenvector of T(z) phi = 0 by the forward tridiagonal recurrence. *)
let eigenvector t z =
  let n = t.sources in
  let phi = Array.make (n + 1) 0.0 in
  phi.(0) <- 1.0;
  if n >= 1 then phi.(1) <- -.(diag t z 0) /. super t 0;
  for j = 1 to n - 1 do
    phi.(j + 1) <-
      -.((sub t j *. phi.(j - 1)) +. (diag t z j *. phi.(j))) /. super t j
  done;
  (* Normalize to unit max magnitude for conditioning. *)
  let m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 phi in
  Array.map (fun v -> v /. m) phi

let spectral_solution t =
  let n = t.sources in
  let pi = stationary t in
  let zs = negative_eigenvalues t in
  let phis = Array.map (eigenvector t) zs in
  (* Boundary conditions: F_j(0) = pi_j + sum_k a_k phi_kj = 0 at every
     positive-drift state j. *)
  let up_states =
    List.filter (fun j -> drift t j > 0.0) (List.init (n + 1) Fun.id)
  in
  let k = Array.length zs in
  let matrix =
    Array.of_list
      (List.map (fun j -> Array.init k (fun i -> phis.(i).(j))) up_states)
  in
  let rhs = Array.of_list (List.map (fun j -> -.pi.(j)) up_states) in
  let coefficients = Lrd_numerics.Linalg.solve matrix rhs in
  (zs, phis, coefficients)

let overflow_probability t ~level =
  let zs, phis, coefficients = spectral_solution t in
  if level < 0.0 then 1.0
  else begin
    (* P(Q > x) = - sum_k a_k e^(z_k x) sum_j phi_kj. *)
    let acc = Lrd_numerics.Summation.create () in
    Array.iteri
      (fun k z ->
        let mass = Lrd_numerics.Summation.kahan phis.(k) in
        Lrd_numerics.Summation.add acc
          (-.(coefficients.(k) *. exp (z *. level) *. mass)))
      zs;
    Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc))
  end

let finite_buffer_loss t ~buffer =
  if not (buffer > 0.0) then
    invalid_arg "Ams.finite_buffer_loss: buffer must be positive";
  let n = t.sources in
  let pi = stationary t in
  let zs = all_eigenvalues t in
  let k = Array.length zs in
  let phis =
    Array.map
      (fun z -> if z = 0.0 then Array.copy pi else eigenvector t z)
      zs
  in
  (* Conditioned mode shapes: g_k(x) = e^(z x) for z <= 0 and
     e^(z (x - B)) for z > 0, so no exponential ever exceeds 1 on
     [0, B]. *)
  let g z x = if z <= 0.0 then exp (z *. x) else exp (z *. (x -. buffer)) in
  (* Boundary conditions: rows for F_j(0) = 0 at up states and
     F_j(B) = pi_j at down states. *)
  let rows = ref [] and rhs = ref [] in
  for j = 0 to n do
    if drift t j > 0.0 then begin
      rows := Array.init k (fun i -> g zs.(i) 0.0 *. phis.(i).(j)) :: !rows;
      rhs := 0.0 :: !rhs
    end
    else begin
      rows := Array.init k (fun i -> g zs.(i) buffer *. phis.(i).(j)) :: !rows;
      rhs := pi.(j) :: !rhs
    end
  done;
  let matrix = Array.of_list (List.rev !rows) in
  let rhs = Array.of_list (List.rev !rhs) in
  let a = Lrd_numerics.Linalg.solve matrix rhs in
  (* Loss work rate: sum over up states of d_j (pi_j - F_j(B)). *)
  let acc = Lrd_numerics.Summation.create () in
  for j = 0 to n do
    let d = drift t j in
    if d > 0.0 then begin
      let fjb = ref 0.0 in
      Array.iteri
        (fun i z -> fjb := !fjb +. (a.(i) *. g z buffer *. phis.(i).(j)))
        zs;
      Lrd_numerics.Summation.add acc (d *. Float.max 0.0 (pi.(j) -. !fjb))
    end
  done;
  Float.max 0.0
    (Float.min 1.0 (Lrd_numerics.Summation.total acc /. mean_rate t))

let sample_epochs t rng ~n =
  if n <= 0 then invalid_arg "Ams.sample_epochs: n must be positive";
  let pi = stationary t in
  let table = Lrd_rng.Sampler.discrete_of_weights pi in
  let state = ref (Lrd_rng.Sampler.discrete_draw rng table) in
  Array.init n (fun _ ->
      let j = !state in
      let birth = float_of_int (t.sources - j) *. t.lambda in
      let death = float_of_int j *. t.mu in
      let total = birth +. death in
      let holding = Lrd_rng.Sampler.exponential rng ~rate:total in
      let rate = float_of_int j *. t.on_rate in
      (* Jump up with probability birth/total. *)
      state := (if Lrd_rng.Rng.float rng < birth /. total then j + 1 else j - 1);
      (rate, holding))
