type layer = { rate : float; eigenvalue : float }
type t = { base_rate : float; layers : layer array }

let create ~base_rate ~layers =
  if Array.length layers = 0 then invalid_arg "Multiscale.create: no layers";
  if not (base_rate >= 0.0) then
    invalid_arg "Multiscale.create: negative base rate";
  Array.iter
    (fun l ->
      if not (l.rate >= 0.0) then
        invalid_arg "Multiscale.create: negative layer rate";
      if not (l.eigenvalue >= 0.0 && l.eigenvalue < 1.0) then
        invalid_arg "Multiscale.create: eigenvalue outside [0, 1)")
    layers;
  { base_rate; layers }

let layers t = Array.copy t.layers

let mean_rate t =
  Array.fold_left (fun acc l -> acc +. (l.rate /. 2.0)) t.base_rate t.layers

let rate_variance t =
  Array.fold_left (fun acc l -> acc +. (l.rate *. l.rate /. 4.0)) 0.0 t.layers

let autocorrelation t ~lag =
  if lag < 0 then invalid_arg "Multiscale.autocorrelation: negative lag";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun l ->
      let v = l.rate *. l.rate /. 4.0 in
      num := !num +. (v *. (l.eigenvalue ** float_of_int lag));
      den := !den +. v)
    t.layers;
  if !den = 0.0 then 0.0 else !num /. !den

let fit_power_law ~mean ~variance ~hurst ~horizon ?(layers = 5) () =
  if not (mean > 0.0) then invalid_arg "Multiscale.fit_power_law: mean <= 0";
  if not (variance > 0.0) then
    invalid_arg "Multiscale.fit_power_law: variance <= 0";
  if not (hurst > 0.5 && hurst < 1.0) then
    invalid_arg "Multiscale.fit_power_law: hurst outside (0.5, 1)";
  if horizon < 2 then invalid_arg "Multiscale.fit_power_law: horizon < 2";
  if layers < 1 then invalid_arg "Multiscale.fit_power_law: layers < 1";
  (* Time constants geometric on [1, horizon]; the continuous identity
     int tau^(2H-3) e^(-t/tau) tau dln(tau) ~ t^(2H-2) says the variance
     share of the layer at time constant tau goes like tau^(2H-2). *)
  let exponent = (2.0 *. hurst) -. 2.0 in
  let taus =
    if layers = 1 then [| float_of_int horizon |]
    else
      Array.init layers (fun k ->
          Float.exp
            (log (float_of_int horizon)
            *. (float_of_int k /. float_of_int (layers - 1))))
  in
  let shares = Array.map (fun tau -> tau ** exponent) taus in
  let total_share = Lrd_numerics.Summation.kahan shares in
  let layer_array =
    Array.mapi
      (fun k tau ->
        let v = variance *. shares.(k) /. total_share in
        { rate = 2.0 *. sqrt v; eigenvalue = exp (-1.0 /. tau) })
      taus
  in
  let on_mean =
    Array.fold_left (fun acc l -> acc +. (l.rate /. 2.0)) 0.0 layer_array
  in
  if on_mean > mean then
    invalid_arg
      "Multiscale.fit_power_law: variance too large for the mean (negative \
       base rate)";
  create ~base_rate:(mean -. on_mean) ~layers:layer_array

let generate t rng ~slots ~slot =
  if slots <= 0 then invalid_arg "Multiscale.generate: slots must be positive";
  let n_layers = Array.length t.layers in
  (* Symmetric two-state layer with eigenvalue e: stay probability
     (1 + e) / 2. *)
  let states = Array.init n_layers (fun _ -> Lrd_rng.Rng.bool rng) in
  let rates =
    Array.init slots (fun _ ->
        let rate = ref t.base_rate in
        for k = 0 to n_layers - 1 do
          if states.(k) then rate := !rate +. t.layers.(k).rate;
          let stay = (1.0 +. t.layers.(k).eigenvalue) /. 2.0 in
          if Lrd_rng.Rng.float rng >= stay then states.(k) <- not states.(k)
        done;
        !rate)
  in
  Lrd_trace.Trace.create ~rates ~slot

let to_markov_chain t =
  let n_layers = Array.length t.layers in
  if n_layers > 12 then
    invalid_arg "Multiscale.to_markov_chain: more than 12 layers";
  let size = 1 lsl n_layers in
  let rate_of_state s =
    let rate = ref t.base_rate in
    for k = 0 to n_layers - 1 do
      if s land (1 lsl k) <> 0 then rate := !rate +. t.layers.(k).rate
    done;
    !rate
  in
  let step_prob s s' =
    let p = ref 1.0 in
    for k = 0 to n_layers - 1 do
      let stay = (1.0 +. t.layers.(k).eigenvalue) /. 2.0 in
      let same = s land (1 lsl k) = s' land (1 lsl k) in
      p := !p *. (if same then stay else 1.0 -. stay)
    done;
    !p
  in
  Markov_chain.create
    ~rates:(Array.init size rate_of_state)
    ~transition:
      (Array.init size (fun s -> Array.init size (fun s' -> step_prob s s')))
