(** Multi-time-scale Markovian source: a superposition of independent
    two-state (on/off) Markov modulators with geometrically spaced time
    constants.

    A single finite Markov chain has autocorrelation that is a mixture of
    geometrics with as many distinct decay rates as the chain has
    relevant eigenvalues; a sum of [L] independent symmetric two-state
    layers achieves exactly the mixture
    [r(t) = sum_k v_k e_k^t / sum_k v_k] where layer [k] has second
    eigenvalue [e_k] and variance share [v_k].  Placing the time
    constants geometrically and weighting them like [tau^(2H-2)]
    reproduces the power-law decay [t^(2H-2)] of an H-self-similar
    process over any prescribed finite range of lags — the classical
    "enough exponentials make a power law" construction the paper cites
    (Li & Hwang; Robert & Le Boudec).

    The price is the marginal: the aggregate rate is a weighted sum of
    independent Bernoulli layers, matched here to the target mean and
    variance but {e not} to the full marginal shape — which is precisely
    the limitation the paper's marginal-distribution experiments warn
    about, and what the Markov-baseline experiment in this repository
    demonstrates. *)

type t

type layer = {
  rate : float;  (** Rate contributed while the layer is ON. *)
  eigenvalue : float;  (** Per-slot correlation decay, in [0, 1). *)
}

val create : base_rate:float -> layers:layer array -> t
(** @raise Invalid_argument on empty layers, negative rates, or
    eigenvalues outside [0, 1). *)

val fit_power_law :
  mean:float -> variance:float -> hurst:float -> horizon:int ->
  ?layers:int -> unit -> t
(** Source whose autocorrelation approximates [t^(2H-2)] for
    [t = 1 .. horizon] (lags in slots), with the given marginal mean and
    variance.  Time constants are geometric between 1 and [horizon];
    layer variance shares follow the [tau^(2H-2)] envelope (default 5
    layers).  @raise Invalid_argument on a nonpositive mean/variance,
    [hurst] outside (0.5, 1), or [horizon < 2]. *)

val layers : t -> layer array
val mean_rate : t -> float
(** [base + sum rate_k / 2] (each symmetric layer is ON half the time). *)

val rate_variance : t -> float
(** [sum rate_k^2 / 4]. *)

val autocorrelation : t -> lag:int -> float
(** Exact: [sum v_k e_k^lag / sum v_k]. *)

val generate :
  t -> Lrd_rng.Rng.t -> slots:int -> slot:float -> Lrd_trace.Trace.t
(** Sample path; each layer starts in a uniform random state. *)

val to_markov_chain : t -> Markov_chain.t
(** Explicit product chain on the [2^L] joint states (for exact analyses
    and tests).  @raise Invalid_argument for more than 12 layers. *)
