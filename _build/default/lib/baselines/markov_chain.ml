type t = { rates : float array; transition : float array array }

let create ~rates ~transition =
  let n = Array.length rates in
  if n = 0 then invalid_arg "Markov_chain.create: empty chain";
  if Array.length transition <> n then
    invalid_arg "Markov_chain.create: transition matrix dimension mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Markov_chain.create: transition matrix is not square";
      let total = Lrd_numerics.Summation.kahan row in
      Array.iter
        (fun p ->
          if not (p >= 0.0) then
            invalid_arg "Markov_chain.create: negative transition probability")
        row;
      if Float.abs (total -. 1.0) > 1e-9 then
        invalid_arg "Markov_chain.create: rows must sum to one")
    transition;
  { rates; transition }

let of_dar ~marginal ~rho =
  if not (rho >= 0.0 && rho < 1.0) then
    invalid_arg "Markov_chain.of_dar: rho must lie in [0, 1)";
  let rates = Lrd_dist.Marginal.rates marginal in
  let pi = Lrd_dist.Marginal.probs marginal in
  let n = Array.length rates in
  let transition =
    Array.init n (fun i ->
        Array.init n (fun j ->
            ((1.0 -. rho) *. pi.(j)) +. if i = j then rho else 0.0))
  in
  { rates; transition }

let fit_from_trace ?(bins = 50) trace =
  if bins <= 0 then
    invalid_arg "Markov_chain.fit_from_trace: bins must be positive";
  let hist = Lrd_trace.Histogram.of_trace ~bins trace in
  let samples = trace.Lrd_trace.Trace.rates in
  let n = Array.length samples in
  (* Map occupied bins to dense state indices. *)
  let state_of_bin = Array.make bins (-1) in
  let states = ref [] in
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        state_of_bin.(b) <- List.length !states;
        states := hist.Lrd_trace.Histogram.bin_means.(b) :: !states
      end)
    hist.Lrd_trace.Histogram.counts;
  let rates = Array.of_list (List.rev !states) in
  let k = Array.length rates in
  let counts = Array.make_matrix k k 0 in
  for i = 0 to n - 2 do
    let from_state =
      state_of_bin.(Lrd_trace.Histogram.bin_index hist samples.(i))
    in
    let to_state =
      state_of_bin.(Lrd_trace.Histogram.bin_index hist samples.(i + 1))
    in
    counts.(from_state).(to_state) <- counts.(from_state).(to_state) + 1
  done;
  let transition =
    Array.mapi
      (fun s row ->
        let total = Array.fold_left ( + ) 0 row in
        if total = 0 then
          (* Only seen as the last sample: self-loop. *)
          Array.init k (fun j -> if j = s then 1.0 else 0.0)
        else
          Array.map (fun c -> float_of_int c /. float_of_int total) row)
      counts
  in
  create ~rates ~transition

let size t = Array.length t.rates
let rates t = Array.copy t.rates
let transition t = Array.map Array.copy t.transition

(* Row vector times transition matrix. *)
let apply t v =
  let n = size t in
  Array.init n (fun j ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (v.(i) *. t.transition.(i).(j))
      done;
      !acc)

let stationary t =
  let n = size t in
  let v = ref (Array.make n (1.0 /. float_of_int n)) in
  let converged = ref false in
  let steps = ref 0 in
  while (not !converged) && !steps < 100_000 do
    let v' = apply t !v in
    let delta =
      Array.fold_left Float.max 0.0
        (Array.mapi (fun i x -> Float.abs (x -. !v.(i))) v')
    in
    v := v';
    incr steps;
    if delta < 1e-14 then converged := true
  done;
  if not !converged then
    failwith "Markov_chain.stationary: power iteration did not converge";
  !v

let mean_rate t =
  let pi = stationary t in
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. t.rates.(i))) pi;
  !acc

let rate_variance t =
  let pi = stationary t in
  let mu = mean_rate t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      let d = t.rates.(i) -. mu in
      acc := !acc +. (p *. d *. d))
    pi;
  !acc

let autocorrelation t ~lag =
  if lag < 0 then invalid_arg "Markov_chain.autocorrelation: negative lag";
  let variance = rate_variance t in
  if variance <= 0.0 then
    invalid_arg "Markov_chain.autocorrelation: degenerate chain";
  let pi = stationary t in
  let mu = mean_rate t in
  (* v = pi .* rates, pushed forward lag steps, dotted with rates. *)
  let v = ref (Array.mapi (fun i p -> p *. t.rates.(i)) pi) in
  for _ = 1 to lag do
    v := apply t !v
  done;
  let second = ref 0.0 in
  Array.iteri (fun i x -> second := !second +. (x *. t.rates.(i))) !v;
  (!second -. (mu *. mu)) /. variance

let generate t rng ~slots ~slot =
  if slots <= 0 then invalid_arg "Markov_chain.generate: slots must be positive";
  let pi = stationary t in
  let initial_table = Lrd_rng.Sampler.discrete_of_weights pi in
  let row_tables =
    Array.map Lrd_rng.Sampler.discrete_of_weights t.transition
  in
  let state = ref (Lrd_rng.Sampler.discrete_draw rng initial_table) in
  let out =
    Array.init slots (fun _ ->
        let rate = t.rates.(!state) in
        state := Lrd_rng.Sampler.discrete_draw rng row_tables.(!state);
        rate)
  in
  Lrd_trace.Trace.create ~rates:out ~slot
