lib/baselines/multiscale.ml: Array Float Lrd_numerics Lrd_rng Lrd_trace Markov_chain
