lib/baselines/dar.ml: Array Lrd_dist Lrd_rng Lrd_trace
