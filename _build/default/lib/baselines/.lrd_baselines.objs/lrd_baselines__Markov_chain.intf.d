lib/baselines/markov_chain.mli: Lrd_dist Lrd_rng Lrd_trace
