lib/baselines/markov_chain.ml: Array Float List Lrd_dist Lrd_numerics Lrd_rng Lrd_trace
