lib/baselines/ams.mli: Lrd_rng
