lib/baselines/multiscale.mli: Lrd_rng Lrd_trace Markov_chain
