lib/baselines/ams.ml: Array Float Fun List Lrd_numerics Lrd_rng Printf
