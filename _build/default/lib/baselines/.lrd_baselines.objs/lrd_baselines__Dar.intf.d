lib/baselines/dar.mli: Lrd_dist Lrd_rng Lrd_trace
