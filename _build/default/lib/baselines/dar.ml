type t = { marginal : Lrd_dist.Marginal.t; rho : float }

let create ~marginal ~rho =
  if not (rho >= 0.0 && rho < 1.0) then
    invalid_arg "Dar.create: rho must lie in [0, 1)";
  { marginal; rho }

let of_lag1 ~marginal ~lag1 = create ~marginal ~rho:lag1
let rho t = t.rho
let marginal t = t.marginal
let autocorrelation t ~lag = t.rho ** float_of_int (abs lag)

let correlation_time t ~epsilon =
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Dar.correlation_time: epsilon must lie in (0, 1)";
  if t.rho = 0.0 then 0.0 else log epsilon /. log t.rho

let generate t rng ~slots ~slot =
  if slots <= 0 then invalid_arg "Dar.generate: slots must be positive";
  let draw = Lrd_dist.Marginal.sampler t.marginal in
  let rates = Array.make slots 0.0 in
  rates.(0) <- draw rng;
  for i = 1 to slots - 1 do
    rates.(i) <-
      (if Lrd_rng.Rng.float rng < t.rho then rates.(i - 1) else draw rng)
  done;
  Lrd_trace.Trace.create ~rates ~slot
