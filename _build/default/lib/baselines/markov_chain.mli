(** Finite-state Markov rate modulator.

    A discrete-time Markov chain over a finite set of rates — the
    multi-state Markovian traffic model the paper's Section IV discusses.
    Combined with the correlation-horizon result, a chain that captures
    the traffic's correlation up to the horizon predicts finite-buffer
    loss as well as a self-similar model; see {!Multiscale} for a chain
    construction whose correlation follows a power law over a prescribed
    range of lags. *)

type t

val create : rates:float array -> transition:float array array -> t
(** @raise Invalid_argument unless [transition] is row-stochastic and
    square with the same dimension as [rates] (which must be nonempty). *)

val of_dar : marginal:Lrd_dist.Marginal.t -> rho:float -> t
(** The DAR(1) chain: [P = rho I + (1 - rho) 1 pi^T].
    @raise Invalid_argument unless [0 <= rho < 1]. *)

val fit_from_trace : ?bins:int -> Lrd_trace.Trace.t -> t
(** Order-1 empirical bin chain: the trace is quantized into [bins]
    (default 50) histogram bins, each occupied bin becomes one state at
    its conditional mean rate, and the transition matrix is the
    empirical one-step bin-transition frequency (with a self-loop added
    to any state observed only as the final sample).  This captures both
    the full marginal and the empirical residence-time behaviour at the
    one-slot scale — the "better residence-time match" the paper wishes
    for on the Bellcore trace — but, being Markov, its correlation still
    decays geometrically beyond the fitted scale.
    @raise Invalid_argument if [bins <= 0]. *)

val size : t -> int
val rates : t -> float array
val transition : t -> float array array

val stationary : t -> float array
(** Stationary distribution by power iteration (the chains used here are
    aperiodic and irreducible by construction; convergence is checked and
    failure raises [Failure]). *)

val mean_rate : t -> float
val rate_variance : t -> float

val autocorrelation : t -> lag:int -> float
(** Exact rate autocorrelation
    [ (pi L P^lag L 1 - mu^2) / sigma^2 ] via repeated transition
    applications.  @raise Invalid_argument on a negative lag or a
    degenerate (zero-variance) chain. *)

val generate :
  t -> Lrd_rng.Rng.t -> slots:int -> slot:float -> Lrd_trace.Trace.t
(** Sample path started from the stationary distribution. *)
