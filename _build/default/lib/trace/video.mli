(** Synthetic VBR-video trace: the stand-in for the paper's MTV trace.

    The paper's first trace is one hour of JPEG-encoded NTSC television
    (107 892 frames at ~33 ms, mean 9.5222 Mb/s) with an estimated Hurst
    parameter of 0.83 and a mean rate-residence epoch of about 80 ms.
    The experiments consume only the trace's 50-bin marginal histogram,
    its mean epoch duration, its Hurst exponent — and, for the shuffled
    simulations, a sample path with those properties.

    The default generator is {e scene based}, following the physical
    structure Garrett & Willinger identified in VBR video (and which the
    paper leans on when its fluid model fits the MTV trace well): scene
    lengths are heavy-tailed Pareto — which makes the aggregate
    long-range dependent with [H = (3 - alpha_scene)/2] — the per-scene
    base rate is drawn i.i.d. from a Gamma marginal, and a small AR(1)
    frame-level jitter moves consecutive frames across neighbouring
    histogram bins, reproducing the short (~2-3 frame) measured mean
    rate-residence epochs.

    A second generator maps fractional Gaussian noise through the Gamma
    quantile function (probability-integral transform); it reproduces
    marginal and correlation but not the piecewise-plateau sample-path
    structure of real JPEG video. *)

type params = {
  frames : int;  (** Number of trace samples. *)
  frame_time : float;  (** Slot duration in seconds. *)
  mean_rate : float;  (** Target mean rate (Mb/s). *)
  cv : float;  (** Coefficient of variation of the scene-rate marginal. *)
  hurst : float;  (** Target Hurst parameter. *)
  scene_mean : float;  (** Mean scene length in seconds. *)
  jitter_cv : float;  (** Frame-level jitter std relative to the mean rate. *)
  jitter_rho : float;  (** AR(1) coefficient of the frame jitter. *)
}

val mtv_like : params
(** Defaults matching the paper's MTV trace: 107 892 frames at 1/30 s,
    mean 9.5222 Mb/s, H = 0.83 (scene-length tail index
    [alpha = 3 - 2H = 1.34]), CV 0.18, mean scene 0.5 s, 2% AR(0.8)
    frame jitter — which lands the measured mean rate-residence epoch
    near the paper's ~80 ms. *)

val generate : ?params:params -> Lrd_rng.Rng.t -> Trace.t
(** Scene-based trace ({!mtv_like} by default). *)

val generate_fgn : ?params:params -> Lrd_rng.Rng.t -> Trace.t
(** fGn + probability-integral-transform alternative with the same
    marginal, mean and Hurst parameter ([scene_mean], [jitter_cv] and
    [jitter_rho] are ignored). *)

val generate_short : ?hurst:float -> Lrd_rng.Rng.t -> n:int -> Trace.t
(** Shorter scene-based trace with the same marginal and slot (tests and
    quick mode). *)
