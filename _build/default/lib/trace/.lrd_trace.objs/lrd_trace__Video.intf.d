lib/trace/video.mli: Lrd_rng Trace
