lib/trace/shuffle.ml: Array Lrd_rng Trace
