lib/trace/farima.ml: Array Float Lrd_numerics Lrd_rng
