lib/trace/fgn.ml: Array Float Lrd_numerics Lrd_rng
