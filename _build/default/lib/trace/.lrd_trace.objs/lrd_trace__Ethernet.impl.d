lib/trace/ethernet.ml: List Onoff
