lib/trace/shuffle.mli: Lrd_rng Trace
