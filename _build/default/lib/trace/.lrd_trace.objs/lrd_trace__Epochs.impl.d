lib/trace/epochs.ml: Array Histogram List Trace
