lib/trace/fgn.mli: Lrd_rng
