lib/trace/trace.ml: Array Float Lrd_numerics
