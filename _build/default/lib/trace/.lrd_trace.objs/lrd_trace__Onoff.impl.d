lib/trace/onoff.ml: Array Float List Lrd_dist Lrd_rng Trace
