lib/trace/mginf.ml: Array Float Lrd_rng Trace
