lib/trace/mginf.mli: Lrd_rng Trace
