lib/trace/video.ml: Array Fgn Float Lrd_dist Lrd_numerics Lrd_rng Trace
