lib/trace/histogram.mli: Lrd_dist Trace
