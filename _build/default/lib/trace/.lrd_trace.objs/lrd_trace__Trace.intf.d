lib/trace/trace.mli:
