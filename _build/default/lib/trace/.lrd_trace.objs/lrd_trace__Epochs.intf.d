lib/trace/epochs.mli: Histogram Trace
