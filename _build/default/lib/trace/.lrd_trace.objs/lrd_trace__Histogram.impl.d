lib/trace/histogram.ml: Array List Lrd_dist Lrd_numerics Trace
