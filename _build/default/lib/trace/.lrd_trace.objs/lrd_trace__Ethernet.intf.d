lib/trace/ethernet.mli: Lrd_rng Trace
