lib/trace/onoff.mli: Lrd_dist Lrd_rng Trace
