lib/trace/farima.mli: Lrd_rng
