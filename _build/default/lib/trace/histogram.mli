(** Histogram extraction: from a rate trace to the model's marginal
    distribution [(Pi, Lambda)].

    The paper obtains the marginal vectors "simply ... from a constant
    bin-size histogram of the traces" with 50 bins (Section III).  Each
    occupied bin becomes one atom; we place the atom at the bin's
    conditional mean rate so the extracted marginal preserves the trace
    mean exactly (bin centers would bias it by up to half a bin). *)

type t = {
  edges : float array;  (** [bins + 1] uniform bin edges. *)
  counts : int array;  (** Samples per bin. *)
  bin_means : float array;  (** Conditional mean rate per bin (0 if empty). *)
}

val of_trace : ?bins:int -> Trace.t -> t
(** Constant-bin-size histogram over [[min rate, max rate]]; default 50
    bins as in the paper.  @raise Invalid_argument if [bins <= 0]. *)

val to_marginal : t -> Lrd_dist.Marginal.t
(** One atom per occupied bin at the bin's conditional mean, weighted by
    its empirical frequency. *)

val marginal_of_trace : ?bins:int -> Trace.t -> Lrd_dist.Marginal.t
(** [to_marginal (of_trace ~bins trace)]. *)

val bin_index : t -> float -> int
(** Bin containing the given rate (clamped to the edge bins).  Used by the
    epoch run-length statistics. *)
