(** Aggregated heavy-tailed on/off sources.

    Willinger, Taqqu, Sherman & Wilson showed that the superposition of
    many on/off sources whose on- and/or off-periods are heavy tailed with
    index [alpha] yields aggregate traffic that is asymptotically
    self-similar with [H = (3 - alpha) / 2] — the physical explanation the
    paper leans on for LRD in Ethernet traffic.  This generator builds
    such an aggregate and bins it into fixed slots, producing the
    Bellcore-like substitute trace. *)

type source = {
  peak_rate : float;  (** Emission rate while ON. *)
  on : Lrd_dist.Interarrival.t;  (** ON-period law. *)
  off : Lrd_dist.Interarrival.t;  (** OFF-period law. *)
}

val source :
  peak_rate:float ->
  on:Lrd_dist.Interarrival.t ->
  off:Lrd_dist.Interarrival.t ->
  source

val pareto_source :
  peak_rate:float ->
  mean_on:float ->
  mean_off:float ->
  alpha_on:float ->
  alpha_off:float ->
  source
(** On/off source with (untruncated) Pareto periods of the given means and
    tail indices. *)

val generate :
  Lrd_rng.Rng.t ->
  sources:source list ->
  slots:int ->
  slot:float ->
  Trace.t
(** Superposes the sources over [slots * slot] seconds of simulated time
    and returns the per-slot average aggregate rate.  Each source starts
    in a random phase (ON with probability [mean_on / (mean_on +
    mean_off)]) so the aggregate is approximately stationary from the
    first slot.  @raise Invalid_argument if no sources are given or
    [slots <= 0]. *)

val expected_mean_rate : source list -> float
(** Stationary mean aggregate rate: sum of [peak * on / (on + off)]. *)
