type params = {
  frames : int;
  frame_time : float;
  mean_rate : float;
  cv : float;
  hurst : float;
  scene_mean : float;
  jitter_cv : float;
  jitter_rho : float;
}

let mtv_like =
  {
    frames = 107_892;
    frame_time = 1.0 /. 30.0;
    mean_rate = 9.5222;
    cv = 0.18;
    hurst = 0.83;
    scene_mean = 0.5;
    jitter_cv = 0.02;
    jitter_rho = 0.8;
  }

(* Interpolation table for the marginal quantile function, sampled at the
   midpoints p_j = (j + 1/2) / k.  Probabilities are clamped into the
   table range; the induced error is far below one histogram bin. *)
let quantile_table (dist : Lrd_dist.Continuous.t) k =
  let table =
    Array.init k (fun j ->
        dist.Lrd_dist.Continuous.quantile
          ((float_of_int j +. 0.5) /. float_of_int k))
  in
  fun p ->
    let x = (p *. float_of_int k) -. 0.5 in
    if x <= 0.0 then table.(0)
    else if x >= float_of_int (k - 1) then table.(k - 1)
    else begin
      let i = int_of_float x in
      let frac = x -. float_of_int i in
      table.(i) +. (frac *. (table.(i + 1) -. table.(i)))
    end

let check params =
  if params.frames <= 0 then invalid_arg "Video.generate: frames <= 0";
  if not (params.frame_time > 0.0) then
    invalid_arg "Video.generate: frame_time <= 0"

let generate ?(params = mtv_like) rng =
  check params;
  if not (params.scene_mean > 0.0) then
    invalid_arg "Video.generate: scene_mean <= 0";
  if not (params.jitter_rho >= 0.0 && params.jitter_rho < 1.0) then
    invalid_arg "Video.generate: jitter_rho outside [0, 1)";
  let scene_rate =
    Lrd_dist.Continuous.gamma_of_mean_cv ~mean:params.mean_rate ~cv:params.cv
  in
  (* Heavy-tailed scene lengths give the aggregate its LRD:
     H = (3 - alpha)/2. *)
  let alpha = 3.0 -. (2.0 *. params.hurst) in
  let scene_theta = params.scene_mean *. (alpha -. 1.0) in
  let jitter_std = params.jitter_cv *. params.mean_rate in
  (* Stationary AR(1) innovation std. *)
  let innovation_std =
    jitter_std *. sqrt (1.0 -. (params.jitter_rho *. params.jitter_rho))
  in
  let rates = Array.make params.frames 0.0 in
  let i = ref 0 in
  let jitter = ref (Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:jitter_std) in
  while !i < params.frames do
    let base = scene_rate.Lrd_dist.Continuous.sample rng in
    let length_s =
      Lrd_rng.Sampler.pareto rng ~theta:scene_theta ~alpha
    in
    let length = max 1 (int_of_float (Float.round (length_s /. params.frame_time))) in
    let stop = min params.frames (!i + length) in
    while !i < stop do
      jitter :=
        (params.jitter_rho *. !jitter)
        +. Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:innovation_std;
      rates.(!i) <- Float.max 0.0 (base +. !jitter);
      incr i
    done
  done;
  Trace.create ~rates ~slot:params.frame_time

let generate_fgn ?(params = mtv_like) rng =
  check params;
  let marginal =
    Lrd_dist.Continuous.gamma_of_mean_cv ~mean:params.mean_rate ~cv:params.cv
  in
  let quantile = quantile_table marginal 4096 in
  let z = Fgn.davies_harte rng ~hurst:params.hurst ~n:params.frames in
  let rates =
    Array.map (fun zi -> quantile (Lrd_numerics.Special.normal_cdf zi)) z
  in
  Trace.create ~rates ~slot:params.frame_time

let generate_short ?(hurst = mtv_like.hurst) rng ~n =
  generate ~params:{ mtv_like with frames = n; hurst } rng
