(** Plain-text persistence for rate traces.

    Format: '#'-prefixed comment lines, then a header line
    [slot <seconds>], then one rate per line.  Keeps generated traces
    reusable across runs and inspectable with standard tools. *)

val save : Trace.t -> path:string -> unit
(** Writes the trace; overwrites an existing file. *)

val load : path:string -> Trace.t
(** @raise Failure on a malformed file. *)
