let run_lengths h trace =
  let rates = trace.Trace.rates in
  let n = Array.length rates in
  let runs = ref [] in
  let current_bin = ref (Histogram.bin_index h rates.(0)) in
  let current_len = ref 1 in
  for i = 1 to n - 1 do
    let b = Histogram.bin_index h rates.(i) in
    if b = !current_bin then incr current_len
    else begin
      runs := !current_len :: !runs;
      current_bin := b;
      current_len := 1
    end
  done;
  runs := !current_len :: !runs;
  Array.of_list (List.rev !runs)

let mean_run_length h trace =
  let runs = run_lengths h trace in
  float_of_int (Array.fold_left ( + ) 0 runs) /. float_of_int (Array.length runs)

let mean_epoch_duration ?bins trace =
  let h = Histogram.of_trace ?bins trace in
  mean_run_length h trace *. trace.Trace.slot
