type source = {
  peak_rate : float;
  on : Lrd_dist.Interarrival.t;
  off : Lrd_dist.Interarrival.t;
}

let source ~peak_rate ~on ~off =
  if not (peak_rate > 0.0) then
    invalid_arg "Onoff.source: peak rate must be positive";
  { peak_rate; on; off }

let pareto_source ~peak_rate ~mean_on ~mean_off ~alpha_on ~alpha_off =
  let period mean alpha =
    Lrd_dist.Interarrival.truncated_pareto
      ~theta:(mean *. (alpha -. 1.0))
      ~alpha ~cutoff:Float.infinity
  in
  source ~peak_rate ~on:(period mean_on alpha_on)
    ~off:(period mean_off alpha_off)

let expected_mean_rate sources =
  List.fold_left
    (fun acc s ->
      let on = s.on.Lrd_dist.Interarrival.mean
      and off = s.off.Lrd_dist.Interarrival.mean in
      acc +. (s.peak_rate *. on /. (on +. off)))
    0.0 sources

(* Deposit [rate] over the real-time interval [t0, t1) into the slot
   bins, splitting across slot boundaries. *)
let deposit work t0 t1 rate ~slot ~slots =
  let t0 = Float.max 0.0 t0 and t1 = Float.min (float_of_int slots *. slot) t1 in
  if t1 > t0 then begin
    let first = int_of_float (t0 /. slot) in
    let last = min (slots - 1) (int_of_float ((t1 -. 1e-12) /. slot)) in
    for b = first to last do
      let lo = Float.max t0 (float_of_int b *. slot) in
      let hi = Float.min t1 (float_of_int (b + 1) *. slot) in
      if hi > lo then work.(b) <- work.(b) +. (rate *. (hi -. lo))
    done
  end

let generate rng ~sources ~slots ~slot =
  if sources = [] then invalid_arg "Onoff.generate: no sources";
  if slots <= 0 then invalid_arg "Onoff.generate: slots must be positive";
  if not (slot > 0.0) then invalid_arg "Onoff.generate: slot must be positive";
  let horizon = float_of_int slots *. slot in
  let work = Array.make slots 0.0 in
  List.iter
    (fun s ->
      let on_mean = s.on.Lrd_dist.Interarrival.mean
      and off_mean = s.off.Lrd_dist.Interarrival.mean in
      let start_on =
        Lrd_rng.Rng.float rng < on_mean /. (on_mean +. off_mean)
      in
      (* Alternate ON/OFF periods until the horizon is covered.  The
         initial period is sampled from the ordinary (not residual)
         distribution; the bias is negligible for traces much longer
         than a period, which all callers ensure. *)
      let t = ref 0.0 and on = ref start_on in
      while !t < horizon do
        let d =
          if !on then s.on.Lrd_dist.Interarrival.sample rng
          else s.off.Lrd_dist.Interarrival.sample rng
        in
        let d = Float.max d 1e-12 in
        if !on then deposit work !t (!t +. d) s.peak_rate ~slot ~slots;
        t := !t +. d;
        on := not !on
      done)
    sources;
  Trace.create ~rates:(Array.map (fun w -> w /. slot) work) ~slot
