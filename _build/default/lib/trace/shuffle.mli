(** Block shuffling of traces (paper Section III, Fig. 6).

    External shuffling divides a trace into blocks of equal length and
    permutes the blocks uniformly at random, leaving each block's interior
    untouched: correlation at lags shorter than a block survives,
    correlation beyond a block is destroyed.  It is the trace-driven
    analogue of the model's cutoff lag [T_c] and drives the simulations of
    Figs. 7, 8 and 14.

    Internal shuffling (the dual, from Erramilli et al.) permutes samples
    within each block and keeps the block order, destroying short-lag
    structure while preserving long-lag structure.  It is provided as the
    ablation counterpart. *)

val external_shuffle :
  Lrd_rng.Rng.t -> Trace.t -> block:int -> Trace.t
(** Permutes whole blocks of [block] samples.  A trailing partial block is
    dropped so every shuffled position participates (the paper's traces
    are 5-6 orders of magnitude longer than a block, so the truncation is
    immaterial).  [block >= length] returns the trace unchanged
    (truncated to a single block).  @raise Invalid_argument if
    [block <= 0]. *)

val internal_shuffle :
  Lrd_rng.Rng.t -> Trace.t -> block:int -> Trace.t
(** Permutes samples uniformly within each block, preserving block order.
    The trailing partial block is shuffled in place as well. *)

val full_shuffle : Lrd_rng.Rng.t -> Trace.t -> Trace.t
(** Uniform permutation of all samples: destroys all correlation while
    preserving the marginal exactly (the [block = 1] limit of external
    shuffling). *)
