let check_hurst hurst =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Fgn: hurst must lie in (0, 1)"

let autocovariance ~hurst k =
  check_hurst hurst;
  let k = Float.abs (float_of_int k) in
  let h2 = 2.0 *. hurst in
  0.5 *. (((k +. 1.0) ** h2) -. (2.0 *. (k ** h2)) +. (Float.abs (k -. 1.0) ** h2))

let davies_harte rng ~hurst ~n =
  check_hurst hurst;
  if n <= 0 then invalid_arg "Fgn.davies_harte: n must be positive";
  let m = Lrd_numerics.Fft.next_power_of_two (2 * n) in
  let half = m / 2 in
  (* First row of the circulant embedding of the covariance matrix. *)
  let c_re = Array.make m 0.0 and c_im = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let lag = if k <= half then k else m - k in
    c_re.(k) <- autocovariance ~hurst lag
  done;
  Lrd_numerics.Fft.forward ~re:c_re ~im:c_im;
  (* Eigenvalues of the circulant; nonnegative for fGn up to rounding. *)
  let eigen =
    Array.map
      (fun v ->
        if v < -1e-8 then
          invalid_arg "Fgn.davies_harte: embedding not nonnegative definite"
        else Float.max v 0.0)
      c_re
  in
  let a_re = Array.make m 0.0 and a_im = Array.make m 0.0 in
  let fm = float_of_int m in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  a_re.(0) <- sqrt (eigen.(0) /. fm) *. gaussian ();
  a_re.(half) <- sqrt (eigen.(half) /. fm) *. gaussian ();
  for k = 1 to half - 1 do
    let scale = sqrt (eigen.(k) /. (2.0 *. fm)) in
    let g1 = gaussian () and g2 = gaussian () in
    a_re.(k) <- scale *. g1;
    a_im.(k) <- scale *. g2;
    a_re.(m - k) <- scale *. g1;
    a_im.(m - k) <- -.(scale *. g2)
  done;
  Lrd_numerics.Fft.forward ~re:a_re ~im:a_im;
  Array.sub a_re 0 n

let hosking rng ~hurst ~n =
  check_hurst hurst;
  if n <= 0 then invalid_arg "Fgn.hosking: n must be positive";
  let gamma = Array.init (n + 1) (fun k -> autocovariance ~hurst k) in
  let out = Array.make n 0.0 in
  let phi = Array.make n 0.0 and phi_prev = Array.make n 0.0 in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  out.(0) <- gaussian ();
  let v = ref 1.0 in
  for i = 1 to n - 1 do
    (* Durbin-Levinson update of the partial autocorrelations. *)
    let num = ref gamma.(i) in
    for j = 0 to i - 2 do
      num := !num -. (phi_prev.(j) *. gamma.(i - 1 - j))
    done;
    let kappa = !num /. !v in
    phi.(i - 1) <- kappa;
    for j = 0 to i - 2 do
      phi.(j) <- phi_prev.(j) -. (kappa *. phi_prev.(i - 2 - j))
    done;
    v := !v *. (1.0 -. (kappa *. kappa));
    let mean = ref 0.0 in
    for j = 0 to i - 1 do
      mean := !mean +. (phi.(j) *. out.(i - 1 - j))
    done;
    out.(i) <- !mean +. (sqrt !v *. gaussian ());
    Array.blit phi 0 phi_prev 0 i
  done;
  out
