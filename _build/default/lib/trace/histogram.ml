type t = {
  edges : float array;
  counts : int array;
  bin_means : float array;
}

let of_trace ?(bins = 50) trace =
  if bins <= 0 then invalid_arg "Histogram.of_trace: bins must be positive";
  let rates = trace.Trace.rates in
  let lo = Lrd_numerics.Array_ops.min_element rates in
  let hi = Lrd_numerics.Array_ops.max_element rates in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let edges =
    Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width))
  in
  let counts = Array.make bins 0 in
  let sums = Array.make bins 0.0 in
  Array.iter
    (fun r ->
      let b = min (bins - 1) (int_of_float ((r -. lo) /. width)) in
      let b = max 0 b in
      counts.(b) <- counts.(b) + 1;
      sums.(b) <- sums.(b) +. r)
    rates;
  let bin_means =
    Array.init bins (fun b ->
        if counts.(b) > 0 then sums.(b) /. float_of_int counts.(b) else 0.0)
  in
  { edges; counts; bin_means }

let to_marginal h =
  let atoms = ref [] in
  Array.iteri
    (fun b c ->
      if c > 0 then atoms := (h.bin_means.(b), float_of_int c) :: !atoms)
    h.counts;
  Lrd_dist.Marginal.of_points (List.rev !atoms)

let marginal_of_trace ?bins trace = to_marginal (of_trace ?bins trace)

let bin_index h rate =
  let bins = Array.length h.counts in
  let lo = h.edges.(0) and hi = h.edges.(bins) in
  let width = (hi -. lo) /. float_of_int bins in
  if width <= 0.0 then 0
  else max 0 (min (bins - 1) (int_of_float ((rate -. lo) /. width)))
