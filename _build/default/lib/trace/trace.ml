type t = { rates : float array; slot : float }

let create ~rates ~slot =
  if not (slot > 0.0) then invalid_arg "Trace.create: slot must be positive";
  if Array.length rates = 0 then invalid_arg "Trace.create: empty trace";
  Array.iter
    (fun r ->
      if not (Float.is_finite r && r >= 0.0) then
        invalid_arg "Trace.create: rates must be finite and nonnegative")
    rates;
  { rates; slot }

let length t = Array.length t.rates
let duration t = float_of_int (length t) *. t.slot
let mean t = Lrd_numerics.Array_ops.mean t.rates
let variance t = Lrd_numerics.Array_ops.variance t.rates
let std t = sqrt (variance t)
let peak t = Lrd_numerics.Array_ops.max_element t.rates
let total_work t = Lrd_numerics.Array_ops.sum t.rates *. t.slot
let map_rates t ~f = create ~rates:(Array.map f t.rates) ~slot:t.slot

let scale_to_mean t ~mean:target =
  if not (target > 0.0) then
    invalid_arg "Trace.scale_to_mean: target mean must be positive";
  let current = mean t in
  if not (current > 0.0) then
    invalid_arg "Trace.scale_to_mean: trace mean is zero";
  let factor = target /. current in
  map_rates t ~f:(fun r -> r *. factor)

let sub t ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > length t then
    invalid_arg "Trace.sub: slice out of bounds";
  { rates = Array.sub t.rates pos len; slot = t.slot }

let resample t ~slot:new_slot =
  if not (new_slot > 0.0) then
    invalid_arg "Trace.resample: slot must be positive";
  let total = duration t in
  let blocks = int_of_float (total /. new_slot) in
  if blocks = 0 then
    invalid_arg "Trace.resample: trace shorter than one new slot";
  let old_slot = t.slot in
  let n = length t in
  let work = Array.make blocks 0.0 in
  (* Deposit each old slot's work into the new grid, splitting across
     boundaries. *)
  for i = 0 to n - 1 do
    let t0 = float_of_int i *. old_slot in
    let t1 = t0 +. old_slot in
    let t1 = Float.min t1 (float_of_int blocks *. new_slot) in
    if t1 > t0 then begin
      let first = int_of_float (t0 /. new_slot) in
      let last = min (blocks - 1) (int_of_float ((t1 -. 1e-12) /. new_slot)) in
      for b = first to last do
        let lo = Float.max t0 (float_of_int b *. new_slot) in
        let hi = Float.min t1 (float_of_int (b + 1) *. new_slot) in
        if hi > lo then work.(b) <- work.(b) +. (t.rates.(i) *. (hi -. lo))
      done
    end
  done;
  { rates = Array.map (fun w -> w /. new_slot) work; slot = new_slot }

let aggregate t ~factor =
  if factor <= 0 then invalid_arg "Trace.aggregate: factor must be positive";
  let blocks = length t / factor in
  if blocks = 0 then
    invalid_arg "Trace.aggregate: trace shorter than one block";
  let rates =
    Array.init blocks (fun b ->
        Lrd_numerics.Summation.kahan_slice t.rates ~pos:(b * factor)
          ~len:factor
        /. float_of_int factor)
  in
  { rates; slot = t.slot *. float_of_int factor }

let service_rate_for_utilization t ~utilization =
  if not (utilization > 0.0 && utilization < 1.0) then
    invalid_arg
      "Trace.service_rate_for_utilization: utilization must lie in (0, 1)";
  mean t /. utilization
