(** Synthetic Ethernet trace: the stand-in for the paper's Bellcore
    "purple cable" August 1989 trace.

    The published analysis of that trace (Leland et al.) established
    [H ~ 0.9] and a highly bursty, right-skewed marginal; the paper
    additionally measures a mean rate-residence epoch of about 15 ms at
    10 ms slots.  Here the trace is built the way Willinger et al. showed
    such traffic arises physically: a superposition of on/off sources
    with heavy-tailed (Pareto, index [alpha = 3 - 2H = 1.2]) on-periods.
    Only the marginal histogram, the epoch statistic and [H] feed the
    experiments, so the construction is a faithful substitute. *)

type params = {
  slots : int;  (** Number of 10 ms samples. *)
  slot : float;  (** Slot length in seconds. *)
  sources : int;  (** Number of superposed on/off sources. *)
  peak_rate : float;  (** Per-source ON rate (Mb/s). *)
  mean_on : float;  (** Mean ON period (s). *)
  mean_off : float;  (** Mean OFF period (s). *)
  alpha_on : float;  (** Pareto index of ON periods ([H = (3-a)/2]). *)
  alpha_off : float;  (** Pareto index of OFF periods. *)
}

val bellcore_like : params
(** Defaults producing an H ~ 0.9 aggregate: 360 000 slots (one hour) of
    10 ms, 30 sources at 1 Mb/s peak, mean ON 30 ms (alpha 1.2), mean OFF
    570 ms (alpha 1.5) — about 5% duty cycle per source. *)

val generate : ?params:params -> Lrd_rng.Rng.t -> Trace.t

val generate_short : Lrd_rng.Rng.t -> n:int -> Trace.t
(** Shorter trace with the same per-slot statistics (for tests). *)
