(** Epoch (rate-residence) statistics.

    To fit the Pareto scale [theta], the paper computes "the average
    number of consecutive samples in the trace that fall within the same
    histogram bin" and matches the model's mean epoch duration (eq. 25,
    with [T_c = infinity]) to it.  The measured values were about 80 ms
    for the MTV trace and 15 ms for the Bellcore trace. *)

val run_lengths : Histogram.t -> Trace.t -> int array
(** Lengths (in samples) of the maximal runs of consecutive samples that
    fall in the same histogram bin, in order of occurrence. *)

val mean_run_length : Histogram.t -> Trace.t -> float
(** Average run length in samples; at least 1. *)

val mean_epoch_duration : ?bins:int -> Trace.t -> float
(** Mean rate-residence time in seconds: mean run length (with respect to
    a fresh [bins]-bin histogram, default 50) times the slot duration. *)
