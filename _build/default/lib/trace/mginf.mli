(** M/G/infinity session traffic: Poisson session arrivals, heavy-tailed
    session durations, constant rate per active session.

    The instantaneous rate is [r * N(t)] where [N(t)] is the number of
    active sessions — the classic Cox construction the paper cites among
    LRD traffic models (zero-rate renewal processes, point-process
    models): with Pareto durations of index [alpha in (1, 2)], the
    active-session process is long-range dependent with
    [H = (3 - alpha) / 2], while the marginal is Poisson — yet another
    instance of "same correlation, different marginal".

    Generation starts in the {e stationary} regime: the initial session
    count is Poisson with mean [arrival_rate * E[D]] and each initial
    session carries an equilibrium residual duration, so no warm-up is
    needed. *)

type params = {
  arrival_rate : float;  (** Session arrivals per second. *)
  mean_duration : float;  (** Mean session duration (s). *)
  alpha : float;  (** Pareto duration index, [> 1]. *)
  rate_per_session : float;  (** Rate contributed by an active session. *)
}

val default : params
(** 50 sessions/s, mean duration 1 s, alpha 1.4 (H = 0.8), 0.1 Mb/s
    per session: mean rate 5 Mb/s. *)

val mean_rate : params -> float
(** [arrival_rate * mean_duration * rate_per_session]. *)

val hurst : params -> float
(** [(3 - alpha) / 2]. *)

val generate :
  ?params:params -> Lrd_rng.Rng.t -> slots:int -> slot:float -> Trace.t
(** Per-slot average rate over [slots * slot] seconds.
    @raise Invalid_argument on nonpositive parameters or [alpha <= 1]. *)
