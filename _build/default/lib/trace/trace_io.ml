let save trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# lrd rate trace: %d slots\n" (Trace.length trace);
      Printf.fprintf oc "slot %.17g\n" trace.Trace.slot;
      Array.iter
        (fun r -> Printf.fprintf oc "%.17g\n" r)
        trace.Trace.rates)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let slot = ref None in
      let rates = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" || line.[0] = '#' then ()
           else if String.length line > 5 && String.sub line 0 5 = "slot " then
             slot :=
               Some
                 (try float_of_string (String.sub line 5 (String.length line - 5))
                  with Failure _ -> failwith "Trace_io.load: bad slot header")
           else
             rates :=
               (try float_of_string line
                with Failure _ -> failwith "Trace_io.load: bad rate line")
               :: !rates
         done
       with End_of_file -> ());
      match !slot with
      | None -> failwith "Trace_io.load: missing slot header"
      | Some slot ->
          Trace.create ~rates:(Array.of_list (List.rev !rates)) ~slot)
