(** Fractional Gaussian noise generation.

    fGn is the stationary increment process of fractional Brownian motion:
    a zero-mean Gaussian sequence with autocovariance
    [gamma(k) = (|k+1|^2H - 2|k|^2H + |k-1|^2H) / 2] (unit variance).
    It is the canonical exactly self-similar process with Hurst parameter
    [H], and underlies the synthetic video trace that substitutes for the
    paper's MTV recording.

    Two generators are provided: the exact circulant-embedding spectral
    method of Davies & Harte (O(n log n), used for production traces), and
    Hosking's recursive method (O(n^2), exact, used as a small-n oracle in
    the tests). *)

val autocovariance : hurst:float -> int -> float
(** [autocovariance ~hurst k] is the lag-[k] autocovariance of unit-
    variance fGn.  @raise Invalid_argument unless [0 < hurst < 1]. *)

val davies_harte : Lrd_rng.Rng.t -> hurst:float -> n:int -> float array
(** [n] samples of zero-mean unit-variance fGn by circulant embedding.
    The embedding size is the next power of two at least [2 n]; for fGn
    the circulant eigenvalues are provably nonnegative, and tiny negative
    rounding artifacts are clamped to zero.
    @raise Invalid_argument unless [0 < hurst < 1] and [n > 0]. *)

val hosking : Lrd_rng.Rng.t -> hurst:float -> n:int -> float array
(** Exact O(n^2) generation by the Durbin-Levinson recursion.  Intended
    for tests and short sequences. *)
