(** Rate traces: a sequence of fluid rates averaged over fixed-length time
    slots, the form in which the paper's MTV (33 ms frames) and Bellcore
    (10 ms bins) traces enter every experiment. *)

type t = {
  rates : float array;  (** Average rate in each slot (work/time units). *)
  slot : float;  (** Slot duration in seconds. *)
}

val create : rates:float array -> slot:float -> t
(** @raise Invalid_argument if the slot is not positive, the trace is
    empty, or any rate is negative or non-finite. *)

val length : t -> int
val duration : t -> float
(** Total covered time, [length * slot]. *)

val mean : t -> float
val variance : t -> float
val std : t -> float
val peak : t -> float

val total_work : t -> float
(** Sum of [rate * slot] over the trace. *)

val map_rates : t -> f:(float -> float) -> t
(** Pointwise transformation of the rates; validates the result. *)

val scale_to_mean : t -> mean:float -> t
(** Multiplies all rates by a constant so the trace mean becomes [mean]. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous slice.  @raise Invalid_argument on out-of-bounds. *)

val resample : t -> slot:float -> t
(** Re-grids the trace onto a new slot length, conserving work exactly:
    each new slot's rate is the average of the fluid that the original
    trace carries over that interval (old slots are split fractionally
    across new-slot boundaries).  The new trace covers
    [floor (duration / slot)] slots; a trailing partial slot is dropped.
    @raise Invalid_argument if [slot <= 0] or the trace is shorter than
    one new slot. *)

val aggregate : t -> factor:int -> t
(** Coarsens the trace by averaging non-overlapping blocks of [factor]
    slots (the slot length grows by [factor]); a trailing partial block
    is dropped.  This is the aggregation underlying variance-time
    analysis: for second-order self-similar rates the variance of the
    aggregated trace decays like [factor^(2H-2)].
    @raise Invalid_argument if [factor <= 0] or the trace is shorter
    than one block. *)

val service_rate_for_utilization : t -> utilization:float -> float
(** [c] such that [mean t / c = utilization].
    @raise Invalid_argument unless utilization is in (0, 1). *)
