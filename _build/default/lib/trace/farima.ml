let check_d d =
  if not (d >= 0.0 && d < 0.5) then
    invalid_arg "Farima: d must lie in [0, 0.5)"

let memory_of_hurst h =
  if not (h > 0.5 && h < 1.0) then
    invalid_arg "Farima.memory_of_hurst: H must lie in (0.5, 1)";
  h -. 0.5

(* rho(k) = prod_{i=1..k} (i - 1 + d) / (i - d). *)
let autocorrelation ~d k =
  check_d d;
  let k = abs k in
  let rec go i acc =
    if i > k then acc
    else
      go (i + 1) (acc *. (float_of_int i -. 1.0 +. d) /. (float_of_int i -. d))
  in
  go 1 1.0

let variance ~d =
  check_d d;
  exp
    (Lrd_numerics.Special.log_gamma (1.0 -. (2.0 *. d))
    -. (2.0 *. Lrd_numerics.Special.log_gamma (1.0 -. d)))

let generate rng ~d ~n =
  check_d d;
  if n <= 0 then invalid_arg "Farima.generate: n must be positive";
  let sigma2 = variance ~d in
  let m = Lrd_numerics.Fft.next_power_of_two (2 * n) in
  let half = m / 2 in
  (* Autocovariance by the stable ratio recurrence, filled out to the
     circulant embedding. *)
  let acv = Array.make (half + 1) sigma2 in
  for k = 1 to half do
    acv.(k) <-
      acv.(k - 1) *. (float_of_int k -. 1.0 +. d) /. (float_of_int k -. d)
  done;
  let c_re = Array.make m 0.0 and c_im = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let lag = if k <= half then k else m - k in
    c_re.(k) <- acv.(lag)
  done;
  Lrd_numerics.Fft.forward ~re:c_re ~im:c_im;
  let eigen =
    Array.map
      (fun v ->
        if v < -1e-8 *. sigma2 then
          invalid_arg "Farima.generate: embedding not nonnegative definite"
        else Float.max v 0.0)
      c_re
  in
  let a_re = Array.make m 0.0 and a_im = Array.make m 0.0 in
  let fm = float_of_int m in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  a_re.(0) <- sqrt (eigen.(0) /. fm) *. gaussian ();
  a_re.(half) <- sqrt (eigen.(half) /. fm) *. gaussian ();
  for k = 1 to half - 1 do
    let scale = sqrt (eigen.(k) /. (2.0 *. fm)) in
    let g1 = gaussian () and g2 = gaussian () in
    a_re.(k) <- scale *. g1;
    a_im.(k) <- scale *. g2;
    a_re.(m - k) <- scale *. g1;
    a_im.(m - k) <- -.(scale *. g2)
  done;
  Lrd_numerics.Fft.forward ~re:a_re ~im:a_im;
  Array.sub a_re 0 n
