type params = {
  slots : int;
  slot : float;
  sources : int;
  peak_rate : float;
  mean_on : float;
  mean_off : float;
  alpha_on : float;
  alpha_off : float;
}

let bellcore_like =
  {
    slots = 360_000;
    slot = 0.010;
    sources = 30;
    peak_rate = 1.0;
    mean_on = 0.030;
    mean_off = 0.570;
    alpha_on = 1.2;
    alpha_off = 1.5;
  }

let generate ?(params = bellcore_like) rng =
  let src =
    Onoff.pareto_source ~peak_rate:params.peak_rate ~mean_on:params.mean_on
      ~mean_off:params.mean_off ~alpha_on:params.alpha_on
      ~alpha_off:params.alpha_off
  in
  let sources = List.init params.sources (fun _ -> src) in
  Onoff.generate rng ~sources ~slots:params.slots ~slot:params.slot

let generate_short rng ~n = generate ~params:{ bellcore_like with slots = n } rng
