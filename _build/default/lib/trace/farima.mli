(** FARIMA(0, d, 0) — fractionally integrated white noise.

    The other canonical exactly-LRD Gaussian process besides fGn: white
    noise passed through the fractional difference operator
    [(1 - B)^(-d)], [0 < d < 1/2], giving autocorrelation

    [rho(k) = prod_(i=1..k) (i - 1 + d) / (i - d) ~ k^(2d - 1)]

    so [H = d + 1/2].  Unlike fGn, FARIMA extends naturally to
    short-range ARMA structure; here the pure (0, d, 0) case is
    generated exactly by circulant embedding of the closed-form
    autocovariance — the same Davies-Harte machinery as {!Fgn}. *)

val memory_of_hurst : float -> float
(** [d = H - 1/2].  @raise Invalid_argument unless [0.5 < H < 1]. *)

val autocorrelation : d:float -> int -> float
(** Closed-form [rho(k)], [rho(0) = 1].
    @raise Invalid_argument unless [0 <= d < 0.5]. *)

val variance : d:float -> float
(** Process variance for unit innovation variance:
    [Gamma(1 - 2d) / Gamma(1 - d)^2]. *)

val generate : Lrd_rng.Rng.t -> d:float -> n:int -> float array
(** [n] samples of zero-mean FARIMA(0, d, 0) with unit innovation
    variance, by circulant embedding.
    @raise Invalid_argument unless [0 <= d < 0.5] and [n > 0]. *)
