(* Extension: the Anick-Mitra-Sondhi exact spectral solution as an
   analytic anchor.  Three columns over a ladder of buffer levels:

   - AMS: the exact infinite-buffer overflow probability Pr{Q > b} for
     N exponential on/off sources (time stationary);
   - simulation: the time-weighted empirical ccdf from an exact CTMC
     sample path through the fluid simulator;
   - loss: the finite-buffer loss rate at B = b, simulated on the same
     path - footnote 2 of the paper says the overflow probability upper
     bounds it.

   The last column is computed with the paper's own machinery as well:
   the i.i.d.-redraw model with exponential epochs matched to the
   chain's marginal and mean holding time, run through the bounded
   solver - quantifying how much the redraw approximation gives away
   against the true Markov modulation. *)

let id = "ext-ams"
let title = "Extension: AMS exact spectrum vs simulation vs the paper's model"

let sources = 6
let on_rate = 1.0
let lambda = 1.0
let mu = 2.0
let service_rate = 2.7

let run ctx fmt =
  let sys =
    Lrd_baselines.Ams.create ~sources ~on_rate ~lambda ~mu ~service_rate
  in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 91L) in
  let n_epochs = if Data.quick ctx then 400_000 else 2_000_000 in
  let epochs = Lrd_baselines.Ams.sample_epochs sys rng ~n:n_epochs in
  Table.heading fmt title;
  Format.fprintf fmt
    "%d exponential on/off sources (rate %g, lambda %g, mu %g), c = %g \
     (utilization %.3f); negative eigenvalues:"
    sources on_rate lambda mu service_rate
    (Lrd_baselines.Ams.utilization sys);
  Array.iter
    (fun z -> Format.fprintf fmt " %.4f" z)
    (Lrd_baselines.Ams.negative_eigenvalues sys);
  Format.fprintf fmt "@.";
  (* Time-weighted empirical ccdf on an unbounded queue. *)
  let levels = [| 0.5; 1.0; 2.0; 4.0; 6.0 |] in
  let above = Array.make (Array.length levels) 0.0 in
  let total_time = ref 0.0 in
  let sim =
    Lrd_fluidsim.Queue_sim.make ~service_rate ~buffer:1e9 ()
  in
  Array.iter
    (fun (rate, duration) ->
      let initial = Lrd_fluidsim.Queue_sim.occupancy sim in
      ignore (Lrd_fluidsim.Queue_sim.offer sim ~rate ~duration);
      total_time := !total_time +. duration;
      Array.iteri
        (fun i level ->
          above.(i) <-
            above.(i)
            +. Lrd_fluidsim.Queue_sim.epoch_time_above ~service_rate ~initial
                 ~rate ~duration ~level)
        levels)
    epochs;
  (* The paper's i.i.d.-redraw model matched to the chain: binomial
     marginal, exponential epochs with the chain's mean holding time. *)
  let marginal =
    let pi = Lrd_baselines.Ams.stationary sys in
    Lrd_dist.Marginal.create
      ~rates:(Array.init (sources + 1) (fun j -> float_of_int j *. on_rate))
      ~probs:pi
  in
  let mean_holding =
    (* Expected holding time of the jump chain under the stationary
       distribution. *)
    let pi = Lrd_baselines.Ams.stationary sys in
    let acc = ref 0.0 in
    Array.iteri
      (fun j p ->
        let birth = float_of_int (sources - j) *. lambda in
        let death = float_of_int j *. mu in
        acc := !acc +. (p /. (birth +. death)))
      pi;
    !acc
  in
  let redraw_model =
    Lrd_core.Model.create ~marginal
      ~interarrival:(Lrd_dist.Interarrival.exponential ~mean:mean_holding)
  in
  Format.fprintf fmt "%8s %12s %12s %14s %14s %14s@." "level" "AMS"
    "sim (time)" "exact loss@B" "sim loss@B" "redraw-model";
  Array.iteri
    (fun i level ->
      let analytic = Lrd_baselines.Ams.overflow_probability sys ~level in
      let empirical = above.(i) /. !total_time in
      let exact_loss =
        Lrd_baselines.Ams.finite_buffer_loss sys ~buffer:level
      in
      (* Finite-buffer loss at B = level on a fresh pass. *)
      let rng2 = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 92L) in
      let path = Lrd_baselines.Ams.sample_epochs sys rng2 ~n:(n_epochs / 2) in
      let finite =
        Lrd_fluidsim.Queue_sim.make ~service_rate ~buffer:level ()
      in
      let stats =
        Lrd_fluidsim.Queue_sim.run_epochs finite (Array.to_seq path)
      in
      let redraw =
        (Lrd_core.Solver.solve redraw_model ~service_rate ~buffer:level)
          .Lrd_core.Solver.loss
      in
      Format.fprintf fmt "%8g %12s %12s %14s %14s %14s@." level
        (Table.cell_value analytic)
        (Table.cell_value empirical)
        (Table.cell_value exact_loss)
        (Table.cell_value (Lrd_fluidsim.Queue_sim.loss_rate stats))
        (Table.cell_value redraw))
    levels;
  Format.fprintf fmt
    "(AMS and the time-weighted simulation agree to Monte Carlo accuracy; \
     the exact finite-buffer loss - full spectrum, two-sided boundary \
     conditions - matches the simulated loss to Monte Carlo accuracy and \
     is upper-bounded by the overflow probability, the paper's footnote \
     2.  The last column is a \
     deliberate misuse of the paper's model: matching only the marginal \
     and the mean JUMP time of the birth-death chain ignores that \
     consecutive epochs differ by a single source - the rate process is \
     strongly correlated across jumps, the i.i.d.-redraw assumption is \
     badly violated, and the model underestimates loss by orders of \
     magnitude at large buffers.  The paper's own fit avoids this by \
     measuring residence times of the rate in histogram BINS, which \
     absorbs the local correlation into the epoch length)@."
