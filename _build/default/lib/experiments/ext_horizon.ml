(* Extension: three readings of the correlation horizon side by side.
   For each buffer size: the empirical horizon detected from the
   shuffled-trace loss surface (Fig. 7 data), the paper's resetting
   estimate (eq. 26), and Ryu & Elwalid's large-deviations Critical
   Time Scale.  All three should grow linearly in the buffer; their
   constants differ because they answer slightly different questions
   (near-certain reset vs dominant overflow time scale). *)

let id = "ext-horizon"
let title = "Extension: correlation-horizon estimates compared (eq. 26 vs CTS)"

let run ctx fmt =
  let surface = Fig07.compute ctx in
  let trace = Data.mtv ctx in
  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace
      ~utilization:Data.mtv_utilization
  in
  let hist = Lrd_trace.Histogram.of_trace ~bins:50 trace in
  let runs =
    Array.map
      (fun r -> float_of_int r *. trace.Lrd_trace.Trace.slot)
      (Lrd_trace.Epochs.run_lengths hist trace)
  in
  let epoch_mean = Data.mtv_mean_epoch ctx in
  let epoch_std = Lrd_stats.Descriptive.std runs in
  let rate_std = Lrd_trace.Trace.std trace in
  let drift = c -. Lrd_trace.Trace.mean trace in
  Table.heading fmt title;
  Format.fprintf fmt "%11s %13s %11s %11s@." "buffer_s" "empirical" "eq26"
    "CTS";
  Array.iteri
    (fun row buffer_seconds ->
      let finite =
        Array.to_list
          (Array.mapi
             (fun col tc -> (tc, surface.Table.cells.(row).(col)))
             surface.Table.xs)
        |> List.filter (fun (tc, _) -> tc <> Float.infinity)
        |> Array.of_list
      in
      let empirical =
        match Lrd_core.Horizon.detect finite with
        | Some ch -> Printf.sprintf "%.3g" ch
        | None -> "-"
      in
      let eq26 =
        Lrd_core.Horizon.estimate ~buffer:(buffer_seconds *. c)
          ~mean_epoch:epoch_mean ~epoch_std ~rate_std ()
      in
      let cts =
        Lrd_core.Horizon.critical_time_scale ~hurst:Data.mtv_hurst
          ~buffer:(buffer_seconds *. c) ~drift
      in
      Format.fprintf fmt "%11s %13s %11.3g %11.3g@."
        (Table.axis_value buffer_seconds)
        empirical eq26 cts)
    surface.Table.ys;
  Format.fprintf fmt
    "(all three scale linearly in the buffer; eq. 26 uses the measured \
     epoch statistics, the CTS only H and the service slack.  The \
     empirical column is quantized to the simulated cutoff grid)@."
