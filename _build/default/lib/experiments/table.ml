type series = {
  title : string;
  xlabel : string;
  ylabel : string;
  points : (float * float) array;
}

type surface = {
  title : string;
  xlabel : string;
  ylabel : string;
  zlabel : string;
  xs : float array;
  ys : float array;
  cells : float array array;
}

let heading fmt title =
  Format.fprintf fmt "@.%s@.%s@." title (String.make (String.length title) '-')

let axis_value v =
  if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else if Float.abs v >= 1000.0 || (Float.abs v < 0.001 && v <> 0.0) then
    Printf.sprintf "%.3g" v
  else Printf.sprintf "%g" (Float.round (v *. 1e6) /. 1e6)

let cell_value v =
  if v = 0.0 then "0"
  else if Float.is_nan v then "nan"
  else Printf.sprintf "%.3e" v

let pad width s =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

let column_width = 11

let print_series fmt (s : series) =
  heading fmt s.title;
  Format.fprintf fmt "%s %s@."
    (pad column_width s.xlabel)
    (pad column_width s.ylabel);
  Array.iter
    (fun (x, y) ->
      Format.fprintf fmt "%s %s@."
        (pad column_width (axis_value x))
        (pad column_width (cell_value y)))
    s.points

let print_surface fmt (s : surface) =
  heading fmt s.title;
  Format.fprintf fmt "%s (rows: %s; columns: %s)@." s.zlabel s.ylabel
    s.xlabel;
  Format.fprintf fmt "%s" (pad column_width (s.ylabel ^ "\\" ^ s.xlabel));
  Array.iter
    (fun x -> Format.fprintf fmt " %s" (pad column_width (axis_value x)))
    s.xs;
  Format.fprintf fmt "@.";
  Array.iteri
    (fun row y ->
      Format.fprintf fmt "%s" (pad column_width (axis_value y));
      Array.iter
        (fun v -> Format.fprintf fmt " %s" (pad column_width (cell_value v)))
        s.cells.(row);
      Format.fprintf fmt "@.")
    s.ys

let print_multi_series fmt ~title ~xlabel ~ylabel ~xs columns =
  heading fmt title;
  Format.fprintf fmt "%s (per column: %s)@." ylabel
    (String.concat ", " (List.map fst columns));
  Format.fprintf fmt "%s" (pad column_width xlabel);
  List.iter
    (fun (name, _) -> Format.fprintf fmt " %s" (pad column_width name))
    columns;
  Format.fprintf fmt "@.";
  Array.iteri
    (fun i x ->
      Format.fprintf fmt "%s" (pad column_width (axis_value x));
      List.iter
        (fun (_, ys) ->
          Format.fprintf fmt " %s" (pad column_width (cell_value ys.(i))))
        columns;
      Format.fprintf fmt "@.")
    xs
