(* Fig. 5: as Fig. 4 for the Bellcore-like trace at utilization 0.4 (the
   paper picks per-trace utilizations so the losses land in the
   practically relevant 1e-1 .. 1e-10 band). *)

let id = "fig5"

let title =
  "Fig. 5: model loss vs (buffer, cutoff) - Bellcore, utilization 0.4"

let compute ctx =
  {
    (Fig04.surface ctx
       ~model_of:(fun ~cutoff -> Data.bc_model ctx ~cutoff)
       ~utilization:Data.bc_utilization)
    with
    Table.title = title;
  }

let run ctx fmt = Table.print_surface fmt (compute ctx)
