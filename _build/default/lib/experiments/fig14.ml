(* Fig. 14: the correlation horizon scales linearly with the buffer.
   The shuffled-trace loss surface of Fig. 7 is re-read on log axes: for
   each buffer size, the smallest cutoff beyond which the loss stays
   flat (the empirical CH) is detected and compared against the eq. 26
   estimate; the paper's claim is that CH / B is a constant (the surface
   flattens along a B / T_c = const ridge). *)

let id = "fig14"

let title =
  "Fig. 14: correlation horizon vs buffer (shuffled MTV simulation, log \
   reading of Fig. 7)"

let run ctx fmt =
  let surface = Fig07.compute ctx in
  let trace = Data.mtv ctx in
  Table.heading fmt title;
  Format.fprintf fmt "%11s %11s %11s %11s@." "buffer_s" "empirical_CH"
    "CH/B" "eq26_CH";
  let epoch_mean = Data.mtv_mean_epoch ctx in
  (* Empirical epoch-length spread: the run lengths themselves. *)
  let hist = Lrd_trace.Histogram.of_trace ~bins:50 trace in
  let runs =
    Array.map
      (fun r -> float_of_int r *. trace.Lrd_trace.Trace.slot)
      (Lrd_trace.Epochs.run_lengths hist trace)
  in
  let epoch_std = Lrd_stats.Descriptive.std runs in
  let rate_std = Lrd_trace.Trace.std trace in
  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace
      ~utilization:Data.mtv_utilization
  in
  Array.iteri
    (fun row buffer_seconds ->
      let series =
        Array.mapi (fun col tc -> (tc, surface.Table.cells.(row).(col)))
          surface.Table.xs
      in
      (* Detection needs finite, increasing cutoffs; drop the inf column. *)
      let finite =
        Array.of_list
          (List.filter
             (fun (tc, _) -> tc <> Float.infinity)
             (Array.to_list series))
      in
      let detected = Lrd_core.Horizon.detect finite in
      let estimate =
        Lrd_core.Horizon.estimate ~buffer:(buffer_seconds *. c)
          ~mean_epoch:epoch_mean ~epoch_std ~rate_std ()
      in
      match detected with
      | Some ch ->
          Format.fprintf fmt "%11s %11s %11.3g %11.3g@."
            (Table.axis_value buffer_seconds)
            (Table.axis_value ch)
            (ch /. buffer_seconds) estimate
      | None ->
          Format.fprintf fmt "%11s %11s %11s %11.3g@."
            (Table.axis_value buffer_seconds)
            "-" "-" estimate)
    surface.Table.ys;
  Format.fprintf fmt
    "(empirical CH: smallest cutoff with loss within 25%% of the \
     largest-cutoff loss; eq. 26 with p = 0.05)@."
