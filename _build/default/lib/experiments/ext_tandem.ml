(* Extension: the correlation horizon across hops.  A two-hop tandem of
   finite-buffer fluid queues is fed the MTV-like trace at different
   shuffle cutoffs, with the second hop the bottleneck (a downstream
   link carrying cross traffic: 90% of the first hop's rate — with
   equal rates the first hop's service cap would make the second
   trivially lossless).  The first hop truncates bursts at its service
   rate, so the bottleneck sees milder traffic than it would raw; the
   single pooled-buffer queue at the bottleneck rate is the baseline. *)

let id = "ext-tandem"
let title = "Extension: two-hop tandem - loss per hop vs pooled buffer"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let c2 = 0.9 *. c in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 61L) in
  let buffer_seconds = 0.1 in
  Table.heading fmt title;
  Format.fprintf fmt
    "video trace; hop 1 at utilization %.2g, hop 2 at %.2g (bottleneck); \
     per-hop buffer %g s, pooled bottleneck baseline %g s@."
    utilization (utilization /. 0.9) buffer_seconds (2.0 *. buffer_seconds);
  Format.fprintf fmt "%11s %12s %12s %12s %12s@." "cutoff_s" "hop1" "hop2"
    "end-to-end" "pooled-1hop";
  let cutoffs = [ Some 0.33; Some 3.3; Some 33.0; None ] in
  List.iter
    (fun cutoff ->
      let input =
        match cutoff with
        | None -> trace
        | Some tc ->
            let block =
              max 1
                (int_of_float
                   (Float.round (tc /. trace.Lrd_trace.Trace.slot)))
            in
            Lrd_trace.Shuffle.external_shuffle rng trace ~block
      in
      let stages =
        [
          {
            Lrd_fluidsim.Tandem.service_rate = c;
            buffer = buffer_seconds *. c;
          };
          {
            Lrd_fluidsim.Tandem.service_rate = c2;
            buffer = buffer_seconds *. c2;
          };
        ]
      in
      let stats = Lrd_fluidsim.Tandem.run_trace ~stages input in
      let hop_loss s = Lrd_fluidsim.Queue_sim.loss_rate s in
      let pooled =
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c2
            ~buffer:(2.0 *. buffer_seconds *. c2) ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim input)
      in
      match stats with
      | [ hop1; hop2 ] ->
          Format.fprintf fmt "%11s %12s %12s %12s %12s@."
            (match cutoff with
            | None -> "inf"
            | Some tc -> Printf.sprintf "%g" tc)
            (Table.cell_value (hop_loss hop1))
            (Table.cell_value (hop_loss hop2))
            (Table.cell_value (Lrd_fluidsim.Tandem.end_to_end_loss stats))
            (Table.cell_value pooled)
      | _ -> assert false)
    cutoffs;
  Format.fprintf fmt
    "(hop 1's service cap truncates the bursts the bottleneck would \
     otherwise absorb, yet the bottleneck still dominates end-to-end \
     loss; the pooled single buffer at the bottleneck beats the split \
     tandem - buffer sharing gains; and the loss flattens in the cutoff \
     at every hop, so the correlation horizon carries over to networks)@."
