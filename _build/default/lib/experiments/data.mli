(** Shared experimental ingredients: the two synthetic traces, their
    extracted marginals, epoch statistics and fitted models.

    Everything is generated deterministically from a seed and computed
    lazily, so the figures can share one context without recomputation.
    [quick] mode shrinks the traces (and downstream grids) for tests and
    smoke runs; the full mode matches the paper's trace sizes. *)

type t

val create : ?seed:int64 -> quick:bool -> unit -> t
(** Default seed 20260705. *)

val quick : t -> bool
val seed : t -> int64

val mtv : t -> Lrd_trace.Trace.t
(** Synthetic MTV-like video trace (full: 107 892 frames at 1/30 s). *)

val bellcore : t -> Lrd_trace.Trace.t
(** Synthetic Bellcore-like Ethernet trace (full: 360 000 slots of 10 ms). *)

val mtv_marginal : t -> Lrd_dist.Marginal.t
(** 50-bin histogram marginal of the video trace (paper Fig. 3, left). *)

val bc_marginal : t -> Lrd_dist.Marginal.t
(** 50-bin histogram marginal of the Ethernet trace (Fig. 3, right). *)

val mtv_mean_epoch : t -> float
(** Measured mean rate-residence time of the video trace (paper: ~80 ms). *)

val bc_mean_epoch : t -> float
(** Same for the Ethernet trace (paper: ~15 ms). *)

val mtv_hurst : float
(** Nominal Hurst parameter of the video trace (paper: 0.83). *)

val bc_hurst : float
(** Nominal Hurst parameter of the Ethernet trace (paper: 0.9). *)

val mtv_utilization : float
(** Utilization the paper uses for MTV experiments (0.8). *)

val bc_utilization : float
(** Utilization for Bellcore experiments (0.4). *)

val mtv_theta : t -> float
(** Pareto scale matched to the measured MTV mean epoch at infinite
    cutoff (paper eq. 25 procedure). *)

val bc_theta : t -> float

val mtv_model : t -> cutoff:float -> Lrd_core.Model.t
(** The paper's fitted model for the video trace at the given cutoff
    lag: 50-bin marginal, alpha from the nominal H, theta from the
    measured epoch. *)

val bc_model : t -> cutoff:float -> Lrd_core.Model.t

val solver_params : t -> Lrd_core.Solver.params
(** Solver parameters used across experiments ([quick] lowers the
    refinement cap and iteration budget). *)
