(** Fig. 10: loss vs (Hurst parameter, marginal scaling factor). *)

val id : string
val title : string

val surface :
  Data.t ->
  base_marginal:Lrd_dist.Marginal.t ->
  theta:float ->
  utilization:float ->
  title:string ->
  transform:(Lrd_dist.Marginal.t -> float -> Lrd_dist.Marginal.t) ->
  xs:float array ->
  xlabel:string ->
  Table.surface
(** Shared loss-vs-(Hurst, marginal transform) sweep, also used by
    {!Fig11}. *)

val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
