(* Fig. 2: convergence of the discrete occupancy bounds Q_{L,H}(n) for
   n = 5, 10, 30 iterations at M = 100 bins (dark: upper bound, light:
   lower bound in the paper's plot).  Here the two chains' occupancy
   cdfs are tabulated at deciles of the buffer, showing the bracketing
   interval collapsing as n grows. *)

let id = "fig2"
let title = "Fig. 2: convergence of the discretized occupancy bounds"

let run ctx fmt =
  let model = Data.mtv_model ctx ~cutoff:Float.infinity in
  let c =
    Lrd_core.Model.service_rate_for_utilization model
      ~utilization:Data.mtv_utilization
  in
  let buffer = 1.0 *. c in
  let bins = 100 in
  let snapshots =
    Lrd_core.Solver.iterate_snapshots model ~service_rate:c ~buffer ~bins
      ~at:[ 5; 10; 30 ]
  in
  Table.heading fmt title;
  Format.fprintf fmt
    "MTV-like marginal, utilization %.2g, B = 1 s normalized, M = %d@."
    Data.mtv_utilization bins;
  let cdf pmf j =
    Lrd_numerics.Summation.kahan_slice pmf ~pos:0 ~len:(j + 1)
  in
  Format.fprintf fmt "%8s" "x/B";
  List.iter
    (fun s ->
      Format.fprintf fmt "  %10s %10s"
        (Printf.sprintf "low(n=%d)" s.Lrd_core.Solver.iteration)
        (Printf.sprintf "up(n=%d)" s.Lrd_core.Solver.iteration))
    snapshots;
  Format.fprintf fmt "@.";
  List.iter
    (fun decile ->
      let j = decile * bins / 10 in
      Format.fprintf fmt "%8.1f" (float_of_int decile /. 10.0);
      List.iter
        (fun s ->
          Format.fprintf fmt "  %10.6f %10.6f"
            (cdf s.Lrd_core.Solver.lower_pmf j)
            (cdf s.Lrd_core.Solver.upper_pmf j))
        snapshots;
      Format.fprintf fmt "@.")
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Format.fprintf fmt "loss bounds:";
  List.iter
    (fun s ->
      Format.fprintf fmt "  n=%d: [%s, %s]" s.Lrd_core.Solver.iteration
        (Table.cell_value s.Lrd_core.Solver.lower_loss)
        (Table.cell_value s.Lrd_core.Solver.upper_loss))
    snapshots;
  Format.fprintf fmt "@."
