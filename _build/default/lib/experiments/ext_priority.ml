(* Extension: service differentiation under LRD.  The video trace rides
   as the high-priority class on a link shared with Ethernet-like
   best-effort traffic.  Three readings at increasing link load: the
   video class is isolated (tiny loss, as if it had the link to
   itself), while the best-effort class absorbs the video's burstiness
   on top of its own; the FIFO alternative (both classes in one queue)
   spreads the pain.  Statistical multiplexing with priorities is how
   the paper's "keep utilization high while keeping loss low" advice is
   deployed when classes differ in value. *)

let id = "ext-priority"

let title =
  "Extension: strict priority - isolating the LRD class on a shared link"

let run ctx fmt =
  let high = Data.mtv ctx in
  (* Best-effort companion sized to a third of the video's mean. *)
  let low =
    (* Re-grid the 10 ms Ethernet trace onto the video's 33 ms slots
       (work conserving) and scale it to a third of the video's mean. *)
    let regridded =
      Lrd_trace.Trace.resample (Data.bellcore ctx)
        ~slot:high.Lrd_trace.Trace.slot
    in
    Lrd_trace.Trace.scale_to_mean regridded
      ~mean:(Lrd_trace.Trace.mean high /. 3.0)
  in
  let n = min (Lrd_trace.Trace.length high) (Lrd_trace.Trace.length low) in
  let high = Lrd_trace.Trace.sub high ~pos:0 ~len:n in
  let low = Lrd_trace.Trace.sub low ~pos:0 ~len:n in
  let total_mean = Lrd_trace.Trace.mean high +. Lrd_trace.Trace.mean low in
  Table.heading fmt title;
  Format.fprintf fmt
    "high: video (mean %.3g); low: ethernet-marginal best effort (mean \
     %.3g); per-class buffers 0.1 s of the link rate@."
    (Lrd_trace.Trace.mean high)
    (Lrd_trace.Trace.mean low);
  Format.fprintf fmt "%12s %12s %12s %14s@." "link load" "video loss"
    "low loss" "fifo (mixed)";
  List.iter
    (fun load ->
      let c = total_mean /. load in
      let buffer = 0.1 *. c in
      let high_stats, low_stats =
        Lrd_fluidsim.Priority.run ~service_rate:c ~high_buffer:buffer
          ~low_buffer:buffer ~high ~low
      in
      (* FIFO baseline: the summed trace through one queue with the
         combined buffer. *)
      let mixed =
        Lrd_trace.Trace.create
          ~rates:
            (Array.mapi
               (fun i r -> r +. low.Lrd_trace.Trace.rates.(i))
               high.Lrd_trace.Trace.rates)
          ~slot:high.Lrd_trace.Trace.slot
      in
      let fifo =
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:(2.0 *. buffer)
            ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim mixed)
      in
      Format.fprintf fmt "%12g %12s %12s %14s@." load
        (Table.cell_value (Lrd_fluidsim.Queue_sim.loss_rate high_stats))
        (Table.cell_value low_stats.Lrd_fluidsim.Priority.loss_rate)
        (Table.cell_value fifo))
    [ 0.6; 0.75; 0.9 ];
  Format.fprintf fmt
    "(the video class sees the loss of a queue serving it alone - its \
     effective utilization is only its own share of the link - while the \
     best-effort class pays for both classes' burstiness; FIFO mixing \
     sits in between for everyone)@."
