(* Fig. 8: as Fig. 7 for the Bellcore-like trace at utilization 0.4.
   The paper notes the model-vs-shuffle agreement is coarser here (the
   fluid model's residence-time law fits the Ethernet trace less well),
   but the correlation horizon and buffer ineffectiveness show in both. *)

let id = "fig8"

let title =
  "Fig. 8: shuffled-trace simulation loss vs (buffer, cutoff) - Bellcore, \
   utilization 0.4"

let compute ctx =
  Fig07.surface ctx ~trace:(Data.bellcore ctx)
    ~utilization:Data.bc_utilization ~title

let run ctx fmt = Table.print_surface fmt (compute ctx)
