(* Extension: how good is the fluid abstraction?  The paper's queue is
   fluid; real switches queue packets.  The video trace is packetized
   (doubly stochastic Poisson at each slot's rate) at several packet
   sizes and driven through a tail-drop FIFO packet queue; the fluid
   simulator runs the same trace.  As the buffer-to-packet ratio grows
   the packet loss converges to the fluid loss; at small buffers the
   packet granularity and Poisson jitter add loss the fluid model
   cannot see. *)

let id = "ext-packet"
let title = "Extension: fluid abstraction vs packet-level simulation"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 81L) in
  Table.heading fmt title;
  Format.fprintf fmt
    "video trace at utilization %.2g; rates in Mb/s, so packet sizes are \
     in Mb (0.004 Mb ~ 500-byte packets, 0.012 Mb ~ 1500 bytes)@."
    utilization;
  let buffers = if Data.quick ctx then [ 0.01; 0.1 ] else [ 0.005; 0.02; 0.1; 0.5 ] in
  let packet_sizes = [ 0.012; 0.004; 0.001 ] in
  Format.fprintf fmt "%10s %12s" "buffer_s" "fluid";
  List.iter
    (fun ps -> Format.fprintf fmt " %12s" (Printf.sprintf "pkt %g" ps))
    packet_sizes;
  Format.fprintf fmt "  (loss rate per packet size)@.";
  List.iter
    (fun buffer_seconds ->
      let buffer = buffer_seconds *. c in
      let fluid =
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim trace)
      in
      Format.fprintf fmt "%10g %12s" buffer_seconds (Table.cell_value fluid);
      List.iter
        (fun packet_size ->
          let stats =
            Lrd_packet.Packet_queue.run ~service_rate:c ~buffer
              (Lrd_packet.Arrivals.poissonize rng trace ~packet_size)
          in
          Format.fprintf fmt " %12s"
            (Table.cell_value (Lrd_packet.Packet_queue.loss_rate stats)))
        packet_sizes;
      Format.fprintf fmt "@.")
    buffers;
  Format.fprintf fmt
    "(packet loss converges to the fluid loss from above as packets \
     shrink relative to the buffer; the fluid model underestimates loss \
     when the buffer holds only a few packets - the regime where the \
     paper's model should not be applied)@."
