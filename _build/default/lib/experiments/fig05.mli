(** Fig. 5: as Fig. 4 for the Bellcore-like marginal at utilization 0.4. *)

val id : string
val title : string
val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
