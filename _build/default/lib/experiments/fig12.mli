(** Fig. 12: loss vs (normalized buffer, marginal scaling factor). *)

val id : string
val title : string

val surface :
  Data.t ->
  base_marginal:Lrd_dist.Marginal.t ->
  theta:float ->
  hurst:float ->
  utilization:float ->
  title:string ->
  Table.surface
(** Shared sweep, also used by {!Fig13}. *)

val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
