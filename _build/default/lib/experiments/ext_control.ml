(* Extension: the paper's third consequence made concrete - "it would be
   useful to examine control mechanisms for LRD sources that modify the
   scaling of the marginal", e.g. "a feedback-based rate control
   mechanism" (Section III, citing the authors' RCBR service).

   The video trace is carried three ways at the same link utilization:
   raw, through an open-loop token-bucket shaper, and as an RCBR
   reservation process (feedback renegotiation at 1 s).  For each
   carried process: its marginal spread, the network-queue loss at a
   100 ms buffer, and the control costs (shaper delay / renegotiation
   rate). *)

let id = "ext-control"

let title =
  "Extension: reshaping the marginal by traffic control (token bucket vs \
   RCBR feedback)"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let buffer_seconds = 0.1 in
  Table.heading fmt title;
  let mean = Lrd_trace.Trace.mean trace in
  (* Token bucket at 1.05x the mean with a 0.25 s burst allowance. *)
  let bucket_rate = 1.05 *. mean in
  let shaped =
    Lrd_control.Token_bucket.shape ~rate:bucket_rate
      ~burst:(0.25 *. bucket_rate) trace
  in
  (* RCBR feedback reservation. *)
  let rcbr = Lrd_control.Rcbr.control trace in
  let loss t =
    let c = Lrd_trace.Trace.mean t /. utilization in
    let sim =
      Lrd_fluidsim.Queue_sim.make ~service_rate:c
        ~buffer:(buffer_seconds *. c) ()
    in
    Lrd_fluidsim.Queue_sim.loss_rate (Lrd_fluidsim.Queue_sim.run_trace sim t)
  in
  Format.fprintf fmt
    "video trace; shaped processes served at %.0f%% utilization with a \
     %g ms network buffer@."
    (100.0 *. utilization)
    (1000.0 *. buffer_seconds);
  Format.fprintf fmt "%14s %10s %10s %12s %30s@." "mechanism" "mean" "std"
    "net loss" "control cost";
  Format.fprintf fmt "%14s %10.3g %10.3g %12s %30s@." "none (raw)"
    (Lrd_trace.Trace.mean trace)
    (Lrd_trace.Trace.std trace)
    (Table.cell_value (loss trace))
    "-";
  Format.fprintf fmt "%14s %10.3g %10.3g %12s %30s@." "token bucket"
    (Lrd_trace.Trace.mean shaped.Lrd_control.Token_bucket.shaped)
    (Lrd_trace.Trace.std shaped.Lrd_control.Token_bucket.shaped)
    (Table.cell_value (loss shaped.Lrd_control.Token_bucket.shaped))
    (Printf.sprintf "max shaper delay %.3g s"
       (shaped.Lrd_control.Token_bucket.max_shaper_backlog /. bucket_rate));
  (* RCBR reserves capacity for a piecewise-constant rate the network
     honors, so the network drops nothing; the costs are bandwidth
     efficiency (mean rate / mean reservation), signalling, and the
     source-side smoothing delay. *)
  Format.fprintf fmt
    "%14s %10.3g %10.3g %12s %30s@." "rcbr"
    rcbr.Lrd_control.Rcbr.mean_reservation
    rcbr.Lrd_control.Rcbr.reservation_std
    "0 (CBR)"
    (Printf.sprintf "%.0f%% efficiency, %.2f renegs/s"
       (100.0 *. Lrd_trace.Trace.mean trace
      /. rcbr.Lrd_control.Rcbr.mean_reservation)
       rcbr.Lrd_control.Rcbr.renegotiation_rate);
  Format.fprintf fmt
    "(the token bucket clips the marginal's upper tail - std down, and \
     the network loss drops by well over an order of magnitude at the \
     same utilization, paid for in shaper delay; RCBR moves the problem \
     out of the queue altogether: the network carries an honored \
     piecewise-CBR reservation - zero network loss - at the cost of \
     reserving more than the mean and renegotiating.  Both are the \
     marginal-scaling lever of Figs. 10/12 operated by a mechanism \
     rather than by assumption)@."
