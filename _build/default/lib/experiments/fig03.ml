(* Fig. 3: the marginal rate distributions of the two traces, as 50-bin
   histograms, plus the summary statistics the model fit consumes (mean,
   std, mean epoch, Hurst estimates). *)

let id = "fig3"
let title = "Fig. 3: marginal distributions of the MTV and Bellcore traces"

let print_one ctx fmt name trace marginal mean_epoch nominal_hurst =
  let open Lrd_trace in
  Format.fprintf fmt "@.%s: %d samples of %.4g s, mean %.4g, std %.4g@." name
    (Trace.length trace) trace.Trace.slot (Trace.mean trace) (Trace.std trace);
  let rates = trace.Trace.rates in
  let wavelet = (Lrd_stats.Hurst.abry_veitch rates).Lrd_stats.Hurst.hurst in
  let aggvar =
    (Lrd_stats.Hurst.aggregated_variance rates).Lrd_stats.Hurst.hurst
  in
  Format.fprintf fmt
    "mean epoch %.4g s; H nominal %.2f, wavelet estimate %.3f, \
     aggregated-variance estimate %.3f@."
    mean_epoch nominal_hurst wavelet aggvar;
  ignore ctx;
  let rs = Lrd_dist.Marginal.rates marginal in
  let ps = Lrd_dist.Marginal.probs marginal in
  Format.fprintf fmt "%11s %11s  (50-bin histogram marginal)@." "rate" "prob";
  Array.iteri
    (fun i r ->
      Format.fprintf fmt "%11.4g %11.6f@." r ps.(i))
    rs

let run ctx fmt =
  Table.heading fmt title;
  print_one ctx fmt "MTV-like video trace" (Data.mtv ctx)
    (Data.mtv_marginal ctx) (Data.mtv_mean_epoch ctx) Data.mtv_hurst;
  print_one ctx fmt "Bellcore-like Ethernet trace" (Data.bellcore ctx)
    (Data.bc_marginal ctx) (Data.bc_mean_epoch ctx) Data.bc_hurst
