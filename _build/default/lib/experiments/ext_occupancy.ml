(* Extension: the solver's occupancy-distribution bounds against the
   exact fluid simulator.  The paper uses the embedded occupancy chain
   only to compute loss; the same chains bound the full stationary
   occupancy distribution at epoch points, giving mean occupancy,
   overflow probabilities (footnote 2) and quantiles with certificates. *)

let id = "ext-occupancy"
let title = "Extension: certified occupancy-distribution bounds vs simulation"

let run ctx fmt =
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let model =
    Lrd_core.Model.cutoff_pareto ~marginal ~theta:0.2 ~alpha:1.4 ~cutoff:5.0
  in
  let c = 1.25 in
  let buffer = 2.0 in
  let result, occupancy =
    Lrd_core.Solver.solve_detailed model ~service_rate:c ~buffer
  in
  Table.heading fmt title;
  Format.fprintf fmt
    "on/off marginal, truncated Pareto epochs (theta 0.2, alpha 1.4, \
     cutoff 5 s), c = %.3g, B = %.3g@." c buffer;
  Format.fprintf fmt "%a@." Lrd_core.Solver.pp_result result;
  let mean_lo, mean_hi = Lrd_core.Solver.mean_occupancy occupancy in
  let delay_lo, delay_hi =
    Lrd_core.Solver.mean_virtual_delay occupancy ~service_rate:c
  in
  (* Monte Carlo reference: occupancy at epoch starts. *)
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 51L) in
  let epochs =
    Lrd_core.Model.sample_epochs model rng
      ~n:(if Data.quick ctx then 300_000 else 1_000_000)
  in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
  let samples =
    Array.map
      (fun (rate, duration) ->
        let q = Lrd_fluidsim.Queue_sim.occupancy sim in
        ignore (Lrd_fluidsim.Queue_sim.offer sim ~rate ~duration);
        q)
      epochs
  in
  Format.fprintf fmt
    "mean occupancy: certified [%.4g, %.4g]; simulated %.4g@." mean_lo mean_hi
    (Lrd_stats.Descriptive.mean samples);
  Format.fprintf fmt
    "mean virtual delay: certified [%.4g, %.4g] s@." delay_lo delay_hi;
  Format.fprintf fmt "@.%10s %12s %12s %12s@." "threshold" "lower" "upper"
    "simulated";
  List.iter
    (fun fraction ->
      let threshold = fraction *. buffer in
      let lo, hi = Lrd_core.Solver.occupancy_ccdf occupancy ~threshold in
      let simulated =
        let count =
          Array.fold_left
            (fun acc q -> if q >= threshold then acc + 1 else acc)
            0 samples
        in
        float_of_int count /. float_of_int (Array.length samples)
      in
      Format.fprintf fmt "%10g %12.4g %12.4g %12.4g@." threshold lo hi
        simulated)
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];
  let q50 = Lrd_core.Solver.occupancy_quantile occupancy ~p:0.5 in
  let q99 = Lrd_core.Solver.occupancy_quantile occupancy ~p:0.99 in
  Format.fprintf fmt
    "@.occupancy quantiles: median in [%.4g, %.4g]; p99 in [%.4g, %.4g]@."
    (fst q50) (snd q50) (fst q99) (snd q99);
  Format.fprintf fmt
    "(every simulated value must fall inside its certified interval)@."
