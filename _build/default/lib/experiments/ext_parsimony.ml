(* Extension: horizon-aware fitting in action.  For each design buffer,
   Fitting.for_buffer fits a model whose cutoff lag is exactly that
   queue's correlation horizon (eq. 26).  The table compares its loss
   prediction against the full self-similar fit (cutoff = inf) and a
   deliberately too-short model (cutoff = horizon / 300): the
   horizon-fitted model must track the full model at its design buffer,
   the short model must underestimate - the paper's "any model up to
   CH" claim, and its failure mode, in one table. *)

let id = "ext-parsimony"

let title =
  "Extension: horizon-aware fitting - parsimonious models that still \
   predict"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let params = Data.solver_params ctx in
  let full = Lrd_core.Model.fit_from_trace ~hurst:Data.mtv_hurst trace in
  Table.heading fmt title;
  Format.fprintf fmt
    "video trace at utilization %.2g; the fitted cutoff is eq. 26's \
     horizon for each design buffer@."
    utilization;
  Format.fprintf fmt "%10s %12s %12s %12s %12s@." "buffer_s" "cutoff_s"
    "full-model" "horizon-fit" "too-short";
  let buffers = if Data.quick ctx then [ 0.05; 0.5 ] else [ 0.02; 0.1; 0.5; 2.0 ] in
  List.iter
    (fun buffer_seconds ->
      let fitted, cutoff =
        Lrd_core.Fitting.for_buffer ~hurst:Data.mtv_hurst trace ~utilization
          ~buffer_seconds
      in
      let solve model =
        (Lrd_core.Solver.solve_utilization ~params model ~utilization
           ~buffer_seconds)
          .Lrd_core.Solver.loss
      in
      let too_short =
        Lrd_core.Model.create ~marginal:fitted.Lrd_core.Model.marginal
          ~interarrival:
            (Lrd_dist.Interarrival.truncated_pareto
               ~theta:(Data.mtv_theta ctx)
               ~alpha:(Lrd_core.Model.alpha_of_hurst Data.mtv_hurst)
               ~cutoff:(cutoff /. 300.0))
      in
      Format.fprintf fmt "%10g %12s %12s %12s %12s@." buffer_seconds
        (Table.axis_value cutoff)
        (Table.cell_value (solve full))
        (Table.cell_value (solve fitted))
        (Table.cell_value (solve too_short)))
    buffers;
  Format.fprintf fmt
    "(the horizon-fitted model carries no correlation beyond the CH yet \
     tracks the full self-similar model's loss within a small factor at \
     its design buffer - the loss-vs-cutoff curve converges only \
     hyperbolically, so exact agreement would need a much larger cutoff \
     for vanishing extra accuracy; truncating well BELOW the horizon \
     loses the loss by orders of magnitude.  That asymmetry is the \
     boundary the paper draws between relevant and irrelevant \
     correlation)@."
