(** Fig. 9: loss vs cutoff lag for the two marginals with all other
    parameters equal — the marginal distribution alone moves the loss by
    orders of magnitude. *)

val id : string
val title : string

val compute : Data.t -> float array * float array * float array
(** [(cutoffs, mtv_losses, bellcore_losses)]. *)

val run : Data.t -> Format.formatter -> unit
