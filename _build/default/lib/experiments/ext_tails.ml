(* Extension: the Introduction's motivating example made concrete.
   Three arrival processes with long-range-dependent (or matched)
   correlation feed an effectively infinite buffer; their occupancy
   tails differ radically, as the closed-form asymptotics predict:

   - exponential-epoch modulated fluid  -> exponential tail (Cramer);
   - fractional-Gaussian-noise rates    -> Weibullian tail (Norros);
   - single heavy-tailed on/off source  -> hyperbolic tail.

   For each input the empirical ccdf of the per-slot occupancy is
   tabulated next to the analytic shape estimate (matched at the first
   reported level, since the asymptotics carry unspecified prefactors). *)

let id = "ext-tails"

let title =
  "Extension: occupancy tails - exponential vs Weibull vs hyperbolic"

let utilization = 0.7

let empirical_ccdf occupancies levels =
  let n = float_of_int (Array.length occupancies) in
  Array.map
    (fun b ->
      let count =
        Array.fold_left
          (fun acc q -> if q > b then acc + 1 else acc)
          0 occupancies
      in
      float_of_int count /. n)
    levels

(* Scale the analytic curve to match the empirical value at the first
   level with nonzero empirical mass. *)
let calibrate analytic empirical =
  let anchor = ref None in
  Array.iteri
    (fun i e -> if !anchor = None && e > 0.0 && analytic.(i) > 0.0 then
        anchor := Some (e /. analytic.(i)))
    empirical;
  let factor = Option.value !anchor ~default:1.0 in
  Array.map (fun a -> Float.min 1.0 (a *. factor)) analytic

let run ctx fmt =
  let quick = Data.quick ctx in
  let slots = if quick then 60_000 else 400_000 in
  let slot = 0.02 in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 31L) in
  Table.heading fmt title;

  let simulate trace c =
    let sim =
      (* A buffer far above every probed level stands in for infinity. *)
      Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:(1e9 *. c) ()
    in
    fst (Lrd_fluidsim.Queue_sim.occupancy_per_slot sim trace)
  in

  (* 1. Exponential tail: two-rate source, exponential epochs. *)
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let mean_epoch = 0.1 in
  let exp_model =
    Lrd_core.Model.create ~marginal
      ~interarrival:(Lrd_dist.Interarrival.exponential ~mean:mean_epoch)
  in
  let c = Lrd_core.Model.mean_rate exp_model /. utilization in
  let exp_trace = Lrd_core.Model.sample_trace exp_model rng ~slots ~slot in
  let exp_occ = simulate exp_trace c in
  let delta =
    Lrd_core.Asymptotics.exponential_decay_rate ~marginal ~mean_epoch
      ~service_rate:c
  in
  let levels = [| 0.1; 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 |] in
  let exp_emp = empirical_ccdf exp_occ levels in
  let exp_ana =
    calibrate (Array.map (fun b -> exp (-.delta *. b)) levels) exp_emp
  in
  Table.print_multi_series fmt
    ~title:
      (Printf.sprintf
         "exponential epochs (decay rate delta = %.3f per work unit)" delta)
    ~xlabel:"level" ~ylabel:"Pr{Q > b}" ~xs:levels
    [ ("empirical", exp_emp); ("analytic", exp_ana) ];

  (* 2. Weibullian tail: fGn-driven rates.  The Gaussian input needs a
     smaller service slack (the queue lives at much smaller levels than
     the regenerative cases), hence its own utilization and levels. *)
  let hurst = 0.8 in
  let mean = 5.0 and std = 1.5 in
  let z = Lrd_trace.Fgn.davies_harte rng ~hurst ~n:slots in
  let rates = Array.map (fun v -> Float.max 0.0 (mean +. (std *. v))) z in
  let fgn_trace = Lrd_trace.Trace.create ~rates ~slot in
  let c2 = mean /. 0.9 in
  let fgn_occ = simulate fgn_trace c2 in
  (* Var A(t) = sigma^2 slot^(2-2H) t^(2H) = a m t^(2H). *)
  let a = std *. std *. (slot ** (2.0 -. (2.0 *. hurst))) /. mean in
  let fgn_levels = [| 0.02; 0.05; 0.1; 0.2; 0.4; 0.8; 1.6 |] in
  let fgn_emp = empirical_ccdf fgn_occ fgn_levels in
  let fgn_ana =
    calibrate
      (Array.map
         (fun b ->
           Lrd_core.Asymptotics.fbm_tail ~mean ~variance_coefficient:a ~hurst
             ~service_rate:c2 ~level:b)
         fgn_levels)
      fgn_emp
  in
  Table.print_multi_series fmt
    ~title:
      (Printf.sprintf
         "fGn rates, H = %.2f (Weibull shape, exponent %.2f)" hurst
         (Lrd_core.Asymptotics.fbm_tail_exponent ~hurst))
    ~xlabel:"level" ~ylabel:"Pr{Q > b}" ~xs:fgn_levels
    [ ("empirical", fgn_emp); ("analytic", fgn_ana) ];

  (* 3. Hyperbolic tail: one heavy-tailed on/off source. *)
  let alpha = 1.5 in
  let peak = 2.0 and mean_on = 0.5 and mean_off = 0.5 in
  let source =
    Lrd_trace.Onoff.pareto_source ~peak_rate:peak ~mean_on ~mean_off
      ~alpha_on:alpha ~alpha_off:3.0
  in
  let onoff_trace =
    Lrd_trace.Onoff.generate rng ~sources:[ source ] ~slots ~slot
  in
  let c3 = peak *. mean_on /. (mean_on +. mean_off) /. utilization in
  let onoff_occ = simulate onoff_trace c3 in
  let onoff_levels = [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  let onoff_emp = empirical_ccdf onoff_occ onoff_levels in
  let onoff_ana =
    calibrate
      (Array.map
         (fun b ->
           Lrd_core.Asymptotics.onoff_tail ~peak ~mean_on ~mean_off ~alpha
             ~service_rate:c3 ~level:b)
         onoff_levels)
      onoff_emp
  in
  Table.print_multi_series fmt
    ~title:
      (Printf.sprintf
         "heavy-tailed on/off source (hyperbolic, exponent %.2f)"
         (1.0 -. alpha))
    ~xlabel:"level" ~ylabel:"Pr{Q > b}" ~xs:onoff_levels
    [ ("empirical", onoff_emp); ("analytic", onoff_ana) ];
  Format.fprintf fmt
    "(analytic curves are calibrated to the empirical value at the first \
     level: the asymptotics fix the shape, not the prefactor.  The \
     exponential case matches tightly; the fGn empirical tail sits above \
     the analytic curve, as expected of Norros' lower bound; the on/off \
     empirical tail has enormous finite-sample variance - a Pareto tail \
     converges to its asymptote very slowly, and a single long ON period \
     can dominate the whole trace - but it visibly decays polynomially, \
     orders of magnitude above the exponential case at the same \
     utilization.  Three inputs, comparable correlation, three radically \
     different tails: the paper's argument for looking beyond \
     second-order statistics)@."
