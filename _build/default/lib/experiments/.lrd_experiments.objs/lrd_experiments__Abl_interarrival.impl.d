lib/experiments/abl_interarrival.ml: Array Data Float Format List Lrd_core Lrd_dist Sweep Table
