lib/experiments/fig13.mli: Data Format Table
