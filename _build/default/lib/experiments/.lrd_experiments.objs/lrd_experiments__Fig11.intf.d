lib/experiments/fig11.mli: Data Format Table
