lib/experiments/abl_solver.mli: Data Format
