lib/experiments/ext_parsimony.ml: Data Format List Lrd_core Lrd_dist Table
