lib/experiments/ext_provision.mli: Data Format
