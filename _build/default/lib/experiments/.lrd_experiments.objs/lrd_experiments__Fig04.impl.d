lib/experiments/fig04.ml: Data Lrd_core Sweep Table
