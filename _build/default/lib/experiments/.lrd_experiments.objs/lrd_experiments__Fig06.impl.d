lib/experiments/fig06.ml: Array Data Format Int64 List Lrd_rng Lrd_stats Lrd_trace Table
