lib/experiments/fig12.mli: Data Format Lrd_dist Table
