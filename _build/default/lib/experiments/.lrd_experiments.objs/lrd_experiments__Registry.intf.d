lib/experiments/registry.mli: Data Format
