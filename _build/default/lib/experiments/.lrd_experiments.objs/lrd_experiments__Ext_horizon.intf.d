lib/experiments/ext_horizon.mli: Data Format
