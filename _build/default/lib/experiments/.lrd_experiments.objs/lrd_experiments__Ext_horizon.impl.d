lib/experiments/ext_horizon.ml: Array Data Fig07 Float Format List Lrd_core Lrd_stats Lrd_trace Printf Table
