lib/experiments/ext_tails.mli: Data Format
