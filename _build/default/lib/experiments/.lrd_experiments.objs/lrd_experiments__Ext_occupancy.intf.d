lib/experiments/ext_occupancy.mli: Data Format
