lib/experiments/fig11.ml: Array Data Fig10 Hashtbl Lrd_dist Sweep Table
