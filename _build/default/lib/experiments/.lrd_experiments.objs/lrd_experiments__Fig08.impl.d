lib/experiments/fig08.ml: Data Fig07 Table
