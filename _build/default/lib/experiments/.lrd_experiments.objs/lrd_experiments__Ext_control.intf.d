lib/experiments/ext_control.mli: Data Format
