lib/experiments/table.ml: Array Float Format List Printf String
