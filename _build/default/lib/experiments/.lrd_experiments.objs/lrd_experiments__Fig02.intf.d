lib/experiments/fig02.mli: Data Format
