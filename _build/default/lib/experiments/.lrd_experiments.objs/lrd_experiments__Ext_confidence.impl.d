lib/experiments/ext_confidence.ml: Array Data Format Int64 List Lrd_fluidsim Lrd_rng Lrd_stats Lrd_trace Printf Table
