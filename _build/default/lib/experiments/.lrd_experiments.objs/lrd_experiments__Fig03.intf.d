lib/experiments/fig03.mli: Data Format
