lib/experiments/ext_tandem.mli: Data Format
