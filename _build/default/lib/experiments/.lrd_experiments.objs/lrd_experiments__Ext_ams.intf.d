lib/experiments/ext_ams.mli: Data Format
