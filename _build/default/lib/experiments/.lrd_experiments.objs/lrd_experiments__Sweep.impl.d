lib/experiments/sweep.ml: Array Float Lrd_fluidsim Lrd_numerics Lrd_trace
