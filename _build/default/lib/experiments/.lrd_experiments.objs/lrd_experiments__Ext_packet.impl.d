lib/experiments/ext_packet.ml: Data Format Int64 List Lrd_fluidsim Lrd_packet Lrd_rng Lrd_trace Printf Table
