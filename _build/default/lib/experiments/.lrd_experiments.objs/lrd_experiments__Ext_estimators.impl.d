lib/experiments/ext_estimators.ml: Array Data Float Format Int64 List Lrd_rng Lrd_stats Lrd_trace Printf Table
