lib/experiments/ext_ams.ml: Array Data Format Int64 Lrd_baselines Lrd_core Lrd_dist Lrd_fluidsim Lrd_rng Table
