lib/experiments/fig04.mli: Data Format Lrd_core Table
