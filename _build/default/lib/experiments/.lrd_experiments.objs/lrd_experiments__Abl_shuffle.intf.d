lib/experiments/abl_shuffle.mli: Data Format
