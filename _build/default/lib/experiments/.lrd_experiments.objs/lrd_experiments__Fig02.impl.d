lib/experiments/fig02.ml: Data Float Format List Lrd_core Lrd_numerics Printf Table
