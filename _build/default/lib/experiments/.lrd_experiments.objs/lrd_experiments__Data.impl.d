lib/experiments/data.ml: Lazy Lrd_core Lrd_dist Lrd_rng Lrd_trace
