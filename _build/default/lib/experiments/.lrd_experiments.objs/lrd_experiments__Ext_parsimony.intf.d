lib/experiments/ext_parsimony.mli: Data Format
