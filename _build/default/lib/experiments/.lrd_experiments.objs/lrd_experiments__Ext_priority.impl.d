lib/experiments/ext_priority.ml: Array Data Format List Lrd_fluidsim Lrd_trace Table
