lib/experiments/fig08.mli: Data Format Table
