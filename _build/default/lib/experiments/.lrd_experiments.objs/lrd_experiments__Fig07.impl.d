lib/experiments/fig07.ml: Array Data Int64 Lrd_fluidsim Lrd_rng Lrd_trace Sweep Table
