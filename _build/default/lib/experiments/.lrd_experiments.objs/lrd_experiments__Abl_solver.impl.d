lib/experiments/abl_solver.ml: Data Format List Lrd_core Sys Table
