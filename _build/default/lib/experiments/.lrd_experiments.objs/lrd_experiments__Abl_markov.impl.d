lib/experiments/abl_markov.ml: Array Data Float Format Int64 Lrd_baselines Lrd_fluidsim Lrd_rng Lrd_stats Lrd_trace Sweep Table
