lib/experiments/data.mli: Lrd_core Lrd_dist Lrd_trace
