lib/experiments/fig14.mli: Data Format
