lib/experiments/ext_occupancy.ml: Array Data Format Int64 List Lrd_core Lrd_dist Lrd_fluidsim Lrd_rng Lrd_stats Table
