lib/experiments/fig13.ml: Data Fig12 Table
