lib/experiments/fig14.ml: Array Data Fig07 Float Format List Lrd_core Lrd_stats Lrd_trace Table
