lib/experiments/ext_priority.mli: Data Format
