lib/experiments/fig07.mli: Data Format Lrd_trace Table
