lib/experiments/ext_tails.ml: Array Data Float Format Int64 Lrd_core Lrd_dist Lrd_fluidsim Lrd_rng Lrd_trace Option Printf Table
