lib/experiments/ext_packet.mli: Data Format
