lib/experiments/fig10.mli: Data Format Lrd_dist Table
