lib/experiments/ext_estimators.mli: Data Format
