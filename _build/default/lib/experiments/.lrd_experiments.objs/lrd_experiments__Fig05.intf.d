lib/experiments/fig05.mli: Data Format Table
