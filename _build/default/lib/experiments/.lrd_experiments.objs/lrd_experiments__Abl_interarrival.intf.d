lib/experiments/abl_interarrival.mli: Data Format
