lib/experiments/fig05.ml: Data Fig04 Table
