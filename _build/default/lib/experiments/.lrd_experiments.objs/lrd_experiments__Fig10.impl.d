lib/experiments/fig10.ml: Data Float Lrd_core Lrd_dist Sweep Table
