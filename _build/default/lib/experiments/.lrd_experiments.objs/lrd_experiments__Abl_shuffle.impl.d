lib/experiments/abl_shuffle.ml: Array Data Format Int64 Lrd_fluidsim Lrd_rng Lrd_trace Table
