lib/experiments/ext_confidence.mli: Data Format
