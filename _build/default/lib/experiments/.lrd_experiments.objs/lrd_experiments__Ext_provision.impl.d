lib/experiments/ext_provision.ml: Data Float Format Lrd_core Printf Table
