lib/experiments/ext_delay_horizon.mli: Data Format
