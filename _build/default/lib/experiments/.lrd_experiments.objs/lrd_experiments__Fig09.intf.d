lib/experiments/fig09.mli: Data Format
