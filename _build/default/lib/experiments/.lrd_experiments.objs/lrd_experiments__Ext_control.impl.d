lib/experiments/ext_control.ml: Data Format Lrd_control Lrd_fluidsim Lrd_trace Printf Table
