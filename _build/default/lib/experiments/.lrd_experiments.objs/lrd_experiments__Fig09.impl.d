lib/experiments/fig09.ml: Array Data Lrd_core Sweep Table
