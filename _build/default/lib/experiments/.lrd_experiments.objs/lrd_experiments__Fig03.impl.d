lib/experiments/fig03.ml: Array Data Format Lrd_dist Lrd_stats Lrd_trace Table Trace
