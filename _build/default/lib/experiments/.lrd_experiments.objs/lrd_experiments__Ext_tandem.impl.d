lib/experiments/ext_tandem.ml: Data Float Format Int64 List Lrd_fluidsim Lrd_rng Lrd_trace Printf Table
