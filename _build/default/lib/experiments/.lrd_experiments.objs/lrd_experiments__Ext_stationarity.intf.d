lib/experiments/ext_stationarity.mli: Data Format
