lib/experiments/abl_markov.mli: Data Format
