lib/experiments/sweep.mli: Lrd_rng Lrd_trace
