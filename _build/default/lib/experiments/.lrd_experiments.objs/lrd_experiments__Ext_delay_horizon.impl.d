lib/experiments/ext_delay_horizon.ml: Array Data Float Format List Lrd_core Printf Sweep Table
