lib/experiments/fig06.mli: Data Format
