lib/experiments/fig12.ml: Data Float Lrd_core Lrd_dist Sweep Table
