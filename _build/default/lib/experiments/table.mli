(** ASCII rendering of experiment results.

    The paper's evaluation consists of loss-rate surfaces over two
    parameters and loss-rate series over one; these printers render them
    as aligned tables so the bench harness regenerates every figure as
    rows on stdout. *)

type series = {
  title : string;
  xlabel : string;
  ylabel : string;
  points : (float * float) array;
}

type surface = {
  title : string;
  xlabel : string;  (** Column parameter. *)
  ylabel : string;  (** Row parameter. *)
  zlabel : string;  (** Cell quantity (loss rate). *)
  xs : float array;
  ys : float array;
  cells : float array array;  (** [cells.(row).(col)]. *)
}

val heading : Format.formatter -> string -> unit
(** Underlined section heading. *)

val axis_value : float -> string
(** Compact rendering of an axis value ("inf" for infinity). *)

val cell_value : float -> string
(** Loss-rate rendering: scientific with 3 significant digits, "0" for
    exact zero. *)

val print_series : Format.formatter -> series -> unit
val print_surface : Format.formatter -> surface -> unit

val print_multi_series :
  Format.formatter ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:float array ->
  (string * float array) list ->
  unit
(** Several aligned series sharing the same abscissae, one column each. *)
