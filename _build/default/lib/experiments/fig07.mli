(** Fig. 7: shuffled-trace simulation loss vs (buffer, shuffle block),
    MTV-like trace at utilization 0.8. *)

val id : string
val title : string

val surface :
  Data.t ->
  trace:Lrd_trace.Trace.t ->
  utilization:float ->
  title:string ->
  Table.surface
(** Shared shuffle-simulation sweep, also used by {!Fig08} and {!Fig14}. *)

val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
