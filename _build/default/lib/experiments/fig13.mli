(** Fig. 13: as Fig. 12 for the Bellcore-like marginal at utilization 0.4. *)

val id : string
val title : string
val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
