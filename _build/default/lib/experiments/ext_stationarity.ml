(* Extension: the stationarity debate of the paper's Introduction.
   Measured "LRD" can be indistinguishable from a short-memory process
   with level shifts (Klemes; Bhattacharya et al.; Duffield et al.).
   Three diagnostics over four inputs:

   - a genuinely LRD trace (the synthetic video trace);
   - a phase-randomized surrogate of it (same spectrum, no phase
     structure: linear LRD should survive);
   - a deliberately nonstationary forgery: white noise plus one level
     shift, tuned to fool the aggregated-variance estimator;
   - plain white noise (control).

   The wavelet-H estimate, the CUSUM statistic, and the split-half mean
   shift are reported for each. *)

let id = "ext-stationarity"
let title = "Extension: LRD or level shift? stationarity diagnostics"

let run ctx fmt =
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 71L) in
  let n = if Data.quick ctx then 16_384 else 65_536 in
  let video =
    Array.sub (Data.mtv ctx).Lrd_trace.Trace.rates 0
      (min n (Lrd_trace.Trace.length (Data.mtv ctx)))
  in
  let surrogate = Lrd_stats.Stationarity.phase_randomized_surrogate rng video in
  let white =
    Array.init n (fun _ -> Lrd_rng.Sampler.normal rng ~mean:10.0 ~std:1.0)
  in
  let shifted =
    Array.mapi
      (fun i x -> if i > Array.length white / 2 then x +. 1.5 else x)
      white
  in
  let inputs =
    [
      ("video (LRD)", video);
      ("surrogate", surrogate);
      ("level shift", shifted);
      ("white noise", white);
    ]
  in
  Table.heading fmt title;
  Format.fprintf fmt "%14s %10s %10s %13s %12s@." "input" "H(wavelet)"
    "H(aggvar)" "CUSUM(1.358)" "split-shift";
  List.iter
    (fun (name, data) ->
      let wavelet = (Lrd_stats.Hurst.abry_veitch data).Lrd_stats.Hurst.hurst in
      let aggvar =
        (Lrd_stats.Hurst.aggregated_variance data).Lrd_stats.Hurst.hurst
      in
      let cusum = Lrd_stats.Stationarity.cusum data in
      let shift = Lrd_stats.Stationarity.split_half_mean_shift data in
      Format.fprintf fmt "%14s %10.3f %10.3f %13.3f %12.2f@." name wavelet
        aggvar cusum.Lrd_stats.Stationarity.statistic shift)
    inputs;
  Format.fprintf fmt
    "(the level-shift forgery inflates the aggregated-variance H like \
     real LRD, but the CUSUM statistic explodes far beyond the 1.358 \
     short-memory critical value and the split-half shift is large; the \
     genuine LRD trace also trips the CUSUM - the normalization is \
     invalid under LRD - which is precisely why the paper calls the \
     debate unresolvable from one realization and judges models by \
     their predictions instead)@."
