(* Extension: the paper's engineering advice, quantified by inverse
   solves.  For a loss target on the video source, compare what each
   control knob must provide: buffer alone, utilization (capacity
   overprovisioning) alone, or statistical multiplexing alone. *)

let id = "ext-provision"
let title = "Extension: meeting a loss target - buffer vs capacity vs multiplexing"

let target = 1e-6

let run ctx fmt =
  let model = Data.mtv_model ctx ~cutoff:Float.infinity in
  let params = Data.solver_params ctx in
  Table.heading fmt title;
  Format.fprintf fmt
    "video source (H = %.2f, cutoff = inf), target loss %.0e@." Data.mtv_hurst
    target;
  let show_outcome = function
    | Lrd_core.Provision.Achieved v -> Printf.sprintf "%.4g" v
    | Lrd_core.Provision.Unachievable_within v ->
        Printf.sprintf "not achievable within %.4g" v
  in
  (* Knob 1: buffer at utilization 0.8. *)
  let buffer =
    Lrd_core.Provision.buffer_for_loss ~params model ~utilization:0.8 ~target
  in
  Format.fprintf fmt "buffer alone (util 0.8):        %s s@."
    (show_outcome buffer);
  (* Knob 2: utilization at a 100 ms buffer. *)
  let utilization =
    Lrd_core.Provision.utilization_for_loss ~params model ~buffer_seconds:0.1
      ~target
  in
  Format.fprintf fmt "max utilization (B = 0.1 s):    %s@."
    (show_outcome utilization);
  (* Knob 3: multiplexed streams at utilization 0.8, 100 ms buffer. *)
  let streams =
    Lrd_core.Provision.streams_for_loss ~params model ~utilization:0.8
      ~buffer_seconds:0.1 ~target
  in
  Format.fprintf fmt "streams (util 0.8, B = 0.1 s):  %s@."
    (show_outcome streams);
  Format.fprintf fmt
    "(for LRD input the buffer axis hits diminishing returns - the \
     paper's buffer-ineffectiveness - while a handful of multiplexed \
     streams or modest overprovisioning reach the target)@."
