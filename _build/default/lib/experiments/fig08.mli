(** Fig. 8: as Fig. 7 for the Bellcore-like trace at utilization 0.4. *)

val id : string
val title : string
val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
