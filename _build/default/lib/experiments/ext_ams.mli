(** See the module comment in the implementation; registered in
    {!Registry.extensions}. *)

val id : string
val title : string
val run : Data.t -> Format.formatter -> unit
