(** Fig. 4: model loss vs (normalized buffer, cutoff lag), MTV-like
    marginal at utilization 0.8. *)

val id : string
val title : string

val surface :
  Data.t ->
  model_of:(cutoff:float -> Lrd_core.Model.t) ->
  utilization:float ->
  Table.surface
(** Shared loss-vs-(buffer, cutoff) sweep, also used by {!Fig05}. *)

val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
