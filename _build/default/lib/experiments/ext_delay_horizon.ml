(* Extension: does the correlation horizon depend on the metric?  The
   paper's conclusion argues the relevant time scale is a property of
   the (system, metric) pair, not of the traffic alone.  Here three
   metrics of the same queue are swept against the cutoff lag: the loss
   rate, the mean occupancy, and the p99 occupancy (bound midpoints
   from near-stationary chains).  Each flattens at its own horizon:
   occupancy statistics are dominated by typical excursions and
   saturate first, while the loss rate - carried entirely by the
   extreme bursts - keeps responding to longer correlation. *)

let id = "ext-delay-horizon"

let title =
  "Extension: the horizon depends on the metric (loss vs mean vs p99 \
   occupancy)"

let run ctx fmt =
  let quick = Data.quick ctx in
  let params = Data.solver_params ctx in
  let utilization = Data.mtv_utilization in
  let buffer_seconds = 0.5 in
  let cutoffs = Sweep.cutoffs ~quick () in
  (* The occupancy metrics need both chains near stationarity at a fixed
     resolution (the loss solver's negligible-loss early exit would
     leave them mid-drain), so they are read from fixed-length snapshot
     runs and reported as the bound midpoint. *)
  let iterations = if quick then 2_000 else 6_000 in
  let results =
    Array.map
      (fun cutoff ->
        let model = Data.mtv_model ctx ~cutoff in
        let c =
          Lrd_core.Model.service_rate_for_utilization model ~utilization
        in
        let loss =
          (Lrd_core.Solver.solve_utilization ~params model ~utilization
             ~buffer_seconds)
            .Lrd_core.Solver.loss
        in
        match
          Lrd_core.Solver.iterate_snapshots model ~service_rate:c
            ~buffer:(buffer_seconds *. c) ~bins:256 ~at:[ iterations ]
        with
        | [ snap ] ->
            let occupancy =
              {
                Lrd_core.Solver.step = buffer_seconds *. c /. 256.0;
                lower_pmf = snap.Lrd_core.Solver.lower_pmf;
                upper_pmf = snap.Lrd_core.Solver.upper_pmf;
              }
            in
            let mean_lo, mean_hi = Lrd_core.Solver.mean_occupancy occupancy in
            let p99_lo, p99_hi =
              Lrd_core.Solver.occupancy_quantile occupancy ~p:0.99
            in
            ( loss,
              (mean_lo +. mean_hi) /. 2.0 /. c,
              (p99_lo +. p99_hi) /. 2.0 /. c )
        | _ -> assert false)
      cutoffs
  in
  Table.print_multi_series fmt ~title ~xlabel:"cutoff_s"
    ~ylabel:"metric value" ~xs:cutoffs
    [
      ("loss", Array.map (fun (l, _, _) -> l) results);
      ("mean_occ_s", Array.map (fun (_, m, _) -> m) results);
      ("p99_occ_s", Array.map (fun (_, _, p) -> p) results);
    ];
  (* Detect each metric's empirical horizon from the finite cutoffs. *)
  let finite =
    Array.of_list
      (List.filter
         (fun (tc, _) -> tc <> Float.infinity)
         (Array.to_list (Array.mapi (fun i tc -> (tc, results.(i))) cutoffs)))
  in
  let horizon_of extract =
    match
      Lrd_core.Horizon.detect (Array.map (fun (tc, r) -> (tc, extract r)) finite)
    with
    | Some ch -> Printf.sprintf "%.3g s" ch
    | None -> "beyond range"
  in
  Format.fprintf fmt
    "detected horizons: loss %s; mean occupancy %s; p99 occupancy %s@."
    (horizon_of (fun (l, _, _) -> l))
    (horizon_of (fun (_, m, _) -> m))
    (horizon_of (fun (_, _, p) -> p));
  Format.fprintf fmt
    "(B = %g s at utilization %.2g.  The occupancy statistics - mean and \
     p99 - saturate at a much shorter cutoff than the loss rate, which \
     is carried entirely by the rare long bursts: the amount of \
     correlation a model must capture depends on the question asked of \
     it, exactly the paper's closing point)@."
    buffer_seconds utilization
