(** Fig. 11: loss vs (Hurst parameter, number of superposed streams). *)

val id : string
val title : string
val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
