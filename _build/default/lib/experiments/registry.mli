(** The experiment registry: every paper figure plus the ablations, each
    runnable by id.  This is the single source the bench harness and the
    CLI iterate over. *)

type entry = {
  id : string;  (** Stable identifier, e.g. "fig4" or "abl-shuffle". *)
  title : string;
  run : Data.t -> Format.formatter -> unit;
}

val figures : entry list
(** The paper's figures, in order (fig2 .. fig14). *)

val ablations : entry list
(** The design-choice ablations promised in DESIGN.md. *)

val extensions : entry list
(** Experiments beyond the paper: tail asymptotics, estimator
    comparison, inverse provisioning, occupancy bounds, and the
    correlation-horizon estimate comparison. *)

val all : entry list
(** [figures @ ablations @ extensions]. *)

val find : string -> entry option

val run :
  ?only:string list -> Data.t -> Format.formatter -> unit
(** Runs the selected entries (all by default) in registry order,
    printing each.  Unknown ids in [only] raise [Invalid_argument]. *)
