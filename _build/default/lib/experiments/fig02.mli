(** See the module comment in the implementation; registered in
    {!Registry.figures}. *)

val id : string
val title : string
val run : Data.t -> Format.formatter -> unit
