(* Extension: how trustworthy are the trace-driven loss numbers?  Under
   LRD the variance of a time average decays like n^(2H-2), far slower
   than 1/n, so the shuffled-simulation cells of Figs. 7/8 carry much
   wider error bars than their sample sizes suggest.  For a few
   (buffer, cutoff) cells the per-slot loss and arrival processes are
   fed through the batch-means method; the headline comparison is the
   interval width for the unshuffled (LRD) trace versus a short-block
   shuffle of the same length. *)

let id = "ext-confidence"

let title =
  "Extension: batch-means error bars on trace-driven loss (LRD widens them)"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 101L) in
  Table.heading fmt title;
  Format.fprintf fmt
    "video trace at utilization %.2g; 95%% batch-means intervals, 16 \
     batches@."
    utilization;
  Format.fprintf fmt "%10s %12s %12s %14s %12s@." "buffer_s" "input"
    "loss" "95% interval" "rel width";
  let slot_arrivals input =
    Array.map (fun r -> r *. input.Lrd_trace.Trace.slot)
      input.Lrd_trace.Trace.rates
  in
  let cell ~buffer_seconds ~label input =
    let sim =
      Lrd_fluidsim.Queue_sim.make ~service_rate:c
        ~buffer:(buffer_seconds *. c) ()
    in
    let losses, _ = Lrd_fluidsim.Queue_sim.losses_per_slot sim input in
    let interval =
      Lrd_stats.Batch_means.loss_rate_interval ~batches:16 ~losses
        ~arrivals:(slot_arrivals input) ()
    in
    let est = interval.Lrd_stats.Batch_means.estimate in
    let hw = interval.Lrd_stats.Batch_means.half_width in
    Format.fprintf fmt "%10g %12s %12s %14s %12s@." buffer_seconds label
      (Table.cell_value est)
      (Printf.sprintf "+/- %.1e" hw)
      (if est > 0.0 then Printf.sprintf "%.0f%%" (100.0 *. hw /. est)
       else "-")
  in
  List.iter
    (fun buffer_seconds ->
      cell ~buffer_seconds ~label:"lrd" trace;
      let shuffled =
        Lrd_trace.Shuffle.external_shuffle rng trace ~block:8
      in
      cell ~buffer_seconds ~label:"shuffled" shuffled)
    (if Data.quick ctx then [ 0.01 ] else [ 0.01; 0.05; 0.2 ]);
  Format.fprintf fmt
    "(same trace length, same estimator: the LRD input's interval is \
     several times wider than the short-memory shuffle's - the \
     batch-means point the paper's literature makes about simulating \
     self-similar traffic, and the reason EXPERIMENTS.md reports only \
     the shapes of Figs. 7/8 cells below ~1e-4)@."
