(** Parameter grids and sweep helpers shared by the figure runners. *)

val buffers : quick:bool -> ?max_seconds:float -> unit -> float array
(** Normalized buffer sizes in seconds, log-spaced from 10 ms up to
    [max_seconds] (default 2 s) — the "up to a few seconds" range the
    paper motivates with contemporary switch buffers.  7 points (4 in
    quick mode). *)

val cutoffs : quick:bool -> unit -> float array
(** Cutoff lags in seconds, log-spaced from 100 ms to 100 s plus
    infinity.  8 points (5 in quick mode). *)

val hursts : quick:bool -> unit -> float array
(** Hurst parameters spanning the paper's (0.55, 0.95) range. *)

val scalings : quick:bool -> unit -> float array
(** Marginal scaling factors spanning the paper's (0.5, 1.5) range. *)

val stream_counts : quick:bool -> unit -> int array
(** Numbers of superposed streams, 1 .. 10. *)

val surface :
  xs:float array ->
  ys:float array ->
  f:(x:float -> y:float -> float) ->
  float array array
(** [cells.(row).(col) = f ~x:xs.(col) ~y:ys.(row)]. *)

val shuffled_loss :
  Lrd_rng.Rng.t ->
  Lrd_trace.Trace.t ->
  utilization:float ->
  buffer_seconds:float ->
  block:int option ->
  float
(** Trace-driven loss rate: externally shuffles the trace with the given
    block size ([None] leaves it unshuffled), feeds it to the exact fluid
    queue with [c = mean / utilization] and [B = buffer_seconds * c],
    and returns the measured loss rate. *)

val shuffle_blocks_of_cutoffs :
  Lrd_trace.Trace.t -> float array -> (float * int option) array
(** Maps each cutoff lag to the shuffle block size [T_c / slot]
    (infinity maps to [None], i.e. the unshuffled trace); cutoffs below
    one slot are clamped to a single-sample block. *)
