(* Fig. 13: as Fig. 12 for the Bellcore-like trace at utilization 0.4. *)

let id = "fig13"

let title =
  "Fig. 13: model loss vs (buffer, marginal scaling) - Bellcore, utilization \
   0.4, cutoff = inf"

let compute ctx =
  Fig12.surface ctx ~base_marginal:(Data.bc_marginal ctx)
    ~theta:(Data.bc_theta ctx) ~hurst:Data.bc_hurst
    ~utilization:Data.bc_utilization ~title

let run ctx fmt = Table.print_surface fmt (compute ctx)
