(** Empirical autocovariance and autocorrelation.

    Used to verify that (a) the model's rate process has the covariance of
    eq. 8, (b) external shuffling kills correlation beyond the block
    length (Fig. 6), and (c) synthetic traces carry the intended LRD. *)

val autocovariance : float array -> max_lag:int -> float array
(** Biased estimator [g(k) = (1/n) sum (x_i - m)(x_{i+k} - m)] for
    [k = 0 .. max_lag], computed in O(n log n) via the FFT (Wiener-
    Khinchin).  The biased (1/n) normalization keeps the estimated
    covariance sequence positive semi-definite.
    @raise Invalid_argument if [max_lag < 0] or [max_lag >= length]. *)

val autocovariance_direct : float array -> max_lag:int -> float array
(** O(n * max_lag) reference implementation (test oracle). *)

val autocorrelation : float array -> max_lag:int -> float array
(** Autocovariance normalized by lag 0; [r.(0) = 1].
    @raise Invalid_argument additionally when the series is constant. *)
