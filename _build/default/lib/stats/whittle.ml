type fit = {
  hurst : float;
  memory : float;
  frequencies : int;
  objective : float;
}

(* Golden-section search for the minimum of a unimodal function. *)
let golden_minimize ~f ~lo ~hi ~eps =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (hi -. (phi *. (hi -. lo))) in
  let d = ref (lo +. (phi *. (hi -. lo))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > eps do
    if !fc < !fd then begin
      (* Minimum in [a, d]: d becomes the right edge, c the new d. *)
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  (!a +. !b) /. 2.0

let local_whittle ?frequencies a =
  let n = Array.length a in
  if n < 64 then invalid_arg "Whittle.local_whittle: series too short";
  let m_default = int_of_float (float_of_int n ** 0.65) in
  let size = Lrd_numerics.Fft.next_power_of_two n in
  let mean = Lrd_numerics.Array_ops.mean a in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. mean
  done;
  Lrd_numerics.Fft.forward ~re ~im;
  let m =
    let requested = Option.value frequencies ~default:m_default in
    max 8 (min requested ((size / 2) - 1))
  in
  let omega =
    Array.init m (fun j ->
        2.0 *. Float.pi *. float_of_int (j + 1) /. float_of_int size)
  in
  let spectrum =
    Array.init m (fun j ->
        let k = j + 1 in
        ((re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
        /. (2.0 *. Float.pi *. float_of_int n))
  in
  let log_omega = Array.map log omega in
  let mean_log_omega = Lrd_numerics.Array_ops.mean log_omega in
  (* Robinson's profile objective R(d). *)
  let objective d =
    let acc = Lrd_numerics.Summation.create () in
    Array.iteri
      (fun j i_j ->
        Lrd_numerics.Summation.add acc
          (exp (2.0 *. d *. log_omega.(j)) *. Float.max i_j 1e-300))
      spectrum;
    log (Lrd_numerics.Summation.total acc /. float_of_int m)
    -. (2.0 *. d *. mean_log_omega)
  in
  let memory = golden_minimize ~f:objective ~lo:(-0.49) ~hi:0.99 ~eps:1e-8 in
  {
    hurst = memory +. 0.5;
    memory;
    frequencies = m;
    objective = objective memory;
  }
