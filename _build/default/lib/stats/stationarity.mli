(** Stationarity diagnostics: LRD or disguised nonstationarity?

    The paper's Introduction recounts the long-running debate (Klemes;
    Bhattacharya et al.; Duffield et al.; Grasse et al.): measured
    "long-range dependence" can be indistinguishable from a short-memory
    process overlaid with level shifts or trends, and no test settles
    the matter from a single realization.  These tools implement the
    standard diagnostics used to argue each side:

    - {!phase_randomized_surrogate}: a surrogate series with the same
      periodogram (hence the same second-order structure, including any
      LRD) but randomized phases — genuine linear LRD survives, while
      structure tied to phase alignment (e.g. a single level shift)
      is dispersed;
    - {!cusum}: the classic CUSUM mean-shift statistic, normalized so
      that its null distribution under short-memory stationarity is the
      Brownian-bridge sup (Kolmogorov); under LRD the normalization is
      known to over-reject, which is exactly the ambiguity the paper
      describes;
    - {!split_half_mean_shift}: the mean difference between trace halves
      in units of the batch-means standard error. *)

val phase_randomized_surrogate :
  Lrd_rng.Rng.t -> float array -> float array
(** Surrogate with the same length, mean, and (circular) periodogram,
    but i.i.d. uniform phases.  The result is real-valued by conjugate-
    symmetric phase assignment.  The input is zero-padded to a power of
    two internally and truncated back, which slightly blurs the very
    lowest frequencies for non-power-of-two lengths. *)

type cusum_result = {
  statistic : float;
      (** [max_k |S_k - (k/n) S_n| / (sigma sqrt n)] with [sigma] the
          sample standard deviation. *)
  change_point : int;  (** Index attaining the maximum. *)
  critical_5pct : float;
      (** 5% critical value of the Brownian-bridge sup (1.358) — valid
          under short-memory stationarity only. *)
}

val cusum : float array -> cusum_result
(** @raise Invalid_argument on constant or too-short (< 16) series. *)

val split_half_mean_shift : ?batches:int -> float array -> float
(** Mean difference between the two halves divided by the combined
    batch-means standard error of that difference: a z-score that
    accounts for within-half correlation at the batch scale. *)
