(** Hurst-parameter estimation.

    The paper cites Whittle and wavelet estimators (Abry & Veitch) to
    establish H = 0.83 for the MTV trace and H = 0.9 for the Bellcore
    trace.  Four standard estimators are implemented so the synthetic
    substitute traces can be validated the same way:

    - {!aggregated_variance}: slope of log Var(X^(m)) vs log m; for an
      asymptotically second-order self-similar process the aggregated
      variance decays like [m^(2H - 2)].
    - {!rescaled_range}: the classic R/S statistic of Hurst/Mandelbrot.
    - {!gph}: Geweke & Porter-Hudak log-periodogram regression at low
      frequencies (a semiparametric frequency-domain cousin of the
      Whittle estimator the paper used).
    - {!abry_veitch}: Haar-wavelet energy regression across octaves.

    Each returns the H estimate together with the regression points it was
    read from, so callers can inspect the fit. *)

type fit = {
  hurst : float;  (** Point estimate. *)
  xs : float array;  (** Regression abscissae (log scale). *)
  ys : float array;  (** Regression ordinates (log scale). *)
  slope : float;  (** Fitted slope the estimate derives from. *)
}

val variance_time_curve :
  float array -> block_sizes:int array -> (int * float) array
(** Variance of the block-mean-aggregated series for each block size
    (the "variance-time plot" the aggregated-variance estimator fits).
    Block sizes leaving fewer than two blocks are skipped. *)

val aggregated_variance :
  ?min_block:int -> ?max_block:int -> ?points:int -> float array -> fit
(** Aggregated-variance estimator.  Defaults: blocks geometrically spaced
    from 4 to [n/8], 12 points.  @raise Invalid_argument on series too
    short to aggregate. *)

val rescaled_range :
  ?min_block:int -> ?max_block:int -> ?points:int -> float array -> fit
(** R/S estimator: mean rescaled adjusted range over disjoint windows of
    each size, regressed on window size (log-log). *)

val gph : ?frequencies:int -> float array -> fit
(** Log-periodogram regression on the lowest [frequencies] Fourier
    frequencies (default [n^0.5]): slope of [log I(w_j)] on
    [log (4 sin^2(w_j / 2))] is [-d] with [H = d + 1/2]. *)

type octave_point = {
  octave : int;
  log2_energy : float;  (** The logscale-diagram ordinate. *)
  coefficients : int;  (** Detail coefficients entering the energy. *)
  ci_low : float;  (** 95% confidence band for [log2_energy]... *)
  ci_high : float;  (** ...under Gaussian details (chi-squared). *)
}

val logscale_diagram :
  ?wavelet:Lrd_numerics.Wavelet.filter ->
  ?min_octave:int ->
  ?max_octave:int ->
  float array ->
  octave_point array
(** The Abry-Veitch logscale diagram: per-octave log2 mean squared
    detail energy with 95% confidence intervals.  For Gaussian details
    [n mu / E[d^2]] is chi-squared with [n] degrees of freedom, so the
    band is [log2 (n mu / chi2_(97.5%))] .. [log2 (n mu / chi2_(2.5%))].
    Boundary-contaminated coefficients are excluded as in
    {!abry_veitch}.  A straight line through the points (within the
    bands) over a range of octaves is the graphical LRD diagnostic; the
    slope is [2H - 1]. *)

val abry_veitch :
  ?wavelet:Lrd_numerics.Wavelet.filter ->
  ?weighted:bool ->
  ?min_octave:int ->
  ?max_octave:int ->
  float array ->
  fit
(** Wavelet (logscale-diagram) estimator: the log2 of the mean squared
    detail coefficients grows linearly in the octave with slope
    [2H - 1].  Defaults follow Abry & Veitch's recommendations: a
    Daubechies-4 wavelet (two vanishing moments, so linear trends are
    annihilated — pass [~wavelet:Haar] for the plain Haar pyramid) and a
    weighted regression with per-octave weights proportional to the
    coefficient counts (the inverse variance of the log-energy).
    Octaves with fewer than 4 coefficients are skipped. *)
