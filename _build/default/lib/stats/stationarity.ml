let phase_randomized_surrogate rng a =
  let n = Array.length a in
  if n < 4 then invalid_arg "Stationarity: series too short";
  let mean = Lrd_numerics.Array_ops.mean a in
  let size = Lrd_numerics.Fft.next_power_of_two n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. mean
  done;
  Lrd_numerics.Fft.forward ~re ~im;
  (* Keep each bin's magnitude, draw fresh phases with conjugate
     symmetry so the inverse transform is real. *)
  let half = size / 2 in
  let assign k phase =
    let magnitude = sqrt ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) in
    re.(k) <- magnitude *. cos phase;
    im.(k) <- magnitude *. sin phase;
    if k <> 0 && k <> half then begin
      re.(size - k) <- re.(k);
      im.(size - k) <- -.im.(k)
    end
  in
  assign 0 0.0;
  assign half 0.0;
  for k = 1 to half - 1 do
    assign k (2.0 *. Float.pi *. Lrd_rng.Rng.float rng)
  done;
  Lrd_numerics.Fft.inverse ~re ~im;
  Array.init n (fun i -> re.(i) +. mean)

type cusum_result = {
  statistic : float;
  change_point : int;
  critical_5pct : float;
}

let cusum a =
  let n = Array.length a in
  if n < 16 then invalid_arg "Stationarity.cusum: series too short";
  let sigma = Descriptive.std a in
  if sigma = 0.0 then invalid_arg "Stationarity.cusum: constant series";
  let total = Lrd_numerics.Array_ops.sum a in
  let running = Lrd_numerics.Summation.create () in
  let best = ref 0.0 and best_k = ref 0 in
  Array.iteri
    (fun i x ->
      Lrd_numerics.Summation.add running x;
      let k = float_of_int (i + 1) in
      let bridge =
        Float.abs
          (Lrd_numerics.Summation.total running
          -. (k /. float_of_int n *. total))
      in
      if bridge > !best then begin
        best := bridge;
        best_k := i + 1
      end)
    a;
  {
    statistic = !best /. (sigma *. sqrt (float_of_int n));
    change_point = !best_k;
    critical_5pct = 1.358;
  }

let split_half_mean_shift ?(batches = 8) a =
  let n = Array.length a in
  let half = n / 2 in
  let first = Array.sub a 0 half and second = Array.sub a half half in
  let i1 = Batch_means.mean_interval ~batches ~confidence:0.68 first in
  let i2 = Batch_means.mean_interval ~batches ~confidence:0.68 second in
  (* 68% half-width is one standard error (z ~ 1). *)
  let se1 = i1.Batch_means.half_width and se2 = i2.Batch_means.half_width in
  let se = sqrt ((se1 *. se1) +. (se2 *. se2)) in
  if se = 0.0 then 0.0
  else (i2.Batch_means.estimate -. i1.Batch_means.estimate) /. se
