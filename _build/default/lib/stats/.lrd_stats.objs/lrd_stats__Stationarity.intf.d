lib/stats/stationarity.mli: Lrd_rng
