lib/stats/spectral.ml: Array Float Lrd_numerics
