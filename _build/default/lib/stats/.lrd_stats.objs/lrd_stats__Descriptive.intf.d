lib/stats/descriptive.mli:
