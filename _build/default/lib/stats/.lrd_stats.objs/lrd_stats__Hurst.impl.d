lib/stats/hurst.ml: Array Descriptive Float Hashtbl List Lrd_numerics Option
