lib/stats/batch_means.ml: Array Descriptive Lrd_numerics
