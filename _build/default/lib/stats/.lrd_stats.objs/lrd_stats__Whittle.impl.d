lib/stats/whittle.ml: Array Float Lrd_numerics Option
