lib/stats/whittle.mli:
