lib/stats/descriptive.ml: Array Array_ops Float Lrd_numerics Summation
