lib/stats/spectral.mli:
