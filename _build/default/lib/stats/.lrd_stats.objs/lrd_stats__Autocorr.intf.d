lib/stats/autocorr.mli:
