lib/stats/hurst.mli: Lrd_numerics
