lib/stats/stationarity.ml: Array Batch_means Descriptive Float Lrd_numerics Lrd_rng
