lib/stats/autocorr.ml: Array Array_ops Fft Lrd_numerics Summation
