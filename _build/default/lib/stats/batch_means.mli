(** Batch-means confidence intervals for time-average estimates.

    Trace-driven loss rates are time averages of strongly correlated
    data; naive i.i.d. standard errors understate the uncertainty
    dramatically under LRD (the variance of the sample mean decays like
    [n^(2H-2)], not [1/n]).  The batch-means method divides the series
    into [k] contiguous batches, treats the batch means as approximately
    independent, and reads the standard error from their spread —
    adequate once batches are longer than the correlation that matters
    (the correlation horizon, for queueing functionals). *)

type interval = {
  estimate : float;  (** Overall mean. *)
  half_width : float;  (** Half-width of the confidence interval. *)
  batches : int;  (** Number of batches actually used. *)
  batch_length : int;  (** Samples per batch. *)
}

val mean_interval :
  ?batches:int -> ?confidence:float -> float array -> interval
(** Confidence interval for the mean of the series from [batches]
    batches (default 16) at the given [confidence] level (default 0.95,
    normal quantile — adequate for >= 10 batches).  Trailing samples
    that do not fill a batch are dropped.
    @raise Invalid_argument for fewer than 2 samples per batch or
    [batches < 2]. *)

val loss_rate_interval :
  ?batches:int ->
  ?confidence:float ->
  losses:float array ->
  arrivals:float array ->
  unit ->
  interval
(** Confidence interval for a ratio-of-sums functional
    [sum losses / sum arrivals] (the loss rate): each batch contributes
    its own ratio, combined by the batch-means recipe weighted equally
    (batches have equal length, so equal weighting is the standard
    choice).  @raise Invalid_argument on mismatched lengths. *)
