open Lrd_numerics

let mean = Array_ops.mean
let variance = Array_ops.variance
let std a = sqrt (variance a)

let sample_variance a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Descriptive.sample_variance: need >= 2 points";
  variance a *. float_of_int n /. float_of_int (n - 1)

let central_moment a k =
  let m = mean a in
  let acc = Summation.create () in
  Array.iter (fun x -> Summation.add acc ((x -. m) ** float_of_int k)) a;
  Summation.total acc /. float_of_int (Array.length a)

let skewness a =
  let s = std a in
  if s = 0.0 then 0.0 else central_moment a 3 /. (s *. s *. s)

let excess_kurtosis a =
  let v = variance a in
  if v = 0.0 then 0.0 else (central_moment a 4 /. (v *. v)) -. 3.0

let quantile a ~p =
  if Array.length a = 0 then invalid_arg "Descriptive.quantile: empty data";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Descriptive.quantile: p must lie in [0, 1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let i = int_of_float pos in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let median a = quantile a ~p:0.5

let weighted_linear_regression ~x ~y ~w =
  let n = Array.length x in
  if Array.length y <> n || Array.length w <> n then
    invalid_arg "Descriptive.weighted_linear_regression: mismatched lengths";
  let positive = Array.fold_left (fun acc v -> if v > 0.0 then acc + 1 else acc) 0 w in
  if positive < 2 then
    invalid_arg
      "Descriptive.weighted_linear_regression: need >= 2 positive weights";
  let total = Summation.create () in
  let sx = Summation.create () and sy = Summation.create () in
  for i = 0 to n - 1 do
    Summation.add total w.(i);
    Summation.add sx (w.(i) *. x.(i));
    Summation.add sy (w.(i) *. y.(i))
  done;
  let wt = Summation.total total in
  let mx = Summation.total sx /. wt and my = Summation.total sy /. wt in
  let sxy = Summation.create () and sxx = Summation.create () in
  for i = 0 to n - 1 do
    Summation.add sxy (w.(i) *. (x.(i) -. mx) *. (y.(i) -. my));
    Summation.add sxx (w.(i) *. (x.(i) -. mx) *. (x.(i) -. mx))
  done;
  let sxx = Summation.total sxx in
  if sxx = 0.0 then
    invalid_arg "Descriptive.weighted_linear_regression: degenerate abscissae";
  let slope = Summation.total sxy /. sxx in
  (slope, my -. (slope *. mx))

let linear_regression ~x ~y =
  let n = Array.length x in
  if Array.length y <> n then
    invalid_arg "Descriptive.linear_regression: mismatched lengths";
  if n < 2 then invalid_arg "Descriptive.linear_regression: need >= 2 points";
  let mx = mean x and my = mean y in
  let sxy = Summation.create () and sxx = Summation.create () in
  for i = 0 to n - 1 do
    Summation.add sxy ((x.(i) -. mx) *. (y.(i) -. my));
    Summation.add sxx ((x.(i) -. mx) *. (x.(i) -. mx))
  done;
  let sxx = Summation.total sxx in
  if sxx = 0.0 then
    invalid_arg "Descriptive.linear_regression: degenerate abscissae";
  let slope = Summation.total sxy /. sxx in
  (slope, my -. (slope *. mx))
