open Lrd_numerics

let check a ~max_lag =
  let n = Array.length a in
  if max_lag < 0 then invalid_arg "Autocorr: max_lag must be nonnegative";
  if max_lag >= n then invalid_arg "Autocorr: max_lag must be below length"

let autocovariance_direct a ~max_lag =
  check a ~max_lag;
  let n = Array.length a in
  let m = Array_ops.mean a in
  Array.init (max_lag + 1) (fun k ->
      let acc = Summation.create () in
      for i = 0 to n - 1 - k do
        Summation.add acc ((a.(i) -. m) *. (a.(i + k) -. m))
      done;
      Summation.total acc /. float_of_int n)

let autocovariance a ~max_lag =
  check a ~max_lag;
  let n = Array.length a in
  let m = Array_ops.mean a in
  (* Wiener-Khinchin: |FFT(x - m)|^2, inverse-transformed.  Zero padding
     to >= 2n turns the circular correlation into the linear one. *)
  let size = Fft.next_power_of_two (2 * n) in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. m
  done;
  Fft.forward ~re ~im;
  for i = 0 to size - 1 do
    re.(i) <- (re.(i) *. re.(i)) +. (im.(i) *. im.(i));
    im.(i) <- 0.0
  done;
  Fft.inverse ~re ~im;
  Array.init (max_lag + 1) (fun k -> re.(k) /. float_of_int n)

let autocorrelation a ~max_lag =
  let acv = autocovariance a ~max_lag in
  if acv.(0) <= 0.0 then
    invalid_arg "Autocorr.autocorrelation: constant series";
  Array.map (fun v -> v /. acv.(0)) acv
