(** Descriptive statistics for trace analysis and test assertions. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]).
    @raise Invalid_argument if the array has fewer than two elements. *)

val std : float array -> float
val skewness : float array -> float
val excess_kurtosis : float array -> float

val quantile : float array -> p:float -> float
(** Linear-interpolation quantile of the sorted data, [p] in [0, 1].
    Does not modify the input. *)

val median : float array -> float

val linear_regression : x:float array -> y:float array -> float * float
(** Ordinary least squares [(slope, intercept)] of [y] on [x].
    @raise Invalid_argument on mismatched lengths or fewer than two
    points. *)

val weighted_linear_regression :
  x:float array -> y:float array -> w:float array -> float * float
(** Weighted least squares with nonnegative weights (typically inverse
    variances).  @raise Invalid_argument on mismatched lengths, fewer
    than two points with positive weight, or degenerate abscissae. *)
