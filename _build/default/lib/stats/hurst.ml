type fit = {
  hurst : float;
  xs : float array;
  ys : float array;
  slope : float;
}

let block_grid ~n ~min_block ~max_block ~points =
  if max_block < min_block then
    invalid_arg "Hurst: series too short for the requested blocks";
  let raw =
    Lrd_numerics.Array_ops.logspace (float_of_int min_block)
      (float_of_int max_block) points
  in
  let sizes = Array.map (fun x -> max 1 (int_of_float (Float.round x))) raw in
  (* Deduplicate while preserving order. *)
  let seen = Hashtbl.create 16 in
  Array.to_list sizes
  |> List.filter (fun m ->
         if Hashtbl.mem seen m || m > n / 2 then false
         else begin
           Hashtbl.add seen m ();
           true
         end)
  |> Array.of_list

let aggregate a m =
  let n = Array.length a / m in
  Array.init n (fun b ->
      let acc = ref 0.0 in
      for i = b * m to ((b + 1) * m) - 1 do
        acc := !acc +. a.(i)
      done;
      !acc /. float_of_int m)

let variance_time_curve a ~block_sizes =
  let out = ref [] in
  Array.iter
    (fun m ->
      if m >= 1 && Array.length a / m >= 2 then begin
        let agg = aggregate a m in
        out := (m, Lrd_numerics.Array_ops.variance agg) :: !out
      end)
    block_sizes;
  Array.of_list (List.rev !out)

let fit_of_points points ~hurst_of_slope =
  let xs = Array.map fst points and ys = Array.map snd points in
  let slope, _ = Descriptive.linear_regression ~x:xs ~y:ys in
  { hurst = hurst_of_slope slope; xs; ys; slope }

let aggregated_variance ?(min_block = 4) ?max_block ?(points = 12) a =
  let n = Array.length a in
  if n < 8 * min_block then
    invalid_arg "Hurst.aggregated_variance: series too short";
  let max_block = Option.value max_block ~default:(n / 8) in
  let sizes = block_grid ~n ~min_block ~max_block ~points in
  let curve = variance_time_curve a ~block_sizes:sizes in
  let pts =
    Array.map
      (fun (m, v) -> (log (float_of_int m), log (Float.max v 1e-300)))
      curve
  in
  (* Var(X^(m)) ~ m^(2H-2): slope = 2H - 2. *)
  fit_of_points pts ~hurst_of_slope:(fun s -> 1.0 +. (s /. 2.0))

(* Rescaled adjusted range of one window. *)
let rs_statistic a pos len =
  let mean =
    Lrd_numerics.Summation.kahan_slice a ~pos ~len /. float_of_int len
  in
  let run = ref 0.0 and lo = ref 0.0 and hi = ref 0.0 in
  let var = ref 0.0 in
  for i = pos to pos + len - 1 do
    let d = a.(i) -. mean in
    run := !run +. d;
    if !run < !lo then lo := !run;
    if !run > !hi then hi := !run;
    var := !var +. (d *. d)
  done;
  let s = sqrt (!var /. float_of_int len) in
  if s = 0.0 then None else Some ((!hi -. !lo) /. s)

let rescaled_range ?(min_block = 8) ?max_block ?(points = 12) a =
  let n = Array.length a in
  if n < 4 * min_block then invalid_arg "Hurst.rescaled_range: series too short";
  let max_block = Option.value max_block ~default:(n / 4) in
  let sizes = block_grid ~n ~min_block ~max_block ~points in
  let pts = ref [] in
  Array.iter
    (fun m ->
      let windows = n / m in
      if windows >= 1 then begin
        let acc = ref 0.0 and count = ref 0 in
        for w = 0 to windows - 1 do
          match rs_statistic a (w * m) m with
          | Some rs ->
              acc := !acc +. rs;
              incr count
          | None -> ()
        done;
        if !count > 0 then
          pts :=
            (log (float_of_int m), log (!acc /. float_of_int !count)) :: !pts
      end)
    sizes;
  fit_of_points (Array.of_list (List.rev !pts)) ~hurst_of_slope:(fun s -> s)

let periodogram a =
  let n = Array.length a in
  let m = Lrd_numerics.Array_ops.mean a in
  let size = Lrd_numerics.Fft.next_power_of_two n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. m
  done;
  Lrd_numerics.Fft.forward ~re ~im;
  (* I(w_j) = |X_j|^2 / (2 pi n) at w_j = 2 pi j / size. *)
  let norm = 2.0 *. Float.pi *. float_of_int n in
  ( Array.init (size / 2) (fun j ->
        2.0 *. Float.pi *. float_of_int j /. float_of_int size),
    Array.init (size / 2) (fun j ->
        ((re.(j) *. re.(j)) +. (im.(j) *. im.(j))) /. norm) )

let gph ?frequencies a =
  let n = Array.length a in
  if n < 16 then invalid_arg "Hurst.gph: series too short";
  let omega, spec = periodogram a in
  let m =
    Option.value frequencies ~default:(int_of_float (sqrt (float_of_int n)))
  in
  let m = max 4 (min m (Array.length omega - 1)) in
  let pts = ref [] in
  for j = 1 to m do
    if spec.(j) > 0.0 then begin
      let x = log (4.0 *. Float.pow (sin (omega.(j) /. 2.0)) 2.0) in
      pts := (x, log spec.(j)) :: !pts
    end
  done;
  (* Slope = -d, H = d + 1/2. *)
  fit_of_points (Array.of_list (List.rev !pts)) ~hurst_of_slope:(fun s ->
      0.5 -. s)

type octave_point = {
  octave : int;
  log2_energy : float;
  coefficients : int;
  ci_low : float;
  ci_high : float;
}

(* Chi-squared quantile via the regularized incomplete gamma:
   chi2(k) = 2 Gamma(k/2)-distributed; invert P(k/2, x/2) = p. *)
let chi2_quantile ~df p =
  let a = float_of_int df /. 2.0 in
  let cdf x = Lrd_numerics.Special.gamma_p ~a ~x:(x /. 2.0) in
  let hi = ref (Float.max 4.0 (2.0 *. float_of_int df)) in
  while cdf !hi < p do
    hi := !hi *. 2.0
  done;
  Lrd_numerics.Roots.bisection ~f:(fun x -> cdf x -. p) ~lo:0.0 ~hi:!hi ()

let boundary_drop = function
  | Lrd_numerics.Wavelet.Haar -> 0
  | Lrd_numerics.Wavelet.Daubechies4 -> 3

let octave_energies ~wavelet ~min_octave ~max_octave a =
  let decomposition =
    Lrd_numerics.Wavelet.decompose ~max_level:max_octave wavelet a
  in
  let drop = boundary_drop wavelet in
  let points = ref [] in
  Array.iteri
    (fun idx details ->
      let octave = idx + 1 in
      let details =
        let count = Array.length details in
        if count > drop then Array.sub details 0 (count - drop) else [||]
      in
      let count = Array.length details in
      if octave >= min_octave && count >= 4 then begin
        let energy = Lrd_numerics.Wavelet.energy details in
        if energy > 0.0 then points := (octave, energy, count) :: !points
      end)
    decomposition.Lrd_numerics.Wavelet.details;
  Array.of_list (List.rev !points)

let logscale_diagram ?(wavelet = Lrd_numerics.Wavelet.Daubechies4)
    ?(min_octave = 1) ?(max_octave = max_int) a =
  if Array.length a < 32 then
    invalid_arg "Hurst.logscale_diagram: series too short";
  Array.map
    (fun (octave, energy, count) ->
      (* n mu / E[d^2] ~ chi2(n): invert for the band on log2 E[d^2]. *)
      let n = float_of_int count in
      let lo_q = chi2_quantile ~df:count 0.025 in
      let hi_q = chi2_quantile ~df:count 0.975 in
      {
        octave;
        log2_energy = Float.log2 energy;
        coefficients = count;
        ci_low = Float.log2 (n *. energy /. hi_q);
        ci_high = Float.log2 (n *. energy /. lo_q);
      })
    (octave_energies ~wavelet ~min_octave ~max_octave a)

(* The periodic transform wraps the series end around to its start; for
   filters longer than Haar the wrap contaminates the trailing
   coefficients of every octave (the contamination width has fixed point
   (c + L - 1) / 2, i.e. 3 for the 4-tap filter).  [octave_energies]
   excludes those coefficients, so a boundary mismatch (e.g. a trend)
   cannot leak into the energies. *)
let abry_veitch ?(wavelet = Lrd_numerics.Wavelet.Daubechies4)
    ?(weighted = true) ?(min_octave = 1) ?max_octave a =
  let n = Array.length a in
  if n < 32 then invalid_arg "Hurst.abry_veitch: series too short";
  let max_octave = Option.value max_octave ~default:max_int in
  let pts = octave_energies ~wavelet ~min_octave ~max_octave a in
  let xs = Array.map (fun (o, _, _) -> float_of_int o) pts in
  let ys = Array.map (fun (_, e, _) -> Float.log2 e) pts in
  let slope, _ =
    if weighted then
      (* Var(log2 energy) ~ 2 / (count ln^2 2): weight by count. *)
      Descriptive.weighted_linear_regression ~x:xs ~y:ys
        ~w:(Array.map (fun (_, _, c) -> float_of_int c) pts)
    else Descriptive.linear_regression ~x:xs ~y:ys
  in
  (* log2 E[d_j^2] ~ j (2H - 1) + const. *)
  { hurst = (slope +. 1.0) /. 2.0; xs; ys; slope }
