type interval = {
  estimate : float;
  half_width : float;
  batches : int;
  batch_length : int;
}

let check ~batches n =
  if batches < 2 then invalid_arg "Batch_means: need at least 2 batches";
  let batch_length = n / batches in
  if batch_length < 2 then
    invalid_arg "Batch_means: need at least 2 samples per batch";
  batch_length

let interval_of_batch_values values ~confidence ~batch_length =
  let k = Array.length values in
  let mean = Lrd_numerics.Array_ops.mean values in
  let spread = Descriptive.sample_variance values /. float_of_int k in
  let z =
    Lrd_numerics.Special.normal_quantile (1.0 -. ((1.0 -. confidence) /. 2.0))
  in
  {
    estimate = mean;
    half_width = z *. sqrt spread;
    batches = k;
    batch_length;
  }

let mean_interval ?(batches = 16) ?(confidence = 0.95) a =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Batch_means: confidence must lie in (0, 1)";
  let batch_length = check ~batches (Array.length a) in
  let values =
    Array.init batches (fun b ->
        Lrd_numerics.Summation.kahan_slice a ~pos:(b * batch_length)
          ~len:batch_length
        /. float_of_int batch_length)
  in
  interval_of_batch_values values ~confidence ~batch_length

let loss_rate_interval ?(batches = 16) ?(confidence = 0.95) ~losses ~arrivals
    () =
  if Array.length losses <> Array.length arrivals then
    invalid_arg "Batch_means.loss_rate_interval: mismatched lengths";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Batch_means: confidence must lie in (0, 1)";
  let batch_length = check ~batches (Array.length losses) in
  let values =
    Array.init batches (fun b ->
        let lost =
          Lrd_numerics.Summation.kahan_slice losses ~pos:(b * batch_length)
            ~len:batch_length
        in
        let arrived =
          Lrd_numerics.Summation.kahan_slice arrivals ~pos:(b * batch_length)
            ~len:batch_length
        in
        if arrived > 0.0 then lost /. arrived else 0.0)
  in
  interval_of_batch_values values ~confidence ~batch_length
