(* Classic adaptive Simpson with the Richardson error estimate
   |S2 - S1| / 15 and a depth cap to guarantee termination. *)
let simpson ~f ~a ~b ~eps =
  if a = b then 0.0
  else begin
    let simpson_rule fa fm fb a b = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
    let rec go a b fa fm fb whole eps depth =
      let m = (a +. b) /. 2.0 in
      let lm = (a +. m) /. 2.0 and rm = (m +. b) /. 2.0 in
      let flm = f lm and frm = f rm in
      let left = simpson_rule fa flm fm a m in
      let right = simpson_rule fm frm fb m b in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta <= 15.0 *. eps then
        left +. right +. (delta /. 15.0)
      else
        go a m fa flm fm left (eps /. 2.0) (depth - 1)
        +. go m b fm frm fb right (eps /. 2.0) (depth - 1)
    in
    let fa = f a and fb = f b and fm = f ((a +. b) /. 2.0) in
    let whole = simpson_rule fa fm fb a b in
    go a b fa fm fb whole eps 50
  end

let simpson_to_infinity ~f ~a ~eps =
  (* Substitute t = a + u/(1-u), dt = du/(1-u)^2, u in [0, 1). *)
  let g u =
    if u >= 1.0 then 0.0
    else begin
      let one_minus = 1.0 -. u in
      let t = a +. (u /. one_minus) in
      f t /. (one_minus *. one_minus)
    end
  in
  (* Stop just short of u = 1 to avoid evaluating the singular endpoint;
     the remaining sliver is negligible for integrands decaying >= 1/t^2. *)
  simpson ~f:g ~a:0.0 ~b:(1.0 -. 1e-9) ~eps
