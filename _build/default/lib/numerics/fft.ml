let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Bit-reversal permutation, in place. *)
let bit_reverse re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    (* Add one to [j] viewed as a bit-reversed counter. *)
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let check re im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft: re and im must have the same length";
  if not (is_power_of_two n) then
    invalid_arg "Fft: length must be a power of two"

(* Iterative Cooley-Tukey butterflies; [sign] is -1 for the forward
   transform and +1 for the inverse. *)
let transform ~sign re im =
  check re im;
  let n = Array.length re in
  if n > 1 then begin
    bit_reverse re im;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let ang = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
      let wr = cos ang and wi = sin ang in
      let i = ref 0 in
      while !i < n do
        let cr = ref 1.0 and ci = ref 0.0 in
        for k = 0 to half - 1 do
          let a = !i + k and b = !i + k + half in
          let tr = (re.(b) *. !cr) -. (im.(b) *. !ci)
          and ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
          re.(b) <- re.(a) -. tr;
          im.(b) <- im.(a) -. ti;
          re.(a) <- re.(a) +. tr;
          im.(a) <- im.(a) +. ti;
          let nr = (!cr *. wr) -. (!ci *. wi) in
          ci := (!cr *. wi) +. (!ci *. wr);
          cr := nr
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let forward ~re ~im = transform ~sign:(-1) re im

let inverse ~re ~im =
  transform ~sign:1 re im;
  let n = Array.length re in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- im.(i) *. inv
  done

let dft_naive ~re ~im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft.dft_naive: re and im must have the same length";
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let ang =
        -2.0 *. Float.pi *. float_of_int k *. float_of_int j
        /. float_of_int n
      in
      let c = cos ang and s = sin ang in
      sr := !sr +. (re.(j) *. c) -. (im.(j) *. s);
      si := !si +. (re.(j) *. s) +. (im.(j) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)
