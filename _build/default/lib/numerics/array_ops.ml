let linspace a b n =
  if n < 2 then invalid_arg "Array_ops.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      if i = n - 1 then b else a +. (float_of_int i *. step))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Array_ops.logspace: endpoints must be positive";
  if n < 2 then [| a |]
  else Array.map exp (linspace (log a) (log b) n)

let sum = Summation.kahan

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Array_ops.mean: empty array";
  sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Array_ops.variance: empty array";
  let m = mean a in
  let acc = Summation.create () in
  Array.iter (fun x -> Summation.add acc ((x -. m) *. (x -. m))) a;
  Summation.total acc /. float_of_int n

let min_element a = Array.fold_left Float.min a.(0) a
let max_element a = Array.fold_left Float.max a.(0) a

let normalize a =
  let s = sum a in
  if not (s > 0.0) then
    invalid_arg "Array_ops.normalize: sum must be positive";
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) /. s
  done

let fold_lefti f init a =
  let acc = ref init in
  Array.iteri (fun i x -> acc := f !acc i x) a;
  !acc
