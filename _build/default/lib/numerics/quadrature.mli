(** Adaptive numerical integration.

    Used for interarrival laws whose survival-function integral (needed in
    the generic expected-overflow formula, Section II of the paper) has no
    closed form, e.g. the Weibull epochs of the interarrival-law ablation. *)

val simpson : f:(float -> float) -> a:float -> b:float -> eps:float -> float
(** Adaptive Simpson integration of [f] over [[a, b]] with absolute
    tolerance [eps].  Handles [a > b] by sign convention. *)

val simpson_to_infinity :
  f:(float -> float) -> a:float -> eps:float -> float
(** Integral of [f] over [[a, +inf)], computed by mapping the tail through
    [t = a + u / (1 - u)].  [f] must decay at least as fast as [1/t^2]. *)
