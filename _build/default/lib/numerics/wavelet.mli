(** Orthonormal discrete wavelet transforms (periodic boundary).

    Haar and Daubechies-4 filter banks.  The D4 wavelet has two
    vanishing moments: its detail coefficients annihilate linear trends,
    which makes wavelet-based Hurst estimation robust to the slow
    deterministic drifts that plague variance-time and R/S estimators —
    the property Abry & Veitch (cited by the paper for its H values)
    rely on. *)

type filter = Haar | Daubechies4

val filter_coefficients : filter -> float array
(** The scaling (low-pass) filter taps; the wavelet (high-pass) taps are
    the usual quadrature mirror [g_k = (-1)^k h_(L-1-k)]. *)

val dwt : filter -> float array -> float array * float array
(** One level of the periodic DWT: [(approximation, detail)], each of
    half the input length.  @raise Invalid_argument unless the input
    length is even and at least the filter length. *)

val idwt : filter -> approx:float array -> detail:float array -> float array
(** Inverse of {!dwt}: exact reconstruction up to rounding.
    @raise Invalid_argument on mismatched halves. *)

type decomposition = {
  details : float array array;
      (** [details.(j)] are the detail (wavelet) coefficients of octave
          [j + 1] (finest first). *)
  approximation : float array;  (** The remaining coarse approximation. *)
}

val decompose : ?max_level:int -> filter -> float array -> decomposition
(** Full pyramid: repeatedly split the approximation while at least
    [2 * filter length] samples remain (or until [max_level] octaves).
    Input length need not be a power of two — a trailing odd sample is
    dropped at each level (standard practice for analysis use). *)

val energy : float array -> float
(** Mean of squares — the per-octave statistic of the Abry–Veitch
    estimator. *)
