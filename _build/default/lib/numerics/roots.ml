let check_bracket name flo fhi =
  if flo = 0.0 || fhi = 0.0 then ()
  else if (flo > 0.0) = (fhi > 0.0) then
    invalid_arg (name ^ ": interval does not bracket a root")

let bisection ~f ~lo ~hi ?(eps = 1e-12) () =
  let flo = f lo and fhi = f hi in
  check_bracket "Roots.bisection" flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    let rec go lo hi flo iterations =
      let mid = (lo +. hi) /. 2.0 in
      if hi -. lo <= eps *. (1.0 +. Float.abs mid) || iterations = 0 then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if (fmid > 0.0) = (flo > 0.0) then go mid hi fmid (iterations - 1)
        else go lo mid flo (iterations - 1)
      end
    in
    go lo hi flo 200
  end

let newton_bracketed ~f ~df ~lo ~hi ?(eps = 1e-12) () =
  let flo = f lo and fhi = f hi in
  check_bracket "Roots.newton_bracketed" flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    (* Keep the invariant that [lo, hi] brackets; sign_lo is sign of f lo. *)
    let sign_lo = flo > 0.0 in
    let rec go x lo hi iterations =
      if iterations = 0 then x
      else begin
        let fx = f x in
        if Float.abs fx = 0.0 then x
        else begin
          let lo, hi = if (fx > 0.0) = sign_lo then (x, hi) else (lo, x) in
          let dfx = df x in
          let step_ok x' = x' > lo && x' < hi in
          let x' =
            if dfx <> 0.0 && step_ok (x -. (fx /. dfx)) then x -. (fx /. dfx)
            else (lo +. hi) /. 2.0
          in
          if Float.abs (x' -. x) <= eps *. (1.0 +. Float.abs x') then x'
          else go x' lo hi (iterations - 1)
        end
      end
    in
    go ((lo +. hi) /. 2.0) lo hi 200
  end
