(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: nonpositive argument";
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !a
  end

(* Series representation of P(a,x), converges quickly for x < a + 1. *)
let gamma_p_series ~a ~x =
  let eps = 1e-15 in
  let rec go ap sum del =
    if Float.abs del <= Float.abs sum *. eps then sum
    else
      let ap = ap +. 1.0 in
      let del = del *. x /. ap in
      go ap (sum +. del) del
  in
  let sum = go a (1.0 /. a) (1.0 /. a) in
  sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Continued fraction for Q(a,x) by modified Lentz, for x >= a + 1. *)
let gamma_q_cf ~a ~x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) <= eps then continue := false;
    incr i;
    if !i > 10_000 then continue := false
  done;
  exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h

let gamma_p ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_p: x must be nonnegative";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series ~a ~x
  else 1.0 -. gamma_q_cf ~a ~x

let gamma_q ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_q: x must be nonnegative";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series ~a ~x
  else gamma_q_cf ~a ~x

let erf x =
  if x = 0.0 then 0.0
  else begin
    let p = gamma_p ~a:0.5 ~x:(x *. x) in
    if x > 0.0 then p else -.p
  end

let erfc x =
  if x >= 0.0 then gamma_q ~a:0.5 ~x:(x *. x)
  else 1.0 +. gamma_p ~a:0.5 ~x:(x *. x)

(* Acklam's rational approximation to the normal quantile, then two
   Halley refinement steps against the analytic cdf for near machine
   precision. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.normal_quantile: argument must lie in (0, 1)";
  let a =
    [|
      -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
      1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
    |]
  and b =
    [|
      -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
      6.680131188771972e+01; -1.328068155288572e+01;
    |]
  and c =
    [|
      -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
      -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
    |]
  and d =
    [|
      7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let plow = 0.02425 in
  let tail_value q =
    let num =
      ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
       +. c.(4))
       *. q)
      +. c.(5)
    in
    let den =
      (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q) +. 1.0
    in
    num /. den
  in
  let x =
    if p < plow then tail_value (sqrt (-2.0 *. log p))
    else if p > 1.0 -. plow then -.tail_value (sqrt (-2.0 *. log (1.0 -. p)))
    else begin
      let q = p -. 0.5 in
      let r = q *. q in
      let num =
        (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r
        +. a.(4))
        *. r
        +. a.(5)
      in
      let den =
        ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
         +. b.(4))
         *. r)
        +. 1.0
      in
      num *. q /. den
    end
  in
  (* Halley refinement using cdf expressed with erfc (stable in tails). *)
  let refine x =
    let e = (0.5 *. erfc (-.x /. sqrt 2.0)) -. p in
    let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
    x -. (u /. (1.0 +. (x *. u /. 2.0)))
  in
  refine (refine x)

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.0)

let erf_inv p =
  if not (p > -1.0 && p < 1.0) then
    invalid_arg "Special.erf_inv: argument must lie in (-1, 1)";
  if p = 0.0 then 0.0 else normal_quantile ((p +. 1.0) /. 2.0) /. sqrt 2.0
