(** Iterative radix-2 complex fast Fourier transform.

    The transform operates in place on a pair of arrays holding the real
    and imaginary parts.  Lengths must be powers of two.  The forward
    transform computes [X_k = sum_n x_n exp(-2 i pi k n / N)]; the inverse
    transform includes the [1/N] normalization so that
    [inverse (forward x) = x] up to rounding. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val next_power_of_two : int -> int
(** [next_power_of_two n] is the smallest power of two [>= max 1 n]. *)

val forward : re:float array -> im:float array -> unit
(** In-place forward transform.  @raise Invalid_argument if the arrays
    have different lengths or a length that is not a power of two. *)

val inverse : re:float array -> im:float array -> unit
(** In-place inverse transform with [1/N] normalization.
    @raise Invalid_argument as for {!forward}. *)

val dft_naive : re:float array -> im:float array -> float array * float array
(** Direct O(N^2) discrete Fourier transform of the given complex signal,
    returned as fresh arrays.  Any length is accepted.  Intended as a test
    oracle for {!forward}. *)
