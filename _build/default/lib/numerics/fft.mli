(** Iterative radix-2 complex fast Fourier transform.

    The transform operates in place on a pair of arrays holding the real
    and imaginary parts.  Lengths must be powers of two.  The forward
    transform computes [X_k = sum_n x_n exp(-2 i pi k n / N)]; the inverse
    transform includes the [1/N] normalization so that
    [inverse (forward x) = x] up to rounding.

    Two API levels are provided.  The planned API ({!make_plan},
    {!forward_ip}, {!inverse_ip}) precomputes the twiddle-factor table
    and bit-reversal permutation once and then transforms caller-owned
    buffers with zero heap allocation per call — this is what the
    solver's convolution engine iterates hundreds of thousands of times.
    The plain {!forward}/{!inverse} calls keep the historical signature
    and reuse memoized plans internally. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val next_power_of_two : int -> int
(** [next_power_of_two n] is the smallest power of two [>= max 1 n]. *)

type plan
(** Precomputed twiddle factors and bit-reversal indices for one
    transform size.  Plans are immutable and can be shared freely. *)

val make_plan : int -> plan
(** [make_plan n] builds a plan for size-[n] transforms.  Cost is
    [O(n)] including [n - 1] trigonometric evaluations; every factor is
    computed by a direct cos/sin call, so planned transforms avoid the
    error-accumulating recurrence of a twiddle-on-the-fly butterfly.
    @raise Invalid_argument unless [n] is a power of two. *)

val size : plan -> int
(** The transform size the plan was built for. *)

val forward_ip : plan -> re:float array -> im:float array -> unit
(** In-place forward transform using the plan's tables.  Performs no
    heap allocation.  @raise Invalid_argument if the array lengths do
    not match the plan size. *)

val inverse_ip : plan -> re:float array -> im:float array -> unit
(** In-place inverse transform with [1/N] normalization; allocation-free
    like {!forward_ip}.  @raise Invalid_argument as for {!forward_ip}. *)

val forward : re:float array -> im:float array -> unit
(** In-place forward transform.  Reuses an internally memoized plan for
    the given size (sizes are powers of two, so the memo table stays
    tiny).  @raise Invalid_argument if the arrays have different lengths
    or a length that is not a power of two. *)

val inverse : re:float array -> im:float array -> unit
(** In-place inverse transform with [1/N] normalization.
    @raise Invalid_argument as for {!forward}. *)

val dft_naive : re:float array -> im:float array -> float array * float array
(** Direct O(N^2) discrete Fourier transform of the given complex signal,
    returned as fresh arrays.  Any length is accepted.  Intended as a test
    oracle for {!forward} and {!forward_ip}. *)
