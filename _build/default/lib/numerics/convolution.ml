let direct a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let out = Array.make (na + nb - 1) 0.0 in
    for i = 0 to na - 1 do
      let ai = a.(i) in
      if ai <> 0.0 then
        for j = 0 to nb - 1 do
          out.(i + j) <- out.(i + j) +. (ai *. b.(j))
        done
    done;
    out
  end

let fft a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let n = Fft.next_power_of_two (na + nb - 1) in
    let are = Array.make n 0.0 and aim = Array.make n 0.0 in
    let bre = Array.make n 0.0 and bim = Array.make n 0.0 in
    Array.blit a 0 are 0 na;
    Array.blit b 0 bre 0 nb;
    Fft.forward ~re:are ~im:aim;
    Fft.forward ~re:bre ~im:bim;
    for i = 0 to n - 1 do
      let r = (are.(i) *. bre.(i)) -. (aim.(i) *. bim.(i)) in
      let im = (are.(i) *. bim.(i)) +. (aim.(i) *. bre.(i)) in
      are.(i) <- r;
      aim.(i) <- im
    done;
    Fft.inverse ~re:are ~im:aim;
    Array.sub are 0 (na + nb - 1)
  end

(* FFT convolution beats the schoolbook loop once the product of lengths
   is large; the threshold is deliberately conservative. *)
let auto a b =
  let na = Array.length a and nb = Array.length b in
  if na * nb <= 4096 then direct a b else fft a b

type plan = {
  kernel_len : int;
  max_signal : int;
  n : int;
  kre : float array;
  kim : float array;
}

let make_plan ~kernel ~max_signal =
  let nk = Array.length kernel in
  if nk = 0 then invalid_arg "Convolution.make_plan: empty kernel";
  if max_signal < 1 then invalid_arg "Convolution.make_plan: max_signal < 1";
  let n = Fft.next_power_of_two (nk + max_signal - 1) in
  let kre = Array.make n 0.0 and kim = Array.make n 0.0 in
  Array.blit kernel 0 kre 0 nk;
  Fft.forward ~re:kre ~im:kim;
  { kernel_len = nk; max_signal; n; kre; kim }

let convolve_plan plan a =
  let na = Array.length a in
  if na > plan.max_signal then
    invalid_arg "Convolution.convolve_plan: signal longer than plan";
  if na = 0 then [||]
  else begin
    let n = plan.n in
    let are = Array.make n 0.0 and aim = Array.make n 0.0 in
    Array.blit a 0 are 0 na;
    Fft.forward ~re:are ~im:aim;
    for i = 0 to n - 1 do
      let r = (are.(i) *. plan.kre.(i)) -. (aim.(i) *. plan.kim.(i)) in
      let im = (are.(i) *. plan.kim.(i)) +. (aim.(i) *. plan.kre.(i)) in
      are.(i) <- r;
      aim.(i) <- im
    done;
    Fft.inverse ~re:are ~im:aim;
    Array.sub are 0 (na + plan.kernel_len - 1)
  end
