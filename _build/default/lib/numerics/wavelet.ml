type filter = Haar | Daubechies4

let filter_coefficients = function
  | Haar ->
      let s = 1.0 /. sqrt 2.0 in
      [| s; s |]
  | Daubechies4 ->
      let r3 = sqrt 3.0 in
      let norm = 4.0 *. sqrt 2.0 in
      [|
        (1.0 +. r3) /. norm;
        (3.0 +. r3) /. norm;
        (3.0 -. r3) /. norm;
        (1.0 -. r3) /. norm;
      |]

(* Quadrature mirror: g_k = (-1)^k h_(L-1-k). *)
let wavelet_coefficients filter =
  let h = filter_coefficients filter in
  let l = Array.length h in
  Array.init l (fun k ->
      let sign = if k land 1 = 0 then 1.0 else -1.0 in
      sign *. h.(l - 1 - k))

let dwt filter x =
  let n = Array.length x in
  let h = filter_coefficients filter in
  let g = wavelet_coefficients filter in
  let l = Array.length h in
  if n < l || n land 1 = 1 then
    invalid_arg "Wavelet.dwt: input length must be even and >= filter length";
  let half = n / 2 in
  let approx = Array.make half 0.0 and detail = Array.make half 0.0 in
  for i = 0 to half - 1 do
    let a = ref 0.0 and d = ref 0.0 in
    for k = 0 to l - 1 do
      let idx = ((2 * i) + k) mod n in
      a := !a +. (h.(k) *. x.(idx));
      d := !d +. (g.(k) *. x.(idx))
    done;
    approx.(i) <- !a;
    detail.(i) <- !d
  done;
  (approx, detail)

let idwt filter ~approx ~detail =
  let half = Array.length approx in
  if Array.length detail <> half then
    invalid_arg "Wavelet.idwt: halves must have equal lengths";
  let h = filter_coefficients filter in
  let g = wavelet_coefficients filter in
  let l = Array.length h in
  let n = 2 * half in
  let x = Array.make n 0.0 in
  (* Transpose of the analysis operator (orthonormal => inverse). *)
  for i = 0 to half - 1 do
    for k = 0 to l - 1 do
      let idx = ((2 * i) + k) mod n in
      x.(idx) <- x.(idx) +. (h.(k) *. approx.(i)) +. (g.(k) *. detail.(i))
    done
  done;
  x

type decomposition = {
  details : float array array;
  approximation : float array;
}

let decompose ?(max_level = max_int) filter x =
  let l = Array.length (filter_coefficients filter) in
  let rec go current level acc =
    let n = Array.length current in
    if level >= max_level || n < 2 * l then
      { details = Array.of_list (List.rev acc); approximation = current }
    else begin
      (* Drop a trailing odd sample so the split is exact. *)
      let even = if n land 1 = 1 then Array.sub current 0 (n - 1) else current in
      let approx, detail = dwt filter even in
      go approx (level + 1) (detail :: acc)
    end
  in
  go x 0 []

let energy d =
  if Array.length d = 0 then 0.0
  else begin
    let acc = Summation.create () in
    Array.iter (fun v -> Summation.add acc (v *. v)) d;
    Summation.total acc /. float_of_int (Array.length d)
  end
