(** Small array utilities shared across the libraries. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive.  @raise Invalid_argument if [n < 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points geometrically spaced from [a] to [b];
    both endpoints must be positive. *)

val sum : float array -> float
(** Compensated sum (alias for {!Summation.kahan}). *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Population variance (divides by [n]).
    @raise Invalid_argument on empty input. *)

val min_element : float array -> float
val max_element : float array -> float

val normalize : float array -> unit
(** Scales the array in place so it sums to 1.
    @raise Invalid_argument if the sum is not positive. *)

val fold_lefti : ('a -> int -> float -> 'a) -> 'a -> float array -> 'a
(** Left fold with the element index. *)
