let check_square a =
  let n = Array.length a in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Linalg: matrix must be square")
    a;
  n

(* LU factorization with partial pivoting, in place on a copy.
   Returns (lu, permutation, sign); raises on singularity when
   [exn_on_singular]. *)
let lu_factor ~exn_on_singular a =
  let n = check_square a in
  let lu = Array.map Array.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let singular = ref false in
  for col = 0 to n - 1 do
    (* Pivot: largest magnitude in this column at or below the diagonal. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs lu.(row).(col) > Float.abs lu.(!pivot).(col) then
        pivot := row
    done;
    if !pivot <> col then begin
      let tmp = lu.(col) in
      lu.(col) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tmp = perm.(col) in
      perm.(col) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let diag = lu.(col).(col) in
    if Float.abs diag < 1e-300 then begin
      if exn_on_singular then failwith "Linalg: singular matrix";
      singular := true
    end
    else
      for row = col + 1 to n - 1 do
        let factor = lu.(row).(col) /. diag in
        lu.(row).(col) <- factor;
        for k = col + 1 to n - 1 do
          lu.(row).(k) <- lu.(row).(k) -. (factor *. lu.(col).(k))
        done
      done
  done;
  (lu, perm, !sign, !singular)

let solve a b =
  let n = check_square a in
  if Array.length b <> n then invalid_arg "Linalg.solve: size mismatch";
  let lu, perm, _, _ = lu_factor ~exn_on_singular:true a in
  (* Forward substitution on the permuted right-hand side. *)
  let y = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (lu.(i).(j) *. y.(j))
    done
  done;
  (* Back substitution. *)
  let x = Array.copy y in
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let determinant a =
  let n = check_square a in
  let lu, _, sign, singular = lu_factor ~exn_on_singular:false a in
  if singular then 0.0
  else begin
    let det = ref sign in
    for i = 0 to n - 1 do
      det := !det *. lu.(i).(i)
    done;
    !det
  end

let mat_vec a x =
  Array.map
    (fun row ->
      let acc = Summation.create () in
      Array.iteri (fun j v -> Summation.add acc (v *. x.(j))) row;
      Summation.total acc)
    a

let residual_norm a x b =
  let ax = mat_vec a x in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let r = Float.abs (v -. b.(i)) in
      if r > !worst then worst := r)
    ax;
  !worst
