(** Special functions needed by the model and the correlation-horizon
    estimate: error function and its inverse (eq. 26 of the paper uses
    [erf^-1]), the log-gamma function, and regularized incomplete gamma
    functions (used for the Gamma marginal of the synthetic video trace).

    All routines are pure OCaml, accurate to roughly 1e-12 relative error
    over their useful ranges. *)

val log_gamma : float -> float
(** Natural log of the Gamma function for positive arguments (Lanczos). *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma function P(a, x) for [a > 0],
    [x >= 0]. *)

val gamma_q : a:float -> x:float -> float
(** Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x). *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, accurate in the far tail (no
    cancellation). *)

val erf_inv : float -> float
(** Inverse error function on (-1, 1).  [erf (erf_inv p) = p] to near
    machine precision.  @raise Invalid_argument outside (-1, 1). *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} on (0, 1).
    @raise Invalid_argument outside (0, 1). *)
