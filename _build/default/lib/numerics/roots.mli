(** Scalar root finding, used e.g. to match the Pareto scale parameter
    theta to an empirical mean epoch duration (paper eq. 25) and to invert
    distribution functions without closed-form quantiles. *)

val bisection :
  f:(float -> float) -> lo:float -> hi:float -> ?eps:float -> unit -> float
(** Root of [f] on a bracketing interval ([f lo] and [f hi] of opposite
    signs).  @raise Invalid_argument if the interval does not bracket. *)

val newton_bracketed :
  f:(float -> float) ->
  df:(float -> float) ->
  lo:float ->
  hi:float ->
  ?eps:float ->
  unit ->
  float
(** Newton iteration safeguarded by a bisection bracket: steps that leave
    the bracket fall back to bisection.  Same bracketing requirement as
    {!bisection}. *)
