(** Linear convolution of real-valued sequences.

    The linear convolution of [a] (length [na]) and [b] (length [nb]) is
    the sequence of length [na + nb - 1] with
    [c.(k) = sum_j a.(j) * b.(k - j)].  This is the kernel of the paper's
    queue-occupancy recursion (eq. 19): each solver iteration convolves the
    occupancy vector with the discretized increment distribution. *)

val direct : float array -> float array -> float array
(** O(na * nb) schoolbook convolution.  Exact up to rounding; used as the
    oracle for {!fft} and preferred for very short inputs. *)

val fft : float array -> float array -> float array
(** O(n log n) convolution via zero-padded FFT (as suggested in the paper,
    Section II, citing Oppenheim & Schafer). *)

val auto : float array -> float array -> float array
(** Picks {!direct} or {!fft} based on input sizes. *)

type plan
(** A reusable FFT plan for repeated convolutions against a fixed kernel,
    as in the solver where the increment distribution [w] is fixed across
    iterations while the occupancy vector changes. *)

val make_plan : kernel:float array -> max_signal:int -> plan
(** [make_plan ~kernel ~max_signal] precomputes the padded transform of
    [kernel] for convolving with signals of length [<= max_signal]. *)

val convolve_plan : plan -> float array -> float array
(** [convolve_plan plan a] is [fft kernel a] computed with the cached
    kernel transform.  @raise Invalid_argument if [a] is longer than the
    plan's [max_signal]. *)
