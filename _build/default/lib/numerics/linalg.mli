(** Small dense linear algebra: LU decomposition with partial pivoting.

    Sized for the spectral fluid-queue solver (systems of a few dozen
    unknowns), not for large-scale numerics. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by LU with partial pivoting.  [a] is
    row-major and is not modified.  @raise Invalid_argument on
    non-square or mismatched inputs; @raise Failure on a (numerically)
    singular matrix. *)

val determinant : float array array -> float
(** Determinant via LU.  Returns 0 for (numerically) singular input. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val residual_norm : float array array -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(a x - b)_i|] — a cheap solution
    check. *)
