lib/numerics/roots.mli:
