lib/numerics/wavelet.ml: Array List Summation
