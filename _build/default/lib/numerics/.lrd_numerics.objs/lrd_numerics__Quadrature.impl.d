lib/numerics/quadrature.ml: Float
