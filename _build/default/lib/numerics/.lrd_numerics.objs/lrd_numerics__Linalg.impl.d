lib/numerics/linalg.ml: Array Float Summation
