lib/numerics/wavelet.mli:
