lib/numerics/fft.ml: Array Float Hashtbl
