lib/numerics/special.mli:
