lib/numerics/summation.ml: Array Float
