lib/numerics/fft.mli:
