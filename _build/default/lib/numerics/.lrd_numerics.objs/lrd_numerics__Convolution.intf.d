lib/numerics/convolution.mli:
