lib/numerics/linalg.mli:
