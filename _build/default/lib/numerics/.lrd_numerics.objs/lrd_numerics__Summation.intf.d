lib/numerics/summation.mli:
