lib/numerics/convolution.ml: Array Fft
