lib/numerics/quadrature.mli:
