type class_stats = {
  arrived : float;
  lost : float;
  loss_rate : float;
  max_occupancy : float;
}

(* Instantaneous GPS service split for arrival rates (r1, r2) and queue
   states (q1, q2): a backlogged class is guaranteed its share, an
   unbacklogged class releases its surplus (work conservation). *)
let service_split ~c ~phi ~q1 ~q2 ~r1 ~r2 =
  let share1 = phi *. c and share2 = (1.0 -. phi) *. c in
  match (q1 > 0.0, q2 > 0.0) with
  | true, true -> (share1, share2)
  | true, false -> if r2 <= share2 then (c -. r2, r2) else (share1, share2)
  | false, true -> if r1 <= share1 then (r1, c -. r1) else (share1, share2)
  | false, false ->
      if r1 +. r2 <= c then (r1, r2)
      else if r1 <= share1 then (r1, c -. r1)
      else if r2 <= share2 then (c -. r2, r2)
      else (share1, share2)

let run ~service_rate ~weight ~buffers:(b1, b2) ~first ~second =
  if not (service_rate > 0.0) then
    invalid_arg "Gps.run: service rate must be positive";
  if not (weight > 0.0 && weight < 1.0) then
    invalid_arg "Gps.run: weight must lie in (0, 1)";
  if not (b1 >= 0.0 && b2 >= 0.0) then
    invalid_arg "Gps.run: buffers must be nonnegative";
  if first.Lrd_trace.Trace.slot <> second.Lrd_trace.Trace.slot then
    invalid_arg "Gps.run: traces must share the slot length";
  let n = Lrd_trace.Trace.length first in
  if Lrd_trace.Trace.length second <> n then
    invalid_arg "Gps.run: traces must have equal lengths";
  let slot = first.Lrd_trace.Trace.slot in
  let c = service_rate and phi = weight in
  let q1 = ref 0.0 and q2 = ref 0.0 in
  let lost1 = Lrd_numerics.Summation.create () in
  let lost2 = Lrd_numerics.Summation.create () in
  let arrived1 = Lrd_numerics.Summation.create () in
  let arrived2 = Lrd_numerics.Summation.create () in
  let max1 = ref 0.0 and max2 = ref 0.0 in
  for i = 0 to n - 1 do
    let r1 = first.Lrd_trace.Trace.rates.(i) in
    let r2 = second.Lrd_trace.Trace.rates.(i) in
    Lrd_numerics.Summation.add arrived1 (r1 *. slot);
    Lrd_numerics.Summation.add arrived2 (r2 *. slot);
    let remaining = ref slot in
    let guard = ref 0 in
    while !remaining > 1e-15 && !guard < 64 do
      incr guard;
      let s1, s2 = service_split ~c ~phi ~q1:!q1 ~q2:!q2 ~r1 ~r2 in
      let d1 = r1 -. s1 and d2 = r2 -. s2 in
      (* Time to the next status change: a backlogged class emptying or
         a filling class reaching its buffer. *)
      let horizon = ref !remaining in
      let consider q d b =
        if d < 0.0 && q > 0.0 then horizon := Float.min !horizon (q /. -.d)
        else if d > 0.0 && q < b then
          horizon := Float.min !horizon ((b -. q) /. d)
      in
      consider !q1 d1 b1;
      consider !q2 d2 b2;
      (* Safety valve: if an adversarial configuration produced event
         ping-pong, finish the slot in one step (clamping in [advance]
         keeps the accounting conservative). *)
      let dt =
        if !guard >= 63 then !remaining else Float.max !horizon 1e-15
      in
      let advance q d b lost =
        let next = q +. (d *. dt) in
        if next > b then begin
          Lrd_numerics.Summation.add lost (next -. b);
          b
        end
        else Float.max 0.0 next
      in
      q1 := advance !q1 d1 b1 lost1;
      q2 := advance !q2 d2 b2 lost2;
      if !q1 > !max1 then max1 := !q1;
      if !q2 > !max2 then max2 := !q2;
      remaining := !remaining -. dt
    done
  done;
  let stats arrived lost max_occupancy =
    let arrived = Lrd_numerics.Summation.total arrived in
    let lost = Lrd_numerics.Summation.total lost in
    {
      arrived;
      lost;
      loss_rate = (if arrived > 0.0 then lost /. arrived else 0.0);
      max_occupancy;
    }
  in
  (stats arrived1 lost1 !max1, stats arrived2 lost2 !max2)
