(** Tandem (multi-hop) fluid networks: a chain of finite-buffer
    constant-rate servers in which each stage is fed by the exact
    departure process of the previous one.

    Per input epoch the departure of a stage is one or two constant-rate
    segments ({!Queue_sim.offer_with_output}), so the whole tandem is
    simulated exactly, with no time discretization, in a single lazy
    pass.  This extends the paper's single-queue setting to the
    multi-hop question the correlation-horizon logic raises: each hop's
    buffer sets its own horizon, and upstream queues smooth the traffic
    seen downstream. *)

type stage = {
  service_rate : float;
  buffer : float;
}

val run_epochs :
  stages:stage list ->
  (float * float) Seq.t ->
  Queue_sim.stats list
(** Feeds the [(rate, duration)] epochs through the stages in order and
    returns per-stage statistics.  @raise Invalid_argument if no stage
    is given or a stage has a nonpositive service rate / negative
    buffer. *)

val run_trace :
  stages:stage list -> Lrd_trace.Trace.t -> Queue_sim.stats list
(** Each trace slot is one input epoch. *)

val end_to_end_loss : Queue_sim.stats list -> float
(** Total work lost anywhere in the tandem divided by the work offered
    to the first stage. *)
