type low_stats = {
  arrived : float;
  lost : float;
  loss_rate : float;
  max_occupancy : float;
}

let run ~service_rate ~high_buffer ~low_buffer ~high ~low =
  if high.Lrd_trace.Trace.slot <> low.Lrd_trace.Trace.slot then
    invalid_arg "Priority.run: traces must share the slot length";
  let n = Lrd_trace.Trace.length high in
  if Lrd_trace.Trace.length low <> n then
    invalid_arg "Priority.run: traces must have equal lengths";
  let slot = high.Lrd_trace.Trace.slot in
  let high_state =
    Queue_sim.make ~service_rate ~buffer:high_buffer ()
  in
  let low_state = Queue_sim.make ~service_rate ~buffer:low_buffer () in
  let arrived = Lrd_numerics.Summation.create () in
  let lost = Lrd_numerics.Summation.create () in
  let max_occupancy = ref 0.0 in
  for i = 0 to n - 1 do
    let high_rate = high.Lrd_trace.Trace.rates.(i) in
    let low_rate = low.Lrd_trace.Trace.rates.(i) in
    let _, segments =
      Queue_sim.offer_with_output high_state ~rate:high_rate ~duration:slot
    in
    Lrd_numerics.Summation.add arrived (low_rate *. slot);
    List.iter
      (fun (departure_rate, duration) ->
        (* Virtual arrival trick: slope equals
           low_rate - (c - departure_rate). *)
        let lost_now =
          Queue_sim.offer low_state
            ~rate:(low_rate +. departure_rate)
            ~duration
        in
        Lrd_numerics.Summation.add lost lost_now;
        let q = Queue_sim.occupancy low_state in
        if q > !max_occupancy then max_occupancy := q)
      segments
  done;
  let arrived = Lrd_numerics.Summation.total arrived in
  let lost = Lrd_numerics.Summation.total lost in
  ( Queue_sim.stats high_state,
    {
      arrived;
      lost;
      loss_rate = (if arrived > 0.0 then lost /. arrived else 0.0);
      max_occupancy = !max_occupancy;
    } )
