type stage = { service_rate : float; buffer : float }

let run_epochs ~stages epochs =
  if stages = [] then invalid_arg "Tandem.run_epochs: no stages";
  let states =
    List.map
      (fun s -> Queue_sim.make ~service_rate:s.service_rate ~buffer:s.buffer ())
      stages
  in
  (* Lazily thread the departure process of each stage into the next;
     consuming the last stage's sequence drives the whole pipeline in
     one pass. *)
  let rec pipeline states epochs =
    match states with
    | [] -> Seq.iter ignore epochs
    | state :: rest ->
        let departures =
          Seq.concat_map
            (fun (rate, duration) ->
              let _, segments =
                Queue_sim.offer_with_output state ~rate ~duration
              in
              List.to_seq segments)
            epochs
        in
        pipeline rest departures
  in
  pipeline states epochs;
  List.map Queue_sim.stats states

let run_trace ~stages trace =
  let slot = trace.Lrd_trace.Trace.slot in
  run_epochs ~stages
    (Array.to_seq trace.Lrd_trace.Trace.rates |> Seq.map (fun r -> (r, slot)))

let end_to_end_loss stats =
  match stats with
  | [] -> 0.0
  | first :: _ ->
      let total_lost =
        List.fold_left
          (fun acc s -> acc +. s.Queue_sim.lost)
          0.0 stats
      in
      if first.Queue_sim.arrived > 0.0 then
        total_lost /. first.Queue_sim.arrived
      else 0.0
