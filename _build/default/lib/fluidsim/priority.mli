(** Strict-priority two-class fluid multiplexer.

    The high class is served work-conserving at the full link rate; the
    low class receives the instantaneous residual capacity.  Each class
    has its own finite buffer.  The evolution is exact: within a slot
    the high queue's departure process is one or two constant-rate
    segments ({!Queue_sim.offer_with_output}), and on each segment the
    low queue's occupancy slope is
    [low rate - (c - high departure rate)] — implemented by feeding the
    low queue the virtual arrival [low rate + high departure rate]
    against the full service rate, which reproduces both the occupancy
    path and the lost low fluid exactly.

    This is the service-differentiation side of the paper's
    multiplexing discussion: a bursty LRD class can be isolated (high
    priority, small loss) at the expense of the class absorbing the
    residual capacity. *)

type low_stats = {
  arrived : float;  (** Low-class work offered. *)
  lost : float;  (** Low-class work lost. *)
  loss_rate : float;
  max_occupancy : float;
}

val run :
  service_rate:float ->
  high_buffer:float ->
  low_buffer:float ->
  high:Lrd_trace.Trace.t ->
  low:Lrd_trace.Trace.t ->
  Queue_sim.stats * low_stats
(** Feeds both traces (which must share slot length and sample count)
    through the multiplexer.  @raise Invalid_argument on mismatched
    traces or invalid parameters. *)
