open Lrd_numerics

type stats = {
  arrived : float;
  lost : float;
  served : float;
  final_occupancy : float;
  max_occupancy : float;
  busy_time : float;
  duration : float;
}

let loss_rate s = if s.arrived > 0.0 then s.lost /. s.arrived else 0.0
let utilization s ~service_rate = s.served /. (service_rate *. s.duration)

type state = {
  service_rate : float;
  buffer : float;
  initial : float;
  mutable q : float;
  mutable max_q : float;
  arrived_acc : Summation.accumulator;
  lost_acc : Summation.accumulator;
  busy_acc : Summation.accumulator;
  time_acc : Summation.accumulator;
}

let make ~service_rate ~buffer ?(initial = 0.0) () =
  if not (service_rate > 0.0) then
    invalid_arg "Queue_sim.make: service rate must be positive";
  if not (buffer >= 0.0) then
    invalid_arg "Queue_sim.make: buffer must be nonnegative";
  if not (initial >= 0.0 && initial <= buffer) then
    invalid_arg "Queue_sim.make: initial occupancy outside [0, buffer]";
  {
    service_rate;
    buffer;
    initial;
    q = initial;
    max_q = initial;
    arrived_acc = Summation.create ();
    lost_acc = Summation.create ();
    busy_acc = Summation.create ();
    time_acc = Summation.create ();
  }

let occupancy s = s.q

(* One epoch in closed form.  Slope = r - c; occupancy is clamped to
   [0, B]; once at B with positive slope, all excess inflow is lost. *)
let offer s ~rate ~duration =
  if not (rate >= 0.0) then invalid_arg "Queue_sim.offer: negative rate";
  if not (duration >= 0.0) then
    invalid_arg "Queue_sim.offer: negative duration";
  let c = s.service_rate and b = s.buffer in
  let slope = rate -. c in
  Summation.add s.arrived_acc (rate *. duration);
  Summation.add s.time_acc duration;
  let lost =
    if slope > 0.0 then begin
      let head = (b -. s.q) /. slope in
      if head >= duration then begin
        (* Buffer never fills during this epoch. *)
        s.q <- s.q +. (slope *. duration);
        Summation.add s.busy_acc duration;
        0.0
      end
      else begin
        (* Fills after [head], then overflows for the rest. *)
        let overflow_time = duration -. head in
        s.q <- b;
        Summation.add s.busy_acc duration;
        slope *. overflow_time
      end
    end
    else begin
      (* Draining (or constant).  Fully busy until the buffer empties;
         afterwards the arrival stream alone keeps the server busy a
         fraction [rate / c] of the residual time. *)
      let drain_time = if slope < 0.0 then s.q /. -.slope else infinity in
      let full = Float.min duration drain_time in
      let residual = duration -. full in
      Summation.add s.busy_acc (full +. (residual *. rate /. c));
      s.q <- Float.max 0.0 (s.q +. (slope *. duration));
      0.0
    end
  in
  if s.q > s.max_q then s.max_q <- s.q;
  Summation.add s.lost_acc lost;
  lost

let snapshot s ~initial =
  let arrived = Summation.total s.arrived_acc in
  let lost = Summation.total s.lost_acc in
  {
    arrived;
    lost;
    served = arrived -. lost -. (s.q -. initial);
    final_occupancy = s.q;
    max_occupancy = s.max_q;
    busy_time = Summation.total s.busy_acc;
    duration = Summation.total s.time_acc;
  }

let stats s = snapshot s ~initial:s.initial

(* Departure segments of one epoch, computed from the pre-offer
   occupancy: the server emits at [c] while the buffer is nonempty (or
   the arrival alone saturates it), and at the arrival rate once the
   buffer has drained. *)
let output_segments s ~rate ~duration =
  let c = s.service_rate in
  if duration = 0.0 then []
  else if rate >= c then [ (c, duration) ]
  else if s.q <= 0.0 then [ (rate, duration) ]
  else begin
    let drain_time = s.q /. (c -. rate) in
    if drain_time >= duration then [ (c, duration) ]
    else [ (c, drain_time); (rate, duration -. drain_time) ]
  end

let offer_with_output s ~rate ~duration =
  let segments = output_segments s ~rate ~duration in
  let lost = offer s ~rate ~duration in
  (lost, segments)

let run_epochs s epochs =
  let initial = s.q in
  Seq.iter (fun (rate, duration) -> ignore (offer s ~rate ~duration)) epochs;
  snapshot s ~initial

let run_trace s trace =
  let slot = trace.Lrd_trace.Trace.slot in
  run_epochs s
    (Array.to_seq trace.Lrd_trace.Trace.rates
    |> Seq.map (fun r -> (r, slot)))

let epoch_time_above ~service_rate ~initial ~rate ~duration ~level =
  if not (duration >= 0.0) then
    invalid_arg "Queue_sim.epoch_time_above: negative duration";
  let slope = rate -. service_rate in
  if slope > 0.0 then
    (* Rising: above the level from the crossing instant onward. *)
    duration -. Float.max 0.0 (Float.min duration ((level -. initial) /. slope))
  else if slope < 0.0 then
    (* Falling (clamped at 0): above until the crossing instant. *)
    Float.max 0.0 (Float.min duration ((initial -. level) /. -.slope))
  else if initial > level then duration
  else 0.0

let occupancy_per_slot s trace =
  let initial = s.q in
  let slot = trace.Lrd_trace.Trace.slot in
  let occupancies =
    Array.map
      (fun rate ->
        ignore (offer s ~rate ~duration:slot);
        s.q)
      trace.Lrd_trace.Trace.rates
  in
  (occupancies, snapshot s ~initial)

let losses_per_slot s trace =
  let initial = s.q in
  let slot = trace.Lrd_trace.Trace.slot in
  let losses =
    Array.map
      (fun rate -> offer s ~rate ~duration:slot)
      trace.Lrd_trace.Trace.rates
  in
  (losses, snapshot s ~initial)
