(** Two-class Generalized Processor Sharing (weighted fair) fluid
    multiplexer.

    While both classes are backlogged, class [i] is served at
    [phi_i c]; a class that needs less than its guaranteed share
    releases the surplus to the other (work conservation).  Each class
    has its own finite buffer.  The evolution inside a slot is
    piecewise linear with at most a few breakpoints (a class emptying
    or filling changes the service split); the simulation advances
    breakpoint to breakpoint, so it is exact.

    GPS is the standard idealization of fair queueing; with
    [phi_high -> 1] it degenerates to {!Priority}. *)

type class_stats = {
  arrived : float;
  lost : float;
  loss_rate : float;
  max_occupancy : float;
}

val run :
  service_rate:float ->
  weight:float ->
  buffers:float * float ->
  first:Lrd_trace.Trace.t ->
  second:Lrd_trace.Trace.t ->
  class_stats * class_stats
(** [weight] is the first class's guaranteed share in (0, 1) (the second
    gets [1 - weight]); [buffers] are the per-class buffer sizes.
    Traces must share slot and length.  @raise Invalid_argument
    otherwise. *)
