lib/fluidsim/queue_sim.ml: Array Float Lrd_numerics Lrd_trace Seq Summation
