lib/fluidsim/priority.mli: Lrd_trace Queue_sim
