lib/fluidsim/priority.ml: Array List Lrd_numerics Lrd_trace Queue_sim
