lib/fluidsim/tandem.ml: Array List Lrd_trace Queue_sim Seq
