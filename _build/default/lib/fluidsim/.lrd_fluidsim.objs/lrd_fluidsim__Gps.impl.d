lib/fluidsim/gps.ml: Array Float Lrd_numerics Lrd_trace
