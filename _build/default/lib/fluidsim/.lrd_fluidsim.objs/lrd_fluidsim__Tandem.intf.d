lib/fluidsim/tandem.mli: Lrd_trace Queue_sim Seq
