lib/fluidsim/queue_sim.mli: Lrd_trace Seq
