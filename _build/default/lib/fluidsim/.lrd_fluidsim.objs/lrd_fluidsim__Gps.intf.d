lib/fluidsim/gps.mli: Lrd_trace
