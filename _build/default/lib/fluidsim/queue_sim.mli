(** Exact simulation of a finite-buffer fluid queue with constant service
    rate fed by a piecewise-constant-rate source.

    Within an epoch of constant arrival rate [r] and length [d], the
    occupancy evolves linearly at slope [r - c], clamped to [0, B]; all
    work arriving while the buffer sits at [B] with [r > c] is lost.  The
    evolution is integrated in closed form per epoch, so the simulation is
    exact (no time discretization).  This is the engine behind the
    paper's shuffled-trace experiments (Figs. 7, 8, 14) and the Monte
    Carlo cross-check of the analytic solver. *)

type stats = {
  arrived : float;  (** Total work offered. *)
  lost : float;  (** Work lost to overflow. *)
  served : float;  (** Work that left the server. *)
  final_occupancy : float;
  max_occupancy : float;
  busy_time : float;  (** Time with a nonempty buffer or active arrival. *)
  duration : float;  (** Total simulated time. *)
}

val loss_rate : stats -> float
(** [lost / arrived]; 0 when nothing arrived. *)

val utilization : stats -> service_rate:float -> float
(** [served / (c * duration)]: the achieved server utilization. *)

type state
(** Resumable simulator state. *)

val make : service_rate:float -> buffer:float -> ?initial:float -> unit -> state
(** @raise Invalid_argument unless [service_rate > 0], [buffer >= 0], and
    the initial occupancy (default 0) lies in [0, buffer]. *)

val occupancy : state -> float

val stats : state -> stats
(** Statistics accumulated so far (relative to the initial occupancy the
    state was created with). *)

val offer : state -> rate:float -> duration:float -> float
(** Feeds one constant-rate epoch; returns the work lost during it.
    @raise Invalid_argument on negative rate or duration. *)

val offer_with_output : state -> rate:float -> duration:float ->
  float * (float * float) list
(** Like {!offer}, additionally returning the {e departure} process of
    the epoch as one or two constant-rate [(rate, duration)] segments:
    the server emits at the full service rate while the buffer is
    nonempty (or the arrival alone saturates it) and at the arrival rate
    once the buffer has drained.  Chaining these segments into another
    queue builds exact tandem (multi-hop) fluid networks; see
    {!Tandem}. *)

val run_epochs : state -> (float * float) Seq.t -> stats
(** Consumes a sequence of [(rate, duration)] epochs. *)

val run_trace : state -> Lrd_trace.Trace.t -> stats
(** Treats each trace slot as one epoch of the slot duration. *)

val losses_per_slot : state -> Lrd_trace.Trace.t -> float array * stats
(** Like {!run_trace} but also returns the work lost in each slot — the
    loss process consumed by the ARQ-vs-FEC example. *)

val occupancy_per_slot : state -> Lrd_trace.Trace.t -> float array * stats
(** Like {!run_trace} but also returns the occupancy at the end of each
    slot — the empirical occupancy distribution used to validate the
    infinite-buffer tail asymptotics. *)

val epoch_time_above :
  service_rate:float ->
  initial:float ->
  rate:float ->
  duration:float ->
  level:float ->
  float
(** Time within one constant-rate epoch during which the (unbounded)
    occupancy exceeds [level], starting from [initial]: the occupancy is
    piecewise linear with slope [rate - service_rate], clamped at 0.
    This is the exact per-epoch contribution to the {e time}-stationary
    ccdf [Pr{Q > level}] — the quantity analytic results like
    Anick–Mitra–Sondhi describe (sampling at epoch boundaries instead
    biases toward short-holding states).
    @raise Invalid_argument on negative duration or a zero-slope epoch
    with [rate = service_rate] is handled exactly ([initial] persists). *)
