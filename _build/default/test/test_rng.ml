open Lrd_rng

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let sample_stats n f =
  let rng = Rng.create ~seed:2024L in
  let xs = Array.init n (fun _ -> f rng) in
  (Lrd_numerics.Array_ops.mean xs, Lrd_numerics.Array_ops.variance xs, xs)

(* ------------------------------------------------------------------ *)
(* Generator basics *)

let test_deterministic_from_seed () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:1L in
  for i = 0 to 99 do
    if Rng.uint64 a <> Rng.uint64 b then
      Alcotest.failf "streams diverged at %d" i
  done

let test_different_seeds_differ () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 0 to 99 do
    if Rng.uint64 a = Rng.uint64 b then incr same
  done;
  Alcotest.(check int) "collisions" 0 !same

let test_copy_snapshots_state () =
  let a = Rng.create ~seed:3L in
  ignore (Rng.uint64 a);
  let b = Rng.copy a in
  Alcotest.(check bool) "same continuation" true (Rng.uint64 a = Rng.uint64 b)

let test_split_streams_independent () =
  let a = Rng.create ~seed:4L in
  let b = Rng.split a in
  let c = Rng.split a in
  Alcotest.(check bool) "children differ" true (Rng.uint64 b <> Rng.uint64 c)

let test_float_in_unit_interval () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.failf "out of range: %g" x
  done

let test_float_pos_never_zero () =
  let rng = Rng.create ~seed:6L in
  for _ = 1 to 10_000 do
    if Rng.float_pos rng <= 0.0 then Alcotest.fail "nonpositive"
  done

let test_float_mean_variance () =
  let mean, var, _ = sample_stats 200_000 Rng.float in
  check_close ~eps:5e-3 "mean" 0.5 mean;
  check_close ~eps:2e-2 "variance" (1.0 /. 12.0) var

let test_int_unbiased_small_bound () =
  let rng = Rng.create ~seed:7L in
  let counts = Array.make 7 0 in
  let n = 140_000 in
  for _ = 1 to n do
    let i = Rng.int rng ~bound:7 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int n /. 7.0 in
      if Float.abs (float_of_int c -. expected) > 5.0 *. sqrt expected then
        Alcotest.failf "bucket %d skewed: %d vs %g" i c expected)
    counts

let test_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:8L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng ~bound:0))

(* ------------------------------------------------------------------ *)
(* Samplers *)

let test_exponential_moments () =
  let mean, var, _ = sample_stats 200_000 (Sampler.exponential ~rate:2.0) in
  check_close ~eps:1e-2 "mean" 0.5 mean;
  check_close ~eps:3e-2 "variance" 0.25 var

let test_pareto_ccdf_matches () =
  let theta = 2.0 and alpha = 1.5 in
  let _, _, xs = sample_stats 200_000 (Sampler.pareto ~theta ~alpha) in
  List.iter
    (fun t ->
      let expected = ((t +. theta) /. theta) ** -.alpha in
      let count =
        Array.fold_left (fun acc x -> if x > t then acc + 1 else acc) 0 xs
      in
      let empirical = float_of_int count /. float_of_int (Array.length xs) in
      check_close ~eps:0.05 (Printf.sprintf "ccdf at %g" t) expected empirical)
    [ 0.5; 2.0; 8.0; 20.0 ]

let test_pareto_mean () =
  (* E[T] = theta / (alpha - 1) for the shifted Pareto. *)
  let mean, _, _ =
    sample_stats 400_000 (Sampler.pareto ~theta:1.0 ~alpha:2.5)
  in
  check_close ~eps:2e-2 "mean" (1.0 /. 1.5) mean

let test_truncated_pareto_capped () =
  let rng = Rng.create ~seed:9L in
  let cutoff = 3.0 in
  let atom = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Sampler.truncated_pareto rng ~theta:1.0 ~alpha:1.2 ~cutoff in
    if x > cutoff then Alcotest.fail "exceeded cutoff";
    if x = cutoff then incr atom
  done;
  (* Atom mass: ((cutoff+theta)/theta)^-alpha = 4^-1.2. *)
  check_close ~eps:0.05 "atom mass"
    (4.0 ** -1.2)
    (float_of_int !atom /. float_of_int n)

let test_normal_moments () =
  let mean, var, _ = sample_stats 200_000 (Sampler.normal ~mean:3.0 ~std:2.0) in
  check_close ~eps:5e-3 "mean" 3.0 mean;
  check_close ~eps:2e-2 "variance" 4.0 var

let test_normal_tail_fraction () =
  let _, _, xs = sample_stats 200_000 (Sampler.normal ~mean:0.0 ~std:1.0) in
  let beyond2 =
    Array.fold_left
      (fun acc x -> if Float.abs x > 2.0 then acc + 1 else acc)
      0 xs
  in
  check_close ~eps:0.05 "two-sigma" 0.0455
    (float_of_int beyond2 /. float_of_int (Array.length xs))

let test_gamma_moments () =
  List.iter
    (fun (shape, scale) ->
      let mean, var, _ = sample_stats 200_000 (Sampler.gamma ~shape ~scale) in
      check_close ~eps:2e-2 "mean" (shape *. scale) mean;
      check_close ~eps:5e-2 "variance" (shape *. scale *. scale) var)
    [ (0.5, 1.0); (2.0, 0.5); (9.0, 3.0) ]

let test_lognormal_moments () =
  let mu = 0.2 and sigma = 0.4 in
  let mean, _, _ = sample_stats 200_000 (Sampler.lognormal ~mu ~sigma) in
  check_close ~eps:1e-2 "mean" (exp (mu +. (sigma *. sigma /. 2.0))) mean

let test_alias_method_distribution () =
  let weights = [| 1.0; 0.0; 3.0; 6.0 |] in
  let table = Sampler.discrete_of_weights weights in
  let rng = Rng.create ~seed:10L in
  let counts = Array.make 4 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Sampler.discrete_draw rng table in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  check_close ~eps:0.02 "w0" 0.1 (float_of_int counts.(0) /. float_of_int n);
  check_close ~eps:0.02 "w2" 0.3 (float_of_int counts.(2) /. float_of_int n);
  check_close ~eps:0.02 "w3" 0.6 (float_of_int counts.(3) /. float_of_int n)

let test_alias_rejects_bad_weights () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Sampler.discrete_of_weights: empty weights") (fun () ->
      ignore (Sampler.discrete_of_weights [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Sampler.discrete_of_weights: negative or NaN weight")
    (fun () -> ignore (Sampler.discrete_of_weights [| 1.0; -1.0 |]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Sampler.discrete_of_weights: weights must sum to > 0")
    (fun () -> ignore (Sampler.discrete_of_weights [| 0.0; 0.0 |]))

let test_sampler_rejects_bad_params () =
  let rng = Rng.create ~seed:11L in
  Alcotest.check_raises "exp rate"
    (Invalid_argument "Sampler.exponential: rate must be positive") (fun () ->
      ignore (Sampler.exponential rng ~rate:0.0));
  Alcotest.check_raises "pareto"
    (Invalid_argument "Sampler.pareto: parameters must be positive") (fun () ->
      ignore (Sampler.pareto rng ~theta:0.0 ~alpha:1.0));
  Alcotest.check_raises "gamma"
    (Invalid_argument "Sampler.gamma: parameters must be positive") (fun () ->
      ignore (Sampler.gamma rng ~shape:(-1.0) ~scale:1.0))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int stays in [0, bound)" ~count:200
    QCheck.(int_range 1 1000)
    (fun bound ->
      let rng = Rng.create ~seed:(Int64.of_int bound) in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.int rng ~bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let prop_truncated_pareto_bounded =
  QCheck.Test.make ~name:"truncated pareto never exceeds cutoff" ~count:100
    QCheck.(pair (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (theta, cutoff) ->
      let rng = Rng.create ~seed:99L in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Sampler.truncated_pareto rng ~theta ~alpha:1.5 ~cutoff in
        if x > cutoff || x < 0.0 then ok := false
      done;
      !ok)

let prop_gamma_positive =
  QCheck.Test.make ~name:"gamma samples are positive" ~count:100
    QCheck.(pair (float_range 0.05 20.0) (float_range 0.05 20.0))
    (fun (shape, scale) ->
      let rng = Rng.create ~seed:7L in
      let ok = ref true in
      for _ = 1 to 50 do
        if Sampler.gamma rng ~shape ~scale <= 0.0 then ok := false
      done;
      !ok)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rng"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic from seed" `Quick
            test_deterministic_from_seed;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "copy snapshots" `Quick test_copy_snapshots_state;
          Alcotest.test_case "split independence" `Quick
            test_split_streams_independent;
          Alcotest.test_case "float in [0,1)" `Quick
            test_float_in_unit_interval;
          Alcotest.test_case "float_pos positive" `Quick
            test_float_pos_never_zero;
          Alcotest.test_case "float moments" `Quick test_float_mean_variance;
          Alcotest.test_case "int unbiased" `Quick
            test_int_unbiased_small_bound;
          Alcotest.test_case "int rejects bad bound" `Quick
            test_int_rejects_bad_bound;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "exponential moments" `Quick
            test_exponential_moments;
          Alcotest.test_case "pareto ccdf" `Quick test_pareto_ccdf_matches;
          Alcotest.test_case "pareto mean" `Quick test_pareto_mean;
          Alcotest.test_case "truncated pareto atom" `Quick
            test_truncated_pareto_capped;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "normal tails" `Quick test_normal_tail_fraction;
          Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
          Alcotest.test_case "lognormal mean" `Quick test_lognormal_moments;
          Alcotest.test_case "alias method" `Quick
            test_alias_method_distribution;
          Alcotest.test_case "alias rejects bad weights" `Quick
            test_alias_rejects_bad_weights;
          Alcotest.test_case "samplers reject bad params" `Quick
            test_sampler_rejects_bad_params;
        ] );
      ( "properties",
        qcheck
          [
            prop_int_in_bounds;
            prop_truncated_pareto_bounded;
            prop_gamma_positive;
          ] );
    ]
