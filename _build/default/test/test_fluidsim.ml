open Lrd_fluidsim

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Single-epoch arithmetic *)

let test_fill_without_overflow () =
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:10.0 () in
  let lost = Queue_sim.offer s ~rate:3.0 ~duration:2.0 in
  check_close "no loss" 0.0 lost;
  check_close "occupancy" 4.0 (Queue_sim.occupancy s)

let test_fill_with_overflow () =
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:3.0 () in
  (* Slope 2, fills after 1.5 s, overflows 2 * 0.5 = 1. *)
  let lost = Queue_sim.offer s ~rate:3.0 ~duration:2.0 in
  check_close "loss" 1.0 lost;
  check_close "at capacity" 3.0 (Queue_sim.occupancy s)

let test_drain_to_empty () =
  let s = Queue_sim.make ~service_rate:2.0 ~buffer:10.0 ~initial:3.0 () in
  let lost = Queue_sim.offer s ~rate:1.0 ~duration:5.0 in
  check_close "no loss" 0.0 lost;
  check_close "empty" 0.0 (Queue_sim.occupancy s)

let test_drain_partial () =
  let s = Queue_sim.make ~service_rate:2.0 ~buffer:10.0 ~initial:5.0 () in
  ignore (Queue_sim.offer s ~rate:1.0 ~duration:2.0);
  check_close "partial" 3.0 (Queue_sim.occupancy s)

let test_rate_equal_service_rate () =
  let s = Queue_sim.make ~service_rate:2.0 ~buffer:5.0 ~initial:1.0 () in
  let lost = Queue_sim.offer s ~rate:2.0 ~duration:10.0 in
  check_close "no loss" 0.0 lost;
  check_close "occupancy unchanged" 1.0 (Queue_sim.occupancy s)

let test_zero_buffer () =
  (* With B = 0 every excess of the rate over c is lost immediately. *)
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.0 () in
  let lost = Queue_sim.offer s ~rate:4.0 ~duration:2.0 in
  check_close "all excess lost" 6.0 lost

let test_make_rejects_bad_input () =
  Alcotest.check_raises "service rate"
    (Invalid_argument "Queue_sim.make: service rate must be positive")
    (fun () -> ignore (Queue_sim.make ~service_rate:0.0 ~buffer:1.0 ()));
  Alcotest.check_raises "initial"
    (Invalid_argument "Queue_sim.make: initial occupancy outside [0, buffer]")
    (fun () ->
      ignore (Queue_sim.make ~service_rate:1.0 ~buffer:1.0 ~initial:2.0 ()))

(* ------------------------------------------------------------------ *)
(* Conservation and stats *)

let run_random_epochs ~buffer ~service_rate ~n =
  let rng = Lrd_rng.Rng.create ~seed:55L in
  let s = Queue_sim.make ~service_rate ~buffer () in
  let epochs =
    Seq.init n (fun _ ->
        (Lrd_rng.Rng.float rng *. 3.0, Lrd_rng.Rng.float rng *. 0.7))
  in
  Queue_sim.run_epochs s epochs

let test_work_conservation () =
  let stats = run_random_epochs ~buffer:2.0 ~service_rate:1.2 ~n:10_000 in
  (* arrived = served + lost + final occupancy (initial was 0). *)
  check_close ~eps:1e-9 "conservation" stats.Queue_sim.arrived
    (stats.Queue_sim.served +. stats.Queue_sim.lost
   +. stats.Queue_sim.final_occupancy)

let test_served_bounded_by_capacity () =
  let stats = run_random_epochs ~buffer:2.0 ~service_rate:1.2 ~n:10_000 in
  Alcotest.(check bool) "served <= c * T" true
    (stats.Queue_sim.served <= (1.2 *. stats.Queue_sim.duration) +. 1e-9);
  Alcotest.(check bool) "busy <= T" true
    (stats.Queue_sim.busy_time <= stats.Queue_sim.duration +. 1e-9)

let test_served_equals_busy_times_rate () =
  (* The server works at rate c exactly while busy. *)
  let stats = run_random_epochs ~buffer:1.0 ~service_rate:0.9 ~n:5_000 in
  check_close ~eps:1e-6 "served = c * busy"
    (0.9 *. stats.Queue_sim.busy_time)
    stats.Queue_sim.served

let test_max_occupancy_monotone_bound () =
  let stats = run_random_epochs ~buffer:1.5 ~service_rate:1.0 ~n:2_000 in
  Alcotest.(check bool) "max <= buffer" true
    (stats.Queue_sim.max_occupancy <= 1.5 +. 1e-12);
  Alcotest.(check bool) "final <= max" true
    (stats.Queue_sim.final_occupancy <= stats.Queue_sim.max_occupancy +. 1e-12)

let test_loss_rate_and_utilization () =
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:1.0 () in
  ignore (Queue_sim.offer s ~rate:2.0 ~duration:2.0);
  (* Fills after 1 s, loses 1; arrived 4, lost 1. *)
  let stats = Queue_sim.run_epochs s Seq.empty in
  check_close "loss rate" 0.25 (Queue_sim.loss_rate stats)

let test_on_off_deterministic_cycle () =
  (* Periodic on/off: rate 2 for 1 s, rate 0 for 1 s, c = 1, B = 0.4.
     Each ON: fills 0.4 in 0.4 s then overflows 0.6; each OFF drains.
     Steady-state loss = 0.6 / 2 = 0.3 per cycle. *)
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.4 () in
  let epochs =
    Seq.concat_map
      (fun _ -> List.to_seq [ (2.0, 1.0); (0.0, 1.0) ])
      (Seq.init 1000 (fun i -> i))
  in
  let stats = Queue_sim.run_epochs s epochs in
  check_close ~eps:1e-6 "periodic loss" 0.3 (Queue_sim.loss_rate stats)

(* ------------------------------------------------------------------ *)
(* Trace-driven runs *)

let test_run_trace_equals_run_epochs () =
  let rng = Lrd_rng.Rng.create ~seed:77L in
  let rates = Array.init 500 (fun _ -> Lrd_rng.Rng.float rng *. 2.0) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.25 in
  let a = Queue_sim.make ~service_rate:1.0 ~buffer:1.0 () in
  let sa = Queue_sim.run_trace a trace in
  let b = Queue_sim.make ~service_rate:1.0 ~buffer:1.0 () in
  let sb =
    Queue_sim.run_epochs b (Array.to_seq rates |> Seq.map (fun r -> (r, 0.25)))
  in
  check_close "same lost" sa.Queue_sim.lost sb.Queue_sim.lost;
  check_close "same arrived" sa.Queue_sim.arrived sb.Queue_sim.arrived

let test_losses_per_slot_totals () =
  let rng = Lrd_rng.Rng.create ~seed:88L in
  let rates = Array.init 300 (fun _ -> Lrd_rng.Rng.float rng *. 3.0) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.1 in
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.5 () in
  let losses, stats = Queue_sim.losses_per_slot s trace in
  Alcotest.(check int) "one entry per slot" 300 (Array.length losses);
  check_close ~eps:1e-9 "losses sum to total"
    stats.Queue_sim.lost
    (Lrd_numerics.Array_ops.sum losses)

let test_occupancy_per_slot () =
  let rng = Lrd_rng.Rng.create ~seed:101L in
  let rates = Array.init 500 (fun _ -> Lrd_rng.Rng.float rng *. 3.0) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.1 in
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.75 () in
  let occupancies, stats = Queue_sim.occupancy_per_slot s trace in
  Alcotest.(check int) "one per slot" 500 (Array.length occupancies);
  Array.iter
    (fun q ->
      if q < 0.0 || q > 0.75 +. 1e-12 then Alcotest.failf "out of range %g" q)
    occupancies;
  check_close "final matches" stats.Queue_sim.final_occupancy
    occupancies.(499);
  (* Same totals as a plain run. *)
  let s2 = Queue_sim.make ~service_rate:1.0 ~buffer:0.75 () in
  let reference = Queue_sim.run_trace s2 trace in
  check_close "same lost" reference.Queue_sim.lost stats.Queue_sim.lost

let test_loss_monotone_in_buffer () =
  let rng = Lrd_rng.Rng.create ~seed:99L in
  let rates = Array.init 20_000 (fun _ -> Lrd_rng.Rng.float rng *. 2.4) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.05 in
  let loss b =
    let s = Queue_sim.make ~service_rate:1.0 ~buffer:b () in
    Queue_sim.loss_rate (Queue_sim.run_trace s trace)
  in
  let prev = ref (loss 0.0) in
  List.iter
    (fun b ->
      let l = loss b in
      if l > !prev +. 1e-12 then Alcotest.failf "loss grew at B=%g" b;
      prev := l)
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* Departure process and tandems *)

let test_output_segments_cover_epoch () =
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:2.0 ~initial:0.5 () in
  let _, segments = Queue_sim.offer_with_output s ~rate:0.2 ~duration:3.0 in
  (* Drains 0.5 at slope 0.8 in 0.625 s, then passes through. *)
  (match segments with
  | [ (r1, d1); (r2, d2) ] ->
      check_close "busy rate" 1.0 r1;
      check_close "drain time" 0.625 d1;
      check_close "pass rate" 0.2 r2;
      check_close "remaining" 2.375 d2
  | _ -> Alcotest.failf "expected two segments, got %d" (List.length segments));
  (* Saturated epoch: single segment at the service rate. *)
  let _, saturated = Queue_sim.offer_with_output s ~rate:5.0 ~duration:1.0 in
  match saturated with
  | [ (r, d) ] ->
      check_close "rate c" 1.0 r;
      check_close "full epoch" 1.0 d
  | _ -> Alcotest.fail "expected one segment"

let test_output_work_equals_served () =
  (* Across many random epochs, total departed work must equal the
     stage's served work. *)
  let rng = Lrd_rng.Rng.create ~seed:202L in
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:1.5 () in
  let out = ref 0.0 in
  for _ = 1 to 5_000 do
    let rate = Lrd_rng.Rng.float rng *. 3.0 in
    let duration = Lrd_rng.Rng.float rng *. 0.8 in
    let _, segments = Queue_sim.offer_with_output s ~rate ~duration in
    List.iter (fun (r, d) -> out := !out +. (r *. d)) segments
  done;
  let stats = Queue_sim.stats s in
  check_close ~eps:1e-9 "output = served" stats.Queue_sim.served !out

let test_tandem_single_stage_matches_plain_queue () =
  let rng = Lrd_rng.Rng.create ~seed:203L in
  let rates = Array.init 2_000 (fun _ -> Lrd_rng.Rng.float rng *. 2.5) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.1 in
  let tandem_stats =
    Tandem.run_trace
      ~stages:[ { Tandem.service_rate = 1.0; buffer = 0.5 } ]
      trace
  in
  let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.5 () in
  let plain = Queue_sim.run_trace s trace in
  match tandem_stats with
  | [ only ] ->
      check_close "lost" plain.Queue_sim.lost only.Queue_sim.lost;
      check_close "arrived" plain.Queue_sim.arrived only.Queue_sim.arrived
  | _ -> Alcotest.fail "expected one stage"

let test_tandem_flow_conservation () =
  let rng = Lrd_rng.Rng.create ~seed:204L in
  let rates = Array.init 5_000 (fun _ -> Lrd_rng.Rng.float rng *. 3.0) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.05 in
  let stages =
    [
      { Tandem.service_rate = 1.2; buffer = 0.4 };
      { Tandem.service_rate = 1.0; buffer = 0.3 };
    ]
  in
  match Tandem.run_trace ~stages trace with
  | [ hop1; hop2 ] ->
      (* Hop 2's arrivals are exactly hop 1's departures. *)
      check_close ~eps:1e-9 "flow conservation" hop1.Queue_sim.served
        hop2.Queue_sim.arrived;
      (* Hop 2's arrival rate never exceeds hop 1's service rate. *)
      Alcotest.(check bool) "no loss without excess" true
        (hop2.Queue_sim.lost >= 0.0)
  | _ -> Alcotest.fail "expected two stages"

let test_tandem_second_hop_lossless_at_equal_rates () =
  (* Departures from hop 1 never exceed its service rate, so an equal
     second hop cannot overflow. *)
  let rng = Lrd_rng.Rng.create ~seed:205L in
  let rates = Array.init 3_000 (fun _ -> Lrd_rng.Rng.float rng *. 4.0) in
  let trace = Lrd_trace.Trace.create ~rates ~slot:0.05 in
  let stage = { Tandem.service_rate = 1.0; buffer = 0.2 } in
  match Tandem.run_trace ~stages:[ stage; stage ] trace with
  | [ _; hop2 ] -> check_close "hop 2 lossless" 0.0 hop2.Queue_sim.lost
  | _ -> Alcotest.fail "expected two stages"

let test_tandem_end_to_end_loss () =
  let stats =
    [
      {
        Queue_sim.arrived = 10.0;
        lost = 1.0;
        served = 9.0;
        final_occupancy = 0.0;
        max_occupancy = 1.0;
        busy_time = 1.0;
        duration = 1.0;
      };
      {
        Queue_sim.arrived = 9.0;
        lost = 0.5;
        served = 8.5;
        final_occupancy = 0.0;
        max_occupancy = 1.0;
        busy_time = 1.0;
        duration = 1.0;
      };
    ]
  in
  check_close "combined" 0.15 (Tandem.end_to_end_loss stats)

let test_tandem_rejects_empty () =
  Alcotest.check_raises "no stages"
    (Invalid_argument "Tandem.run_epochs: no stages") (fun () ->
      ignore (Tandem.run_epochs ~stages:[] Seq.empty))

(* ------------------------------------------------------------------ *)
(* Priority multiplexer *)

let random_trace ~seed ~n ~peak ~slot =
  let rng = Lrd_rng.Rng.create ~seed in
  Lrd_trace.Trace.create
    ~rates:(Array.init n (fun _ -> Lrd_rng.Rng.float rng *. peak))
    ~slot

let test_priority_high_class_isolated () =
  (* The high class's stats must equal a standalone queue's. *)
  let high = random_trace ~seed:71L ~n:4_000 ~peak:2.0 ~slot:0.1 in
  let low = random_trace ~seed:72L ~n:4_000 ~peak:1.0 ~slot:0.1 in
  let high_stats, _ =
    Priority.run ~service_rate:1.4 ~high_buffer:0.5 ~low_buffer:0.5 ~high ~low
  in
  let solo = Queue_sim.make ~service_rate:1.4 ~buffer:0.5 () in
  let solo_stats = Queue_sim.run_trace solo high in
  check_close "same loss" solo_stats.Queue_sim.lost high_stats.Queue_sim.lost;
  check_close "same arrived" solo_stats.Queue_sim.arrived
    high_stats.Queue_sim.arrived

let test_priority_zero_high_is_plain_queue () =
  let low = random_trace ~seed:73L ~n:4_000 ~peak:2.5 ~slot:0.1 in
  let high =
    Lrd_trace.Trace.create
      ~rates:(Array.make 4_000 0.0)
      ~slot:0.1
  in
  let _, low_stats =
    Priority.run ~service_rate:1.4 ~high_buffer:0.1 ~low_buffer:0.6 ~high ~low
  in
  let solo = Queue_sim.make ~service_rate:1.4 ~buffer:0.6 () in
  let solo_stats = Queue_sim.run_trace solo low in
  check_close ~eps:1e-9 "same loss" solo_stats.Queue_sim.lost
    low_stats.Priority.lost;
  check_close ~eps:1e-9 "same arrived" solo_stats.Queue_sim.arrived
    low_stats.Priority.arrived

let test_priority_low_class_deterministic () =
  (* One slot: high 1.0, low 1.0, c = 1.5, low buffer 0.2.
     High passes through at 1.0; residual 0.5 for low; low backlog grows
     at 0.5/s for 1 s -> exceeds 0.2 after 0.4 s; loss = 0.5 * 0.6. *)
  let high = Lrd_trace.Trace.create ~rates:[| 1.0 |] ~slot:1.0 in
  let low = Lrd_trace.Trace.create ~rates:[| 1.0 |] ~slot:1.0 in
  let _, low_stats =
    Priority.run ~service_rate:1.5 ~high_buffer:1.0 ~low_buffer:0.2 ~high ~low
  in
  check_close "arrived" 1.0 low_stats.Priority.arrived;
  check_close ~eps:1e-9 "lost" 0.3 low_stats.Priority.lost;
  check_close "max occupancy" 0.2 low_stats.Priority.max_occupancy

let test_priority_low_suffers_more_than_fifo_average () =
  (* At equal buffers, the low class's loss rate must be at least the
     high class's (it only gets leftovers). *)
  let high = random_trace ~seed:74L ~n:20_000 ~peak:2.0 ~slot:0.05 in
  let low = random_trace ~seed:75L ~n:20_000 ~peak:2.0 ~slot:0.05 in
  let high_stats, low_stats =
    Priority.run ~service_rate:2.2 ~high_buffer:0.3 ~low_buffer:0.3 ~high ~low
  in
  Alcotest.(check bool) "low >= high" true
    (low_stats.Priority.loss_rate
    >= Queue_sim.loss_rate high_stats -. 1e-12)

let test_priority_rejects_mismatched_traces () =
  let a = random_trace ~seed:76L ~n:10 ~peak:1.0 ~slot:0.1 in
  let b = random_trace ~seed:77L ~n:11 ~peak:1.0 ~slot:0.1 in
  Alcotest.check_raises "length"
    (Invalid_argument "Priority.run: traces must have equal lengths")
    (fun () ->
      ignore
        (Priority.run ~service_rate:1.0 ~high_buffer:1.0 ~low_buffer:1.0
           ~high:a ~low:b))

(* ------------------------------------------------------------------ *)
(* GPS multiplexer *)

let test_gps_underloaded_lossless () =
  let a = random_trace ~seed:81L ~n:2_000 ~peak:0.6 ~slot:0.1 in
  let b = random_trace ~seed:82L ~n:2_000 ~peak:0.6 ~slot:0.1 in
  let s1, s2 =
    Gps.run ~service_rate:1.5 ~weight:0.5 ~buffers:(0.1, 0.1) ~first:a
      ~second:b
  in
  check_close "no loss 1" 0.0 s1.Gps.lost;
  check_close "no loss 2" 0.0 s2.Gps.lost

let test_gps_deterministic_split () =
  (* Both classes flood at 2.0 with c = 2, phi = 0.75, tiny buffers:
     class 1 is served at 1.5, class 2 at 0.5; per unit time class 1
     loses 0.5 and class 2 loses 1.5 (after the buffers fill). *)
  let flood = Lrd_trace.Trace.create ~rates:(Array.make 10 2.0) ~slot:1.0 in
  let s1, s2 =
    Gps.run ~service_rate:2.0 ~weight:0.75 ~buffers:(0.001, 0.001)
      ~first:flood ~second:flood
  in
  check_close ~eps:1e-3 "class 1 loss" (0.5 /. 2.0) s1.Gps.loss_rate;
  check_close ~eps:1e-3 "class 2 loss" (1.5 /. 2.0) s2.Gps.loss_rate

let test_gps_work_conservation_vs_fifo () =
  (* Total carried work equals the FIFO queue's when buffers are pooled
     generously enough never to overflow in either system. *)
  let a = random_trace ~seed:83L ~n:5_000 ~peak:1.5 ~slot:0.1 in
  let b = random_trace ~seed:84L ~n:5_000 ~peak:1.5 ~slot:0.1 in
  let s1, s2 =
    Gps.run ~service_rate:1.6 ~weight:0.4 ~buffers:(50.0, 50.0) ~first:a
      ~second:b
  in
  check_close "nothing lost" 0.0 (s1.Gps.lost +. s2.Gps.lost);
  (* Arrived totals are faithful. *)
  check_close ~eps:1e-9 "arrived 1" (Lrd_trace.Trace.total_work a)
    s1.Gps.arrived

let test_gps_weight_monotonicity () =
  (* Raising a class's weight cannot raise its loss. *)
  let a = random_trace ~seed:85L ~n:10_000 ~peak:2.5 ~slot:0.05 in
  let b = random_trace ~seed:86L ~n:10_000 ~peak:2.5 ~slot:0.05 in
  let loss_of weight =
    let s1, _ =
      Gps.run ~service_rate:2.6 ~weight ~buffers:(0.2, 0.2) ~first:a
        ~second:b
    in
    s1.Gps.loss_rate
  in
  let l_low = loss_of 0.3 and l_high = loss_of 0.7 in
  Alcotest.(check bool) "monotone in weight" true (l_high <= l_low +. 1e-12)

let test_gps_approaches_priority_at_high_weight () =
  let a = random_trace ~seed:87L ~n:5_000 ~peak:2.0 ~slot:0.1 in
  let b = random_trace ~seed:88L ~n:5_000 ~peak:2.0 ~slot:0.1 in
  let s1, _ =
    Gps.run ~service_rate:2.1 ~weight:0.999 ~buffers:(0.3, 0.3) ~first:a
      ~second:b
  in
  let prio_high, _ =
    Priority.run ~service_rate:2.1 ~high_buffer:0.3 ~low_buffer:0.3 ~high:a
      ~low:b
  in
  check_close ~eps:0.02 "priority limit"
    (Queue_sim.loss_rate prio_high)
    s1.Gps.loss_rate

let test_gps_rejects_bad_weight () =
  let t = random_trace ~seed:89L ~n:10 ~peak:1.0 ~slot:0.1 in
  Alcotest.check_raises "weight 1"
    (Invalid_argument "Gps.run: weight must lie in (0, 1)") (fun () ->
      ignore
        (Gps.run ~service_rate:1.0 ~weight:1.0 ~buffers:(1.0, 1.0) ~first:t
           ~second:t))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_conservation =
  QCheck.Test.make ~name:"work conservation under random epochs" ~count:100
    (QCheck.make
       QCheck.Gen.(
         triple (float_range 0.1 5.0) (float_range 0.0 3.0)
           (list_size (int_range 1 200)
              (pair (float_range 0.0 4.0) (float_range 0.0 1.0)))))
    (fun (c, b, epochs) ->
      let s = Queue_sim.make ~service_rate:c ~buffer:b () in
      let stats = Queue_sim.run_epochs s (List.to_seq epochs) in
      Float.abs
        (stats.Queue_sim.arrived
        -. (stats.Queue_sim.served +. stats.Queue_sim.lost
          +. stats.Queue_sim.final_occupancy))
      <= 1e-9 *. (1.0 +. stats.Queue_sim.arrived))

let prop_occupancy_in_range =
  QCheck.Test.make ~name:"occupancy stays in [0, buffer]" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair (float_range 0.0 2.0)
           (list_size (int_range 1 100)
              (pair (float_range 0.0 5.0) (float_range 0.0 2.0)))))
    (fun (b, epochs) ->
      let s = Queue_sim.make ~service_rate:1.0 ~buffer:b () in
      List.for_all
        (fun (rate, duration) ->
          ignore (Queue_sim.offer s ~rate ~duration);
          let q = Queue_sim.occupancy s in
          q >= 0.0 && q <= b +. 1e-12)
        epochs)

let prop_gps_accounting =
  QCheck.Test.make ~name:"GPS class accounting is conservative" ~count:50
    (QCheck.make
       QCheck.Gen.(
         triple (float_range 0.05 0.95)
           (list_size (int_range 1 80) (float_range 0.0 3.0))
           (list_size (int_range 1 80) (float_range 0.0 3.0))))
    (fun (weight, r1, r2) ->
      let n = min (List.length r1) (List.length r2) in
      let trace l =
        Lrd_trace.Trace.create
          ~rates:(Array.sub (Array.of_list l) 0 n)
          ~slot:0.2
      in
      let a = trace r1 and b = trace r2 in
      let s1, s2 =
        Gps.run ~service_rate:1.5 ~weight ~buffers:(0.4, 0.4) ~first:a
          ~second:b
      in
      s1.Gps.lost >= -1e-12
      && s2.Gps.lost >= -1e-12
      && s1.Gps.lost <= s1.Gps.arrived +. 1e-9
      && s2.Gps.lost <= s2.Gps.arrived +. 1e-9
      && s1.Gps.max_occupancy <= 0.4 +. 1e-9
      && s2.Gps.max_occupancy <= 0.4 +. 1e-9)

let prop_tandem_losses_bounded =
  QCheck.Test.make ~name:"tandem per-stage losses are consistent" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 100) (float_range 0.0 4.0)))
    (fun rates ->
      let trace =
        Lrd_trace.Trace.create ~rates:(Array.of_list rates) ~slot:0.1
      in
      let stages =
        [
          { Tandem.service_rate = 1.5; buffer = 0.2 };
          { Tandem.service_rate = 1.2; buffer = 0.2 };
        ]
      in
      match Tandem.run_trace ~stages trace with
      | [ s1; s2 ] ->
          let e2e = Tandem.end_to_end_loss [ s1; s2 ] in
          Float.abs (s1.Queue_sim.served -. s2.Queue_sim.arrived) <= 1e-9
          && e2e >= Queue_sim.loss_rate s1 -. 1e-12
          && e2e <= 1.0 +. 1e-12
      | _ -> false)

let prop_loss_zero_when_rate_below_service =
  QCheck.Test.make ~name:"no loss when rates never exceed service" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 100)
           (pair (float_range 0.0 0.99) (float_range 0.0 2.0))))
    (fun epochs ->
      let s = Queue_sim.make ~service_rate:1.0 ~buffer:0.5 () in
      let stats = Queue_sim.run_epochs s (List.to_seq epochs) in
      stats.Queue_sim.lost = 0.0)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fluidsim"
    [
      ( "epoch",
        [
          Alcotest.test_case "fill without overflow" `Quick
            test_fill_without_overflow;
          Alcotest.test_case "fill with overflow" `Quick
            test_fill_with_overflow;
          Alcotest.test_case "drain to empty" `Quick test_drain_to_empty;
          Alcotest.test_case "drain partial" `Quick test_drain_partial;
          Alcotest.test_case "rate equals service" `Quick
            test_rate_equal_service_rate;
          Alcotest.test_case "zero buffer" `Quick test_zero_buffer;
          Alcotest.test_case "rejects bad input" `Quick
            test_make_rejects_bad_input;
        ] );
      ( "stats",
        [
          Alcotest.test_case "work conservation" `Quick test_work_conservation;
          Alcotest.test_case "served bounded by capacity" `Quick
            test_served_bounded_by_capacity;
          Alcotest.test_case "served = busy * c" `Quick
            test_served_equals_busy_times_rate;
          Alcotest.test_case "max occupancy bounds" `Quick
            test_max_occupancy_monotone_bound;
          Alcotest.test_case "loss rate" `Quick test_loss_rate_and_utilization;
          Alcotest.test_case "periodic on/off closed form" `Quick
            test_on_off_deterministic_cycle;
        ] );
      ( "trace",
        [
          Alcotest.test_case "run_trace = run_epochs" `Quick
            test_run_trace_equals_run_epochs;
          Alcotest.test_case "per-slot losses sum" `Quick
            test_losses_per_slot_totals;
          Alcotest.test_case "per-slot occupancies" `Quick
            test_occupancy_per_slot;
          Alcotest.test_case "loss monotone in buffer" `Quick
            test_loss_monotone_in_buffer;
        ] );
      ( "tandem",
        [
          Alcotest.test_case "output segments" `Quick
            test_output_segments_cover_epoch;
          Alcotest.test_case "output work = served" `Quick
            test_output_work_equals_served;
          Alcotest.test_case "single stage = plain queue" `Quick
            test_tandem_single_stage_matches_plain_queue;
          Alcotest.test_case "flow conservation" `Quick
            test_tandem_flow_conservation;
          Alcotest.test_case "equal second hop lossless" `Quick
            test_tandem_second_hop_lossless_at_equal_rates;
          Alcotest.test_case "end-to-end loss" `Quick
            test_tandem_end_to_end_loss;
          Alcotest.test_case "rejects empty" `Quick test_tandem_rejects_empty;
        ] );
      ( "priority",
        [
          Alcotest.test_case "high class isolated" `Quick
            test_priority_high_class_isolated;
          Alcotest.test_case "zero high = plain queue" `Quick
            test_priority_zero_high_is_plain_queue;
          Alcotest.test_case "deterministic slot" `Quick
            test_priority_low_class_deterministic;
          Alcotest.test_case "low suffers at least as much" `Quick
            test_priority_low_suffers_more_than_fifo_average;
          Alcotest.test_case "rejects mismatched traces" `Quick
            test_priority_rejects_mismatched_traces;
        ] );
      ( "gps",
        [
          Alcotest.test_case "underloaded lossless" `Quick
            test_gps_underloaded_lossless;
          Alcotest.test_case "deterministic split" `Quick
            test_gps_deterministic_split;
          Alcotest.test_case "work conservation" `Quick
            test_gps_work_conservation_vs_fifo;
          Alcotest.test_case "weight monotonicity" `Quick
            test_gps_weight_monotonicity;
          Alcotest.test_case "priority limit" `Quick
            test_gps_approaches_priority_at_high_weight;
          Alcotest.test_case "rejects bad weight" `Quick
            test_gps_rejects_bad_weight;
        ] );
      ( "properties",
        qcheck
          [
            prop_conservation;
            prop_occupancy_in_range;
            prop_loss_zero_when_rate_below_service;
            prop_gps_accounting;
            prop_tandem_losses_bounded;
          ] );
    ]
