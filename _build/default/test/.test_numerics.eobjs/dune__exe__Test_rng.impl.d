test/test_rng.ml: Alcotest Array Float Int64 List Lrd_numerics Lrd_rng Printf QCheck QCheck_alcotest Rng Sampler
