test/test_control.ml: Alcotest Array Float List Lrd_control Lrd_rng Lrd_trace Printf QCheck QCheck_alcotest Rcbr Token_bucket
