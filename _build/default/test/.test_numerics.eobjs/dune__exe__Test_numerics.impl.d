test/test_numerics.ml: Alcotest Array Array_ops Convolution Fft Float Gen Linalg List Lrd_numerics Printf QCheck QCheck_alcotest Quadrature Roots Special Summation Wavelet
