test/test_stats.ml: Alcotest Array Autocorr Batch_means Descriptive Float Hurst List Lrd_numerics Lrd_rng Lrd_stats Lrd_trace Printf QCheck QCheck_alcotest Spectral Stationarity Whittle
