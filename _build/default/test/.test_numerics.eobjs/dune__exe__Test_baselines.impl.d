test/test_baselines.ml: Alcotest Ams Array Dar Float List Lrd_baselines Lrd_dist Lrd_fluidsim Lrd_numerics Lrd_rng Lrd_stats Lrd_trace Markov_chain Multiscale Printf QCheck QCheck_alcotest
