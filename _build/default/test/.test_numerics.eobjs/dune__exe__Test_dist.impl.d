test/test_dist.ml: Alcotest Array Continuous Float Interarrival List Lrd_dist Lrd_numerics Lrd_rng Marginal Printf QCheck QCheck_alcotest
