test/test_packet.ml: Alcotest Array Arrivals Float List Lrd_fluidsim Lrd_packet Lrd_rng Lrd_trace Packet_queue QCheck QCheck_alcotest Seq
