test/test_fluidsim.mli:
