test/test_fluidsim.ml: Alcotest Array Float Gps List Lrd_fluidsim Lrd_numerics Lrd_rng Lrd_trace Priority QCheck QCheck_alcotest Queue_sim Seq Tandem
