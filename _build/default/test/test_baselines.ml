open Lrd_baselines

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rng () = Lrd_rng.Rng.create ~seed:161803L
let marginal = Lrd_dist.Marginal.of_points [ (1.0, 0.3); (2.0, 0.5); (5.0, 0.2) ]

(* ------------------------------------------------------------------ *)
(* DAR(1) *)

let test_dar_acf_geometric () =
  let d = Dar.create ~marginal ~rho:0.6 in
  check_close "lag 0" 1.0 (Dar.autocorrelation d ~lag:0);
  check_close "lag 1" 0.6 (Dar.autocorrelation d ~lag:1);
  check_close "lag 3" (0.6 ** 3.0) (Dar.autocorrelation d ~lag:3);
  check_close "negative lag" 0.36 (Dar.autocorrelation d ~lag:(-2))

let test_dar_correlation_time () =
  let d = Dar.create ~marginal ~rho:0.5 in
  check_close ~eps:1e-12 "halving time" (log 0.01 /. log 0.5)
    (Dar.correlation_time d ~epsilon:0.01);
  let independent = Dar.create ~marginal ~rho:0.0 in
  check_close "rho 0" 0.0 (Dar.correlation_time independent ~epsilon:0.01)

let test_dar_trace_marginal () =
  let d = Dar.create ~marginal ~rho:0.7 in
  let t = Dar.generate d (rng ()) ~slots:200_000 ~slot:0.1 in
  check_close ~eps:0.02 "mean" (Lrd_dist.Marginal.mean marginal)
    (Lrd_trace.Trace.mean t);
  check_close ~eps:0.05 "variance" (Lrd_dist.Marginal.variance marginal)
    (Lrd_trace.Trace.variance t)

let test_dar_trace_acf_matches () =
  let d = Dar.create ~marginal ~rho:0.7 in
  let t = Dar.generate d (rng ()) ~slots:200_000 ~slot:0.1 in
  let acf =
    Lrd_stats.Autocorr.autocorrelation t.Lrd_trace.Trace.rates ~max_lag:4
  in
  List.iter
    (fun k ->
      check_close ~eps:0.03
        (Printf.sprintf "lag %d" k)
        (0.7 ** float_of_int k)
        acf.(k))
    [ 1; 2; 3; 4 ]

let test_dar_rejects_bad_rho () =
  Alcotest.check_raises "rho 1" (Invalid_argument "Dar.create: rho must lie in [0, 1)")
    (fun () -> ignore (Dar.create ~marginal ~rho:1.0))

(* ------------------------------------------------------------------ *)
(* Markov chain *)

let test_chain_validation () =
  Alcotest.check_raises "not stochastic"
    (Invalid_argument "Markov_chain.create: rows must sum to one") (fun () ->
      ignore
        (Markov_chain.create ~rates:[| 1.0; 2.0 |]
           ~transition:[| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |]));
  Alcotest.check_raises "dimension"
    (Invalid_argument "Markov_chain.create: transition matrix dimension mismatch")
    (fun () ->
      ignore
        (Markov_chain.create ~rates:[| 1.0 |] ~transition:[| [| 1.0 |]; [| 1.0 |] |]))

let test_chain_of_dar_stationary () =
  let chain = Markov_chain.of_dar ~marginal ~rho:0.4 in
  let pi = Markov_chain.stationary chain in
  let probs = Lrd_dist.Marginal.probs marginal in
  Array.iteri
    (fun i p -> check_close ~eps:1e-9 (Printf.sprintf "pi %d" i) probs.(i) p)
    pi;
  check_close ~eps:1e-9 "mean rate" (Lrd_dist.Marginal.mean marginal)
    (Markov_chain.mean_rate chain);
  check_close ~eps:1e-9 "variance" (Lrd_dist.Marginal.variance marginal)
    (Markov_chain.rate_variance chain)

let test_chain_of_dar_acf_geometric () =
  let chain = Markov_chain.of_dar ~marginal ~rho:0.4 in
  List.iter
    (fun k ->
      check_close ~eps:1e-9
        (Printf.sprintf "lag %d" k)
        (0.4 ** float_of_int k)
        (Markov_chain.autocorrelation chain ~lag:k))
    [ 0; 1; 2; 5 ]

let test_chain_two_state_exact () =
  (* Symmetric two-state chain: eigenvalue 2s - 1. *)
  let chain =
    Markov_chain.create ~rates:[| 0.0; 1.0 |]
      ~transition:[| [| 0.9; 0.1 |]; [| 0.1; 0.9 |] |]
  in
  let pi = Markov_chain.stationary chain in
  check_close ~eps:1e-9 "uniform stationary" 0.5 pi.(0);
  check_close ~eps:1e-9 "acf lag 1" 0.8
    (Markov_chain.autocorrelation chain ~lag:1);
  check_close ~eps:1e-9 "acf lag 3" (0.8 ** 3.0)
    (Markov_chain.autocorrelation chain ~lag:3)

let test_chain_fit_from_trace () =
  (* Fit the bin chain to a DAR(1) trace: the fitted lag-1 rate
     autocorrelation and marginal must match the source's. *)
  let d = Dar.create ~marginal ~rho:0.6 in
  let t = Dar.generate d (rng ()) ~slots:200_000 ~slot:0.1 in
  let chain = Markov_chain.fit_from_trace ~bins:20 t in
  check_close ~eps:0.01 "mean rate" (Lrd_trace.Trace.mean t)
    (Markov_chain.mean_rate chain);
  check_close ~eps:0.03 "variance" (Lrd_trace.Trace.variance t)
    (Markov_chain.rate_variance chain);
  check_close ~eps:0.03 "lag-1 acf" 0.6
    (Markov_chain.autocorrelation chain ~lag:1)

let test_chain_fit_handles_terminal_state () =
  (* A trace whose last sample is the only visit to its bin: the fitted
     chain must still be row-stochastic (self-loop added). *)
  let rates = [| 1.0; 1.0; 1.0; 1.0; 10.0 |] in
  let t = Lrd_trace.Trace.create ~rates ~slot:1.0 in
  let chain = Markov_chain.fit_from_trace ~bins:5 t in
  Alcotest.(check int) "two states" 2 (Markov_chain.size chain);
  let p = Markov_chain.transition chain in
  Array.iter
    (fun row ->
      check_close ~eps:1e-12 "stochastic" 1.0
        (Lrd_numerics.Array_ops.sum row))
    p

let test_chain_generation_stationary () =
  let chain = Markov_chain.of_dar ~marginal ~rho:0.5 in
  let t = Markov_chain.generate chain (rng ()) ~slots:100_000 ~slot:1.0 in
  check_close ~eps:0.03 "mean" (Lrd_dist.Marginal.mean marginal)
    (Lrd_trace.Trace.mean t)

(* ------------------------------------------------------------------ *)
(* Multiscale *)

let test_multiscale_moments () =
  let m =
    Multiscale.create ~base_rate:1.0
      ~layers:
        [|
          { Multiscale.rate = 2.0; eigenvalue = 0.5 };
          { Multiscale.rate = 4.0; eigenvalue = 0.9 };
        |]
  in
  check_close "mean" (1.0 +. 1.0 +. 2.0) (Multiscale.mean_rate m);
  check_close "variance" (1.0 +. 4.0) (Multiscale.rate_variance m)

let test_multiscale_acf_mixture () =
  let m =
    Multiscale.create ~base_rate:0.0
      ~layers:
        [|
          { Multiscale.rate = 2.0; eigenvalue = 0.5 };
          { Multiscale.rate = 2.0; eigenvalue = 0.9 };
        |]
  in
  check_close "lag 0" 1.0 (Multiscale.autocorrelation m ~lag:0);
  check_close "lag 1" ((0.5 +. 0.9) /. 2.0) (Multiscale.autocorrelation m ~lag:1);
  check_close "lag 2" (((0.5 ** 2.0) +. (0.9 ** 2.0)) /. 2.0)
    (Multiscale.autocorrelation m ~lag:2)

let test_multiscale_fit_matches_target_moments () =
  let m =
    Multiscale.fit_power_law ~mean:10.0 ~variance:4.0 ~hurst:0.8 ~horizon:1000
      ()
  in
  check_close ~eps:1e-9 "mean" 10.0 (Multiscale.mean_rate m);
  check_close ~eps:1e-9 "variance" 4.0 (Multiscale.rate_variance m)

let test_multiscale_fit_tracks_power_law () =
  let hurst = 0.8 in
  let m =
    Multiscale.fit_power_law ~mean:10.0 ~variance:4.0 ~hurst ~horizon:1000
      ~layers:6 ()
  in
  (* Across the fitted range the acf should track t^(2H-2) within a
     small factor. *)
  List.iter
    (fun lag ->
      let target = float_of_int lag ** ((2.0 *. hurst) -. 2.0) in
      let got = Multiscale.autocorrelation m ~lag in
      let ratio = got /. target in
      if ratio < 0.3 || ratio > 3.0 then
        Alcotest.failf "acf at %d: got %.4f, target %.4f" lag got target)
    [ 3; 10; 30; 100; 300 ]

let test_multiscale_fit_rejects_excess_variance () =
  Alcotest.check_raises "negative base"
    (Invalid_argument
       "Multiscale.fit_power_law: variance too large for the mean (negative \
        base rate)") (fun () ->
      ignore
        (Multiscale.fit_power_law ~mean:0.5 ~variance:100.0 ~hurst:0.8
           ~horizon:100 ()))

let test_multiscale_generation_moments () =
  let m =
    Multiscale.fit_power_law ~mean:5.0 ~variance:1.0 ~hurst:0.75 ~horizon:200
      ()
  in
  let t = Multiscale.generate m (rng ()) ~slots:400_000 ~slot:1.0 in
  check_close ~eps:0.05 "mean" 5.0 (Lrd_trace.Trace.mean t);
  check_close ~eps:0.15 "variance" 1.0 (Lrd_trace.Trace.variance t)

let test_multiscale_to_markov_chain_consistent () =
  let m =
    Multiscale.create ~base_rate:0.5
      ~layers:
        [|
          { Multiscale.rate = 1.0; eigenvalue = 0.6 };
          { Multiscale.rate = 2.0; eigenvalue = 0.2 };
        |]
  in
  let chain = Multiscale.to_markov_chain m in
  Alcotest.(check int) "4 states" 4 (Markov_chain.size chain);
  check_close ~eps:1e-9 "mean" (Multiscale.mean_rate m)
    (Markov_chain.mean_rate chain);
  check_close ~eps:1e-9 "variance" (Multiscale.rate_variance m)
    (Markov_chain.rate_variance chain);
  List.iter
    (fun lag ->
      check_close ~eps:1e-9
        (Printf.sprintf "acf %d" lag)
        (Multiscale.autocorrelation m ~lag)
        (Markov_chain.autocorrelation chain ~lag))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Anick-Mitra-Sondhi *)

let ams_system () =
  Ams.create ~sources:4 ~on_rate:1.0 ~lambda:1.0 ~mu:2.0 ~service_rate:1.9

let test_ams_validation () =
  Alcotest.check_raises "unstable"
    (Invalid_argument "Ams.create: unstable system (mean rate >= service rate)")
    (fun () ->
      ignore
        (Ams.create ~sources:4 ~on_rate:1.0 ~lambda:1.0 ~mu:2.0
           ~service_rate:1.2));
  Alcotest.check_raises "zero drift"
    (Invalid_argument "Ams.create: a state has exactly zero drift") (fun () ->
      ignore
        (Ams.create ~sources:4 ~on_rate:1.0 ~lambda:1.0 ~mu:2.0
           ~service_rate:2.0));
  Alcotest.check_raises "always empty"
    (Invalid_argument
       "Ams.create: peak rate below service rate (queue always empty)")
    (fun () ->
      ignore
        (Ams.create ~sources:4 ~on_rate:1.0 ~lambda:1.0 ~mu:20.0
           ~service_rate:4.5))

let test_ams_stationary_binomial () =
  let sys = ams_system () in
  let pi = Ams.stationary sys in
  check_close ~eps:1e-12 "mass" 1.0 (Lrd_numerics.Array_ops.sum pi);
  (* p = 1/3: P(j) = C(4,j) (1/3)^j (2/3)^(4-j). *)
  check_close ~eps:1e-12 "pi_0" ((2.0 /. 3.0) ** 4.0) pi.(0);
  check_close ~eps:1e-12 "pi_4" ((1.0 /. 3.0) ** 4.0) pi.(4);
  check_close ~eps:1e-12 "mean" (4.0 /. 3.0) (Ams.mean_rate sys)

let test_ams_eigenvalue_count_and_sign () =
  let sys = ams_system () in
  let zs = Ams.negative_eigenvalues sys in
  (* Up states: j with j > 1.9, i.e. j = 2, 3, 4. *)
  Alcotest.(check int) "count" 3 (Array.length zs);
  Array.iter
    (fun z -> if z >= 0.0 then Alcotest.failf "nonnegative eigenvalue %g" z)
    zs

let test_ams_single_source_closed_form () =
  (* N = 1: the only nonzero eigenvalue of the pencil is
     z* = (lambda (r - c) - c mu) / (c (r - c)). *)
  let lambda = 1.0 and mu = 3.0 and r = 1.0 and c = 0.4 in
  let sys =
    Ams.create ~sources:1 ~on_rate:r ~lambda ~mu ~service_rate:c
  in
  let zs = Ams.negative_eigenvalues sys in
  Alcotest.(check int) "one eigenvalue" 1 (Array.length zs);
  let expected = ((lambda *. (r -. c)) -. (c *. mu)) /. (c *. (r -. c)) in
  check_close ~eps:1e-8 "closed form" expected zs.(0)

let test_ams_overflow_monotone () =
  let sys = ams_system () in
  let prev = ref 1.1 in
  List.iter
    (fun level ->
      let p = Ams.overflow_probability sys ~level in
      if p > !prev +. 1e-12 then Alcotest.failf "not monotone at %g" level;
      if p < 0.0 || p > 1.0 then Alcotest.failf "out of range at %g" level;
      prev := p)
    [ 0.0; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0 ]

let test_ams_matches_time_weighted_simulation () =
  let sys = ams_system () in
  let service_rate = 1.9 in
  let rng = rng () in
  let epochs = Ams.sample_epochs sys rng ~n:1_000_000 in
  let sim =
    Lrd_fluidsim.Queue_sim.make ~service_rate ~buffer:1e9 ()
  in
  let levels = [| 0.5; 1.0; 2.0 |] in
  let above = Array.make 3 0.0 in
  let total = ref 0.0 in
  Array.iter
    (fun (rate, duration) ->
      let initial = Lrd_fluidsim.Queue_sim.occupancy sim in
      ignore (Lrd_fluidsim.Queue_sim.offer sim ~rate ~duration);
      total := !total +. duration;
      Array.iteri
        (fun i level ->
          above.(i) <-
            above.(i)
            +. Lrd_fluidsim.Queue_sim.epoch_time_above ~service_rate ~initial
                 ~rate ~duration ~level)
        levels)
    epochs;
  Array.iteri
    (fun i level ->
      check_close ~eps:0.05
        (Printf.sprintf "level %g" level)
        (Ams.overflow_probability sys ~level)
        (above.(i) /. !total))
    levels

let test_ams_all_eigenvalues_structure () =
  let sys = ams_system () in
  let zs = Ams.all_eigenvalues sys in
  (* N + 1 = 5 eigenvalues: 3 negative (up states 2, 3, 4), zero, one
     positive (down states 0, 1 minus one for zero). *)
  Alcotest.(check int) "count" 5 (Array.length zs);
  let negatives = Array.to_list zs |> List.filter (fun z -> z < 0.0) in
  let positives = Array.to_list zs |> List.filter (fun z -> z > 0.0) in
  Alcotest.(check int) "negatives" 3 (List.length negatives);
  Alcotest.(check int) "positives" 1 (List.length positives);
  Alcotest.(check bool) "has zero" true (Array.exists (fun z -> z = 0.0) zs);
  (* Sorted ascending. *)
  let sorted = Array.copy zs in
  Array.sort Float.compare sorted;
  Alcotest.(check bool) "sorted" true (zs = sorted)

let test_ams_finite_loss_decreasing_and_bounded () =
  let sys = ams_system () in
  let prev = ref 1.0 in
  List.iter
    (fun b ->
      let loss = Ams.finite_buffer_loss sys ~buffer:b in
      let overflow = Ams.overflow_probability sys ~level:b in
      if loss > !prev +. 1e-12 then Alcotest.failf "loss grew at B=%g" b;
      (* Footnote 2: infinite-buffer overflow bounds finite-buffer loss. *)
      if loss > overflow +. 1e-12 then
        Alcotest.failf "loss above overflow at B=%g" b;
      prev := loss)
    [ 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 ]

let test_ams_finite_loss_zero_buffer_limit () =
  (* As B -> 0 the loss tends to E[(rate - c)^+] / mean rate. *)
  let sys = ams_system () in
  let pi = Ams.stationary sys in
  let c = 1.9 in
  let expected =
    let acc = ref 0.0 in
    Array.iteri
      (fun j p -> acc := !acc +. (p *. Float.max 0.0 (float_of_int j -. c)))
      pi;
    !acc /. Ams.mean_rate sys
  in
  check_close ~eps:1e-3 "limit" expected
    (Ams.finite_buffer_loss sys ~buffer:1e-6)

let test_ams_finite_loss_matches_simulation () =
  let sys = ams_system () in
  let c = 1.9 in
  let rng = rng () in
  List.iter
    (fun buffer ->
      let exact = Ams.finite_buffer_loss sys ~buffer in
      let path = Ams.sample_epochs sys rng ~n:1_000_000 in
      let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
      let stats =
        Lrd_fluidsim.Queue_sim.run_epochs sim (Array.to_seq path)
      in
      check_close ~eps:0.05
        (Printf.sprintf "B=%g" buffer)
        (Lrd_fluidsim.Queue_sim.loss_rate stats)
        exact)
    [ 0.5; 2.0 ]

let test_ams_sample_epochs_statistics () =
  let sys = ams_system () in
  let rng = rng () in
  let epochs = Ams.sample_epochs sys rng ~n:200_000 in
  (* Time-weighted mean rate equals the stationary mean. *)
  let work = ref 0.0 and time = ref 0.0 in
  Array.iter
    (fun (rate, duration) ->
      work := !work +. (rate *. duration);
      time := !time +. duration)
    epochs;
  check_close ~eps:0.03 "mean rate" (Ams.mean_rate sys) (!work /. !time);
  (* Rates live on the lattice {0, 1, 2, 3, 4}. *)
  Array.iter
    (fun (rate, _) ->
      if Float.rem rate 1.0 <> 0.0 || rate < 0.0 || rate > 4.0 then
        Alcotest.failf "rate off lattice: %g" rate)
    epochs

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_dar_trace_in_support =
  QCheck.Test.make ~name:"DAR trace only emits marginal rates" ~count:30
    (QCheck.make QCheck.Gen.(float_range 0.0 0.95))
    (fun rho ->
      let d = Dar.create ~marginal ~rho in
      let t = Dar.generate d (rng ()) ~slots:500 ~slot:1.0 in
      Array.for_all
        (fun r -> r = 1.0 || r = 2.0 || r = 5.0)
        t.Lrd_trace.Trace.rates)

let prop_multiscale_acf_in_unit_interval =
  QCheck.Test.make ~name:"multiscale acf lies in [0, 1]" ~count:50
    (QCheck.make
       QCheck.Gen.(
         pair (float_range 0.55 0.95) (int_range 10 1000)))
    (fun (hurst, horizon) ->
      let m =
        Multiscale.fit_power_law ~mean:10.0 ~variance:2.0 ~hurst
          ~horizon:(max 2 horizon) ()
      in
      List.for_all
        (fun lag ->
          let v = Multiscale.autocorrelation m ~lag in
          v >= 0.0 && v <= 1.0 +. 1e-12)
        [ 0; 1; 5; 50; 500 ])

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "dar",
        [
          Alcotest.test_case "geometric acf" `Quick test_dar_acf_geometric;
          Alcotest.test_case "correlation time" `Quick
            test_dar_correlation_time;
          Alcotest.test_case "trace marginal" `Slow test_dar_trace_marginal;
          Alcotest.test_case "trace acf" `Slow test_dar_trace_acf_matches;
          Alcotest.test_case "rejects bad rho" `Quick test_dar_rejects_bad_rho;
        ] );
      ( "markov-chain",
        [
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "DAR stationary distribution" `Quick
            test_chain_of_dar_stationary;
          Alcotest.test_case "DAR chain acf" `Quick
            test_chain_of_dar_acf_geometric;
          Alcotest.test_case "two-state exact" `Quick test_chain_two_state_exact;
          Alcotest.test_case "fit from trace" `Slow test_chain_fit_from_trace;
          Alcotest.test_case "fit handles terminal state" `Quick
            test_chain_fit_handles_terminal_state;
          Alcotest.test_case "generation stationary" `Slow
            test_chain_generation_stationary;
        ] );
      ( "multiscale",
        [
          Alcotest.test_case "moments" `Quick test_multiscale_moments;
          Alcotest.test_case "acf mixture of geometrics" `Quick
            test_multiscale_acf_mixture;
          Alcotest.test_case "fit matches moments" `Quick
            test_multiscale_fit_matches_target_moments;
          Alcotest.test_case "fit tracks power law" `Quick
            test_multiscale_fit_tracks_power_law;
          Alcotest.test_case "fit rejects excess variance" `Quick
            test_multiscale_fit_rejects_excess_variance;
          Alcotest.test_case "generation moments" `Slow
            test_multiscale_generation_moments;
          Alcotest.test_case "explicit chain consistent" `Quick
            test_multiscale_to_markov_chain_consistent;
        ] );
      ( "ams",
        [
          Alcotest.test_case "validation" `Quick test_ams_validation;
          Alcotest.test_case "binomial stationary" `Quick
            test_ams_stationary_binomial;
          Alcotest.test_case "eigenvalue count and sign" `Quick
            test_ams_eigenvalue_count_and_sign;
          Alcotest.test_case "single-source closed form" `Quick
            test_ams_single_source_closed_form;
          Alcotest.test_case "overflow monotone" `Quick
            test_ams_overflow_monotone;
          Alcotest.test_case "matches time-weighted simulation" `Slow
            test_ams_matches_time_weighted_simulation;
          Alcotest.test_case "full spectrum structure" `Quick
            test_ams_all_eigenvalues_structure;
          Alcotest.test_case "finite loss decreasing and bounded" `Quick
            test_ams_finite_loss_decreasing_and_bounded;
          Alcotest.test_case "finite loss zero-buffer limit" `Quick
            test_ams_finite_loss_zero_buffer_limit;
          Alcotest.test_case "finite loss matches simulation" `Slow
            test_ams_finite_loss_matches_simulation;
          Alcotest.test_case "sample path statistics" `Slow
            test_ams_sample_epochs_statistics;
        ] );
      ( "properties",
        qcheck [ prop_dar_trace_in_support; prop_multiscale_acf_in_unit_interval ]
      );
    ]
