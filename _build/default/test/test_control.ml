open Lrd_control

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let trace_of rates slot = Lrd_trace.Trace.create ~rates ~slot

(* ------------------------------------------------------------------ *)
(* Token bucket *)

let test_bucket_passes_conforming_traffic () =
  (* Input below the token rate passes untouched. *)
  let t = trace_of [| 1.0; 0.5; 0.8; 0.2 |] 1.0 in
  let r = Token_bucket.shape ~rate:1.0 ~burst:0.5 t in
  Array.iteri
    (fun i v ->
      check_close (Printf.sprintf "slot %d" i) t.Lrd_trace.Trace.rates.(i) v)
    r.Token_bucket.shaped.Lrd_trace.Trace.rates;
  check_close "no drops" 0.0 r.Token_bucket.dropped_work

let test_bucket_caps_sustained_excess () =
  (* Sustained input at 2 with rate 1: output tends to 1 once the
     initial burst allowance is spent. *)
  let t = trace_of (Array.make 50 2.0) 1.0 in
  let r = Token_bucket.shape ~rate:1.0 ~burst:3.0 t in
  let out = r.Token_bucket.shaped.Lrd_trace.Trace.rates in
  check_close "first slot uses burst" 2.0 out.(0);
  check_close "steady state" 1.0 out.(40);
  (* Conservation: input work = output work + backlog (infinite shaping
     buffer, so nothing dropped). *)
  check_close ~eps:1e-9 "conservation"
    (Lrd_trace.Trace.total_work t)
    (Lrd_trace.Trace.total_work r.Token_bucket.shaped
    +. (Lrd_trace.Trace.total_work t
       -. Lrd_trace.Trace.total_work r.Token_bucket.shaped));
  Alcotest.(check bool) "backlog grew" true
    (r.Token_bucket.max_shaper_backlog > 10.0)

let test_bucket_burst_allowance () =
  (* Burst b on top of rate r within one slot: output work <= r dt + b. *)
  let t = trace_of [| 10.0; 0.0 |] 1.0 in
  let r = Token_bucket.shape ~rate:1.0 ~burst:2.0 t in
  let out = r.Token_bucket.shaped.Lrd_trace.Trace.rates in
  check_close "burst + rate" 3.0 out.(0);
  (* Second slot: backlog drains at the token rate. *)
  check_close "drain" 1.0 out.(1)

let test_bucket_finite_buffer_drops () =
  let t = trace_of [| 10.0 |] 1.0 in
  let r = Token_bucket.shape ~rate:1.0 ~burst:0.0 ~shaper_buffer:2.0 t in
  check_close "sent" 1.0 r.Token_bucket.shaped.Lrd_trace.Trace.rates.(0);
  check_close "kept" 2.0 r.Token_bucket.max_shaper_backlog;
  check_close "dropped" 7.0 r.Token_bucket.dropped_work

let test_bucket_output_never_exceeds_envelope () =
  let rng = Lrd_rng.Rng.create ~seed:11L in
  let rates = Array.init 2_000 (fun _ -> Lrd_rng.Rng.float rng *. 5.0) in
  let t = trace_of rates 0.1 in
  let rate = 2.0 and burst = 0.7 in
  let r = Token_bucket.shape ~rate ~burst t in
  (* Work over any single slot is at most rate * slot + burst. *)
  Array.iter
    (fun v ->
      if v *. 0.1 > (rate *. 0.1) +. burst +. 1e-9 then
        Alcotest.failf "envelope violated: %g" v)
    r.Token_bucket.shaped.Lrd_trace.Trace.rates

let test_bucket_rejects_bad_params () =
  let t = trace_of [| 1.0 |] 1.0 in
  Alcotest.check_raises "rate"
    (Invalid_argument "Token_bucket.shape: rate must be positive") (fun () ->
      ignore (Token_bucket.shape ~rate:0.0 ~burst:1.0 t))

(* ------------------------------------------------------------------ *)
(* RCBR *)

let test_rcbr_constant_input_never_renegotiates () =
  let t = trace_of (Array.make 100 5.0) 0.1 in
  let r = Rcbr.control ~params:{ Rcbr.default with interval = 1.0 } t in
  Alcotest.(check int) "no renegotiations" 0 r.Rcbr.renegotiations;
  check_close "reservation std" 0.0 r.Rcbr.reservation_std;
  (* Reservation covers the rate with default headroom. *)
  check_close ~eps:1e-9 "level" (5.0 *. 1.1) r.Rcbr.mean_reservation

let test_rcbr_tracks_level_change () =
  (* Step change halfway: exactly one renegotiation (plus possibly one
     at the first boundary after the step window fills). *)
  let rates = Array.append (Array.make 100 2.0) (Array.make 100 8.0) in
  let t = trace_of rates 0.1 in
  let r = Rcbr.control ~params:{ Rcbr.default with interval = 1.0 } t in
  Alcotest.(check int) "one renegotiation" 1 r.Rcbr.renegotiations;
  let reserved = r.Rcbr.reserved.Lrd_trace.Trace.rates in
  check_close "before" (2.0 *. 1.1) reserved.(50);
  check_close "after" (8.0 *. 1.1) reserved.(150)

let test_rcbr_reservation_covers_quantile () =
  let rng = Lrd_rng.Rng.create ~seed:21L in
  let rates = Array.init 5_000 (fun _ -> 1.0 +. Lrd_rng.Rng.float rng) in
  let t = trace_of rates 0.01 in
  let r = Rcbr.control t in
  (* Fraction of slots above the reservation should be near 1 - q
     (modulo the one-interval reporting lag and headroom). *)
  let above =
    Array.mapi
      (fun i rate ->
        if rate > r.Rcbr.reserved.Lrd_trace.Trace.rates.(i) then 1 else 0)
      rates
    |> Array.fold_left ( + ) 0
  in
  let fraction = float_of_int above /. 5000.0 in
  Alcotest.(check bool) "mostly covered" true (fraction < 0.15);
  Alcotest.(check bool) "smoothing bounded" true
    (r.Rcbr.smoothing_backlog < 1.0)

let test_rcbr_hysteresis_suppresses_chatter () =
  let rng = Lrd_rng.Rng.create ~seed:31L in
  (* Small fluctuations around a level: generous hysteresis kills all
     renegotiations; zero hysteresis renegotiates frequently. *)
  let rates =
    Array.init 2_000 (fun _ -> 5.0 +. (0.05 *. Lrd_rng.Rng.float rng))
  in
  let t = trace_of rates 0.01 in
  let quiet =
    Rcbr.control
      ~params:{ Rcbr.default with interval = 0.5; hysteresis = 0.2 }
      t
  in
  let chatty =
    Rcbr.control
      ~params:{ Rcbr.default with interval = 0.5; hysteresis = 0.0 }
      t
  in
  Alcotest.(check int) "quiet" 0 quiet.Rcbr.renegotiations;
  Alcotest.(check bool) "chatty" true (chatty.Rcbr.renegotiations > 10)

let test_rcbr_narrower_than_source_on_video () =
  let rng = Lrd_rng.Rng.create ~seed:41L in
  let trace = Lrd_trace.Video.generate_short rng ~n:8_192 in
  let r = Rcbr.control trace in
  (* The reservation tracks scene-level structure: renegotiation rate
     stays far below the slot rate while covering the traffic. *)
  Alcotest.(check bool) "sparse signalling" true
    (r.Rcbr.renegotiation_rate < 2.0);
  Alcotest.(check bool) "covers mean" true
    (r.Rcbr.mean_reservation > Lrd_trace.Trace.mean trace)

let test_rcbr_rejects_bad_params () =
  let t = trace_of (Array.make 10 1.0) 1.0 in
  Alcotest.check_raises "short trace"
    (Invalid_argument "Rcbr.control: trace shorter than one interval")
    (fun () ->
      ignore (Rcbr.control ~params:{ Rcbr.default with interval = 100.0 } t));
  Alcotest.check_raises "quantile"
    (Invalid_argument "Rcbr.control: quantile must lie in (0, 1]") (fun () ->
      ignore (Rcbr.control ~params:{ Rcbr.default with quantile = 0.0 } t))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_bucket_work_conserving =
  QCheck.Test.make ~name:"token bucket never creates work" ~count:100
    (QCheck.make
       QCheck.Gen.(
         triple (float_range 0.1 5.0) (float_range 0.0 3.0)
           (list_size (int_range 1 100) (float_range 0.0 10.0))))
    (fun (rate, burst, rates) ->
      let t = trace_of (Array.of_list rates) 0.5 in
      let r = Token_bucket.shape ~rate ~burst t in
      Lrd_trace.Trace.total_work r.Token_bucket.shaped
      <= Lrd_trace.Trace.total_work t +. 1e-9)

let prop_rcbr_reservation_positive =
  QCheck.Test.make ~name:"rcbr reservation stays positive" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 20 300) (float_range 0.1 10.0)))
    (fun rates ->
      let t = trace_of (Array.of_list rates) 0.1 in
      let r =
        Rcbr.control ~params:{ Rcbr.default with interval = 0.5 } t
      in
      Array.for_all
        (fun v -> v > 0.0)
        r.Rcbr.reserved.Lrd_trace.Trace.rates)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "control"
    [
      ( "token-bucket",
        [
          Alcotest.test_case "passes conforming traffic" `Quick
            test_bucket_passes_conforming_traffic;
          Alcotest.test_case "caps sustained excess" `Quick
            test_bucket_caps_sustained_excess;
          Alcotest.test_case "burst allowance" `Quick
            test_bucket_burst_allowance;
          Alcotest.test_case "finite buffer drops" `Quick
            test_bucket_finite_buffer_drops;
          Alcotest.test_case "envelope respected" `Quick
            test_bucket_output_never_exceeds_envelope;
          Alcotest.test_case "rejects bad params" `Quick
            test_bucket_rejects_bad_params;
        ] );
      ( "rcbr",
        [
          Alcotest.test_case "constant input" `Quick
            test_rcbr_constant_input_never_renegotiates;
          Alcotest.test_case "tracks level change" `Quick
            test_rcbr_tracks_level_change;
          Alcotest.test_case "covers the quantile" `Quick
            test_rcbr_reservation_covers_quantile;
          Alcotest.test_case "hysteresis suppresses chatter" `Quick
            test_rcbr_hysteresis_suppresses_chatter;
          Alcotest.test_case "video reservation" `Slow
            test_rcbr_narrower_than_source_on_video;
          Alcotest.test_case "rejects bad params" `Quick
            test_rcbr_rejects_bad_params;
        ] );
      ( "properties",
        qcheck [ prop_bucket_work_conserving; prop_rcbr_reservation_positive ]
      );
    ]
