open Lrd_dist

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Interarrival: truncated Pareto *)

let tp = Interarrival.truncated_pareto

let test_tp_mean_formula () =
  (* Eq. 25 against direct numerical integration of the survival. *)
  let law = tp ~theta:0.5 ~alpha:1.4 ~cutoff:10.0 in
  let numeric =
    Lrd_numerics.Quadrature.simpson ~f:law.Interarrival.survival_gt ~a:0.0
      ~b:10.0 ~eps:1e-12
  in
  check_close ~eps:1e-8 "mean vs integral" numeric law.Interarrival.mean;
  check_close ~eps:1e-12 "eq. 25"
    (Interarrival.mean_given_cutoff ~theta:0.5 ~alpha:1.4 ~cutoff:10.0)
    law.Interarrival.mean

let test_tp_infinite_cutoff_mean () =
  let law = tp ~theta:2.0 ~alpha:1.5 ~cutoff:Float.infinity in
  check_close "theta/(alpha-1)" 4.0 law.Interarrival.mean

let test_tp_survival_atom () =
  let cutoff = 5.0 in
  let law = tp ~theta:1.0 ~alpha:1.3 ~cutoff in
  let atom = ((cutoff +. 1.0) /. 1.0) ** -1.3 in
  (* Strictly beyond the cutoff there is nothing; at the cutoff the weak
     survival carries the atom. *)
  check_close "gt at cutoff" 0.0 (law.Interarrival.survival_gt cutoff);
  check_close "ge at cutoff" atom (law.Interarrival.survival_ge cutoff);
  check_close "ge just after" 0.0 (law.Interarrival.survival_ge (cutoff +. 1e-9));
  check_close "gt at 0" 1.0 (law.Interarrival.survival_gt (-1e-9));
  check_close "ge at 0" 1.0 (law.Interarrival.survival_ge 0.0)

let test_tp_survival_integral_matches_quadrature () =
  let law = tp ~theta:0.8 ~alpha:1.6 ~cutoff:7.0 in
  List.iter
    (fun a ->
      let numeric =
        Lrd_numerics.Quadrature.simpson ~f:law.Interarrival.survival_gt ~a
          ~b:7.0 ~eps:1e-12
      in
      check_close ~eps:1e-8
        (Printf.sprintf "integral from %g" a)
        numeric
        (law.Interarrival.survival_integral a))
    [ 0.0; 0.5; 2.0; 6.9; 7.0; 8.0 ]

let test_tp_variance_matches_monte_carlo () =
  let law = tp ~theta:1.0 ~alpha:1.7 ~cutoff:4.0 in
  let rng = Lrd_rng.Rng.create ~seed:42L in
  let xs = Array.init 400_000 (fun _ -> law.Interarrival.sample rng) in
  check_close ~eps:2e-2 "mean" (Lrd_numerics.Array_ops.mean xs)
    law.Interarrival.mean;
  check_close ~eps:5e-2 "variance" (Lrd_numerics.Array_ops.variance xs)
    law.Interarrival.variance

let test_tp_infinite_variance_when_alpha_below_2 () =
  let law = tp ~theta:1.0 ~alpha:1.5 ~cutoff:Float.infinity in
  Alcotest.(check bool) "infinite" true
    (law.Interarrival.variance = Float.infinity)

let test_tp_rejects_bad_params () =
  Alcotest.check_raises "theta"
    (Invalid_argument "Interarrival.truncated_pareto: theta must be positive")
    (fun () -> ignore (tp ~theta:0.0 ~alpha:1.5 ~cutoff:1.0));
  Alcotest.check_raises "alpha at infinite cutoff"
    (Invalid_argument
       "Interarrival.truncated_pareto: alpha must exceed 1 for an infinite \
        cutoff (finite mean)") (fun () ->
      ignore (tp ~theta:1.0 ~alpha:0.9 ~cutoff:Float.infinity))

let test_theta_matching_infinite () =
  let theta =
    Interarrival.theta_for_mean_epoch ~mean_epoch:0.08 ~alpha:1.34 ()
  in
  check_close ~eps:1e-12 "closed form" (0.08 *. 0.34) theta

let test_theta_matching_finite_cutoff () =
  let cutoff = 2.0 and mean_epoch = 0.5 and alpha = 1.3 in
  let theta =
    Interarrival.theta_for_mean_epoch ~mean_epoch ~alpha ~cutoff ()
  in
  check_close ~eps:1e-9 "achieves mean" mean_epoch
    (Interarrival.mean_given_cutoff ~theta ~alpha ~cutoff)

let test_theta_matching_unreachable () =
  Alcotest.check_raises "mean above cutoff"
    (Invalid_argument
       "Interarrival.theta_for_mean_epoch: mean epoch must be below the \
        cutoff") (fun () ->
      ignore
        (Interarrival.theta_for_mean_epoch ~mean_epoch:3.0 ~alpha:1.5
           ~cutoff:2.0 ()))

(* ------------------------------------------------------------------ *)
(* Interarrival: other laws *)

let test_exponential_survival_integral () =
  let law = Interarrival.exponential ~mean:2.0 in
  check_close "at 0" 2.0 (law.Interarrival.survival_integral 0.0);
  check_close ~eps:1e-12 "at 3" (2.0 *. exp (-1.5))
    (law.Interarrival.survival_integral 3.0);
  check_close "mean" 2.0 law.Interarrival.mean;
  check_close "variance" 4.0 law.Interarrival.variance

let test_deterministic_law () =
  let law = Interarrival.deterministic ~value:1.5 in
  check_close "mean" 1.5 law.Interarrival.mean;
  check_close "variance" 0.0 law.Interarrival.variance;
  check_close "gt below" 1.0 (law.Interarrival.survival_gt 1.0);
  check_close "gt above" 0.0 (law.Interarrival.survival_gt 1.5);
  check_close "ge at" 1.0 (law.Interarrival.survival_ge 1.5);
  check_close "integral 0" 1.5 (law.Interarrival.survival_integral 0.0);
  check_close "integral 1" 0.5 (law.Interarrival.survival_integral 1.0);
  check_close "integral 2" 0.0 (law.Interarrival.survival_integral 2.0)

let test_uniform_law () =
  let law = Interarrival.uniform ~lo:1.0 ~hi:3.0 in
  check_close "mean" 2.0 law.Interarrival.mean;
  check_close "variance" (4.0 /. 12.0) law.Interarrival.variance;
  check_close "gt mid" 0.5 (law.Interarrival.survival_gt 2.0);
  check_close "integral mid" 0.25 (law.Interarrival.survival_integral 2.0);
  check_close "integral 0" 2.0 (law.Interarrival.survival_integral 0.0)

let test_weibull_law () =
  let law = Interarrival.weibull ~shape:1.0 ~scale:2.0 in
  (* shape = 1 degenerates to exponential(mean = 2). *)
  check_close ~eps:1e-10 "mean" 2.0 law.Interarrival.mean;
  check_close ~eps:1e-9 "variance" 4.0 law.Interarrival.variance;
  check_close ~eps:1e-7 "integral" (2.0 *. exp (-0.5))
    (law.Interarrival.survival_integral 1.0)

let test_gamma_law_shape_one_is_exponential () =
  let g = Interarrival.gamma ~shape:1.0 ~scale:2.0 in
  let e = Interarrival.exponential ~mean:2.0 in
  List.iter
    (fun t ->
      check_close ~eps:1e-10 "survival"
        (e.Interarrival.survival_gt t)
        (g.Interarrival.survival_gt t);
      check_close ~eps:1e-10 "integral"
        (e.Interarrival.survival_integral t)
        (g.Interarrival.survival_integral t))
    [ 0.0; 0.5; 1.0; 3.0; 10.0 ]

let test_gamma_law_integral_vs_quadrature () =
  let g = Interarrival.gamma ~shape:2.5 ~scale:0.8 in
  List.iter
    (fun a ->
      let numeric =
        Lrd_numerics.Quadrature.simpson_to_infinity
          ~f:g.Interarrival.survival_gt ~a ~eps:1e-11
      in
      check_close ~eps:1e-6
        (Printf.sprintf "integral from %g" a)
        numeric
        (g.Interarrival.survival_integral a))
    [ 0.0; 0.5; 2.0; 5.0 ];
  check_close "mean" 2.0 g.Interarrival.mean;
  check_close "variance" 1.6 g.Interarrival.variance

let test_lognormal_law_integral_vs_quadrature () =
  let l = Interarrival.lognormal ~mu:0.1 ~sigma:0.7 in
  List.iter
    (fun a ->
      let numeric =
        Lrd_numerics.Quadrature.simpson_to_infinity
          ~f:l.Interarrival.survival_gt ~a ~eps:1e-11
      in
      check_close ~eps:1e-5
        (Printf.sprintf "integral from %g" a)
        numeric
        (l.Interarrival.survival_integral a))
    [ 0.0; 0.5; 1.5; 4.0 ]

let test_lognormal_law_moments_monte_carlo () =
  let l = Interarrival.lognormal ~mu:0.2 ~sigma:0.5 in
  let rng = Lrd_rng.Rng.create ~seed:9L in
  let xs = Array.init 300_000 (fun _ -> l.Interarrival.sample rng) in
  check_close ~eps:1e-2 "mean" l.Interarrival.mean
    (Lrd_numerics.Array_ops.mean xs);
  check_close ~eps:5e-2 "variance" l.Interarrival.variance
    (Lrd_numerics.Array_ops.variance xs)

let test_hyperexponential_law () =
  let law =
    Interarrival.hyperexponential ~weights:[| 0.5; 0.5 |] ~means:[| 1.0; 3.0 |]
  in
  check_close "mean" 2.0 law.Interarrival.mean;
  (* E[T^2] = 0.5 (2 * 1) + 0.5 (2 * 9) = 10; Var = 6. *)
  check_close "variance" 6.0 law.Interarrival.variance;
  check_close ~eps:1e-12 "survival"
    ((0.5 *. exp (-2.0)) +. (0.5 *. exp (-2.0 /. 3.0)))
    (law.Interarrival.survival_gt 2.0);
  check_close ~eps:1e-12 "integral"
    ((0.5 *. exp (-2.0)) +. (1.5 *. exp (-2.0 /. 3.0)))
    (law.Interarrival.survival_integral 2.0);
  (* Degenerate single phase = exponential. *)
  let single =
    Interarrival.hyperexponential ~weights:[| 2.0 |] ~means:[| 1.5 |]
  in
  let e = Interarrival.exponential ~mean:1.5 in
  check_close "single phase" (e.Interarrival.survival_gt 0.7)
    (single.Interarrival.survival_gt 0.7)

let test_hyperexponential_monte_carlo () =
  let law =
    Interarrival.hyperexponential ~weights:[| 0.7; 0.3 |]
      ~means:[| 0.2; 5.0 |]
  in
  let rng = Lrd_rng.Rng.create ~seed:77L in
  let xs = Array.init 300_000 (fun _ -> law.Interarrival.sample rng) in
  check_close ~eps:2e-2 "mean" law.Interarrival.mean
    (Lrd_numerics.Array_ops.mean xs);
  check_close ~eps:5e-2 "variance" law.Interarrival.variance
    (Lrd_numerics.Array_ops.variance xs)

let test_weibull_moments_monte_carlo () =
  let law = Interarrival.weibull ~shape:2.0 ~scale:1.0 in
  let rng = Lrd_rng.Rng.create ~seed:5L in
  let xs = Array.init 200_000 (fun _ -> law.Interarrival.sample rng) in
  check_close ~eps:1e-2 "mean" law.Interarrival.mean
    (Lrd_numerics.Array_ops.mean xs);
  check_close ~eps:3e-2 "variance" law.Interarrival.variance
    (Lrd_numerics.Array_ops.variance xs)

(* ------------------------------------------------------------------ *)
(* Marginal *)

let two_point = Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ]

let test_marginal_basic_stats () =
  check_close "mean" 1.0 (Marginal.mean two_point);
  check_close "variance" 1.0 (Marginal.variance two_point);
  check_close "std" 1.0 (Marginal.std two_point);
  Alcotest.(check int) "size" 2 (Marginal.size two_point);
  let lo, hi = Marginal.support two_point in
  check_close "lo" 0.0 lo;
  check_close "hi" 2.0 hi;
  check_close "peak/mean" 2.0 (Marginal.peak_to_mean two_point)

let test_marginal_sorts_and_merges () =
  let m = Marginal.of_points [ (3.0, 1.0); (1.0, 2.0); (3.0, 1.0) ] in
  Alcotest.(check int) "merged" 2 (Marginal.size m);
  let rates = Marginal.rates m and probs = Marginal.probs m in
  check_close "sorted first" 1.0 rates.(0);
  check_close "sorted second" 3.0 rates.(1);
  check_close "merged prob" 0.5 probs.(0);
  check_close "merged prob 2" 0.5 probs.(1)

let test_marginal_drops_zero_weight () =
  let m = Marginal.of_points [ (1.0, 1.0); (5.0, 0.0) ] in
  Alcotest.(check int) "size" 1 (Marginal.size m)

let test_marginal_normalizes () =
  let m = Marginal.of_points [ (1.0, 2.0); (2.0, 6.0) ] in
  let probs = Marginal.probs m in
  check_close "p0" 0.25 probs.(0);
  check_close "p1" 0.75 probs.(1)

let test_marginal_cdf_quantile () =
  let m = Marginal.of_points [ (1.0, 0.2); (2.0, 0.3); (4.0, 0.5) ] in
  check_close "cdf below" 0.0 (Marginal.cdf m 0.5);
  check_close "cdf 1" 0.2 (Marginal.cdf m 1.0);
  check_close "cdf 3" 0.5 (Marginal.cdf m 3.0);
  check_close "cdf top" 1.0 (Marginal.cdf m 4.0);
  check_close "quantile 0.1" 1.0 (Marginal.quantile m 0.1);
  check_close "quantile 0.5" 2.0 (Marginal.quantile m 0.5);
  check_close "quantile 0.51" 4.0 (Marginal.quantile m 0.51);
  check_close "quantile 1" 4.0 (Marginal.quantile m 1.0)

let test_marginal_scale_preserves_mean () =
  let m = Marginal.of_points [ (2.0, 0.25); (6.0, 0.5); (10.0, 0.25) ] in
  let s = Marginal.scale m ~factor:0.5 in
  check_close "mean" (Marginal.mean m) (Marginal.mean s);
  check_close "std halves" (Marginal.std m /. 2.0) (Marginal.std s);
  let widened = Marginal.scale m ~factor:1.5 in
  check_close "std widens" (Marginal.std m *. 1.5) (Marginal.std widened)

let test_marginal_scale_clamp () =
  let m = Marginal.of_points [ (0.0, 0.5); (10.0, 0.5) ] in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Marginal.scale: scaling produced a negative rate")
    (fun () -> ignore (Marginal.scale m ~factor:1.5));
  let clamped = Marginal.scale ~clamp:true m ~factor:1.5 in
  let lo, _ = Marginal.support clamped in
  Alcotest.(check bool) "clamped at zero" true (lo >= 0.0)

let test_marginal_superpose_mean_preserved () =
  let m = Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let s = Marginal.superpose m ~n:4 in
  check_close ~eps:1e-9 "mean preserved" (Marginal.mean m) (Marginal.mean s);
  (* Variance of the renormalized sum shrinks by 1/n. *)
  check_close ~eps:1e-9 "variance / n" (Marginal.variance m /. 4.0)
    (Marginal.variance s)

let test_marginal_superpose_two_point_exact () =
  (* Superposing 2 on/off streams gives a binomial(2, 1/2) at rates
     0, 1, 2. *)
  let m = Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let s = Marginal.superpose m ~n:2 in
  Alcotest.(check int) "atoms" 3 (Marginal.size s);
  let probs = Marginal.probs s in
  check_close "p 0" 0.25 probs.(0);
  check_close "p mid" 0.5 probs.(1);
  check_close "p top" 0.25 probs.(2)

let test_marginal_add_heterogeneous () =
  let a = Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let b = Marginal.of_points [ (1.0, 0.25); (3.0, 0.75) ] in
  let s = Marginal.add a b in
  (* Means add; variances add (independence). *)
  check_close ~eps:1e-9 "mean" (Marginal.mean a +. Marginal.mean b)
    (Marginal.mean s);
  check_close ~eps:1e-9 "variance"
    (Marginal.variance a +. Marginal.variance b)
    (Marginal.variance s);
  (* Exact atoms for this small case: 1, 3, 3, 5 with probs
     .125, .375, .125, .375 -> merged 3 has .5. *)
  Alcotest.(check int) "atoms" 3 (Marginal.size s);
  check_close "p(3)" 0.5 (Marginal.probs s).(1)

let test_marginal_rebin_preserves_mean () =
  let rng = Lrd_rng.Rng.create ~seed:3L in
  let points =
    List.init 300 (fun _ ->
        (Lrd_rng.Rng.float rng *. 10.0, Lrd_rng.Rng.float rng +. 0.01))
  in
  let m = Marginal.of_points points in
  let r = Marginal.rebin m ~bins:20 in
  Alcotest.(check bool) "at most 20" true (Marginal.size r <= 20);
  check_close ~eps:1e-12 "mean preserved" (Marginal.mean m) (Marginal.mean r)

let test_marginal_sampler_matches () =
  let m = Marginal.of_points [ (1.0, 0.25); (2.0, 0.75) ] in
  let draw = Marginal.sampler m in
  let rng = Lrd_rng.Rng.create ~seed:12L in
  let n = 100_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if draw rng = 1.0 then incr ones
  done;
  check_close ~eps:0.02 "frequency" 0.25 (float_of_int !ones /. float_of_int n)

let test_marginal_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Marginal.create: empty support") (fun () ->
      ignore (Marginal.create ~rates:[||] ~probs:[||]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Marginal.create: rates and probs must have equal lengths")
    (fun () -> ignore (Marginal.create ~rates:[| 1.0 |] ~probs:[| 0.5; 0.5 |]));
  Alcotest.check_raises "negative prob"
    (Invalid_argument "Marginal.create: probabilities must be nonnegative")
    (fun () -> ignore (Marginal.create ~rates:[| 1.0 |] ~probs:[| -0.5 |]))

(* ------------------------------------------------------------------ *)
(* Continuous *)

let test_gamma_cdf_quantile_roundtrip () =
  let g = Continuous.gamma ~shape:3.0 ~scale:2.0 in
  List.iter
    (fun p ->
      check_close ~eps:1e-8 "roundtrip" p
        (g.Continuous.cdf (g.Continuous.quantile p)))
    [ 0.001; 0.1; 0.5; 0.9; 0.999 ]

let test_gamma_of_mean_cv () =
  let g = Continuous.gamma_of_mean_cv ~mean:9.5 ~cv:0.18 in
  check_close ~eps:1e-10 "mean" 9.5 g.Continuous.mean;
  check_close ~eps:1e-10 "cv" 0.18 (sqrt g.Continuous.variance /. 9.5)

let test_lognormal_of_mean_cv () =
  let l = Continuous.lognormal_of_mean_cv ~mean:2.0 ~cv:1.5 in
  check_close ~eps:1e-10 "mean" 2.0 l.Continuous.mean;
  check_close ~eps:1e-10 "cv" 1.5 (sqrt l.Continuous.variance /. 2.0)

let test_normal_continuous () =
  let n = Continuous.normal ~mean:1.0 ~std:2.0 in
  check_close ~eps:1e-10 "median" 1.0 (n.Continuous.quantile 0.5);
  check_close ~eps:1e-9 "cdf" 0.5 (n.Continuous.cdf 1.0)

(* ------------------------------------------------------------------ *)
(* Properties *)

let marginal_gen =
  (* Random small marginal with positive weights. *)
  QCheck.Gen.(
    list_size (int_range 1 12)
      (pair (float_range 0.0 50.0) (float_range 0.01 5.0)))

let prop_scale_preserves_mean =
  QCheck.Test.make ~name:"scale preserves the mean" ~count:100
    (QCheck.make marginal_gen) (fun points ->
      let m = Marginal.of_points points in
      let s = Marginal.scale m ~factor:0.7 in
      Float.abs (Marginal.mean m -. Marginal.mean s)
      <= 1e-9 *. (1.0 +. Marginal.mean m))

let prop_superpose_shrinks_variance =
  QCheck.Test.make ~name:"superposition shrinks variance by ~1/n" ~count:40
    (QCheck.make QCheck.Gen.(pair marginal_gen (int_range 2 5)))
    (fun (points, n) ->
      let m = Marginal.of_points points in
      let s = Marginal.superpose m ~n in
      let expected = Marginal.variance m /. float_of_int n in
      (* Re-binning introduces a small aggregation error. *)
      Float.abs (Marginal.variance s -. expected)
      <= 0.05 *. (expected +. 1e-9))

let prop_quantile_inverts_cdf =
  QCheck.Test.make ~name:"quantile is a generalized inverse of cdf" ~count:100
    (QCheck.make QCheck.Gen.(pair marginal_gen (float_range 0.01 1.0)))
    (fun (points, p) ->
      let m = Marginal.of_points points in
      let q = Marginal.quantile m p in
      Marginal.cdf m q >= p -. 1e-9)

let prop_tp_survival_monotone =
  QCheck.Test.make ~name:"truncated pareto survival is nonincreasing"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         triple (float_range 0.1 5.0) (float_range 1.05 3.0)
           (float_range 0.5 20.0)))
    (fun (theta, alpha, cutoff) ->
      let law = tp ~theta ~alpha ~cutoff in
      let ts = Lrd_numerics.Array_ops.linspace (-1.0) (cutoff +. 1.0) 50 in
      let ok = ref true in
      for i = 1 to 49 do
        if
          law.Interarrival.survival_gt ts.(i)
          > law.Interarrival.survival_gt ts.(i - 1) +. 1e-12
        then ok := false
      done;
      !ok)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "dist"
    [
      ( "truncated-pareto",
        [
          Alcotest.test_case "mean formula (eq. 25)" `Quick
            test_tp_mean_formula;
          Alcotest.test_case "infinite-cutoff mean" `Quick
            test_tp_infinite_cutoff_mean;
          Alcotest.test_case "survival atom at cutoff" `Quick
            test_tp_survival_atom;
          Alcotest.test_case "survival integral vs quadrature" `Quick
            test_tp_survival_integral_matches_quadrature;
          Alcotest.test_case "variance vs Monte Carlo" `Quick
            test_tp_variance_matches_monte_carlo;
          Alcotest.test_case "infinite variance below alpha 2" `Quick
            test_tp_infinite_variance_when_alpha_below_2;
          Alcotest.test_case "rejects bad params" `Quick
            test_tp_rejects_bad_params;
          Alcotest.test_case "theta matching, infinite cutoff" `Quick
            test_theta_matching_infinite;
          Alcotest.test_case "theta matching, finite cutoff" `Quick
            test_theta_matching_finite_cutoff;
          Alcotest.test_case "theta matching, unreachable mean" `Quick
            test_theta_matching_unreachable;
        ] );
      ( "other-laws",
        [
          Alcotest.test_case "exponential" `Quick
            test_exponential_survival_integral;
          Alcotest.test_case "deterministic" `Quick test_deterministic_law;
          Alcotest.test_case "uniform" `Quick test_uniform_law;
          Alcotest.test_case "weibull shape 1 = exponential" `Quick
            test_weibull_law;
          Alcotest.test_case "weibull moments Monte Carlo" `Quick
            test_weibull_moments_monte_carlo;
          Alcotest.test_case "gamma shape 1 = exponential" `Quick
            test_gamma_law_shape_one_is_exponential;
          Alcotest.test_case "gamma integral vs quadrature" `Quick
            test_gamma_law_integral_vs_quadrature;
          Alcotest.test_case "lognormal integral vs quadrature" `Quick
            test_lognormal_law_integral_vs_quadrature;
          Alcotest.test_case "lognormal moments Monte Carlo" `Slow
            test_lognormal_law_moments_monte_carlo;
          Alcotest.test_case "hyperexponential closed forms" `Quick
            test_hyperexponential_law;
          Alcotest.test_case "hyperexponential Monte Carlo" `Slow
            test_hyperexponential_monte_carlo;
        ] );
      ( "marginal",
        [
          Alcotest.test_case "basic stats" `Quick test_marginal_basic_stats;
          Alcotest.test_case "sorts and merges" `Quick
            test_marginal_sorts_and_merges;
          Alcotest.test_case "drops zero weights" `Quick
            test_marginal_drops_zero_weight;
          Alcotest.test_case "normalizes" `Quick test_marginal_normalizes;
          Alcotest.test_case "cdf and quantile" `Quick
            test_marginal_cdf_quantile;
          Alcotest.test_case "scale preserves mean" `Quick
            test_marginal_scale_preserves_mean;
          Alcotest.test_case "scale clamping" `Quick test_marginal_scale_clamp;
          Alcotest.test_case "superpose preserves mean, shrinks variance"
            `Quick test_marginal_superpose_mean_preserved;
          Alcotest.test_case "superpose two-point exact" `Quick
            test_marginal_superpose_two_point_exact;
          Alcotest.test_case "heterogeneous add" `Quick
            test_marginal_add_heterogeneous;
          Alcotest.test_case "rebin preserves mean" `Quick
            test_marginal_rebin_preserves_mean;
          Alcotest.test_case "sampler matches" `Quick
            test_marginal_sampler_matches;
          Alcotest.test_case "rejects bad input" `Quick
            test_marginal_rejects_bad_input;
        ] );
      ( "continuous",
        [
          Alcotest.test_case "gamma quantile roundtrip" `Quick
            test_gamma_cdf_quantile_roundtrip;
          Alcotest.test_case "gamma of mean/cv" `Quick test_gamma_of_mean_cv;
          Alcotest.test_case "lognormal of mean/cv" `Quick
            test_lognormal_of_mean_cv;
          Alcotest.test_case "normal" `Quick test_normal_continuous;
        ] );
      ( "properties",
        qcheck
          [
            prop_scale_preserves_mean;
            prop_superpose_shrinks_variance;
            prop_quantile_inverts_cdf;
            prop_tp_survival_monotone;
          ] );
    ]
