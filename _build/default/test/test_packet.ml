open Lrd_packet

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rng () = Lrd_rng.Rng.create ~seed:424242L

let constant_trace ~rate ~slots ~slot =
  Lrd_trace.Trace.create ~rates:(Array.make slots rate) ~slot

(* ------------------------------------------------------------------ *)
(* Arrivals *)

let test_poissonize_count () =
  (* Expected packets = work / size. *)
  let trace = constant_trace ~rate:10.0 ~slots:2_000 ~slot:0.01 in
  let packets = Arrivals.poissonize (rng ()) trace ~packet_size:0.05 in
  let n = Arrivals.count packets in
  (* Mean 4000, std ~ 63: accept 5 sigma. *)
  Alcotest.(check bool) "count near mean" true (abs (n - 4000) < 320)

let test_poissonize_time_ordered () =
  let trace = constant_trace ~rate:5.0 ~slots:200 ~slot:0.02 in
  let packets = Arrivals.poissonize (rng ()) trace ~packet_size:0.01 in
  let last = ref neg_infinity in
  Seq.iter
    (fun p ->
      if p.Arrivals.time < !last then Alcotest.fail "out of order";
      last := p.Arrivals.time;
      if p.Arrivals.size <> 0.01 then Alcotest.fail "wrong size")
    packets

let test_paced_exact_count () =
  (* Deterministic pacing: exactly work / size packets (up to the final
     fractional carry). *)
  let trace = constant_trace ~rate:8.0 ~slots:1_000 ~slot:0.01 in
  let n = Arrivals.count (Arrivals.paced trace ~packet_size:0.02) in
  Alcotest.(check int) "exact" 4000 n

let test_paced_carries_fractions () =
  (* 0.25 expected packets per slot (exactly representable): 10 slots
     must yield 2 packets, not 0. *)
  let trace = constant_trace ~rate:0.25 ~slots:10 ~slot:1.0 in
  let n = Arrivals.count (Arrivals.paced trace ~packet_size:1.0) in
  Alcotest.(check int) "carried" 2 n

let test_arrivals_reject_bad_size () =
  let trace = constant_trace ~rate:1.0 ~slots:10 ~slot:1.0 in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Arrivals: packet_size must be positive") (fun () ->
      let (_ : Arrivals.packet Seq.t) =
        Arrivals.poissonize (rng ()) trace ~packet_size:0.0
      in
      ())

(* ------------------------------------------------------------------ *)
(* Packet queue *)

let packets_of_list l =
  List.to_seq (List.map (fun (time, size) -> { Arrivals.time; size }) l)

let test_queue_accepts_within_buffer () =
  let stats =
    Packet_queue.run ~service_rate:1.0 ~buffer:10.0
      (packets_of_list [ (0.0, 3.0); (0.0, 3.0); (0.0, 3.0) ])
  in
  Alcotest.(check int) "no drops" 0 stats.Packet_queue.dropped_packets;
  check_close "backlog" 9.0 stats.Packet_queue.final_backlog;
  (* FIFO delays: 0, 3, 6 seconds. *)
  check_close "mean delay" 3.0 stats.Packet_queue.mean_delay;
  check_close "max delay" 6.0 stats.Packet_queue.max_delay

let test_queue_tail_drop () =
  let stats =
    Packet_queue.run ~service_rate:1.0 ~buffer:5.0
      (packets_of_list [ (0.0, 3.0); (0.0, 3.0); (0.0, 2.0) ])
  in
  (* Second packet would reach 6 > 5: dropped; third fits (3+2=5). *)
  Alcotest.(check int) "one drop" 1 stats.Packet_queue.dropped_packets;
  check_close "dropped work" 3.0 stats.Packet_queue.dropped_work;
  check_close "backlog" 5.0 stats.Packet_queue.final_backlog

let test_queue_drains_between_arrivals () =
  let stats =
    Packet_queue.run ~service_rate:2.0 ~buffer:10.0
      (packets_of_list [ (0.0, 4.0); (1.0, 1.0) ])
  in
  (* After 1 s the backlog is 2; second packet waits 1 s. *)
  Alcotest.(check int) "no drops" 0 stats.Packet_queue.dropped_packets;
  check_close "final backlog" 3.0 stats.Packet_queue.final_backlog;
  check_close "max delay" 1.0 stats.Packet_queue.max_delay

let test_queue_loss_rates () =
  let stats =
    Packet_queue.run ~service_rate:1.0 ~buffer:1.0
      (packets_of_list [ (0.0, 1.0); (0.0, 1.0); (0.0, 1.0); (0.0, 1.0) ])
  in
  check_close "work loss" 0.75 (Packet_queue.loss_rate stats);
  check_close "packet loss" 0.75 (Packet_queue.packet_loss_rate stats)

let test_queue_rejects_disorder () =
  Alcotest.check_raises "time travel"
    (Invalid_argument "Packet_queue.run: arrivals must be time ordered")
    (fun () ->
      ignore
        (Packet_queue.run ~service_rate:1.0 ~buffer:10.0
           (packets_of_list [ (1.0, 1.0); (0.0, 1.0) ])))

let test_queue_rejects_bad_params () =
  Alcotest.check_raises "service rate"
    (Invalid_argument "Packet_queue.run: service rate must be positive")
    (fun () ->
      ignore (Packet_queue.run ~service_rate:0.0 ~buffer:1.0 Seq.empty))

(* ------------------------------------------------------------------ *)
(* Fluid limit *)

let test_small_packets_approach_fluid () =
  let r = rng () in
  let trace =
    Lrd_trace.Trace.create
      ~rates:(Array.init 20_000 (fun _ -> Lrd_rng.Rng.float r *. 2.0))
      ~slot:0.05
  in
  let c = 1.25 and buffer = 1.0 in
  let fluid =
    let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
    Lrd_fluidsim.Queue_sim.loss_rate
      (Lrd_fluidsim.Queue_sim.run_trace sim trace)
  in
  (* Deterministic pacing with tiny packets: the closest packet system
     to the fluid one. *)
  let packet =
    Packet_queue.loss_rate
      (Packet_queue.run ~service_rate:c ~buffer
         (Arrivals.paced trace ~packet_size:0.002))
  in
  check_close ~eps:0.08 "fluid limit" fluid packet

let test_large_packets_lose_more () =
  let r = rng () in
  let trace =
    Lrd_trace.Trace.create
      ~rates:(Array.init 20_000 (fun _ -> Lrd_rng.Rng.float r *. 2.0))
      ~slot:0.05
  in
  let c = 1.25 and buffer = 0.5 in
  let loss size =
    Packet_queue.loss_rate
      (Packet_queue.run ~service_rate:c ~buffer
         (Arrivals.poissonize (rng ()) trace ~packet_size:size))
  in
  Alcotest.(check bool) "granularity costs" true (loss 0.25 > loss 0.01)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_queue_work_accounting =
  QCheck.Test.make ~name:"offered = dropped + accepted work" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 50)
           (pair (float_range 0.0 5.0) (float_range 0.1 2.0))))
    (fun events ->
      (* Build time-ordered arrivals from cumulative gaps. *)
      let t = ref 0.0 in
      let packets =
        List.map
          (fun (gap, size) ->
            t := !t +. gap;
            { Arrivals.time = !t; size })
          events
      in
      let stats =
        Packet_queue.run ~service_rate:1.0 ~buffer:3.0
          (List.to_seq packets)
      in
      let accepted =
        stats.Packet_queue.offered_work -. stats.Packet_queue.dropped_work
      in
      accepted >= -.1e-9
      && stats.Packet_queue.offered_packets = List.length packets)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "packet"
    [
      ( "arrivals",
        [
          Alcotest.test_case "poisson count" `Quick test_poissonize_count;
          Alcotest.test_case "time ordered" `Quick
            test_poissonize_time_ordered;
          Alcotest.test_case "paced exact count" `Quick test_paced_exact_count;
          Alcotest.test_case "paced carries fractions" `Quick
            test_paced_carries_fractions;
          Alcotest.test_case "rejects bad size" `Quick
            test_arrivals_reject_bad_size;
        ] );
      ( "queue",
        [
          Alcotest.test_case "accepts within buffer" `Quick
            test_queue_accepts_within_buffer;
          Alcotest.test_case "tail drop" `Quick test_queue_tail_drop;
          Alcotest.test_case "drains between arrivals" `Quick
            test_queue_drains_between_arrivals;
          Alcotest.test_case "loss rates" `Quick test_queue_loss_rates;
          Alcotest.test_case "rejects disorder" `Quick
            test_queue_rejects_disorder;
          Alcotest.test_case "rejects bad params" `Quick
            test_queue_rejects_bad_params;
        ] );
      ( "fluid-limit",
        [
          Alcotest.test_case "small packets approach fluid" `Slow
            test_small_packets_approach_fluid;
          Alcotest.test_case "large packets lose more" `Slow
            test_large_packets_lose_more;
        ] );
      ("properties", qcheck [ prop_queue_work_accounting ]);
    ]
