(* The domain pool's scheduling/determinism contract, the indexed rng
   splitting it relies on, and the cross-cell workload cache: parallel
   sweeps must be byte-identical to sequential ones, and caching /
   memoization must never change a computed value. *)

open Lrd_parallel

let render f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let worker_counts = [ 0; 1; 2; 3 ]

let test_map_matches_sequential () =
  let xs = Array.init 97 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) xs in
  List.iter
    (fun workers ->
      Pool.with_pool ~workers (fun pool ->
          let got = Pool.map pool (fun i -> i * i) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "map, %d workers" workers)
            expected got))
    worker_counts

let test_map_empty () =
  Pool.with_pool ~workers:2 (fun pool ->
      Alcotest.(check (array int))
        "empty input" [||]
        (Pool.map pool (fun i -> i) [||]))

let test_map2_grid_orientation () =
  let xs = [| "a"; "b"; "c" |] and ys = [| 1; 2 |] in
  let f x y = Printf.sprintf "%s%d" x y in
  let expected = Array.map (fun y -> Array.map (fun x -> f x y) xs) ys in
  List.iter
    (fun workers ->
      Pool.with_pool ~workers (fun pool ->
          let got = Pool.map2_grid pool ~xs ~ys ~f in
          Alcotest.(check (array (array string)))
            (Printf.sprintf "grid, %d workers" workers)
            expected got))
    worker_counts

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~workers:2 (fun pool ->
      (try
         ignore
           (Pool.map pool
              (fun i -> if i = 13 then raise (Boom i) else i)
              (Array.init 64 (fun i -> i)));
         Alcotest.fail "expected Boom"
       with Boom 13 -> ());
      (* The same pool keeps working after a failed task set. *)
      let xs = Array.init 32 (fun i -> i) in
      Alcotest.(check (array int))
        "pool reusable after exception"
        (Array.map (fun i -> i + 1) xs)
        (Pool.map pool (fun i -> i + 1) xs))

let test_shutdown_idempotent_and_final () =
  let pool = Pool.create ~workers:1 () in
  Alcotest.(check int) "parallelism" 2 (Pool.parallelism pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.iter: pool has been shut down") (fun () ->
      ignore (Pool.map pool (fun i -> i) [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Indexed rng splitting *)

let test_split_indexed () =
  let base () = Lrd_rng.Rng.create ~seed:42L in
  let draws rng = Array.init 8 (fun _ -> Lrd_rng.Rng.uint64 rng) in
  (* Same index from the same state: the same stream. *)
  let a = draws (Lrd_rng.Rng.split_indexed (base ()) ~index:3)
  and b = draws (Lrd_rng.Rng.split_indexed (base ()) ~index:3) in
  Alcotest.(check bool) "same index, same stream" true (a = b);
  (* Distinct indices: distinct streams. *)
  let c = draws (Lrd_rng.Rng.split_indexed (base ()) ~index:4) in
  Alcotest.(check bool) "distinct index, distinct stream" false (a = c);
  (* Splitting does not advance the parent: the order of splits and
     draws cannot matter, or parallel cells would see different
     streams than sequential ones. *)
  let r1 = base () in
  let direct = draws r1 in
  let r2 = base () in
  for i = 0 to 9 do
    ignore (Lrd_rng.Rng.split_indexed r2 ~index:i)
  done;
  Alcotest.(check bool)
    "split_indexed leaves the parent untouched" true
    (direct = draws r2);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_indexed: index must be nonnegative")
    (fun () -> ignore (Lrd_rng.Rng.split_indexed (base ()) ~index:(-1)))

(* ------------------------------------------------------------------ *)
(* Arena: per-domain memoization.  Within one domain the builder runs
   once per key and the same value comes back; a different domain gets
   its own independently-built value (no sharing, hence no locking). *)

let test_arena_memoizes_per_domain () =
  let builds = Atomic.make 0 in
  let arena =
    Arena.create (fun key ->
        Atomic.incr builds;
        Array.make 4 key)
  in
  let a = Arena.get arena 7 in
  let b = Arena.get arena 7 in
  let c = Arena.get arena 9 in
  Alcotest.(check bool) "same key, same array" true (a == b);
  Alcotest.(check bool) "distinct keys, distinct arrays" false (a == c);
  Alcotest.(check int) "one build per key" 2 (Atomic.get builds);
  Alcotest.(check int) "size counts this domain's entries" 2 (Arena.size arena);
  (* A fresh domain must not see this domain's entries: its first get
     triggers a build of its own. *)
  let other =
    Domain.join
      (Domain.spawn (fun () ->
           let d = Arena.get arena 7 in
           let e = Arena.get arena 7 in
           (d == e, Arena.size arena)))
  in
  Alcotest.(check bool) "other domain memoizes too" true (fst other);
  Alcotest.(check int) "other domain has its own table" 1 (snd other);
  Alcotest.(check int) "other domain rebuilt key 7" 3 (Atomic.get builds);
  Alcotest.(check int) "this domain's table untouched" 2 (Arena.size arena)

(* ------------------------------------------------------------------ *)
(* Sweep grid validation *)

let test_buffers_validation () =
  (try
     ignore (Lrd_experiments.Sweep.buffers ~quick:true ~max_seconds:0.005 ());
     Alcotest.fail "expected Invalid_argument for max_seconds = 0.005"
   with Invalid_argument msg ->
     Alcotest.(check bool)
       "message names the bound" true
       (String.length msg > 0 && msg.[0] = 'S' (* "Sweep.buffers: ..." *)));
  (try
     ignore (Lrd_experiments.Sweep.buffers ~quick:true ~max_seconds:0.01 ());
     Alcotest.fail "expected Invalid_argument for max_seconds = 0.01"
   with Invalid_argument _ -> ());
  let bs = Lrd_experiments.Sweep.buffers ~quick:true ~max_seconds:0.5 () in
  Alcotest.(check int) "valid grid size" 4 (Array.length bs)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: the fig4 quick table rendered from contexts
   of parallelism 1, 2 and recommended_domain_count must be
   byte-identical (the figure's cells go through the solver, the
   workload cache and the pool all at once). *)

let fig4_table ~jobs =
  let ctx = Lrd_experiments.Data.create ~jobs ~quick:true () in
  Fun.protect
    ~finally:(fun () -> Lrd_experiments.Data.teardown ctx)
    (fun () ->
      render (fun fmt ->
          Lrd_experiments.Table.print_surface fmt
            (Lrd_experiments.Fig04.compute ctx)))

let test_fig4_deterministic_across_pools () =
  let sequential = fig4_table ~jobs:1 in
  Alcotest.(check bool) "non-empty" true (String.length sequential > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fig4 at jobs=%d" jobs)
        sequential (fig4_table ~jobs))
    [ 2; max 2 (Domain.recommended_domain_count ()) ]

let test_fig7_deterministic_across_pools () =
  (* fig7 exercises the per-column rng splitting (simulation path). *)
  let table ~jobs =
    let ctx = Lrd_experiments.Data.create ~jobs ~quick:true () in
    Fun.protect
      ~finally:(fun () -> Lrd_experiments.Data.teardown ctx)
      (fun () ->
        render (fun fmt ->
            Lrd_experiments.Table.print_surface fmt
              (Lrd_experiments.Fig07.compute ctx)))
  in
  Alcotest.(check string) "fig7 at jobs=2" (table ~jobs:1) (table ~jobs:2)

(* ------------------------------------------------------------------ *)
(* Workload cache: exactly one model + one workload entry per distinct
   key, every other lookup a hit, and cached solves bitwise-equal to
   uncached ones. *)

let test_cache_counters_and_values () =
  let marginal =
    Lrd_dist.Marginal.of_points [ (0.0, 0.25); (1.0, 0.5); (3.0, 0.25) ]
  in
  let model_of ~cutoff =
    Lrd_core.Model.of_hurst ~marginal ~hurst:0.8 ~theta:0.05 ~cutoff
  in
  let cutoffs = [| 0.5; 5.0; Float.infinity |] in
  let buffers = [| 0.05; 0.2; 0.8 |] in
  let cache = Lrd_core.Workload.Cache.create () in
  let cached =
    Array.map
      (fun buffer_seconds ->
        Array.map
          (fun cutoff ->
            let key = Lrd_experiments.Sweep.cell_key cutoff in
            let model =
              Lrd_core.Workload.Cache.model cache ~key (fun () ->
                  model_of ~cutoff)
            in
            (Lrd_core.Solver.solve_utilization ~cache:(cache, key) model
               ~utilization:0.8 ~buffer_seconds)
              .Lrd_core.Solver.loss)
          cutoffs)
      buffers
  in
  let cells = Array.length cutoffs * Array.length buffers in
  (* Each cell performs one model lookup and one workload lookup; only
     the first lookup of each distinct key builds an entry. *)
  Alcotest.(check int)
    "lookups" (2 * cells)
    (Lrd_core.Workload.Cache.lookups cache);
  Alcotest.(check int)
    "entries" (2 * Array.length cutoffs)
    (Lrd_core.Workload.Cache.entries cache);
  Alcotest.(check int)
    "hits"
    ((2 * cells) - 2 * Array.length cutoffs)
    (Lrd_core.Workload.Cache.hits cache);
  let uncached =
    Array.map
      (fun buffer_seconds ->
        Array.map
          (fun cutoff ->
            (Lrd_core.Solver.solve_utilization (model_of ~cutoff)
               ~utilization:0.8 ~buffer_seconds)
              .Lrd_core.Solver.loss)
          cutoffs)
      buffers
  in
  Alcotest.(check bool) "cached solves bitwise-equal" true (cached = uncached)

let test_memoized_workload_identical () =
  let marginal =
    Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.3); (5.0, 0.2) ]
  in
  let model =
    Lrd_core.Model.of_hurst ~marginal ~hurst:0.85 ~theta:0.03 ~cutoff:2.0
  in
  let plain = Lrd_core.Workload.create model ~service_rate:1.5 in
  let memo = Lrd_core.Workload.create ~memoize:true model ~service_rate:1.5 in
  List.iter
    (fun bins ->
      let a = Lrd_core.Workload.discretize plain ~buffer:0.7 ~bins in
      let b = Lrd_core.Workload.discretize memo ~buffer:0.7 ~bins in
      Alcotest.(check bool)
        (Printf.sprintf "bins %d identical" bins)
        true
        (a.Lrd_core.Workload.lower = b.Lrd_core.Workload.lower
        && a.Lrd_core.Workload.upper = b.Lrd_core.Workload.upper))
    (* Doubling chain (refine reuse), a coarser revisit (stride reuse),
       and a non-conforming level (fresh compute): every path of the
       grid-level cache must stay bitwise equal to the plain workload. *)
    [ 16; 32; 64; 16; 48 ];
  List.iter
    (fun bins ->
      let a = Lrd_core.Workload.overflow_table plain ~buffer:0.7 ~bins in
      let b = Lrd_core.Workload.overflow_table memo ~buffer:0.7 ~bins in
      Alcotest.(check bool)
        (Printf.sprintf "overflow_table %d identical" bins)
        true (a = b);
      (* And the batch table matches the scalar API entry for entry. *)
      let step = 0.7 /. float_of_int bins in
      Array.iteri
        (fun j v ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "overflow_table %d entry %d" bins j)
            (Lrd_core.Workload.expected_overflow plain ~buffer:0.7
               ~occupancy:(Float.min 0.7 (float_of_int j *. step)))
            v)
        a)
    [ 16; 32; 64; 16; 48 ];
  let xs = [| 0.0; 0.1; 0.35; 0.7 |] in
  Array.iter
    (fun occupancy ->
      Alcotest.(check (float 0.0))
        "expected_overflow identical"
        (Lrd_core.Workload.expected_overflow plain ~buffer:0.7 ~occupancy)
        (Lrd_core.Workload.expected_overflow memo ~buffer:0.7 ~occupancy))
    xs

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map on empty input" `Quick test_map_empty;
          Alcotest.test_case "map2_grid orientation" `Quick
            test_map2_grid_orientation;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "shutdown" `Quick
            test_shutdown_idempotent_and_final;
        ] );
      ( "rng",
        [ Alcotest.test_case "split_indexed" `Quick test_split_indexed ] );
      ( "arena",
        [
          Alcotest.test_case "memoizes per domain" `Quick
            test_arena_memoizes_per_domain;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "buffers validation" `Quick
            test_buffers_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4 across pool sizes" `Slow
            test_fig4_deterministic_across_pools;
          Alcotest.test_case "fig7 across pool sizes" `Slow
            test_fig7_deterministic_across_pools;
        ] );
      ( "cache",
        [
          Alcotest.test_case "counters and values" `Quick
            test_cache_counters_and_values;
          Alcotest.test_case "memoized workload identical" `Quick
            test_memoized_workload_identical;
        ] );
    ]
