open Lrd_stats

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rng () = Lrd_rng.Rng.create ~seed:271828L

let white_noise n =
  let r = rng () in
  Array.init n (fun _ -> Lrd_rng.Sampler.normal r ~mean:0.0 ~std:1.0)

(* ------------------------------------------------------------------ *)
(* Descriptive *)

let test_descriptive_basics () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Descriptive.mean a);
  check_close "variance" 4.0 (Descriptive.variance a);
  check_close "std" 2.0 (Descriptive.std a);
  check_close "sample variance" (32.0 /. 7.0) (Descriptive.sample_variance a)

let test_descriptive_quantiles () =
  let a = [| 3.0; 1.0; 2.0; 4.0; 5.0 |] in
  check_close "median" 3.0 (Descriptive.median a);
  check_close "min" 1.0 (Descriptive.quantile a ~p:0.0);
  check_close "max" 5.0 (Descriptive.quantile a ~p:1.0);
  check_close "interpolated" 1.5 (Descriptive.quantile a ~p:0.125);
  (* Input not modified. *)
  Alcotest.(check bool) "unsorted input intact" true (a.(0) = 3.0)

let test_descriptive_skew_kurtosis () =
  (* Symmetric data: zero skewness; two-point data has kurtosis -2. *)
  let sym = [| -2.0; -1.0; 0.0; 1.0; 2.0 |] in
  check_close "skew" 0.0 (Descriptive.skewness sym);
  let two = [| -1.0; 1.0; -1.0; 1.0 |] in
  check_close "kurtosis" (-2.0) (Descriptive.excess_kurtosis two)

let test_linear_regression_exact () =
  let x = [| 0.0; 1.0; 2.0; 3.0 |] in
  let y = Array.map (fun v -> (2.5 *. v) -. 1.0) x in
  let slope, intercept = Descriptive.linear_regression ~x ~y in
  check_close "slope" 2.5 slope;
  check_close "intercept" (-1.0) intercept

let test_linear_regression_rejects_degenerate () =
  Alcotest.check_raises "constant x"
    (Invalid_argument "Descriptive.linear_regression: degenerate abscissae")
    (fun () ->
      ignore
        (Descriptive.linear_regression ~x:[| 1.0; 1.0 |] ~y:[| 1.0; 2.0 |]))

(* ------------------------------------------------------------------ *)
(* Autocorrelation *)

let test_autocovariance_fft_matches_direct () =
  (* The workspace always takes the FFT path, so comparing it against
     the direct loop exercises the Wiener-Khinchin route even at lag
     counts where the one-shot crossover would choose direct. *)
  let a = white_noise 700 in
  let ws = Autocorr.Workspace.make ~n:700 in
  let fft = Autocorr.Workspace.autocovariance ws a ~max_lag:50 in
  let direct = Autocorr.autocovariance_direct a ~max_lag:50 in
  Array.iteri
    (fun k v -> check_close ~eps:1e-9 (Printf.sprintf "lag %d" k) v fft.(k))
    direct

let test_autocovariance_crossover_both_exact () =
  (* Either side of the centralized crossover gives the same numbers up
     to rounding: small max_lag (one-shot goes direct) against the
     workspace FFT, and large max_lag (one-shot goes FFT) against the
     direct loop. *)
  let a = white_noise 700 in
  let ws = Autocorr.Workspace.make ~n:700 in
  let small = Autocorr.autocovariance a ~max_lag:2 in
  let small_fft = Autocorr.Workspace.autocovariance ws a ~max_lag:2 in
  Array.iteri
    (fun k v ->
      check_close ~eps:1e-9 (Printf.sprintf "small lag %d" k) v small_fft.(k))
    small;
  let big = Autocorr.autocovariance a ~max_lag:600 in
  let big_direct = Autocorr.autocovariance_direct a ~max_lag:600 in
  Array.iteri
    (fun k v ->
      check_close ~eps:1e-9 (Printf.sprintf "big lag %d" k) v big_direct.(k))
    big

let test_autocorr_workspace_bit_identical () =
  (* At a lag count where the one-shot path takes the FFT branch, the
     workspace result must be bitwise the same array of floats — the two
     paths share the core loop, so any drift is a real bug. *)
  let a = white_noise 700 in
  let ws = Autocorr.Workspace.make ~n:700 in
  Alcotest.(check int) "size" 2048 (Autocorr.Workspace.size ws);
  let oneshot = Autocorr.autocovariance a ~max_lag:400 in
  Alcotest.(check bool) "acv bitwise" true
    (oneshot = Autocorr.Workspace.autocovariance ws a ~max_lag:400);
  (* Reuse after a different series: scratch carries no state. *)
  let b = Array.map (fun v -> v *. 3.0) a in
  ignore (Autocorr.Workspace.autocovariance ws b ~max_lag:10);
  Alcotest.(check bool) "acv bitwise after reuse" true
    (oneshot = Autocorr.Workspace.autocovariance ws a ~max_lag:400);
  Alcotest.(check bool) "acf bitwise" true
    (Autocorr.autocorrelation a ~max_lag:400
    = Autocorr.Workspace.autocorrelation ws a ~max_lag:400);
  (* The domain arena hands back a workspace of the same size. *)
  let dw = Autocorr.domain_workspace ~n:700 in
  Alcotest.(check bool) "domain workspace bitwise" true
    (oneshot = Autocorr.Workspace.autocovariance dw a ~max_lag:400);
  Alcotest.check_raises "wrong length"
    (Invalid_argument
       "Autocorr.Workspace: series does not match the workspace size")
    (fun () ->
      ignore (Autocorr.Workspace.autocovariance ws (white_noise 3000) ~max_lag:5));
  Alcotest.check_raises "dst too short"
    (Invalid_argument "Autocorr.Workspace: dst too short") (fun () ->
      Autocorr.Workspace.autocovariance_into ws a ~max_lag:10
        ~dst:(Array.make 5 0.0))

let test_autocorrelation_normalized () =
  let a = white_noise 4096 in
  let acf = Autocorr.autocorrelation a ~max_lag:20 in
  check_close "lag 0" 1.0 acf.(0);
  (* White noise: all other lags near zero (1/sqrt n scale). *)
  for k = 1 to 20 do
    if Float.abs acf.(k) > 0.08 then
      Alcotest.failf "white noise acf too large at %d: %g" k acf.(k)
  done

let test_autocorrelation_of_ar1 () =
  (* AR(1) with coefficient 0.8: acf(k) = 0.8^k. *)
  let r = rng () in
  let n = 200_000 in
  let a = Array.make n 0.0 in
  for i = 1 to n - 1 do
    a.(i) <-
      (0.8 *. a.(i - 1)) +. Lrd_rng.Sampler.normal r ~mean:0.0 ~std:1.0
  done;
  let acf = Autocorr.autocorrelation a ~max_lag:5 in
  List.iter
    (fun k ->
      check_close ~eps:0.03
        (Printf.sprintf "lag %d" k)
        (0.8 ** float_of_int k)
        acf.(k))
    [ 1; 2; 3; 4; 5 ]

let test_autocorr_rejects_bad_lag () =
  Alcotest.check_raises "too long"
    (Invalid_argument "Autocorr: max_lag must be below length") (fun () ->
      ignore (Autocorr.autocovariance [| 1.0; 2.0 |] ~max_lag:2))

(* ------------------------------------------------------------------ *)
(* Hurst estimators *)

let fgn h n = Lrd_trace.Fgn.davies_harte (rng ()) ~hurst:h ~n

let check_hurst_estimate name estimator data expected tolerance =
  let fit : Hurst.fit = estimator data in
  if Float.abs (fit.Hurst.hurst -. expected) > tolerance then
    Alcotest.failf "%s: expected H ~ %.2f, estimated %.3f" name expected
      fit.Hurst.hurst

let test_aggregated_variance_white_noise () =
  check_hurst_estimate "aggvar white" Hurst.aggregated_variance
    (white_noise 65_536) 0.5 0.08

let test_aggregated_variance_fgn () =
  check_hurst_estimate "aggvar fgn .8" Hurst.aggregated_variance
    (fgn 0.8 65_536) 0.8 0.1

let test_rs_white_noise () =
  check_hurst_estimate "rs white" Hurst.rescaled_range (white_noise 32_768)
    0.5 0.12

let test_rs_fgn () =
  check_hurst_estimate "rs fgn .85" Hurst.rescaled_range (fgn 0.85 32_768)
    0.85 0.15

let test_gph_white_noise () =
  check_hurst_estimate "gph white" Hurst.gph (white_noise 16_384) 0.5 0.1

let test_gph_fgn () =
  check_hurst_estimate "gph fgn .75" Hurst.gph (fgn 0.75 65_536) 0.75 0.12

let test_abry_veitch_white_noise () =
  check_hurst_estimate "wavelet white" Hurst.abry_veitch (white_noise 32_768)
    0.5 0.08

let test_abry_veitch_fgn () =
  check_hurst_estimate "wavelet fgn .9" Hurst.abry_veitch (fgn 0.9 65_536) 0.9
    0.08;
  check_hurst_estimate "wavelet fgn .6" Hurst.abry_veitch (fgn 0.6 65_536) 0.6
    0.08

let test_abry_veitch_haar_variant () =
  check_hurst_estimate "haar fgn .8"
    (Hurst.abry_veitch ~wavelet:Lrd_numerics.Wavelet.Haar ~weighted:false)
    (fgn 0.8 65_536) 0.8 0.1

let test_abry_veitch_trend_robustness () =
  (* A linear trend pollutes the Haar logscale diagram but is
     annihilated by the two vanishing moments of D4. *)
  let n = 65_536 in
  let base = fgn 0.7 n in
  let trended =
    Array.mapi (fun i v -> v +. (6.0 *. float_of_int i /. float_of_int n)) base
  in
  (* Compare unweighted fits: the count-weighted regression already
     downweights the coarse octaves where a trend lives, which masks the
     effect this test isolates. *)
  let d4 =
    (Hurst.abry_veitch ~wavelet:Lrd_numerics.Wavelet.Daubechies4
       ~weighted:false trended)
      .Hurst.hurst
  in
  let haar =
    (Hurst.abry_veitch ~wavelet:Lrd_numerics.Wavelet.Haar ~weighted:false
       trended)
      .Hurst.hurst
  in
  if Float.abs (d4 -. 0.7) > 0.1 then
    Alcotest.failf "D4 swayed by trend: %.3f" d4;
  (* The Haar estimate must be visibly inflated relative to D4. *)
  Alcotest.(check bool) "haar inflated" true (haar > d4 +. 0.05)

let test_logscale_diagram_structure () =
  let data = fgn 0.8 16_384 in
  let diagram = Hurst.logscale_diagram data in
  Alcotest.(check bool) "several octaves" true (Array.length diagram >= 6);
  Array.iter
    (fun p ->
      if not (p.Hurst.ci_low <= p.Hurst.log2_energy) then
        Alcotest.failf "octave %d: point below band" p.Hurst.octave;
      if not (p.Hurst.log2_energy <= p.Hurst.ci_high) then
        Alcotest.failf "octave %d: point above band" p.Hurst.octave;
      if p.Hurst.coefficients < 4 then
        Alcotest.failf "octave %d: too few coefficients" p.Hurst.octave)
    diagram;
  (* Bands widen with the octave (fewer coefficients). *)
  let first = diagram.(0) and last = diagram.(Array.length diagram - 1) in
  Alcotest.(check bool) "band widens" true
    (last.Hurst.ci_high -. last.Hurst.ci_low
    > first.Hurst.ci_high -. first.Hurst.ci_low)

let test_logscale_diagram_slope_matches_estimator () =
  let data = fgn 0.75 32_768 in
  let diagram = Hurst.logscale_diagram data in
  let xs = Array.map (fun p -> float_of_int p.Hurst.octave) diagram in
  let ys = Array.map (fun p -> p.Hurst.log2_energy) diagram in
  let slope, _ = Descriptive.linear_regression ~x:xs ~y:ys in
  let fit = Hurst.abry_veitch ~weighted:false data in
  if Float.abs (slope -. fit.Hurst.slope) > 1e-9 then
    Alcotest.failf "diagram/estimator mismatch: %.4f vs %.4f" slope
      fit.Hurst.slope

let test_weighted_regression () =
  (* With all weights equal the weighted fit equals OLS. *)
  let x = [| 0.0; 1.0; 2.0; 3.0 |] in
  let y = [| 1.0; 2.9; 5.1; 7.0 |] in
  let s0, i0 = Descriptive.linear_regression ~x ~y in
  let s1, i1 =
    Descriptive.weighted_linear_regression ~x ~y ~w:[| 2.0; 2.0; 2.0; 2.0 |]
  in
  if Float.abs (s0 -. s1) > 1e-12 || Float.abs (i0 -. i1) > 1e-12 then
    Alcotest.fail "uniform weights differ from OLS";
  (* A zero-weight outlier must not affect the fit. *)
  let x2 = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let y2 = [| 1.0; 2.9; 5.1; 7.0; 1000.0 |] in
  let s2, _ =
    Descriptive.weighted_linear_regression ~x:x2 ~y:y2
      ~w:[| 1.0; 1.0; 1.0; 1.0; 0.0 |]
  in
  if Float.abs (s0 -. s2) > 1e-12 then Alcotest.fail "outlier leaked in"

let test_variance_time_curve_shape () =
  (* For fGn, Var(X^(m)) = m^(2H-2); check the ratio across a decade. *)
  let data = fgn 0.8 65_536 in
  let curve = Hurst.variance_time_curve data ~block_sizes:[| 10; 100 |] in
  let _, v10 = curve.(0) and _, v100 = curve.(1) in
  (* Expected ratio 10^(2*0.8-2) = 10^-0.4 ~ 0.398. *)
  check_close ~eps:0.25 "decade ratio" (10.0 ** -0.4) (v100 /. v10)

let test_whittle_white_noise () =
  let f = Whittle.local_whittle (white_noise 32_768) in
  if Float.abs (f.Whittle.hurst -. 0.5) > 0.06 then
    Alcotest.failf "whittle on white noise: %.3f" f.Whittle.hurst

let test_whittle_fgn () =
  List.iter
    (fun h ->
      let f = Whittle.local_whittle (fgn h 65_536) in
      if Float.abs (f.Whittle.hurst -. h) > 0.06 then
        Alcotest.failf "whittle on fGn %.2f: %.3f" h f.Whittle.hurst;
      (* H = d + 1/2 by construction. *)
      if Float.abs (f.Whittle.hurst -. f.Whittle.memory -. 0.5) > 1e-12 then
        Alcotest.fail "hurst/memory mismatch")
    [ 0.6; 0.8; 0.9 ]

let test_whittle_bandwidth_control () =
  let data = fgn 0.8 16_384 in
  let f = Whittle.local_whittle ~frequencies:128 data in
  Alcotest.(check int) "bandwidth respected" 128 f.Whittle.frequencies

let test_whittle_rejects_short () =
  Alcotest.check_raises "short"
    (Invalid_argument "Whittle.local_whittle: series too short") (fun () ->
      ignore (Whittle.local_whittle (white_noise 32)))

let test_whittle_workspace_bit_identical () =
  let data = fgn 0.8 10_000 in
  let oneshot = Whittle.local_whittle data in
  let ws = Whittle.Workspace.make ~n:10_000 in
  Alcotest.(check int) "size" 16_384 (Whittle.Workspace.size ws);
  Alcotest.(check bool) "fit bitwise" true
    (oneshot = Whittle.Workspace.local_whittle ws data);
  (* A second call reuses the scratch and still reproduces the fit, and
     an explicit bandwidth threads through identically. *)
  Alcotest.(check bool) "fit bitwise on reuse" true
    (oneshot = Whittle.Workspace.local_whittle ws data);
  Alcotest.(check bool) "bandwidth bitwise" true
    (Whittle.local_whittle ~frequencies:128 data
    = Whittle.Workspace.local_whittle ws ~frequencies:128 data);
  let dw = Whittle.domain_workspace ~n:10_000 in
  Alcotest.(check bool) "domain workspace bitwise" true
    (oneshot = Whittle.Workspace.local_whittle dw data);
  Alcotest.check_raises "wrong length"
    (Invalid_argument
       "Whittle.Workspace: series does not match the workspace size")
    (fun () -> ignore (Whittle.Workspace.local_whittle ws (fgn 0.8 1024)));
  Alcotest.check_raises "short series"
    (Invalid_argument "Whittle.local_whittle: series too short") (fun () ->
      ignore (Whittle.Workspace.local_whittle ws (white_noise 32)));
  Alcotest.check_raises "workspace too small"
    (Invalid_argument "Whittle.Workspace.make: n must be at least 64")
    (fun () -> ignore (Whittle.Workspace.make ~n:32))

let test_spectral_workspace_bit_identical () =
  let data = fgn 0.7 5_000 in
  let oneshot = Spectral.periodogram data in
  let ws = Spectral.Workspace.make ~n:5_000 in
  Alcotest.(check int) "size" 8192 (Spectral.Workspace.size ws);
  let planned = Spectral.Workspace.periodogram ws data in
  Alcotest.(check bool) "frequencies bitwise" true
    (oneshot.Spectral.frequencies = planned.Spectral.frequencies);
  Alcotest.(check bool) "power bitwise" true
    (oneshot.Spectral.power = planned.Spectral.power);
  let again = Spectral.Workspace.periodogram ws data in
  Alcotest.(check bool) "power bitwise on reuse" true
    (oneshot.Spectral.power = again.Spectral.power);
  Alcotest.check_raises "wrong length"
    (Invalid_argument
       "Spectral.Workspace: series does not match the workspace size")
    (fun () -> ignore (Spectral.Workspace.periodogram ws (white_noise 512)))

let test_estimators_reject_short_series () =
  Alcotest.check_raises "aggvar short"
    (Invalid_argument "Hurst.aggregated_variance: series too short") (fun () ->
      ignore (Hurst.aggregated_variance (white_noise 16)));
  Alcotest.check_raises "gph short"
    (Invalid_argument "Hurst.gph: series too short") (fun () ->
      ignore (Hurst.gph (white_noise 8)))

(* ------------------------------------------------------------------ *)
(* Spectral *)

let test_periodogram_white_noise_level () =
  let xs = white_noise 32_768 in
  let p = Spectral.periodogram xs in
  Alcotest.(check int) "single segment" 1 p.Spectral.segments;
  (* Mean level = variance / (2 pi). *)
  check_close ~eps:0.05 "level"
    (1.0 /. (2.0 *. Float.pi))
    (Lrd_numerics.Array_ops.mean p.Spectral.power)

let test_welch_white_noise_level () =
  let xs = white_noise 65_536 in
  let est = Spectral.welch ~segment:1024 xs in
  Alcotest.(check bool) "many segments" true (est.Spectral.segments > 50);
  check_close ~eps:0.03 "level"
    (1.0 /. (2.0 *. Float.pi))
    (Lrd_numerics.Array_ops.mean est.Spectral.power);
  (* Welch variance per bin is far below the raw periodogram's. *)
  let p = Spectral.periodogram xs in
  let rel_spread e =
    Lrd_numerics.Array_ops.variance e
    /. (Lrd_numerics.Array_ops.mean e ** 2.0)
  in
  Alcotest.(check bool) "variance reduced" true
    (rel_spread est.Spectral.power < rel_spread p.Spectral.power /. 4.0)

let test_welch_tracks_farima_spectrum () =
  let d = 0.3 in
  let xs = Lrd_trace.Farima.generate (rng ()) ~d ~n:262_144 in
  let est = Spectral.welch ~segment:2048 xs in
  (* Geometric-mean ratio to theory near one across low/mid bins. *)
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun j w ->
      if j < 200 then begin
        acc := !acc +. log (est.Spectral.power.(j) /. Spectral.farima_spectrum ~d w);
        incr count
      end)
    est.Spectral.frequencies;
  let ratio = exp (!acc /. float_of_int !count) in
  if ratio < 0.8 || ratio > 1.25 then
    Alcotest.failf "welch/theory ratio %.3f" ratio

let test_fgn_spectrum_integrates_to_variance () =
  (* Unit-variance fGn: 2 int_0^pi f(w) dw ~ 1. *)
  let m = 5_000 in
  let acc = ref 0.0 in
  for i = 1 to m do
    let w = Float.pi *. float_of_int i /. float_of_int m in
    acc := !acc +. (2.0 *. Spectral.fgn_spectrum ~hurst:0.8 w *. Float.pi /. float_of_int m)
  done;
  check_close ~eps:0.05 "variance" 1.0 !acc

let test_spectra_reject_bad_input () =
  Alcotest.check_raises "farima d"
    (Invalid_argument "Spectral.farima_spectrum: d must lie in [0, 0.5)")
    (fun () -> ignore (Spectral.farima_spectrum ~d:0.7 1.0));
  Alcotest.check_raises "fgn freq"
    (Invalid_argument "Spectral.fgn_spectrum: frequency must lie in (0, pi]")
    (fun () -> ignore (Spectral.fgn_spectrum ~hurst:0.8 4.0))

(* ------------------------------------------------------------------ *)
(* Batch means *)

let test_batch_means_iid_coverage () =
  (* On iid normal data the interval should cover the true mean with a
     comfortable margin (3 sigma of the half-width calibration). *)
  let data = white_noise 16_000 in
  let i = Batch_means.mean_interval ~batches:16 data in
  Alcotest.(check bool) "covers 0" true
    (Float.abs i.Batch_means.estimate <= 3.0 *. i.Batch_means.half_width);
  Alcotest.(check int) "batch count" 16 i.Batch_means.batches;
  Alcotest.(check int) "batch length" 1000 i.Batch_means.batch_length

let test_batch_means_wider_under_correlation () =
  (* AR(1) data with the same marginal variance must produce a wider
     interval than white noise. *)
  let r = rng () in
  let n = 32_768 in
  let rho = 0.95 in
  let innovation = sqrt (1.0 -. (rho *. rho)) in
  let ar = Array.make n 0.0 in
  for i = 1 to n - 1 do
    ar.(i) <-
      (rho *. ar.(i - 1))
      +. Lrd_rng.Sampler.normal r ~mean:0.0 ~std:innovation
  done;
  let iid = white_noise n in
  let wi = (Batch_means.mean_interval ar).Batch_means.half_width in
  let wn = (Batch_means.mean_interval iid).Batch_means.half_width in
  Alcotest.(check bool) "correlated wider" true (wi > 2.0 *. wn)

let test_batch_means_loss_ratio () =
  (* Constant ratio in every batch: exact estimate, zero width. *)
  let losses = Array.make 640 0.5 and arrivals = Array.make 640 2.0 in
  let i = Batch_means.loss_rate_interval ~batches:8 ~losses ~arrivals () in
  check_close "ratio" 0.25 i.Batch_means.estimate;
  check_close "no spread" 0.0 i.Batch_means.half_width

let test_batch_means_rejects_bad_input () =
  Alcotest.check_raises "too few batches"
    (Invalid_argument "Batch_means: need at least 2 batches") (fun () ->
      ignore (Batch_means.mean_interval ~batches:1 (white_noise 100)));
  Alcotest.check_raises "short batches"
    (Invalid_argument "Batch_means: need at least 2 samples per batch")
    (fun () -> ignore (Batch_means.mean_interval ~batches:16 (white_noise 20)))

(* ------------------------------------------------------------------ *)
(* Stationarity diagnostics *)

let test_surrogate_preserves_second_order () =
  let data = fgn 0.8 4_096 in
  let surrogate =
    Stationarity.phase_randomized_surrogate (rng ()) data
  in
  Alcotest.(check int) "length" (Array.length data) (Array.length surrogate);
  check_close ~eps:0.02 "mean preserved" (Descriptive.mean data +. 10.0)
    (Descriptive.mean surrogate +. 10.0);
  check_close ~eps:0.1 "variance preserved" (Descriptive.variance data)
    (Descriptive.variance surrogate);
  (* LRD survives phase randomization. *)
  let h = (Hurst.abry_veitch surrogate).Hurst.hurst in
  Alcotest.(check bool) "H survives" true (Float.abs (h -. 0.8) < 0.15)

let test_surrogate_differs_from_original () =
  let data = fgn 0.7 1_024 in
  let surrogate = Stationarity.phase_randomized_surrogate (rng ()) data in
  Alcotest.(check bool) "not identical" true (surrogate <> data)

let test_cusum_detects_level_shift () =
  let r = rng () in
  let n = 4_096 in
  let data =
    Array.init n (fun i ->
        Lrd_rng.Sampler.normal r ~mean:(if i < n / 2 then 0.0 else 1.0)
          ~std:1.0)
  in
  let result = Stationarity.cusum data in
  Alcotest.(check bool) "rejects" true
    (result.Stationarity.statistic > result.Stationarity.critical_5pct);
  Alcotest.(check bool) "locates the shift" true
    (abs (result.Stationarity.change_point - (n / 2)) < n / 10)

let test_cusum_accepts_white_noise () =
  let result = Stationarity.cusum (white_noise 8_192) in
  Alcotest.(check bool) "below critical" true
    (result.Stationarity.statistic < result.Stationarity.critical_5pct)

let test_split_half_shift () =
  let r = rng () in
  let n = 8_192 in
  let shifted =
    Array.init n (fun i ->
        Lrd_rng.Sampler.normal r ~mean:(if i < n / 2 then 0.0 else 2.0)
          ~std:1.0)
  in
  Alcotest.(check bool) "large on shift" true
    (Float.abs (Stationarity.split_half_mean_shift shifted) > 5.0);
  Alcotest.(check bool) "small on white noise" true
    (Float.abs (Stationarity.split_half_mean_shift (white_noise n)) < 4.0)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_acv_lag0_is_variance =
  QCheck.Test.make ~name:"autocovariance at lag 0 equals the variance"
    ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 8 200) (float_range (-5.0) 5.0)))
    (fun xs ->
      let a = Array.of_list xs in
      let acv = Autocorr.autocovariance a ~max_lag:0 in
      Float.abs (acv.(0) -. Descriptive.variance a)
      <= 1e-8 *. (1.0 +. acv.(0)))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 2 100) (float_range (-100.0) 100.0))
           (pair (float_range 0.0 1.0) (float_range 0.0 1.0))))
    (fun (xs, (p1, p2)) ->
      let a = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Descriptive.quantile a ~p:lo <= Descriptive.quantile a ~p:hi +. 1e-12)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "basics" `Quick test_descriptive_basics;
          Alcotest.test_case "quantiles" `Quick test_descriptive_quantiles;
          Alcotest.test_case "skew and kurtosis" `Quick
            test_descriptive_skew_kurtosis;
          Alcotest.test_case "regression exact" `Quick
            test_linear_regression_exact;
          Alcotest.test_case "regression rejects degenerate" `Quick
            test_linear_regression_rejects_degenerate;
        ] );
      ( "autocorr",
        [
          Alcotest.test_case "fft matches direct" `Quick
            test_autocovariance_fft_matches_direct;
          Alcotest.test_case "crossover both exact" `Quick
            test_autocovariance_crossover_both_exact;
          Alcotest.test_case "workspace bit-identical" `Quick
            test_autocorr_workspace_bit_identical;
          Alcotest.test_case "normalization" `Quick
            test_autocorrelation_normalized;
          Alcotest.test_case "AR(1) geometric decay" `Slow
            test_autocorrelation_of_ar1;
          Alcotest.test_case "rejects bad lag" `Quick
            test_autocorr_rejects_bad_lag;
        ] );
      ( "hurst",
        [
          Alcotest.test_case "aggregated variance on white noise" `Slow
            test_aggregated_variance_white_noise;
          Alcotest.test_case "aggregated variance on fGn" `Slow
            test_aggregated_variance_fgn;
          Alcotest.test_case "R/S on white noise" `Slow test_rs_white_noise;
          Alcotest.test_case "R/S on fGn" `Slow test_rs_fgn;
          Alcotest.test_case "GPH on white noise" `Slow test_gph_white_noise;
          Alcotest.test_case "GPH on fGn" `Slow test_gph_fgn;
          Alcotest.test_case "wavelet on white noise" `Slow
            test_abry_veitch_white_noise;
          Alcotest.test_case "wavelet on fGn" `Slow test_abry_veitch_fgn;
          Alcotest.test_case "wavelet Haar variant" `Slow
            test_abry_veitch_haar_variant;
          Alcotest.test_case "wavelet trend robustness (D4 vs Haar)" `Slow
            test_abry_veitch_trend_robustness;
          Alcotest.test_case "weighted regression" `Quick
            test_weighted_regression;
          Alcotest.test_case "logscale diagram structure" `Slow
            test_logscale_diagram_structure;
          Alcotest.test_case "logscale diagram slope" `Slow
            test_logscale_diagram_slope_matches_estimator;
          Alcotest.test_case "variance-time curve" `Slow
            test_variance_time_curve_shape;
          Alcotest.test_case "rejects short series" `Quick
            test_estimators_reject_short_series;
        ] );
      ( "whittle",
        [
          Alcotest.test_case "white noise" `Slow test_whittle_white_noise;
          Alcotest.test_case "fGn sweep" `Slow test_whittle_fgn;
          Alcotest.test_case "bandwidth control" `Quick
            test_whittle_bandwidth_control;
          Alcotest.test_case "rejects short series" `Quick
            test_whittle_rejects_short;
          Alcotest.test_case "workspace bit-identical" `Slow
            test_whittle_workspace_bit_identical;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "periodogram white noise" `Slow
            test_periodogram_white_noise_level;
          Alcotest.test_case "welch white noise" `Slow
            test_welch_white_noise_level;
          Alcotest.test_case "welch tracks FARIMA theory" `Slow
            test_welch_tracks_farima_spectrum;
          Alcotest.test_case "fGn spectrum integrates to variance" `Quick
            test_fgn_spectrum_integrates_to_variance;
          Alcotest.test_case "rejects bad input" `Quick
            test_spectra_reject_bad_input;
          Alcotest.test_case "workspace bit-identical" `Quick
            test_spectral_workspace_bit_identical;
        ] );
      ( "batch-means",
        [
          Alcotest.test_case "iid coverage" `Quick
            test_batch_means_iid_coverage;
          Alcotest.test_case "wider under correlation" `Slow
            test_batch_means_wider_under_correlation;
          Alcotest.test_case "loss ratio" `Quick test_batch_means_loss_ratio;
          Alcotest.test_case "rejects bad input" `Quick
            test_batch_means_rejects_bad_input;
        ] );
      ( "stationarity",
        [
          Alcotest.test_case "surrogate second order" `Slow
            test_surrogate_preserves_second_order;
          Alcotest.test_case "surrogate differs" `Quick
            test_surrogate_differs_from_original;
          Alcotest.test_case "cusum detects level shift" `Quick
            test_cusum_detects_level_shift;
          Alcotest.test_case "cusum accepts white noise" `Quick
            test_cusum_accepts_white_noise;
          Alcotest.test_case "split-half shift" `Quick test_split_half_shift;
        ] );
      ( "properties",
        qcheck [ prop_acv_lag0_is_variance; prop_quantile_monotone ] );
    ]
