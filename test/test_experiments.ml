(* Integration tests over the experiment layer: every registry entry
   must execute in quick mode, and the headline quantitative shapes of
   the paper's evaluation must hold on the computed surfaces. *)

open Lrd_experiments

let ctx = lazy (Data.create ~quick:true ())

(* Substring search, used to check rendered tables. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let render f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table rendering *)

let test_table_axis_value () =
  Alcotest.(check string) "inf" "inf" (Table.axis_value Float.infinity);
  Alcotest.(check string) "plain" "0.5" (Table.axis_value 0.5);
  Alcotest.(check string) "large" "1.23e+04" (Table.axis_value 12345.0)

let test_table_cell_value () =
  Alcotest.(check string) "zero" "0" (Table.cell_value 0.0);
  Alcotest.(check string) "sci" "1.230e-04" (Table.cell_value 1.23e-4)

let test_table_series_renders () =
  let s =
    {
      Table.title = "test series";
      xlabel = "x";
      ylabel = "y";
      points = [| (1.0, 0.5); (2.0, 0.25) |];
    }
  in
  let out = render (fun fmt -> Table.print_series fmt s) in
  Alcotest.(check bool) "has title" true (contains out "test series");
  Alcotest.(check bool) "has value" true (contains out "2.500e-01")

let test_table_surface_renders () =
  let s =
    {
      Table.title = "surf";
      xlabel = "cut";
      ylabel = "buf";
      zlabel = "loss";
      xs = [| 1.0; Float.infinity |];
      ys = [| 0.5 |];
      cells = [| [| 1e-3; 2e-3 |] |];
    }
  in
  let out = render (fun fmt -> Table.print_surface fmt s) in
  Alcotest.(check bool) "has inf column" true (contains out "inf");
  Alcotest.(check bool) "has cell" true (contains out "2.000e-03")

(* ------------------------------------------------------------------ *)
(* Data context *)

let test_data_traces_have_expected_scale () =
  let ctx = Lazy.force ctx in
  let mtv = Data.mtv ctx and bc = Data.bellcore ctx in
  Alcotest.(check bool) "mtv mean near 9.52" true
    (Float.abs (Lrd_trace.Trace.mean mtv -. 9.5222) < 0.5);
  Alcotest.(check bool) "bc mean near 1.5" true
    (Float.abs (Lrd_trace.Trace.mean bc -. 1.5) < 0.5)

let test_data_marginals_are_50_bin () =
  let ctx = Lazy.force ctx in
  Alcotest.(check bool) "mtv atoms" true
    (Lrd_dist.Marginal.size (Data.mtv_marginal ctx) <= 50);
  Alcotest.(check bool) "bc atoms" true
    (Lrd_dist.Marginal.size (Data.bc_marginal ctx) <= 50)

let test_data_theta_matches_epoch () =
  let ctx = Lazy.force ctx in
  (* Eq. 25 at infinite cutoff: theta = epoch * (alpha - 1). *)
  let alpha = Lrd_core.Model.alpha_of_hurst Data.mtv_hurst in
  let expected = Data.mtv_mean_epoch ctx *. (alpha -. 1.0) in
  Alcotest.(check (float 1e-9)) "theta" expected (Data.mtv_theta ctx)

let test_data_model_construction () =
  let ctx = Lazy.force ctx in
  let m = Data.mtv_model ctx ~cutoff:10.0 in
  Alcotest.(check bool) "mean rate" true
    (Float.abs
       (Lrd_core.Model.mean_rate m -. Lrd_trace.Trace.mean (Data.mtv ctx))
    < 1e-6);
  (* The covariance must vanish beyond the requested cutoff. *)
  Alcotest.(check (float 1e-12)) "cutoff respected" 0.0
    (Lrd_core.Model.covariance m 10.5)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_has_all_figures () =
  let expected =
    [
      "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
    ]
  in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing %s" id)
    expected;
  Alcotest.(check int) "figure count" 13 (List.length Registry.figures);
  Alcotest.(check bool) "has ablations" true
    (List.length Registry.ablations >= 4);
  Alcotest.(check bool) "has extensions" true
    (List.length Registry.extensions >= 5);
  (* Ids are unique across the whole registry. *)
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_rejects_unknown_id () =
  let ctx = Lazy.force ctx in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Registry.run: unknown id \"nope\"") (fun () ->
      Registry.run ~only:[ "nope" ] ctx Format.str_formatter)

let run_entry id =
  let ctx = Lazy.force ctx in
  match Registry.find id with
  | None -> Alcotest.failf "no entry %s" id
  | Some e -> render (fun fmt -> e.Registry.run ctx fmt)

(* Each figure executes and emits its title. *)
let test_every_entry_runs () =
  List.iter
    (fun e ->
      let out = run_entry e.Registry.id in
      if String.length out < 40 then
        Alcotest.failf "%s produced no meaningful output" e.Registry.id)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Headline shapes of the evaluation *)

let test_fig4_correlation_horizon_shape () =
  let ctx = Lazy.force ctx in
  let s = Fig04.compute ctx in
  let n_cut = Array.length s.Table.xs in
  Array.iteri
    (fun row _buffer ->
      let cells = s.Table.cells.(row) in
      (* Loss grows (weakly) with the cutoff... *)
      for col = 1 to n_cut - 1 do
        if cells.(col) < cells.(col - 1) *. 0.8 -. 1e-12 then
          Alcotest.failf "row %d: loss dropped sharply with cutoff" row
      done;
      (* ... and the step from the largest finite cutoff to infinity is
         small relative to the step from the smallest cutoff (the
         correlation horizon). *)
      let lo = cells.(0) and hi = cells.(n_cut - 1) in
      let penultimate = cells.(n_cut - 2) in
      if hi > 0.0 && penultimate > 0.0 then begin
        let tail_ratio = hi /. penultimate in
        let full_ratio = if lo > 0.0 then hi /. lo else Float.infinity in
        if not (tail_ratio < full_ratio || full_ratio < 2.0) then
          Alcotest.failf "row %d: no flattening (tail %.2f full %.2f)" row
            tail_ratio full_ratio
      end)
    s.Table.ys

let test_fig4_loss_decreases_with_buffer () =
  let ctx = Lazy.force ctx in
  let s = Fig04.compute ctx in
  Array.iteri
    (fun col _ ->
      for row = 1 to Array.length s.Table.ys - 1 do
        if
          s.Table.cells.(row).(col)
          > s.Table.cells.(row - 1).(col) *. 1.2 +. 1e-12
        then Alcotest.failf "col %d: loss grew with buffer" col
      done)
    s.Table.xs

let test_fig9_marginal_dominates () =
  let ctx = Lazy.force ctx in
  let _, mtv, bc = Fig09.compute ctx in
  (* At the largest cutoff the Bellcore marginal must lose orders of
     magnitude more than the video marginal (paper: Fig. 9). *)
  let n = Array.length mtv in
  Alcotest.(check bool) "orders of magnitude" true
    (bc.(n - 1) > 10.0 *. mtv.(n - 1))

let test_fig10_scaling_beats_hurst () =
  let ctx = Lazy.force ctx in
  let s = Fig10.compute ctx in
  (* Across the scaling axis (fix middle H row): max/min spans > 10x.
     Across the H axis (fix scaling = 1 column): span is smaller. *)
  let mid_row = Array.length s.Table.ys / 2 in
  let row = s.Table.cells.(mid_row) in
  let scaling_span =
    Lrd_numerics.Array_ops.max_element row
    /. Float.max 1e-300 (Lrd_numerics.Array_ops.min_element row)
  in
  (* Column where scaling = 1. *)
  let col_one = ref 0 in
  Array.iteri (fun i x -> if x = 1.0 then col_one := i) s.Table.xs;
  let col = Array.map (fun r -> r.(!col_one)) s.Table.cells in
  let hurst_span =
    Lrd_numerics.Array_ops.max_element col
    /. Float.max 1e-300 (Lrd_numerics.Array_ops.min_element col)
  in
  Alcotest.(check bool) "scaling spans more than H" true
    (scaling_span > hurst_span)

let test_fig11_superposition_reduces_loss () =
  let ctx = Lazy.force ctx in
  let s = Fig11.compute ctx in
  Array.iteri
    (fun row _ ->
      let cells = s.Table.cells.(row) in
      let n = Array.length cells in
      (* More streams, (weakly) less loss; the largest stream count cuts
         loss by at least an order of magnitude. *)
      Alcotest.(check bool) "endpoint drop" true
        (cells.(n - 1) < cells.(0) /. 10.0))
    s.Table.ys

let test_fig12_scaling_beats_buffering () =
  let ctx = Lazy.force ctx in
  let s = Fig12.compute ctx in
  (* Narrowing a = 1 -> 0.5 at the smallest buffer beats growing the
     buffer to its maximum at a = 1 (paper Section III, third set). *)
  let col_of v =
    let c = ref (-1) in
    Array.iteri (fun i x -> if x = v then c := i) s.Table.xs;
    !c
  in
  let a_half = col_of 0.5 and a_one = col_of 1.0 in
  let first_row = 0 and last_row = Array.length s.Table.ys - 1 in
  let narrow_small_buffer = s.Table.cells.(first_row).(a_half) in
  let wide_big_buffer = s.Table.cells.(last_row).(a_one) in
  Alcotest.(check bool) "marginal beats buffer" true
    (narrow_small_buffer < wide_big_buffer)

let test_fig5_bellcore_same_shapes () =
  let ctx = Lazy.force ctx in
  let s = Fig05.compute ctx in
  (* Loss grows (weakly) in the cutoff and falls (weakly) in the buffer. *)
  Array.iteri
    (fun row _ ->
      for col = 1 to Array.length s.Table.xs - 1 do
        if s.Table.cells.(row).(col) < s.Table.cells.(row).(col - 1) *. 0.8
        then Alcotest.failf "row %d col %d: dropped with cutoff" row col
      done)
    s.Table.ys;
  Array.iteri
    (fun col _ ->
      for row = 1 to Array.length s.Table.ys - 1 do
        if
          s.Table.cells.(row).(col)
          > s.Table.cells.(row - 1).(col) *. 1.2 +. 1e-12
        then Alcotest.failf "col %d: grew with buffer" col
      done)
    s.Table.xs

let test_fig13_bellcore_scaling_beats_buffering () =
  let ctx = Lazy.force ctx in
  let s = Fig13.compute ctx in
  let col_of v =
    let c = ref (-1) in
    Array.iteri (fun i x -> if x = v then c := i) s.Table.xs;
    !c
  in
  let a_half = col_of 0.5 and a_one = col_of 1.0 in
  let narrow_small = s.Table.cells.(0).(a_half) in
  let wide_big = s.Table.cells.(Array.length s.Table.ys - 1).(a_one) in
  Alcotest.(check bool) "marginal beats buffer (BC)" true
    (narrow_small < wide_big)

let test_fig11_loss_monotone_in_streams () =
  let ctx = Lazy.force ctx in
  let s = Fig11.compute ctx in
  Array.iteri
    (fun row _ ->
      let cells = s.Table.cells.(row) in
      for col = 1 to Array.length cells - 1 do
        if cells.(col) > cells.(col - 1) *. 1.2 +. 1e-12 then
          Alcotest.failf "row %d: loss grew with streams" row
      done)
    s.Table.ys

let test_fig9_series_monotone_in_cutoff () =
  let ctx = Lazy.force ctx in
  let _, mtv, bc = Fig09.compute ctx in
  let check name series =
    let n = Array.length series in
    for i = 1 to n - 1 do
      if series.(i) < series.(i - 1) *. 0.8 -. 1e-15 then
        Alcotest.failf "%s dropped at %d" name i
    done
  in
  check "mtv" mtv;
  check "bellcore" bc

let test_fig7_simulation_flattens_in_cutoff () =
  let ctx = Lazy.force ctx in
  let s = Fig07.compute ctx in
  (* At the smallest buffer (where a quick trace still sees losses), the
     loss at the largest finite block is within a small factor of the
     unshuffled loss. *)
  let row = s.Table.cells.(0) in
  let n = Array.length row in
  let unshuffled = row.(n - 1) in
  Alcotest.(check bool) "nonzero at smallest buffer" true (unshuffled > 0.0);
  let largest_finite = row.(n - 2) in
  Alcotest.(check bool) "flattened" true
    (largest_finite > unshuffled /. 3.0
    && largest_finite < unshuffled *. 3.0)

(* ------------------------------------------------------------------ *)
(* Sweep helpers *)

let test_sweep_grids () =
  let b = Sweep.buffers ~quick:true () in
  Alcotest.(check int) "quick buffers" 4 (Array.length b);
  Alcotest.(check bool) "ascending" true (b.(0) < b.(Array.length b - 1));
  let c = Sweep.cutoffs ~quick:false () in
  Alcotest.(check bool) "ends with inf" true
    (c.(Array.length c - 1) = Float.infinity)

let test_sweep_blocks_of_cutoffs () =
  let trace =
    Lrd_trace.Trace.create ~rates:(Array.make 100 1.0) ~slot:0.01
  in
  let blocks =
    Sweep.shuffle_blocks_of_cutoffs trace [| 0.001; 0.1; Float.infinity |]
  in
  (match blocks.(0) with
  | _, Some 1 -> ()
  | _ -> Alcotest.fail "sub-slot cutoff should clamp to one sample");
  (match blocks.(1) with
  | _, Some 10 -> ()
  | _ -> Alcotest.fail "0.1 s over 10 ms slots is 10 samples");
  match blocks.(2) with
  | _, None -> ()
  | _ -> Alcotest.fail "infinity maps to unshuffled"

let test_sweep_surface_layout () =
  let cells =
    Sweep.surface ~xs:[| 1.0; 2.0; 3.0 |] ~ys:[| 10.0; 20.0 |]
      ~f:(fun ~x ~y -> x +. y)
      ()
  in
  Alcotest.(check int) "rows" 2 (Array.length cells);
  Alcotest.(check int) "cols" 3 (Array.length cells.(0));
  Alcotest.(check (float 1e-12)) "cell" 23.0 cells.(1).(2)

(* ------------------------------------------------------------------ *)
(* Scheduled sweeps *)

(* A fig12-style cell: marginal scaling on the x axis, buffer on the y
   axis.  Scaling is mean-preserving, so the buffer in work units is
   constant along a row and the scheduler's neighbour warm-starts
   apply. *)
let fig12_cell ctx a ~buffer_seconds =
  let marginal =
    Lrd_dist.Marginal.scale ~clamp:true (Data.mtv_marginal ctx) ~factor:a
  in
  let model =
    Lrd_core.Model.of_hurst ~marginal ~hurst:Data.mtv_hurst
      ~theta:(Data.mtv_theta ctx) ~cutoff:Float.infinity
  in
  Lrd_core.Solver.State.create_utilization ~params:(Data.solver_params ctx)
    model ~utilization:Data.mtv_utilization ~buffer_seconds

let test_scheduled_row_certified_and_contains_cold () =
  let module S = Lrd_core.Solver in
  let ctx = Lazy.force ctx in
  let scalings = Sweep.scalings ~quick:true () in
  let buffer_seconds = 1.0 in
  (* Independent cold solves of the same row, one state per cell. *)
  let cold =
    Array.map
      (fun a ->
        let st = fig12_cell ctx a ~buffer_seconds in
        S.State.run st;
        S.State.result st)
      scalings
  in
  let warm =
    (Sweep.scheduled_surface ~xs:scalings ~ys:[| buffer_seconds |]
       ~state:(fun a b -> fig12_cell ctx a ~buffer_seconds:b)
       ()).(0)
  in
  let params = Data.solver_params ctx in
  Array.iteri
    (fun i (c : S.result) ->
      let w = warm.(i) in
      Alcotest.(check bool) "certified: lower <= upper" true
        (w.S.lower_bound <= w.S.upper_bound);
      (* Under the uniform policy every cell must converge to the
         solver's own gap target (or fall below the negligible-loss
         floor). *)
      Alcotest.(check bool) "converged" true w.S.converged;
      Alcotest.(check bool) "gap within policy target" true
        (w.S.upper_bound < params.S.negligible_loss
        || w.S.upper_bound -. w.S.lower_bound
           <= params.S.tolerance
              *. ((w.S.upper_bound +. w.S.lower_bound) /. 2.0)
              +. 1e-12);
      (* Both intervals bracket the same true loss rate. *)
      Alcotest.(check bool) "warm and cold intervals overlap" true
        (w.S.lower_bound <= c.S.upper_bound +. 1e-12
        && c.S.lower_bound <= w.S.upper_bound +. 1e-12);
      (* The cold point estimate is the midpoint of an interval that
         also contains the truth, so it sits at most half the cold
         width outside the warm interval. *)
      let slack = (0.5 *. (c.S.upper_bound -. c.S.lower_bound)) +. 1e-12 in
      Alcotest.(check bool) "warm interval contains cold estimate" true
        (c.S.loss >= w.S.lower_bound -. slack
        && c.S.loss <= w.S.upper_bound +. slack))
    cold

let test_scheduled_budget_stops_everywhere_certified () =
  let module S = Lrd_core.Solver in
  let ctx = Lazy.force ctx in
  let scalings = Sweep.scalings ~quick:true () in
  let buffers = Sweep.buffers ~quick:true ~max_seconds:5.0 () in
  let policy = { Sweep.contrast = None; iteration_budget = Some 200 } in
  let cells =
    Sweep.scheduled_surface ~policy ~slice:64 ~xs:scalings ~ys:buffers
      ~state:(fun a b -> fig12_cell ctx a ~buffer_seconds:b)
      ()
  in
  Array.iter
    (Array.iter (fun (r : S.result) ->
         Alcotest.(check bool) "budget-stopped cell still certified" true
           (r.S.lower_bound <= r.S.upper_bound
           && r.S.lower_bound >= 0.0
           && Float.is_finite r.S.upper_bound)))
    cells

let test_scheduled_matches_uniform_sweep_losses () =
  (* The scheduler under the uniform policy must land inside the same
     certified tolerance band as the classic cold sweep: compare the
     whole quick fig12 surface cell by cell via interval overlap. *)
  let module S = Lrd_core.Solver in
  let ctx = Lazy.force ctx in
  let scalings = Sweep.scalings ~quick:true () in
  let buffers = Sweep.buffers ~quick:true ~max_seconds:5.0 () in
  let scheduled =
    Sweep.scheduled_surface ~xs:scalings ~ys:buffers
      ~state:(fun a b -> fig12_cell ctx a ~buffer_seconds:b)
      ()
  in
  Array.iteri
    (fun iy row ->
      Array.iteri
        (fun ix (w : S.result) ->
          let st = fig12_cell ctx scalings.(ix) ~buffer_seconds:buffers.(iy) in
          S.State.run st;
          let c = S.State.result st in
          Alcotest.(check bool) "intervals overlap" true
            (w.S.lower_bound <= c.S.upper_bound +. 1e-12
            && c.S.lower_bound <= w.S.upper_bound +. 1e-12))
        row)
    scheduled

let test_scheduled_from_axis_certified () =
  (* The axis-derived contrast policy (bare `--gap-policy contrast`)
     must leave every cell certified: the cut can widen intervals below
     the window but never invalidate them, and cells inside the window
     still converge to the uniform target. *)
  let module S = Lrd_core.Solver in
  let ctx = Lazy.force ctx in
  let scalings = Sweep.scalings ~quick:true () in
  let buffers = Sweep.buffers ~quick:true ~max_seconds:5.0 () in
  let policy = { Sweep.contrast = Some Sweep.From_axis; iteration_budget = None } in
  let cells =
    Sweep.scheduled_surface ~policy ~xs:scalings ~ys:buffers
      ~state:(fun a b -> fig12_cell ctx a ~buffer_seconds:b)
      ()
  in
  let converged = ref 0 in
  Array.iter
    (Array.iter (fun (r : S.result) ->
         if r.S.converged then incr converged;
         Alcotest.(check bool) "from-axis cell certified" true
           (r.S.lower_bound <= r.S.upper_bound
           && r.S.lower_bound >= 0.0
           && Float.is_finite r.S.upper_bound)))
    cells;
  Alcotest.(check bool) "some cells converge" true (!converged > 0)

(* ------------------------------------------------------------------ *)
(* fig11_scale: superposition at production scale *)

let test_fig11_scale_population_partition () =
  List.iter
    (fun n ->
      let classes = Fig11_scale.population ~n in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 classes in
      Alcotest.(check int)
        (Printf.sprintf "counts sum to %d" n)
        n total;
      List.iter
        (fun (_, c) ->
          Alcotest.(check bool) "count nonnegative" true (c >= 0))
        classes)
    [ 1; 7; 10; 99; 1000; 12_345 ];
  Alcotest.check_raises "rejects n = 0"
    (Invalid_argument "Fig11_scale.population: n must be >= 1") (fun () ->
      ignore (Fig11_scale.population ~n:0))

let test_fig11_scale_loss_decreases_with_n () =
  (* The figure's whole point: at fixed utilization, multiplexing more
     sources decreases the certified loss along every Hurst row. *)
  let ctx = Lazy.force ctx in
  let s = Fig11_scale.compute ctx in
  Array.iteri
    (fun iy row ->
      Array.iteri
        (fun ix v ->
          if ix > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "loss(H=%g) nonincreasing at N=%g" s.Table.ys.(iy)
                 s.Table.xs.(ix))
              true
              (v <= row.(ix - 1) +. 1e-12))
        row)
    s.Table.cells

(* ------------------------------------------------------------------ *)
(* Shard: process-level sharding of the scheduled sweeps *)

let test_shard_spec_parsing () =
  (match Shard.parse_spec "3/8" with
  | Ok s ->
      Alcotest.(check int) "index" 3 s.Shard.index;
      Alcotest.(check int) "count" 8 s.Shard.count;
      Alcotest.(check string) "round-trips" "3/8" (Shard.spec_string s)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun raw ->
      match Shard.parse_spec raw with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" raw)
      | Error _ -> ())
    [ ""; "0/2"; "3/2"; "1/0"; "a/b"; "1"; "1/2/3"; "-1/2"; "2/-1"; "1/2 " ]

let test_shard_rows_partition () =
  (* Round-robin row ownership: every row of any grid height belongs to
     exactly one of the n shards. *)
  List.iter
    (fun count ->
      for iy = 0 to 24 do
        let owners =
          List.filter
            (fun index ->
              Shard.owns_row (Shard.compute { Shard.index; count }) ~iy)
            (List.init count (fun i -> i + 1))
        in
        Alcotest.(check int)
          (Printf.sprintf "row %d owners among %d shards" iy count)
          1 (List.length owners)
      done)
    [ 1; 2; 3; 5 ]

let test_shard_digest_semantics () =
  (* The params digest must ignore parallelism (shards may run at
     different job counts) but react to anything that changes figure
     values. *)
  let fields ~seed ~jobs =
    [
      ("seed", Lrd_obs.Json.Str seed);
      ("jobs", Lrd_obs.Json.Num (float_of_int jobs));
      ("quick", Lrd_obs.Json.Bool true);
    ]
  in
  let d = Shard.digest ~figure:"fig12" (fields ~seed:"a" ~jobs:1) in
  Alcotest.(check string) "jobs never changes the digest" d
    (Shard.digest ~figure:"fig12" (fields ~seed:"a" ~jobs:8));
  Alcotest.(check bool) "seed changes the digest" true
    (d <> Shard.digest ~figure:"fig12" (fields ~seed:"b" ~jobs:1));
  Alcotest.(check bool) "figure changes the digest" true
    (d <> Shard.digest ~figure:"fig4" (fields ~seed:"a" ~jobs:1))

(* One shard's slice of the quick fig12 grid, computed in-process:
   returns the cells-file JSON a worker would write plus the digest it
   was computed under. *)
let shard_slice ?seed { Shard.index; count } =
  let shard = Shard.compute { Shard.index; count } in
  let ctx = Data.create ?seed ~shard ~quick:true () in
  Fun.protect
    ~finally:(fun () -> Data.teardown ctx)
    (fun () ->
      ignore (Fig12.compute ctx);
      let digest =
        Shard.digest ~figure:"fig12" (Data.manifest_fields ctx)
      in
      (digest, Shard.cells_json shard ~figure:"fig12" ~digest))

let whole_fig12 =
  lazy
    (let ctx = Data.create ~quick:true () in
     Fun.protect
       ~finally:(fun () -> Data.teardown ctx)
       (fun () -> Fig12.compute ctx))

let prop_shard_merge_bitwise_identical =
  QCheck.Test.make ~name:"any k/n partition merges bitwise-identical"
    ~count:3
    (QCheck.make QCheck.Gen.(int_range 1 3))
    (fun count ->
      let whole = Lazy.force whole_fig12 in
      let slices =
        List.map
          (fun i -> shard_slice { Shard.index = i + 1; count })
          (List.init count Fun.id)
      in
      let digest = fst (List.hd slices) in
      match Shard.of_cells_json ~figure:"fig12" ~digest (List.map snd slices)
      with
      | Error e -> QCheck.Test.fail_report e
      | Ok (replay, per_shard) ->
          let total = List.fold_left (fun a (_, c) -> a + c) 0 per_shard in
          if total <> Array.length whole.Table.ys * Array.length whole.Table.xs
          then QCheck.Test.fail_report "per-shard cells do not cover the grid";
          let ctx = Data.create ~shard:replay ~quick:true () in
          let merged =
            Fun.protect
              ~finally:(fun () -> Data.teardown ctx)
              (fun () -> Fig12.compute ctx)
          in
          Array.for_all2
            (fun (wrow : float array) mrow ->
              Array.for_all2
                (fun w m -> Int64.bits_of_float w = Int64.bits_of_float m)
                wrow mrow)
            whole.Table.cells merged.Table.cells)

let test_shard_merge_rejections () =
  let digest, c1 = shard_slice { Shard.index = 1; count = 2 } in
  let _, c2 = shard_slice { Shard.index = 2; count = 2 } in
  let expect_error name ~digest cells =
    match Shard.of_cells_json ~figure:"fig12" ~digest cells with
    | Ok _ -> Alcotest.fail (name ^ ": merge should be refused")
    | Error _ -> ()
  in
  (* The valid pair merges — everything below must be a refusal. *)
  (match Shard.of_cells_json ~figure:"fig12" ~digest [ c1; c2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid pair refused: " ^ e));
  expect_error "mismatched digest" ~digest:"0123456789abcdef" [ c1; c2 ];
  expect_error "duplicate index" ~digest [ c1; c1 ];
  expect_error "missing shard" ~digest [ c1 ];
  expect_error "malformed cells" ~digest [ Lrd_obs.Json.Obj [] ];
  (* A shard of a different partition arity cannot join this set. *)
  let _, c13 = shard_slice { Shard.index = 1; count = 3 } in
  expect_error "mixed counts" ~digest [ c13; c2 ];
  (* A shard computed under a different seed carries a different params
     digest, so the set is refused — the CLI surfaces this as exit 2. *)
  let _, c2_seed = shard_slice ~seed:999L { Shard.index = 2; count = 2 } in
  expect_error "mismatched seed" ~digest [ c1; c2_seed ]

let () =
  Alcotest.run "experiments"
    [
      ( "table",
        [
          Alcotest.test_case "axis values" `Quick test_table_axis_value;
          Alcotest.test_case "cell values" `Quick test_table_cell_value;
          Alcotest.test_case "series renders" `Quick test_table_series_renders;
          Alcotest.test_case "surface renders" `Quick
            test_table_surface_renders;
        ] );
      ( "data",
        [
          Alcotest.test_case "trace scales" `Slow
            test_data_traces_have_expected_scale;
          Alcotest.test_case "50-bin marginals" `Slow
            test_data_marginals_are_50_bin;
          Alcotest.test_case "theta matches epoch" `Slow
            test_data_theta_matches_epoch;
          Alcotest.test_case "model construction" `Slow
            test_data_model_construction;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all figures present" `Quick
            test_registry_has_all_figures;
          Alcotest.test_case "rejects unknown id" `Slow
            test_registry_rejects_unknown_id;
          Alcotest.test_case "every entry runs (quick mode)" `Slow
            test_every_entry_runs;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "fig4: correlation horizon" `Slow
            test_fig4_correlation_horizon_shape;
          Alcotest.test_case "fig4: loss decreases with buffer" `Slow
            test_fig4_loss_decreases_with_buffer;
          Alcotest.test_case "fig9: marginal dominates" `Slow
            test_fig9_marginal_dominates;
          Alcotest.test_case "fig10: scaling beats Hurst" `Slow
            test_fig10_scaling_beats_hurst;
          Alcotest.test_case "fig11: superposition pays" `Slow
            test_fig11_superposition_reduces_loss;
          Alcotest.test_case "fig12: scaling beats buffering" `Slow
            test_fig12_scaling_beats_buffering;
          Alcotest.test_case "fig7: simulation flattens" `Slow
            test_fig7_simulation_flattens_in_cutoff;
          Alcotest.test_case "fig5: Bellcore shapes" `Slow
            test_fig5_bellcore_same_shapes;
          Alcotest.test_case "fig13: scaling beats buffering (BC)" `Slow
            test_fig13_bellcore_scaling_beats_buffering;
          Alcotest.test_case "fig11: monotone in streams" `Slow
            test_fig11_loss_monotone_in_streams;
          Alcotest.test_case "fig9: monotone in cutoff" `Slow
            test_fig9_series_monotone_in_cutoff;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "grids" `Quick test_sweep_grids;
          Alcotest.test_case "blocks of cutoffs" `Quick
            test_sweep_blocks_of_cutoffs;
          Alcotest.test_case "surface layout" `Quick test_sweep_surface_layout;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "warm row certified, contains cold" `Slow
            test_scheduled_row_certified_and_contains_cold;
          Alcotest.test_case "budget stop keeps certification" `Slow
            test_scheduled_budget_stops_everywhere_certified;
          Alcotest.test_case "matches uniform sweep" `Slow
            test_scheduled_matches_uniform_sweep_losses;
          Alcotest.test_case "from-axis contrast stays certified" `Slow
            test_scheduled_from_axis_certified;
        ] );
      ( "fig11_scale",
        [
          Alcotest.test_case "population partitions exactly" `Quick
            test_fig11_scale_population_partition;
          Alcotest.test_case "loss decreases with N" `Slow
            test_fig11_scale_loss_decreases_with_n;
        ] );
      ( "shard",
        [
          Alcotest.test_case "spec parsing" `Quick test_shard_spec_parsing;
          Alcotest.test_case "rows partition exactly" `Quick
            test_shard_rows_partition;
          Alcotest.test_case "digest semantics" `Quick
            test_shard_digest_semantics;
          QCheck_alcotest.to_alcotest prop_shard_merge_bitwise_identical;
          Alcotest.test_case "merge rejections" `Slow
            test_shard_merge_rejections;
        ] );
    ]
