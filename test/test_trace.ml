open Lrd_trace

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rng () = Lrd_rng.Rng.create ~seed:31415L

(* ------------------------------------------------------------------ *)
(* Trace basics *)

let test_trace_stats () =
  let t = Trace.create ~rates:[| 1.0; 3.0; 2.0 |] ~slot:0.5 in
  Alcotest.(check int) "length" 3 (Trace.length t);
  check_close "duration" 1.5 (Trace.duration t);
  check_close "mean" 2.0 (Trace.mean t);
  check_close "peak" 3.0 (Trace.peak t);
  check_close "work" 3.0 (Trace.total_work t);
  check_close "service for util 0.5" 4.0
    (Trace.service_rate_for_utilization t ~utilization:0.5)

let test_trace_scale_to_mean () =
  let t = Trace.create ~rates:[| 1.0; 3.0 |] ~slot:1.0 in
  let s = Trace.scale_to_mean t ~mean:10.0 in
  check_close "mean" 10.0 (Trace.mean s);
  check_close "ratio preserved" 3.0 (Trace.peak s /. 5.0)

let test_trace_sub () =
  let t = Trace.create ~rates:[| 1.0; 2.0; 3.0; 4.0 |] ~slot:1.0 in
  let s = Trace.sub t ~pos:1 ~len:2 in
  check_close "first" 2.0 s.Trace.rates.(0);
  Alcotest.(check int) "len" 2 (Trace.length s);
  Alcotest.check_raises "oob" (Invalid_argument "Trace.sub: slice out of bounds")
    (fun () -> ignore (Trace.sub t ~pos:3 ~len:2))

let test_trace_aggregate () =
  let t = Trace.create ~rates:[| 1.0; 3.0; 5.0; 7.0; 9.0 |] ~slot:0.5 in
  let a = Trace.aggregate t ~factor:2 in
  Alcotest.(check int) "blocks" 2 (Trace.length a);
  check_close "slot" 1.0 a.Trace.slot;
  check_close "block 0" 2.0 a.Trace.rates.(0);
  check_close "block 1" 6.0 a.Trace.rates.(1);
  check_close "work preserved per block" (Trace.mean a) 4.0;
  Alcotest.check_raises "too coarse"
    (Invalid_argument "Trace.aggregate: trace shorter than one block")
    (fun () -> ignore (Trace.aggregate t ~factor:6))

let test_trace_resample_conserves_work () =
  let rng2 = rng () in
  let t =
    Trace.create
      ~rates:(Array.init 999 (fun _ -> Lrd_rng.Rng.float rng2 *. 4.0))
      ~slot:0.01
  in
  (* Downsample to an incommensurate slot. *)
  let r = Trace.resample t ~slot:0.033 in
  check_close "slot" 0.033 r.Trace.slot;
  (* Work over the covered span matches the original's. *)
  let covered = Trace.duration r in
  let original_work =
    let full_slots = int_of_float (covered /. 0.01) in
    Trace.total_work (Trace.sub t ~pos:0 ~len:full_slots)
    +. (covered -. (float_of_int full_slots *. 0.01))
       *. t.Trace.rates.(full_slots)
  in
  check_close ~eps:1e-9 "work conserved" original_work (Trace.total_work r)

let test_trace_resample_identity () =
  let t = Trace.create ~rates:[| 1.0; 2.0; 3.0; 4.0 |] ~slot:0.5 in
  let r = Trace.resample t ~slot:0.5 in
  Alcotest.(check int) "length" 4 (Trace.length r);
  Array.iteri (fun i v -> check_close "rate" t.Trace.rates.(i) v) r.Trace.rates;
  (* Upsampling a constant trace keeps the level. *)
  let u = Trace.resample t ~slot:0.25 in
  check_close "upsampled first" 1.0 u.Trace.rates.(0);
  check_close "upsampled second" 1.0 u.Trace.rates.(1)

let test_trace_aggregate_variance_time () =
  (* White noise: aggregated variance decays like 1/factor. *)
  let r = rng () in
  let t =
    Trace.create
      ~rates:(Array.init 64_000 (fun _ -> Lrd_rng.Rng.float r))
      ~slot:1.0
  in
  let v1 = Trace.variance t in
  let v16 = Trace.variance (Trace.aggregate t ~factor:16) in
  check_close ~eps:0.15 "1/m decay" (v1 /. 16.0) v16

let test_trace_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Trace.create: empty trace")
    (fun () -> ignore (Trace.create ~rates:[||] ~slot:1.0));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Trace.create: rates must be finite and nonnegative")
    (fun () -> ignore (Trace.create ~rates:[| -1.0 |] ~slot:1.0));
  Alcotest.check_raises "bad slot"
    (Invalid_argument "Trace.create: slot must be positive") (fun () ->
      ignore (Trace.create ~rates:[| 1.0 |] ~slot:0.0))

(* ------------------------------------------------------------------ *)
(* fGn *)

let test_fgn_autocovariance_function () =
  (* White noise at H = 1/2. *)
  check_close "H=0.5 lag0" 1.0 (Fgn.autocovariance ~hurst:0.5 0);
  check_close "H=0.5 lag1" 0.0 (Fgn.autocovariance ~hurst:0.5 1);
  check_close "H=0.5 lag5" 0.0 (Fgn.autocovariance ~hurst:0.5 5);
  (* Positive correlation for H > 1/2, negative for H < 1/2. *)
  Alcotest.(check bool) "H=0.8 lag1 positive" true
    (Fgn.autocovariance ~hurst:0.8 1 > 0.0);
  Alcotest.(check bool) "H=0.3 lag1 negative" true
    (Fgn.autocovariance ~hurst:0.3 1 < 0.0);
  (* Symmetric in the lag. *)
  check_close "symmetry" (Fgn.autocovariance ~hurst:0.7 3)
    (Fgn.autocovariance ~hurst:0.7 (-3))

let empirical_acv xs lag =
  let n = Array.length xs in
  let m = Lrd_numerics.Array_ops.mean xs in
  let acc = ref 0.0 in
  for i = 0 to n - 1 - lag do
    acc := !acc +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
  done;
  !acc /. float_of_int n

let test_davies_harte_covariance_structure () =
  let hurst = 0.8 in
  let xs = Fgn.davies_harte (rng ()) ~hurst ~n:65_536 in
  check_close ~eps:0.05 "variance" 1.0 (Lrd_numerics.Array_ops.variance xs);
  (* The sample mean of LRD data converges like n^(H-1), much slower
     than sqrt n; shift by 1 to dodge relative-eps-at-zero. *)
  check_close ~eps:0.2 "mean" 1.0 (Lrd_numerics.Array_ops.mean xs +. 1.0);
  List.iter
    (fun lag ->
      check_close ~eps:0.12
        (Printf.sprintf "acv lag %d" lag)
        (Fgn.autocovariance ~hurst lag)
        (empirical_acv xs lag))
    [ 1; 2; 4; 8 ]

let test_hosking_matches_davies_harte_statistics () =
  let hurst = 0.7 and n = 2048 in
  let xs = Fgn.hosking (rng ()) ~hurst ~n in
  check_close ~eps:0.1 "variance" 1.0 (Lrd_numerics.Array_ops.variance xs);
  check_close ~eps:0.15 "acv lag 1" (Fgn.autocovariance ~hurst 1)
    (empirical_acv xs 1);
  check_close ~eps:0.2 "acv lag 4" (Fgn.autocovariance ~hurst 4)
    (empirical_acv xs 4)

let test_fgn_plan_bit_identical () =
  (* The plan caches the eigenvalue spectrum and scratch; its draws must
     be bitwise the ones davies_harte produces from the same rng state,
     including across plan reuse. *)
  let hurst = 0.8 and n = 1000 in
  let reference = Fgn.davies_harte (rng ()) ~hurst ~n in
  let plan = Fgn.Plan.make ~hurst ~n in
  Alcotest.(check int) "plan length" n (Fgn.Plan.length plan);
  Alcotest.(check bool) "generate bitwise" true
    (reference = Fgn.Plan.generate plan (rng ()));
  let dst = Array.make n Float.nan in
  Fgn.Plan.draw plan (rng ()) ~dst;
  Alcotest.(check bool) "draw into dst bitwise" true (reference = dst);
  (* Reuse: a second draw from the same plan with a fresh rng reproduces
     the stream exactly (the scratch carries no state between draws). *)
  Fgn.Plan.draw plan (rng ()) ~dst;
  Alcotest.(check bool) "reused plan bitwise" true (reference = dst);
  (* The per-domain arena hands back an equivalent plan. *)
  Alcotest.(check bool) "domain plan bitwise" true
    (reference = Fgn.Plan.generate (Fgn.domain_plan ~hurst ~n) (rng ()));
  Alcotest.check_raises "short dst"
    (Invalid_argument "Circulant.draw: dst too short") (fun () ->
      Fgn.Plan.draw plan (rng ()) ~dst:(Array.make (n - 1) 0.0))

let test_generators_match_target_autocovariance () =
  (* Both exact generators must agree with the closed-form target
     autocovariance when averaged over independent replications: this
     pins the generators to the model, not just to each other. *)
  let hurst = 0.75 and n = 512 and reps = 40 in
  let mean_acv generate lag =
    let acc = ref 0.0 in
    let r = rng () in
    for _ = 1 to reps do
      acc := !acc +. empirical_acv (generate r) lag
    done;
    !acc /. float_of_int reps
  in
  let plan = Fgn.Plan.make ~hurst ~n in
  List.iter
    (fun lag ->
      let target = Fgn.autocovariance ~hurst lag in
      check_close ~eps:0.12
        (Printf.sprintf "davies-harte lag %d" lag)
        target
        (mean_acv (fun r -> Fgn.Plan.generate plan r) lag);
      check_close ~eps:0.12
        (Printf.sprintf "hosking lag %d" lag)
        target
        (mean_acv (fun r -> Fgn.hosking r ~hurst ~n) lag))
    [ 0; 1; 4 ]

let test_fgn_rejects_bad_hurst () =
  Alcotest.check_raises "hurst 1" (Invalid_argument "Fgn: hurst must lie in (0, 1)")
    (fun () -> ignore (Fgn.davies_harte (rng ()) ~hurst:1.0 ~n:16));
  Alcotest.check_raises "n 0"
    (Invalid_argument "Fgn.davies_harte: n must be positive") (fun () ->
      ignore (Fgn.davies_harte (rng ()) ~hurst:0.5 ~n:0))

(* ------------------------------------------------------------------ *)
(* On/off aggregation *)

let test_onoff_mean_rate () =
  let src =
    Onoff.pareto_source ~peak_rate:2.0 ~mean_on:0.1 ~mean_off:0.3
      ~alpha_on:1.5 ~alpha_off:1.8
  in
  let sources = List.init 10 (fun _ -> src) in
  check_close ~eps:1e-12 "expected mean" 5.0 (Onoff.expected_mean_rate sources);
  let t = Onoff.generate (rng ()) ~sources ~slots:40_000 ~slot:0.05 in
  check_close ~eps:0.1 "empirical mean" 5.0 (Trace.mean t)

let test_onoff_rate_bounded_by_aggregate_peak () =
  let src =
    Onoff.pareto_source ~peak_rate:1.0 ~mean_on:0.1 ~mean_off:0.1
      ~alpha_on:1.5 ~alpha_off:1.5
  in
  let t = Onoff.generate (rng ()) ~sources:[ src; src; src ] ~slots:5_000 ~slot:0.02 in
  Alcotest.(check bool) "peak bounded" true (Trace.peak t <= 3.0 +. 1e-9)

let test_onoff_work_conservation () =
  (* Average of per-slot rates equals deposited work / duration.  Use
     light-tailed periods (alpha = 3.5, finite variance) so the sample
     duty cycle converges at sqrt-n speed. *)
  let src =
    Onoff.pareto_source ~peak_rate:1.5 ~mean_on:0.2 ~mean_off:0.2
      ~alpha_on:3.5 ~alpha_off:3.5
  in
  let t = Onoff.generate (rng ()) ~sources:[ src ] ~slots:50_000 ~slot:0.01 in
  check_close ~eps:0.08 "duty cycle" 0.75 (Trace.mean t)

let test_onoff_rejects_bad_input () =
  Alcotest.check_raises "no sources"
    (Invalid_argument "Onoff.generate: no sources") (fun () ->
      ignore (Onoff.generate (rng ()) ~sources:[] ~slots:10 ~slot:0.1))

(* ------------------------------------------------------------------ *)
(* Shuffling *)

let sorted_copy a =
  let c = Array.copy a in
  Array.sort Float.compare c;
  c

let test_external_shuffle_preserves_marginal () =
  let t =
    Trace.create ~rates:(Array.init 1000 (fun i -> float_of_int (i mod 37)))
      ~slot:1.0
  in
  let s = Shuffle.external_shuffle (rng ()) t ~block:10 in
  Alcotest.(check int) "length" 1000 (Trace.length s);
  Alcotest.(check bool) "same multiset" true
    (sorted_copy s.Trace.rates = sorted_copy t.Trace.rates)

let test_external_shuffle_preserves_blocks () =
  let t =
    Trace.create ~rates:(Array.init 100 (fun i -> float_of_int i)) ~slot:1.0
  in
  let s = Shuffle.external_shuffle (rng ()) t ~block:10 in
  (* Every aligned block of 10 in the shuffle must be a contiguous run
     starting at a multiple of 10 in the original. *)
  for b = 0 to 9 do
    let first = s.Trace.rates.(b * 10) in
    Alcotest.(check bool) "block start aligned" true
      (Float.rem first 10.0 = 0.0);
    for k = 1 to 9 do
      check_close "consecutive inside block" (first +. float_of_int k)
        s.Trace.rates.((b * 10) + k)
    done
  done

let test_external_shuffle_truncates_partial_block () =
  let t = Trace.create ~rates:(Array.init 25 float_of_int) ~slot:1.0 in
  let s = Shuffle.external_shuffle (rng ()) t ~block:10 in
  Alcotest.(check int) "truncated" 20 (Trace.length s)

let test_external_shuffle_kills_long_correlation () =
  (* Strongly correlated input: slow square wave. *)
  let n = 16_384 in
  let t =
    Trace.create
      ~rates:(Array.init n (fun i -> if i land 512 = 0 then 0.0 else 1.0))
      ~slot:1.0
  in
  let block = 16 in
  let s = Shuffle.external_shuffle (rng ()) t ~block in
  let acf =
    Lrd_stats.Autocorr.autocorrelation s.Trace.rates ~max_lag:(8 * block)
  in
  (* Beyond the block length correlation should be near zero; the square
     wave's raw correlation at these lags is near 1. *)
  Alcotest.(check bool) "beyond block" true (Float.abs acf.(4 * block) < 0.1);
  Alcotest.(check bool) "within block stays" true (acf.(4) > 0.5)

let test_internal_shuffle_preserves_block_order () =
  let t = Trace.create ~rates:(Array.init 100 float_of_int) ~slot:1.0 in
  let s = Shuffle.internal_shuffle (rng ()) t ~block:10 in
  Alcotest.(check int) "length kept" 100 (Trace.length s);
  (* Each aligned block holds the same multiset as the original block. *)
  for b = 0 to 9 do
    let orig = Array.sub t.Trace.rates (b * 10) 10 in
    let shuf = Array.sub s.Trace.rates (b * 10) 10 in
    Alcotest.(check bool) "block multiset" true
      (sorted_copy orig = sorted_copy shuf)
  done

let test_full_shuffle_preserves_marginal () =
  let t = Trace.create ~rates:(Array.init 512 float_of_int) ~slot:1.0 in
  let s = Shuffle.full_shuffle (rng ()) t in
  Alcotest.(check bool) "same multiset" true
    (sorted_copy s.Trace.rates = sorted_copy t.Trace.rates)

(* ------------------------------------------------------------------ *)
(* Histogram, epochs *)

let test_histogram_counts () =
  let t = Trace.create ~rates:[| 0.0; 0.1; 0.9; 1.0; 1.0 |] ~slot:1.0 in
  let h = Histogram.of_trace ~bins:2 t in
  Alcotest.(check int) "low bin" 2 h.Histogram.counts.(0);
  Alcotest.(check int) "high bin" 3 h.Histogram.counts.(1)

let test_histogram_marginal_preserves_mean () =
  let r = rng () in
  let rates = Array.init 5_000 (fun _ -> Lrd_rng.Rng.float r *. 7.0) in
  let t = Trace.create ~rates ~slot:0.01 in
  let m = Histogram.marginal_of_trace ~bins:50 t in
  check_close ~eps:1e-12 "mean preserved" (Trace.mean t)
    (Lrd_dist.Marginal.mean m);
  Alcotest.(check bool) "at most 50 atoms" true (Lrd_dist.Marginal.size m <= 50)

let test_histogram_bin_index_clamps () =
  let t = Trace.create ~rates:[| 0.0; 1.0 |] ~slot:1.0 in
  let h = Histogram.of_trace ~bins:4 t in
  Alcotest.(check int) "below" 0 (Histogram.bin_index h (-5.0));
  Alcotest.(check int) "above" 3 (Histogram.bin_index h 42.0)

let test_epoch_run_lengths () =
  (* Rates 0 0 0 5 5 9: runs of 3, 2, 1 with 10 bins over [0, 9]. *)
  let t = Trace.create ~rates:[| 0.0; 0.0; 0.0; 5.0; 5.0; 9.0 |] ~slot:0.5 in
  let h = Histogram.of_trace ~bins:10 t in
  let runs = Epochs.run_lengths h t in
  Alcotest.(check (array int)) "runs" [| 3; 2; 1 |] runs;
  check_close "mean run" 2.0 (Epochs.mean_run_length h t);
  check_close "mean epoch" 1.0 (Epochs.mean_epoch_duration ~bins:10 t)

let test_epoch_single_run () =
  let t = Trace.create ~rates:[| 2.0; 2.0; 2.0 |] ~slot:1.0 in
  check_close "whole trace" 3.0 (Epochs.mean_epoch_duration ~bins:5 t)

(* ------------------------------------------------------------------ *)
(* Synthetic traces *)

let test_video_trace_properties () =
  let t = Video.generate_short (rng ()) ~n:16_384 in
  Alcotest.(check int) "length" 16_384 (Trace.length t);
  check_close ~eps:0.05 "mean" 9.5222 (Trace.mean t);
  Alcotest.(check bool) "nonnegative" true
    (Array.for_all (fun r -> r >= 0.0) t.Trace.rates);
  (* The trace must show substantial positive short-lag correlation. *)
  let acf = Lrd_stats.Autocorr.autocorrelation t.Trace.rates ~max_lag:10 in
  Alcotest.(check bool) "lag-1 correlated" true (acf.(1) > 0.5)

let test_video_fgn_variant () =
  let params = { Video.mtv_like with frames = 8192 } in
  let t = Video.generate_fgn ~params (rng ()) in
  check_close ~eps:0.05 "mean" 9.5222 (Trace.mean t);
  check_close ~eps:0.2 "cv"
    (9.5222 *. 0.18)
    (Trace.std t)

let test_ethernet_trace_properties () =
  let t = Ethernet.generate_short (rng ()) ~n:20_000 in
  Alcotest.(check int) "length" 20_000 (Trace.length t);
  (* Expected mean: 30 sources x 1 Mb/s x 5% duty = 1.5. *)
  check_close ~eps:0.15 "mean" 1.5 (Trace.mean t);
  Alcotest.(check bool) "peak below aggregate" true (Trace.peak t <= 30.0)

(* ------------------------------------------------------------------ *)
(* FARIMA *)

let test_farima_autocorrelation_closed_form () =
  (* d = 0: white noise. *)
  check_close "white lag 1" 0.0 (Farima.autocorrelation ~d:0.0 1);
  (* rho(1) = d / (1 - d). *)
  check_close ~eps:1e-12 "lag 1" (0.3 /. 0.7) (Farima.autocorrelation ~d:0.3 1);
  (* Ratio recurrence at lag 2: rho(2) = rho(1) (1 + d)/(2 - d). *)
  check_close ~eps:1e-12 "lag 2"
    (0.3 /. 0.7 *. 1.3 /. 1.7)
    (Farima.autocorrelation ~d:0.3 2);
  check_close "symmetric" (Farima.autocorrelation ~d:0.3 5)
    (Farima.autocorrelation ~d:0.3 (-5))

let test_farima_variance () =
  check_close ~eps:1e-12 "d=0" 1.0 (Farima.variance ~d:0.0);
  (* Gamma(1-2d)/Gamma(1-d)^2 at d = 0.25: Gamma(.5)/Gamma(.75)^2. *)
  let expected =
    exp
      (Lrd_numerics.Special.log_gamma 0.5
      -. (2.0 *. Lrd_numerics.Special.log_gamma 0.75))
  in
  check_close ~eps:1e-12 "d=0.25" expected (Farima.variance ~d:0.25)

let test_farima_generation_statistics () =
  let d = 0.25 in
  let xs = Farima.generate (rng ()) ~d ~n:65_536 in
  check_close ~eps:0.1 "variance" (Farima.variance ~d)
    (Lrd_numerics.Array_ops.variance xs);
  (* Empirical acf at small lags matches the closed form. *)
  let acf = Lrd_stats.Autocorr.autocorrelation xs ~max_lag:4 in
  List.iter
    (fun k ->
      check_close ~eps:0.05
        (Printf.sprintf "acf %d" k)
        (Farima.autocorrelation ~d k)
        acf.(k))
    [ 1; 2; 4 ]

let test_farima_whittle_recovers_memory () =
  let d = 0.35 in
  let xs = Farima.generate (rng ()) ~d ~n:65_536 in
  let est = (Lrd_stats.Whittle.local_whittle xs).Lrd_stats.Whittle.memory in
  check_close ~eps:0.15 "memory" d est

let test_farima_rejects_bad_d () =
  Alcotest.check_raises "d too big"
    (Invalid_argument "Farima: d must lie in [0, 0.5)") (fun () ->
      ignore (Farima.generate (rng ()) ~d:0.5 ~n:16))

(* ------------------------------------------------------------------ *)
(* M/G/infinity *)

let test_mginf_mean_rate () =
  let params =
    {
      Mginf.arrival_rate = 40.0;
      mean_duration = 0.5;
      alpha = 1.6;
      rate_per_session = 0.2;
    }
  in
  check_close "expected mean" 4.0 (Mginf.mean_rate params);
  let t = Mginf.generate ~params (rng ()) ~slots:50_000 ~slot:0.02 in
  check_close ~eps:0.1 "empirical mean" 4.0 (Trace.mean t)

let test_mginf_hurst_mapping () =
  check_close "H of alpha 1.4" 0.8
    (Mginf.hurst { Mginf.default with alpha = 1.4 });
  check_close "H of alpha 1.8" 0.6
    (Mginf.hurst { Mginf.default with alpha = 1.8 })

let test_mginf_stationary_start () =
  (* The equilibrium initialization means the first and second halves of
     the trace have comparable means (no warm-up ramp). *)
  let t = Mginf.generate (rng ()) ~slots:40_000 ~slot:0.02 in
  let n = Trace.length t in
  let first = Trace.mean (Trace.sub t ~pos:0 ~len:(n / 2)) in
  let second = Trace.mean (Trace.sub t ~pos:(n / 2) ~len:(n / 2)) in
  (* LRD sample means wander; just exclude a systematic ramp. *)
  if first < 0.5 *. second then
    Alcotest.failf "warm-up ramp: %.3g vs %.3g" first second

let test_mginf_is_lrd () =
  let t = Mginf.generate (rng ()) ~slots:65_536 ~slot:0.02 in
  let h = (Lrd_stats.Hurst.aggregated_variance t.Trace.rates).hurst in
  Alcotest.(check bool) "H well above 0.5" true (h > 0.65)

let test_mginf_rejects_bad_params () =
  Alcotest.check_raises "alpha"
    (Invalid_argument "Mginf.generate: alpha must exceed 1") (fun () ->
      ignore
        (Mginf.generate
           ~params:{ Mginf.default with alpha = 1.0 }
           (rng ()) ~slots:10 ~slot:0.1))

(* ------------------------------------------------------------------ *)
(* I/O *)

let test_io_roundtrip () =
  let t = Video.generate_short (rng ()) ~n:64 in
  let path = Filename.temp_file "lrd_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save t ~path;
      let back = Trace_io.load ~path in
      check_close "slot" t.Trace.slot back.Trace.slot;
      Alcotest.(check int) "length" (Trace.length t) (Trace.length back);
      Array.iteri
        (fun i r -> check_close ~eps:1e-15 "rate" r back.Trace.rates.(i))
        t.Trace.rates)

let test_io_rejects_missing_header () =
  let path = Filename.temp_file "lrd_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1.0\n2.0\n";
      close_out oc;
      Alcotest.check_raises "missing header"
        (Failure "Trace_io.load: missing slot header") (fun () ->
          ignore (Trace_io.load ~path)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"external shuffle preserves the rate multiset"
    ~count:50
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 10 200) (float_range 0.0 10.0))
           (int_range 1 20)))
    (fun (rates, block) ->
      let t = Trace.create ~rates:(Array.of_list rates) ~slot:1.0 in
      let s = Shuffle.external_shuffle (rng ()) t ~block in
      (* The shuffle keeps exactly the leading whole blocks. *)
      let kept = Array.sub t.Trace.rates 0 (Trace.length s) in
      sorted_copy s.Trace.rates = sorted_copy kept)

let prop_fgn_plan_matches_davies_harte =
  (* Across the whole (hurst, n) parameter space, planned draws are the
     one-shot generator's draws, bit for bit, including odd n (where the
     embedding rounds up) and n = 1. *)
  QCheck.Test.make ~name:"Fgn.Plan draws are bitwise davies_harte draws"
    ~count:40
    (QCheck.make
       QCheck.Gen.(pair (float_range 0.05 0.95) (int_range 1 300)))
    (fun (hurst, n) ->
      let reference = Fgn.davies_harte (rng ()) ~hurst ~n in
      let plan = Fgn.Plan.make ~hurst ~n in
      reference = Fgn.Plan.generate plan (rng ())
      && reference = Fgn.Plan.generate plan (rng ()))

let prop_farima_plan_matches_generate =
  QCheck.Test.make ~name:"Farima.Plan draws are bitwise generate draws"
    ~count:25
    (QCheck.make
       QCheck.Gen.(pair (float_range 0.0 0.45) (int_range 1 300)))
    (fun (d, n) ->
      let reference = Farima.generate (rng ()) ~d ~n in
      let plan = Farima.Plan.make ~d ~n in
      reference = Farima.Plan.generate plan (rng ())
      && reference = Farima.Plan.generate plan (rng ()))

let prop_histogram_mass_one =
  QCheck.Test.make ~name:"histogram marginal probabilities sum to 1" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 500) (float_range 0.0 100.0)))
    (fun rates ->
      let t = Trace.create ~rates:(Array.of_list rates) ~slot:1.0 in
      let m = Histogram.marginal_of_trace ~bins:17 t in
      Float.abs (Lrd_numerics.Array_ops.sum (Lrd_dist.Marginal.probs m) -. 1.0)
      < 1e-9)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "scale to mean" `Quick test_trace_scale_to_mean;
          Alcotest.test_case "sub" `Quick test_trace_sub;
          Alcotest.test_case "aggregate" `Quick test_trace_aggregate;
          Alcotest.test_case "resample conserves work" `Quick
            test_trace_resample_conserves_work;
          Alcotest.test_case "resample identity and upsampling" `Quick
            test_trace_resample_identity;
          Alcotest.test_case "aggregate variance-time" `Slow
            test_trace_aggregate_variance_time;
          Alcotest.test_case "rejects bad input" `Quick
            test_trace_rejects_bad_input;
        ] );
      ( "fgn",
        [
          Alcotest.test_case "autocovariance function" `Quick
            test_fgn_autocovariance_function;
          Alcotest.test_case "davies-harte covariance" `Slow
            test_davies_harte_covariance_structure;
          Alcotest.test_case "hosking statistics" `Slow
            test_hosking_matches_davies_harte_statistics;
          Alcotest.test_case "plan bit-identical" `Quick
            test_fgn_plan_bit_identical;
          Alcotest.test_case "generators match target acv" `Slow
            test_generators_match_target_autocovariance;
          Alcotest.test_case "rejects bad hurst" `Quick
            test_fgn_rejects_bad_hurst;
        ] );
      ( "onoff",
        [
          Alcotest.test_case "mean rate" `Slow test_onoff_mean_rate;
          Alcotest.test_case "bounded by peak" `Quick
            test_onoff_rate_bounded_by_aggregate_peak;
          Alcotest.test_case "duty cycle" `Quick test_onoff_work_conservation;
          Alcotest.test_case "rejects bad input" `Quick
            test_onoff_rejects_bad_input;
        ] );
      ( "shuffle",
        [
          Alcotest.test_case "external preserves marginal" `Quick
            test_external_shuffle_preserves_marginal;
          Alcotest.test_case "external preserves blocks" `Quick
            test_external_shuffle_preserves_blocks;
          Alcotest.test_case "external truncates partial block" `Quick
            test_external_shuffle_truncates_partial_block;
          Alcotest.test_case "external kills long correlation" `Quick
            test_external_shuffle_kills_long_correlation;
          Alcotest.test_case "internal preserves block order" `Quick
            test_internal_shuffle_preserves_block_order;
          Alcotest.test_case "full shuffle preserves marginal" `Quick
            test_full_shuffle_preserves_marginal;
        ] );
      ( "histogram-epochs",
        [
          Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
          Alcotest.test_case "marginal preserves mean" `Quick
            test_histogram_marginal_preserves_mean;
          Alcotest.test_case "bin index clamps" `Quick
            test_histogram_bin_index_clamps;
          Alcotest.test_case "epoch run lengths" `Quick test_epoch_run_lengths;
          Alcotest.test_case "single run" `Quick test_epoch_single_run;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "video trace" `Slow test_video_trace_properties;
          Alcotest.test_case "video fGn variant" `Slow test_video_fgn_variant;
          Alcotest.test_case "ethernet trace" `Slow
            test_ethernet_trace_properties;
        ] );
      ( "farima",
        [
          Alcotest.test_case "acf closed form" `Quick
            test_farima_autocorrelation_closed_form;
          Alcotest.test_case "variance" `Quick test_farima_variance;
          Alcotest.test_case "generation statistics" `Slow
            test_farima_generation_statistics;
          Alcotest.test_case "whittle recovers d" `Slow
            test_farima_whittle_recovers_memory;
          Alcotest.test_case "rejects bad d" `Quick test_farima_rejects_bad_d;
        ] );
      ( "mginf",
        [
          Alcotest.test_case "mean rate" `Slow test_mginf_mean_rate;
          Alcotest.test_case "hurst mapping" `Quick test_mginf_hurst_mapping;
          Alcotest.test_case "stationary start" `Slow
            test_mginf_stationary_start;
          Alcotest.test_case "long-range dependent" `Slow test_mginf_is_lrd;
          Alcotest.test_case "rejects bad params" `Quick
            test_mginf_rejects_bad_params;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "rejects missing header" `Quick
            test_io_rejects_missing_header;
        ] );
      ( "properties",
        qcheck
          [
            prop_shuffle_preserves_multiset;
            prop_fgn_plan_matches_davies_harte;
            prop_farima_plan_matches_generate;
            prop_histogram_mass_one;
          ] );
    ]
