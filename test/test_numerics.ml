open Lrd_numerics

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rng_state = ref 123456789

let next_float () =
  (* Tiny deterministic LCG for test data (keeps tests seed-stable). *)
  rng_state := (!rng_state * 1103515245) + 12345;
  float_of_int (!rng_state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* ------------------------------------------------------------------ *)
(* FFT *)

let test_power_of_two () =
  Alcotest.(check bool) "1" true (Fft.is_power_of_two 1);
  Alcotest.(check bool) "2" true (Fft.is_power_of_two 2);
  Alcotest.(check bool) "1024" true (Fft.is_power_of_two 1024);
  Alcotest.(check bool) "0" false (Fft.is_power_of_two 0);
  Alcotest.(check bool) "3" false (Fft.is_power_of_two 3);
  Alcotest.(check bool) "-4" false (Fft.is_power_of_two (-4));
  Alcotest.(check int) "next 1" 1 (Fft.next_power_of_two 0);
  Alcotest.(check int) "next 5" 8 (Fft.next_power_of_two 5);
  Alcotest.(check int) "next 8" 8 (Fft.next_power_of_two 8)

let test_fft_matches_naive_dft () =
  let n = 64 in
  let re = Array.init n (fun _ -> next_float () -. 0.5) in
  let im = Array.init n (fun _ -> next_float () -. 0.5) in
  let expect_re, expect_im = Fft.dft_naive ~re ~im in
  Fft.forward ~re ~im;
  for k = 0 to n - 1 do
    check_close ~eps:1e-10 (Printf.sprintf "re[%d]" k) expect_re.(k) re.(k);
    check_close ~eps:1e-10 (Printf.sprintf "im[%d]" k) expect_im.(k) im.(k)
  done

let test_fft_roundtrip () =
  let n = 256 in
  let re = Array.init n (fun _ -> next_float ()) in
  let im = Array.init n (fun _ -> next_float ()) in
  let orig_re = Array.copy re and orig_im = Array.copy im in
  Fft.forward ~re ~im;
  Fft.inverse ~re ~im;
  for k = 0 to n - 1 do
    check_close ~eps:1e-12 "roundtrip re" orig_re.(k) re.(k);
    check_close ~eps:1e-12 "roundtrip im" orig_im.(k) im.(k)
  done

let test_fft_impulse () =
  (* The transform of a unit impulse is all ones. *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.forward ~re ~im;
  Array.iter (fun v -> check_close "impulse re" 1.0 v) re;
  Array.iter (fun v -> check_close "impulse im" 0.0 v) im

let test_fft_constant () =
  (* The transform of a constant has all energy in bin 0. *)
  let n = 32 in
  let re = Array.make n 2.5 and im = Array.make n 0.0 in
  Fft.forward ~re ~im;
  check_close "dc" (2.5 *. float_of_int n) re.(0);
  for k = 1 to n - 1 do
    check_close "zero bin re" 0.0 re.(k);
    check_close "zero bin im" 0.0 im.(k)
  done

let test_fft_parseval () =
  let n = 128 in
  let re = Array.init n (fun _ -> next_float () -. 0.5) in
  let im = Array.make n 0.0 in
  let time_energy =
    Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 re
  in
  Fft.forward ~re ~im;
  let freq_energy = ref 0.0 in
  for k = 0 to n - 1 do
    freq_energy := !freq_energy +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
  done;
  check_close ~eps:1e-11 "parseval" time_energy
    (!freq_energy /. float_of_int n)

let test_fft_rejects_bad_input () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fft: re and im must have the same length") (fun () ->
      Fft.forward ~re:(Array.make 4 0.0) ~im:(Array.make 8 0.0));
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft: length must be a power of two") (fun () ->
      Fft.forward ~re:(Array.make 12 0.0) ~im:(Array.make 12 0.0))

let test_fft_plan_matches_naive_dft () =
  (* The in-place planned transform against the O(n^2) reference, at
     every power-of-two size the solver touches. *)
  List.iter
    (fun n ->
      let plan = Fft.make_plan n in
      Alcotest.(check int) "plan size" n (Fft.size plan);
      let re = Array.init n (fun _ -> next_float () -. 0.5) in
      let im = Array.init n (fun _ -> next_float () -. 0.5) in
      let expect_re, expect_im = Fft.dft_naive ~re ~im in
      Fft.forward_ip plan ~re ~im;
      for k = 0 to n - 1 do
        check_close ~eps:1e-9 (Printf.sprintf "n=%d re[%d]" n k) expect_re.(k)
          re.(k);
        check_close ~eps:1e-9 (Printf.sprintf "n=%d im[%d]" n k) expect_im.(k)
          im.(k)
      done)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let test_fft_plan_roundtrip () =
  let n = 512 in
  let plan = Fft.make_plan n in
  let re = Array.init n (fun _ -> next_float ()) in
  let im = Array.init n (fun _ -> next_float ()) in
  let orig_re = Array.copy re and orig_im = Array.copy im in
  Fft.forward_ip plan ~re ~im;
  Fft.inverse_ip plan ~re ~im;
  for k = 0 to n - 1 do
    check_close ~eps:1e-12 "roundtrip re" orig_re.(k) re.(k);
    check_close ~eps:1e-12 "roundtrip im" orig_im.(k) im.(k)
  done

let test_fft_plan_rejects_bad_input () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft.make_plan: size must be a power of two") (fun () ->
      ignore (Fft.make_plan 12));
  let plan = Fft.make_plan 8 in
  Alcotest.check_raises "wrong buffer size"
    (Invalid_argument "Fft: array length does not match the plan size")
    (fun () ->
      Fft.forward_ip plan ~re:(Array.make 4 0.0) ~im:(Array.make 4 0.0))

(* ------------------------------------------------------------------ *)
(* Convolution *)

let test_convolution_small_exact () =
  let c = Convolution.direct [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "length" 4 (Array.length c);
  check_close "c0" 3.0 c.(0);
  check_close "c1" 10.0 c.(1);
  check_close "c2" 13.0 c.(2);
  check_close "c3" 10.0 c.(3)

let test_convolution_fft_matches_direct () =
  let a = Array.init 37 (fun _ -> next_float () -. 0.3) in
  let b = Array.init 101 (fun _ -> next_float () -. 0.6) in
  let d = Convolution.direct a b and f = Convolution.fft a b in
  Alcotest.(check int) "length" (Array.length d) (Array.length f);
  Array.iteri (fun i v -> check_close ~eps:1e-10 "cell" v f.(i)) d

let test_convolution_identity () =
  let a = Array.init 20 (fun _ -> next_float ()) in
  let c = Convolution.fft a [| 1.0 |] in
  Array.iteri (fun i v -> check_close "identity" a.(i) v) c

let test_convolution_commutative () =
  let a = Array.init 13 (fun _ -> next_float ()) in
  let b = Array.init 29 (fun _ -> next_float ()) in
  let ab = Convolution.auto a b and ba = Convolution.auto b a in
  Array.iteri (fun i v -> check_close ~eps:1e-10 "commute" v ba.(i)) ab

let test_convolution_preserves_mass () =
  (* Convolution of pmfs is a pmf. *)
  let a = Array.init 50 (fun _ -> next_float ()) in
  let b = Array.init 64 (fun _ -> next_float ()) in
  Array_ops.normalize a;
  Array_ops.normalize b;
  let c = Convolution.fft a b in
  check_close ~eps:1e-10 "mass" 1.0 (Array_ops.sum c)

let test_convolution_plan_matches () =
  let kernel = Array.init 201 (fun _ -> next_float ()) in
  let plan = Convolution.make_plan ~kernel ~max_signal:100 in
  let signal = Array.init 77 (fun _ -> next_float ()) in
  let expected = Convolution.direct signal kernel in
  let got = Convolution.convolve_plan plan signal in
  Alcotest.(check int) "length" (Array.length expected) (Array.length got);
  Array.iteri (fun i v -> check_close ~eps:1e-10 "plan cell" v got.(i)) expected

let test_convolution_plan_rejects_long_signal () =
  let plan = Convolution.make_plan ~kernel:[| 1.0 |] ~max_signal:4 in
  Alcotest.check_raises "too long"
    (Invalid_argument "Convolution.convolve_plan: signal longer than plan")
    (fun () -> ignore (Convolution.convolve_plan plan (Array.make 5 0.0)))

let test_convolution_direct_into_matches () =
  let a = Array.init 33 (fun _ -> next_float () -. 0.4) in
  let b = Array.init 65 (fun _ -> next_float () -. 0.2) in
  let expected = Convolution.direct a b in
  (* An oversized, dirty destination: only the prefix is the result. *)
  let dst = Array.make 128 Float.nan in
  Convolution.direct_into a b ~dst;
  Array.iteri
    (fun i v -> check_close ~eps:1e-12 "direct_into cell" v dst.(i))
    expected;
  Alcotest.check_raises "dst too short"
    (Invalid_argument "Convolution.direct_into: dst too short") (fun () ->
      Convolution.direct_into a b ~dst:(Array.make 10 0.0))

let test_convolution_execute_into_matches () =
  let kernel = Array.init 129 (fun _ -> next_float ()) in
  let plan = Convolution.make_plan ~kernel ~max_signal:64 in
  let signal = Array.init 64 (fun _ -> next_float ()) in
  let expected = Convolution.direct signal kernel in
  let dst = Array.make (Array.length expected) 0.0 in
  Convolution.execute plan signal ~dst;
  Array.iteri
    (fun i v -> check_close ~eps:1e-10 "execute cell" v dst.(i))
    expected;
  Alcotest.check_raises "dst too short"
    (Invalid_argument "Convolution.execute: dst too short") (fun () ->
      Convolution.execute plan signal ~dst:(Array.make 10 0.0))

let test_convolution_dual_matches_direct () =
  (* One packed transform must reproduce two independent schoolbook
     convolutions, at the exact shapes the Lindley step uses. *)
  let m = 48 in
  let ka = Array.init ((2 * m) + 1) (fun _ -> next_float () -. 0.5) in
  let kb = Array.init ((2 * m) + 1) (fun _ -> next_float () -. 0.5) in
  let plan =
    Convolution.make_dual_plan ~kernel_a:ka ~kernel_b:kb ~max_signal:(m + 1)
  in
  let a = Array.init (m + 1) (fun _ -> next_float ()) in
  let b = Array.init (m + 1) (fun _ -> next_float ()) in
  let expect_a = Convolution.direct a ka in
  let expect_b = Convolution.direct b kb in
  let dst_a = Array.make (Array.length expect_a) 0.0 in
  let dst_b = Array.make (Array.length expect_b) 0.0 in
  Convolution.execute_dual plan ~a ~b ~dst_a ~dst_b;
  Array.iteri
    (fun i v -> check_close ~eps:1e-10 "channel a" v dst_a.(i))
    expect_a;
  Array.iteri
    (fun i v -> check_close ~eps:1e-10 "channel b" v dst_b.(i))
    expect_b

let test_convolution_dual_different_kernel_lengths () =
  (* The two channels may carry kernels of different lengths. *)
  let ka = Array.init 7 (fun _ -> next_float ()) in
  let kb = Array.init 19 (fun _ -> next_float ()) in
  let plan = Convolution.make_dual_plan ~kernel_a:ka ~kernel_b:kb ~max_signal:10 in
  let a = Array.init 10 (fun _ -> next_float ()) in
  let b = Array.init 5 (fun _ -> next_float ()) in
  let expect_a = Convolution.direct a ka in
  let expect_b = Convolution.direct b kb in
  let dst_a = Array.make (Array.length expect_a) 0.0 in
  let dst_b = Array.make (Array.length expect_b) 0.0 in
  Convolution.execute_dual plan ~a ~b ~dst_a ~dst_b;
  Array.iteri
    (fun i v -> check_close ~eps:1e-10 "channel a" v dst_a.(i))
    expect_a;
  Array.iteri
    (fun i v -> check_close ~eps:1e-10 "channel b" v dst_b.(i))
    expect_b

let test_convolution_dual_rejects_bad_input () =
  let plan =
    Convolution.make_dual_plan ~kernel_a:[| 1.0 |] ~kernel_b:[| 1.0 |]
      ~max_signal:4
  in
  let ok = Array.make 4 0.0 in
  Alcotest.check_raises "signal too long"
    (Invalid_argument "Convolution.execute_dual: signal longer than plan")
    (fun () ->
      Convolution.execute_dual plan ~a:(Array.make 5 0.0) ~b:ok ~dst_a:ok
        ~dst_b:ok);
  Alcotest.check_raises "dst too short"
    (Invalid_argument "Convolution.execute_dual: dst too short") (fun () ->
      Convolution.execute_dual plan ~a:ok ~b:ok ~dst_a:(Array.make 1 0.0)
        ~dst_b:ok)

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_gamma_known_values () =
  check_close "lgamma 1" 0.0 (Special.log_gamma 1.0);
  check_close "lgamma 2" 0.0 (Special.log_gamma 2.0);
  check_close ~eps:1e-12 "lgamma 5" (log 24.0) (Special.log_gamma 5.0);
  check_close ~eps:1e-12 "lgamma 0.5" (log (sqrt Float.pi))
    (Special.log_gamma 0.5);
  (* Recurrence Gamma(x+1) = x Gamma(x). *)
  let x = 3.7 in
  check_close ~eps:1e-12 "recurrence"
    (Special.log_gamma x +. log x)
    (Special.log_gamma (x +. 1.0))

let test_gamma_p_q_complement () =
  List.iter
    (fun (a, x) ->
      check_close ~eps:1e-12 "P+Q=1" 1.0
        (Special.gamma_p ~a ~x +. Special.gamma_q ~a ~x))
    [ (0.5, 0.3); (1.0, 1.0); (2.5, 7.0); (10.0, 3.0); (10.0, 30.0) ]

let test_gamma_p_exponential_case () =
  (* P(1, x) = 1 - exp(-x). *)
  List.iter
    (fun x ->
      check_close ~eps:1e-12 "P(1,x)"
        (1.0 -. exp (-.x))
        (Special.gamma_p ~a:1.0 ~x))
    [ 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_erf_known_values () =
  check_close "erf 0" 0.0 (Special.erf 0.0);
  (* Reference values from Abramowitz & Stegun. *)
  check_close ~eps:1e-7 "erf 0.5" 0.5204998778 (Special.erf 0.5);
  check_close ~eps:1e-7 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~eps:1e-7 "erf 2" 0.9953222650 (Special.erf 2.0);
  check_close ~eps:1e-9 "erf -1" (-0.8427007929) (Special.erf (-1.0) +. 0.0)

let test_erfc_tail_no_cancellation () =
  (* erfc(5) ~ 1.537e-12; a naive 1 - erf(5) loses all digits. *)
  let v = Special.erfc 5.0 in
  check_close ~eps:1e-6 "erfc 5" 1.5374597944280351e-12 v

let test_erf_inv_roundtrip () =
  List.iter
    (fun p ->
      check_close ~eps:1e-10 "roundtrip" p (Special.erf (Special.erf_inv p)))
    [ -0.999; -0.9; -0.5; -0.1; 0.0; 0.1; 0.5; 0.9; 0.99; 0.9999 ]

let test_normal_cdf_quantile () =
  check_close ~eps:1e-12 "cdf 0" 0.5 (Special.normal_cdf 0.0);
  check_close ~eps:1e-9 "cdf 1.96" 0.9750021048517795
    (Special.normal_cdf 1.96);
  List.iter
    (fun p ->
      check_close ~eps:1e-10 "quantile roundtrip" p
        (Special.normal_cdf (Special.normal_quantile p)))
    [ 1e-8; 1e-4; 0.025; 0.5; 0.8413; 0.999; 1.0 -. 1e-8 ]

let test_special_rejects_bad_input () =
  Alcotest.check_raises "erf_inv 1"
    (Invalid_argument "Special.erf_inv: argument must lie in (-1, 1)")
    (fun () -> ignore (Special.erf_inv 1.0));
  Alcotest.check_raises "quantile 0"
    (Invalid_argument "Special.normal_quantile: argument must lie in (0, 1)")
    (fun () -> ignore (Special.normal_quantile 0.0));
  Alcotest.check_raises "gamma_p a<0"
    (Invalid_argument "Special.gamma_p: a must be positive") (fun () ->
      ignore (Special.gamma_p ~a:(-1.0) ~x:1.0))

(* ------------------------------------------------------------------ *)
(* Summation *)

let test_kahan_hard_case () =
  (* 1 + 1e16 - 1e16 = 1 exactly with compensation. *)
  let a = [| 1.0; 1e16; -1e16 |] in
  check_close "kahan" 1.0 (Summation.kahan a)

let test_kahan_many_small () =
  let n = 1_000_000 in
  let a = Array.make n 0.1 in
  check_close ~eps:1e-12 "many small" (float_of_int n *. 0.1)
    (Summation.kahan a)

let test_kahan_slice () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "slice" 5.0 (Summation.kahan_slice a ~pos:1 ~len:2);
  Alcotest.check_raises "oob"
    (Invalid_argument "Summation.kahan_slice: slice out of bounds") (fun () ->
      ignore (Summation.kahan_slice a ~pos:2 ~len:3))

let test_accumulator_streaming () =
  let acc = Summation.create () in
  for _ = 1 to 1000 do
    Summation.add acc 0.001
  done;
  check_close ~eps:1e-13 "stream" 1.0 (Summation.total acc)

(* ------------------------------------------------------------------ *)
(* Quadrature *)

let test_simpson_polynomial_exact () =
  (* Simpson is exact on cubics. *)
  let f x = (2.0 *. x *. x *. x) -. x +. 3.0 in
  let exact = (2.0 /. 4.0 *. 16.0) -. (4.0 /. 2.0) +. (3.0 *. 2.0) in
  check_close ~eps:1e-12 "cubic" exact
    (Quadrature.simpson ~f ~a:0.0 ~b:2.0 ~eps:1e-12)

let test_simpson_transcendental () =
  check_close ~eps:1e-10 "sin" 2.0
    (Quadrature.simpson ~f:sin ~a:0.0 ~b:Float.pi ~eps:1e-12);
  check_close ~eps:1e-10 "exp" (exp 1.0 -. 1.0)
    (Quadrature.simpson ~f:exp ~a:0.0 ~b:1.0 ~eps:1e-12)

let test_simpson_reversed_bounds () =
  check_close ~eps:1e-10 "reversed" (-2.0)
    (Quadrature.simpson ~f:sin ~a:Float.pi ~b:0.0 ~eps:1e-12)

let test_simpson_to_infinity () =
  (* int_0^inf e^-t dt = 1. *)
  check_close ~eps:1e-8 "exp tail" 1.0
    (Quadrature.simpson_to_infinity ~f:(fun t -> exp (-.t)) ~a:0.0 ~eps:1e-10);
  (* int_1^inf t^-2 dt = 1. *)
  check_close ~eps:1e-6 "power tail" 1.0
    (Quadrature.simpson_to_infinity ~f:(fun t -> 1.0 /. (t *. t)) ~a:1.0
       ~eps:1e-10)

(* ------------------------------------------------------------------ *)
(* Roots *)

let test_bisection_sqrt2 () =
  let root =
    Roots.bisection ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 ()
  in
  check_close ~eps:1e-10 "sqrt2" (sqrt 2.0) root

let test_bisection_rejects_non_bracket () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Roots.bisection: interval does not bracket a root")
    (fun () -> ignore (Roots.bisection ~f:(fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0 ()))

let test_newton_bracketed () =
  let f x = cos x -. x in
  let df x = -.sin x -. 1.0 in
  let root = Roots.newton_bracketed ~f ~df ~lo:0.0 ~hi:1.0 () in
  check_close ~eps:1e-10 "dottie" 0.7390851332151607 root

let test_newton_with_bad_derivative_falls_back () =
  (* Zero derivative everywhere: must still converge by bisection. *)
  let f x = x -. 0.25 in
  let df _ = 0.0 in
  let root = Roots.newton_bracketed ~f ~df ~lo:0.0 ~hi:1.0 () in
  check_close ~eps:1e-9 "fallback" 0.25 root

(* ------------------------------------------------------------------ *)
(* Array_ops *)

let test_linspace () =
  let a = Array_ops.linspace 0.0 1.0 5 in
  Alcotest.(check int) "len" 5 (Array.length a);
  check_close "first" 0.0 a.(0);
  check_close "mid" 0.5 a.(2);
  check_close "last" 1.0 a.(4)

let test_logspace () =
  let a = Array_ops.logspace 1.0 100.0 3 in
  check_close ~eps:1e-12 "first" 1.0 a.(0);
  check_close ~eps:1e-12 "mid" 10.0 a.(1);
  check_close ~eps:1e-12 "last" 100.0 a.(2)

let test_mean_variance () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "mean" 2.5 (Array_ops.mean a);
  check_close "variance" 1.25 (Array_ops.variance a)

let test_normalize () =
  let a = [| 1.0; 3.0 |] in
  Array_ops.normalize a;
  check_close "n0" 0.25 a.(0);
  check_close "n1" 0.75 a.(1);
  Alcotest.check_raises "zero"
    (Invalid_argument "Array_ops.normalize: sum must be positive") (fun () ->
      Array_ops.normalize [| 0.0; 0.0 |])

(* ------------------------------------------------------------------ *)
(* Wavelet *)

let test_wavelet_filters_orthonormal () =
  List.iter
    (fun filter ->
      let h = Wavelet.filter_coefficients filter in
      let sumsq = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 h in
      check_close ~eps:1e-12 "unit energy" 1.0 sumsq;
      let total = Array.fold_left ( +. ) 0.0 h in
      check_close ~eps:1e-12 "sum sqrt2" (sqrt 2.0) total)
    [ Wavelet.Haar; Wavelet.Daubechies4 ]

let test_wavelet_roundtrip () =
  List.iter
    (fun filter ->
      let x = Array.init 64 (fun _ -> next_float () -. 0.5) in
      let approx, detail = Wavelet.dwt filter x in
      Alcotest.(check int) "half length" 32 (Array.length approx);
      let back = Wavelet.idwt filter ~approx ~detail in
      Array.iteri
        (fun i v -> check_close ~eps:1e-12 "reconstruction" x.(i) v)
        back)
    [ Wavelet.Haar; Wavelet.Daubechies4 ]

let test_wavelet_parseval () =
  List.iter
    (fun filter ->
      let x = Array.init 128 (fun _ -> next_float ()) in
      let approx, detail = Wavelet.dwt filter x in
      let e a = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 a in
      check_close ~eps:1e-10 "energy preserved" (e x) (e approx +. e detail))
    [ Wavelet.Haar; Wavelet.Daubechies4 ]

let test_wavelet_d4_kills_linear_trend () =
  (* Two vanishing moments: interior detail coefficients of a linear
     ramp vanish (boundary wrap-around coefficients excepted). *)
  let x = Array.init 64 (fun i -> 3.0 +. (0.5 *. float_of_int i)) in
  let _, detail = Wavelet.dwt Wavelet.Daubechies4 x in
  for i = 0 to 29 do
    check_close ~eps:1e-10 (Printf.sprintf "interior %d" i) 0.0 detail.(i)
  done;
  (* Haar does NOT annihilate a ramp (only constants). *)
  let _, haar_detail = Wavelet.dwt Wavelet.Haar x in
  Alcotest.(check bool) "haar sees the ramp" true
    (Float.abs haar_detail.(5) > 0.1)

let test_wavelet_decompose_structure () =
  let x = Array.init 256 (fun _ -> next_float ()) in
  let d = Wavelet.decompose Wavelet.Haar x in
  Alcotest.(check bool) "several octaves" true
    (Array.length d.Wavelet.details >= 5);
  Alcotest.(check int) "finest octave size" 128
    (Array.length d.Wavelet.details.(0));
  let d2 = Wavelet.decompose ~max_level:2 Wavelet.Haar x in
  Alcotest.(check int) "max level respected" 2
    (Array.length d2.Wavelet.details)

let test_wavelet_rejects_bad_input () =
  Alcotest.check_raises "odd length"
    (Invalid_argument
       "Wavelet.dwt: input length must be even and >= filter length")
    (fun () -> ignore (Wavelet.dwt Wavelet.Haar (Array.make 7 0.0)))

(* ------------------------------------------------------------------ *)
(* Linalg *)

let test_linalg_solve_known_system () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 5.0; 10.0 |] in
  let x = Linalg.solve a b in
  check_close "x0" 1.0 x.(0);
  check_close "x1" 3.0 x.(1);
  check_close "residual" 0.0 (Linalg.residual_norm a x b)

let test_linalg_solve_needs_pivoting () =
  (* Zero on the diagonal: fails without partial pivoting. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 2.0; 3.0 |] in
  check_close "x0" 3.0 x.(0);
  check_close "x1" 2.0 x.(1)

let test_linalg_random_roundtrip () =
  let n = 12 in
  let a =
    Array.init n (fun _ -> Array.init n (fun _ -> next_float () -. 0.5))
  in
  let x_true = Array.init n (fun _ -> next_float () *. 10.0) in
  let b = Linalg.mat_vec a x_true in
  let x = Linalg.solve a b in
  Array.iteri
    (fun i v -> check_close ~eps:1e-8 (Printf.sprintf "x%d" i) x_true.(i) v)
    x

let test_linalg_determinant () =
  check_close "2x2" (-2.0)
    (Linalg.determinant [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  check_close "identity" 1.0
    (Linalg.determinant [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]);
  check_close "singular" 0.0
    (Linalg.determinant [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |])

let test_linalg_rejects_singular () =
  Alcotest.check_raises "singular" (Failure "Linalg: singular matrix")
    (fun () ->
      ignore (Linalg.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 1.0 |]))

let test_linalg_rejects_bad_shapes () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Linalg: matrix must be square") (fun () ->
      ignore (Linalg.solve [| [| 1.0; 2.0 |] |] [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Real-input transforms and mixed-radix plan sizes *)

(* Real plan sizes are [2 h] with [h] any fast size, so this list walks
   every split shape: pure powers of two and the radix-3 / radix-5 /
   radix-15 decimation towers. *)
let real_sizes = [ 2; 4; 6; 8; 10; 12; 20; 24; 30; 48; 96; 120; 240; 480 ]

let random_signal n =
  Array.init n (fun _ -> (20.0 *. next_float ()) -. 10.0)

let test_fast_size_helpers () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (string_of_int n) true (Fft.is_fast_size n))
    [ 1; 2; 3; 4; 5; 6; 8; 15; 48; 60; 240; 960; 1536; 1920; 4096 ];
  List.iter
    (fun n ->
      Alcotest.(check bool) (string_of_int n) false (Fft.is_fast_size n))
    [ 0; -4; 7; 9; 11; 14; 21; 25; 45; 100 ];
  List.iter
    (fun n ->
      let g = Fft.good_size n in
      Alcotest.(check bool) "good_size is fast" true (Fft.is_fast_size g);
      Alcotest.(check bool) "good_size >= n" true (g >= n))
    [ 1; 2; 17; 100; 1000; 1025; 1537; 3000 ];
  (* Cost-aware selection: just above 3 * 2^k the radix-3 grid wins, but
     just above 15 * 2^(k-1) the next power of two beats the slower
     15-smooth transform. *)
  Alcotest.(check int) "good_size 1500" 1536 (Fft.good_size 1500);
  Alcotest.(check int) "good_size 1025" 1280 (Fft.good_size 1025);
  Alcotest.(check int) "good_size 1537" 2048 (Fft.good_size 1537)

let test_any_plan_matches_naive () =
  (* Mixed-radix and Bluestein sizes against the O(n^2) oracle. *)
  List.iter
    (fun n ->
      let re = random_signal n and im = random_signal n in
      let expect_re, expect_im = Fft.dft_naive ~re ~im in
      let plan = Fft.make_any_plan n in
      Fft.forward_ip plan ~re ~im;
      for k = 0 to n - 1 do
        check_close ~eps:1e-10 (Printf.sprintf "n=%d re k=%d" n k)
          expect_re.(k) re.(k);
        check_close ~eps:1e-10 (Printf.sprintf "n=%d im k=%d" n k)
          expect_im.(k) im.(k)
      done)
    [ 3; 5; 6; 15; 30; 48; 60; 7; 11; 13; 100; 250 ]

let test_real_forward_matches_naive () =
  List.iter
    (fun n ->
      let x = random_signal n in
      let fre, fim =
        Fft.dft_naive ~re:(Array.copy x) ~im:(Array.make n 0.0)
      in
      let plan = Fft.Real.make_plan n in
      let h = n / 2 in
      let sre = Array.make (h + 1) nan and sim = Array.make (h + 1) nan in
      Fft.Real.forward_ip plan ~signal:x ~len:n ~spec_re:sre ~spec_im:sim;
      (* The O(n^2) oracle carries its own rounding, so the tolerance
         scales with the signal mass rather than the bin value. *)
      let eps =
        1e-12 *. Array.fold_left (fun acc v -> acc +. Float.abs v) 1.0 x
      in
      for k = 0 to h do
        check_close ~eps (Printf.sprintf "n=%d re k=%d" n k) fre.(k) sre.(k);
        check_close ~eps (Printf.sprintf "n=%d im k=%d" n k) fim.(k) sim.(k)
      done)
    real_sizes

let test_real_roundtrip_exact_sizes () =
  List.iter
    (fun n ->
      let x = random_signal n in
      let plan = Fft.Real.make_plan n in
      let h = n / 2 in
      let sre = Array.make (h + 1) 0.0 and sim = Array.make (h + 1) 0.0 in
      Fft.Real.forward_ip plan ~signal:x ~len:n ~spec_re:sre ~spec_im:sim;
      let back = Array.make n nan in
      Fft.Real.inverse_ip plan ~spec_re:sre ~spec_im:sim ~signal:back ~len:n;
      Array.iteri
        (fun j v ->
          check_close ~eps:1e-12 (Printf.sprintf "n=%d j=%d" n j) v back.(j))
        x)
    real_sizes

let test_real_synthesize_matches_hermitian_sum () =
  let n = 24 in
  let h = n / 2 in
  let sre = Array.init (h + 1) (fun _ -> next_float ()) in
  let sim = Array.init (h + 1) (fun _ -> next_float ()) in
  (* A Hermitian spectrum has real endpoint bins. *)
  sim.(0) <- 0.0;
  sim.(h) <- 0.0;
  (* Oracle: y_j = sum_{k=0}^{n-1} X_k exp (-2 i pi j k / n) with the
     upper half the conjugate mirror of the lower. *)
  let expect =
    Array.init n (fun j ->
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          let xr, xi =
            if k <= h then (sre.(k), sim.(k))
            else (sre.(n - k), -.sim.(n - k))
          in
          let ang = -2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
          acc := !acc +. (xr *. cos ang) -. (xi *. sin ang)
        done;
        !acc)
  in
  let plan = Fft.Real.make_plan n in
  let y = Array.make n nan in
  Fft.Real.synthesize_ip plan ~spec_re:sre ~spec_im:sim ~signal:y ~len:n;
  Array.iteri
    (fun j v -> check_close ~eps:1e-10 (Printf.sprintf "j=%d" j) v y.(j))
    expect

let test_real_plan_rejects_bad_input () =
  let bad =
    "Fft.Real.make_plan: size must be even with n/2 of the form \
     2^a*{1,3,5,15}"
  in
  List.iter
    (fun n ->
      Alcotest.check_raises (string_of_int n) (Invalid_argument bad) (fun () ->
          ignore (Fft.Real.make_plan n)))
    [ 0; -2; 7; 14; 1500 ];
  let plan = Fft.Real.make_plan 16 in
  Alcotest.check_raises "short spectrum"
    (Invalid_argument "Fft.Real: spectrum buffers shorter than n/2 + 1")
    (fun () ->
      Fft.Real.forward_ip plan ~signal:(Array.make 16 0.0) ~len:16
        ~spec_re:(Array.make 8 0.0) ~spec_im:(Array.make 9 0.0));
  Alcotest.check_raises "bad len"
    (Invalid_argument "Fft.Real.forward_ip: bad len") (fun () ->
      Fft.Real.forward_ip plan ~signal:(Array.make 32 0.0) ~len:17
        ~spec_re:(Array.make 9 0.0) ~spec_im:(Array.make 9 0.0))

let test_execute_real_circular_matches_wrapped_direct () =
  let m = 8 in
  let n = 2 * m in
  let kernel = Array.init ((2 * m) + 1) (fun _ -> next_float ()) in
  let signal = Array.init (m + 1) (fun _ -> next_float ()) in
  let plan =
    Convolution.make_real_plan ~size:n ~kernel ~max_signal:(m + 1) ()
  in
  let src = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let dst = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill src 0.0;
  Array.iteri (fun i v -> Bigarray.Array1.set src i v) signal;
  Convolution.execute_real_circular plan ~signal:src ~len:(m + 1) ~dst;
  (* Oracle: the linear convolution folded modulo n. *)
  let linear = Convolution.direct signal kernel in
  let expect = Array.make n 0.0 in
  Array.iteri
    (fun i v -> expect.(i mod n) <- expect.(i mod n) +. v)
    linear;
  for i = 0 to n - 1 do
    check_close ~eps:1e-12 (Printf.sprintf "i=%d" i) expect.(i)
      (Bigarray.Array1.get dst i)
  done

let test_real_convolution_no_allocation () =
  (* The steady-state entry points must not touch the OCaml heap: one
     real linear convolution and one circular one, measured after a
     warmup round.  Bytecode boxes floats everywhere, so the pin only
     holds on native builds. *)
  if Sys.backend_type = Sys.Native then begin
    let m = 16 in
    let kernel = Array.init ((2 * m) + 1) (fun _ -> next_float ()) in
    let signal = Array.init (m + 1) (fun _ -> next_float ()) in
    let lin = Convolution.make_real_plan ~kernel ~max_signal:(m + 1) () in
    let out = Array.make ((3 * m) + 1) 0.0 in
    let circ =
      Convolution.make_real_plan ~size:(2 * m) ~kernel ~max_signal:(m + 1) ()
    in
    let n = 2 * m in
    let src = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    let dst = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    Bigarray.Array1.fill src 0.0;
    Array.iteri (fun i v -> Bigarray.Array1.set src i v) signal;
    Convolution.execute_real lin signal ~dst:out;
    Convolution.execute_real_circular circ ~signal:src ~len:(m + 1) ~dst;
    let before = Gc.minor_words () in
    Convolution.execute_real lin signal ~dst:out;
    Convolution.execute_real_circular circ ~signal:src ~len:(m + 1) ~dst;
    let after = Gc.minor_words () in
    Alcotest.(check (float 0.0))
      "minor words allocated" 0.0 (after -. before)
  end

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"fft inverse . forward = id" ~count:50
    QCheck.(list_of_size (Gen.return 32) (float_range (-100.0) 100.0))
    (fun xs ->
      let re = Array.of_list xs and im = Array.make 32 0.0 in
      let orig = Array.copy re in
      Fft.forward ~re ~im;
      Fft.inverse ~re ~im;
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a))
        orig re)

let prop_planned_fft_matches_naive =
  QCheck.Test.make ~name:"planned in-place fft matches naive dft" ~count:40
    QCheck.(
      pair (int_range 0 7)
        (list_of_size (Gen.return 256) (float_range (-50.0) 50.0)))
    (fun (exponent, xs) ->
      let n = 1 lsl exponent in
      let data = Array.of_list xs in
      let re = Array.init n (fun i -> data.(2 * i)) in
      let im = Array.init n (fun i -> data.((2 * i) + 1)) in
      let expect_re, expect_im = Fft.dft_naive ~re ~im in
      let plan = Fft.make_plan n in
      Fft.forward_ip plan ~re ~im;
      let ok = ref true in
      for k = 0 to n - 1 do
        if
          Float.abs (re.(k) -. expect_re.(k))
          > 1e-9 *. (1.0 +. Float.abs expect_re.(k))
          || Float.abs (im.(k) -. expect_im.(k))
             > 1e-9 *. (1.0 +. Float.abs expect_im.(k))
        then ok := false
      done;
      !ok)

let prop_dual_convolution_matches_direct =
  QCheck.Test.make ~name:"dual-channel convolution matches two direct calls"
    ~count:40
    QCheck.(
      pair (int_range 1 24)
        (list_of_size (Gen.return 200) (float_range 0.0 1.0)))
    (fun (m, xs) ->
      let data = Array.of_list xs in
      let take pos len = Array.sub data pos len in
      let nk = (2 * m) + 1 in
      let ka = take 0 nk and kb = take nk nk in
      let a = take (2 * nk) (m + 1) and b = take ((2 * nk) + m + 1) (m + 1) in
      let plan =
        Convolution.make_dual_plan ~kernel_a:ka ~kernel_b:kb
          ~max_signal:(m + 1)
      in
      let expect_a = Convolution.direct a ka in
      let expect_b = Convolution.direct b kb in
      let dst_a = Array.make (Array.length expect_a) 0.0 in
      let dst_b = Array.make (Array.length expect_b) 0.0 in
      Convolution.execute_dual plan ~a ~b ~dst_a ~dst_b;
      let close x y = Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs x) in
      let ok = ref true in
      Array.iteri (fun i v -> if not (close v dst_a.(i)) then ok := false)
        expect_a;
      Array.iteri (fun i v -> if not (close v dst_b.(i)) then ok := false)
        expect_b;
      !ok)

let prop_convolution_linear =
  QCheck.Test.make ~name:"convolution is linear in first argument" ~count:50
    QCheck.(
      pair
        (list_of_size (Gen.return 16) (float_range (-10.0) 10.0))
        (list_of_size (Gen.return 16) (float_range (-10.0) 10.0)))
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      let k = [| 0.5; -1.5; 2.0 |] in
      let sum = Array.mapi (fun i x -> x +. b.(i)) a in
      let c1 = Convolution.direct sum k in
      let c2 = Convolution.direct a k and c3 = Convolution.direct b k in
      Array.for_all
        (fun i ->
          Float.abs (c1.(i) -. (c2.(i) +. c3.(i)))
          <= 1e-9 *. (1.0 +. Float.abs c1.(i)))
        (Array.init (Array.length c1) (fun i -> i)))

let prop_erf_monotone =
  QCheck.Test.make ~name:"erf is monotone" ~count:100
    QCheck.(pair (float_range (-4.0) 4.0) (float_range (-4.0) 4.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Special.erf lo <= Special.erf hi +. 1e-15)

let prop_kahan_close_to_sorted_sum =
  QCheck.Test.make ~name:"kahan matches high-precision reference" ~count:50
    QCheck.(list_of_size (Gen.return 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Array.of_list xs in
      (* Reference: sort by magnitude ascending and sum. *)
      let sorted = Array.copy a in
      Array.sort (fun x y -> Float.compare (Float.abs x) (Float.abs y)) sorted;
      let reference = Array.fold_left ( +. ) 0.0 sorted in
      Float.abs (Summation.kahan a -. reference)
      <= 1e-6 *. (1.0 +. Float.abs reference))

(* Random real signals at a random plan size: the real engine must
   round-trip and agree with the complex transform to near machine
   precision across every split shape (pure pow2, radix-3/5/15). *)
let rfft_size_gen = QCheck.oneofl real_sizes

let prop_rfft_roundtrip =
  QCheck.Test.make ~name:"real fft inverse . forward = id" ~count:60
    QCheck.(
      pair rfft_size_gen (list_of_size (Gen.return 480) (float_range (-100.0) 100.0)))
    (fun (n, xs) ->
      let data = Array.of_list xs in
      let x = Array.sub data 0 n in
      let plan = Fft.Real.make_plan n in
      let h = n / 2 in
      let sre = Array.make (h + 1) 0.0 and sim = Array.make (h + 1) 0.0 in
      Fft.Real.forward_ip plan ~signal:x ~len:n ~spec_re:sre ~spec_im:sim;
      let back = Array.make n nan in
      Fft.Real.inverse_ip plan ~spec_re:sre ~spec_im:sim ~signal:back ~len:n;
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-12 *. (1.0 +. Float.abs a))
        x back)

let prop_rfft_matches_complex =
  QCheck.Test.make ~name:"real fft matches complex fft on real input"
    ~count:60
    QCheck.(
      pair rfft_size_gen (list_of_size (Gen.return 480) (float_range (-50.0) 50.0)))
    (fun (n, xs) ->
      let data = Array.of_list xs in
      let x = Array.sub data 0 n in
      let re = Array.copy x and im = Array.make n 0.0 in
      Fft.forward_ip (Fft.make_any_plan n) ~re ~im;
      let plan = Fft.Real.make_plan n in
      let h = n / 2 in
      let sre = Array.make (h + 1) 0.0 and sim = Array.make (h + 1) 0.0 in
      Fft.Real.forward_ip plan ~signal:x ~len:n ~spec_re:sre ~spec_im:sim;
      let scale =
        Array.fold_left (fun acc v -> acc +. Float.abs v) 1.0 x
      in
      let ok = ref true in
      for k = 0 to h do
        if
          Float.abs (sre.(k) -. re.(k)) > 1e-12 *. scale
          || Float.abs (sim.(k) -. im.(k)) > 1e-12 *. scale
        then ok := false
      done;
      !ok)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "numerics"
    [
      ( "fft",
        [
          Alcotest.test_case "power-of-two helpers" `Quick test_power_of_two;
          Alcotest.test_case "matches naive DFT" `Quick
            test_fft_matches_naive_dft;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "constant" `Quick test_fft_constant;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "rejects bad input" `Quick
            test_fft_rejects_bad_input;
          Alcotest.test_case "plan matches naive DFT" `Quick
            test_fft_plan_matches_naive_dft;
          Alcotest.test_case "plan roundtrip" `Quick test_fft_plan_roundtrip;
          Alcotest.test_case "plan rejects bad input" `Quick
            test_fft_plan_rejects_bad_input;
        ] );
      ( "real fft",
        [
          Alcotest.test_case "fast-size helpers" `Quick
            test_fast_size_helpers;
          Alcotest.test_case "any-size plan matches naive DFT" `Quick
            test_any_plan_matches_naive;
          Alcotest.test_case "real forward matches naive DFT" `Quick
            test_real_forward_matches_naive;
          Alcotest.test_case "real roundtrip across split shapes" `Quick
            test_real_roundtrip_exact_sizes;
          Alcotest.test_case "synthesize matches Hermitian sum" `Quick
            test_real_synthesize_matches_hermitian_sum;
          Alcotest.test_case "real plan rejects bad input" `Quick
            test_real_plan_rejects_bad_input;
          Alcotest.test_case "circular real conv matches wrapped direct"
            `Quick test_execute_real_circular_matches_wrapped_direct;
          Alcotest.test_case "real conv entry points allocation-free"
            `Quick test_real_convolution_no_allocation;
        ] );
      ( "convolution",
        [
          Alcotest.test_case "small exact" `Quick test_convolution_small_exact;
          Alcotest.test_case "fft matches direct" `Quick
            test_convolution_fft_matches_direct;
          Alcotest.test_case "identity kernel" `Quick
            test_convolution_identity;
          Alcotest.test_case "commutative" `Quick test_convolution_commutative;
          Alcotest.test_case "preserves probability mass" `Quick
            test_convolution_preserves_mass;
          Alcotest.test_case "plan matches direct" `Quick
            test_convolution_plan_matches;
          Alcotest.test_case "plan rejects long signal" `Quick
            test_convolution_plan_rejects_long_signal;
          Alcotest.test_case "direct_into matches direct" `Quick
            test_convolution_direct_into_matches;
          Alcotest.test_case "execute into dst matches" `Quick
            test_convolution_execute_into_matches;
          Alcotest.test_case "dual-channel matches direct" `Quick
            test_convolution_dual_matches_direct;
          Alcotest.test_case "dual-channel uneven kernels" `Quick
            test_convolution_dual_different_kernel_lengths;
          Alcotest.test_case "dual-channel rejects bad input" `Quick
            test_convolution_dual_rejects_bad_input;
        ] );
      ( "special",
        [
          Alcotest.test_case "log_gamma known values" `Quick
            test_log_gamma_known_values;
          Alcotest.test_case "gamma P + Q = 1" `Quick test_gamma_p_q_complement;
          Alcotest.test_case "gamma P(1, x) exponential" `Quick
            test_gamma_p_exponential_case;
          Alcotest.test_case "erf known values" `Quick test_erf_known_values;
          Alcotest.test_case "erfc far tail" `Quick
            test_erfc_tail_no_cancellation;
          Alcotest.test_case "erf_inv roundtrip" `Quick test_erf_inv_roundtrip;
          Alcotest.test_case "normal cdf/quantile" `Quick
            test_normal_cdf_quantile;
          Alcotest.test_case "rejects bad input" `Quick
            test_special_rejects_bad_input;
        ] );
      ( "summation",
        [
          Alcotest.test_case "cancellation case" `Quick test_kahan_hard_case;
          Alcotest.test_case "many small terms" `Quick test_kahan_many_small;
          Alcotest.test_case "slice" `Quick test_kahan_slice;
          Alcotest.test_case "streaming accumulator" `Quick
            test_accumulator_streaming;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "cubic exact" `Quick
            test_simpson_polynomial_exact;
          Alcotest.test_case "transcendental" `Quick
            test_simpson_transcendental;
          Alcotest.test_case "reversed bounds" `Quick
            test_simpson_reversed_bounds;
          Alcotest.test_case "semi-infinite" `Quick test_simpson_to_infinity;
        ] );
      ( "roots",
        [
          Alcotest.test_case "bisection sqrt2" `Quick test_bisection_sqrt2;
          Alcotest.test_case "bisection needs bracket" `Quick
            test_bisection_rejects_non_bracket;
          Alcotest.test_case "newton dottie number" `Quick
            test_newton_bracketed;
          Alcotest.test_case "newton falls back to bisection" `Quick
            test_newton_with_bad_derivative_falls_back;
        ] );
      ( "array_ops",
        [
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "filters orthonormal" `Quick
            test_wavelet_filters_orthonormal;
          Alcotest.test_case "roundtrip" `Quick test_wavelet_roundtrip;
          Alcotest.test_case "parseval" `Quick test_wavelet_parseval;
          Alcotest.test_case "D4 kills linear trend" `Quick
            test_wavelet_d4_kills_linear_trend;
          Alcotest.test_case "decompose structure" `Quick
            test_wavelet_decompose_structure;
          Alcotest.test_case "rejects bad input" `Quick
            test_wavelet_rejects_bad_input;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "known system" `Quick
            test_linalg_solve_known_system;
          Alcotest.test_case "pivoting" `Quick test_linalg_solve_needs_pivoting;
          Alcotest.test_case "random roundtrip" `Quick
            test_linalg_random_roundtrip;
          Alcotest.test_case "determinant" `Quick test_linalg_determinant;
          Alcotest.test_case "rejects singular" `Quick
            test_linalg_rejects_singular;
          Alcotest.test_case "rejects bad shapes" `Quick
            test_linalg_rejects_bad_shapes;
        ] );
      ( "properties",
        qcheck
          [
            prop_fft_roundtrip;
            prop_planned_fft_matches_naive;
            prop_dual_convolution_matches_direct;
            prop_convolution_linear;
            prop_erf_monotone;
            prop_kahan_close_to_sorted_sum;
            prop_rfft_roundtrip;
            prop_rfft_matches_complex;
          ] );
    ]
