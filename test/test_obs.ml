(* Tests for the telemetry layer (lib/obs).

   The suite shares one process-global registry, so every test uses its
   own instrument names and sets the enable flag explicitly at entry.
   The zero-allocation test is the acceptance invariant of the whole
   design: metrics compiled into the hot paths must cost one branch and
   no allocation while disabled. *)

module Obs = Lrd_obs.Obs
module Pool = Lrd_parallel.Pool

let reset_disabled () =
  Obs.set_enabled false;
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Disabled path: one branch, zero minor-heap words. *)

let test_disabled_path_does_not_allocate () =
  reset_disabled ();
  let c = Obs.Counter.make "test_obs/disabled_counter" in
  let g = Obs.Gauge.make "test_obs/disabled_gauge" in
  let h = Obs.Histogram.make "test_obs/disabled_histogram" in
  let tr = Obs.Trajectory.make "test_obs/disabled_trajectory" in
  let sp = Obs.Span.make "test_obs/disabled_span" in
  (* Warm up so instrument lookup / DLS cell creation is out of the
     measured region (they only happen when enabled anyway, but be
     safe). *)
  let exercise () =
    for i = 0 to 63 do
      Obs.Counter.incr c;
      Obs.Counter.add c i;
      (* Guarded idiom for float arguments: without flambda a
         cross-module float argument boxes at the call site, so
         allocation-sensitive callers branch before passing it.  This
         is exactly how solver/pool call sites are written. *)
      if Obs.enabled () then Obs.Gauge.set g 1.5;
      if Obs.enabled () then Obs.Histogram.observe h 1e-3;
      if Obs.enabled () then Obs.Trajectory.record tr 0.25;
      let t0 = Obs.Span.start () in
      Obs.Span.stop sp t0
    done
  in
  exercise ();
  let w0 = Gc.minor_words () in
  exercise ();
  let allocated = Gc.minor_words () -. w0 in
  match Sys.backend_type with
  | Sys.Native ->
      if allocated > 0.0 then
        Alcotest.failf "disabled telemetry allocated %.0f minor words"
          allocated
  | Sys.Bytecode | Sys.Other _ -> ()

(* ------------------------------------------------------------------ *)
(* Counters: totals, per-domain isolation, reset. *)

let test_counter_totals () =
  reset_disabled ();
  let c = Obs.Counter.make "test_obs/counter_totals" in
  Obs.Counter.incr c;
  Alcotest.(check int) "disabled incr ignored" 0 (Obs.Counter.value c);
  Obs.set_enabled true;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "enabled total" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
      Obs.Counter.add c (-1));
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Obs.set_enabled false

let test_counter_kind_clash () =
  reset_disabled ();
  let _ = Obs.Counter.make "test_obs/kind_clash" in
  Alcotest.(check bool) "same kind returns same instrument" true
    (Obs.Counter.make "test_obs/kind_clash"
     == Obs.Counter.make "test_obs/kind_clash");
  match Obs.Gauge.make "test_obs/kind_clash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not rejected"

let test_counter_per_domain_under_pool () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/per_domain" in
  let n = 64 in
  Pool.with_pool ~workers:2 (fun pool ->
      ignore
        (Pool.map pool
           (fun i ->
             Obs.Counter.incr c;
             i)
           (Array.init n Fun.id)));
  Alcotest.(check int) "total across domains" n (Obs.Counter.value c);
  let per = Obs.Counter.per_domain c in
  Alcotest.(check bool) "at least one domain cell" true (List.length per >= 1);
  let sum = List.fold_left (fun acc (_, k) -> acc + k) 0 per in
  Alcotest.(check int) "per-domain cells sum to total" n sum;
  List.iter
    (fun (_, k) ->
      Alcotest.(check bool) "each cell nonnegative" true (k >= 0))
    per;
  let ids = List.map fst per in
  Alcotest.(check bool) "domain ids strictly sorted" true
    (List.sort_uniq compare ids = ids);
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Histogram bucket geometry. *)

let test_histogram_bucket_boundaries () =
  let open Obs.Histogram in
  (* Exactness at power-of-two boundaries: 2^e opens the bucket whose
     lower bound is 2^e, and the value just below lands one lower. *)
  for e = min_exponent to max_exponent do
    let v = Float.ldexp 1.0 e in
    let i = bucket_index v in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "lower bound of bucket for 2^%d" e)
      v (bucket_lower i);
    if e > min_exponent then
      Alcotest.(check int)
        (Printf.sprintf "pred of 2^%d lands one bucket lower" e)
        (i - 1)
        (bucket_index (Float.pred v))
  done;
  (* Underflow bucket: zero, negatives, nan and tiny values. *)
  List.iter
    (fun v -> Alcotest.(check int) "underflow bucket" 0 (bucket_index v))
    [ 0.0; -1.0; Float.nan; Float.ldexp 1.0 (min_exponent - 1) ];
  (* Clamp: anything at or above 2^(max_exponent+1), including
     infinity, stays in the top bucket. *)
  let top = bucket_count - 1 in
  List.iter
    (fun v -> Alcotest.(check int) "top bucket clamp" top (bucket_index v))
    [ Float.ldexp 1.0 (max_exponent + 1); Float.max_float; Float.infinity ];
  Alcotest.(check (float 0.0))
    "underflow lower bound" Float.neg_infinity (bucket_lower 0)

let test_histogram_observations () =
  reset_disabled ();
  Obs.set_enabled true;
  let h = Obs.Histogram.make "test_obs/hist_obs" in
  List.iter
    (Obs.Histogram.observe h)
    [ 1.0; 1.5; 2.0; 0.0; Float.ldexp 1.0 40 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  (match Obs.find (Obs.snapshot ()) "test_obs/hist_obs" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "snapshot count" 5 d.Obs.count;
      Alcotest.(check (float 1e-9)) "min" 0.0 d.Obs.min;
      Alcotest.(check (float 1e-9)) "max" (Float.ldexp 1.0 40) d.Obs.max;
      Alcotest.(check (float 1e-9))
        "sum" (4.5 +. Float.ldexp 1.0 40) d.Obs.sum;
      (* 1.0 and 1.5 share the [1,2) bucket; 2.0 opens [2,4); 0.0 is in
         the underflow bucket; 2^40 clamps into the top bucket. *)
      let expect =
        [
          (Float.neg_infinity, 1);
          (1.0, 2);
          (2.0, 1);
          (Float.ldexp 1.0 Obs.Histogram.max_exponent, 1);
        ]
      in
      Alcotest.(check int)
        "nonzero buckets" (List.length expect)
        (List.length d.Obs.buckets);
      List.iter2
        (fun (lo, n) (lo', n') ->
          Alcotest.(check (float 0.0)) "bucket bound" lo lo';
          Alcotest.(check int) "bucket count" n n')
        expect d.Obs.buckets;
      (* Quantile: conservative bucket lower bound. *)
      Alcotest.(check (float 0.0))
        "median bucket" 1.0
        (Obs.histogram_quantile d ~q:0.5)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Trajectory ring. *)

let test_trajectory_ring () =
  reset_disabled ();
  Obs.set_enabled true;
  let t = Obs.Trajectory.make ~capacity:4 "test_obs/traj" in
  for i = 1 to 6 do
    Obs.Trajectory.record t (float_of_int i)
  done;
  (match Obs.find (Obs.snapshot ()) "test_obs/traj" with
  | Some (Obs.Trajectory [ (_, ring) ]) ->
      Alcotest.(check (array (float 0.0)))
        "last 4 values oldest first" [| 3.0; 4.0; 5.0; 6.0 |] ring
  | _ -> Alcotest.fail "trajectory missing or multi-domain");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Span timing. *)

let test_span_records_duration () =
  reset_disabled ();
  Obs.set_enabled true;
  let sp = Obs.Span.make "test_obs/span" in
  let t0 = Obs.Span.start () in
  Alcotest.(check bool) "enabled start is a real time" true (t0 > 0.0);
  Obs.Span.stop sp t0;
  Obs.Span.time sp (fun () -> ());
  (match Obs.find (Obs.snapshot ()) "test_obs/span" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "two durations recorded" 2 d.Obs.count;
      Alcotest.(check bool) "durations nonnegative" true (d.Obs.min >= 0.0)
  | _ -> Alcotest.fail "span histogram missing");
  (* A start taken while disabled must be ignored by stop. *)
  Obs.set_enabled false;
  let t0 = Obs.Span.start () in
  Alcotest.(check (float 0.0)) "disabled start sentinel" Float.neg_infinity t0;
  Obs.set_enabled true;
  Obs.Span.stop sp t0;
  (match Obs.find (Obs.snapshot ()) "test_obs/span" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "sentinel start not recorded" 2 d.Obs.count
  | _ -> Alcotest.fail "span histogram missing");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Snapshot and JSON export. *)

let test_snapshot_sorted_and_complete () =
  reset_disabled ();
  (* Registered-but-never-recorded instruments must still appear: the
     sequential fig4 snapshot relies on pool/tasks_stolen showing up as
     zero rather than vanishing. *)
  let _ = Obs.Counter.make "test_obs/zz_never_recorded" in
  let snap = Obs.snapshot () in
  (match Obs.find snap "test_obs/zz_never_recorded" with
  | Some (Obs.Counter { total; per_domain }) ->
      Alcotest.(check int) "unrecorded counter is zero" 0 total;
      Alcotest.(check int) "no domain cells" 0 (List.length per_domain)
  | _ -> Alcotest.fail "unrecorded instrument missing from snapshot");
  let names = List.map fst snap in
  Alcotest.(check bool) "names sorted and unique" true
    (List.sort_uniq String.compare names = names)

let test_json_deterministic () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/json_counter" in
  let h = Obs.Histogram.make "test_obs/json_hist" in
  let g = Obs.Gauge.make "test_obs/json_gauge" in
  let t = Obs.Trajectory.make "test_obs/json_traj" in
  Obs.Counter.add c 7;
  Obs.Histogram.observe h 0.125;
  Obs.Histogram.observe h Float.infinity;
  Obs.Gauge.set g 0.75;
  Obs.Trajectory.record t 1e-9;
  Obs.set_enabled false;
  let s1 = Obs.to_json (Obs.snapshot ()) in
  let s2 = Obs.to_json (Obs.snapshot ()) in
  Alcotest.(check string) "equal snapshots render byte-identically" s1 s2;
  let contains sub =
    let nl = String.length s1 and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub s1 i sl = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "wrapper object" true
    (String.length s1 > 2 && s1.[0] = '{');
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true
        (contains sub))
    [
      "\"metrics\"";
      "\"test_obs/json_counter\"";
      "\"total\": 7";
      "\"test_obs/json_gauge\"";
      "0.75";
      "\"test_obs/json_hist\"";
      "\"test_obs/json_traj\"";
    ];
  (* Non-finite floats must not leak into the JSON (rendered null). *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "no %s token" bad) false
        (contains bad))
    [ "inf"; "nan"; "neg_infinity" ];
  (* The whole string stays structurally balanced. *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun ch ->
      (match ch with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ());
      if !depth < !min_depth then min_depth := !depth)
    s1;
  Alcotest.(check int) "brackets balanced" 0 !depth;
  Alcotest.(check int) "never negative depth" 0 !min_depth

let test_text_renders () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/text_counter" in
  Obs.Counter.incr c;
  Obs.set_enabled false;
  let s = Format.asprintf "%a" Obs.pp_text (Obs.snapshot ()) in
  Alcotest.(check bool) "text mentions the counter" true
    (let sub = "test_obs/text_counter" in
     let nl = String.length s and sl = String.length sub in
     let rec at i = i + sl <= nl && (String.sub s i sl = sub || at (i + 1)) in
     at 0)

let () =
  Alcotest.run "obs"
    [
      ( "disabled-path",
        [
          Alcotest.test_case "zero allocation" `Quick
            test_disabled_path_does_not_allocate;
        ] );
      ( "counter",
        [
          Alcotest.test_case "totals and reset" `Quick test_counter_totals;
          Alcotest.test_case "kind clash" `Quick test_counter_kind_clash;
          Alcotest.test_case "per-domain under pool" `Quick
            test_counter_per_domain_under_pool;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "observations" `Quick test_histogram_observations;
        ] );
      ( "trajectory",
        [ Alcotest.test_case "ring eviction" `Quick test_trajectory_ring ] );
      ( "span",
        [
          Alcotest.test_case "records duration" `Quick
            test_span_records_duration;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot sorted and complete" `Quick
            test_snapshot_sorted_and_complete;
          Alcotest.test_case "json deterministic" `Quick
            test_json_deterministic;
          Alcotest.test_case "text renders" `Quick test_text_renders;
        ] );
    ]
