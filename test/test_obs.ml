(* Tests for the telemetry layer (lib/obs).

   The suite shares one process-global registry, so every test uses its
   own instrument names and sets the enable flag explicitly at entry.
   The zero-allocation test is the acceptance invariant of the whole
   design: metrics compiled into the hot paths must cost one branch and
   no allocation while disabled. *)

module Obs = Lrd_obs.Obs
module Json = Lrd_obs.Json
module Manifest = Lrd_obs.Manifest
module Diff = Lrd_obs.Diff
module Report = Lrd_obs.Report
module Resource = Lrd_obs.Resource
module Export = Lrd_obs.Export
module Pool = Lrd_parallel.Pool

let reset_disabled () =
  Obs.set_enabled false;
  Obs.reset ();
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Disabled path: one branch, zero minor-heap words. *)

let test_disabled_path_does_not_allocate () =
  reset_disabled ();
  let c = Obs.Counter.make "test_obs/disabled_counter" in
  let g = Obs.Gauge.make "test_obs/disabled_gauge" in
  let h = Obs.Histogram.make "test_obs/disabled_histogram" in
  let tr = Obs.Trajectory.make "test_obs/disabled_trajectory" in
  let sp = Obs.Span.make "test_obs/disabled_span" in
  let ac = Resource.Alloc.make "test_obs/disabled_alloc" in
  (* Warm up so instrument lookup / DLS cell creation is out of the
     measured region (they only happen when enabled anyway, but be
     safe).  [ignore_unit] is bound once, outside the loop, so the
     with_span callee is not a fresh closure per iteration. *)
  let ignore_unit () = () in
  let exercise () =
    for i = 0 to 63 do
      Obs.Counter.incr c;
      Obs.Counter.add c i;
      (* Guarded idiom for float arguments: without flambda a
         cross-module float argument boxes at the call site, so
         allocation-sensitive callers branch before passing it.  This
         is exactly how solver/pool call sites are written. *)
      if Obs.enabled () then Obs.Gauge.set g 1.5;
      if Obs.enabled () then Obs.Histogram.observe h 1e-3;
      if Obs.enabled () then Obs.Trajectory.record tr 0.25;
      let t0 = Obs.Span.start () in
      Obs.Span.stop sp t0;
      (* GC telemetry, same contract: sampling and alloc attribution
         are one branch each while disabled. *)
      Resource.sample ();
      let w0 = Resource.Alloc.start () in
      Resource.Alloc.stop ac w0;
      (* Trace journal, same contract: argless calls are free because
         the [?arg] default is an immediate sentinel; callers that do
         pass [~arg] guard on [Trace.enabled] so the [Some arg] option
         is never built when tracing is off. *)
      Obs.Trace.begin_ "test_obs/disabled_trace";
      Obs.Trace.end_ "test_obs/disabled_trace";
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~arg:i "test_obs/disabled_trace_i";
      Obs.Trace.with_span "test_obs/disabled_trace_ws" ignore_unit
    done
  in
  exercise ();
  let w0 = Gc.minor_words () in
  exercise ();
  let allocated = Gc.minor_words () -. w0 in
  match Sys.backend_type with
  | Sys.Native ->
      if allocated > 0.0 then
        Alcotest.failf "disabled telemetry allocated %.0f minor words"
          allocated
  | Sys.Bytecode | Sys.Other _ -> ()

(* ------------------------------------------------------------------ *)
(* Counters: totals, per-domain isolation, reset. *)

let test_counter_totals () =
  reset_disabled ();
  let c = Obs.Counter.make "test_obs/counter_totals" in
  Obs.Counter.incr c;
  Alcotest.(check int) "disabled incr ignored" 0 (Obs.Counter.value c);
  Obs.set_enabled true;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "enabled total" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
      Obs.Counter.add c (-1));
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Obs.set_enabled false

let test_counter_kind_clash () =
  reset_disabled ();
  let _ = Obs.Counter.make "test_obs/kind_clash" in
  Alcotest.(check bool) "same kind returns same instrument" true
    (Obs.Counter.make "test_obs/kind_clash"
     == Obs.Counter.make "test_obs/kind_clash");
  match Obs.Gauge.make "test_obs/kind_clash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not rejected"

let test_counter_per_domain_under_pool () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/per_domain" in
  let n = 64 in
  Pool.with_pool ~workers:2 (fun pool ->
      ignore
        (Pool.map pool
           (fun i ->
             Obs.Counter.incr c;
             i)
           (Array.init n Fun.id)));
  Alcotest.(check int) "total across domains" n (Obs.Counter.value c);
  let per = Obs.Counter.per_domain c in
  Alcotest.(check bool) "at least one domain cell" true (List.length per >= 1);
  let sum = List.fold_left (fun acc (_, k) -> acc + k) 0 per in
  Alcotest.(check int) "per-domain cells sum to total" n sum;
  List.iter
    (fun (_, k) ->
      Alcotest.(check bool) "each cell nonnegative" true (k >= 0))
    per;
  let ids = List.map fst per in
  Alcotest.(check bool) "domain ids strictly sorted" true
    (List.sort_uniq compare ids = ids);
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Histogram bucket geometry. *)

let test_histogram_bucket_boundaries () =
  let open Obs.Histogram in
  (* Exactness at power-of-two boundaries: 2^e opens the bucket whose
     lower bound is 2^e, and the value just below lands one lower. *)
  for e = min_exponent to max_exponent do
    let v = Float.ldexp 1.0 e in
    let i = bucket_index v in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "lower bound of bucket for 2^%d" e)
      v (bucket_lower i);
    if e > min_exponent then
      Alcotest.(check int)
        (Printf.sprintf "pred of 2^%d lands one bucket lower" e)
        (i - 1)
        (bucket_index (Float.pred v))
  done;
  (* Underflow bucket: zero, negatives, nan and tiny values. *)
  List.iter
    (fun v -> Alcotest.(check int) "underflow bucket" 0 (bucket_index v))
    [ 0.0; -1.0; Float.nan; Float.ldexp 1.0 (min_exponent - 1) ];
  (* Clamp: anything at or above 2^(max_exponent+1), including
     infinity, stays in the top bucket. *)
  let top = bucket_count - 1 in
  List.iter
    (fun v -> Alcotest.(check int) "top bucket clamp" top (bucket_index v))
    [ Float.ldexp 1.0 (max_exponent + 1); Float.max_float; Float.infinity ];
  Alcotest.(check (float 0.0))
    "underflow lower bound" Float.neg_infinity (bucket_lower 0)

let test_histogram_observations () =
  reset_disabled ();
  Obs.set_enabled true;
  let h = Obs.Histogram.make "test_obs/hist_obs" in
  List.iter
    (Obs.Histogram.observe h)
    [ 1.0; 1.5; 2.0; 0.0; Float.ldexp 1.0 40 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  (match Obs.find (Obs.snapshot ()) "test_obs/hist_obs" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "snapshot count" 5 d.Obs.count;
      Alcotest.(check (float 1e-9)) "min" 0.0 d.Obs.min;
      Alcotest.(check (float 1e-9)) "max" (Float.ldexp 1.0 40) d.Obs.max;
      Alcotest.(check (float 1e-9))
        "sum" (4.5 +. Float.ldexp 1.0 40) d.Obs.sum;
      (* 1.0 and 1.5 share the [1,2) bucket; 2.0 opens [2,4); 0.0 is in
         the underflow bucket; 2^40 clamps into the top bucket. *)
      let expect =
        [
          (Float.neg_infinity, 1);
          (1.0, 2);
          (2.0, 1);
          (Float.ldexp 1.0 Obs.Histogram.max_exponent, 1);
        ]
      in
      Alcotest.(check int)
        "nonzero buckets" (List.length expect)
        (List.length d.Obs.buckets);
      List.iter2
        (fun (lo, n) (lo', n') ->
          Alcotest.(check (float 0.0)) "bucket bound" lo lo';
          Alcotest.(check int) "bucket count" n n')
        expect d.Obs.buckets;
      (* Quantile: conservative bucket lower bound. *)
      Alcotest.(check (float 0.0))
        "median bucket" 1.0
        (Obs.histogram_quantile d ~q:0.5)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Trajectory ring. *)

let test_trajectory_ring () =
  reset_disabled ();
  Obs.set_enabled true;
  let t = Obs.Trajectory.make ~capacity:4 "test_obs/traj" in
  for i = 1 to 6 do
    Obs.Trajectory.record t (float_of_int i)
  done;
  (match Obs.find (Obs.snapshot ()) "test_obs/traj" with
  | Some (Obs.Trajectory [ (_, ring) ]) ->
      Alcotest.(check (array (float 0.0)))
        "last 4 values oldest first" [| 3.0; 4.0; 5.0; 6.0 |] ring
  | _ -> Alcotest.fail "trajectory missing or multi-domain");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Span timing. *)

let test_span_records_duration () =
  reset_disabled ();
  Obs.set_enabled true;
  let sp = Obs.Span.make "test_obs/span" in
  let t0 = Obs.Span.start () in
  Alcotest.(check bool) "enabled start is a real time" true (t0 > 0.0);
  Obs.Span.stop sp t0;
  Obs.Span.time sp (fun () -> ());
  (match Obs.find (Obs.snapshot ()) "test_obs/span" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "two durations recorded" 2 d.Obs.count;
      Alcotest.(check bool) "durations nonnegative" true (d.Obs.min >= 0.0)
  | _ -> Alcotest.fail "span histogram missing");
  (* A start taken while disabled must be ignored by stop. *)
  Obs.set_enabled false;
  let t0 = Obs.Span.start () in
  Alcotest.(check (float 0.0)) "disabled start sentinel" Float.neg_infinity t0;
  Obs.set_enabled true;
  Obs.Span.stop sp t0;
  (match Obs.find (Obs.snapshot ()) "test_obs/span" with
  | Some (Obs.Histogram d) ->
      Alcotest.(check int) "sentinel start not recorded" 2 d.Obs.count
  | _ -> Alcotest.fail "span histogram missing");
  Obs.set_enabled false

(* ------------------------------------------------------------------ *)
(* Snapshot and JSON export. *)

let test_snapshot_sorted_and_complete () =
  reset_disabled ();
  (* Registered-but-never-recorded instruments must still appear: the
     sequential fig4 snapshot relies on pool/tasks_stolen showing up as
     zero rather than vanishing. *)
  let _ = Obs.Counter.make "test_obs/zz_never_recorded" in
  let snap = Obs.snapshot () in
  (match Obs.find snap "test_obs/zz_never_recorded" with
  | Some (Obs.Counter { total; per_domain }) ->
      Alcotest.(check int) "unrecorded counter is zero" 0 total;
      Alcotest.(check int) "no domain cells" 0 (List.length per_domain)
  | _ -> Alcotest.fail "unrecorded instrument missing from snapshot");
  let names = List.map fst snap in
  Alcotest.(check bool) "names sorted and unique" true
    (List.sort_uniq String.compare names = names)

let test_json_deterministic () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/json_counter" in
  let h = Obs.Histogram.make "test_obs/json_hist" in
  let g = Obs.Gauge.make "test_obs/json_gauge" in
  let t = Obs.Trajectory.make "test_obs/json_traj" in
  Obs.Counter.add c 7;
  Obs.Histogram.observe h 0.125;
  Obs.Histogram.observe h Float.infinity;
  Obs.Gauge.set g 0.75;
  Obs.Trajectory.record t 1e-9;
  Obs.set_enabled false;
  let s1 = Obs.to_json (Obs.snapshot ()) in
  let s2 = Obs.to_json (Obs.snapshot ()) in
  Alcotest.(check string) "equal snapshots render byte-identically" s1 s2;
  let contains sub =
    let nl = String.length s1 and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub s1 i sl = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "wrapper object" true
    (String.length s1 > 2 && s1.[0] = '{');
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true
        (contains sub))
    [
      "\"metrics\"";
      "\"test_obs/json_counter\"";
      "\"total\": 7";
      "\"test_obs/json_gauge\"";
      "0.75";
      "\"test_obs/json_hist\"";
      "\"test_obs/json_traj\"";
    ];
  (* Non-finite floats must not leak into the JSON (rendered null). *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "no %s token" bad) false
        (contains bad))
    [ "inf"; "nan"; "neg_infinity" ];
  (* The whole string stays structurally balanced. *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun ch ->
      (match ch with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ());
      if !depth < !min_depth then min_depth := !depth)
    s1;
  Alcotest.(check int) "brackets balanced" 0 !depth;
  Alcotest.(check int) "never negative depth" 0 !min_depth

let test_text_renders () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/text_counter" in
  Obs.Counter.incr c;
  Obs.set_enabled false;
  let s = Format.asprintf "%a" Obs.pp_text (Obs.snapshot ()) in
  Alcotest.(check bool) "text mentions the counter" true
    (let sub = "test_obs/text_counter" in
     let nl = String.length s and sl = String.length sub in
     let rec at i = i + sl <= nl && (String.sub s i sl = sub || at (i + 1)) in
     at 0)

(* ------------------------------------------------------------------ *)
(* Trace journal: ring eviction, merge determinism, chrome export. *)

let test_trace_ring_eviction () =
  reset_disabled ();
  let cap0 = Obs.Trace.capacity () in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_capacity cap0)
    (fun () ->
      Obs.Trace.set_capacity 8;
      Alcotest.(check int) "capacity took" 8 (Obs.Trace.capacity ());
      Obs.Trace.set_enabled true;
      for i = 0 to 19 do
        Obs.Trace.instant ~arg:i "test_obs/evict"
      done;
      Obs.Trace.set_enabled false;
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "ring keeps capacity events" 8 (List.length evs);
      Alcotest.(check int) "eviction counted" 12 (Obs.Trace.dropped ());
      (* The survivors are the newest records, oldest first, with their
         original sequence numbers and payloads intact. *)
      List.iteri
        (fun k (e : Obs.Trace.event) ->
          Alcotest.(check int) "surviving seq" (12 + k) e.Obs.Trace.seq;
          Alcotest.(check (option int))
            "surviving payload" (Some (12 + k)) e.Obs.Trace.arg;
          Alcotest.(check bool) "instant phase" true
            (e.Obs.Trace.phase = Obs.Trace.Instant))
        evs;
      (* Timestamps never decrease within one domain's ring. *)
      let rec mono = function
        | (a : Obs.Trace.event) :: (b :: _ as tl) ->
            a.Obs.Trace.ts <= b.Obs.Trace.ts && mono tl
        | _ -> true
      in
      Alcotest.(check bool) "timestamps monotone" true (mono evs);
      Obs.Trace.reset ();
      Alcotest.(check int) "reset clears events" 0
        (List.length (Obs.Trace.events ()));
      Alcotest.(check int) "reset clears drops" 0 (Obs.Trace.dropped ());
      Alcotest.check_raises "capacity < 1 rejected"
        (Invalid_argument "Obs.Trace.set_capacity: capacity < 1") (fun () ->
          Obs.Trace.set_capacity 0))

let test_trace_merge_determinism () =
  reset_disabled ();
  Obs.Trace.set_enabled true;
  let n = 32 in
  Pool.with_pool ~workers:2 (fun pool ->
      ignore
        (Pool.map pool
           (fun i -> Obs.Trace.with_span ~arg:i "test_obs/task" (fun () -> i))
           (Array.init n Fun.id)));
  Obs.Trace.set_enabled false;
  let e1 = Obs.Trace.events () in
  let e2 = Obs.Trace.events () in
  Alcotest.(check bool) "two exports are identical" true (e1 = e2);
  (* Each task contributes a balanced B/E pair (the pool adds its own
     pool/task spans on top). *)
  let count phase =
    List.length
      (List.filter
         (fun (e : Obs.Trace.event) ->
           e.Obs.Trace.name = "test_obs/task" && e.Obs.Trace.phase = phase)
         e1)
  in
  Alcotest.(check int) "every begin recorded" n (count Obs.Trace.Begin);
  Alcotest.(check int) "begins balanced by ends" n (count Obs.Trace.End);
  (* The merged stream is sorted by (ts, domain, seq)... *)
  let key (e : Obs.Trace.event) =
    (e.Obs.Trace.ts, e.Obs.Trace.domain, e.Obs.Trace.seq)
  in
  let rec sorted = function
    | a :: (b :: _ as tl) -> compare (key a) (key b) <= 0 && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "merge sorted by (ts, domain, seq)" true (sorted e1);
  (* ...and within each domain the sequence numbers stay strictly
     increasing in timestamp order, so B/E nesting is reconstructible
     per track even after the cross-domain merge. *)
  let domains =
    List.sort_uniq compare
      (List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.domain) e1)
  in
  Alcotest.(check bool) "at least one domain track" true
    (List.length domains >= 1);
  List.iter
    (fun d ->
      let seqs =
        List.filter_map
          (fun (e : Obs.Trace.event) ->
            if e.Obs.Trace.domain = d then Some e.Obs.Trace.seq else None)
          e1
      in
      let rec strictly_incr = function
        | a :: (b :: _ as tl) -> a < b && strictly_incr tl
        | _ -> true
      in
      Alcotest.(check bool) "per-domain seq strictly increasing" true
        (strictly_incr seqs))
    domains

let test_trace_chrome_json () =
  reset_disabled ();
  Obs.Trace.set_enabled true;
  Obs.Trace.begin_ ~arg:128 "test_obs/chrome";
  Obs.Trace.instant "test_obs/chrome_i";
  Obs.Trace.end_ "test_obs/chrome";
  Obs.Trace.set_enabled false;
  let s = Obs.Trace.to_chrome_json () in
  match Json.parse s with
  | Error e -> Alcotest.failf "chrome JSON does not parse: %s" e
  | Ok (Json.Obj _ | Json.Num _ | Json.Str _ | Json.Bool _ | Json.Null) ->
      Alcotest.fail "chrome JSON is not an array"
  | Ok (Json.List items) ->
      (* process_name + one thread_name per live track + 3 events. *)
      Alcotest.(check int) "metadata plus events" 5 (List.length items);
      List.iter
        (fun it ->
          List.iter
            (fun k ->
              if Json.member k it = None then
                Alcotest.failf "event missing required key %S" k)
            [ "name"; "ph"; "ts"; "pid"; "tid" ])
        items;
      let phases_of name =
        List.filter_map
          (fun it ->
            match (Json.member "name" it, Json.member "ph" it) with
            | Some (Json.Str n), Some (Json.Str p) when n = name -> Some p
            | _ -> None)
          items
      in
      Alcotest.(check (list string))
        "metadata events present" [ "M" ]
        (List.sort_uniq compare
           (phases_of "process_name" @ phases_of "thread_name"));
      Alcotest.(check (list string))
        "begin/end round-trip in order" [ "B"; "E" ]
        (phases_of "test_obs/chrome");
      Alcotest.(check (list string))
        "instant phase" [ "i" ]
        (phases_of "test_obs/chrome_i");
      (* The integer payload lands under args.v on the begin event. *)
      let begin_ev =
        List.find
          (fun it ->
            Json.member "name" it = Some (Json.Str "test_obs/chrome")
            && Json.member "ph" it = Some (Json.Str "B"))
          items
      in
      (match Option.bind (Json.member "args" begin_ev) (Json.member "v") with
      | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "payload" 128.0 v
      | _ -> Alcotest.fail "begin event lost its args payload");
      (* Timestamps are microseconds: nonnegative finite numbers. *)
      List.iter
        (fun it ->
          match Json.member "ts" it with
          | Some (Json.Num t) ->
              Alcotest.(check bool) "ts finite and nonnegative" true
                (Float.is_finite t && t >= 0.0)
          | _ -> Alcotest.fail "ts is not a number")
        items

(* ------------------------------------------------------------------ *)
(* JSON tree: parse/print round-trip and the non-finite policy. *)

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "%S does not parse: %s" s e
      | Ok v ->
          (* Both printer forms must parse back to the same tree, and the
             compact form must be a fixed point of print-then-parse. *)
          let compact = Json.to_string v in
          Alcotest.(check bool)
            (Printf.sprintf "compact round-trip of %S" s)
            true
            (Json.parse_exn compact = v);
          Alcotest.(check string)
            (Printf.sprintf "compact printing is a fixed point for %S" s)
            compact
            (Json.to_string (Json.parse_exn compact));
          Alcotest.(check bool)
            (Printf.sprintf "pretty round-trip of %S" s)
            true
            (Json.parse_exn (Json.to_string ~pretty:true v) = v))
    [
      "null";
      "true";
      "[]";
      "{}";
      "[1,-2,2.5,1e+100]";
      "{\"a\":[{\"b\":\"c\"}],\"d\":\"\"}";
      "\"quote \\\" backslash \\\\ control \\u0001 text\"";
      "9007199254740993";
    ];
  (* Lenient non-finite literals parse (historical bench output printed
     NaN timings), but the printer never emits them. *)
  (match Json.parse_exn "[NaN, Infinity, -inf, nan, -Infinity]" with
  | Json.List [ a; b; c; d; e ] ->
      let num = function Json.Num f -> f | _ -> Alcotest.fail "not a Num" in
      Alcotest.(check bool) "NaN parses" true (Float.is_nan (num a));
      Alcotest.(check (float 0.0)) "Infinity" Float.infinity (num b);
      Alcotest.(check (float 0.0)) "-inf" Float.neg_infinity (num c);
      Alcotest.(check bool) "nan" true (Float.is_nan (num d));
      Alcotest.(check (float 0.0)) "-Infinity" Float.neg_infinity (num e)
  | _ -> Alcotest.fail "non-finite literal list did not parse");
  Alcotest.(check string)
    "non-finite renders null" "[null, null, null]"
    (Json.to_string
       (Json.List [ Json.Num Float.nan; Json.Num Float.infinity;
                    Json.Num Float.neg_infinity ]));
  (* Escaped surrogate pairs decode to UTF-8. *)
  (match Json.parse_exn "\"\\ud83d\\ude00\"" with
  | Json.Str s -> Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate string did not parse");
  (* An unpaired high surrogate falls back to WTF-8 so parsing stays
     total on any printer output. *)
  (match Json.parse_exn "\"\\ud800x\"" with
  | Json.Str s ->
      Alcotest.(check string) "unpaired surrogate (WTF-8)" "\xed\xa0\x80x" s
  | _ -> Alcotest.fail "unpaired surrogate did not parse");
  (* Errors: trailing garbage and truncation are rejected. *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "1 x"; "{\"a\":1"; "[1,]"; "\"unterminated"; ""; "{1:2}" ]

(* ------------------------------------------------------------------ *)
(* Manifest: schema stability and round-trip determinism. *)

let manifest_fixture () =
  Manifest.make ~figures:[ "fig4"; "fig7" ]
    ~parameters:
      [ ("seed", Json.Str "424242"); ("jobs", Json.Num 2.0);
        ("cutoff", Json.Str "inf") ]
    ~wall_seconds:1.5 ~tool:"test_obs" ()

let test_manifest_schema_stability () =
  let m = manifest_fixture () in
  (match m with
  | Json.Obj kvs ->
      (* The key list and order ARE the schema; a change here must bump
         Manifest.schema. *)
      Alcotest.(check (list string))
        "fixed key order"
        [
          "schema"; "tool"; "figures"; "parameters"; "ocaml_version";
          "os_type"; "word_size"; "argv"; "git_rev"; "git_dirty";
          "metrics_enabled"; "generated_at_unix"; "wall_seconds"; "metrics";
        ]
        (List.map fst kvs)
  | _ -> Alcotest.fail "manifest is not an object");
  Alcotest.(check (option string))
    "schema tag"
    (Some "lrd-manifest/1")
    (match Json.member "schema" m with
    | Some (Json.Str s) -> Some s
    | _ -> None);
  Alcotest.(check string) "exported schema constant" "lrd-manifest/1"
    Manifest.schema;
  (match Json.member "ocaml_version" m with
  | Some (Json.Str v) -> Alcotest.(check string) "ocaml version" Sys.ocaml_version v
  | _ -> Alcotest.fail "ocaml_version missing")

let test_manifest_roundtrip_deterministic () =
  let m1 = manifest_fixture () in
  (* Pretty output (the on-disk form) parses back to the same tree:
     float timestamps survive because the printer is shortest
     round-trip. *)
  Alcotest.(check bool) "pretty form round-trips" true
    (Json.parse_exn (Json.to_string ~pretty:true m1) = m1);
  (* Two manifests of the same run differ only in the two timestamp
     fields — the same-seed determinism contract the CLI relies on. *)
  let m2 = manifest_fixture () in
  let strip = function
    | Json.Obj kvs ->
        Json.Obj
          (List.filter
             (fun (k, _) -> k <> "generated_at_unix" && k <> "wall_seconds")
             kvs)
    | j -> j
  in
  Alcotest.(check string) "identical modulo timestamps"
    (Json.to_string ~pretty:true (strip m1))
    (Json.to_string ~pretty:true (strip m2));
  (* The timestamp fields sit alone on their own pretty-printed lines,
     so `grep -v` can filter them out of a file diff. *)
  let lines = String.split_on_char '\n' (Json.to_string ~pretty:true m1) in
  List.iter
    (fun key ->
      let hits =
        List.filter
          (fun l ->
            let sub = "\"" ^ key ^ "\"" in
            let nl = String.length l and sl = String.length sub in
            let rec at i = i + sl <= nl && (String.sub l i sl = sub || at (i + 1)) in
            at 0)
          lines
      in
      Alcotest.(check int) (key ^ " on exactly one line") 1 (List.length hits))
    [ "generated_at_unix"; "wall_seconds" ]

(* ------------------------------------------------------------------ *)
(* Diff engine: classification, thresholds, format auto-detection. *)

let bench_json rows =
  Json.List
    (List.map
       (fun (n, v) ->
         Json.Obj [ ("name", Json.Str n); ("ns_per_run", Json.Num v) ])
       rows)

let diff_status report name =
  (List.find (fun (r : Diff.row) -> r.Diff.name = name) report.Diff.rows)
    .Diff.status

let test_diff_classification () =
  let base =
    bench_json
      [ ("flat", 100.); ("creep", 150.); ("blowup", 100.); ("faster", 100.);
        ("gone", 5.) ]
  in
  let current =
    bench_json
      [ ("flat", 100.); ("creep", 180.); ("blowup", 300.); ("faster", 40.);
        ("fresh", 1.) ]
  in
  match Diff.compare_values base current with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok r ->
      Alcotest.(check int) "one regression" 1 r.Diff.regressions;
      Alcotest.(check int) "one missing in current" 1 r.Diff.missing;
      Alcotest.(check int) "one new in current" 1 r.Diff.additions;
      Alcotest.(check bool) "unchanged" true
        (diff_status r "flat" = Diff.Unchanged);
      Alcotest.(check bool) "within threshold is changed" true
        (diff_status r "creep" = Diff.Changed);
      Alcotest.(check bool) ">2x is regressed" true
        (diff_status r "blowup" = Diff.Regressed);
      Alcotest.(check bool) "large decrease is improved" true
        (diff_status r "faster" = Diff.Improved);
      Alcotest.(check bool) "base-only warns" true
        (diff_status r "gone" = Diff.Missing_current);
      Alcotest.(check bool) "current-only is an addition" true
        (diff_status r "fresh" = Diff.Missing_base);
      let rendered = Diff.render r in
      let contains sub =
        let nl = String.length rendered and sl = String.length sub in
        let rec at i =
          i + sl <= nl && (String.sub rendered i sl = sub || at (i + 1))
        in
        at 0
      in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "render mentions %S" sub) true
            (contains sub))
        [ "REGRESSED"; "missing in current"; "missing in base";
          "6 series compared"; "1 new in current"; "1 missing in current" ];
      Alcotest.(check bool) "unchanged rows not rendered" false
        (contains "flat")

let test_diff_thresholds () =
  let base = bench_json [ ("k", 100.) ] in
  let current = bench_json [ ("k", 300.) ] in
  let regressions ?threshold ?min_abs () =
    match Diff.compare_values ?threshold ?min_abs base current with
    | Ok r -> r.Diff.regressions
    | Error e -> Alcotest.failf "diff failed: %s" e
  in
  Alcotest.(check int) "3x beats the default 2x gate" 1 (regressions ());
  Alcotest.(check int) "raising the ratio clears it" 0
    (regressions ~threshold:4.0 ());
  Alcotest.(check int) "min_abs suppresses small absolute deltas" 0
    (regressions ~min_abs:250.0 ());
  Alcotest.(check int) "min_abs below the delta keeps it" 1
    (regressions ~min_abs:200.0 ());
  (* A zero base never regresses (ratio is meaningless). *)
  match
    Diff.compare_values (bench_json [ ("z", 0.) ]) (bench_json [ ("z", 50.) ])
  with
  | Ok r ->
      Alcotest.(check int) "zero base cannot regress" 0 r.Diff.regressions;
      Alcotest.(check bool) "but it does report as changed" true
        (diff_status r "z" = Diff.Changed)
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_diff_format_autodetect () =
  reset_disabled ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/diff_counter" in
  Obs.Counter.add c 7;
  Obs.set_enabled false;
  let snap = Json.parse_exn (Obs.to_json (Obs.snapshot ())) in
  (* Metrics snapshot: counters compare by total. *)
  (match Diff.scalars snap with
  | Ok series ->
      Alcotest.(check (option (float 0.0)))
        "counter total extracted" (Some 7.0)
        (List.assoc_opt "test_obs/diff_counter" series)
  | Error e -> Alcotest.failf "snapshot not recognized: %s" e);
  (* Manifest: the embedded snapshot is compared after a schema check. *)
  let manifest =
    Manifest.make ~metrics:snap ~tool:"test_obs" ()
  in
  (match Diff.compare_values manifest snap with
  | Ok r -> Alcotest.(check int) "manifest vs snapshot aligns" 0 r.Diff.regressions
  | Error e -> Alcotest.failf "manifest diff failed: %s" e);
  (* A manifest without metrics yields an empty, valid series. *)
  (match Diff.scalars (Manifest.make ~tool:"test_obs" ()) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "metrics-less manifest should have no series"
  | Error e -> Alcotest.failf "metrics-less manifest rejected: %s" e);
  (* A wrong schema tag is an error, not a silent empty diff. *)
  let bad =
    Json.Obj [ ("schema", Json.Str "lrd-manifest/999"); ("metrics", Json.Null) ]
  in
  (match Diff.scalars bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown manifest schema accepted");
  match Diff.scalars (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unrecognized format accepted"

(* ------------------------------------------------------------------ *)
(* Report: offline trace analytics on hand-built journals with known
   answers. *)

(* One chrome trace event as the Trace exporter writes it; ts in µs. *)
let ev ?arg ~ph ~ts ~tid name =
  Printf.sprintf "{\"name\": %S, \"ph\": %S, \"ts\": %.3f, \"pid\": 0, \
                  \"tid\": %d%s}"
    name ph ts tid
    (match arg with
    | None -> ""
    | Some v -> Printf.sprintf ", \"args\": {\"v\": %d}" v)

let journal events = "[" ^ String.concat ", " events ^ "]"

let report_of_events events =
  match Report.of_chrome_json (Json.parse_exn (journal events)) with
  | Ok r -> r
  | Error e -> Alcotest.failf "report: %s" e

(* Two domains: tid 0 runs a warm-start chain of three slices (1, 2 and
   3 ms, cells 0 -> 1 -> 2), tid 1 runs one lone 10 ms slice (cell 7).
   One steal against four pool tasks.  Every aggregate is checkable by
   hand. *)
let synthetic_sweep =
  [
    ev ~ph:"M" ~ts:0.0 ~tid:0 "process_name";
    ev ~ph:"B" ~ts:0.0 ~tid:0 ~arg:0 "sweep/slice";
    ev ~ph:"E" ~ts:1000.0 ~tid:0 ~arg:0 "sweep/slice";
    ev ~ph:"i" ~ts:1000.0 ~tid:0 ~arg:1 "sweep/warm_start";
    ev ~ph:"B" ~ts:1000.0 ~tid:0 ~arg:1 "sweep/slice";
    ev ~ph:"E" ~ts:3000.0 ~tid:0 ~arg:1 "sweep/slice";
    ev ~ph:"i" ~ts:3000.0 ~tid:0 ~arg:2 "sweep/warm_start";
    ev ~ph:"B" ~ts:3000.0 ~tid:0 ~arg:2 "sweep/slice";
    ev ~ph:"E" ~ts:6000.0 ~tid:0 ~arg:2 "sweep/slice";
    ev ~ph:"B" ~ts:0.0 ~tid:1 ~arg:7 "sweep/slice";
    ev ~ph:"E" ~ts:10000.0 ~tid:1 ~arg:7 "sweep/slice";
    ev ~ph:"B" ~ts:0.0 ~tid:0 ~arg:0 "pool/task";
    ev ~ph:"E" ~ts:0.0 ~tid:0 ~arg:0 "pool/task";
    ev ~ph:"B" ~ts:0.0 ~tid:0 ~arg:1 "pool/task";
    ev ~ph:"E" ~ts:0.0 ~tid:0 ~arg:1 "pool/task";
    ev ~ph:"B" ~ts:0.0 ~tid:1 ~arg:2 "pool/task";
    ev ~ph:"E" ~ts:0.0 ~tid:1 ~arg:2 "pool/task";
    ev ~ph:"B" ~ts:0.0 ~tid:1 ~arg:3 "pool/task";
    ev ~ph:"E" ~ts:0.0 ~tid:1 ~arg:3 "pool/task";
    ev ~ph:"i" ~ts:0.0 ~tid:1 ~arg:2 "pool/steal";
  ]

let feq = Alcotest.(check (float 1e-9))

let has_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let test_report_phase_aggregates () =
  let r = report_of_events synthetic_sweep in
  Alcotest.(check int) "events (metadata dropped)" 19 r.Report.events;
  Alcotest.(check int) "no unmatched halves" 0 r.Report.dropped_unmatched;
  feq "extent" 0.010 r.Report.extent;
  let slice =
    List.find
      (fun p -> p.Report.phase_name = "sweep/slice")
      r.Report.phases
  in
  Alcotest.(check int) "slice count" 4 slice.Report.count;
  feq "slice total" 0.016 slice.Report.total;
  feq "slice p50 (sorted [1;2;3;10]ms)" 0.002 slice.Report.p50;
  feq "slice p95" 0.010 slice.Report.p95;
  feq "slice max" 0.010 slice.Report.max

let test_report_domains_and_pool () =
  let r = report_of_events synthetic_sweep in
  (match r.Report.domains with
  | [ d0; d1 ] ->
      Alcotest.(check int) "tids" 0 d0.Report.domain;
      Alcotest.(check int) "tids" 1 d1.Report.domain;
      (* tid 0: slices cover [0, 6ms] of the 10 ms extent. *)
      feq "d0 busy" 0.006 d0.Report.busy;
      feq "d0 idle" 0.004 d0.Report.idle;
      feq "d0 util" 0.6 d0.Report.utilization;
      feq "d1 busy" 0.010 d1.Report.busy;
      feq "d1 idle" 0.0 d1.Report.idle
  | ds -> Alcotest.failf "expected 2 domains, got %d" (List.length ds));
  Alcotest.(check int) "tasks" 4 r.Report.pool.Report.tasks;
  Alcotest.(check int) "steals" 1 r.Report.pool.Report.steals;
  feq "steal ratio" 0.25 r.Report.pool.Report.steal_ratio

let test_report_critical_path () =
  (* The lone 10 ms cell beats the 6 ms warm chain... *)
  let r = report_of_events synthetic_sweep in
  (match r.Report.critical with
  | Some cp ->
      Alcotest.(check (list int)) "lone cell wins" [ 7 ] cp.Report.path;
      feq "path seconds" 0.010 cp.Report.path_seconds
  | None -> Alcotest.fail "no critical path");
  (* ...and without it the warm-start chain 0 -> 1 -> 2 is the path. *)
  let chain_only =
    List.filter
      (fun e ->
        not
          (List.mem e
             [
               ev ~ph:"B" ~ts:0.0 ~tid:1 ~arg:7 "sweep/slice";
               ev ~ph:"E" ~ts:10000.0 ~tid:1 ~arg:7 "sweep/slice";
             ]))
      synthetic_sweep
  in
  let r = report_of_events chain_only in
  match r.Report.critical with
  | Some cp ->
      Alcotest.(check (list int)) "warm chain" [ 0; 1; 2 ] cp.Report.path;
      feq "chain seconds" 0.006 cp.Report.path_seconds
  | None -> Alcotest.fail "no critical path"

let test_report_cold_cell_breaks_chain () =
  (* No warm-start edge into cell 1: chains restart there, so the best
     chain is just the slowest single cell. *)
  let events =
    [
      ev ~ph:"B" ~ts:0.0 ~tid:0 ~arg:0 "sweep/slice";
      ev ~ph:"E" ~ts:4000.0 ~tid:0 ~arg:0 "sweep/slice";
      ev ~ph:"B" ~ts:4000.0 ~tid:0 ~arg:1 "sweep/slice";
      ev ~ph:"E" ~ts:7000.0 ~tid:0 ~arg:1 "sweep/slice";
    ]
  in
  let r = report_of_events events in
  match r.Report.critical with
  | Some cp ->
      Alcotest.(check (list int)) "cold cells stand alone" [ 0 ]
        cp.Report.path;
      feq "path seconds" 0.004 cp.Report.path_seconds
  | None -> Alcotest.fail "no critical path"

let test_report_unmatched_and_determinism () =
  let events =
    [
      (* An E with no B (ring evicted the open) and a B never closed. *)
      ev ~ph:"E" ~ts:500.0 ~tid:0 "solver/solve";
      ev ~ph:"B" ~ts:600.0 ~tid:0 "sweep/scheduled";
      ev ~ph:"B" ~ts:700.0 ~tid:0 ~arg:3 "sweep/slice";
      ev ~ph:"E" ~ts:900.0 ~tid:0 ~arg:3 "sweep/slice";
    ]
  in
  let r = report_of_events events in
  Alcotest.(check int) "unmatched halves counted" 2
    r.Report.dropped_unmatched;
  let bytes1 = Json.to_string ~pretty:true (Report.to_json r) in
  let r2 = report_of_events events in
  let bytes2 = Json.to_string ~pretty:true (Report.to_json r2) in
  Alcotest.(check string) "report json byte-identical" bytes1 bytes2

let test_report_rejects_non_journal () =
  (match Report.of_chrome_json (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "object accepted as journal");
  match Report.of_file "/nonexistent/journal.json" with
  | Error e ->
      Alcotest.(check bool) "error names the file" true
        (has_sub ~sub:"/nonexistent/journal.json" e)
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ------------------------------------------------------------------ *)
(* Export: OpenMetrics exposition and escaping. *)

let test_openmetrics_escaping_roundtrip () =
  let cases =
    [
      "";
      "plain";
      "back\\slash";
      "quo\"te";
      "line\nbreak";
      "\\n is not a newline";
      "mix \\ \" \n end\\";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "round-trip %S" s)
        s
        (Export.unescape_label_value (Export.escape_label_value s)))
    cases;
  Alcotest.(check string) "escaped form" "a\\\\b\\\"c\\nd"
    (Export.escape_label_value "a\\b\"c\nd")

let test_openmetrics_names_and_exposition () =
  reset_disabled ();
  Alcotest.(check string) "name sanitization" "lrd_solver_solve_seconds"
    (Export.metric_name "solver/solve_seconds");
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs/om_counter" in
  let g = Obs.Gauge.make "test_obs/om_gauge" in
  let h = Obs.Histogram.make "test_obs/om_histogram" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 2.5;
  Obs.Histogram.observe h 0.5;
  Obs.set_enabled false;
  let text = Export.openmetrics (Obs.snapshot ()) in
  let has sub = has_sub ~sub text in
  Alcotest.(check bool) "counter series" true
    (has "lrd_test_obs_om_counter_total{domain=\"0\"} 5");
  Alcotest.(check bool) "gauge series" true
    (has "lrd_test_obs_om_gauge 2.5");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (has "lrd_test_obs_om_histogram_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "histogram count" true
    (has "lrd_test_obs_om_histogram_count 1");
  (* 0.5 lands in the [2^-1, 2^0) bucket: cumulative 1 at le=1. *)
  Alcotest.(check bool) "histogram bucket upper bound" true
    (has "lrd_test_obs_om_histogram_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "EOF terminator" true
    (has_suffix ~suffix:"# EOF\n" text)

(* ------------------------------------------------------------------ *)
(* Resource: GC gauges appear once sampled; Alloc attributes minor
   words. *)

let test_resource_sample_publishes_gauges () =
  reset_disabled ();
  Obs.set_enabled true;
  Resource.sample ();
  Obs.set_enabled false;
  let snap = Obs.snapshot () in
  List.iter
    (fun name ->
      match Obs.find snap name with
      | Some (Obs.Gauge (Some v)) ->
          Alcotest.(check bool)
            (name ^ " nonnegative")
            true (v >= 0.0)
      | _ -> Alcotest.failf "%s not published" name)
    [ "gc/minor_words"; "gc/major_words"; "gc/heap_words"; "gc/compactions" ]

let test_resource_alloc_attribution () =
  reset_disabled ();
  Obs.set_enabled true;
  let a = Resource.Alloc.make "test_obs/alloc_attr" in
  let w0 = Resource.Alloc.start () in
  (* Allocate something measurable: 10k boxed floats. *)
  let arr = Array.init 10_000 (fun i -> float_of_int i +. 0.5) in
  ignore (Sys.opaque_identity arr);
  Resource.Alloc.stop a w0;
  Obs.set_enabled false;
  let words = Resource.Alloc.value a in
  Alcotest.(check bool)
    (Printf.sprintf "attributed %d minor words" words)
    true (words >= 10_000)

let () =
  Alcotest.run "obs"
    [
      ( "disabled-path",
        [
          Alcotest.test_case "zero allocation" `Quick
            test_disabled_path_does_not_allocate;
        ] );
      ( "counter",
        [
          Alcotest.test_case "totals and reset" `Quick test_counter_totals;
          Alcotest.test_case "kind clash" `Quick test_counter_kind_clash;
          Alcotest.test_case "per-domain under pool" `Quick
            test_counter_per_domain_under_pool;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "observations" `Quick test_histogram_observations;
        ] );
      ( "trajectory",
        [ Alcotest.test_case "ring eviction" `Quick test_trajectory_ring ] );
      ( "span",
        [
          Alcotest.test_case "records duration" `Quick
            test_span_records_duration;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot sorted and complete" `Quick
            test_snapshot_sorted_and_complete;
          Alcotest.test_case "json deterministic" `Quick
            test_json_deterministic;
          Alcotest.test_case "text renders" `Quick test_text_renders;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "merge determinism" `Quick
            test_trace_merge_determinism;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
        ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "manifest",
        [
          Alcotest.test_case "schema stability" `Quick
            test_manifest_schema_stability;
          Alcotest.test_case "round-trip deterministic" `Quick
            test_manifest_roundtrip_deterministic;
        ] );
      ( "report",
        [
          Alcotest.test_case "phase aggregates" `Quick
            test_report_phase_aggregates;
          Alcotest.test_case "domains and pool" `Quick
            test_report_domains_and_pool;
          Alcotest.test_case "critical path" `Quick test_report_critical_path;
          Alcotest.test_case "cold cell breaks chain" `Quick
            test_report_cold_cell_breaks_chain;
          Alcotest.test_case "unmatched halves and determinism" `Quick
            test_report_unmatched_and_determinism;
          Alcotest.test_case "rejects non-journal" `Quick
            test_report_rejects_non_journal;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "escaping round-trip" `Quick
            test_openmetrics_escaping_roundtrip;
          Alcotest.test_case "names and exposition" `Quick
            test_openmetrics_names_and_exposition;
        ] );
      ( "resource",
        [
          Alcotest.test_case "sample publishes gauges" `Quick
            test_resource_sample_publishes_gauges;
          Alcotest.test_case "alloc attribution" `Quick
            test_resource_alloc_attribution;
        ] );
      ( "diff",
        [
          Alcotest.test_case "classification" `Quick test_diff_classification;
          Alcotest.test_case "thresholds" `Quick test_diff_thresholds;
          Alcotest.test_case "format auto-detection" `Quick
            test_diff_format_autodetect;
        ] );
    ]
