open Lrd_core

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let onoff_marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ]

let exp_model mean =
  Model.create ~marginal:onoff_marginal
    ~interarrival:(Lrd_dist.Interarrival.exponential ~mean)

let pareto_model ?(marginal = onoff_marginal) ~theta ~alpha ~cutoff () =
  Model.cutoff_pareto ~marginal ~theta ~alpha ~cutoff

(* ------------------------------------------------------------------ *)
(* Model *)

let test_hurst_alpha_mapping () =
  check_close "alpha of 0.83" 1.34 (Model.alpha_of_hurst 0.83);
  check_close "hurst of 1.34" 0.83 (Model.hurst_of_alpha 1.34);
  check_close "roundtrip" 0.7 (Model.hurst_of_alpha (Model.alpha_of_hurst 0.7));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Model.alpha_of_hurst: hurst must lie in (0.5, 1)")
    (fun () -> ignore (Model.alpha_of_hurst 0.5))

let test_model_moments () =
  let m = exp_model 1.0 in
  check_close "mean rate (eq. 2)" 1.0 (Model.mean_rate m);
  check_close "rate variance (eq. 4)" 1.0 (Model.rate_variance m);
  check_close "mean epoch" 1.0 (Model.mean_epoch m);
  check_close "service for util 0.5" 2.0
    (Model.service_rate_for_utilization m ~utilization:0.5)

let test_covariance_drops_at_cutoff () =
  (* Eq. 8: correlation is exactly zero beyond the cutoff lag. *)
  let m = pareto_model ~theta:0.5 ~alpha:1.4 ~cutoff:3.0 () in
  Alcotest.(check bool) "positive inside" true (Model.covariance m 1.0 > 0.0);
  check_close "zero at cutoff" 0.0 (Model.covariance m 3.0);
  check_close "zero beyond" 0.0 (Model.covariance m 10.0);
  check_close "variance at lag 0" (Model.rate_variance m)
    (Model.covariance m 0.0)

let test_covariance_formula_eq8 () =
  (* Closed form of eq. 8 against the implementation. *)
  let theta = 0.5 and alpha = 1.4 and cutoff = 3.0 in
  let m = pareto_model ~theta ~alpha ~cutoff () in
  let expected t =
    let p x = ((x +. theta) /. theta) ** (1.0 -. alpha) in
    Model.rate_variance m *. (p t -. p cutoff) /. (p 0.0 -. p cutoff)
  in
  List.iter
    (fun t ->
      check_close ~eps:1e-10
        (Printf.sprintf "phi(%g)" t)
        (expected t) (Model.covariance m t))
    [ 0.1; 0.5; 1.0; 2.0; 2.9 ]

let test_covariance_matches_monte_carlo () =
  (* The model's phi(t) = sigma^2 Pr{tau_res >= t} against an empirical
     autocovariance of a sampled path. *)
  let m = pareto_model ~theta:0.3 ~alpha:1.6 ~cutoff:5.0 () in
  let rng = Lrd_rng.Rng.create ~seed:2025L in
  let slot = 0.05 in
  let trace = Model.sample_trace m rng ~slots:400_000 ~slot in
  let acv =
    Lrd_stats.Autocorr.autocovariance trace.Lrd_trace.Trace.rates ~max_lag:40
  in
  (* Slot averaging smooths lag 0; compare at a few multi-slot lags. *)
  List.iter
    (fun lag ->
      let t = float_of_int lag *. slot in
      check_close ~eps:0.1
        (Printf.sprintf "acv at %g" t)
        (Model.covariance m t) acv.(lag))
    [ 4; 8; 16 ]

let test_sample_epochs_statistics () =
  let m = pareto_model ~theta:0.4 ~alpha:1.8 ~cutoff:2.0 () in
  let rng = Lrd_rng.Rng.create ~seed:31L in
  let epochs = Model.sample_epochs m rng ~n:100_000 in
  let durations = Array.map snd epochs in
  let rates = Array.map fst epochs in
  check_close ~eps:0.02 "mean epoch" (Model.mean_epoch m)
    (Lrd_numerics.Array_ops.mean durations);
  check_close ~eps:0.02 "mean rate" 1.0 (Lrd_numerics.Array_ops.mean rates)

let test_fit_from_trace_recovers_marginal () =
  (* Fit on a sampled path of a known model: marginal mean and epoch
     scale must come back close. *)
  let rng = Lrd_rng.Rng.create ~seed:17L in
  let trace =
    Lrd_trace.Video.generate_short rng ~n:16_384
  in
  let fitted = Model.fit_from_trace ~hurst:0.83 trace in
  check_close ~eps:1e-6 "marginal mean preserved"
    (Lrd_trace.Trace.mean trace)
    (Model.mean_rate fitted);
  (* Theta reproduces the measured mean epoch through eq. 25. *)
  let measured = Lrd_trace.Epochs.mean_epoch_duration ~bins:50 trace in
  check_close ~eps:1e-9 "epoch matched" measured (Model.mean_epoch fitted)

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_mean () =
  let m = exp_model 2.0 in
  let w = Workload.create m ~service_rate:1.5 in
  (* E[W] = E[T] (mean - c) = 2 * (1 - 1.5). *)
  check_close "mean" (-1.0) (Workload.mean w)

let test_workload_survival_two_sided () =
  (* Deterministic epochs of length 1: W = lambda - c exactly. *)
  let m =
    Model.create ~marginal:onoff_marginal
      ~interarrival:(Lrd_dist.Interarrival.deterministic ~value:1.0)
  in
  let w = Workload.create m ~service_rate:1.5 in
  (* W = -1.5 w.p. 1/2, +0.5 w.p. 1/2. *)
  check_close "ge -2" 1.0 (Workload.survival_ge w (-2.0));
  check_close "ge -1.5" 1.0 (Workload.survival_ge w (-1.5));
  check_close "gt -1.5" 0.5 (Workload.survival_gt w (-1.5));
  check_close "ge 0" 0.5 (Workload.survival_ge w 0.0);
  check_close "ge 0.5" 0.5 (Workload.survival_ge w 0.5);
  check_close "gt 0.5" 0.0 (Workload.survival_gt w 0.5);
  check_close "ge 1" 0.0 (Workload.survival_ge w 1.0)

let test_workload_survival_monotone_and_bounded () =
  let m = pareto_model ~theta:0.3 ~alpha:1.5 ~cutoff:4.0 () in
  let w = Workload.create m ~service_rate:1.2 in
  let xs = Lrd_numerics.Array_ops.linspace (-10.0) 10.0 101 in
  let prev = ref 1.1 in
  Array.iter
    (fun x ->
      let v = Workload.survival_ge w x in
      if v > !prev +. 1e-12 then Alcotest.failf "not monotone at %g" x;
      if v < 0.0 || v > 1.0 then Alcotest.failf "out of [0,1] at %g" x;
      if Workload.survival_gt w x > v +. 1e-12 then
        Alcotest.failf "gt above ge at %g" x;
      prev := v)
    xs

let test_workload_max_increment () =
  let m = pareto_model ~theta:0.3 ~alpha:1.5 ~cutoff:4.0 () in
  let w = Workload.create m ~service_rate:1.2 in
  check_close "cutoff * (peak - c)" (4.0 *. 0.8) (Workload.max_increment w);
  let all_below = Workload.create m ~service_rate:3.0 in
  check_close "no growth" 0.0 (Workload.max_increment all_below);
  let unbounded =
    Workload.create
      (pareto_model ~theta:0.3 ~alpha:1.5 ~cutoff:Float.infinity ())
      ~service_rate:1.2
  in
  Alcotest.(check bool) "unbounded" true
    (Workload.max_increment unbounded = Float.infinity)

let test_expected_overflow_closed_form () =
  (* Against the paper's closed form (display after eq. 14). *)
  let theta = 0.4 and alpha = 1.5 and cutoff = 6.0 in
  let m = pareto_model ~theta ~alpha ~cutoff () in
  let c = 1.25 in
  let w = Workload.create m ~service_rate:c in
  let buffer = 2.0 in
  let paper_formula x =
    (* Only the rate 2 exceeds c; pi = 0.5, delta = 0.75. *)
    let delta = 2.0 -. c in
    if (cutoff *. delta) -. buffer +. x <= 0.0 then 0.0
    else
      theta /. (alpha -. 1.0) *. 0.5 *. delta
      *. ((((buffer -. x) /. (theta *. delta)) +. 1.0) ** (1.0 -. alpha)
         -. (((cutoff /. theta) +. 1.0) ** (1.0 -. alpha)))
  in
  List.iter
    (fun x ->
      check_close ~eps:1e-10
        (Printf.sprintf "overflow at %g" x)
        (paper_formula x)
        (Workload.expected_overflow w ~buffer ~occupancy:x))
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ]

let test_expected_overflow_monte_carlo () =
  let m = pareto_model ~theta:0.4 ~alpha:1.5 ~cutoff:6.0 () in
  let c = 1.25 in
  let w = Workload.create m ~service_rate:c in
  let buffer = 2.0 and occupancy = 1.0 in
  let rng = Lrd_rng.Rng.create ~seed:4L in
  let n = 500_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let rate, dur =
      match Model.sample_epochs m rng ~n:1 with
      | [| (r, d) |] -> (r, d)
      | _ -> assert false
    in
    let increment = (rate -. c) *. dur in
    acc := !acc +. Float.max 0.0 (increment -. (buffer -. occupancy))
  done;
  check_close ~eps:0.03 "monte carlo"
    (!acc /. float_of_int n)
    (Workload.expected_overflow w ~buffer ~occupancy)

let test_expected_overflow_monotone_in_occupancy () =
  let m = pareto_model ~theta:0.4 ~alpha:1.5 ~cutoff:6.0 () in
  let w = Workload.create m ~service_rate:1.25 in
  let prev = ref (-1.0) in
  List.iter
    (fun x ->
      let v = Workload.expected_overflow w ~buffer:2.0 ~occupancy:x in
      if v < !prev -. 1e-12 then Alcotest.failf "not increasing at %g" x;
      prev := v)
    [ 0.0; 0.4; 0.8; 1.2; 1.6; 2.0 ]

let test_zero_buffer_loss_formula () =
  let m = exp_model 1.0 in
  let w = Workload.create m ~service_rate:1.25 in
  (* E[(lambda - c)^+] / mean = 0.5 * 0.75 / 1 = 0.375. *)
  check_close "zero buffer" 0.375 (Workload.zero_buffer_loss w)

let test_discretize_bins_sum_to_one () =
  let m = pareto_model ~theta:0.4 ~alpha:1.5 ~cutoff:6.0 () in
  let w = Workload.create m ~service_rate:1.25 in
  let bins = Workload.discretize w ~buffer:2.0 ~bins:64 in
  Alcotest.(check int) "length" 129 (Array.length bins.Workload.lower);
  check_close ~eps:1e-12 "lower mass" 1.0
    (Lrd_numerics.Array_ops.sum bins.Workload.lower);
  check_close ~eps:1e-12 "upper mass" 1.0
    (Lrd_numerics.Array_ops.sum bins.Workload.upper)

let test_discretize_stochastic_ordering () =
  (* The ceiling pmf must stochastically dominate the floor pmf: for
     every threshold, the upper chain has at least as much mass above. *)
  let m = pareto_model ~theta:0.4 ~alpha:1.5 ~cutoff:6.0 () in
  let w = Workload.create m ~service_rate:1.25 in
  let bins = Workload.discretize w ~buffer:2.0 ~bins:64 in
  let tail a k =
    let n = Array.length a in
    Lrd_numerics.Summation.kahan_slice a ~pos:k ~len:(n - k)
  in
  for k = 0 to 128 do
    if tail bins.Workload.upper k < tail bins.Workload.lower k -. 1e-12 then
      Alcotest.failf "ordering violated at bin %d" k
  done

(* ------------------------------------------------------------------ *)
(* Solver *)

let test_solver_zero_buffer_closed_form () =
  let m = exp_model 1.0 in
  let r = Solver.solve m ~service_rate:1.25 ~buffer:0.0 in
  check_close "B=0" 0.375 r.Solver.loss;
  Alcotest.(check bool) "converged" true r.Solver.converged

let test_solver_underloaded_is_zero () =
  (* All rates below the service rate: loss must be exactly zero. *)
  let m = exp_model 1.0 in
  let r = Solver.solve m ~service_rate:2.5 ~buffer:1.0 in
  check_close "no loss" 0.0 r.Solver.loss

let test_solver_bounds_bracket () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let r = Solver.solve m ~service_rate:1.25 ~buffer:2.0 in
  Alcotest.(check bool) "lower <= upper" true
    (r.Solver.lower_bound <= r.Solver.upper_bound);
  Alcotest.(check bool) "loss inside" true
    (r.Solver.loss >= r.Solver.lower_bound
    && r.Solver.loss <= r.Solver.upper_bound);
  Alcotest.(check bool) "converged" true r.Solver.converged;
  (* The paper's 20% gap criterion. *)
  Alcotest.(check bool) "gap criterion" true
    (r.Solver.upper_bound -. r.Solver.lower_bound
    <= 0.2 *. ((r.Solver.upper_bound +. r.Solver.lower_bound) /. 2.0)
       +. 1e-12)

let test_solver_matches_simulation_exponential () =
  let m = exp_model 1.0 in
  let c = 1.25 and buffer = 2.0 in
  let r = Solver.solve m ~service_rate:c ~buffer in
  let rng = Lrd_rng.Rng.create ~seed:42L in
  let epochs = Model.sample_epochs m rng ~n:2_000_000 in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
  let stats =
    Lrd_fluidsim.Queue_sim.run_epochs sim (Array.to_seq epochs)
  in
  check_close ~eps:0.02 "solver vs simulation"
    (Lrd_fluidsim.Queue_sim.loss_rate stats)
    r.Solver.loss

let test_solver_matches_simulation_truncated_pareto () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:2.0 () in
  let c = 1.25 and buffer = 1.0 in
  let r = Solver.solve m ~service_rate:c ~buffer in
  let rng = Lrd_rng.Rng.create ~seed:43L in
  let epochs = Model.sample_epochs m rng ~n:2_000_000 in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
  let stats = Lrd_fluidsim.Queue_sim.run_epochs sim (Array.to_seq epochs) in
  check_close ~eps:0.05 "solver vs simulation"
    (Lrd_fluidsim.Queue_sim.loss_rate stats)
    r.Solver.loss

let test_solver_loss_decreasing_in_buffer () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let prev = ref 1.0 in
  List.iter
    (fun b ->
      let r = Solver.solve m ~service_rate:1.25 ~buffer:b in
      if r.Solver.loss > !prev +. 1e-9 then
        Alcotest.failf "loss grew at B=%g" b;
      prev := r.Solver.loss)
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ]

let test_solver_loss_increasing_in_cutoff () =
  let loss cutoff =
    let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff () in
    (Solver.solve m ~service_rate:1.25 ~buffer:2.0).Solver.loss
  in
  let prev = ref 0.0 in
  List.iter
    (fun tc ->
      let l = loss tc in
      (* 20%-tolerance bounds leave some slack; require no big drop. *)
      if l < !prev *. 0.9 then Alcotest.failf "loss dropped at Tc=%g" tc;
      prev := l)
    [ 0.5; 1.0; 2.0; 5.0; 20.0; 100.0; Float.infinity ]

let test_solver_loss_increasing_in_utilization () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let loss u = (Solver.solve_utilization m ~utilization:u ~buffer_seconds:1.0).Solver.loss in
  let l1 = loss 0.5 and l2 = loss 0.7 and l3 = loss 0.9 in
  Alcotest.(check bool) "0.5 < 0.7" true (l1 <= l2);
  Alcotest.(check bool) "0.7 < 0.9" true (l2 <= l3)

let test_solver_respects_max_iterations () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let params =
    { Solver.default_params with max_iterations = 4; check_every = 2 }
  in
  let r = Solver.solve ~params m ~service_rate:1.25 ~buffer:2.0 in
  Alcotest.(check bool) "iterations bounded" true (r.Solver.iterations <= 4)

let test_solver_direct_matches_fft () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:2.0 () in
  let solve conv =
    (Solver.solve
       ~params:{ Solver.default_params with convolution = conv }
       m ~service_rate:1.25 ~buffer:1.0)
      .Solver.loss
  in
  check_close ~eps:1e-6 "direct vs fft" (solve `Direct) (solve `Fft)

let test_solver_cold_restart_same_answer () =
  let m = pareto_model ~theta:0.05 ~alpha:1.4 ~cutoff:0.5 () in
  let warm = Solver.solve m ~service_rate:1.25 ~buffer:2.0 in
  let cold =
    Solver.solve
      ~params:{ Solver.default_params with warm_restart = false }
      m ~service_rate:1.25 ~buffer:2.0
  in
  (* Both are certified bounds on the same quantity: intervals overlap. *)
  Alcotest.(check bool) "intervals overlap" true
    (warm.Solver.lower_bound <= cold.Solver.upper_bound +. 1e-12
    && cold.Solver.lower_bound <= warm.Solver.upper_bound +. 1e-12)

let test_solver_negligible_loss_reports_zero () =
  (* Deep-buffer low-utilization case: upper bound sinks below 1e-10. *)
  let m = exp_model 0.01 in
  let r = Solver.solve m ~service_rate:1.9 ~buffer:50.0 in
  check_close "zero" 0.0 r.Solver.loss;
  Alcotest.(check bool) "converged" true r.Solver.converged

let test_solver_rejects_bad_input () =
  let m = exp_model 1.0 in
  Alcotest.check_raises "service rate"
    (Invalid_argument "Solver.solve: service rate must be positive") (fun () ->
      ignore (Solver.solve m ~service_rate:0.0 ~buffer:1.0));
  Alcotest.check_raises "buffer"
    (Invalid_argument "Solver.solve: buffer must be nonnegative") (fun () ->
      ignore (Solver.solve m ~service_rate:1.0 ~buffer:(-1.0)))

let test_solver_golden_matrix () =
  (* Bit-level regression guard for the workspace/dual-channel rewrite:
     bounds captured from the pre-rewrite solver on a fixed matrix of
     models and buffers must be reproduced within 1e-12. *)
  let abs_close msg expected actual =
    if Float.abs (expected -. actual) > 1e-12 then
      Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual
  in
  let cases =
    [
      ( "exp-b2",
        (fun () -> Solver.solve (exp_model 1.0) ~service_rate:1.25 ~buffer:2.0),
        0.13421694926699876,
        0.13739770201764384 );
      ( "pareto-b2",
        (fun () ->
          Solver.solve
            (pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 ())
            ~service_rate:1.25 ~buffer:2.0),
        0.10220519151258785,
        0.11430183756186045 );
      ( "zero-buffer",
        (fun () -> Solver.solve (exp_model 1.0) ~service_rate:1.25 ~buffer:0.0),
        0.375,
        0.375 );
      ( "deep-buffer",
        (fun () ->
          Solver.solve
            (pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 ())
            ~service_rate:1.25 ~buffer:8.0),
        0.012259692007597899,
        0.014477594113131442 );
      ( "pareto-shallow",
        (fun () ->
          Solver.solve
            (pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 ())
            ~service_rate:1.25 ~buffer:0.5),
        0.22507759222467275,
        0.22739642852406491 );
    ]
  in
  List.iter
    (fun (name, solve, lower, upper) ->
      let r = solve () in
      abs_close (name ^ " lower") lower r.Solver.lower_bound;
      abs_close (name ^ " upper") upper r.Solver.upper_bound)
    cases

let test_workspace_step_does_not_allocate () =
  (* The acceptance invariant of the zero-allocation rewrite: once a
     workspace is warm, [Workspace.step] must not touch the minor heap.
     Only meaningful in native code — bytecode boxes every float. *)
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let workload = Workload.create m ~service_rate:1.25 in
  List.iter
    (fun conv ->
      let ws = Solver.Workspace.make ~convolution:conv workload ~buffer:2.0 ~m:128 in
      for _ = 1 to 16 do
        Solver.Workspace.step ws
      done;
      let w0 = Gc.minor_words () in
      for _ = 1 to 64 do
        Solver.Workspace.step ws
      done;
      let allocated = Gc.minor_words () -. w0 in
      match Sys.backend_type with
      | Sys.Native ->
          if allocated > 0.0 then
            Alcotest.failf "steady-state step allocated %.0f minor words"
              allocated
      | Sys.Bytecode | Sys.Other _ -> ())
    [ `Fft; `Direct ]

(* ------------------------------------------------------------------ *)
(* Resumable solver states *)

(* Any partition of the iteration stream into [State.advance] calls must
   reproduce the one-shot [solve] bit for bit: bounds are checked after
   every [check_every]-th step (or at the budget) regardless of how the
   steps are grouped, so the whole event sequence — checks, refinements,
   stopping — is a function of the total step count alone. *)
let prop_state_slicing_bitwise =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:2.0 () in
  let reference = lazy (Solver.solve m ~service_rate:1.25 ~buffer:2.0) in
  QCheck.Test.make ~name:"State.advance slicing reproduces solve bitwise"
    ~count:40
    (QCheck.make
       ~print:QCheck.Print.(list int)
       QCheck.Gen.(list_size (int_range 0 12) (int_range 1 700)))
    (fun slices ->
      let reference = Lazy.force reference in
      let st = Solver.State.create m ~service_rate:1.25 ~buffer:2.0 in
      List.iter (fun n -> Solver.State.advance st ~iterations:n) slices;
      Solver.State.run st;
      let r = Solver.State.result st in
      r.Solver.loss = reference.Solver.loss
      && r.Solver.lower_bound = reference.Solver.lower_bound
      && r.Solver.upper_bound = reference.Solver.upper_bound
      && r.Solver.iterations = reference.Solver.iterations
      && r.Solver.bins = reference.Solver.bins
      && r.Solver.refinements = reference.Solver.refinements
      && r.Solver.converged = reference.Solver.converged)

let test_state_seed_from_neighbour () =
  (* Two models differing only in theta, same service rate and buffer:
     the occupancy grids coincide, so seeding must be accepted — and the
     warm-started interval must stay a certified bracket, consistent
     with an independent cold solve of the same cell. *)
  let model theta = pareto_model ~theta ~alpha:1.4 ~cutoff:2.0 () in
  let src = Solver.State.create (model 0.2) ~service_rate:1.25 ~buffer:2.0 in
  Solver.State.run src;
  let cold = Solver.State.create (model 0.22) ~service_rate:1.25 ~buffer:2.0 in
  Solver.State.run cold;
  let warm = Solver.State.create (model 0.22) ~service_rate:1.25 ~buffer:2.0 in
  Alcotest.(check bool) "seeding accepted" true
    (Solver.State.seed_from ~src warm);
  Alcotest.(check bool) "marked warm-started" true
    (Solver.State.warm_started warm);
  Solver.State.run warm;
  let w = Solver.State.result warm and c = Solver.State.result cold in
  Alcotest.(check bool) "warm interval certified" true
    (w.Solver.lower_bound <= w.Solver.upper_bound);
  Alcotest.(check bool) "warm converged" true w.Solver.converged;
  (* Both intervals bracket the same true loss. *)
  Alcotest.(check bool) "intervals overlap" true
    (w.Solver.lower_bound <= c.Solver.upper_bound +. 1e-12
    && c.Solver.lower_bound <= w.Solver.upper_bound +. 1e-12);
  (* The cold point estimate is the midpoint of an interval that also
     contains the truth, so it can sit at most half the cold width
     outside the warm interval. *)
  let slack =
    (0.5 *. (c.Solver.upper_bound -. c.Solver.lower_bound)) +. 1e-12
  in
  Alcotest.(check bool) "cold estimate inside warm interval" true
    (c.Solver.loss >= w.Solver.lower_bound -. slack
    && c.Solver.loss <= w.Solver.upper_bound +. slack);
  (* A buffer mismatch means a different occupancy grid: seeding must
     fall back to a cold start rather than blit incompatible pmfs. *)
  let other = Solver.State.create (model 0.22) ~service_rate:1.25 ~buffer:1.0 in
  Alcotest.(check bool) "buffer mismatch rejected" false
    (Solver.State.seed_from ~src other);
  Alcotest.(check bool) "rejected state stays cold" false
    (Solver.State.warm_started other)

let test_state_stop_reports_certified_bounds () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:2.0 () in
  let st = Solver.State.create m ~service_rate:1.25 ~buffer:2.0 in
  Solver.State.advance st ~iterations:32;
  Solver.State.stop st;
  Alcotest.(check bool) "finished" true (Solver.State.finished st);
  Alcotest.(check bool) "not converged" false (Solver.State.converged st);
  let r = Solver.State.result st in
  Alcotest.(check bool) "bounds still certified" true
    (r.Solver.lower_bound <= r.Solver.upper_bound);
  let full = Solver.solve m ~service_rate:1.25 ~buffer:2.0 in
  Alcotest.(check bool) "early interval contains converged interval" true
    (r.Solver.lower_bound <= full.Solver.lower_bound +. 1e-12
    && full.Solver.upper_bound <= r.Solver.upper_bound +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Snapshots (Fig. 2 machinery) *)

let test_snapshots_monotone_in_n () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let snaps =
    Solver.iterate_snapshots m ~service_rate:1.25 ~buffer:2.0 ~bins:100
      ~at:[ 5; 10; 30 ]
  in
  Alcotest.(check int) "three snapshots" 3 (List.length snaps);
  let losses_lower = List.map (fun s -> s.Solver.lower_loss) snaps in
  let losses_upper = List.map (fun s -> s.Solver.upper_loss) snaps in
  (* Proposition II.1: lower loss increasing in n, upper decreasing. *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "lower increasing" true (increasing losses_lower);
  Alcotest.(check bool) "upper decreasing" true
    (increasing (List.rev losses_upper));
  (* Bracket at every n. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "bracket" true
        (s.Solver.lower_loss <= s.Solver.upper_loss +. 1e-12))
    snaps

let test_snapshots_pmfs_are_distributions () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let snaps =
    Solver.iterate_snapshots m ~service_rate:1.25 ~buffer:2.0 ~bins:50
      ~at:[ 0; 7 ]
  in
  List.iter
    (fun s ->
      check_close ~eps:1e-9 "lower mass" 1.0
        (Lrd_numerics.Array_ops.sum s.Solver.lower_pmf);
      check_close ~eps:1e-9 "upper mass" 1.0
        (Lrd_numerics.Array_ops.sum s.Solver.upper_pmf))
    snaps;
  (* At n = 0 the chains are the initial empty/full distributions. *)
  match snaps with
  | first :: _ ->
      check_close "starts empty" 1.0 first.Solver.lower_pmf.(0);
      check_close "starts full" 1.0 first.Solver.upper_pmf.(50)
  | [] -> Alcotest.fail "no snapshots"

let test_snapshots_reject_unsorted () =
  let m = exp_model 1.0 in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Solver.iterate_snapshots: iteration list must be ascending")
    (fun () ->
      ignore
        (Solver.iterate_snapshots m ~service_rate:1.25 ~buffer:1.0 ~bins:10
           ~at:[ 10; 5 ]))

(* ------------------------------------------------------------------ *)
(* Occupancy distribution *)

let test_occupancy_pmfs_are_distributions () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let _, occ = Solver.solve_detailed m ~service_rate:1.25 ~buffer:2.0 in
  check_close ~eps:1e-9 "lower mass" 1.0
    (Lrd_numerics.Array_ops.sum occ.Solver.lower_pmf);
  check_close ~eps:1e-9 "upper mass" 1.0
    (Lrd_numerics.Array_ops.sum occ.Solver.upper_pmf);
  Alcotest.(check bool) "step positive" true (occ.Solver.step > 0.0)

let test_occupancy_bounds_order () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let _, occ = Solver.solve_detailed m ~service_rate:1.25 ~buffer:2.0 in
  let lo, hi = Solver.mean_occupancy occ in
  Alcotest.(check bool) "mean ordered" true (lo <= hi);
  List.iter
    (fun threshold ->
      let l, h = Solver.occupancy_ccdf occ ~threshold in
      if l > h +. 1e-12 then Alcotest.failf "ccdf order at %g" threshold)
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ];
  let q_lo, q_hi = Solver.occupancy_quantile occ ~p:0.9 in
  Alcotest.(check bool) "quantile ordered" true (q_lo <= q_hi)

let test_occupancy_brackets_simulation () =
  (* The certified occupancy intervals must contain the Monte Carlo
     epoch-point occupancy statistics. *)
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let c = 1.25 and buffer = 2.0 in
  let _, occ = Solver.solve_detailed m ~service_rate:c ~buffer in
  let rng = Lrd_rng.Rng.create ~seed:71L in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer () in
  let samples =
    Array.map
      (fun (rate, duration) ->
        let q = Lrd_fluidsim.Queue_sim.occupancy sim in
        ignore (Lrd_fluidsim.Queue_sim.offer sim ~rate ~duration);
        q)
      (Model.sample_epochs m rng ~n:500_000)
  in
  let lo, hi = Solver.mean_occupancy occ in
  let simulated = Lrd_numerics.Array_ops.mean samples in
  (* Allow a little Monte Carlo slack at the interval edges. *)
  Alcotest.(check bool) "mean inside" true
    (simulated >= lo -. 0.02 && simulated <= hi +. 0.02);
  List.iter
    (fun threshold ->
      let l, h = Solver.occupancy_ccdf occ ~threshold in
      let s =
        float_of_int
          (Array.fold_left
             (fun acc q -> if q >= threshold then acc + 1 else acc)
             0 samples)
        /. float_of_int (Array.length samples)
      in
      if not (s >= l -. 0.02 && s <= h +. 0.02) then
        Alcotest.failf "ccdf at %g: sim %.4f outside [%.4f, %.4f]" threshold
          s l h)
    [ 0.2; 1.0; 1.8 ]

let test_occupancy_zero_buffer_point_mass () =
  let m = exp_model 1.0 in
  let _, occ = Solver.solve_detailed m ~service_rate:1.25 ~buffer:0.0 in
  check_close "mass at zero" 1.0 occ.Solver.lower_pmf.(0);
  let lo, hi = Solver.mean_occupancy occ in
  check_close "mean lo" 0.0 lo;
  check_close "mean hi" 0.0 hi

let test_virtual_delay_scales () =
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let _, occ = Solver.solve_detailed m ~service_rate:1.25 ~buffer:2.0 in
  let mean_lo, _ = Solver.mean_occupancy occ in
  let delay_lo, _ = Solver.mean_virtual_delay occ ~service_rate:1.25 in
  check_close ~eps:1e-12 "delay = q / c" (mean_lo /. 1.25) delay_lo

(* ------------------------------------------------------------------ *)
(* Provision *)

let provision_model =
  lazy
    (let marginal =
       Lrd_dist.Marginal.of_points [ (0.0, 0.6); (1.5, 0.3); (3.0, 0.1) ]
     in
     Model.cutoff_pareto ~marginal ~theta:0.05 ~alpha:1.5 ~cutoff:2.0)

let test_provision_buffer_for_loss () =
  let model = Lazy.force provision_model in
  match
    Provision.buffer_for_loss model ~utilization:0.6 ~target:1e-4
  with
  | Provision.Unachievable_within _ -> Alcotest.fail "should be achievable"
  | Provision.Achieved b ->
      Alcotest.(check bool) "positive" true (b >= 0.0);
      (* The returned buffer meets the target... *)
      let loss =
        (Solver.solve_utilization model ~utilization:0.6 ~buffer_seconds:b)
          .Solver.loss
      in
      Alcotest.(check bool) "meets target" true (loss <= 1e-4);
      (* ... and a much smaller buffer does not. *)
      if b > 0.01 then begin
        let loss_small =
          (Solver.solve_utilization model ~utilization:0.6
             ~buffer_seconds:(b /. 4.0))
            .Solver.loss
        in
        Alcotest.(check bool) "tight-ish" true (loss_small > 1e-4)
      end

let test_provision_buffer_unachievable () =
  (* Untruncated LRD source: the buffer axis cannot reach a deep target
     within a small search limit. *)
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let model =
    Model.cutoff_pareto ~marginal ~theta:0.1 ~alpha:1.2
      ~cutoff:Float.infinity
  in
  match
    Provision.buffer_for_loss ~max_buffer_seconds:2.0 model ~utilization:0.8
      ~target:1e-8
  with
  | Provision.Unachievable_within limit -> check_close "limit" 2.0 limit
  | Provision.Achieved b -> Alcotest.failf "unexpectedly achieved at %g" b

let test_provision_utilization_for_loss () =
  let model = Lazy.force provision_model in
  match
    Provision.utilization_for_loss model ~buffer_seconds:0.5 ~target:1e-4
  with
  | Provision.Unachievable_within _ -> Alcotest.fail "should be achievable"
  | Provision.Achieved u ->
      Alcotest.(check bool) "in range" true (u > 0.0 && u < 1.0);
      let loss =
        (Solver.solve_utilization model ~utilization:u ~buffer_seconds:0.5)
          .Solver.loss
      in
      Alcotest.(check bool) "meets target" true (loss <= 1e-4)

let test_provision_streams_for_loss () =
  let model = Lazy.force provision_model in
  match
    Provision.streams_for_loss model ~utilization:0.7 ~buffer_seconds:0.2
      ~target:1e-5
  with
  | Provision.Unachievable_within _ -> Alcotest.fail "should be achievable"
  | Provision.Achieved n ->
      let n = int_of_float n in
      Alcotest.(check bool) "count positive" true (n >= 1);
      let loss k =
        let marginal =
          Lrd_dist.Marginal.superpose model.Model.marginal ~n:k
        in
        (Solver.solve_utilization
           { model with Model.marginal }
           ~utilization:0.7 ~buffer_seconds:0.2)
          .Solver.loss
      in
      Alcotest.(check bool) "meets target" true (loss n <= 1e-5);
      if n > 1 then
        Alcotest.(check bool) "minimal" true (loss (n - 1) > 1e-5)

let test_provision_rejects_bad_target () =
  let model = Lazy.force provision_model in
  Alcotest.check_raises "too deep"
    (Invalid_argument "Provision: target loss must lie in [1e-10, 1)")
    (fun () ->
      ignore (Provision.buffer_for_loss model ~utilization:0.5 ~target:1e-12))

(* ------------------------------------------------------------------ *)
(* Asymptotics *)

let test_kappa_values () =
  check_close ~eps:1e-12 "kappa 0.5" 0.5 (Asymptotics.kappa 0.5);
  (* H^H (1-H)^(1-H) at H = 0.8. *)
  check_close ~eps:1e-12 "kappa 0.8"
    ((0.8 ** 0.8) *. (0.2 ** 0.2))
    (Asymptotics.kappa 0.8)

let test_fbm_tail_shape () =
  let tail level =
    Asymptotics.fbm_tail ~mean:5.0 ~variance_coefficient:0.5 ~hurst:0.8
      ~service_rate:6.0 ~level
  in
  Alcotest.(check bool) "decreasing" true (tail 1.0 > tail 2.0);
  (* Weibull shape: -log P linear in b^(2-2H). *)
  let x1 = -.log (tail 1.0) and x4 = -.log (tail 4.0) in
  check_close ~eps:1e-9 "weibull scaling" (4.0 ** 0.4) (x4 /. x1);
  check_close "exponent" 0.4 (Asymptotics.fbm_tail_exponent ~hurst:0.8)

let test_onoff_tail_shape () =
  let tail level =
    Asymptotics.onoff_tail ~peak:2.0 ~mean_on:0.5 ~mean_off:0.5 ~alpha:1.5
      ~service_rate:1.4 ~level
  in
  Alcotest.(check bool) "decreasing" true (tail 1.0 > tail 10.0);
  (* Hyperbolic: P(b) b^(alpha-1) converges to a constant. *)
  let r1 = tail 100.0 *. (100.0 ** 0.5) in
  let r2 = tail 10_000.0 *. (10_000.0 ** 0.5) in
  check_close ~eps:0.1 "hyperbolic scaling" r1 r2

let test_exponential_decay_rate_known_case () =
  (* Two rates 0 and 2, exponential epochs mean 1, c = 1.25:
     0.5 / (1 + 1.25 d) + 0.5 / (1 - 0.75 d) = 1
     <=> 0.25 d = 0.9375 d^2  =>  d = 4/15. *)
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let delta =
    Asymptotics.exponential_decay_rate ~marginal ~mean_epoch:1.0
      ~service_rate:1.25
  in
  check_close ~eps:1e-9 "closed form" (4.0 /. 15.0) delta

let test_exponential_decay_rate_matches_simulation () =
  (* Empirical log-tail slope of the infinite-buffer occupancy. *)
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let mean_epoch = 1.0 and c = 1.25 in
  let delta =
    Asymptotics.exponential_decay_rate ~marginal ~mean_epoch ~service_rate:c
  in
  let model =
    Model.create ~marginal
      ~interarrival:(Lrd_dist.Interarrival.exponential ~mean:mean_epoch)
  in
  let rng = Lrd_rng.Rng.create ~seed:13L in
  let sim = Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:1e9 () in
  let samples =
    Array.map
      (fun (rate, duration) ->
        ignore (Lrd_fluidsim.Queue_sim.offer sim ~rate ~duration);
        Lrd_fluidsim.Queue_sim.occupancy sim)
      (Model.sample_epochs model rng ~n:400_000)
  in
  let ccdf b =
    float_of_int
      (Array.fold_left (fun acc q -> if q > b then acc + 1 else acc) 0 samples)
    /. float_of_int (Array.length samples)
  in
  let slope = (log (ccdf 1.0) -. log (ccdf 4.0)) /. 3.0 in
  check_close ~eps:0.1 "empirical decay" delta slope

let test_exponential_decay_rate_rejects_unstable () =
  let marginal = Lrd_dist.Marginal.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  Alcotest.check_raises "unstable"
    (Invalid_argument "Asymptotics.exponential_decay_rate: unstable queue")
    (fun () ->
      ignore
        (Asymptotics.exponential_decay_rate ~marginal ~mean_epoch:1.0
           ~service_rate:0.9))

(* ------------------------------------------------------------------ *)
(* Fitting *)

let test_fitting_for_buffer () =
  let rng = Lrd_rng.Rng.create ~seed:303L in
  let trace = Lrd_trace.Video.generate_short rng ~n:16_384 in
  let model, cutoff =
    Fitting.for_buffer ~hurst:0.83 trace ~utilization:0.8
      ~buffer_seconds:0.1
  in
  Alcotest.(check bool) "finite cutoff" true
    (Float.is_finite cutoff && cutoff > 0.0);
  (* The model's covariance vanishes beyond the fitted horizon. *)
  check_close "cutoff respected" 0.0 (Model.covariance model (cutoff *. 1.01));
  Alcotest.(check bool) "correlated inside" true
    (Model.covariance model (cutoff /. 2.0) > 0.0);
  (* Marginal mean preserved. *)
  check_close ~eps:1e-9 "marginal mean" (Lrd_trace.Trace.mean trace)
    (Model.mean_rate model);
  (* The horizon grows linearly with the design buffer. *)
  let _, cutoff4 =
    Fitting.for_buffer ~hurst:0.83 trace ~utilization:0.8
      ~buffer_seconds:0.4
  in
  check_close ~eps:1e-6 "linear in buffer" (4.0 *. cutoff) cutoff4

let test_fitting_prediction_tracks_full_model () =
  let rng = Lrd_rng.Rng.create ~seed:304L in
  let trace = Lrd_trace.Video.generate_short rng ~n:16_384 in
  let utilization = 0.8 and buffer_seconds = 0.05 in
  let fitted, _ =
    Fitting.for_buffer ~hurst:0.83 trace ~utilization ~buffer_seconds
  in
  let full = Model.fit_from_trace ~hurst:0.83 trace in
  let solve m =
    (Solver.solve_utilization m ~utilization ~buffer_seconds).Solver.loss
  in
  let full_loss = solve full and fitted_loss = solve fitted in
  (* Within a factor of ~2 of the full self-similar fit at the design
     buffer (the loss-vs-cutoff curve converges hyperbolically). *)
  Alcotest.(check bool) "tracks full model" true
    (fitted_loss > full_loss /. 2.5 && fitted_loss <= full_loss *. 1.5)

(* ------------------------------------------------------------------ *)
(* Horizon *)

let test_horizon_estimate_linear_in_buffer () =
  let est b =
    Horizon.estimate ~buffer:b ~mean_epoch:0.1 ~epoch_std:0.2 ~rate_std:1.5 ()
  in
  check_close ~eps:1e-9 "linearity" (2.0 *. est 1.0) (est 2.0);
  check_close ~eps:1e-9 "linearity x5" (5.0 *. est 1.0) (est 5.0)

let test_horizon_estimate_formula () =
  (* Eq. 26 evaluated by hand. *)
  let p = 0.05 in
  let expected =
    3.0 *. 0.1
    /. (2.0 *. sqrt 2.0 *. 0.2 *. 1.5 *. Lrd_numerics.Special.erf_inv p)
  in
  check_close ~eps:1e-12 "eq. 26" expected
    (Horizon.estimate ~no_reset_probability:p ~buffer:3.0 ~mean_epoch:0.1
       ~epoch_std:0.2 ~rate_std:1.5 ())

let test_horizon_estimate_decreasing_in_p () =
  (* Tolerating a larger no-reset probability shortens the horizon. *)
  let est p =
    Horizon.estimate ~no_reset_probability:p ~buffer:1.0 ~mean_epoch:0.1
      ~epoch_std:0.2 ~rate_std:1.5 ()
  in
  Alcotest.(check bool) "decreasing" true (est 0.01 > est 0.2)

let test_horizon_estimate_for_model () =
  (* Finite-cutoff law: finite variance, positive horizon. *)
  let m = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:5.0 () in
  let h = Horizon.estimate_for_model m ~buffer:2.0 in
  Alcotest.(check bool) "finite positive" true (h > 0.0 && Float.is_finite h);
  (* Infinite-variance law: eq. 26 degenerates to zero. *)
  let inf_model = pareto_model ~theta:0.2 ~alpha:1.4 ~cutoff:Float.infinity () in
  check_close "degenerate" 0.0 (Horizon.estimate_for_model inf_model ~buffer:2.0)

let test_horizon_detect () =
  let series =
    [| (1.0, 1e-4); (2.0, 5e-4); (4.0, 7e-4); (8.0, 1e-3); (16.0, 1.05e-3) |]
  in
  (match Horizon.detect series with
  | Some ch -> check_close "detected" 8.0 ch
  | None -> Alcotest.fail "no horizon detected");
  (* A flat series detects at its first point. *)
  (match Horizon.detect [| (1.0, 1e-3); (2.0, 1e-3); (4.0, 1e-3) |] with
  | Some ch -> check_close "flat" 1.0 ch
  | None -> Alcotest.fail "flat series must detect");
  Alcotest.(check (option (float 1e-9))) "empty" None (Horizon.detect [||])

let test_horizon_detect_with_zeros () =
  (* Zeros before the flat region must not count as flat. *)
  let series = [| (1.0, 0.0); (2.0, 7e-4); (4.0, 1e-3); (8.0, 1e-3) |] in
  match Horizon.detect series with
  | Some ch -> check_close "skips zero" 4.0 ch
  | None -> Alcotest.fail "must detect"

let test_critical_time_scale () =
  (* t* = (B / drift) H / (1 - H). *)
  check_close ~eps:1e-12 "formula" (2.0 /. 0.5 *. (0.8 /. 0.2))
    (Horizon.critical_time_scale ~hurst:0.8 ~buffer:2.0 ~drift:0.5);
  (* Linear in the buffer. *)
  check_close ~eps:1e-12 "linear"
    (3.0 *. Horizon.critical_time_scale ~hurst:0.7 ~buffer:1.0 ~drift:0.4)
    (Horizon.critical_time_scale ~hurst:0.7 ~buffer:3.0 ~drift:0.4);
  (* Growing in H: stronger persistence stretches the dominant scale. *)
  Alcotest.(check bool) "grows with H" true
    (Horizon.critical_time_scale ~hurst:0.9 ~buffer:1.0 ~drift:0.4
    > Horizon.critical_time_scale ~hurst:0.6 ~buffer:1.0 ~drift:0.4);
  Alcotest.check_raises "bad hurst"
    (Invalid_argument "Horizon.critical_time_scale: hurst must lie in (0, 1)")
    (fun () ->
      ignore (Horizon.critical_time_scale ~hurst:1.0 ~buffer:1.0 ~drift:1.0))

let test_horizon_detect_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Horizon.detect: cutoffs must be strictly increasing")
    (fun () -> ignore (Horizon.detect [| (2.0, 1.0); (1.0, 1.0) |]))

let test_horizon_empirical_vs_solver () =
  (* Loss as a function of the cutoff must flatten: the detected CH at a
     small buffer should come well before the largest cutoff tried. *)
  let loss cutoff =
    let m = pareto_model ~theta:0.05 ~alpha:1.4 ~cutoff () in
    (Solver.solve m ~service_rate:1.25 ~buffer:0.5).Solver.loss
  in
  let cutoffs = [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |] in
  let series = Array.map (fun tc -> (tc, loss tc)) cutoffs in
  match Horizon.detect ~flatness:0.3 series with
  | Some ch -> Alcotest.(check bool) "flattens early" true (ch <= 16.0)
  | None -> Alcotest.fail "loss never flattened in the cutoff"

(* ------------------------------------------------------------------ *)
(* Properties *)

let small_marginal_gen =
  QCheck.Gen.(
    list_size (int_range 2 6) (pair (float_range 0.0 4.0) (float_range 0.1 2.0)))

let prop_bounds_always_bracket =
  QCheck.Test.make ~name:"solver bounds always bracket the midpoint" ~count:25
    (QCheck.make
       QCheck.Gen.(
         triple small_marginal_gen (float_range 0.3 3.0) (float_range 0.2 3.0)))
    (fun (points, buffer, mean_epoch) ->
      let marginal = Lrd_dist.Marginal.of_points points in
      let model =
        Model.create ~marginal
          ~interarrival:(Lrd_dist.Interarrival.exponential ~mean:mean_epoch)
      in
      let c = Lrd_dist.Marginal.mean marginal *. 1.3 +. 0.1 in
      let r =
        Solver.solve
          ~params:{ Solver.default_params with max_iterations = 2_000 }
          model ~service_rate:c ~buffer
      in
      let bracketed =
        (* The paper's protocol reports 0 when the upper bound falls
           below 1e-10, which may sit under a tiny positive lower
           bound; that case is legitimate. *)
        (r.Solver.loss = 0.0 && r.Solver.upper_bound < 1e-10)
        || (r.Solver.lower_bound <= r.Solver.loss +. 1e-12
           && r.Solver.loss <= r.Solver.upper_bound +. 1e-12)
      in
      bracketed
      && r.Solver.lower_bound >= -1e-12
      && r.Solver.upper_bound <= 1.0 +. 1e-12)

let prop_bounds_bracket_pareto_epochs =
  QCheck.Test.make ~name:"solver bounds bracket under truncated Pareto epochs"
    ~count:8
    (QCheck.make
       QCheck.Gen.(
         quad small_marginal_gen (float_range 0.05 0.5)
           (float_range 1.1 1.9) (float_range 0.5 10.0)))
    (fun (points, theta, alpha, cutoff) ->
      let marginal = Lrd_dist.Marginal.of_points points in
      let model = Model.cutoff_pareto ~marginal ~theta ~alpha ~cutoff in
      let c = (Lrd_dist.Marginal.mean marginal *. 1.25) +. 0.1 in
      let r =
        Solver.solve
          ~params:
            {
              Solver.default_params with
              max_iterations = 3_000;
              max_bins = 1_024;
            }
          model ~service_rate:c ~buffer:1.5
      in
      let bracketed =
        (r.Solver.loss = 0.0 && r.Solver.upper_bound < 1e-10)
        || (r.Solver.lower_bound <= r.Solver.loss +. 1e-12
           && r.Solver.loss <= r.Solver.upper_bound +. 1e-12)
      in
      bracketed && r.Solver.lower_bound >= -1e-12
      && r.Solver.upper_bound <= 1.0 +. 1e-12)

let prop_covariance_nonnegative_decreasing =
  QCheck.Test.make ~name:"model covariance is nonnegative and nonincreasing"
    ~count:50
    (QCheck.make
       QCheck.Gen.(
         triple (float_range 0.05 2.0) (float_range 1.05 1.95)
           (float_range 0.5 20.0)))
    (fun (theta, alpha, cutoff) ->
      let m = pareto_model ~theta ~alpha ~cutoff () in
      let ts = Lrd_numerics.Array_ops.linspace 0.0 (cutoff +. 2.0) 40 in
      let ok = ref true in
      let prev = ref Float.infinity in
      Array.iter
        (fun t ->
          let v = Model.covariance m t in
          if v < -1e-12 || v > !prev +. 1e-12 then ok := false;
          prev := v)
        ts;
      !ok)

(* ------------------------------------------------------------------ *)
(* Transform-domain superposition *)

(* The repeated-squaring kernel against the brute N-fold convolution
   chain the solver engine already trusts: same pmf convolved with
   itself n - 1 times through a planned Convolution.execute_real. *)
let prop_self_convolve_matches_brute =
  QCheck.Test.make ~name:"self_convolve matches brute N-fold convolution"
    ~count:60
    (QCheck.make
       ~print:QCheck.Print.(pair (list float) int)
       QCheck.Gen.(
         pair
           (list_size (int_range 2 16) (float_bound_inclusive 1.0))
           (int_range 2 64)))
    (fun (weights, n) ->
      let pmf = Array.of_list (List.map (fun w -> w +. 0.01) weights) in
      let total = Array.fold_left ( +. ) 0.0 pmf in
      Array.iteri (fun i w -> pmf.(i) <- w /. total) pmf;
      let len = Array.length pmf in
      let out_len = (n * (len - 1)) + 1 in
      let plan =
        Lrd_numerics.Convolution.make_real_plan ~kernel:pmf
          ~max_signal:(out_len - len + 1) ()
      in
      let brute = ref (Array.copy pmf) in
      let dst = Array.make out_len 0.0 in
      for _ = 2 to n do
        Lrd_numerics.Convolution.execute_real plan !brute ~dst;
        brute := Array.sub dst 0 (Array.length !brute + len - 1)
      done;
      let fast = Superpose.self_convolve ~pmf ~n in
      Array.length fast = out_len
      && Array.for_all2
           (fun a b -> Float.abs (a -. Float.max 0.0 b) <= 1e-12)
           fast !brute)

let test_superpose_exact_binomial () =
  (* Two on/off sources: the aggregate is Binomial(2, 0.3) on rates
     {0, 1/2, 1} after per-source renormalization. *)
  let base = Lrd_dist.Marginal.of_points [ (0.0, 0.7); (1.0, 0.3) ] in
  let m = Superpose.superpose ~method_:Superpose.Exact base ~n:2 in
  check_close ~eps:1e-12 "mean" 0.3 (Lrd_dist.Marginal.mean m);
  check_close ~eps:1e-9 "P{rate <= 0.1}" 0.49 (Lrd_dist.Marginal.cdf m 0.1);
  check_close ~eps:1e-9 "P{rate <= 0.6}" 0.91 (Lrd_dist.Marginal.cdf m 0.6);
  check_close ~eps:1e-12 "total mass" 1.0 (Lrd_dist.Marginal.cdf m 1.0)

let test_superpose_heterogeneous_mean () =
  (* Aggregate cumulants add across classes; the per-source mean of the
     mix must come out exactly, on both paths. *)
  let a = Lrd_dist.Marginal.of_points [ (0.0, 0.9); (1.0, 0.1) ] in
  let b = Lrd_dist.Marginal.of_points [ (0.0, 0.95); (16.0, 0.05) ] in
  let classes = [ (a, 60); (b, 10) ] in
  let target = ((60.0 *. 0.1) +. (10.0 *. 16.0 *. 0.05)) /. 70.0 in
  let exact = Superpose.aggregate ~method_:Superpose.Exact classes in
  let edge = Superpose.aggregate ~method_:Superpose.Edgeworth classes in
  check_close ~eps:1e-12 "exact mean" target (Lrd_dist.Marginal.mean exact);
  check_close ~eps:1e-12 "edgeworth mean" target (Lrd_dist.Marginal.mean edge)

let test_superpose_edgeworth_tail_agreement () =
  (* N = 10^4 on/off sources: the exact transform-domain aggregate
     (Binomial(10^4, 0.3)) against the Edgeworth closed form.  The
     documented tolerance (EXPERIMENTS.md): 5e-4 absolute on the
     3-sigma upper tail mass, means equal to 1e-12, stds within 1%. *)
  let base = Lrd_dist.Marginal.of_points [ (0.0, 0.7); (1.0, 0.3) ] in
  let n = 10_000 in
  Alcotest.(check bool) "cost model picks exact at 1e4" true
    (Superpose.decide [ (base, n) ] = Superpose.Exact);
  let exact = Superpose.superpose ~method_:Superpose.Exact base ~n in
  let edge = Superpose.superpose ~method_:Superpose.Edgeworth base ~n in
  check_close ~eps:1e-12 "exact mean" 0.3 (Lrd_dist.Marginal.mean exact);
  check_close ~eps:1e-12 "edgeworth mean" 0.3 (Lrd_dist.Marginal.mean edge);
  let sx = Lrd_dist.Marginal.std exact
  and se = Lrd_dist.Marginal.std edge in
  Alcotest.(check bool) "stds within 1%" true
    (Float.abs (sx -. se) <= 0.01 *. sx);
  let threshold = 0.3 +. (3.0 *. sx) in
  let tail m = 1.0 -. Lrd_dist.Marginal.cdf m threshold in
  let tx = tail exact and te = tail edge in
  Alcotest.(check bool) "tails are nontrivial" true (tx > 1e-4 && te > 1e-4);
  Alcotest.(check bool) "tail masses agree to 5e-4" true
    (Float.abs (tx -. te) <= 5e-4)

let test_superpose_cost_model () =
  let base = Lrd_dist.Marginal.of_points [ (0.0, 0.7); (1.0, 0.3) ] in
  Alcotest.(check bool) "small N exact" true
    (Superpose.decide [ (base, 1_000) ] = Superpose.Exact);
  Alcotest.(check bool) "huge N edgeworth" true
    (Superpose.decide [ (base, 100_000) ] = Superpose.Edgeworth);
  Alcotest.(check bool) "constant class exact" true
    (Superpose.decide [ (Lrd_dist.Marginal.constant 2.0, 1_000_000) ]
    = Superpose.Exact)

let test_superpose_spectrum_multiply_count () =
  (* Binary exponentiation: one squaring per bit below the msb plus one
     multiply per set bit — 1000 = 0b1111101000 costs 9 + 6 = 15. *)
  Lrd_obs.Obs.set_enabled true;
  Lrd_obs.Obs.reset ();
  let base = Lrd_dist.Marginal.of_points [ (0.0, 0.7); (1.0, 0.3) ] in
  ignore (Superpose.superpose ~method_:Superpose.Exact base ~n:1000);
  let snapshot = Lrd_obs.Obs.snapshot () in
  Lrd_obs.Obs.set_enabled false;
  Lrd_obs.Obs.reset ();
  let counter name =
    match Lrd_obs.Obs.find snapshot name with
    | Some (Lrd_obs.Obs.Counter { total; _ }) -> total
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "spectrum multiplies" 15
    (counter "superpose/spectrum_multiplies");
  Alcotest.(check int) "exact path taken" 1
    (counter "superpose/exact_path_taken");
  Alcotest.(check int) "fast path not taken" 0
    (counter "superpose/fast_path_taken")

let test_superpose_rejects_bad_input () =
  let base = Lrd_dist.Marginal.of_points [ (0.0, 0.7); (1.0, 0.3) ] in
  Alcotest.check_raises "empty"
    (Invalid_argument "Superpose: empty class list") (fun () ->
      ignore (Superpose.aggregate []));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Superpose: negative class count") (fun () ->
      ignore (Superpose.aggregate [ (base, -1) ]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Superpose: all class counts are zero") (fun () ->
      ignore (Superpose.aggregate [ (base, 0) ]));
  Alcotest.check_raises "n < 1"
    (Invalid_argument "Superpose.superpose: n must be >= 1") (fun () ->
      ignore (Superpose.superpose base ~n:0))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "model",
        [
          Alcotest.test_case "hurst-alpha mapping" `Quick
            test_hurst_alpha_mapping;
          Alcotest.test_case "moments (eqs. 2, 4)" `Quick test_model_moments;
          Alcotest.test_case "covariance cutoff (eq. 8)" `Quick
            test_covariance_drops_at_cutoff;
          Alcotest.test_case "covariance closed form (eq. 8)" `Quick
            test_covariance_formula_eq8;
          Alcotest.test_case "covariance vs Monte Carlo" `Slow
            test_covariance_matches_monte_carlo;
          Alcotest.test_case "sample epochs statistics" `Slow
            test_sample_epochs_statistics;
          Alcotest.test_case "fit from trace" `Slow
            test_fit_from_trace_recovers_marginal;
        ] );
      ( "workload",
        [
          Alcotest.test_case "mean increment" `Quick test_workload_mean;
          Alcotest.test_case "two-sided survival (deterministic)" `Quick
            test_workload_survival_two_sided;
          Alcotest.test_case "survival monotone and bounded" `Quick
            test_workload_survival_monotone_and_bounded;
          Alcotest.test_case "max increment" `Quick test_workload_max_increment;
          Alcotest.test_case "expected overflow: paper closed form" `Quick
            test_expected_overflow_closed_form;
          Alcotest.test_case "expected overflow: Monte Carlo" `Slow
            test_expected_overflow_monte_carlo;
          Alcotest.test_case "expected overflow monotone" `Quick
            test_expected_overflow_monotone_in_occupancy;
          Alcotest.test_case "zero-buffer loss" `Quick
            test_zero_buffer_loss_formula;
          Alcotest.test_case "discretized bins are pmfs" `Quick
            test_discretize_bins_sum_to_one;
          Alcotest.test_case "floor/ceiling stochastic ordering" `Quick
            test_discretize_stochastic_ordering;
        ] );
      ( "solver",
        [
          Alcotest.test_case "zero buffer closed form" `Quick
            test_solver_zero_buffer_closed_form;
          Alcotest.test_case "underloaded queue" `Quick
            test_solver_underloaded_is_zero;
          Alcotest.test_case "bounds bracket" `Quick test_solver_bounds_bracket;
          Alcotest.test_case "matches simulation (exponential)" `Slow
            test_solver_matches_simulation_exponential;
          Alcotest.test_case "matches simulation (truncated pareto)" `Slow
            test_solver_matches_simulation_truncated_pareto;
          Alcotest.test_case "loss decreasing in buffer" `Quick
            test_solver_loss_decreasing_in_buffer;
          Alcotest.test_case "loss increasing in cutoff" `Quick
            test_solver_loss_increasing_in_cutoff;
          Alcotest.test_case "loss increasing in utilization" `Quick
            test_solver_loss_increasing_in_utilization;
          Alcotest.test_case "respects max iterations" `Quick
            test_solver_respects_max_iterations;
          Alcotest.test_case "direct matches fft" `Quick
            test_solver_direct_matches_fft;
          Alcotest.test_case "cold restart consistent" `Quick
            test_solver_cold_restart_same_answer;
          Alcotest.test_case "negligible loss reports zero" `Quick
            test_solver_negligible_loss_reports_zero;
          Alcotest.test_case "rejects bad input" `Quick
            test_solver_rejects_bad_input;
          Alcotest.test_case "golden matrix (pre-rewrite bounds)" `Quick
            test_solver_golden_matrix;
          Alcotest.test_case "workspace step allocates nothing" `Quick
            test_workspace_step_does_not_allocate;
        ] );
      ( "state",
        [
          QCheck_alcotest.to_alcotest prop_state_slicing_bitwise;
          Alcotest.test_case "seed from neighbour" `Quick
            test_state_seed_from_neighbour;
          Alcotest.test_case "stop keeps certified bounds" `Quick
            test_state_stop_reports_certified_bounds;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "monotone in n (Prop II.1)" `Quick
            test_snapshots_monotone_in_n;
          Alcotest.test_case "pmfs are distributions" `Quick
            test_snapshots_pmfs_are_distributions;
          Alcotest.test_case "rejects unsorted" `Quick
            test_snapshots_reject_unsorted;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "pmfs are distributions" `Quick
            test_occupancy_pmfs_are_distributions;
          Alcotest.test_case "bound ordering" `Quick
            test_occupancy_bounds_order;
          Alcotest.test_case "brackets simulation" `Slow
            test_occupancy_brackets_simulation;
          Alcotest.test_case "zero buffer point mass" `Quick
            test_occupancy_zero_buffer_point_mass;
          Alcotest.test_case "virtual delay scaling" `Quick
            test_virtual_delay_scales;
        ] );
      ( "provision",
        [
          Alcotest.test_case "buffer for loss" `Slow
            test_provision_buffer_for_loss;
          Alcotest.test_case "buffer unachievable for LRD" `Slow
            test_provision_buffer_unachievable;
          Alcotest.test_case "utilization for loss" `Slow
            test_provision_utilization_for_loss;
          Alcotest.test_case "streams for loss" `Slow
            test_provision_streams_for_loss;
          Alcotest.test_case "rejects bad target" `Quick
            test_provision_rejects_bad_target;
        ] );
      ( "asymptotics",
        [
          Alcotest.test_case "kappa" `Quick test_kappa_values;
          Alcotest.test_case "fBm Weibull shape" `Quick test_fbm_tail_shape;
          Alcotest.test_case "on/off hyperbolic shape" `Quick
            test_onoff_tail_shape;
          Alcotest.test_case "decay rate closed form" `Quick
            test_exponential_decay_rate_known_case;
          Alcotest.test_case "decay rate vs simulation" `Slow
            test_exponential_decay_rate_matches_simulation;
          Alcotest.test_case "rejects unstable" `Quick
            test_exponential_decay_rate_rejects_unstable;
        ] );
      ( "fitting",
        [
          Alcotest.test_case "for_buffer structure" `Slow
            test_fitting_for_buffer;
          Alcotest.test_case "prediction tracks full model" `Slow
            test_fitting_prediction_tracks_full_model;
        ] );
      ( "horizon",
        [
          Alcotest.test_case "linear in buffer" `Quick
            test_horizon_estimate_linear_in_buffer;
          Alcotest.test_case "eq. 26 by hand" `Quick
            test_horizon_estimate_formula;
          Alcotest.test_case "decreasing in p" `Quick
            test_horizon_estimate_decreasing_in_p;
          Alcotest.test_case "estimate for model" `Quick
            test_horizon_estimate_for_model;
          Alcotest.test_case "detect" `Quick test_horizon_detect;
          Alcotest.test_case "detect skips zeros" `Quick
            test_horizon_detect_with_zeros;
          Alcotest.test_case "critical time scale" `Quick
            test_critical_time_scale;
          Alcotest.test_case "detect rejects unsorted" `Quick
            test_horizon_detect_rejects_unsorted;
          Alcotest.test_case "empirical flattening (solver)" `Slow
            test_horizon_empirical_vs_solver;
        ] );
      ( "superpose",
        qcheck [ prop_self_convolve_matches_brute ]
        @ [
            Alcotest.test_case "exact binomial (n = 2)" `Quick
              test_superpose_exact_binomial;
            Alcotest.test_case "heterogeneous mean restoration" `Quick
              test_superpose_heterogeneous_mean;
            Alcotest.test_case "edgeworth vs exact tail (N = 1e4)" `Slow
              test_superpose_edgeworth_tail_agreement;
            Alcotest.test_case "cost model" `Quick test_superpose_cost_model;
            Alcotest.test_case "spectrum multiply count" `Quick
              test_superpose_spectrum_multiply_count;
            Alcotest.test_case "rejects bad input" `Quick
              test_superpose_rejects_bad_input;
          ] );
      ( "properties",
        qcheck
          [
            prop_bounds_always_bracket;
            prop_bounds_bracket_pareto_epochs;
            prop_covariance_nonnegative_decreasing;
          ] );
    ]
