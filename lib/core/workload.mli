(** The per-epoch work increment [W = T (lambda - c)] and its exact
    discretizations (paper eqs. 10, 21, 22).

    [W] is the difference between arriving and departing work over one
    interarrival interval.  The solver's floor chain needs the bin masses
    [Pr{W in [i d, (i+1) d)}] (eq. 21) and the ceiling chain
    [Pr{W in ((i-1) d, i d]}] (eq. 22); since [W] mixes atoms (from the
    truncated interarrival law) with continuous parts, both the strict and
    weak survival functions of [W] are computed from the interarrival
    law's, so every atom lands on the provably-safe side of each bin
    boundary and the bound property of Proposition II.1 carries over to
    floating point. *)

type t
(** The increment distribution for a given model, service rate and buffer
    discretization. *)

val create : ?memoize:bool -> Model.t -> service_rate:float -> t
(** [memoize] (default false) attaches mutex-guarded memo state to the
    survival-function evaluations behind [discretize],
    [overflow_table] and [expected_overflow]: scalar tables keyed by
    evaluation point, plus whole-grid level caches for the batch
    builders.  Because a refinement level at [2 m] bins evaluates a
    superset of its [m]-bin parent's points (the grid step halves
    exactly in floating point), a memoizing workload re-quantizes each
    new refinement level at roughly half cost — and the batch builders
    reuse the parent level wholesale, skipping per-point lookups;
    sharing one memoizing workload across the cells of a sweep (see
    [Cache]) extends the reuse across cells.  Memoization never changes
    any computed value — only whether it is recomputed — and is safe to
    use from several domains at once.
    @raise Invalid_argument unless the service rate is positive. *)

val mean : t -> float
(** E[W] = E[T] (mean_rate - c). *)

val survival_ge : t -> float -> float
(** [Pr{W >= x}]. *)

val survival_gt : t -> float -> float
(** [Pr{W > x}]. *)

val max_increment : t -> float
(** Supremum of [W]'s support ([T_c * (lambda_max - c)] for a truncated
    law); [infinity] for an unbounded law with rates above [c]; [<= 0]
    when no rate exceeds the service rate (a queue that never grows). *)

val expected_overflow : t -> buffer:float -> occupancy:float -> float
(** [E[W_l | Q = x]] with [W_l = (W - (B - Q))^+]: the expected work lost
    in one interval starting from occupancy [x] (the closed-form display
    after eq. 14, generalized to any interarrival law through its
    integrated survival function).
    @raise Invalid_argument unless [0 <= occupancy <= buffer]. *)

val overflow_table : t -> buffer:float -> bins:int -> float array
(** The solver's overflow table in one batch: entry [j] of the returned
    [bins + 1]-length array is
    [expected_overflow ~buffer ~occupancy:(min buffer (j *. d))] for
    [d = buffer / bins], bitwise.  On a memoizing workload the finest
    table computed for the buffer is cached, so each doubling of a
    refinement chain only evaluates the new odd points and coarser
    levels are answered by striding — without the per-point lock/lookup
    cost of the scalar path.  The returned array is fresh; mutating it
    never corrupts the cache.
    @raise Invalid_argument unless buffer and bins are positive. *)

val loss_rate_of_occupancy :
  t -> buffer:float -> occupancy_probs:float array -> float
(** Eq. 23: [sum_i q(i) E[W_l | Q = i d] / (mean_rate E[T])] for an
    occupancy pmf on the uniform grid [i d = i buffer / (n - 1)],
    [i = 0 .. n-1]. *)

val zero_buffer_loss : t -> float
(** Closed form for [B = 0]: [E[(lambda - c)^+] / mean_rate] — a test
    oracle independent of the iteration. *)

type bins = {
  lower : float array;  (** [w_L(i)], index [i + m] for [i = -m .. m]. *)
  upper : float array;  (** [w_H(i)], same indexing. *)
  half_width : int;  (** [m]: arrays have length [2 m + 1]. *)
  step : float;  (** [d = buffer / m]. *)
}

val discretize : t -> buffer:float -> bins:int -> bins
(** Exact bin masses per eqs. 21-22 for [m = bins]; mass below [-B] and
    above [B] is folded into the edge bins, which is lossless for the
    queue recursion because increments beyond [+-B] saturate the buffer
    regardless.  @raise Invalid_argument unless buffer and bins are
    positive. *)

(** Cross-cell workload cache for parameter sweeps.

    A sweep whose cells differ only in buffer size re-derives the same
    model and workload once per cell; the cache shares a single
    memoizing workload per caller key, so the survival memo tables are
    shared too.  Keys must be injective over the distinct models of the
    sweep (e.g. the hex-printed column coordinate); the service rate is
    part of the workload key automatically.  All operations are
    domain-safe; the lookup/hit counters let tests assert that a sweep
    creates exactly one entry per distinct key and hits on every other
    lookup.  Sharing a cache entry never changes a computed value, so
    cached sweeps remain bit-identical to uncached ones. *)
module Cache : sig
  type workload := t
  type t

  val create : unit -> t

  val model : t -> key:string -> (unit -> Model.t) -> Model.t
  (** Memoized model construction: builds on first use of [key], returns
      the cached model afterwards. *)

  val workload : t -> key:string -> Model.t -> service_rate:float -> workload
  (** The shared memoizing workload for [(key, service_rate)]; built with
      [create ~memoize:true] on first use. *)

  val lookups : t -> int
  (** Total [model] + [workload] calls so far. *)

  val hits : t -> int
  (** Lookups answered from the cache ([lookups - hits] is the number of
      entries ever built). *)

  val entries : t -> int
  (** Distinct models plus distinct workloads currently cached. *)
end
