(** Transform-domain superposition: the aggregate marginal of many
    multiplexed sources in O(log N) spectrum multiplies.

    The paper's fig. 11 superposes a handful of streams by brute-force
    pairwise convolution ({!Lrd_dist.Marginal.superpose} — O(N) re-binned
    convolutions).  Production links multiplex thousands to millions of
    sources, where that loop is the whole cost of building the model.
    This engine computes the same aggregate marginal two ways:

    - {b Exact (repeated squaring).}  The single-source histogram is
      lifted onto a uniform grid, sent through one real forward
      transform ({!Lrd_numerics.Fft.Real}), and its half-spectrum is
      raised to the N-th power by binary exponentiation — about
      [2 log2 N] fused half-spectrum self-multiplies — then synthesized
      back with a single inverse transform.  A 10^5-source aggregate
      costs ~17 spectrum squarings instead of 10^5 convolutions.
      Heterogeneous populations are grouped into homogeneous classes on
      a shared grid: each class spectrum is exponentiated by its count
      and the class powers are multiplied together, which is exactly the
      convolution of the class aggregates.
    - {b Edgeworth (closed form).}  When N is large the exact grid would
      explode (the aggregate support grows linearly in N at fixed
      per-source resolution), but by then the CLT has taken over: the
      aggregate is built from the summed cumulants (mean, variance,
      third central moment) through a skew-corrected Edgeworth
      expansion, at O(bins) cost independent of N.

    [Auto] picks between them with a cost model on the exact grid size
    ({!decide}).  Both paths finish with a compensated mass-restoration
    pass (clamp the FFT's negative rounding noise, re-normalize with a
    Neumaier sum, restore the aggregate mean exactly) so the marginal
    fed to the solver keeps total mass 1 and the exact per-source mean —
    the service rate derived from it is bit-stable.

    Like {!Lrd_dist.Marginal.superpose}, results are renormalized to the
    {e per-source} mean (rates divided by N): the marginal of N
    multiplexed streams with buffer and service rate per stream held
    constant.

    Telemetry: [superpose/spectrum_multiplies] counts half-spectrum
    multiply passes, [superpose/exact_path_taken] /
    [superpose/fast_path_taken] count path selections, and the
    [superpose/mass_drift] gauge records the |1 - total mass| the
    restoration pass absorbed.  With tracing on, each construction emits
    a [superpose/exact] or [superpose/edgeworth] instant whose argument
    is N. *)

type method_ =
  | Exact  (** Repeated-squaring transform-domain convolution. *)
  | Edgeworth  (** Cumulant-sum closed form with skew correction. *)
  | Auto  (** {!Exact} when the grid fits {!decide}'s cap, else
              {!Edgeworth}. *)

val self_convolve : pmf:float array -> n:int -> float array
(** [self_convolve ~pmf ~n] is the [n]-fold linear self-convolution of
    [pmf] (length [g] -> length [n (g - 1) + 1]) by repeated squaring in
    the half-spectrum domain, with negative rounding noise clamped to
    zero.  Matches [n - 1] chained {!Lrd_numerics.Convolution}
    executions to ~1e-12 absolute; the engine's kernel, exposed for
    tests and benchmarks.  @raise Invalid_argument if [pmf] is empty or
    [n < 1]. *)

val decide :
  ?source_points:int ->
  ?max_points:int ->
  (Lrd_dist.Marginal.t * int) list ->
  method_
(** The [Auto] cost model, never returning [Auto]: [Exact] when every
    class can keep [source_points] (default 64) grid points across its
    own support without the aggregate grid exceeding [max_points]
    (default [2^20]); [Edgeworth] otherwise.  The exact path's cost is
    [O(max_points log max_points)] at the cap, so the cap bounds both
    memory and time; the fidelity floor keeps the exact path from
    degrading into a blur before the CLT makes the closed form the
    better approximation anyway.
    @raise Invalid_argument as for {!aggregate}. *)

val aggregate :
  ?method_:method_ ->
  ?bins:int ->
  ?source_points:int ->
  ?max_points:int ->
  (Lrd_dist.Marginal.t * int) list ->
  Lrd_dist.Marginal.t
(** [aggregate [(m1, n1); (m2, n2); ...]] is the marginal of the
    superposition of [n1] sources distributed as [m1], [n2] as [m2], …,
    renormalized to the per-source mean (rates divided by
    [N = n1 + n2 + ...]).  Classes with a zero count are ignored.  The
    result has at most [bins] atoms (default 256, like
    {!Lrd_dist.Marginal.superpose}); [source_points] and [max_points]
    tune the exact path's grid as in {!decide}.  When [method_] is
    [Exact] and the fidelity grid would exceed [max_points], the grid
    step is widened until it fits (the forced-exact degradation the
    [Auto] cost model exists to avoid).
    @raise Invalid_argument on an empty class list, a negative count,
    an all-zero population, [bins < 1], [source_points < 2], or
    [max_points < 16]. *)

val superpose :
  ?method_:method_ ->
  ?bins:int ->
  ?source_points:int ->
  ?max_points:int ->
  Lrd_dist.Marginal.t ->
  n:int ->
  Lrd_dist.Marginal.t
(** Homogeneous convenience: [aggregate [(t, n)]] — the drop-in
    replacement for {!Lrd_dist.Marginal.superpose} at any scale.
    @raise Invalid_argument if [n < 1]. *)
