(* Transform-domain superposition: aggregate marginals by repeated
   squaring of half-spectra, with an Edgeworth closed form when the
   exact grid would explode.  See superpose.mli for the design. *)

module Marginal = Lrd_dist.Marginal
module Fft = Lrd_numerics.Fft
module Convolution = Lrd_numerics.Convolution
module Summation = Lrd_numerics.Summation
module Special = Lrd_numerics.Special
module Obs = Lrd_obs.Obs

type method_ = Exact | Edgeworth | Auto

let default_bins = 256
let default_source_points = 64
let default_max_points = 1 lsl 20

let m_spectrum_multiplies = Obs.Counter.make "superpose/spectrum_multiplies"
let m_exact_path = Obs.Counter.make "superpose/exact_path_taken"
let m_fast_path = Obs.Counter.make "superpose/fast_path_taken"
let g_mass_drift = Obs.Gauge.make "superpose/mass_drift"

(* Fused half-spectrum passes.  Both count as one multiply pass each:
   the squaring is the degenerate self-multiply of the binary
   exponentiation. *)

let spectrum_multiply ~acc_re ~acc_im ~re ~im ~len =
  for i = 0 to len - 1 do
    let a = Array.unsafe_get acc_re i and b = Array.unsafe_get acc_im i in
    let c = Array.unsafe_get re i and d = Array.unsafe_get im i in
    Array.unsafe_set acc_re i ((a *. c) -. (b *. d));
    Array.unsafe_set acc_im i ((a *. d) +. (b *. c))
  done;
  Obs.Counter.incr m_spectrum_multiplies

let spectrum_square ~re ~im ~len =
  for i = 0 to len - 1 do
    let a = Array.unsafe_get re i and b = Array.unsafe_get im i in
    Array.unsafe_set re i ((a *. a) -. (b *. b));
    Array.unsafe_set im i (2.0 *. a *. b)
  done;
  Obs.Counter.incr m_spectrum_multiplies

(* Multiply [acc] by [base]^n, destroying [base] (right-to-left binary
   exponentiation: one square per bit, one multiply per set bit). *)
let pow_into ~acc_re ~acc_im ~base_re ~base_im ~len n =
  let n = ref n in
  while !n > 0 do
    if !n land 1 = 1 then
      spectrum_multiply ~acc_re ~acc_im ~re:base_re ~im:base_im ~len;
    n := !n asr 1;
    if !n > 0 then spectrum_square ~re:base_re ~im:base_im ~len
  done

(* One class lifted onto the shared uniform grid: [pmf.(j)] is the mass
   at rate [lo + j * d].  Linear (two-point) mass splitting keeps each
   atom's conditional mean exact, so the binned class mean equals the
   class mean to rounding. *)
type grid_class = { lo : float; points : int; pmf : float array }

let grid_points ~d width =
  if width <= 0.0 then 1
  else max 2 (1 + int_of_float (Float.ceil ((width /. d) -. 1e-9)))

let lift_class m ~d =
  let lo, hi = Marginal.support m in
  let width = hi -. lo in
  let points = grid_points ~d width in
  if points = 1 then { lo; points; pmf = [| 1.0 |] }
  else begin
    let pmf = Array.make points 0.0 in
    let rates = Marginal.rates m and probs = Marginal.probs m in
    Array.iteri
      (fun i r ->
        let x = (r -. lo) /. d in
        let j = min (int_of_float (Float.floor x)) (points - 2) in
        let frac = Float.min 1.0 (Float.max 0.0 (x -. float_of_int j)) in
        pmf.(j) <- pmf.(j) +. (probs.(i) *. (1.0 -. frac));
        pmf.(j + 1) <- pmf.(j + 1) +. (probs.(i) *. frac))
      rates;
    { lo; points; pmf }
  end

(* Aggregate grid length for step [d]: sum over classes of
   n_k * (points_k - 1), plus the origin point. *)
let aggregate_points ~d classes =
  List.fold_left
    (fun acc (m, n) ->
      let lo, hi = Marginal.support m in
      acc + (n * (grid_points ~d (hi -. lo) - 1)))
    1 classes

(* The fidelity step: every class keeps [source_points] points across
   its own support.  [None] when all classes are degenerate. *)
let fidelity_step ~source_points classes =
  List.fold_left
    (fun acc (m, _) ->
      let lo, hi = Marginal.support m in
      let width = hi -. lo in
      if width <= 0.0 then acc
      else
        let d = width /. float_of_int (source_points - 1) in
        match acc with Some d' when d' <= d -> acc | _ -> Some d)
    None classes

let validate ?(bins = default_bins) ?(source_points = default_source_points)
    ?(max_points = default_max_points) classes =
  if classes = [] then invalid_arg "Superpose: empty class list";
  List.iter
    (fun (_, n) -> if n < 0 then invalid_arg "Superpose: negative class count")
    classes;
  if bins < 1 then invalid_arg "Superpose: bins must be >= 1";
  if source_points < 2 then invalid_arg "Superpose: source_points must be >= 2";
  if max_points < 16 then invalid_arg "Superpose: max_points must be >= 16";
  let classes = List.filter (fun (_, n) -> n > 0) classes in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 classes in
  if total = 0 then invalid_arg "Superpose: all class counts are zero";
  (classes, total)

let decide ?source_points ?max_points classes =
  let source_points =
    Option.value source_points ~default:default_source_points
  in
  let max_points = Option.value max_points ~default:default_max_points in
  let classes, _total = validate ~source_points ~max_points classes in
  match fidelity_step ~source_points classes with
  | None -> Exact (* degenerate: the aggregate is a constant *)
  | Some d -> if aggregate_points ~d classes <= max_points then Exact
              else Edgeworth

(* Low-level kernel: n-fold linear self-convolution of a raw pmf. *)
let self_convolve ~pmf ~n =
  let len = Array.length pmf in
  if len = 0 then invalid_arg "Superpose.self_convolve: empty pmf";
  if n < 1 then invalid_arg "Superpose.self_convolve: n must be >= 1";
  if n = 1 then Array.copy pmf
  else if len = 1 then [| pmf.(0) ** float_of_int n |]
  else begin
    let out_len = (n * (len - 1)) + 1 in
    let size = Convolution.real_transform_size_for out_len in
    let plan = Fft.Real.cached_plan size in
    let sl = Fft.Real.spectrum_length plan in
    let base_re = Array.make sl 0.0 and base_im = Array.make sl 0.0 in
    Fft.Real.forward_ip plan ~signal:pmf ~len ~spec_re:base_re
      ~spec_im:base_im;
    (* Start from the delta spectrum (all ones): acc tracks base^k. *)
    let acc_re = Array.make sl 1.0 and acc_im = Array.make sl 0.0 in
    pow_into ~acc_re ~acc_im ~base_re ~base_im ~len:sl n;
    let out = Array.make out_len 0.0 in
    Fft.Real.inverse_ip plan ~spec_re:acc_re ~spec_im:acc_im ~signal:out
      ~len:out_len;
    (* pmfs are nonnegative; anything below zero is rounding noise. *)
    for i = 0 to out_len - 1 do
      if out.(i) < 0.0 then out.(i) <- 0.0
    done;
    out
  end

(* Compensated mass restoration: clear the transform's rounding noise,
   measure the drift from unit mass with a Neumaier sum, rescale.
   Returns the scale to apply (the caller folds it into the rebin
   pass).  Noise shows up two ways: negative values, and a positive
   far-field floor that measures at up to ~2e-13 of the peak on a
   10^5-point grid — integrated over the grid that fake mass (~1e-11)
   swamps the true sub-1e-12 tails and defeats the rebin pass's tail
   trimming.  Anything below 1e-12 of the peak is therefore zeroed:
   that clears the noise with ~5x margin while discarding only true
   mass beyond ~7.3 sigma (< 1e-12 total for a CLT-shaped
   aggregate). *)
let mass_restore agg len =
  let vmax = ref 0.0 in
  for i = 0 to len - 1 do
    if agg.(i) < 0.0 then agg.(i) <- 0.0
    else if agg.(i) > !vmax then vmax := agg.(i)
  done;
  let floor_ = !vmax *. 1e-12 in
  let acc = Summation.create () in
  for i = 0 to len - 1 do
    if agg.(i) < floor_ then agg.(i) <- 0.0;
    Summation.add acc agg.(i)
  done;
  let mass = Summation.total acc in
  if Obs.enabled () then Obs.Gauge.set g_mass_drift (Float.abs (mass -. 1.0));
  if mass > 0.0 && Float.is_finite mass then 1.0 /. mass else 1.0

(* Restore the exact target mean by an affine shift of the rates — the
   residual after grid binning is rounding-level on the exact path and
   truncation-level on the Edgeworth path; either way the solver sees
   the exact per-source mean, so the derived service rate is stable. *)
let restore_mean m ~target =
  let shift = target -. Marginal.mean m in
  if shift = 0.0 || not (Float.is_finite shift) then m
  else
    Marginal.create
      ~rates:(Array.map (fun r -> r +. shift) (Marginal.rates m))
      ~probs:(Marginal.probs m)

let per_source_mean classes ~total =
  let acc = Summation.create () in
  List.iter
    (fun (m, n) -> Summation.add acc (float_of_int n *. Marginal.mean m))
    classes;
  Summation.total acc /. float_of_int total

(* Collapse a dense grid pmf (origin [lo], step [d], [len] points,
   values scaled by [scale]) to at most [bins] atoms, each keeping its
   conditional mean rate, then renormalize per source.  A direct O(len)
   pass — Marginal.create on a million atoms would sort them all.

   The grid spans the full combinatorial support, but at large N the
   aggregate concentrates on an O(sqrt N) sliver of it, so binning the
   whole range would blur the distribution into a handful of bins.  The
   tails outside the smallest index range holding all but [trim_eps] of
   the mass per side are folded into the boundary bins — conditional
   means stay exact, so no mass or mean is lost, only sub-1e-12 tail
   structure. *)
let trim_eps = 1e-12

let grid_to_marginal agg ~len ~lo ~d ~scale ~bins ~total =
  let rate j = lo +. (float_of_int j *. d) in
  let head_mass = ref 0.0 and head_weighted = ref 0.0 in
  let j_lo = ref 0 in
  while
    !j_lo < len - 1
    && !head_mass +. (agg.(!j_lo) *. scale) <= trim_eps
  do
    let p = agg.(!j_lo) *. scale in
    head_mass := !head_mass +. p;
    head_weighted := !head_weighted +. (p *. rate !j_lo);
    incr j_lo
  done;
  let tail_mass = ref 0.0 and tail_weighted = ref 0.0 in
  let j_hi = ref (len - 1) in
  while
    !j_hi > !j_lo && !tail_mass +. (agg.(!j_hi) *. scale) <= trim_eps
  do
    let p = agg.(!j_hi) *. scale in
    tail_mass := !tail_mass +. p;
    tail_weighted := !tail_weighted +. (p *. rate !j_hi);
    decr j_hi
  done;
  let kept = !j_hi - !j_lo + 1 in
  let bins = min bins kept in
  let mass = Array.make bins 0.0 and weighted = Array.make bins 0.0 in
  mass.(0) <- !head_mass;
  weighted.(0) <- !head_weighted;
  mass.(bins - 1) <- mass.(bins - 1) +. !tail_mass;
  weighted.(bins - 1) <- weighted.(bins - 1) +. !tail_weighted;
  for j = !j_lo to !j_hi do
    let b = (j - !j_lo) * bins / kept in
    let p = agg.(j) *. scale in
    mass.(b) <- mass.(b) +. p;
    weighted.(b) <- weighted.(b) +. (p *. rate j)
  done;
  let n_total = float_of_int total in
  let rates = ref [] and probs = ref [] in
  for b = bins - 1 downto 0 do
    if mass.(b) > 0.0 then begin
      rates := weighted.(b) /. mass.(b) /. n_total :: !rates;
      probs := mass.(b) :: !probs
    end
  done;
  Marginal.create ~rates:(Array.of_list !rates) ~probs:(Array.of_list !probs)

let exact_aggregate ~bins ~source_points ~max_points classes ~total =
  let target_mean = per_source_mean classes ~total in
  match fidelity_step ~source_points classes with
  | None ->
      (* Every class is a constant: so is the aggregate. *)
      Marginal.constant target_mean
  | Some d0 ->
      (* Widen the step until the aggregate grid fits the cap (the Auto
         cost model avoids this branch; forced Exact degrades). *)
      let rec fit d =
        if aggregate_points ~d classes <= max_points then d
        else fit (d *. 1.25)
      in
      let d = fit d0 in
      let lifted = List.map (fun (m, n) -> (lift_class m ~d, n)) classes in
      let out_len =
        List.fold_left (fun acc (c, n) -> acc + (n * (c.points - 1))) 1 lifted
      in
      let lo_total =
        let acc = Summation.create () in
        List.iter
          (fun (c, n) -> Summation.add acc (float_of_int n *. c.lo))
          lifted;
        Summation.total acc
      in
      let size = Convolution.real_transform_size_for out_len in
      let plan = Fft.Real.cached_plan size in
      let sl = Fft.Real.spectrum_length plan in
      let acc_re = Array.make sl 1.0 and acc_im = Array.make sl 0.0 in
      let base_re = Array.make sl 0.0 and base_im = Array.make sl 0.0 in
      List.iter
        (fun (c, n) ->
          Fft.Real.forward_ip plan ~signal:c.pmf ~len:c.points
            ~spec_re:base_re ~spec_im:base_im;
          pow_into ~acc_re ~acc_im ~base_re ~base_im ~len:sl n)
        lifted;
      let agg = Array.make out_len 0.0 in
      Fft.Real.inverse_ip plan ~spec_re:acc_re ~spec_im:acc_im ~signal:agg
        ~len:out_len;
      let scale = mass_restore agg out_len in
      let m =
        grid_to_marginal agg ~len:out_len ~lo:lo_total ~d ~scale ~bins ~total
      in
      restore_mean m ~target:target_mean

(* Third central moment of one source: sum p (r - mu)^3. *)
let central3 m =
  let mu = Marginal.mean m in
  let rates = Marginal.rates m and probs = Marginal.probs m in
  let acc = Summation.create () in
  Array.iteri
    (fun i r ->
      let dr = r -. mu in
      Summation.add acc (probs.(i) *. dr *. dr *. dr))
    rates;
  Summation.total acc

let sqrt_two_pi = Float.sqrt (2.0 *. Float.pi)
let normal_pdf z = Float.exp (-0.5 *. z *. z) /. sqrt_two_pi

let edgeworth_aggregate ~bins classes ~total =
  let n_total = float_of_int total in
  (* Aggregate cumulants: cumulants of independent sums add, so
     K1 = sum n_k mu_k, K2 = sum n_k var_k, K3 = sum n_k kappa3_k. *)
  let k1 = Summation.create ()
  and k2 = Summation.create ()
  and k3 = Summation.create ()
  and lo_acc = Summation.create ()
  and hi_acc = Summation.create () in
  List.iter
    (fun (m, n) ->
      let nf = float_of_int n in
      Summation.add k1 (nf *. Marginal.mean m);
      Summation.add k2 (nf *. Marginal.variance m);
      Summation.add k3 (nf *. central3 m);
      let lo, hi = Marginal.support m in
      Summation.add lo_acc (nf *. lo);
      Summation.add hi_acc (nf *. hi))
    classes;
  let k1 = Summation.total k1
  and k2 = Summation.total k2
  and k3 = Summation.total k3 in
  let target_mean = k1 /. n_total in
  if k2 <= 0.0 then Marginal.constant target_mean
  else begin
    let sigma = Float.sqrt k2 in
    let gamma = k3 /. (k2 *. sigma) in
    (* One-term Edgeworth expansion of the cdf:
       F(x) = Phi(z) - phi(z) (gamma / 6) (z^2 - 1),  z = (x - K1)/sigma. *)
    let cdf x =
      let z = (x -. k1) /. sigma in
      let f =
        Special.normal_cdf z
        -. (normal_pdf z *. gamma /. 6.0 *. ((z *. z) -. 1.0))
      in
      Float.min 1.0 (Float.max 0.0 f)
    in
    (* Grid over K1 +- 8 sigma, clamped to the physical support. *)
    let lo_g = Float.max (Summation.total lo_acc) (k1 -. (8.0 *. sigma)) in
    let hi_g = Float.min (Summation.total hi_acc) (k1 +. (8.0 *. sigma)) in
    if not (hi_g > lo_g) then Marginal.constant target_mean
    else begin
      let span = hi_g -. lo_g in
      let edge i = lo_g +. (span *. float_of_int i /. float_of_int bins) in
      let rates = Array.make bins 0.0 and probs = Array.make bins 0.0 in
      for i = 0 to bins - 1 do
        let e0 = edge i and e1 = edge (i + 1) in
        (* Outermost bins absorb the tails beyond the grid. *)
        let f0 = if i = 0 then 0.0 else cdf e0 in
        let f1 = if i = bins - 1 then 1.0 else cdf e1 in
        probs.(i) <- Float.max 0.0 (f1 -. f0);
        rates.(i) <- 0.5 *. (e0 +. e1) /. n_total
      done;
      let scale = mass_restore probs bins in
      if scale <> 1.0 then
        Array.iteri (fun i p -> probs.(i) <- p *. scale) probs;
      let m = Marginal.create ~rates ~probs in
      restore_mean m ~target:target_mean
    end
  end

let aggregate ?(method_ = Auto) ?(bins = default_bins)
    ?(source_points = default_source_points)
    ?(max_points = default_max_points) classes =
  let classes, total = validate ~bins ~source_points ~max_points classes in
  let chosen =
    match method_ with
    | Auto -> decide ~source_points ~max_points classes
    | m -> m
  in
  match chosen with
  | Exact | Auto ->
      Obs.Counter.incr m_exact_path;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~arg:total "superpose/exact";
      exact_aggregate ~bins ~source_points ~max_points classes ~total
  | Edgeworth ->
      Obs.Counter.incr m_fast_path;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~arg:total "superpose/edgeworth";
      edgeworth_aggregate ~bins classes ~total

let superpose ?method_ ?bins ?source_points ?max_points t ~n =
  if n < 1 then invalid_arg "Superpose.superpose: n must be >= 1";
  aggregate ?method_ ?bins ?source_points ?max_points [ (t, n) ]
