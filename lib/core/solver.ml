type params = {
  initial_bins : int;
  max_bins : int;
  tolerance : float;
  negligible_loss : float;
  max_iterations : int;
  check_every : int;
  stall_factor : float;
  warm_restart : bool;
  convolution : [ `Auto | `Fft | `Direct ];
}

let default_params =
  {
    initial_bins = 128;
    max_bins = 16384;
    tolerance = 0.2;
    negligible_loss = 1e-10;
    max_iterations = 200_000;
    check_every = 16;
    stall_factor = 0.02;
    warm_restart = true;
    convolution = `Auto;
  }

type result = {
  loss : float;
  lower_bound : float;
  upper_bound : float;
  iterations : int;
  bins : int;
  refinements : int;
  converged : bool;
}

let pp_result fmt r =
  Format.fprintf fmt
    "loss=%.4g in [%.4g, %.4g] (%s after %d iterations, %d bins, %d \
     refinements)"
    r.loss r.lower_bound r.upper_bound
    (if r.converged then "converged" else "budget exhausted")
    r.iterations r.bins r.refinements

let log_src = Logs.Src.create "lrd.solver" ~doc:"fluid queue loss solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Obs = Lrd_obs.Obs
module Resource = Lrd_obs.Resource

(* Solver telemetry.  Everything is recorded at check-period or
   per-solve granularity — never inside [Workspace.step] — so the
   zero-allocation step invariant is untouched and the instrumentation
   cost is amortized over [check_every] iterations.  The bound-gap
   trajectory keeps the most recent relative gaps ((upper - lower) /
   midpoint, the paper's 20% stopping ratio), which is the convergence
   curve Proposition II.1 predicts to be monotone in n and m. *)
let m_solves = Obs.Counter.make "solver/solves"
let m_iterations = Obs.Counter.make "solver/iterations"
let m_refinements = Obs.Counter.make "solver/refinements"
let m_warm_restarts = Obs.Counter.make "solver/warm_restarts"
let m_budget_exhausted = Obs.Counter.make "solver/budget_exhausted"
let m_workspaces_fft = Obs.Counter.make "solver/workspaces_fft"
let m_workspaces_direct = Obs.Counter.make "solver/workspaces_direct"
let m_gap_trajectory = Obs.Trajectory.make "solver/bound_gap_rel"
let m_last_gap = Obs.Gauge.make "solver/last_bound_gap_rel"
let m_solve_span = Obs.Span.make "solver/solve_seconds"
let m_solve_alloc = Resource.Alloc.make "solver/solve_minor_words"

(* ------------------------------------------------------------------ *)
(* Per-level workspace.

   One resolution level owns everything a Lindley step touches: the
   occupancy pmfs of both chains, the dual-channel convolution plan for
   the discretized increment kernels (or the raw kernels on the direct
   path), the convolution output buffers, and the per-bin
   expected-overflow table.  All of it is allocated when the level is
   built — [step] then advances both chains
   with zero heap allocation, which is what makes the 200k-iteration
   sweeps FLOP-bound instead of GC-bound. *)

module Workspace = struct
  type vec = Lrd_numerics.Fft.vec

  (* Three engines for the Lindley convolution, fastest first:

     [Real_circular] — m is a fast size, so both chains convolve on a
     CIRCULAR real-transform grid of only n = 2m points (half the
     linear length, a quarter of the old power-of-two dual grid).  The
     wrap-around is controlled aliasing: the linear output u lives on
     [0, 3m], so the folded u^[t] = u[t] + u[t + 2m] corrupts only
     t <= m — exactly the range the boundary fold collapses anyway.
     The full-state mass sum_{i >= 2m} u[i] is recovered EXACTLY by an
     O(m) correlation of the pmf with the kernel's tail cumulative
     (tail.(j) = sum_{l >= 2m - j} ker[l]), and the empty-state mass by
     total-mass accounting — more accurately than summing FFT output,
     since the tail masses that drive deep-buffer loss are computed
     from nonnegative products instead of cancelling transform noise.

     [Real_linear] — m is not a fast size: plain linear convolution on
     the default real grid (still one half-size transform each way).

     [Direct] — schoolbook, for small grids. *)
  type kernels =
    | Real_circular of {
        lower : Lrd_numerics.Convolution.real_plan;
        upper : Lrd_numerics.Convolution.real_plan;
        lower_tail : vec;  (* tail.(j) = sum_{l >= 2m-j} lower_ker.(l) *)
        upper_tail : vec;
      }
    | Real_linear of {
        lower : Lrd_numerics.Convolution.real_plan;
        upper : Lrd_numerics.Convolution.real_plan;
      }
    | Direct of { lower : float array; upper : float array }

  type t = {
    m : int;
    width : float;  (* grid step d = buffer / m *)
    kernels : kernels;
    overflow : vec;  (* E[W_l | Q = j d], j = 0 .. m. *)
    lower_q : vec;  (* floor-chain occupancy pmf, length m + 1 *)
    upper_q : vec;  (* ceiling-chain occupancy pmf *)
    conv_lower : vec;  (* convolution outputs *)
    conv_upper : vec;
  }

  let vec_make len : vec =
    let v = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout len in
    Bigarray.Array1.fill v 0.0;
    v

  let bins t = t.m
  let grid_step t = t.width

  let pmf_copy (q : vec) m =
    Array.init (m + 1) (fun j -> Bigarray.Array1.get q j)

  let lower_pmf t = pmf_copy t.lower_q t.m
  let upper_pmf t = pmf_copy t.upper_q t.m

  (* Downward Neumaier cumulative of the kernel top: tail.(j) holds
     sum_{l >= 2m - j} ker.(l) for j = 0 .. m, so the full-state mass
     of a step is the correlation sum_j q_j tail.(j). *)
  let tail_cumulative kernel ~m =
    let tail = vec_make (m + 1) in
    let s = ref 0.0 and c = ref 0.0 in
    for i = 2 * m downto m do
      let x = kernel.(i) in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t';
      let j = (2 * m) - i in
      if j <= m then Bigarray.Array1.set tail j (!s +. !c)
    done;
    tail

  let make ?(convolution = `Auto) workload ~buffer ~m =
    let bins = Workload.discretize workload ~buffer ~bins:m in
    let use_fft =
      match convolution with
      | `Fft -> true
      | `Direct -> false
      | `Auto ->
          (* One centralized crossover for signal (m+1) vs kernel (2m+1). *)
          Lrd_numerics.Convolution.prefer_fft ~na:(m + 1) ~nb:((2 * m) + 1)
    in
    Obs.Counter.incr (if use_fft then m_workspaces_fft else m_workspaces_direct);
    let kernels =
      if use_fft then
        if Lrd_numerics.Fft.is_fast_size m then
          Real_circular
            {
              lower =
                Lrd_numerics.Convolution.make_real_plan ~size:(2 * m)
                  ~kernel:bins.Workload.lower ~max_signal:(m + 1) ();
              upper =
                Lrd_numerics.Convolution.make_real_plan ~size:(2 * m)
                  ~kernel:bins.Workload.upper ~max_signal:(m + 1) ();
              lower_tail = tail_cumulative bins.Workload.lower ~m;
              upper_tail = tail_cumulative bins.Workload.upper ~m;
            }
        else
          Real_linear
            {
              lower =
                Lrd_numerics.Convolution.make_real_plan
                  ~kernel:bins.Workload.lower ~max_signal:(m + 1) ();
              upper =
                Lrd_numerics.Convolution.make_real_plan
                  ~kernel:bins.Workload.upper ~max_signal:(m + 1) ();
            }
      else
        Direct { lower = bins.Workload.lower; upper = bins.Workload.upper }
    in
    let conv_len =
      match kernels with
      | Real_circular _ -> 2 * m
      | Real_linear { lower; _ } ->
          Lrd_numerics.Convolution.real_transform_size lower
      | Direct _ -> (3 * m) + 1
    in
    let overflow = vec_make (m + 1) in
    let ov = Workload.overflow_table workload ~buffer ~bins:m in
    for j = 0 to m do
      Bigarray.Array1.set overflow j ov.(j)
    done;
    let lower_q = vec_make (m + 1) in
    let upper_q = vec_make (m + 1) in
    Bigarray.Array1.set lower_q 0 1.0;
    Bigarray.Array1.set upper_q m 1.0;
    {
      m;
      width = bins.Workload.step;
      kernels;
      overflow;
      lower_q;
      upper_q;
      conv_lower = vec_make conv_len;
      conv_upper = vec_make conv_len;
    }

  (* Fold the convolution [u] back onto the grid in place (eqs. 19-20):
     mass below 0 collapses into the empty state, mass above B into the
     full state; index s of [u] corresponds to the value (s - m) d.
     FFT rounding can leave tiny negatives / drift, so clamp and rescale
     to keep the pmf a probability vector.

     The Neumaier sums are written out inline rather than through
     [Summation]: without flambda a cross-module call that takes or
     returns a float boxes it, and [Float.max] likewise, which would
     break the zero-allocation invariant of [step].  Local refs compile
     to unboxed mutable variables, so this whole function stays off the
     heap. *)
  let fold_exact t (u : vec) (q : vec) =
    let m = t.m in
    (* A local helper closure would re-box the refs; the Neumaier body
       is therefore repeated verbatim in each of the sums. *)
    let s = ref 0.0 and c = ref 0.0 in
    for i = 0 to m do
      let x = Bigarray.Array1.unsafe_get u i in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let q0 = !s +. !c in
    Bigarray.Array1.unsafe_set q 0 (if q0 > 0.0 then q0 else 0.0);
    for j = 1 to m - 1 do
      let v = Bigarray.Array1.unsafe_get u (m + j) in
      Bigarray.Array1.unsafe_set q j (if v > 0.0 then v else 0.0)
    done;
    s := 0.0;
    c := 0.0;
    for i = 2 * m to 3 * m do
      let x = Bigarray.Array1.unsafe_get u i in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let qm = !s +. !c in
    Bigarray.Array1.unsafe_set q m (if qm > 0.0 then qm else 0.0);
    s := 0.0;
    c := 0.0;
    for i = 0 to m do
      let x = Bigarray.Array1.unsafe_get q i in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let total = !s +. !c in
    if total > 0.0 && Float.abs (total -. 1.0) > 1e-15 then
      for j = 0 to m do
        Bigarray.Array1.unsafe_set q j (Bigarray.Array1.unsafe_get q j /. total)
      done

  (* Fold for the circular grid: u holds the 2m wrapped values
     u^[t] = u[t] + u[t + 2m].  Middle states m+1 .. 2m-1 are alias-free.
     The full-state mass comes from the tail correlation against the OLD
     pmf (still intact in q — the convolution reads but never writes it),
     and the empty-state mass from the wrapped prefix minus that: the
     prefix sum_{t <= m} u^[t] counts every aliased term exactly once. *)
  let fold_aliased t (u : vec) (q : vec) (tail : vec) =
    let m = t.m in
    let s = ref 0.0 and c = ref 0.0 in
    for j = 0 to m do
      let x =
        Bigarray.Array1.unsafe_get q j *. Bigarray.Array1.unsafe_get tail j
      in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let qm = !s +. !c in
    s := 0.0;
    c := 0.0;
    for i = 0 to m do
      let x = Bigarray.Array1.unsafe_get u i in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let q0 = !s +. !c -. qm in
    Bigarray.Array1.unsafe_set q 0 (if q0 > 0.0 then q0 else 0.0);
    for j = 1 to m - 1 do
      let v = Bigarray.Array1.unsafe_get u (m + j) in
      Bigarray.Array1.unsafe_set q j (if v > 0.0 then v else 0.0)
    done;
    Bigarray.Array1.unsafe_set q m (if qm > 0.0 then qm else 0.0);
    s := 0.0;
    c := 0.0;
    for i = 0 to m do
      let x = Bigarray.Array1.unsafe_get q i in
      let t' = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t' +. x)
      else c := !c +. (x -. t' +. !s);
      s := t'
    done;
    let total = !s +. !c in
    if total > 0.0 && Float.abs (total -. 1.0) > 1e-15 then
      for j = 0 to m do
        Bigarray.Array1.unsafe_set q j (Bigarray.Array1.unsafe_get q j /. total)
      done

  (* One Lindley step for BOTH chains: a real-input convolution per
     chain (circular when the grid allows) followed by the boundary
     folds.  Zero heap allocation. *)
  let step t =
    let len = t.m + 1 in
    match t.kernels with
    | Real_circular { lower; upper; lower_tail; upper_tail } ->
        Lrd_numerics.Convolution.execute_real_circular lower ~signal:t.lower_q
          ~len ~dst:t.conv_lower;
        fold_aliased t t.conv_lower t.lower_q lower_tail;
        Lrd_numerics.Convolution.execute_real_circular upper ~signal:t.upper_q
          ~len ~dst:t.conv_upper;
        fold_aliased t t.conv_upper t.upper_q upper_tail
    | Real_linear { lower; upper } ->
        Lrd_numerics.Convolution.execute_real_circular lower ~signal:t.lower_q
          ~len ~dst:t.conv_lower;
        Lrd_numerics.Convolution.execute_real_circular upper ~signal:t.upper_q
          ~len ~dst:t.conv_upper;
        fold_exact t t.conv_lower t.lower_q;
        fold_exact t t.conv_upper t.upper_q
    | Direct { lower; upper } ->
        Lrd_numerics.Convolution.direct_into_big t.lower_q ~len ~kernel:lower
          ~dst:t.conv_lower;
        Lrd_numerics.Convolution.direct_into_big t.upper_q ~len ~kernel:upper
          ~dst:t.conv_upper;
        fold_exact t t.conv_lower t.lower_q;
        fold_exact t t.conv_upper t.upper_q

  let loss_of t ~norm (q : vec) =
    let acc = Lrd_numerics.Summation.create () in
    for j = 0 to t.m do
      let p = Bigarray.Array1.unsafe_get q j in
      if p > 0.0 then
        Lrd_numerics.Summation.add acc (p *. Bigarray.Array1.unsafe_get t.overflow j)
    done;
    Lrd_numerics.Summation.total acc /. norm

  let losses t ~norm = (loss_of t ~norm t.lower_q, loss_of t ~norm t.upper_q)

  (* Doubling the grid: old point j d sits exactly at new point 2j (d/2),
     so re-quantization is an exact re-indexing and both chains keep
     their bound property (Proposition II.1 (v) plus footnote 3). *)
  let refine_from ~src dst =
    if dst.m <> 2 * src.m then
      invalid_arg "Solver.Workspace.refine_from: dst must have twice the bins";
    Bigarray.Array1.fill dst.lower_q 0.0;
    Bigarray.Array1.fill dst.upper_q 0.0;
    for j = 0 to src.m do
      Bigarray.Array1.set dst.lower_q (2 * j)
        (Bigarray.Array1.get src.lower_q j);
      Bigarray.Array1.set dst.upper_q (2 * j)
        (Bigarray.Array1.get src.upper_q j)
    done
end

type occupancy = {
  step : float;
  lower_pmf : float array;
  upper_pmf : float array;
}

let point_mass_occupancy =
  { step = 0.0; lower_pmf = [| 1.0 |]; upper_pmf = [| 1.0 |] }

let pmf_mean ~step pmf =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun j p -> Lrd_numerics.Summation.add acc (p *. float_of_int j *. step))
    pmf;
  Lrd_numerics.Summation.total acc

let mean_occupancy occ =
  (pmf_mean ~step:occ.step occ.lower_pmf, pmf_mean ~step:occ.step occ.upper_pmf)

let pmf_ccdf ~step pmf ~threshold =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun j p ->
      if float_of_int j *. step >= threshold then
        Lrd_numerics.Summation.add acc p)
    pmf;
  Float.min 1.0 (Lrd_numerics.Summation.total acc)

let occupancy_ccdf occ ~threshold =
  ( pmf_ccdf ~step:occ.step occ.lower_pmf ~threshold,
    pmf_ccdf ~step:occ.step occ.upper_pmf ~threshold )

let pmf_quantile ~step pmf ~p =
  let n = Array.length pmf in
  let rec go j cumulative =
    if j >= n - 1 then float_of_int (n - 1) *. step
    else begin
      let cumulative = cumulative +. pmf.(j) in
      if cumulative >= p -. 1e-15 then float_of_int j *. step
      else go (j + 1) cumulative
    end
  in
  go 0 0.0

let occupancy_quantile occ ~p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg "Solver.occupancy_quantile: p must lie in (0, 1]";
  ( pmf_quantile ~step:occ.step occ.lower_pmf ~p,
    pmf_quantile ~step:occ.step occ.upper_pmf ~p )

let mean_virtual_delay occ ~service_rate =
  if not (service_rate > 0.0) then
    invalid_arg "Solver.mean_virtual_delay: service rate must be positive";
  let lo, hi = mean_occupancy occ in
  (lo /. service_rate, hi /. service_rate)

(* ------------------------------------------------------------------ *)
(* Resumable solver state.

   [State] is the solve loop turned inside out: the same iterate /
   check / refine sequence as the classic [solve], but driven by
   [advance ~iterations] slices so a sweep scheduler can suspend a
   partially-converged cell and resume it later — on any domain —
   bitwise-identically to an uninterrupted run.  The invariant that
   makes slicing exact: bounds are evaluated after every
   [check_every]-th chain step (or at the iteration budget), regardless
   of how the steps were grouped into [advance] calls, so the sequence
   of (step, check, refine) events is a function of the total iteration
   count only.  [solve] itself is implemented on top of [State], which
   makes the equivalence hold by construction. *)

module State = struct
  type t = {
    params : params;
    workload : Workload.t;
    norm : float;
    buffer : float;
    trace_levels : bool;
        (* Emit solver/level begin/end slices (balanced B/E pairs).
           Only safe when every advance of this state runs on one
           domain — true for [solve], false for scheduled sweeps whose
           slices migrate between pool workers. *)
    trivial : (result * occupancy) option;
    mutable ws : Workspace.t option;  (* built lazily on first advance *)
    mutable iterations : int;
    mutable refinements : int;
    mutable since_check : int;  (* chain steps since the last check *)
    mutable prev_lower : float;  (* bounds at the previous check (nan *)
    mutable prev_upper : float;  (* right after create / refine) *)
    mutable lower : float;  (* bounds at the latest check; nan before *)
    mutable upper : float;  (* the first one *)
    mutable finished : bool;
    mutable converged : bool;
    mutable warm_started : bool;
  }

  let create ?(params = default_params) ?cache ?(trace_levels = false) model
      ~service_rate ~buffer =
    if not (service_rate > 0.0) then
      invalid_arg "Solver.solve: service rate must be positive";
    if not (buffer >= 0.0) then
      invalid_arg "Solver.solve: buffer must be nonnegative";
    Obs.Counter.incr m_solves;
    let workload =
      match cache with
      | Some (cache, key) ->
          Workload.Cache.workload cache ~key model ~service_rate
      | None ->
          (* Memoization still pays within a single solve: every grid
             refinement re-evaluates the survival functions on a
             superset of the coarser grid's points. *)
          Workload.create ~memoize:true model ~service_rate
    in
    let norm =
      Model.mean_rate model
      *. model.Model.interarrival.Lrd_dist.Interarrival.mean
    in
    let trivial =
      if buffer = 0.0 then begin
        let loss = Workload.zero_buffer_loss workload in
        Some
          ( {
              loss;
              lower_bound = loss;
              upper_bound = loss;
              iterations = 0;
              bins = 0;
              refinements = 0;
              converged = true;
            },
            point_mass_occupancy )
      end
      else if Workload.max_increment workload <= 0.0 then
        (* No rate ever exceeds the service rate: the queue never
           grows. *)
        Some
          ( {
              loss = 0.0;
              lower_bound = 0.0;
              upper_bound = 0.0;
              iterations = 0;
              bins = params.initial_bins;
              refinements = 0;
              converged = true;
            },
            point_mass_occupancy )
      else None
    in
    {
      params;
      workload;
      norm;
      buffer;
      trace_levels;
      trivial;
      ws = None;
      iterations = 0;
      refinements = 0;
      since_check = 0;
      prev_lower = Float.nan;
      prev_upper = Float.nan;
      lower = Float.nan;
      upper = Float.nan;
      finished = trivial <> None;
      converged = trivial <> None;
      warm_started = false;
    }

  let create_utilization ?params ?cache ?trace_levels model ~utilization
      ~buffer_seconds =
    let c = Model.service_rate_for_utilization model ~utilization in
    create ?params ?cache ?trace_levels model ~service_rate:c
      ~buffer:(buffer_seconds *. c)

  let finished t = t.finished
  let converged t = t.converged
  let iterations t = t.iterations
  let refinements t = t.refinements
  let warm_started t = t.warm_started

  let bins t =
    match t.trivial with
    | Some (r, _) -> r.bins
    | None -> (
        match t.ws with
        | Some ws -> Workspace.bins ws
        | None -> t.params.initial_bins)

  let bounds t =
    match t.trivial with
    | Some (r, _) -> (r.lower_bound, r.upper_bound)
    | None -> (t.lower, t.upper)

  (* Relative bound gap at the latest check — the scheduler's priority.
     Infinite before the first check, so fresh cells are always
     scheduled; 0 once the loss is known negligible. *)
  let gap_rel t =
    match t.trivial with
    | Some _ -> 0.0
    | None ->
        if Float.is_nan t.lower then Float.infinity
        else if t.upper < t.params.negligible_loss then 0.0
        else begin
          let mid = (t.lower +. t.upper) /. 2.0 in
          if mid > 0.0 then (t.upper -. t.lower) /. mid else 0.0
        end

  let ensure_ws t =
    match t.ws with
    | Some ws -> ws
    | None ->
        let ws =
          Workspace.make ~convolution:t.params.convolution t.workload
            ~buffer:t.buffer ~m:t.params.initial_bins
        in
        (* Trace granularity mirrors the metric granularity: one slice
           per resolution level plus refinement instants — never per
           check period, which would flood the ring on 200k-iteration
           solves. *)
        if t.trace_levels && Obs.Trace.enabled () then
          Obs.Trace.begin_ ~arg:t.params.initial_bins "solver/level";
        t.ws <- Some ws;
        ws

  let finish t ~converged ~lo ~hi =
    if t.trace_levels && Obs.Trace.enabled () then
      Obs.Trace.end_ ~arg:(bins t) "solver/level";
    if not converged then Obs.Counter.incr m_budget_exhausted;
    t.lower <- lo;
    t.upper <- hi;
    t.finished <- true;
    t.converged <- converged

  let plateaued t previous current =
    Float.is_finite previous
    && Float.abs (previous -. current)
       <= t.params.stall_factor *. Float.max previous 1e-300

  let check t ws =
    let lo, hi = Workspace.losses ws ~norm:t.norm in
    let gap = hi -. lo in
    let mid = (hi +. lo) /. 2.0 in
    Log.debug (fun f ->
        f "n=%d m=%d lower=%.4g upper=%.4g" t.iterations (Workspace.bins ws)
          lo hi);
    if Obs.enabled () then begin
      Obs.Counter.add m_iterations t.since_check;
      let rel = if mid > 0.0 then gap /. mid else 0.0 in
      Obs.Trajectory.record m_gap_trajectory rel;
      Obs.Gauge.set m_last_gap rel
    end;
    t.since_check <- 0;
    t.lower <- lo;
    t.upper <- hi;
    (* A warm-started chain approaches its stationary value from an
       arbitrary side, so a transiently narrow gap (or transiently tiny
       upper bound) proves nothing.  Accept a convergence criterion only
       once both chains have ALSO plateaued — i.e. they sit at their
       stationary values to within [stall_factor], where the floor /
       ceiling losses are certified bounds regardless of the initial
       state.  Cold chains approach monotonically (Proposition II.1),
       so [settled] is identically true for them and the classic
       stopping protocol is unchanged bit for bit. *)
    let settled =
      (not t.warm_started)
      || (plateaued t t.prev_lower lo && plateaued t t.prev_upper hi)
    in
    if hi < t.params.negligible_loss && settled then
      finish t ~converged:true ~lo ~hi
    else if gap <= t.params.tolerance *. mid && settled then
      finish t ~converged:true ~lo ~hi
    else if t.iterations >= t.params.max_iterations then
      finish t ~converged:false ~lo ~hi
    else begin
      (* Refine only when BOTH chains have individually plateaued:
         while a chain is still mixing toward its stationary value
         (e.g. the ceiling chain draining a deep buffer), iterating at
         the current resolution is cheap and refinement buys nothing. *)
      let stalled =
        plateaued t t.prev_lower lo && plateaued t t.prev_upper hi
      in
      t.prev_lower <- lo;
      t.prev_upper <- hi;
      if stalled then begin
        let m = Workspace.bins ws in
        if m * 2 <= t.params.max_bins then begin
          Log.debug (fun f -> f "refining grid to m=%d" (m * 2));
          let next =
            Workspace.make ~convolution:t.params.convolution t.workload
              ~buffer:t.buffer ~m:(m * 2)
          in
          Obs.Counter.incr m_refinements;
          if Obs.Trace.enabled () then begin
            if t.trace_levels then Obs.Trace.end_ ~arg:m "solver/level";
            Obs.Trace.instant ~arg:(m * 2) "solver/refine"
          end;
          if t.params.warm_restart then begin
            Obs.Counter.incr m_warm_restarts;
            if Obs.Trace.enabled () then
              Obs.Trace.instant ~arg:(m * 2) "solver/warm_restart";
            Workspace.refine_from ~src:ws next
          end;
          if t.trace_levels && Obs.Trace.enabled () then
            Obs.Trace.begin_ ~arg:(m * 2) "solver/level";
          t.ws <- Some next;
          t.refinements <- t.refinements + 1;
          t.prev_lower <- Float.nan;
          t.prev_upper <- Float.nan
        end
        else
          (* Both chains have plateaued at the finest allowed grid:
             further iteration cannot close the gap.  Return the
             certified (if loose) bounds rather than burning the
             whole iteration budget at the most expensive level. *)
          finish t ~converged:false ~lo ~hi
      end
    end

  let advance t ~iterations:n =
    if n < 0 then
      invalid_arg "Solver.State.advance: iterations must be nonnegative";
    if t.trivial = None && not t.finished then begin
      let ws = ref (ensure_ws t) in
      let remaining = ref n in
      while !remaining > 0 && not t.finished do
        (* Next event boundary: the end of the current check period or
           the iteration budget, whichever comes first.  Both exceed
           the current position while the state is unfinished, so
           [steps >= 1] and the loop always progresses. *)
        let to_check = t.params.check_every - t.since_check in
        let to_budget = t.params.max_iterations - t.iterations in
        let steps = min (min to_check to_budget) !remaining in
        for _ = 1 to steps do
          Workspace.step !ws
        done;
        t.iterations <- t.iterations + steps;
        t.since_check <- t.since_check + steps;
        remaining := !remaining - steps;
        if
          t.since_check >= t.params.check_every
          || t.iterations >= t.params.max_iterations
        then begin
          check t !ws;
          (* [check] may have refined onto a new workspace. *)
          match t.ws with Some w -> ws := w | None -> ()
        end
      done
    end

  let run t =
    while not t.finished do
      advance t ~iterations:t.params.check_every
    done

  (* Flush the partial check period's iteration count so sweep counters
     stay exact, then evaluate bounds if this state never reached a
     check (the initial floor/ceiling states are themselves certified,
     if vacuous, bounds). *)
  let stop t =
    if not t.finished then begin
      if Obs.enabled () && t.since_check > 0 then
        Obs.Counter.add m_iterations t.since_check;
      t.since_check <- 0;
      if Float.is_nan t.lower then begin
        let ws = ensure_ws t in
        let lo, hi = Workspace.losses ws ~norm:t.norm in
        t.lower <- lo;
        t.upper <- hi
      end;
      if t.trace_levels && Obs.Trace.enabled () then
        Obs.Trace.end_ ~arg:(bins t) "solver/level";
      t.finished <- true
    end

  (* A seed is accepted when the neighbour's buffer agrees within this
     relative tolerance.  The pmfs are only an initial condition — the
     plateau guard in [check] provides certification for ANY starting
     state — so a near-coincident grid (e.g. a mean-preserving marginal
     scaling whose zero-clamp shifted the service rate a few percent,
     as Bellcore's fig13 columns do) still yields a useful seed; past a
     quarter or so the neighbour's occupancy shape is no longer worth
     adopting over the coarse-to-fine ladder. *)
  let seed_buffer_rel_tolerance = 0.25

  (* Warm start: adopt a converged neighbour's occupancy pmfs (and its
     final resolution) as this cell's initial condition, skipping both
     the refinement ladder and most of the mixing time.  The pmf vector
     is reinterpreted on [t]'s own grid — the same bin count, a grid
     step within [seed_buffer_rel_tolerance] — which is safe because
     the seed carries no bound semantics: the [check]-time plateau
     guard is what keeps the reported bounds certified despite the
     foreign initial state.  Returns [false] (leaving the state
     untouched, cold) whenever the grids are incompatible. *)
  let seed_from ~src t =
    match (src.trivial, t.trivial, src.ws) with
    | None, None, Some sws
      when (not t.finished)
           && t.iterations = 0
           && Float.abs (t.buffer -. src.buffer)
              <= seed_buffer_rel_tolerance
                 *. Float.max (Float.abs t.buffer) (Float.abs src.buffer)
           && Workspace.bins sws <= t.params.max_bins ->
        let m = Workspace.bins sws in
        let ws =
          match t.ws with
          | Some w when Workspace.bins w = m -> w
          | _ ->
              Workspace.make ~convolution:t.params.convolution t.workload
                ~buffer:t.buffer ~m
        in
        Bigarray.Array1.blit sws.Workspace.lower_q ws.Workspace.lower_q;
        Bigarray.Array1.blit sws.Workspace.upper_q ws.Workspace.upper_q;
        t.ws <- Some ws;
        t.warm_started <- true;
        (* Evaluate the seeded pmfs under THIS cell's workload as the
           "previous check": a genuine point of the new chain at step
           zero.  If the seed is already near-stationary for this cell,
           the first real check plateaus against it and can settle
           after a single check period instead of two. *)
        let lo0, hi0 = Workspace.losses ws ~norm:t.norm in
        t.prev_lower <- lo0;
        t.prev_upper <- hi0;
        if Obs.Trace.enabled () then Obs.Trace.instant ~arg:m "solver/seed";
        true
    | _ -> false

  let result t =
    match t.trivial with
    | Some (r, _) -> r
    | None ->
        let lo = t.lower and hi = t.upper in
        {
          loss =
            (if hi < t.params.negligible_loss then 0.0
             else (lo +. hi) /. 2.0);
          lower_bound = lo;
          upper_bound = hi;
          iterations = t.iterations;
          bins = bins t;
          refinements = t.refinements;
          converged = t.converged;
        }

  let detailed t =
    match t.trivial with
    | Some d -> d
    | None ->
        let occ =
          match t.ws with
          | Some ws ->
              {
                step = Workspace.grid_step ws;
                lower_pmf = Workspace.lower_pmf ws;
                upper_pmf = Workspace.upper_pmf ws;
              }
          | None -> point_mass_occupancy
        in
        (result t, occ)
end

let solve_detailed_impl ?params ?cache model ~service_rate ~buffer =
  let st =
    State.create ?params ?cache ~trace_levels:true model ~service_rate ~buffer
  in
  State.run st;
  State.detailed st

let solve_detailed ?params ?cache model ~service_rate ~buffer =
  (* Minor-word attribution brackets the whole solve (plan building,
     state setup, refinement) — the per-step path itself stays
     allocation-free, so this counter is dominated by setup and is the
     number `lrd serve` will watch per request. *)
  let w0 = Resource.Alloc.start () in
  Fun.protect
    ~finally:(fun () -> Resource.Alloc.stop m_solve_alloc w0)
    (fun () ->
      Obs.Span.time m_solve_span (fun () ->
          Obs.Trace.with_span "solver/solve" (fun () ->
              solve_detailed_impl ?params ?cache model ~service_rate ~buffer)))

let solve ?params ?cache model ~service_rate ~buffer =
  fst (solve_detailed ?params ?cache model ~service_rate ~buffer)

let solve_utilization ?params ?cache model ~utilization ~buffer_seconds =
  let c = Model.service_rate_for_utilization model ~utilization in
  solve ?params ?cache model ~service_rate:c ~buffer:(buffer_seconds *. c)

type snapshot = {
  iteration : int;
  lower_pmf : float array;
  upper_pmf : float array;
  lower_loss : float;
  upper_loss : float;
}

let iterate_snapshots model ~service_rate ~buffer ~bins ~at =
  if not (buffer > 0.0) then
    invalid_arg "Solver.iterate_snapshots: buffer must be positive";
  let sorted = List.sort_uniq compare at in
  if sorted <> at then
    invalid_arg "Solver.iterate_snapshots: iteration list must be ascending";
  List.iter
    (fun n ->
      if n < 0 then
        invalid_arg "Solver.iterate_snapshots: negative iteration count")
    at;
  let workload = Workload.create model ~service_rate in
  let norm =
    Model.mean_rate model *. model.Model.interarrival.Lrd_dist.Interarrival.mean
  in
  let ws = Workspace.make workload ~buffer ~m:bins in
  let current = ref 0 in
  List.map
    (fun n ->
      while !current < n do
        Workspace.step ws;
        incr current
      done;
      let lower_loss, upper_loss = Workspace.losses ws ~norm in
      {
        iteration = n;
        lower_pmf = Workspace.lower_pmf ws;
        upper_pmf = Workspace.upper_pmf ws;
        lower_loss;
        upper_loss;
      })
    sorted
