(** Bounded numerical solver for the stationary loss rate of the finite
    buffer fluid queue (paper Section II, Proposition II.1).

    The queue occupancy at arrival epochs obeys
    [Q(n+1) = max(0, min(B, Q(n) + W(n)))] with i.i.d. increments.  Two
    discretized chains are iterated on a grid of [m] bins of width
    [d = B/m]: the floor chain starts empty and rounds down, the ceiling
    chain starts full and rounds up.  Their loss rates are monotone
    bounds on the true loss rate — the floor chain's increasing in both
    the iteration count and the grid resolution, the ceiling chain's
    decreasing — so the pair brackets the answer at every step.

    Each iteration is one linear convolution of the occupancy pmf with
    the discretized increment pmf (eq. 19) followed by folding the
    spill-over mass into the boundary states (eq. 20); the convolution
    uses a cached-kernel FFT plan, O(m log m) per step.

    The stopping protocol follows the paper: stop when the bounds come
    within [tolerance] (default 20%) of their midpoint, report zero when
    the upper bound falls below [negligible_loss] (default 1e-10), and
    when convergence stalls double the number of bins and continue from
    the current occupancy vectors (footnote 3's warm restart — old grid
    points are a subset of the new, so the bound property is kept). *)

type params = {
  initial_bins : int;  (** Starting grid resolution [m] (default 128). *)
  max_bins : int;  (** Refinement cap (default 16384). *)
  tolerance : float;
      (** Relative bound-gap target: stop when
          [upper - lower <= tolerance * (upper + lower) / 2].
          Default 0.2 as in the paper. *)
  negligible_loss : float;
      (** Report zero loss when the upper bound drops below this
          (default 1e-10, the paper's threshold). *)
  max_iterations : int;  (** Total iteration budget (default 200000). *)
  check_every : int;  (** Bound evaluation period (default 16). *)
  stall_factor : float;
      (** Refine the grid when a check period moves {e both} bounds by
          less than this relative fraction (default 0.02) — i.e. both
          chains have plateaued at the current resolution, so only a
          finer grid can close the remaining gap.  While either chain is
          still mixing (e.g. the ceiling chain draining a deep buffer),
          iteration continues at the cheap coarse resolution. *)
  warm_restart : bool;
      (** Keep the current occupancy vectors across grid refinements
          (footnote 3; default true).  [false] restarts the chains from
          empty/full on every refinement — the ablation baseline. *)
  convolution : [ `Auto | `Fft | `Direct ];
      (** Convolution strategy: [`Auto] (default) uses the FFT from 64
          bins upward, the explicit choices force one implementation
          (the FFT-vs-direct ablation). *)
}

val default_params : params

type result = {
  loss : float;  (** Midpoint of the final bounds; 0 if negligible. *)
  lower_bound : float;
  upper_bound : float;
  iterations : int;  (** Total chain iterations performed. *)
  bins : int;  (** Final grid resolution. *)
  refinements : int;  (** Number of grid doublings. *)
  converged : bool;
      (** True when the tolerance or negligible-loss criterion was met
          (false only when the iteration budget ran out). *)
}

val pp_result : Format.formatter -> result -> unit

module Workspace : sig
  type t
  (** A mutable per-resolution-level workspace: the occupancy pmfs of
      both chains as unboxed Bigarray vectors, one real-input FFT
      convolution plan per chain built from the discretized increment
      kernels ({!Lrd_numerics.Convolution.make_real_plan} — circular
      mod [2 m] with precomputed alias-fold tails when [m] is a fast
      size, linear on a {!Lrd_numerics.Fft.good_size} grid otherwise),
      the convolution output buffers, and the expected-overflow table
      (built in one batch by {!Workload.overflow_table}).  Everything
      is allocated once when the level is built; {!step} then advances
      both chains with {e zero heap allocation}, so iterating a level
      is FLOP-bound rather than GC-bound. *)

  val make :
    ?convolution:[ `Auto | `Fft | `Direct ] ->
    Workload.t ->
    buffer:float ->
    m:int ->
    t
  (** Builds the workspace for an [m]-bin grid with the chains at their
      initial states (floor chain empty, ceiling chain full).  [`Auto]
      picks FFT or direct convolution via
      {!Lrd_numerics.Convolution.prefer_fft}. *)

  val bins : t -> int
  (** The grid resolution [m]. *)

  val grid_step : t -> float
  (** The grid spacing [d = buffer / m]. *)

  val step : t -> unit
  (** One Lindley step (eqs. 19-20) for BOTH chains: a real-input FFT
      convolution per chain (each one half-size complex transform in,
      one out) followed by the boundary folds — aliased circular folds
      on the fast-size path, exact edge sums otherwise.  Performs no
      heap allocation. *)

  val losses : t -> norm:float -> float * float
  (** Current [(lower, upper)] loss-rate bounds (eq. 23). *)

  val lower_pmf : t -> float array
  (** Copy of the floor-chain occupancy pmf (length [m + 1]). *)

  val upper_pmf : t -> float array
  (** Copy of the ceiling-chain occupancy pmf. *)

  val refine_from : src:t -> t -> unit
  (** [refine_from ~src dst] seeds [dst]'s chains from [src]'s on a
      doubled grid (footnote 3's warm restart: old point [j d] is new
      point [2 j (d/2)], an exact re-indexing).
      @raise Invalid_argument unless [dst] has exactly twice the bins. *)
end
(** The solver's engine, exposed for benchmarks and for tests that pin
    the zero-allocation steady-state invariant with [Gc.minor_words]. *)

type occupancy = {
  step : float;  (** Grid spacing [d]; state [j] is occupancy [j * step]. *)
  lower_pmf : float array;
      (** Floor-chain occupancy pmf: a stochastic {e lower} bound on the
          stationary occupancy at arrival epochs. *)
  upper_pmf : float array;
      (** Ceiling-chain occupancy pmf: a stochastic {e upper} bound. *)
}
(** Bounds on the stationary queue-occupancy distribution {e at arrival
    epochs} (the paper solves the chain embedded at the points of the
    modulating renewal process; this is not the time-stationary
    occupancy, but it is exactly what the loss functional needs and a
    natural state descriptor).  Both arrays have length
    [bins + 1] and sum to 1. *)

val mean_occupancy : occupancy -> float * float
(** Bounds [(lower, upper)] on the mean occupancy (work units). *)

val occupancy_ccdf : occupancy -> threshold:float -> float * float
(** Bounds on [Pr{Q >= threshold}] — the overflow-probability analogue
    of the paper's footnote 2. *)

val occupancy_quantile : occupancy -> p:float -> float * float
(** Bounds on the [p]-quantile of the occupancy, [p] in (0, 1]. *)

val mean_virtual_delay : occupancy -> service_rate:float -> float * float
(** Bounds on the virtual waiting time [Q / c] at epoch starts, in
    seconds: what a fluid atom arriving at an epoch boundary waits. *)

module State : sig
  type t
  (** A pausable solve: the classic iterate / check / refine loop of
      {!solve} driven in caller-controlled slices.  Bounds are checked
      after every [check_every]-th chain step regardless of how the
      steps were grouped into {!advance} calls, so the event sequence —
      and therefore every computed bit — depends only on the total
      iteration count: suspending and resuming a cell is exact.
      {!solve} itself runs on a [State], so an uninterrupted state
      reproduces it by construction.

      A state is single-threaded (advance it from one domain at a
      time), but successive slices may run on {e different} domains —
      what a sweep scheduler needs. *)

  val create :
    ?params:params ->
    ?cache:Workload.Cache.t * string ->
    ?trace_levels:bool ->
    Model.t ->
    service_rate:float ->
    buffer:float ->
    t
  (** A fresh cold state (floor chain empty, ceiling chain full; the
      workspace itself is built lazily on the first {!advance}).
      Trivial cells — zero buffer, or a workload that can never exceed
      the service rate — are born {!finished} with their closed-form
      result.  [trace_levels] (default [false]) emits the
      [solver/level] begin/end timeline slices; leave it off unless
      every slice of this state runs on one domain (Chrome B/E events
      must balance per track).  [cache] as in {!solve}.
      @raise Invalid_argument on nonpositive service rate or negative
      buffer (same messages as {!solve}). *)

  val create_utilization :
    ?params:params ->
    ?cache:Workload.Cache.t * string ->
    ?trace_levels:bool ->
    Model.t ->
    utilization:float ->
    buffer_seconds:float ->
    t
  (** {!create} with the {!solve_utilization} conventions:
      [c = mean_rate / utilization], [buffer = buffer_seconds * c]. *)

  val advance : t -> iterations:int -> unit
  (** Run up to [iterations] further chain steps, checking bounds (and
      refining the grid) at exactly the points the uninterrupted solve
      would.  Stops early when a check finishes the state.  No-op on a
      finished state.  @raise Invalid_argument when [iterations] is
      negative. *)

  val run : t -> unit
  (** Advance until finished — the uninterrupted solve. *)

  val finished : t -> bool
  (** No further work: converged, budget exhausted, stalled at
      [max_bins], or {!stop}ped. *)

  val converged : t -> bool
  (** The tolerance or negligible-loss criterion was met. *)

  val iterations : t -> int
  val refinements : t -> int

  val bins : t -> int
  (** Current grid resolution. *)

  val bounds : t -> float * float
  (** [(lower, upper)] loss bounds at the latest check — [(nan, nan)]
      before the first check of a non-trivial state. *)

  val gap_rel : t -> float
  (** Relative bound gap [(upper - lower) / midpoint] at the latest
      check: the paper's stopping ratio, and a scheduler's priority.
      [infinity] before the first check (fresh cells sort first), [0]
      once the loss is known negligible. *)

  val warm_started : t -> bool
  (** Whether {!seed_from} succeeded on this state. *)

  val seed_from : src:t -> t -> bool
  (** [seed_from ~src t] warm-starts [t] from a neighbouring cell:
      [t] adopts [src]'s current resolution and both of its occupancy
      pmfs as initial conditions, skipping the refinement ladder and
      most of the mixing time.  Legal only when the occupancy grids
      (nearly) coincide — buffers within a 25% relative tolerance, so a
      mean-preserving marginal scaling whose zero-clamp nudged the
      service rate still seeds — with [src]'s bins within [t]'s
      [max_bins] and [t] fresh (zero iterations); returns [false] —
      leaving [t] cold — otherwise, or for trivial cells.

      Certification: the seed carries no bound semantics (it is just an
      initial distribution), and a warm-started chain may approach its
      stationary value from either side — so a warm-started state only
      accepts a convergence criterion once both chains have {e also}
      plateaued (within [stall_factor]), i.e. they sit at their
      stationary values, which bound the true loss regardless of the
      initial state.  Cold states are unaffected bit for bit. *)

  val stop : t -> unit
  (** Finish the state now, keeping its latest certified bounds (after
      evaluating them once if the state never reached a check).  The
      result reports [converged = false]: the cell was cut off by
      policy, not by its own criterion.  Idempotent. *)

  val result : t -> result
  (** The result so far; meaningful once {!finished} (before the first
      check the bounds are [nan]). *)

  val detailed : t -> result * occupancy
  (** {!result} plus the current occupancy bounds, as
      {!solve_detailed}. *)
end
(** The resumable core of {!solve}, exposed for sweep schedulers
    ({!Lrd_experiments.Sweep.scheduled_surface}) that interleave many
    cells, warm-start neighbours and allocate iterations globally. *)

val solve :
  ?params:params ->
  ?cache:Workload.Cache.t * string ->
  Model.t ->
  service_rate:float ->
  buffer:float ->
  result
(** Loss rate of the queue with the given service rate and buffer fed by
    the model.  [buffer = 0] returns the closed form
    {!Workload.zero_buffer_loss} directly.

    [cache] is a {!Workload.Cache} plus a key identifying [model] within
    it: cells of a sweep that pass the same key share one memoizing
    workload (and hence one set of survival memo tables) instead of
    re-deriving it per cell.  The key must be injective over the models
    the sweep solves.  Without a cache the solve still memoizes its own
    survival evaluations, which refinement levels reuse.  Caching never
    changes any computed value.
    @raise Invalid_argument on nonpositive service rate or negative
    buffer. *)

val solve_detailed :
  ?params:params ->
  ?cache:Workload.Cache.t * string ->
  Model.t ->
  service_rate:float ->
  buffer:float ->
  result * occupancy
(** Like {!solve}, additionally returning the final occupancy bounds.
    With [buffer = 0] the occupancy is the degenerate point mass at 0
    on a single-state grid. *)

val solve_utilization :
  ?params:params ->
  ?cache:Workload.Cache.t * string ->
  Model.t ->
  utilization:float ->
  buffer_seconds:float ->
  result
(** Convenience wrapper used by all experiments: the service rate is
    [mean_rate / utilization] and the buffer is [buffer_seconds * c]
    (the paper's "normalized buffer size" in seconds). *)

type snapshot = {
  iteration : int;
  lower_pmf : float array;  (** Floor-chain occupancy pmf (length m+1). *)
  upper_pmf : float array;  (** Ceiling-chain occupancy pmf. *)
  lower_loss : float;
  upper_loss : float;
}

val iterate_snapshots :
  Model.t ->
  service_rate:float ->
  buffer:float ->
  bins:int ->
  at:int list ->
  snapshot list
(** Runs both chains at a fixed resolution and captures the occupancy
    pmfs and loss bounds at the requested iteration counts (Fig. 2 shows
    these for n = 5, 10, 30 at m = 100).  The list must be sorted
    ascending.  @raise Invalid_argument otherwise. *)
