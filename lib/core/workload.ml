(* Memo state for the survival-function evaluations that dominate
   discretization cost.  Two layers: scalar hashtables keyed by the raw
   evaluation points (for the point-wise API), and whole-grid caches for
   the batch builders behind {!discretize} and {!overflow_table} — a
   refinement level at [2 m] bins reuses every evaluation its [m]-bin
   parent already made (the coarse grid is exactly every other point of
   the fine one, and [buffer /. m] halves exactly in floating point), and
   the batch layer reuses them without paying a mutex/hashtable round
   trip per point.  A mutex guards the state because a cached workload
   may be evaluated from several domains at once; evaluations are
   construction-time only, never part of the solver's iteration hot
   loop. *)
type memo = {
  lock : Mutex.t;
  ge : (float, float) Hashtbl.t;
  gt : (float, float) Hashtbl.t;
  integral : (float, float) Hashtbl.t;
  (* Whole-grid caches for the batch builders ({!discretize} and
     {!overflow_table}).  A refinement level's grid contains its parent's
     points bitwise (the step is an exact power-of-two scaling), so the
     finest grid computed so far answers any coarser level by striding
     and seeds half of the next doubling.  Batch reuse skips the
     per-point mutex/hashtable round trip entirely, which is what
     actually dominates a warm rebuild. *)
  mutable grid_buffer : float;
  mutable grid_m : int;  (* 0 = empty *)
  mutable grid_ge : float array;  (* length 2 grid_m + 1 *)
  mutable grid_gt : float array;
  mutable ov_buffer : float;
  mutable ov_m : int;  (* 0 = empty *)
  mutable ov : float array;  (* length ov_m + 1 *)
}

type t = {
  service_rate : float;
  rates : float array;
  probs : float array;
  law : Lrd_dist.Interarrival.t;
  mean_rate : float;
  memo : memo option;
}

let create ?(memoize = false) model ~service_rate =
  if not (service_rate > 0.0) then
    invalid_arg "Workload.create: service rate must be positive";
  {
    service_rate;
    rates = Lrd_dist.Marginal.rates model.Model.marginal;
    probs = Lrd_dist.Marginal.probs model.Model.marginal;
    law = model.Model.interarrival;
    mean_rate = Model.mean_rate model;
    memo =
      (if memoize then
         Some
           {
             lock = Mutex.create ();
             ge = Hashtbl.create 512;
             gt = Hashtbl.create 512;
             integral = Hashtbl.create 512;
             grid_buffer = nan;
             grid_m = 0;
             grid_ge = [||];
             grid_gt = [||];
             ov_buffer = nan;
             ov_m = 0;
             ov = [||];
           }
       else None);
  }

(* Computing under the table lock is deliberate: one evaluation is a
   single pass over the marginal, and holding the lock keeps two domains
   racing on the same point from both doing the work. *)
let memo_find lock tbl x compute =
  Mutex.lock lock;
  match Hashtbl.find_opt tbl x with
  | Some v ->
      Mutex.unlock lock;
      v
  | None -> (
      match compute x with
      | v ->
          Hashtbl.add tbl x v;
          Mutex.unlock lock;
          v
      | exception e ->
          Mutex.unlock lock;
          raise e)

let mean t =
  t.law.Lrd_dist.Interarrival.mean *. (t.mean_rate -. t.service_rate)

(* Pr{W >= x} and Pr{W > x} by conditioning on the rate.  For a rate
   above the service rate the increment is positive and increasing in T;
   below, it is negative and decreasing in T, so the strict/weak
   survival functions of T swap roles; a rate exactly equal to c pins
   the increment at zero. *)
let survival ~weak t x =
  let acc = Lrd_numerics.Summation.create () in
  let s_gt = t.law.Lrd_dist.Interarrival.survival_gt
  and s_ge = t.law.Lrd_dist.Interarrival.survival_ge in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      let term =
        if delta > 0.0 then
          if weak then s_ge (x /. delta) else s_gt (x /. delta)
        else if delta < 0.0 then
          (* W = T delta <= 0: Pr{W >= x} = Pr{T <= x / delta}. *)
          if weak then 1.0 -. s_gt (x /. delta)
          else 1.0 -. s_ge (x /. delta)
        else if weak then (if x <= 0.0 then 1.0 else 0.0)
        else if x < 0.0 then 1.0
        else 0.0
      in
      Lrd_numerics.Summation.add acc (p *. term))
    t.probs;
  Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc))

let survival_ge t x =
  match t.memo with
  | None -> survival ~weak:true t x
  | Some m -> memo_find m.lock m.ge x (survival ~weak:true t)

let survival_gt t x =
  match t.memo with
  | None -> survival ~weak:false t x
  | Some m -> memo_find m.lock m.gt x (survival ~weak:false t)

(* One fused pass computing Pr{W >= x} and Pr{W > x} together.  The rate
   loop, the division by delta and the per-side accumulators mirror
   {!survival} term for term, so each side of the result is bitwise
   identical to the corresponding single-sided call — the batch grid
   builder depends on that identity (and [test_parallel] asserts it). *)
let survival_both t x =
  let acc_ge = Lrd_numerics.Summation.create ()
  and acc_gt = Lrd_numerics.Summation.create () in
  let s_gt = t.law.Lrd_dist.Interarrival.survival_gt
  and s_ge = t.law.Lrd_dist.Interarrival.survival_ge in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      let term_ge, term_gt =
        if delta > 0.0 then
          let q = x /. delta in
          (s_ge q, s_gt q)
        else if delta < 0.0 then
          let q = x /. delta in
          (1.0 -. s_gt q, 1.0 -. s_ge q)
        else
          ( (if x <= 0.0 then 1.0 else 0.0),
            if x < 0.0 then 1.0 else 0.0 )
      in
      Lrd_numerics.Summation.add acc_ge (p *. term_ge);
      Lrd_numerics.Summation.add acc_gt (p *. term_gt))
    t.probs;
  ( Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc_ge)),
    Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc_gt)) )

let m_grid_fresh = Lrd_obs.Obs.Counter.make "workload_grid/points_fresh"
let m_grid_reused = Lrd_obs.Obs.Counter.make "workload_grid/points_reused"
let is_pow2 r = r > 0 && r land (r - 1) = 0

(* Survival grids [Pr{W >= i d}], [Pr{W > i d}] for [i = -m .. m] with
   [d = buffer / m], the construction-time bulk of {!discretize}.  The
   memo keeps the finest grid computed for the current buffer: because
   the step scales by exact powers of two across refinement levels, a
   coarser grid is a bitwise stride of a finer one and a doubling reuses
   every cached point, so a refinement chain pays for each point once —
   without the per-point mutex/hashtable round trip of the scalar memo,
   which is what actually dominates a warm rebuild.  Returned arrays are
   cache-owned when a memo is attached; callers only read them. *)
let survival_grid t ~buffer ~m =
  let d = buffer /. float_of_int m in
  let len = (2 * m) + 1 in
  let compute ge gt k =
    let sge, sgt = survival_both t (float_of_int (k - m) *. d) in
    ge.(k) <- sge;
    gt.(k) <- sgt
  in
  let build_fresh () =
    let ge = Array.make len 0.0 and gt = Array.make len 0.0 in
    for k = 0 to len - 1 do
      compute ge gt k
    done;
    (ge, gt)
  in
  match t.memo with
  | None -> build_fresh ()
  | Some memo ->
      Mutex.lock memo.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo.lock)
        (fun () ->
          let gm = memo.grid_m in
          let same_buffer = gm > 0 && memo.grid_buffer = buffer in
          if same_buffer && gm = m then (
            Lrd_obs.Obs.Counter.add m_grid_reused len;
            (memo.grid_ge, memo.grid_gt))
          else if same_buffer && gm mod m = 0 && is_pow2 (gm / m) then (
            (* The cached finer grid contains this level as a stride. *)
            let r = gm / m in
            let ge = Array.make len 0.0 and gt = Array.make len 0.0 in
            for i = -m to m do
              ge.(i + m) <- memo.grid_ge.((r * i) + gm);
              gt.(i + m) <- memo.grid_gt.((r * i) + gm)
            done;
            Lrd_obs.Obs.Counter.add m_grid_reused len;
            (ge, gt))
          else
            let ge = Array.make len 0.0 and gt = Array.make len 0.0 in
            let fresh = ref len in
            (if same_buffer && m mod gm = 0 && is_pow2 (m / gm) then (
               (* Doubling (or further refining): cached coarse points
                  land on every [r]-th index of this grid bitwise. *)
               let r = m / gm in
               for i = -gm to gm do
                 ge.((r * i) + m) <- memo.grid_ge.(i + gm);
                 gt.((r * i) + m) <- memo.grid_gt.(i + gm)
               done;
               fresh := len - ((2 * gm) + 1);
               for k = 0 to len - 1 do
                 if k mod r <> 0 then compute ge gt k
               done)
             else
               for k = 0 to len - 1 do
                 compute ge gt k
               done);
            Lrd_obs.Obs.Counter.add m_grid_fresh !fresh;
            Lrd_obs.Obs.Counter.add m_grid_reused (len - !fresh);
            memo.grid_buffer <- buffer;
            memo.grid_m <- m;
            memo.grid_ge <- ge;
            memo.grid_gt <- gt;
            (ge, gt))

(* The interarrival law's integrated survival function, memoized like the
   survival functions (it is the inner loop of the overflow table). *)
let law_integral t x =
  match t.memo with
  | None -> t.law.Lrd_dist.Interarrival.survival_integral x
  | Some m ->
      memo_find m.lock m.integral x t.law.Lrd_dist.Interarrival.survival_integral

let max_increment t =
  let max_delta =
    Array.fold_left
      (fun acc r -> Float.max acc (r -. t.service_rate))
      neg_infinity t.rates
  in
  if max_delta <= 0.0 then 0.0
  else
    match t.law.Lrd_dist.Interarrival.max_support with
    | None -> Float.infinity
    | Some sup -> sup *. max_delta

let expected_overflow t ~buffer ~occupancy =
  if not (buffer >= 0.0) then
    invalid_arg "Workload.expected_overflow: negative buffer";
  if not (occupancy >= 0.0 && occupancy <= buffer +. 1e-9) then
    invalid_arg "Workload.expected_overflow: occupancy outside [0, buffer]";
  let headroom = Float.max 0.0 (buffer -. occupancy) in
  (* E[(T delta - headroom)^+] = delta int_{headroom/delta}^inf Pr{T>t} dt. *)
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then
        Lrd_numerics.Summation.add acc
          (p *. delta *. law_integral t (headroom /. delta)))
    t.probs;
  Lrd_numerics.Summation.total acc

(* {!expected_overflow} without the argument checks and with the
   occupancy clamp folded in: the exact per-point computation the solver
   has always run for its overflow table, calling the law's integrated
   survival directly instead of through the scalar memo. *)
let overflow_point t ~buffer ~step j =
  let occupancy = Float.min buffer (float_of_int j *. step) in
  let headroom = Float.max 0.0 (buffer -. occupancy) in
  let integral = t.law.Lrd_dist.Interarrival.survival_integral in
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then
        Lrd_numerics.Summation.add acc
          (p *. delta *. integral (headroom /. delta)))
    t.probs;
  Lrd_numerics.Summation.total acc

let overflow_table t ~buffer ~bins =
  if not (buffer > 0.0) then
    invalid_arg "Workload.overflow_table: buffer must be positive";
  if bins <= 0 then
    invalid_arg "Workload.overflow_table: bins must be positive";
  let m = bins in
  let step = buffer /. float_of_int m in
  let len = m + 1 in
  let build_fresh () = Array.init len (overflow_point t ~buffer ~step) in
  match t.memo with
  | None -> build_fresh ()
  | Some memo ->
      Mutex.lock memo.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo.lock)
        (fun () ->
          let om = memo.ov_m in
          let same_buffer = om > 0 && memo.ov_buffer = buffer in
          if same_buffer && om = m then (
            Lrd_obs.Obs.Counter.add m_grid_reused len;
            Array.copy memo.ov)
          else if same_buffer && om mod m = 0 && is_pow2 (om / m) then (
            let r = om / m in
            Lrd_obs.Obs.Counter.add m_grid_reused len;
            Array.init len (fun j -> memo.ov.(r * j)))
          else
            let a = Array.make len 0.0 in
            let fresh = ref len in
            (if same_buffer && m mod om = 0 && is_pow2 (m / om) then (
               let r = m / om in
               for j = 0 to om do
                 a.(r * j) <- memo.ov.(j)
               done;
               fresh := len - (om + 1);
               for j = 0 to m do
                 if j mod r <> 0 then a.(j) <- overflow_point t ~buffer ~step j
               done)
             else
               for j = 0 to m do
                 a.(j) <- overflow_point t ~buffer ~step j
               done);
            Lrd_obs.Obs.Counter.add m_grid_fresh !fresh;
            Lrd_obs.Obs.Counter.add m_grid_reused (len - !fresh);
            memo.ov_buffer <- buffer;
            memo.ov_m <- m;
            memo.ov <- a;
            Array.copy a)

let loss_rate_of_occupancy t ~buffer ~occupancy_probs =
  let n = Array.length occupancy_probs in
  if n < 1 then invalid_arg "Workload.loss_rate_of_occupancy: empty pmf";
  let step = if n = 1 then 0.0 else buffer /. float_of_int (n - 1) in
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i q ->
      if q > 0.0 then
        Lrd_numerics.Summation.add acc
          (q
          *. expected_overflow t ~buffer ~occupancy:(float_of_int i *. step)))
    occupancy_probs;
  Lrd_numerics.Summation.total acc
  /. (t.mean_rate *. t.law.Lrd_dist.Interarrival.mean)

let zero_buffer_loss t =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then Lrd_numerics.Summation.add acc (p *. delta))
    t.probs;
  Lrd_numerics.Summation.total acc /. t.mean_rate

type bins = {
  lower : float array;
  upper : float array;
  half_width : int;
  step : float;
}

let discretize t ~buffer ~bins =
  if not (buffer > 0.0) then
    invalid_arg "Workload.discretize: buffer must be positive";
  if bins <= 0 then invalid_arg "Workload.discretize: bins must be positive";
  let m = bins in
  let d = buffer /. float_of_int m in
  let lower = Array.make ((2 * m) + 1) 0.0 in
  let upper = Array.make ((2 * m) + 1) 0.0 in
  (* Precompute the survival functions on the grid once (one fused batch
     pass, level-cached; see {!survival_grid}); each bin mass is a
     difference of adjacent values (eqs. 21-22). *)
  let ge, gt = survival_grid t ~buffer ~m in
  for k = 0 to 2 * m do
    let i = k - m in
    (* Floor chain, eq. 21. *)
    lower.(k) <-
      (if i = -m then 1.0 -. ge.(k + 1)
       else if i = m then ge.(k)
       else ge.(k) -. ge.(k + 1));
    (* Ceiling chain, eq. 22. *)
    upper.(k) <-
      (if i = -m then 1.0 -. gt.(k)
       else if i = m then gt.(k - 1)
       else gt.(k - 1) -. gt.(k))
  done;
  (* Guard against rounding producing tiny negatives. *)
  let clamp a =
    Array.iteri (fun k v -> if v < 0.0 then a.(k) <- 0.0) a
  in
  clamp lower;
  clamp upper;
  { lower; upper; half_width = m; step = d }

(* ------------------------------------------------------------------ *)
(* Cross-cell cache.

   A sweep surface re-derives the same model and workload for every cell
   of a column that varies only the buffer size (fig. 4/5: one model per
   cutoff across seven buffers; fig. 12/13: one scaled marginal per
   scaling factor).  The cache shares one memoizing workload per
   caller-supplied key — so all those cells also share ONE set of
   survival memo tables — and counts lookups/hits so tests can assert
   the sharing actually happens.  Models and interarrival laws contain
   closures, so identity must come from the caller: the key must be
   injective over the models the sweep builds (e.g. the hex-printed
   column coordinate). *)

let make_workload = create

module Cache = struct
  type workload = t

  (* Cache traffic also feeds the telemetry layer: the counters
     aggregate over every cache instance, while the hit-rate gauge
     reflects the instance that looked up last (one cache per figure
     sweep, so "the active sweep's hit rate"). *)
  let m_lookups = Lrd_obs.Obs.Counter.make "workload_cache/lookups"
  let m_hits = Lrd_obs.Obs.Counter.make "workload_cache/hits"
  let m_misses = Lrd_obs.Obs.Counter.make "workload_cache/misses"
  let m_hit_rate = Lrd_obs.Obs.Gauge.make "workload_cache/hit_rate"

  type t = {
    lock : Mutex.t;
    models : (string, Model.t) Hashtbl.t;
    workloads : (string * float, workload) Hashtbl.t;
    mutable lookups : int;
    mutable hits : int;
  }

  let create () =
    {
      lock = Mutex.create ();
      models = Hashtbl.create 32;
      workloads = Hashtbl.create 32;
      lookups = 0;
      hits = 0;
    }

  (* Building under the cache lock serializes construction of distinct
     keys, which is fine: construction is a tiny fraction of the solve
     it precedes, and the alternative is duplicated work on a race. *)
  let find_or_build c tbl key build =
    Mutex.lock c.lock;
    c.lookups <- c.lookups + 1;
    Lrd_obs.Obs.Counter.incr m_lookups;
    let update_hit_rate () =
      if Lrd_obs.Obs.enabled () then
        Lrd_obs.Obs.Gauge.set m_hit_rate
          (float_of_int c.hits /. float_of_int c.lookups)
    in
    match Hashtbl.find_opt tbl key with
    | Some v ->
        c.hits <- c.hits + 1;
        Lrd_obs.Obs.Counter.incr m_hits;
        update_hit_rate ();
        Mutex.unlock c.lock;
        v
    | None -> (
        Lrd_obs.Obs.Counter.incr m_misses;
        update_hit_rate ();
        match build () with
        | v ->
            Hashtbl.add tbl key v;
            Mutex.unlock c.lock;
            v
        | exception e ->
            Mutex.unlock c.lock;
            raise e)

  let model c ~key build = find_or_build c c.models key build

  let workload c ~key m ~service_rate =
    find_or_build c c.workloads (key, service_rate) (fun () ->
        make_workload ~memoize:true m ~service_rate)

  let lookups c =
    Mutex.lock c.lock;
    let v = c.lookups in
    Mutex.unlock c.lock;
    v

  let hits c =
    Mutex.lock c.lock;
    let v = c.hits in
    Mutex.unlock c.lock;
    v

  let entries c =
    Mutex.lock c.lock;
    let v = Hashtbl.length c.models + Hashtbl.length c.workloads in
    Mutex.unlock c.lock;
    v
end
