(* Memo tables for the survival-function evaluations that dominate
   discretization cost.  The keys are the raw evaluation points, so a
   refinement level at [2 m] bins reuses every evaluation its [m]-bin
   parent already made (the coarse grid is exactly every other point of
   the fine one, and [buffer /. m] halves exactly in floating point), and
   cells of a sweep that share the workload (same model and service
   rate, different buffer) share whatever points coincide.  A mutex
   guards each table because a cached workload may be evaluated from
   several domains at once; evaluations are construction-time only, never
   part of the solver's iteration hot loop. *)
type memo = {
  lock : Mutex.t;
  ge : (float, float) Hashtbl.t;
  gt : (float, float) Hashtbl.t;
  integral : (float, float) Hashtbl.t;
}

type t = {
  service_rate : float;
  rates : float array;
  probs : float array;
  law : Lrd_dist.Interarrival.t;
  mean_rate : float;
  memo : memo option;
}

let create ?(memoize = false) model ~service_rate =
  if not (service_rate > 0.0) then
    invalid_arg "Workload.create: service rate must be positive";
  {
    service_rate;
    rates = Lrd_dist.Marginal.rates model.Model.marginal;
    probs = Lrd_dist.Marginal.probs model.Model.marginal;
    law = model.Model.interarrival;
    mean_rate = Model.mean_rate model;
    memo =
      (if memoize then
         Some
           {
             lock = Mutex.create ();
             ge = Hashtbl.create 512;
             gt = Hashtbl.create 512;
             integral = Hashtbl.create 512;
           }
       else None);
  }

(* Computing under the table lock is deliberate: one evaluation is a
   single pass over the marginal, and holding the lock keeps two domains
   racing on the same point from both doing the work. *)
let memo_find lock tbl x compute =
  Mutex.lock lock;
  match Hashtbl.find_opt tbl x with
  | Some v ->
      Mutex.unlock lock;
      v
  | None -> (
      match compute x with
      | v ->
          Hashtbl.add tbl x v;
          Mutex.unlock lock;
          v
      | exception e ->
          Mutex.unlock lock;
          raise e)

let mean t =
  t.law.Lrd_dist.Interarrival.mean *. (t.mean_rate -. t.service_rate)

(* Pr{W >= x} and Pr{W > x} by conditioning on the rate.  For a rate
   above the service rate the increment is positive and increasing in T;
   below, it is negative and decreasing in T, so the strict/weak
   survival functions of T swap roles; a rate exactly equal to c pins
   the increment at zero. *)
let survival ~weak t x =
  let acc = Lrd_numerics.Summation.create () in
  let s_gt = t.law.Lrd_dist.Interarrival.survival_gt
  and s_ge = t.law.Lrd_dist.Interarrival.survival_ge in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      let term =
        if delta > 0.0 then
          if weak then s_ge (x /. delta) else s_gt (x /. delta)
        else if delta < 0.0 then
          (* W = T delta <= 0: Pr{W >= x} = Pr{T <= x / delta}. *)
          if weak then 1.0 -. s_gt (x /. delta)
          else 1.0 -. s_ge (x /. delta)
        else if weak then (if x <= 0.0 then 1.0 else 0.0)
        else if x < 0.0 then 1.0
        else 0.0
      in
      Lrd_numerics.Summation.add acc (p *. term))
    t.probs;
  Float.max 0.0 (Float.min 1.0 (Lrd_numerics.Summation.total acc))

let survival_ge t x =
  match t.memo with
  | None -> survival ~weak:true t x
  | Some m -> memo_find m.lock m.ge x (survival ~weak:true t)

let survival_gt t x =
  match t.memo with
  | None -> survival ~weak:false t x
  | Some m -> memo_find m.lock m.gt x (survival ~weak:false t)

(* The interarrival law's integrated survival function, memoized like the
   survival functions (it is the inner loop of the overflow table). *)
let law_integral t x =
  match t.memo with
  | None -> t.law.Lrd_dist.Interarrival.survival_integral x
  | Some m ->
      memo_find m.lock m.integral x t.law.Lrd_dist.Interarrival.survival_integral

let max_increment t =
  let max_delta =
    Array.fold_left
      (fun acc r -> Float.max acc (r -. t.service_rate))
      neg_infinity t.rates
  in
  if max_delta <= 0.0 then 0.0
  else
    match t.law.Lrd_dist.Interarrival.max_support with
    | None -> Float.infinity
    | Some sup -> sup *. max_delta

let expected_overflow t ~buffer ~occupancy =
  if not (buffer >= 0.0) then
    invalid_arg "Workload.expected_overflow: negative buffer";
  if not (occupancy >= 0.0 && occupancy <= buffer +. 1e-9) then
    invalid_arg "Workload.expected_overflow: occupancy outside [0, buffer]";
  let headroom = Float.max 0.0 (buffer -. occupancy) in
  (* E[(T delta - headroom)^+] = delta int_{headroom/delta}^inf Pr{T>t} dt. *)
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then
        Lrd_numerics.Summation.add acc
          (p *. delta *. law_integral t (headroom /. delta)))
    t.probs;
  Lrd_numerics.Summation.total acc

let loss_rate_of_occupancy t ~buffer ~occupancy_probs =
  let n = Array.length occupancy_probs in
  if n < 1 then invalid_arg "Workload.loss_rate_of_occupancy: empty pmf";
  let step = if n = 1 then 0.0 else buffer /. float_of_int (n - 1) in
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i q ->
      if q > 0.0 then
        Lrd_numerics.Summation.add acc
          (q
          *. expected_overflow t ~buffer ~occupancy:(float_of_int i *. step)))
    occupancy_probs;
  Lrd_numerics.Summation.total acc
  /. (t.mean_rate *. t.law.Lrd_dist.Interarrival.mean)

let zero_buffer_loss t =
  let acc = Lrd_numerics.Summation.create () in
  Array.iteri
    (fun i p ->
      let delta = t.rates.(i) -. t.service_rate in
      if delta > 0.0 then Lrd_numerics.Summation.add acc (p *. delta))
    t.probs;
  Lrd_numerics.Summation.total acc /. t.mean_rate

type bins = {
  lower : float array;
  upper : float array;
  half_width : int;
  step : float;
}

let discretize t ~buffer ~bins =
  if not (buffer > 0.0) then
    invalid_arg "Workload.discretize: buffer must be positive";
  if bins <= 0 then invalid_arg "Workload.discretize: bins must be positive";
  let m = bins in
  let d = buffer /. float_of_int m in
  let lower = Array.make ((2 * m) + 1) 0.0 in
  let upper = Array.make ((2 * m) + 1) 0.0 in
  (* Precompute the survival functions on the grid once; each bin mass is
     a difference of adjacent values (eqs. 21-22). *)
  let ge = Array.init ((2 * m) + 1) (fun k ->
      survival_ge t (float_of_int (k - m) *. d))
  and gt = Array.init ((2 * m) + 1) (fun k ->
      survival_gt t (float_of_int (k - m) *. d))
  in
  for k = 0 to 2 * m do
    let i = k - m in
    (* Floor chain, eq. 21. *)
    lower.(k) <-
      (if i = -m then 1.0 -. ge.(k + 1)
       else if i = m then ge.(k)
       else ge.(k) -. ge.(k + 1));
    (* Ceiling chain, eq. 22. *)
    upper.(k) <-
      (if i = -m then 1.0 -. gt.(k)
       else if i = m then gt.(k - 1)
       else gt.(k - 1) -. gt.(k))
  done;
  (* Guard against rounding producing tiny negatives. *)
  let clamp a =
    Array.iteri (fun k v -> if v < 0.0 then a.(k) <- 0.0) a
  in
  clamp lower;
  clamp upper;
  { lower; upper; half_width = m; step = d }

(* ------------------------------------------------------------------ *)
(* Cross-cell cache.

   A sweep surface re-derives the same model and workload for every cell
   of a column that varies only the buffer size (fig. 4/5: one model per
   cutoff across seven buffers; fig. 12/13: one scaled marginal per
   scaling factor).  The cache shares one memoizing workload per
   caller-supplied key — so all those cells also share ONE set of
   survival memo tables — and counts lookups/hits so tests can assert
   the sharing actually happens.  Models and interarrival laws contain
   closures, so identity must come from the caller: the key must be
   injective over the models the sweep builds (e.g. the hex-printed
   column coordinate). *)

let make_workload = create

module Cache = struct
  type workload = t

  (* Cache traffic also feeds the telemetry layer: the counters
     aggregate over every cache instance, while the hit-rate gauge
     reflects the instance that looked up last (one cache per figure
     sweep, so "the active sweep's hit rate"). *)
  let m_lookups = Lrd_obs.Obs.Counter.make "workload_cache/lookups"
  let m_hits = Lrd_obs.Obs.Counter.make "workload_cache/hits"
  let m_misses = Lrd_obs.Obs.Counter.make "workload_cache/misses"
  let m_hit_rate = Lrd_obs.Obs.Gauge.make "workload_cache/hit_rate"

  type t = {
    lock : Mutex.t;
    models : (string, Model.t) Hashtbl.t;
    workloads : (string * float, workload) Hashtbl.t;
    mutable lookups : int;
    mutable hits : int;
  }

  let create () =
    {
      lock = Mutex.create ();
      models = Hashtbl.create 32;
      workloads = Hashtbl.create 32;
      lookups = 0;
      hits = 0;
    }

  (* Building under the cache lock serializes construction of distinct
     keys, which is fine: construction is a tiny fraction of the solve
     it precedes, and the alternative is duplicated work on a race. *)
  let find_or_build c tbl key build =
    Mutex.lock c.lock;
    c.lookups <- c.lookups + 1;
    Lrd_obs.Obs.Counter.incr m_lookups;
    let update_hit_rate () =
      if Lrd_obs.Obs.enabled () then
        Lrd_obs.Obs.Gauge.set m_hit_rate
          (float_of_int c.hits /. float_of_int c.lookups)
    in
    match Hashtbl.find_opt tbl key with
    | Some v ->
        c.hits <- c.hits + 1;
        Lrd_obs.Obs.Counter.incr m_hits;
        update_hit_rate ();
        Mutex.unlock c.lock;
        v
    | None -> (
        Lrd_obs.Obs.Counter.incr m_misses;
        update_hit_rate ();
        match build () with
        | v ->
            Hashtbl.add tbl key v;
            Mutex.unlock c.lock;
            v
        | exception e ->
            Mutex.unlock c.lock;
            raise e)

  let model c ~key build = find_or_build c c.models key build

  let workload c ~key m ~service_rate =
    find_or_build c c.workloads (key, service_rate) (fun () ->
        make_workload ~memoize:true m ~service_rate)

  let lookups c =
    Mutex.lock c.lock;
    let v = c.lookups in
    Mutex.unlock c.lock;
    v

  let hits c =
    Mutex.lock c.lock;
    let v = c.hits in
    Mutex.unlock c.lock;
    v

  let entries c =
    Mutex.lock c.lock;
    let v = Hashtbl.length c.models + Hashtbl.length c.workloads in
    Mutex.unlock c.lock;
    v
end
