type params = {
  arrival_rate : float;
  mean_duration : float;
  alpha : float;
  rate_per_session : float;
}

let default =
  {
    arrival_rate = 50.0;
    mean_duration = 1.0;
    alpha = 1.4;
    rate_per_session = 0.1;
  }

let mean_rate p = p.arrival_rate *. p.mean_duration *. p.rate_per_session
let hurst p = (3.0 -. p.alpha) /. 2.0

(* Per-domain slot-work scratch, keyed by the slot count so the array
   length always matches exactly.  The buffer is refilled with zeros at
   the top of every [generate], so reuse is invisible to the output; the
   returned trace copies out of it ([Array.map] below). *)
let work_scratch = Lrd_parallel.Arena.create (fun slots -> Array.make slots 0.0)

let deposit work t0 t1 rate ~slot ~slots =
  let horizon = float_of_int slots *. slot in
  let t0 = Float.max 0.0 t0 and t1 = Float.min horizon t1 in
  if t1 > t0 then begin
    let first = int_of_float (t0 /. slot) in
    let last = min (slots - 1) (int_of_float ((t1 -. 1e-12) /. slot)) in
    for b = first to last do
      let lo = Float.max t0 (float_of_int b *. slot) in
      let hi = Float.min t1 (float_of_int (b + 1) *. slot) in
      if hi > lo then work.(b) <- work.(b) +. (rate *. (hi -. lo))
    done
  end

let generate ?(params = default) rng ~slots ~slot =
  if slots <= 0 then invalid_arg "Mginf.generate: slots must be positive";
  if not (slot > 0.0) then invalid_arg "Mginf.generate: slot must be positive";
  if not (params.arrival_rate > 0.0 && params.mean_duration > 0.0
         && params.rate_per_session > 0.0) then
    invalid_arg "Mginf.generate: parameters must be positive";
  if not (params.alpha > 1.0) then
    invalid_arg "Mginf.generate: alpha must exceed 1";
  let horizon = float_of_int slots *. slot in
  let theta = params.mean_duration *. (params.alpha -. 1.0) in
  let work = Lrd_parallel.Arena.get work_scratch slots in
  Array.fill work 0 slots 0.0;
  (* Stationary initial sessions: Poisson(lambda E[D]) many, each with an
     equilibrium residual duration.  The residual ccdf of the shifted
     Pareto is ((t + theta)/theta)^(1 - alpha), inverted in closed
     form. *)
  let residual_duration () =
    let u = Lrd_rng.Rng.float_pos rng in
    theta *. ((u ** (1.0 /. (1.0 -. params.alpha))) -. 1.0)
  in
  let poisson mean =
    (* Knuth's method is fine for the moderate means used here; for
       large means fall back to a normal approximation. *)
    if mean > 500.0 then
      max 0
        (int_of_float
           (Float.round
              (Lrd_rng.Sampler.normal rng ~mean ~std:(sqrt mean))))
    else begin
      let limit = exp (-.mean) in
      let rec go k p =
        let p = p *. Lrd_rng.Rng.float_pos rng in
        if p <= limit then k else go (k + 1) p
      in
      go 0 1.0
    end
  in
  let initial = poisson (params.arrival_rate *. params.mean_duration) in
  for _ = 1 to initial do
    deposit work 0.0 (residual_duration ()) params.rate_per_session ~slot
      ~slots
  done;
  (* Fresh arrivals over [0, horizon): Poisson process with full Pareto
     durations. *)
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Lrd_rng.Sampler.exponential rng ~rate:params.arrival_rate;
    if !t >= horizon then continue := false
    else begin
      let d =
        Lrd_rng.Sampler.pareto rng ~theta ~alpha:params.alpha
      in
      deposit work !t (!t +. d) params.rate_per_session ~slot ~slots
    end
  done;
  Trace.create ~rates:(Array.map (fun w -> w /. slot) work) ~slot
