let check_d d =
  if not (d >= 0.0 && d < 0.5) then
    invalid_arg "Farima: d must lie in [0, 0.5)"

let memory_of_hurst h =
  if not (h > 0.5 && h < 1.0) then
    invalid_arg "Farima.memory_of_hurst: H must lie in (0.5, 1)";
  h -. 0.5

(* rho(k) = prod_{i=1..k} (i - 1 + d) / (i - d). *)
let autocorrelation ~d k =
  check_d d;
  let k = abs k in
  let rec go i acc =
    if i > k then acc
    else
      go (i + 1) (acc *. (float_of_int i -. 1.0 +. d) /. (float_of_int i -. d))
  in
  go 1 1.0

let variance ~d =
  check_d d;
  exp
    (Lrd_numerics.Special.log_gamma (1.0 -. (2.0 *. d))
    -. (2.0 *. Lrd_numerics.Special.log_gamma (1.0 -. d)))

module Plan = struct
  type t = Circulant.t

  let make ~d ~n =
    check_d d;
    if n <= 0 then invalid_arg "Farima.generate: n must be positive";
    let sigma2 = variance ~d in
    let half = Circulant.embedding_half ~n in
    (* Autocovariance by the stable ratio recurrence, filled out to the
       circulant embedding. *)
    let acv = Array.make (half + 1) sigma2 in
    for k = 1 to half do
      acv.(k) <-
        acv.(k - 1) *. (float_of_int k -. 1.0 +. d) /. (float_of_int k -. d)
    done;
    Circulant.make ~name:"Farima.generate"
      ~acv:(fun k -> acv.(k))
      ~tol:(1e-8 *. sigma2) ~n

  let length = Circulant.length
  let draw = Circulant.draw
  let generate = Circulant.generate
end

let domain_plans = Lrd_parallel.Arena.create (fun (d, n) -> Plan.make ~d ~n)
let domain_plan ~d ~n = Lrd_parallel.Arena.get domain_plans (d, n)

let generate rng ~d ~n =
  check_d d;
  if n <= 0 then invalid_arg "Farima.generate: n must be positive";
  Plan.generate (domain_plan ~d ~n) rng
