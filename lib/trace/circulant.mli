(** Planned circulant-embedding synthesis of stationary Gaussian
    sequences (Davies & Harte), the engine under {!Fgn} and {!Farima}.

    A plan for [(autocovariance, n)] precomputes everything that does
    not depend on the random draw: the circulant embedding of the
    covariance into size [m = next_pow2 (2 n)], its eigenvalues (one
    real transform), the per-bin scale factors [sqrt (lambda_k / m)] /
    [sqrt (lambda_k / 2m)], the real-input plan for size [m], and the
    half-spectrum scratch pair.  {!draw} then costs one Gaussian fill
    plus ONE half-size complex transform
    ({!Lrd_numerics.Fft.Real.synthesize_ip} of the Hermitian spectrum)
    and allocates no arrays — against two full-size transforms, the
    eigenvalue setup and six fresh length-[m] arrays for every unplanned
    call.

    Determinism contract: a draw consumes exactly the same RNG stream,
    in the same order, as the historical one-shot generators, and all
    generator entry points (planned and unplanned) route through this
    module, so outputs are identical under equal RNG states (enforced by
    the [test_trace] property tests).  Plans hold mutable scratch: share
    them across domains only through {!Lrd_parallel.Arena}. *)

type t
(** A reusable synthesis plan.  Not domain-safe; see above. *)

val embedding_half : n:int -> int
(** [embedding_half ~n] is [next_pow2 (2 n) / 2], the largest lag whose
    autocovariance the embedding of an [n]-sample draw needs.
    @raise Invalid_argument if [n <= 0]. *)

val make : name:string -> acv:(int -> float) -> tol:float -> n:int -> t
(** [make ~name ~acv ~tol ~n] plans [n]-sample draws from the
    zero-mean stationary Gaussian process with autocovariance [acv]
    (queried at lags [0 .. embedding_half ~n]).  Circulant eigenvalues
    below [-tol] raise [Invalid_argument (name ^ ": embedding not
    nonnegative definite")]; tiny negative rounding artifacts in
    [(-tol, 0)] are clamped to zero, exactly as the one-shot
    generators always did.
    @raise Invalid_argument if [n <= 0]. *)

val length : t -> int
(** The sample count [n] the plan draws. *)

val draw : t -> Lrd_rng.Rng.t -> dst:float array -> unit
(** [draw t rng ~dst] writes [length t] fresh samples into the prefix of
    [dst] using one FFT and no array allocation.
    @raise Invalid_argument if [dst] is shorter than [length t]. *)

val generate : t -> Lrd_rng.Rng.t -> float array
(** {!draw} into a fresh array of [length t] samples. *)
