let check_hurst hurst =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Fgn: hurst must lie in (0, 1)"

let autocovariance ~hurst k =
  check_hurst hurst;
  let k = Float.abs (float_of_int k) in
  let h2 = 2.0 *. hurst in
  0.5 *. (((k +. 1.0) ** h2) -. (2.0 *. (k ** h2)) +. (Float.abs (k -. 1.0) ** h2))

module Plan = struct
  type t = Circulant.t

  let make ~hurst ~n =
    check_hurst hurst;
    if n <= 0 then invalid_arg "Fgn.davies_harte: n must be positive";
    Circulant.make ~name:"Fgn.davies_harte"
      ~acv:(fun k -> autocovariance ~hurst k)
      ~tol:1e-8 ~n

  let length = Circulant.length
  let draw = Circulant.draw
  let generate = Circulant.generate
end

(* Plans hold mutable scratch, so the cache is per domain: composes with
   the parallel pool without locks, and each long-lived worker domain
   amortizes the eigenvalue setup across its share of a sweep. *)
let domain_plans =
  Lrd_parallel.Arena.create (fun (hurst, n) -> Plan.make ~hurst ~n)

let domain_plan ~hurst ~n = Lrd_parallel.Arena.get domain_plans (hurst, n)

let davies_harte rng ~hurst ~n = Plan.generate (Plan.make ~hurst ~n) rng

let hosking rng ~hurst ~n =
  check_hurst hurst;
  if n <= 0 then invalid_arg "Fgn.hosking: n must be positive";
  let gamma = Array.init (n + 1) (fun k -> autocovariance ~hurst k) in
  let out = Array.make n 0.0 in
  let phi = Array.make n 0.0 and phi_prev = Array.make n 0.0 in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  out.(0) <- gaussian ();
  let v = ref 1.0 in
  for i = 1 to n - 1 do
    (* Durbin-Levinson update of the partial autocorrelations. *)
    let num = ref gamma.(i) in
    for j = 0 to i - 2 do
      num := !num -. (phi_prev.(j) *. gamma.(i - 1 - j))
    done;
    let kappa = !num /. !v in
    phi.(i - 1) <- kappa;
    for j = 0 to i - 2 do
      phi.(j) <- phi_prev.(j) -. (kappa *. phi_prev.(i - 2 - j))
    done;
    v := !v *. (1.0 -. (kappa *. kappa));
    let mean = ref 0.0 in
    for j = 0 to i - 1 do
      mean := !mean +. (phi.(j) *. out.(i - 1 - j))
    done;
    out.(i) <- !mean +. (sqrt !v *. gaussian ());
    Array.blit phi 0 phi_prev 0 i
  done;
  out
