(* Planned Davies-Harte synthesis.  The spectral draw writes

     a_0      = sqrt (lambda_0 / m)        g
     a_{m/2}  = sqrt (lambda_{m/2} / m)    g
     a_k      = sqrt (lambda_k / 2m) (g1 + i g2),   a_{m-k} = conj a_k

   and the unnormalized synthesis y_j = sum_k a_k exp (-2 i pi j k / m)
   of that Hermitian spectrum yields [n] exact samples.  The spectrum is
   Hermitian by construction, so only the half [a_0 .. a_{m/2}] is ever
   materialized and the synthesis costs ONE complex transform of size
   m/2 ({!Lrd_numerics.Fft.Real.synthesize_ip}) instead of the full-size
   complex transform the first planned engine ran.  Everything left of
   the Gaussians is draw-independent and lives in the plan; the scale
   table stores the already-rooted factors, and the Gaussian consumption
   order is unchanged, so draws from one RNG state remain deterministic
   across the complex -> real engine switch points of the code base. *)

type t = {
  n : int;
  m : int;
  half : int;
  rfft : Lrd_numerics.Fft.Real.t;
  scale : float array;  (* length half + 1: rooted eigenvalue factors *)
  are : float array;  (* half-spectrum scratch, length half + 1 *)
  aim : float array;
}

let embedding_half ~n =
  if n <= 0 then invalid_arg "Circulant.embedding_half: n must be positive";
  Lrd_numerics.Fft.next_power_of_two (2 * n) / 2

let make ~name ~acv ~tol ~n =
  if n <= 0 then invalid_arg "Circulant.make: n must be positive";
  let m = Lrd_numerics.Fft.next_power_of_two (2 * n) in
  let half = m / 2 in
  let rfft = Lrd_numerics.Fft.Real.make_plan m in
  (* First row of the circulant embedding of the covariance matrix. *)
  let c = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let lag = if k <= half then k else m - k in
    c.(k) <- acv lag
  done;
  (* Eigenvalues of the circulant; nonnegative up to rounding for the
     processes used here.  The embedding is real-even, so the spectrum
     is real and symmetric: the independent bins [0 .. half] carry every
     distinct eigenvalue, which is exactly what the real transform
     produces. *)
  let ere = Array.make (half + 1) 0.0 and eim = Array.make (half + 1) 0.0 in
  Lrd_numerics.Fft.Real.forward_ip rfft ~signal:c ~len:m ~spec_re:ere
    ~spec_im:eim;
  Array.iter
    (fun v ->
      if v < -.tol then
        invalid_arg (name ^ ": embedding not nonnegative definite"))
    ere;
  let eigen k = Float.max ere.(k) 0.0 in
  let fm = float_of_int m in
  let scale =
    Array.init (half + 1) (fun k ->
        if k = 0 || k = half then sqrt (eigen k /. fm)
        else sqrt (eigen k /. (2.0 *. fm)))
  in
  {
    n;
    m;
    half;
    rfft;
    scale;
    are = Array.make (half + 1) 0.0;
    aim = Array.make (half + 1) 0.0;
  }

let length t = t.n

let draw t rng ~dst =
  if Array.length dst < t.n then invalid_arg "Circulant.draw: dst too short";
  let are = t.are and aim = t.aim and scale = t.scale in
  let half = t.half in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  are.(0) <- scale.(0) *. gaussian ();
  aim.(0) <- 0.0;
  are.(half) <- scale.(half) *. gaussian ();
  aim.(half) <- 0.0;
  for k = 1 to half - 1 do
    let s = Array.unsafe_get scale k in
    let g1 = gaussian () and g2 = gaussian () in
    Array.unsafe_set are k (s *. g1);
    Array.unsafe_set aim k (s *. g2)
  done;
  Lrd_numerics.Fft.Real.synthesize_ip t.rfft ~spec_re:are ~spec_im:aim
    ~signal:dst ~len:t.n

let generate t rng =
  let dst = Array.make t.n 0.0 in
  draw t rng ~dst;
  dst
