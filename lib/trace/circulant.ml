(* Planned Davies-Harte synthesis.  The spectral draw writes

     a_0      = sqrt (lambda_0 / m)        g
     a_{m/2}  = sqrt (lambda_{m/2} / m)    g
     a_k      = sqrt (lambda_k / 2m) (g1 + i g2),   a_{m-k} = conj a_k

   and one forward transform of [a] yields [n] exact samples in its real
   part.  Everything left of the Gaussians is draw-independent and lives
   in the plan; the scale table stores the already-rooted factors, the
   same float expressions the one-shot generators evaluated per call, so
   planned draws stay bit-identical to them. *)

type t = {
  n : int;
  m : int;
  half : int;
  fft : Lrd_numerics.Fft.plan;
  scale : float array;  (* length half + 1: rooted eigenvalue factors *)
  are : float array;  (* spectral scratch, length m *)
  aim : float array;
}

let embedding_half ~n =
  if n <= 0 then invalid_arg "Circulant.embedding_half: n must be positive";
  Lrd_numerics.Fft.next_power_of_two (2 * n) / 2

let make ~name ~acv ~tol ~n =
  if n <= 0 then invalid_arg "Circulant.make: n must be positive";
  let m = Lrd_numerics.Fft.next_power_of_two (2 * n) in
  let half = m / 2 in
  let fft = Lrd_numerics.Fft.make_plan m in
  (* First row of the circulant embedding of the covariance matrix. *)
  let c_re = Array.make m 0.0 and c_im = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let lag = if k <= half then k else m - k in
    c_re.(k) <- acv lag
  done;
  Lrd_numerics.Fft.forward_ip fft ~re:c_re ~im:c_im;
  (* Eigenvalues of the circulant; nonnegative up to rounding for the
     processes used here.  The embedding is real-even, so bins above
     [half] mirror those below, but they are checked too: the mirror is
     only exact up to FFT rounding and the one-shot path checked all. *)
  Array.iter
    (fun v ->
      if v < -.tol then
        invalid_arg (name ^ ": embedding not nonnegative definite"))
    c_re;
  let eigen k = Float.max c_re.(k) 0.0 in
  let fm = float_of_int m in
  let scale =
    Array.init (half + 1) (fun k ->
        if k = 0 || k = half then sqrt (eigen k /. fm)
        else sqrt (eigen k /. (2.0 *. fm)))
  in
  { n; m; half; fft; scale; are = Array.make m 0.0; aim = Array.make m 0.0 }

let length t = t.n

let draw t rng ~dst =
  if Array.length dst < t.n then invalid_arg "Circulant.draw: dst too short";
  let are = t.are and aim = t.aim and scale = t.scale in
  let m = t.m and half = t.half in
  let gaussian () = Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0 in
  are.(0) <- scale.(0) *. gaussian ();
  aim.(0) <- 0.0;
  are.(half) <- scale.(half) *. gaussian ();
  aim.(half) <- 0.0;
  for k = 1 to half - 1 do
    let s = Array.unsafe_get scale k in
    let g1 = gaussian () and g2 = gaussian () in
    Array.unsafe_set are k (s *. g1);
    Array.unsafe_set aim k (s *. g2);
    Array.unsafe_set are (m - k) (s *. g1);
    Array.unsafe_set aim (m - k) (-.(s *. g2))
  done;
  Lrd_numerics.Fft.forward_ip t.fft ~re:are ~im:aim;
  Array.blit are 0 dst 0 t.n

let generate t rng =
  let dst = Array.make t.n 0.0 in
  draw t rng ~dst;
  dst
