(** FARIMA(0, d, 0) — fractionally integrated white noise.

    The other canonical exactly-LRD Gaussian process besides fGn: white
    noise passed through the fractional difference operator
    [(1 - B)^(-d)], [0 < d < 1/2], giving autocorrelation

    [rho(k) = prod_(i=1..k) (i - 1 + d) / (i - d) ~ k^(2d - 1)]

    so [H = d + 1/2].  Unlike fGn, FARIMA extends naturally to
    short-range ARMA structure; here the pure (0, d, 0) case is
    generated exactly by circulant embedding of the closed-form
    autocovariance — the same Davies-Harte machinery as {!Fgn}, and the
    same reusable {!Plan} on top of it. *)

val memory_of_hurst : float -> float
(** [d = H - 1/2].  @raise Invalid_argument unless [0.5 < H < 1]. *)

val autocorrelation : d:float -> int -> float
(** Closed-form [rho(k)], [rho(0) = 1].
    @raise Invalid_argument unless [0 <= d < 0.5]. *)

val variance : d:float -> float
(** Process variance for unit innovation variance:
    [Gamma(1 - 2d) / Gamma(1 - d)^2]. *)

module Plan : sig
  type t
  (** A reusable circulant-embedding plan for one [(d, n)] pair; draws
      are bit-identical to {!generate} under the same RNG state, cost
      one FFT each and allocate nothing.  Holds mutable scratch — do not
      share across domains; see {!domain_plan}. *)

  val make : d:float -> n:int -> t
  (** @raise Invalid_argument unless [0 <= d < 0.5] and [n > 0]. *)

  val length : t -> int
  val draw : t -> Lrd_rng.Rng.t -> dst:float array -> unit
  val generate : t -> Lrd_rng.Rng.t -> float array
end

val domain_plan : d:float -> n:int -> Plan.t
(** The calling domain's cached plan for [(d, n)], built on first use
    (no cross-domain sharing, so it composes with {!Lrd_parallel.Pool}
    without locks). *)

val generate : Lrd_rng.Rng.t -> d:float -> n:int -> float array
(** [n] samples of zero-mean FARIMA(0, d, 0) with unit innovation
    variance, by circulant embedding.  Internally draws from
    {!domain_plan}, so repeated calls at one [(d, n)] skip the
    eigenvalue setup; the output is bit-identical either way.
    @raise Invalid_argument unless [0 <= d < 0.5] and [n > 0]. *)
