(** Fractional Gaussian noise generation.

    fGn is the stationary increment process of fractional Brownian motion:
    a zero-mean Gaussian sequence with autocovariance
    [gamma(k) = (|k+1|^2H - 2|k|^2H + |k-1|^2H) / 2] (unit variance).
    It is the canonical exactly self-similar process with Hurst parameter
    [H], and underlies the synthetic video trace that substitutes for the
    paper's MTV recording.

    Two generators are provided: the exact circulant-embedding spectral
    method of Davies & Harte (O(n log n), used for production traces), and
    Hosking's recursive method (O(n^2), exact, used as a small-n oracle in
    the tests).  The Davies-Harte path is additionally exposed as a
    reusable {!Plan} so repeated draws at one [(hurst, n)] skip the
    eigenvalue setup and allocate nothing. *)

val autocovariance : hurst:float -> int -> float
(** [autocovariance ~hurst k] is the lag-[k] autocovariance of unit-
    variance fGn.  @raise Invalid_argument unless [0 < hurst < 1]. *)

module Plan : sig
  type t
  (** A reusable Davies-Harte plan for one [(hurst, n)] pair: circulant
      eigenvalues, rooted scale factors, FFT tables and complex scratch.
      Draws from a plan consume the same RNG stream and produce
      bit-identical samples to {!davies_harte}, at one FFT per draw with
      no array allocation.  Plans hold mutable scratch and must not be
      shared across domains; see {!domain_plan}. *)

  val make : hurst:float -> n:int -> t
  (** @raise Invalid_argument unless [0 < hurst < 1] and [n > 0]. *)

  val length : t -> int
  (** The sample count [n] the plan draws. *)

  val draw : t -> Lrd_rng.Rng.t -> dst:float array -> unit
  (** Writes [length t] fresh samples into the prefix of [dst] without
      allocating.  @raise Invalid_argument if [dst] is too short. *)

  val generate : t -> Lrd_rng.Rng.t -> float array
  (** {!draw} into a fresh array. *)
end

val domain_plan : hurst:float -> n:int -> Plan.t
(** The calling domain's cached plan for [(hurst, n)], built on first
    use.  Safe under {!Lrd_parallel.Pool}: each worker domain keeps its
    own plans, so no synchronization or sharing occurs. *)

val davies_harte : Lrd_rng.Rng.t -> hurst:float -> n:int -> float array
(** [n] samples of zero-mean unit-variance fGn by circulant embedding.
    The embedding size is the next power of two at least [2 n]; for fGn
    the circulant eigenvalues are provably nonnegative, and tiny negative
    rounding artifacts are clamped to zero.  Equivalent to drawing from
    a fresh {!Plan.make}; callers that draw repeatedly at one
    [(hurst, n)] should hold a plan (or use {!domain_plan}) instead.
    @raise Invalid_argument unless [0 < hurst < 1] and [n > 0]. *)

val hosking : Lrd_rng.Rng.t -> hurst:float -> n:int -> float array
(** Exact O(n^2) generation by the Durbin-Levinson recursion.  Intended
    for tests and short sequences. *)
