(* Per-domain permutation scratch: the index array is consumed inside
   [external_shuffle] before any other shuffle can run on this domain,
   so it never needs a fresh allocation.  Refilling with the identity
   before the same Fisher-Yates pass keeps the draws — and therefore the
   shuffle — bit-identical to a freshly allocated array. *)
let perm_scratch = Lrd_parallel.Arena.create (fun n -> Array.make n 0)

let permutation rng n =
  let p = Lrd_parallel.Arena.get perm_scratch n in
  for i = 0 to n - 1 do
    p.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Lrd_rng.Rng.int rng ~bound:(i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let external_shuffle rng trace ~block =
  if block <= 0 then
    invalid_arg "Shuffle.external_shuffle: block must be positive";
  let n = Trace.length trace in
  let blocks = max 1 (n / block) in
  let usable = min n (blocks * block) in
  let order = permutation rng blocks in
  let rates = Array.make usable 0.0 in
  let src = trace.Trace.rates in
  Array.iteri
    (fun dst_block src_block ->
      Array.blit src (src_block * block) rates (dst_block * block)
        (min block (usable - (dst_block * block))))
    order;
  Trace.create ~rates ~slot:trace.Trace.slot

let shuffle_range rng a pos len =
  for i = len - 1 downto 1 do
    let j = Lrd_rng.Rng.int rng ~bound:(i + 1) in
    let tmp = a.(pos + i) in
    a.(pos + i) <- a.(pos + j);
    a.(pos + j) <- tmp
  done

let internal_shuffle rng trace ~block =
  if block <= 0 then
    invalid_arg "Shuffle.internal_shuffle: block must be positive";
  let rates = Array.copy trace.Trace.rates in
  let n = Array.length rates in
  let pos = ref 0 in
  while !pos < n do
    let len = min block (n - !pos) in
    shuffle_range rng rates !pos len;
    pos := !pos + block
  done;
  Trace.create ~rates ~slot:trace.Trace.slot

let full_shuffle rng trace =
  let rates = Array.copy trace.Trace.rates in
  shuffle_range rng rates 0 (Array.length rates);
  Trace.create ~rates ~slot:trace.Trace.slot
