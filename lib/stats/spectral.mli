(** Spectral estimation.

    The raw periodogram is an inconsistent spectrum estimator (its
    variance does not shrink with the sample size); Welch's method —
    averaging modified periodograms of overlapping windowed segments —
    trades frequency resolution for consistency.  Alongside, the
    closed-form spectral densities of fGn (Paxson's approximation) and
    FARIMA(0, d, 0) for comparing estimates against theory. *)

type estimate = {
  frequencies : float array;  (** Angular frequencies in (0, pi]. *)
  power : float array;  (** Spectral density estimates. *)
  segments : int;  (** Number of averaged segments. *)
}

val periodogram : float array -> estimate
(** Raw periodogram at the Fourier frequencies of the (power-of-two
    padded) series, excluding frequency zero; normalized so that the
    integral over (-pi, pi] approximates the variance. *)

module Workspace : sig
  type t
  (** A planned periodogram engine for one transform size
      [next_pow2 n]: FFT plan plus complex scratch reused across calls.
      Results are bit-identical to {!val:periodogram}.  Holds mutable
      scratch — do not share across domains. *)

  val make : n:int -> t
  (** Workspace for series whose length rounds to the same [next_pow2]
      as [n].  @raise Invalid_argument if [n < 8]. *)

  val size : t -> int
  (** The transform size. *)

  val periodogram : t -> float array -> estimate
  (** As {!val:periodogram}, reusing the plan and scratch.
      @raise Invalid_argument if the series length does not round to
      the workspace size, or is shorter than 8 points. *)
end

val welch :
  ?segment:int -> ?overlap:float -> float array -> estimate
(** Welch estimate with Hann-windowed segments of length [segment]
    (default [n / 8] rounded to a power of two, at least 64) and
    fractional [overlap] (default 0.5).  @raise Invalid_argument for
    series shorter than one segment or overlap outside [0, 1). *)

val fgn_spectrum : hurst:float -> float -> float
(** Approximate spectral density of unit-variance fGn at angular
    frequency [w] in (0, pi]: the Paxson finite-sum approximation of
    [c |w|^(1-2H)]-type density (sum over aliased terms, 3 terms plus
    tail correction). *)

val farima_spectrum : d:float -> float -> float
(** Exact spectral density of FARIMA(0, d, 0) with unit innovation
    variance: [(2 sin(w/2))^(-2d) / (2 pi)]. *)
