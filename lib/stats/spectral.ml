type estimate = {
  frequencies : float array;
  power : float array;
  segments : int;
}

(* The caller supplies the transform and scratch of length [size], so
   the planned workspace and the one-shot path run the identical float
   operations (bit-identical results). *)
let raw_periodogram_core ~forward ~re ~im ~size data =
  let n = Array.length data in
  let mean = Lrd_numerics.Array_ops.mean data in
  for i = 0 to n - 1 do
    re.(i) <- data.(i) -. mean
  done;
  Array.fill re n (size - n) 0.0;
  Array.fill im 0 size 0.0;
  forward ~re ~im;
  let norm = 2.0 *. Float.pi *. float_of_int n in
  ( Array.init (size / 2) (fun j ->
        2.0 *. Float.pi *. float_of_int (j + 1) /. float_of_int size),
    Array.init (size / 2) (fun j ->
        let k = j + 1 in
        ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) /. norm) )

let raw_periodogram data =
  let size = Lrd_numerics.Fft.next_power_of_two (Array.length data) in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  raw_periodogram_core ~forward:Lrd_numerics.Fft.forward ~re ~im ~size data

let periodogram data =
  if Array.length data < 8 then
    invalid_arg "Spectral.periodogram: series too short";
  let frequencies, power = raw_periodogram data in
  { frequencies; power; segments = 1 }

module Workspace = struct
  type t = {
    size : int;
    plan : Lrd_numerics.Fft.plan;
    re : float array;
    im : float array;
  }

  let make ~n =
    if n < 8 then invalid_arg "Spectral.Workspace.make: n must be at least 8";
    let size = Lrd_numerics.Fft.next_power_of_two n in
    {
      size;
      plan = Lrd_numerics.Fft.make_plan size;
      re = Array.make size 0.0;
      im = Array.make size 0.0;
    }

  let size t = t.size

  let periodogram t data =
    if Array.length data < 8 then
      invalid_arg "Spectral.periodogram: series too short";
    if Lrd_numerics.Fft.next_power_of_two (Array.length data) <> t.size then
      invalid_arg "Spectral.Workspace: series does not match the workspace size";
    let frequencies, power =
      raw_periodogram_core
        ~forward:(Lrd_numerics.Fft.forward_ip t.plan)
        ~re:t.re ~im:t.im ~size:t.size data
    in
    { frequencies; power; segments = 1 }
end

let welch ?segment ?(overlap = 0.5) data =
  let n = Array.length data in
  if not (overlap >= 0.0 && overlap < 1.0) then
    invalid_arg "Spectral.welch: overlap must lie in [0, 1)";
  let segment =
    match segment with
    | Some s -> s
    | None -> max 64 (Lrd_numerics.Fft.next_power_of_two (n / 8) / 2 * 2)
  in
  let segment = Lrd_numerics.Fft.next_power_of_two segment in
  if n < segment then invalid_arg "Spectral.welch: series shorter than segment";
  let hop = max 1 (int_of_float (float_of_int segment *. (1.0 -. overlap))) in
  (* Hann window and its power normalization. *)
  let window =
    Array.init segment (fun i ->
        0.5
        *. (1.0
           -. cos (2.0 *. Float.pi *. float_of_int i /. float_of_int segment)))
  in
  let window_power =
    Lrd_numerics.Array_ops.sum (Array.map (fun w -> w *. w) window)
    /. float_of_int segment
  in
  let mean = Lrd_numerics.Array_ops.mean data in
  let half = segment / 2 in
  let accum = Array.make half 0.0 in
  let segments = ref 0 in
  let start = ref 0 in
  while !start + segment <= n do
    let re =
      Array.init segment (fun i -> (data.(!start + i) -. mean) *. window.(i))
    in
    let im = Array.make segment 0.0 in
    Lrd_numerics.Fft.forward ~re ~im;
    for j = 0 to half - 1 do
      let k = j + 1 in
      accum.(j) <-
        accum.(j) +. ((re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
    done;
    incr segments;
    start := !start + hop
  done;
  let norm =
    2.0 *. Float.pi *. float_of_int segment *. window_power
    *. float_of_int !segments
  in
  {
    frequencies =
      Array.init half (fun j ->
          2.0 *. Float.pi *. float_of_int (j + 1) /. float_of_int segment);
    power = Array.map (fun p -> p /. norm) accum;
    segments = !segments;
  }

(* Paxson's approximation: the fGn spectrum is
   c_H (|w|^(-2H-1) aliased over 2 pi k shifts); three explicit terms
   plus an integral tail correction. *)
let fgn_spectrum ~hurst w =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Spectral.fgn_spectrum: hurst must lie in (0, 1)";
  if not (w > 0.0 && w <= Float.pi) then
    invalid_arg "Spectral.fgn_spectrum: frequency must lie in (0, pi]";
  let h2 = (2.0 *. hurst) +. 1.0 in
  let c =
    (* Normalization for unit variance:
       c_H = sin(pi H) Gamma(2H + 1) / (2 pi) ... folded below; the
       estimator comparisons only need proportionality, but the exact
       constant makes the tests sharper. *)
    sin (Float.pi *. hurst)
    *. exp (Lrd_numerics.Special.log_gamma ((2.0 *. hurst) +. 1.0))
    /. (2.0 *. Float.pi)
  in
  let b k =
    let t = (2.0 *. Float.pi *. float_of_int k) +. w in
    Float.abs t ** -.h2
  and b' k =
    let t = (2.0 *. Float.pi *. float_of_int k) -. w in
    Float.abs t ** -.h2
  in
  let direct = (b 0) +. (b 1) +. (b 2) +. (b' 1) +. (b' 2) in
  (* Tail: sum_{k>=3} ~ integral correction (Paxson). *)
  let tail =
    let a3 = (2.0 *. Float.pi *. 3.0) +. w
    and a3' = (2.0 *. Float.pi *. 3.0) -. w in
    ((a3 ** (1.0 -. h2)) +. (a3' ** (1.0 -. h2)))
    /. (8.0 *. hurst *. Float.pi)
  in
  let shape = 2.0 *. (1.0 -. cos w) in
  c *. shape *. (direct +. tail)

let farima_spectrum ~d w =
  if not (d >= 0.0 && d < 0.5) then
    invalid_arg "Spectral.farima_spectrum: d must lie in [0, 0.5)";
  if not (w > 0.0 && w <= Float.pi) then
    invalid_arg "Spectral.farima_spectrum: frequency must lie in (0, pi]";
  ((2.0 *. sin (w /. 2.0)) ** (-2.0 *. d)) /. (2.0 *. Float.pi)
