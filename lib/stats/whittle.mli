(** Local Whittle (Gaussian semiparametric) estimation of the Hurst
    parameter — the estimator family the paper actually cites for its
    H = 0.83 / 0.9 values ("Using a Whittle or wavelet based
    estimator").

    Robinson's local Whittle estimator minimizes, over the memory
    parameter [d] (with [H = d + 1/2]),

    [R(d) = log( (1/m) sum_j w_j^(2d) I(w_j) ) - (2d/m) sum_j log w_j]

    on the [m] lowest Fourier frequencies [w_j], where [I] is the
    periodogram.  It is consistent for stationary LRD series without
    assuming a full parametric spectrum, and more efficient than the GPH
    log-periodogram regression. *)

type fit = {
  hurst : float;  (** Point estimate, [d + 1/2]. *)
  memory : float;  (** The memory parameter [d]. *)
  frequencies : int;  (** Number of Fourier frequencies used. *)
  objective : float;  (** Value of the profile objective at the optimum. *)
}

val local_whittle : ?frequencies:int -> float array -> fit
(** Estimate on the [frequencies] lowest Fourier frequencies (default
    [n^0.65], a standard bandwidth choice).  The objective is minimized
    over [d] in [-0.49, 0.99] by golden-section search (it is unimodal
    in practice; the bracket covers anti-persistent through strongly
    persistent series).  @raise Invalid_argument for series shorter
    than 64 points. *)

module Workspace : sig
  type t
  (** A planned estimation engine for one transform size [next_pow2 n]:
      FFT plan, complex scratch, periodogram buffer, and the
      data-independent frequency grid — log Fourier frequencies with
      their compensated prefix means for every admissible bandwidth —
      precomputed at build time, so a call pays only for the transform,
      the periodogram fill and the profile search, allocating nothing
      beyond the returned record.  Fits are bit-identical to
      {!val:local_whittle}.  Holds mutable scratch — do not share across
      domains; see {!domain_workspace}. *)

  val make : n:int -> t
  (** Workspace for series whose length rounds to the same [next_pow2]
      as [n].  @raise Invalid_argument if [n < 64]. *)

  val size : t -> int
  (** The transform size. *)

  val local_whittle : t -> ?frequencies:int -> float array -> fit
  (** As {!val:local_whittle}, reusing the plan and buffers.
      @raise Invalid_argument if the series length does not round to
      the workspace size, or is shorter than 64 points. *)
end

val domain_workspace : n:int -> Workspace.t
(** The calling domain's cached workspace for series of length [n],
    keyed by transform size.  Composes with {!Lrd_parallel.Pool}
    without locks.  @raise Invalid_argument if [n < 64]. *)
