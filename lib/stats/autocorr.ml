open Lrd_numerics

let check a ~max_lag =
  let n = Array.length a in
  if max_lag < 0 then invalid_arg "Autocorr: max_lag must be nonnegative";
  if max_lag >= n then invalid_arg "Autocorr: max_lag must be below length"

let autocovariance_direct a ~max_lag =
  check a ~max_lag;
  let n = Array.length a in
  let m = Array_ops.mean a in
  Array.init (max_lag + 1) (fun k ->
      let acc = Summation.create () in
      for i = 0 to n - 1 - k do
        Summation.add acc ((a.(i) -. m) *. (a.(i + k) -. m))
      done;
      Summation.total acc /. float_of_int n)

(* Wiener-Khinchin: |FFT(x - m)|^2, inverse-transformed.  Zero padding
   to >= 2n turns the circular correlation into the linear one.  The
   caller supplies the transforms and scratch of length [size], so the
   planned workspace and the one-shot path below run the identical float
   operations (bit-identical results). *)
let acv_fft ~forward ~inverse ~re ~im ~size a ~max_lag ~dst =
  let n = Array.length a in
  let m = Array_ops.mean a in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. m
  done;
  Array.fill re n (size - n) 0.0;
  Array.fill im 0 size 0.0;
  forward ~re ~im;
  for i = 0 to size - 1 do
    re.(i) <- (re.(i) *. re.(i)) +. (im.(i) *. im.(i));
    im.(i) <- 0.0
  done;
  inverse ~re ~im;
  for k = 0 to max_lag do
    dst.(k) <- re.(k) /. float_of_int n
  done

let normalize acv =
  if acv.(0) <= 0.0 then
    invalid_arg "Autocorr.autocorrelation: constant series";
  Array.map (fun v -> v /. acv.(0)) acv

module Workspace = struct
  type t = {
    size : int;  (* transform size: next_pow2 (2 n) *)
    plan : Fft.plan;
    re : float array;
    im : float array;
  }

  let make ~n =
    if n <= 0 then invalid_arg "Autocorr.Workspace.make: n must be positive";
    let size = Fft.next_power_of_two (2 * n) in
    {
      size;
      plan = Fft.make_plan size;
      re = Array.make size 0.0;
      im = Array.make size 0.0;
    }

  let size t = t.size

  let check_fit t a =
    let n = Array.length a in
    if n = 0 || Fft.next_power_of_two (2 * n) <> t.size then
      invalid_arg "Autocorr.Workspace: series does not match the workspace size"

  let autocovariance_into t a ~max_lag ~dst =
    check a ~max_lag;
    check_fit t a;
    if Array.length dst < max_lag + 1 then
      invalid_arg "Autocorr.Workspace: dst too short";
    acv_fft
      ~forward:(Fft.forward_ip t.plan)
      ~inverse:(Fft.inverse_ip t.plan)
      ~re:t.re ~im:t.im ~size:t.size a ~max_lag ~dst

  let autocovariance t a ~max_lag =
    check a ~max_lag;
    let dst = Array.make (max_lag + 1) 0.0 in
    autocovariance_into t a ~max_lag ~dst;
    dst

  let autocorrelation t a ~max_lag = normalize (autocovariance t a ~max_lag)
end

(* The calling domain's cached workspace, keyed by the transform size so
   every series length mapping to the same power of two shares one. *)
let domain_workspaces =
  Lrd_parallel.Arena.create (fun size -> Workspace.make ~n:(size / 2))

let domain_workspace ~n =
  if n <= 0 then invalid_arg "Autocorr.domain_workspace: n must be positive";
  Lrd_parallel.Arena.get domain_workspaces (Fft.next_power_of_two (2 * n))

let autocovariance a ~max_lag =
  check a ~max_lag;
  let n = Array.length a in
  let size = Fft.next_power_of_two (2 * n) in
  (* The FFT always transforms [size] points no matter how few lags are
     wanted, so the crossover weighs the fixed transform cost against
     the O(n * max_lag) direct loop; both paths are exact. *)
  if
    Convolution.prefer_fft_fixed ~transform_size:size
      ~direct_ops:(n * (max_lag + 1))
  then begin
    let re = Array.make size 0.0 and im = Array.make size 0.0 in
    let dst = Array.make (max_lag + 1) 0.0 in
    acv_fft ~forward:Fft.forward ~inverse:Fft.inverse ~re ~im ~size a ~max_lag
      ~dst;
    dst
  end
  else autocovariance_direct a ~max_lag

let autocorrelation a ~max_lag = normalize (autocovariance a ~max_lag)
