(** Empirical autocovariance and autocorrelation.

    Used to verify that (a) the model's rate process has the covariance of
    eq. 8, (b) external shuffling kills correlation beyond the block
    length (Fig. 6), and (c) synthetic traces carry the intended LRD.

    The one-shot entry points pick between the direct O(n * max_lag)
    loop and the FFT path by the centralized crossover
    ({!Lrd_numerics.Convolution.prefer_fft_fixed}); both are exact, so
    the choice is invisible beyond speed.  Repeated estimation over
    series of one length should go through a {!Workspace}, which plans
    the FFT once and reuses its scratch. *)

val autocovariance : float array -> max_lag:int -> float array
(** Biased estimator [g(k) = (1/n) sum (x_i - m)(x_{i+k} - m)] for
    [k = 0 .. max_lag].  The biased (1/n) normalization keeps the
    estimated covariance sequence positive semi-definite.  Computed via
    the FFT (Wiener-Khinchin, O(n log n)) when [max_lag] is large enough
    to pay for the fixed-size transform, and by {!autocovariance_direct}
    otherwise — in particular tiny lag counts ([max_lag <= 2] at any
    length) always take the direct path.
    @raise Invalid_argument if [max_lag < 0] or [max_lag >= length]. *)

val autocovariance_direct : float array -> max_lag:int -> float array
(** O(n * max_lag) reference implementation (test oracle, and the fast
    path for small lag counts). *)

val autocorrelation : float array -> max_lag:int -> float array
(** Autocovariance normalized by lag 0; [r.(0) = 1].
    @raise Invalid_argument additionally when the series is constant. *)

module Workspace : sig
  type t
  (** A planned Wiener-Khinchin engine for one transform size
      [next_pow2 (2 n)]: FFT plan plus complex scratch, reused across
      calls so the steady state allocates nothing beyond the result.
      Results are bit-identical to the one-shot FFT path.  Holds mutable
      scratch — do not share across domains; see {!domain_workspace}. *)

  val make : n:int -> t
  (** Workspace for series whose length rounds to the same
      [next_pow2 (2 n)] as [n].  @raise Invalid_argument if [n <= 0]. *)

  val size : t -> int
  (** The transform size [next_pow2 (2 n)]. *)

  val autocovariance_into :
    t -> float array -> max_lag:int -> dst:float array -> unit
  (** Writes lags [0 .. max_lag] into the prefix of [dst] with zero
      array allocation.  @raise Invalid_argument if the series length
      does not round to the workspace size, on bad [max_lag], or if
      [dst] is too short. *)

  val autocovariance : t -> float array -> max_lag:int -> float array
  (** {!autocovariance_into} into a fresh array. *)

  val autocorrelation : t -> float array -> max_lag:int -> float array
  (** Normalized by lag 0, like the one-shot {!val:autocorrelation}. *)
end

val domain_workspace : n:int -> Workspace.t
(** The calling domain's cached workspace for series of length [n],
    keyed by transform size (lengths rounding to the same power of two
    share one).  Composes with {!Lrd_parallel.Pool} without locks.
    @raise Invalid_argument if [n <= 0]. *)
