type fit = {
  hurst : float;
  memory : float;
  frequencies : int;
  objective : float;
}

(* Golden-section search for the minimum of a unimodal function. *)
let golden_minimize ~f ~lo ~hi ~eps =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (hi -. (phi *. (hi -. lo))) in
  let d = ref (lo +. (phi *. (hi -. lo))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > eps do
    if !fc < !fd then begin
      (* Minimum in [a, d]: d becomes the right edge, c the new d. *)
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  (!a +. !b) /. 2.0

let bandwidth ~size ~n frequencies =
  let m_default = int_of_float (float_of_int n ** 0.65) in
  let requested = Option.value frequencies ~default:m_default in
  max 8 (min requested ((size / 2) - 1))

(* Log Fourier frequencies log(2 pi k / size) for k = 1 .. m.  Pure plan
   material: it depends only on the transform size, so the workspace
   fills it once at build time and the one-shot path per call — the same
   float expressions either way. *)
let fill_log_omega log_omega ~size ~m =
  for j = 0 to m - 1 do
    log_omega.(j) <-
      log (2.0 *. Float.pi *. float_of_int (j + 1) /. float_of_int size)
  done

(* The caller supplies the transform, the complex scratch of length
   [size], and the frequency-domain buffers — [log_omega] prefilled for
   at least [m] entries with its compensated prefix mean — so the
   planned workspace and the one-shot path run the identical float
   operations, including the summation order, and return bit-identical
   fits. *)
let estimate ~forward ~re ~im ~log_omega ~spectrum ~size ~m ~mean_log_omega a =
  let n = Array.length a in
  let mean = Lrd_numerics.Array_ops.mean a in
  for i = 0 to n - 1 do
    re.(i) <- a.(i) -. mean
  done;
  Array.fill re n (size - n) 0.0;
  Array.fill im 0 size 0.0;
  forward ~re ~im;
  for j = 0 to m - 1 do
    let k = j + 1 in
    spectrum.(j) <-
      ((re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
      /. (2.0 *. Float.pi *. float_of_int n)
  done;
  (* Robinson's profile objective R(d). *)
  let objective d =
    let acc = Lrd_numerics.Summation.create () in
    for j = 0 to m - 1 do
      Lrd_numerics.Summation.add acc
        (exp (2.0 *. d *. log_omega.(j)) *. Float.max spectrum.(j) 1e-300)
    done;
    log (Lrd_numerics.Summation.total acc /. float_of_int m)
    -. (2.0 *. d *. mean_log_omega)
  in
  let memory = golden_minimize ~f:objective ~lo:(-0.49) ~hi:0.99 ~eps:1e-8 in
  {
    hurst = memory +. 0.5;
    memory;
    frequencies = m;
    objective = objective memory;
  }

let local_whittle ?frequencies a =
  let n = Array.length a in
  if n < 64 then invalid_arg "Whittle.local_whittle: series too short";
  let size = Lrd_numerics.Fft.next_power_of_two n in
  let m = bandwidth ~size ~n frequencies in
  let log_omega = Array.make m 0.0 in
  fill_log_omega log_omega ~size ~m;
  let mean_log_omega =
    Lrd_numerics.Summation.kahan_slice log_omega ~pos:0 ~len:m
    /. float_of_int m
  in
  estimate ~forward:Lrd_numerics.Fft.forward ~re:(Array.make size 0.0)
    ~im:(Array.make size 0.0) ~log_omega ~spectrum:(Array.make m 0.0) ~size ~m
    ~mean_log_omega a

module Workspace = struct
  type t = {
    size : int;
    plan : Lrd_numerics.Fft.plan;
    re : float array;
    im : float array;
    log_omega : float array;  (* capacity size/2 - 1, prefix m used *)
    mean_log_omega : float array;  (* prefix means: kahan(0..j) / (j+1) *)
    spectrum : float array;
  }

  let make ~n =
    if n < 64 then invalid_arg "Whittle.Workspace.make: n must be at least 64";
    let size = Lrd_numerics.Fft.next_power_of_two n in
    let cap = (size / 2) - 1 in
    let log_omega = Array.make cap 0.0 in
    fill_log_omega log_omega ~size ~m:cap;
    (* Running totals of ONE compensated accumulator: the total after
       j+1 adds is exactly [kahan_slice log_omega ~pos:0 ~len:(j+1)], so
       every bandwidth's prefix mean matches the one-shot value bit for
       bit. *)
    let mean_log_omega = Array.make cap 0.0 in
    let acc = Lrd_numerics.Summation.create () in
    for j = 0 to cap - 1 do
      Lrd_numerics.Summation.add acc log_omega.(j);
      mean_log_omega.(j) <-
        Lrd_numerics.Summation.total acc /. float_of_int (j + 1)
    done;
    {
      size;
      plan = Lrd_numerics.Fft.make_plan size;
      re = Array.make size 0.0;
      im = Array.make size 0.0;
      log_omega;
      mean_log_omega;
      spectrum = Array.make cap 0.0;
    }

  let size t = t.size

  let local_whittle t ?frequencies a =
    let n = Array.length a in
    if n < 64 then invalid_arg "Whittle.local_whittle: series too short";
    if Lrd_numerics.Fft.next_power_of_two n <> t.size then
      invalid_arg "Whittle.Workspace: series does not match the workspace size";
    let m = bandwidth ~size:t.size ~n frequencies in
    estimate
      ~forward:(Lrd_numerics.Fft.forward_ip t.plan)
      ~re:t.re ~im:t.im ~log_omega:t.log_omega ~spectrum:t.spectrum
      ~size:t.size ~m ~mean_log_omega:t.mean_log_omega.(m - 1) a
end

(* The calling domain's cached workspace, keyed by transform size. *)
let domain_workspaces =
  Lrd_parallel.Arena.create (fun size -> Workspace.make ~n:size)

let domain_workspace ~n =
  if n < 64 then invalid_arg "Whittle.domain_workspace: n must be at least 64";
  Lrd_parallel.Arena.get domain_workspaces
    (Lrd_numerics.Fft.next_power_of_two n)
