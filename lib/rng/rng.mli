(** Deterministic pseudo-random number generation with explicit state.

    All stochastic code in this repository (trace generation, shuffling,
    Monte Carlo cross-checks) draws from this module so that every
    experiment is reproducible from a seed.  The generator is
    xoshiro256**, seeded through SplitMix64 as its authors recommend. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** Fresh generator deterministically derived from [seed]. *)

val split : t -> t
(** A new generator whose stream is independent of (and deterministically
    derived from) the current state of [t].  Advances [t]. *)

val split_indexed : t -> index:int -> t
(** A new generator deterministically derived from the current state of
    [t] and [index], WITHOUT advancing [t].  Distinct indices give
    independent streams (the state words and the index are mixed through
    a SplitMix64 chain).  This is the splitting discipline for parallel
    sweeps: deriving cell [i]'s stream from the sweep's base generator
    and the cell index makes each cell's randomness a pure function of
    [(base state, i)], so results are identical no matter which domain
    runs the cell, in what order — or whether the sweep runs
    sequentially.
    @raise Invalid_argument if [index < 0]. *)

val copy : t -> t
(** Snapshot of the current state. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform on \[0, 1): 53-bit mantissa resolution. *)

val float_pos : t -> float
(** Uniform on (0, 1): never returns 0, safe for [log]. *)

val int : t -> bound:int -> int
(** Uniform on \[0, bound): rejection sampling, unbiased.
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
