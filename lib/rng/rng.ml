type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next step. *)
let uint64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(uint64 t)

(* Derive a child stream from the CURRENT state and a task index without
   advancing the parent: the four state words and the index are absorbed
   into a SplitMix64 chain, whose final output seeds the child.  Because
   the parent is left untouched, the same (state, index) pair always
   yields the same stream no matter how many siblings were derived
   before it or in what order — the property parallel sweeps need for
   scheduling-independent results. *)
let split_indexed t ~index =
  if index < 0 then invalid_arg "Rng.split_indexed: index must be nonnegative";
  let state = ref t.s0 in
  let absorb x = state := Int64.logxor (splitmix64 state) x in
  absorb t.s1;
  absorb t.s2;
  absorb t.s3;
  absorb (Int64.of_int index);
  create ~seed:(splitmix64 state)

let float t =
  (* Top 53 bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec float_pos t =
  let x = float t in
  if x > 0.0 then x else float_pos t

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub (Int64.div Int64.max_int bound64) 1L in
  let rec go () =
    let raw = Int64.shift_right_logical (uint64 t) 1 in
    let q = Int64.div raw bound64 in
    if Int64.compare q limit <= 0 then Int64.to_int (Int64.rem raw bound64)
    else go ()
  in
  go ()

let bool t = Int64.compare (uint64 t) 0L < 0
