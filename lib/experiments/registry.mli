(** The experiment registry: every paper figure plus the ablations, each
    runnable by id.  This is the single source the bench harness and the
    CLI iterate over. *)

type entry = {
  id : string;  (** Stable identifier, e.g. "fig4" or "abl-shuffle". *)
  title : string;
  shardable : bool;
      (** Every grid of this figure goes through
          {!Sweep.scheduled_surface}, so a {!Shard} handle can slice
          and replay it ([lrd experiment --shard/--shards/--merge]). *)
  run : Data.t -> Format.formatter -> unit;
}

val figures : entry list
(** The paper's figures, in order (fig2 .. fig14). *)

val ablations : entry list
(** The design-choice ablations promised in DESIGN.md. *)

val extensions : entry list
(** Experiments beyond the paper: tail asymptotics, estimator
    comparison, inverse provisioning, occupancy bounds, and the
    correlation-horizon estimate comparison. *)

val all : entry list
(** [figures @ ablations @ extensions]. *)

val find : string -> entry option

val run :
  ?only:string list ->
  ?manifest:string ->
  ?results:string ->
  Data.t ->
  Format.formatter ->
  unit
(** Runs the selected entries (all by default) in registry order,
    printing each.  Unknown ids in [only] raise [Invalid_argument].

    [?manifest] writes a run provenance manifest ({!Lrd_obs.Manifest})
    to the given path after the run: the selected figure ids, the
    context's full parameter set ({!Data.manifest_fields}), wall time,
    and — when telemetry is enabled — the final metrics snapshot.

    [?results] additionally tees each figure's pure output to the given
    file, {e excluding} the per-figure ["[... completed in N s CPU]"]
    wall-time line — so two runs with the same parameters produce
    byte-identical results files, which is how the shard-equivalence
    gate compares a merged shard set against the whole run. *)
