(* Fig. 12: loss vs (normalized buffer size, marginal scaling factor)
   for the MTV-like trace at utilization 0.8, cutoff = inf: narrowing
   the marginal from a = 1 to a = 0.5 lowers loss more than growing the
   buffer to 5 s — buffering cannot compete with shaping the marginal. *)

let id = "fig12"

let title =
  "Fig. 12: model loss vs (buffer, marginal scaling) - MTV, utilization 0.8, \
   cutoff = inf"

let surface ctx ~base_marginal ~theta ~hurst ~utilization ~title =
  let quick = Data.quick ctx in
  let buffers = Sweep.buffers ~quick ~max_seconds:5.0 () in
  let scalings = Sweep.scalings ~quick () in
  let params = Data.solver_params ctx in
  (* The model depends only on the scaling column, so the cache shares
     one model + memoizing workload per column across the buffer rows.
     Scaling is mean-preserving, so the buffer in work units is
     constant along each buffer row and the warm-start chains run along
     the scaling axis. *)
  let cache = Lrd_core.Workload.Cache.create () in
  let cells =
    Sweep.scheduled_surface ?pool:(Data.pool ctx)
      ~policy:(Data.gap_policy ctx) ?shard:(Data.shard ctx) ~xs:scalings
      ~ys:buffers
      ~state:(fun a buffer_seconds ->
        let key = Sweep.cell_key a in
        let model =
          Lrd_core.Workload.Cache.model cache ~key (fun () ->
              let marginal =
                Lrd_dist.Marginal.scale ~clamp:true base_marginal ~factor:a
              in
              Lrd_core.Model.of_hurst ~marginal ~hurst ~theta
                ~cutoff:Float.infinity)
        in
        Lrd_core.Solver.State.create_utilization ~params ~cache:(cache, key)
          model ~utilization ~buffer_seconds)
      ()
    |> Array.map (Array.map (fun r -> r.Lrd_core.Solver.loss))
  in
  {
    Table.title;
    xlabel = "scaling";
    ylabel = "buffer_s";
    zlabel = "loss rate";
    xs = scalings;
    ys = buffers;
    cells;
  }

let compute ctx =
  surface ctx ~base_marginal:(Data.mtv_marginal ctx)
    ~theta:(Data.mtv_theta ctx) ~hurst:Data.mtv_hurst
    ~utilization:Data.mtv_utilization ~title

let run ctx fmt = Table.print_surface fmt (compute ctx)
