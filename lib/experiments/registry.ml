type entry = {
  id : string;
  title : string;
  shardable : bool;
  run : Data.t -> Format.formatter -> unit;
}

(* [shardable] marks the figures whose every grid goes through
   [Sweep.scheduled_surface] — the ones a [Shard] handle can slice and
   replay.  The ablations and the remaining figures evaluate arbitrary
   cell shapes ([psurface], series) with no serialized form. *)
let entry ?(shardable = false) id title run = { id; title; shardable; run }

let figures =
  [
    entry Fig02.id Fig02.title Fig02.run;
    entry Fig03.id Fig03.title Fig03.run;
    entry ~shardable:true Fig04.id Fig04.title Fig04.run;
    entry ~shardable:true Fig05.id Fig05.title Fig05.run;
    entry Fig06.id Fig06.title Fig06.run;
    entry Fig07.id Fig07.title Fig07.run;
    entry Fig08.id Fig08.title Fig08.run;
    entry Fig09.id Fig09.title Fig09.run;
    entry ~shardable:true Fig10.id Fig10.title Fig10.run;
    entry ~shardable:true Fig11.id Fig11.title Fig11.run;
    entry ~shardable:true Fig12.id Fig12.title Fig12.run;
    entry ~shardable:true Fig13.id Fig13.title Fig13.run;
    entry Fig14.id Fig14.title Fig14.run;
  ]

let ablations =
  [
    entry Abl_interarrival.id Abl_interarrival.title Abl_interarrival.run;
    entry Abl_shuffle.id Abl_shuffle.title Abl_shuffle.run;
    entry Abl_markov.id Abl_markov.title Abl_markov.run;
    entry Abl_solver.id Abl_solver.title Abl_solver.run;
  ]

let extensions =
  [
    entry Ext_tails.id Ext_tails.title Ext_tails.run;
    entry Ext_estimators.id Ext_estimators.title Ext_estimators.run;
    entry Ext_provision.id Ext_provision.title Ext_provision.run;
    entry Ext_occupancy.id Ext_occupancy.title Ext_occupancy.run;
    entry Ext_horizon.id Ext_horizon.title Ext_horizon.run;
    entry Ext_tandem.id Ext_tandem.title Ext_tandem.run;
    entry Ext_stationarity.id Ext_stationarity.title Ext_stationarity.run;
    entry Ext_packet.id Ext_packet.title Ext_packet.run;
    entry Ext_ams.id Ext_ams.title Ext_ams.run;
    entry Ext_parsimony.id Ext_parsimony.title Ext_parsimony.run;
    entry Ext_delay_horizon.id Ext_delay_horizon.title Ext_delay_horizon.run;
    entry Ext_control.id Ext_control.title Ext_control.run;
    entry Ext_priority.id Ext_priority.title Ext_priority.run;
    entry Ext_confidence.id Ext_confidence.title Ext_confidence.run;
    entry ~shardable:true Fig11_scale.id Fig11_scale.title Fig11_scale.run;
  ]

let all = figures @ ablations @ extensions
let find id = List.find_opt (fun e -> e.id = id) all

module Obs = Lrd_obs.Obs

let m_runs = Obs.Counter.make "experiment/runs"
let m_wall = Obs.Span.make "experiment/wall_seconds"

let run ?only ?manifest ?results ctx fmt =
  let selected =
    match only with
    | None -> all
    | Some ids ->
        List.iter
          (fun id ->
            if find id = None then
              invalid_arg (Printf.sprintf "Registry.run: unknown id %S" id))
          ids;
        List.filter (fun e -> List.mem e.id ids) all
  in
  let run_t0 = Unix.gettimeofday () in
  (* With [results], each figure's pure output is captured and teed to
     the results file; the wall-time line below goes to [fmt] only, so
     the file is byte-comparable across runs (and between a whole run
     and a merged shard set). *)
  let results_buf = Option.map (fun _ -> Buffer.create 4096) results in
  List.iter
    (fun e ->
      Obs.Counter.incr m_runs;
      let t0 = Sys.time () in
      let w0 = Obs.Span.start () in
      if Obs.Trace.enabled () then Obs.Trace.begin_ ("experiment/" ^ e.id);
      Fun.protect
        ~finally:(fun () ->
          if Obs.Trace.enabled () then Obs.Trace.end_ ("experiment/" ^ e.id))
        (fun () ->
          match results_buf with
          | None -> e.run ctx fmt
          | Some rb ->
              let buf = Buffer.create 1024 in
              let bfmt = Format.formatter_of_buffer buf in
              e.run ctx bfmt;
              Format.pp_print_flush bfmt ();
              Buffer.add_buffer rb buf;
              Format.pp_print_string fmt (Buffer.contents buf));
      (* Per-figure wall time lands in a gauge named after the figure
         (each figure runs once per invocation) plus the shared
         histogram for an all-up latency distribution. *)
      Obs.Span.stop m_wall w0;
      if Obs.enabled () then
        Obs.Gauge.set
          (Obs.Gauge.make ("experiment/" ^ e.id ^ "/wall_seconds"))
          (Obs.now () -. w0);
      Format.fprintf fmt "[%s completed in %.2f s CPU]@." e.id
        (Sys.time () -. t0))
    selected;
  (match (results, results_buf) with
  | Some path, Some rb ->
      let oc = open_out path in
      Buffer.output_buffer oc rb;
      close_out oc
  | _ -> ());
  match manifest with
  | None -> ()
  | Some path ->
      let metrics =
        if Lrd_obs.Obs.enabled () then
          (* Re-parse the canonical exporter's output rather than
             rebuilding the tree here, so the embedded snapshot is
             byte-equivalent to what --metrics-out writes. *)
          match Lrd_obs.Json.parse (Lrd_obs.Obs.to_json (Obs.snapshot ())) with
          | Ok v -> Some v
          | Error _ -> None
        else None
      in
      Lrd_obs.Manifest.write path
        (Lrd_obs.Manifest.make
           ~figures:(List.map (fun e -> e.id) selected)
           ~parameters:(Data.manifest_fields ctx)
           ~wall_seconds:(Unix.gettimeofday () -. run_t0)
           ?metrics ~tool:"lrd experiment" ())
