(** Shared experimental ingredients: the two synthetic traces, their
    extracted marginals, epoch statistics and fitted models — plus the
    optional domain pool the figure runners sweep their grids on.

    Everything is generated deterministically from a seed and computed
    lazily, so the figures can share one context without recomputation;
    the lazies are forced under a mutex, making the accessors safe to
    call from pool workers.  [quick] mode shrinks the traces (and
    downstream grids) for tests and smoke runs; the full mode matches
    the paper's trace sizes.  The results of every figure are
    independent of [jobs] — the pool only changes which domain computes
    each grid cell, never the cell's value. *)

type t

val create :
  ?seed:int64 ->
  ?jobs:int ->
  ?gap_policy:Sweep.gap_policy ->
  ?superpose:Lrd_core.Superpose.method_ ->
  ?shard:Shard.t ->
  quick:bool ->
  unit ->
  t
(** Default seed 20260705.  [jobs] sets the total parallelism of the
    sweeps run from this context: omitted or [1] means sequential (no
    pool), [0] means auto-size to the machine
    ([Domain.recommended_domain_count]), and [j >= 2] runs grids on a
    pool of [j - 1] worker domains plus the calling domain.  Call
    {!teardown} when done with a context whose [jobs <> 1].
    [gap_policy] (default {!Sweep.uniform_policy}) is the error-budget
    policy the scheduled figure sweeps run under.  [superpose] (default
    [Auto]) selects the aggregate-marginal construction the
    superposition experiments use ({!Lrd_core.Superpose.method_} — the
    CLI's [--superpose] lever).  [shard] (default none: run every cell)
    is the process-sharding handle the scheduled sweeps thread through
    to {!Sweep.scheduled_surface} — a compute-mode handle runs one
    shard's rows, a replay-mode handle serves merged results
    ({!Shard}).  The shard spec is deliberately {e not} part of
    {!manifest_fields}: shard and whole runs share one parameter
    digest.
    @raise Invalid_argument when [jobs] is negative. *)

val quick : t -> bool
val seed : t -> int64

val jobs : t -> int
(** Effective parallelism: 1 when sequential, otherwise the pool's
    worker count + 1. *)

val pool : t -> Lrd_parallel.Pool.t option
(** The context's domain pool, if any; figure runners pass this to
    {!Sweep.surface} and friends. *)

val gap_policy : t -> Sweep.gap_policy
(** The error-budget policy for this context's scheduled sweeps
    (uniform unless overridden at {!create}). *)

val superpose_method : t -> Lrd_core.Superpose.method_
(** The aggregate-marginal construction for superposition experiments
    ([Auto] unless overridden at {!create}). *)

val shard : t -> Shard.t option
(** The context's sharding handle, if any; the shardable figure runners
    pass this to {!Sweep.scheduled_surface}. *)

val teardown : t -> unit
(** Shuts down the pool's worker domains (idempotent; no-op for
    sequential contexts).  The context remains usable for sequential
    work afterwards. *)

val mtv : t -> Lrd_trace.Trace.t
(** Synthetic MTV-like video trace (full: 107 892 frames at 1/30 s). *)

val bellcore : t -> Lrd_trace.Trace.t
(** Synthetic Bellcore-like Ethernet trace (full: 360 000 slots of 10 ms). *)

val mtv_marginal : t -> Lrd_dist.Marginal.t
(** 50-bin histogram marginal of the video trace (paper Fig. 3, left). *)

val bc_marginal : t -> Lrd_dist.Marginal.t
(** 50-bin histogram marginal of the Ethernet trace (Fig. 3, right). *)

val mtv_mean_epoch : t -> float
(** Measured mean rate-residence time of the video trace (paper: ~80 ms). *)

val bc_mean_epoch : t -> float
(** Same for the Ethernet trace (paper: ~15 ms). *)

val mtv_hurst : float
(** Nominal Hurst parameter of the video trace (paper: 0.83). *)

val bc_hurst : float
(** Nominal Hurst parameter of the Ethernet trace (paper: 0.9). *)

val mtv_utilization : float
(** Utilization the paper uses for MTV experiments (0.8). *)

val bc_utilization : float
(** Utilization for Bellcore experiments (0.4). *)

val mtv_theta : t -> float
(** Pareto scale matched to the measured MTV mean epoch at infinite
    cutoff (paper eq. 25 procedure). *)

val bc_theta : t -> float

val mtv_model : t -> cutoff:float -> Lrd_core.Model.t
(** The paper's fitted model for the video trace at the given cutoff
    lag: 50-bin marginal, alpha from the nominal H, theta from the
    measured epoch. *)

val bc_model : t -> cutoff:float -> Lrd_core.Model.t

val solver_params : t -> Lrd_core.Solver.params
(** Solver parameters used across experiments ([quick] lowers the
    refinement cap and iteration budget). *)

val manifest_fields : t -> (string * Lrd_obs.Json.t) list
(** The context's full parameter set for a run's provenance manifest:
    seed (as a decimal string — int64-exact), quick flag, jobs, the RNG
    split scheme, every solver parameter, and the shared sweep grids
    ({!Sweep.manifest_fields}).  Deterministic for a given context
    configuration. *)
