(** Process-level sharding of the scheduled figure sweeps.

    A shard is a deterministic slice of a figure's cell grid: rows are
    partitioned round-robin over [count] shards ([owns_row]), so every
    warm-start chain — which runs left to right {e within} a row
    ({!Sweep.scheduled_surface}) — lives entirely inside one shard and
    each owned cell is bitwise identical to the same cell of the whole
    run.  A worker process ([lrd experiment <fig> --shard k/n]) computes
    its rows, records them through a [Compute]-mode handle, and
    serializes them ([write_cells]) with every float as a ["%h"] hex
    literal so the merge round-trips bits exactly.  Merging
    ([of_cells_json] / {!load}) validates the shard set — one schema,
    one figure, one parameter digest, indexes covering [1..n] exactly —
    and yields a [Replay]-mode handle: re-running the figure against it
    short-circuits every sweep to the stored results, so the merged
    output is byte-identical to the unsharded run's.

    Sharding requires the uniform gap policy: the contrast and budget
    policies couple cells across the whole surface, which a partition
    cannot reproduce ({!Sweep.scheduled_surface} enforces this). *)

type spec = { index : int; count : int }
(** Shard [index] of [count], 1-based: [1 <= index <= count]. *)

val parse_spec : string -> (spec, string) result
(** Parse a ["k/n"] argument. *)

val spec_string : spec -> string
(** The canonical ["k/n"] rendering. *)

type t
(** A sharding handle threaded through {!Data.t} into
    {!Sweep.scheduled_surface}: either computing one shard's rows or
    replaying a merged store. *)

val compute : spec -> t
(** A fresh [Compute]-mode handle: the sweep runs only the rows this
    spec owns and records their results into the handle. *)

val spec : t -> spec option
(** The handle's spec in [Compute] mode, [None] in [Replay] mode. *)

val is_replay : t -> bool

(** {2 Sweep-facing hooks} *)

val owns_row : t -> iy:int -> bool
(** Row ownership: row [iy] belongs to shard [(iy mod count) + 1].
    Always true in [Replay] mode. *)

val absent_result : Lrd_core.Solver.result
(** The placeholder for cells of unowned rows in a shard's partial
    output: NaN bounds, zero counters, not converged.  {!Table} prints
    it as [nan]. *)

val record_grid :
  t -> nx:int -> ny:int -> Lrd_core.Solver.result array array -> unit
(** [Compute] mode: append a finished surface, keeping only the owned
    rows.  No-op in [Replay] mode. *)

val replay_grid : t -> nx:int -> ny:int -> Lrd_core.Solver.result array array
(** [Replay] mode: pop the next stored surface, checking the shape.
    @raise Failure on shape mismatch or when the store is exhausted
    (only possible when the replayed figure diverges from the recorded
    one — the merge validation rules out mismatched configurations). *)

(** {2 Provenance digest} *)

val digest : figure:string -> (string * Lrd_obs.Json.t) list -> string
(** MD5 hex digest of the figure id plus the context's manifest
    parameter fields ({!Data.manifest_fields}) {e minus} ["jobs"]:
    parallelism never changes any figure value, so shards may run with
    different job counts, while any seed / quick / policy / solver
    change produces a different digest and the merge refuses to mix. *)

(** {2 Worker output files} *)

val cells_schema : string
(** ["lrd-shard-cells/1"] — the partial-results payload written by a
    worker. *)

val cells_path : dir:string -> spec -> string
val manifest_path : dir:string -> spec -> string
val metrics_path : dir:string -> spec -> string
val results_path : dir:string -> spec -> string
val log_path : dir:string -> spec -> string
(** The per-shard file layout inside the shard directory:
    [shard-<k>-of-<n>.{cells.json,manifest.json,metrics.json,
    results.txt,log}]. *)

val merged_results_path : dir:string -> string
val merged_metrics_path : dir:string -> string
(** [merged.results.txt] / [merged.metrics.json] — what the merge step
    writes and the equivalence gate compares against the whole run. *)

val cell_count : t -> int
(** Cells recorded so far ([Compute]) or held in the store ([Replay]). *)

val cells_json : t -> figure:string -> digest:string -> Lrd_obs.Json.t
(** The cells-file object for a [Compute] handle: schema tag, figure,
    spec, digest and the recorded grids (floats as ["%h"] hex). *)

val write_cells : t -> dir:string -> figure:string -> digest:string -> unit
(** {!cells_json} pretty-printed to {!cells_path}. *)

val shard_section :
  t -> figure:string -> digest:string -> (string * Lrd_obs.Json.t) list
(** The [("shard", ...)] extra pairs for a worker's provenance manifest
    ({!Lrd_obs.Manifest.make} with [~schema:Manifest.shard_schema]):
    figure, index, count, params digest, owned cell count and the grid
    shapes. *)

(** {2 Merge} *)

val of_cells_json :
  figure:string ->
  digest:string ->
  Lrd_obs.Json.t list ->
  (t * (spec * int) list, string) result
(** Merge parsed cells objects into a [Replay] handle plus the per-shard
    owned-cell counts.  Rejects ([Error]): an unknown schema tag, a
    figure or digest mismatch, inconsistent [count]s, duplicate or
    missing indexes, grid shape disagreements, and malformed cells. *)

val load : dir:string -> figure:string -> digest:string ->
  (t * (spec * int) list, string) result
(** Scan [dir] for [shard-*-of-*.cells.json] files and merge them via
    {!of_cells_json}.  [Error] also covers an empty directory and
    unreadable/unparseable files — the CLI maps it to exit 2, the same
    contract as [lrd metrics diff] on malformed input. *)

val checkpoint : dir:string -> figure:string -> digest:string -> spec ->
  int option
(** Resume check: [Some owned_cells] when the shard's cells file and
    manifest both exist, parse, carry the right schema tags and match
    the figure / digest / spec — i.e. the checkpoint is valid and the
    worker need not be re-run.  [None] otherwise. *)

val write_merged_metrics :
  dir:string -> (spec * int) list -> (unit, string) result
(** Sum the counter series across the shards' metrics snapshots and
    write them (sorted by name) to {!merged_metrics_path}.  Only
    counters merge — they sum exactly across a row partition (the
    solver series are per-cell) — so the equivalence gate diffs the
    result against the whole run with [--exact --filter solver/]. *)

val ensure_dir : string -> unit
(** [mkdir -p]: create the shard directory (and parents) if missing. *)

(** {2 Driver} *)

val drive :
  ?heartbeat:float ->
  dir:string ->
  figure:string ->
  digest:string ->
  count:int ->
  resume:bool ->
  retries:int ->
  worker_argv:(spec -> string list) ->
  unit ->
  (spec list, string) result
(** Self-exec [count] worker processes ([Sys.executable_name], argv from
    [worker_argv], stdout+stderr to the shard's {!log_path}), poll for
    all (non-blocking 50 ms reap loop), and restart a failed worker up
    to [retries] times.  Progress lines on stderr are prefixed
    [[+<elapsed>s shard <k>/<n>]] (spawn, completion, retry, give-up);
    [?heartbeat] additionally emits one such line per running shard
    every that many seconds.  With [resume], shards whose {!checkpoint}
    is valid are not spawned; [Ok skipped] returns their specs.
    [Error] when a shard still fails after its retries — the CLI maps
    it to exit 1. *)

val record_counters : per_shard:(spec * int) list -> skipped:spec list -> unit
(** Post-merge accounting into the [shard/*] counters: [cells_total],
    [cells_run], [cells_skipped], from the merged per-shard cell counts
    and the set of checkpoint-skipped shards. *)
