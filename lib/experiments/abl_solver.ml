(* Ablation: solver engineering choices.  (a) warm restart across grid
   refinements (paper footnote 3) vs cold restart; (b) FFT vs direct
   convolution.  Both variants must agree on the loss value; the
   interesting output is the iteration count / wall time — which is why
   this ablation deliberately ignores the context's domain pool: the
   per-variant timings would be polluted by contending domains. *)

let id = "abl-solver"
let title = "Ablation: solver warm restart and convolution strategy"

let run ctx fmt =
  let model = Data.mtv_model ctx ~cutoff:10.0 in
  (* A hard instance: high utilization and a deep buffer make the gap
     stall at coarse grids, so the refinement machinery actually runs
     (and the direct-convolution variant pays the quadratic price).
     The bins cap keeps the direct variant from taking minutes. *)
  let utilization = 0.9 in
  let buffer_seconds = if Data.quick ctx then 1.0 else 2.0 in
  let base = { (Data.solver_params ctx) with Lrd_core.Solver.max_bins = 2048 } in
  let variants =
    [
      ("warm+auto", base);
      ("cold+auto", { base with Lrd_core.Solver.warm_restart = false });
      ("warm+fft", { base with Lrd_core.Solver.convolution = `Fft });
      ("warm+direct", { base with Lrd_core.Solver.convolution = `Direct });
    ]
  in
  Table.heading fmt title;
  Format.fprintf fmt "%12s %12s %10s %8s %8s %10s@." "variant" "loss"
    "iterations" "bins" "refines" "seconds";
  List.iter
    (fun (name, params) ->
      let t0 = Sys.time () in
      let r =
        Lrd_core.Solver.solve_utilization ~params model ~utilization
          ~buffer_seconds
      in
      let dt = Sys.time () -. t0 in
      Format.fprintf fmt "%12s %12s %10d %8d %8d %10.3f@." name
        (Table.cell_value r.Lrd_core.Solver.loss)
        r.Lrd_core.Solver.iterations r.Lrd_core.Solver.bins
        r.Lrd_core.Solver.refinements dt)
    variants;
  Format.fprintf fmt
    "(all variants must agree on the loss; warm restart and FFT pay in \
     iterations re-used and per-iteration cost)@."
