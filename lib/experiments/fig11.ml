(* Fig. 11: loss vs (Hurst parameter, number of superposed streams) for
   the MTV-like trace at utilization 0.8: the marginal of n multiplexed
   streams is the n-fold convolution renormalized to the original mean
   (buffer and service rate per stream held constant).  Superposing even
   ~5 streams cuts loss by over an order of magnitude; H again matters
   far less. *)

let id = "fig11"

let title =
  "Fig. 11: model loss vs (Hurst, superposed streams) - MTV, utilization \
   0.8, B = 1 s, cutoff = inf"

let compute ctx =
  let streams = Sweep.stream_counts ~quick:(Data.quick ctx) () in
  let base = Data.mtv_marginal ctx in
  (* Superposed marginals are shared across the Hurst rows; they are
     precomputed here so the table is read-only by the time the sweep
     (possibly on the pool) consults it. *)
  let superposed = Hashtbl.create 8 in
  Array.iter
    (fun n -> Hashtbl.replace superposed n (Lrd_dist.Marginal.superpose base ~n))
    streams;
  let transform _ n = Hashtbl.find superposed (int_of_float n) in
  Fig10.surface ctx ~base_marginal:base ~theta:(Data.mtv_theta ctx)
    ~utilization:Data.mtv_utilization ~title ~transform
    ~xs:(Array.map float_of_int streams)
    ~xlabel:"streams"

let run ctx fmt = Table.print_surface fmt (compute ctx)
