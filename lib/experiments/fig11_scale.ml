(* fig11 at production scale: certified loss vs the number of
   multiplexed sources, N = 10 .. 10^6, for a heterogeneous population
   of heavy-tailed on/off users.  Fig. 11 stops at 10 superposed MTV
   streams because brute-force convolution is O(N); the transform-domain
   engine ({!Lrd_core.Superpose}) builds each aggregate marginal in
   O(log N) spectrum multiplies (or the Edgeworth closed form once the
   CLT has taken over), so the multiplexing-gain story extends across
   five decades of N.  The population mixes three on/off classes —
   many slow sources, some medium, a few fast bursty ones — in a 6:3:1
   ratio; all grid Ns are multiples of 10, so the per-source mean (and
   with it the service rate at fixed utilization) is identical in every
   column and warm-start chains run along each Hurst row.

   The punchline matches the paper's: multiplexing crushes loss far
   faster than any change of H, and past N ~ 10^5 the aggregate is so
   concentrated that the certified loss is exactly zero — the link is
   effectively deterministic at fixed utilization. *)

let id = "fig11_scale"

let title =
  "fig11 at scale: certified loss vs multiplexed on/off sources (N = 10 .. \
   1e6) - heterogeneous mix, utilization 0.8, B = 1 s, cutoff = inf"

let nominal_hurst = 0.8
let mean_epoch_seconds = 0.05
let utilization = 0.8
let buffer_seconds = 1.0

(* (peak rate, on-probability, population fraction): light browsers,
   medium streams, heavy bursters.  Fractions sum to 1. *)
let class_specs = [ (1.0, 0.10, 0.6); (4.0, 0.05, 0.3); (16.0, 0.02, 0.1) ]

let onoff ~peak ~p_on =
  Lrd_dist.Marginal.of_points [ (0.0, 1.0 -. p_on); (peak, p_on) ]

let population ~n =
  if n < 1 then invalid_arg "Fig11_scale.population: n must be >= 1";
  (* Largest-remainder apportionment: deterministic, exact total. *)
  let specs = Array.of_list class_specs in
  let k = Array.length specs in
  let floors =
    Array.map (fun (_, _, f) -> int_of_float (f *. float_of_int n)) specs
  in
  let rem =
    Array.mapi
      (fun i (_, _, f) -> ((f *. float_of_int n) -. float_of_int floors.(i), i))
      specs
  in
  Array.sort
    (fun (ra, ia) (rb, ib) ->
      match compare rb ra with 0 -> compare ia ib | c -> c)
    rem;
  let leftover = n - Array.fold_left ( + ) 0 floors in
  for j = 0 to leftover - 1 do
    let _, i = rem.(j mod k) in
    floors.(i) <- floors.(i) + 1
  done;
  List.map2
       (fun (peak, p_on, _) count -> (onoff ~peak ~p_on, count))
       (Array.to_list specs) (Array.to_list floors)

let source_counts ~quick =
  if quick then [| 1e1; 1e3; 1e5 |]
  else [| 1e1; 1e2; 1e3; 1e4; 1e5; 1e6 |]

let theta =
  Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch:mean_epoch_seconds
    ~alpha:(Lrd_core.Model.alpha_of_hurst nominal_hurst)
    ()

let marginal_for ?method_ n =
  Lrd_core.Superpose.aggregate ?method_ (population ~n)

let compute ctx =
  let quick = Data.quick ctx in
  let hursts = Sweep.hursts ~quick () in
  let ns = source_counts ~quick in
  let method_ = Data.superpose_method ctx in
  (* Aggregate marginals are shared across the Hurst rows; precomputed
     so the table is read-only by the time the sweep (possibly on the
     pool) consults it. *)
  let marginals = Hashtbl.create 8 in
  Array.iter
    (fun nf ->
      let n = int_of_float nf in
      Hashtbl.replace marginals n (marginal_for ~method_ n))
    ns;
  let params = Data.solver_params ctx in
  let cells =
    Sweep.scheduled_surface ?pool:(Data.pool ctx)
      ~policy:(Data.gap_policy ctx) ?shard:(Data.shard ctx) ~xs:ns ~ys:hursts
      ~state:(fun nf hurst ->
        let marginal = Hashtbl.find marginals (int_of_float nf) in
        let model =
          Lrd_core.Model.of_hurst ~marginal ~hurst ~theta
            ~cutoff:Float.infinity
        in
        Lrd_core.Solver.State.create_utilization ~params model ~utilization
          ~buffer_seconds)
      ()
    |> Array.map (Array.map (fun r -> r.Lrd_core.Solver.loss))
  in
  {
    Table.title;
    xlabel = "sources";
    ylabel = "hurst";
    zlabel = "loss rate";
    xs = ns;
    ys = hursts;
    cells;
  }

(* Exact-vs-Edgeworth cross-check at the largest N the exact path still
   handles at full fidelity: both constructions of the same aggregate,
   compared on mean, std, and the 3-sigma upper tail mass (the region
   that drives loss).  The documented tolerance — 5e-4 absolute on the
   tail, means equal to 1e-12 — is pinned by the tier-1 suite. *)
let agreement_reference = 10_000

let print_agreement fmt =
  let n = agreement_reference in
  let exact = marginal_for ~method_:Lrd_core.Superpose.Exact n in
  let edge = marginal_for ~method_:Lrd_core.Superpose.Edgeworth n in
  let mean = Lrd_dist.Marginal.mean exact in
  let threshold = mean +. (3.0 *. Lrd_dist.Marginal.std exact) in
  let tail m = 1.0 -. Lrd_dist.Marginal.cdf m threshold in
  Format.fprintf fmt
    "@.exact vs edgeworth at N = %d:@.  mean      %.10g | %.10g@.  std       \
     %.6g | %.6g@.  tail(3s)  %.6g | %.6g  (|diff| = %.3g, tolerance 5e-4)@."
    n mean (Lrd_dist.Marginal.mean edge) (Lrd_dist.Marginal.std exact)
    (Lrd_dist.Marginal.std edge) (tail exact) (tail edge)
    (Float.abs (tail exact -. tail edge))

let run ctx fmt =
  Table.print_surface fmt (compute ctx);
  print_agreement fmt
