(** Parameter grids and sweep helpers shared by the figure runners.

    The grid evaluators ([surface], [psurface], [map]) optionally run on
    a {!Lrd_parallel.Pool}; [?pool:None] (the default) evaluates
    sequentially in row-major order.  Cell functions must follow the
    pool's determinism contract — no shared mutable state except
    domain-safe caches, randomness derived from the cell index via
    {!Lrd_rng.Rng.split_indexed} — so that pooled evaluation is
    bit-identical to sequential evaluation. *)

val buffers : quick:bool -> ?max_seconds:float -> unit -> float array
(** Normalized buffer sizes in seconds, log-spaced from 10 ms up to
    [max_seconds] (default 2 s) — the "up to a few seconds" range the
    paper motivates with contemporary switch buffers.  7 points (4 in
    quick mode).
    @raise Invalid_argument unless [max_seconds > 0.01] (the logspace
    lower bound; anything at or below it would silently produce a
    degenerate, non-increasing grid). *)

val cutoffs : quick:bool -> unit -> float array
(** Cutoff lags in seconds, log-spaced from 100 ms to 100 s plus
    infinity.  8 points (5 in quick mode). *)

val hursts : quick:bool -> unit -> float array
(** Hurst parameters spanning the paper's (0.55, 0.95) range. *)

val scalings : quick:bool -> unit -> float array
(** Marginal scaling factors spanning the paper's (0.5, 1.5) range. *)

val stream_counts : quick:bool -> unit -> int array
(** Numbers of superposed streams, 1 .. 10. *)

val map :
  ?pool:Lrd_parallel.Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], optionally spread across the pool; results are in index
    order either way. *)

val surface :
  ?pool:Lrd_parallel.Pool.t ->
  xs:float array ->
  ys:float array ->
  f:(x:float -> y:float -> float) ->
  unit ->
  float array array
(** [cells.(row).(col) = f ~x:xs.(col) ~y:ys.(row)]. *)

val psurface :
  ?pool:Lrd_parallel.Pool.t ->
  xs:'a array ->
  ys:'b array ->
  f:('a -> 'b -> 'c) ->
  unit ->
  'c array array
(** Polymorphic [surface] for grids whose axes are not floats (shuffled
    traces, interarrival laws, ...): [cells.(row).(col) = f xs.(col)
    ys.(row)]. *)

val cell_key : float -> string
(** Hex-exact cache key for a float grid coordinate
    ([Printf.sprintf "%h"]): injective over distinct coordinates,
    including infinity, which is what {!Lrd_core.Workload.Cache}
    requires. *)

type contrast =
  | Decades of float
      (** A fixed contrast window: stop refining a cell once its
          certified upper bound sits this many decades below the
          largest lower bound anywhere on the surface. *)
  | From_axis
      (** Derive the window from the figure's own loss axis: the
          certified lower bounds of finished cells span the plotted
          range, and the cut falls one decade below the smallest
          plotted value — anything smaller is off the bottom of the
          axis.  Floored at the fixed default of 2 decades; no cut is
          applied until at least one cell has finished with a positive
          bound.  The derivation reads only settled solver states, so
          scheduling stays deterministic. *)

type gap_policy = {
  contrast : contrast option;
      (** Stop refining cells whose exact value can no longer change
          the plotted contrast.  [None] (the default) converges every
          cell to the solver's own gap target. *)
  iteration_budget : int option;
      (** Hard cap on the total chain iterations the whole surface may
          spend; when it runs out every remaining cell is stopped with
          its latest certified (possibly loose) bounds.  [None]: no
          cap. *)
}
(** Per-figure error-budget policy for {!scheduled_surface}.  Both
    levers compose; both leave every reported bound certified
    (lower <= true loss <= upper) — they only decide how {e narrow} the
    intervals get. *)

val uniform_policy : gap_policy
(** No contrast rule, no budget: every cell converges to the solver's
    uniform 20% gap target — the classic sweep semantics. *)

val scheduled_surface :
  ?pool:Lrd_parallel.Pool.t ->
  ?policy:gap_policy ->
  ?slice:int ->
  ?warm_start:bool ->
  ?shard:Shard.t ->
  xs:'a array ->
  ys:'b array ->
  state:('a -> 'b -> Lrd_core.Solver.State.t) ->
  unit ->
  Lrd_core.Solver.result array array
(** Gap-driven grid evaluation over resumable solver states:
    [cells.(row).(col)] is the result of [state xs.(col) ys.(row)],
    like {!psurface}, but iterations flow to the cells with the widest
    relative bound gaps.  Each scheduling round advances every active
    cell within 2x of the widest gap by [slice] chain iterations
    (default 512), on the pool when one is given.  Cells are created
    lazily along each row: when a cell finishes, its right neighbour
    starts and — when [warm_start] (default [true]) and the occupancy
    grids (nearly) coincide — is seeded from its converged pmfs
    ({!Lrd_core.Solver.State.seed_from}), skipping the refinement
    ladder.  All six loss surfaces keep the buffer (nearly) constant
    along a row — mean-preserving marginal transforms leave the service
    rate fixed up to zero-clamping — so the coincidence holds by
    construction there; the check falls back to a cold start
    otherwise.

    Deterministic for every pool size: rounds are sequential, the
    frontier is a pure function of the per-cell states, and cells never
    share mutable state (the usual sweep contract).  Counters:
    [sweep/warm_starts], [sweep/iterations_saved] (conservative:
    source-minus-own iterations per warm-started cell),
    [sweep/cells_early_stopped], [sweep/schedule_rounds]; recent
    per-slice gaps land in the [sweep/gap_rel] trajectory, and
    [sweep/slice] / [sweep/warm_start] / [sweep/early_stop] trace
    events show the budget flowing to hard cells on a Perfetto
    timeline.

    [shard] slices or replays the grid ({!Shard}): a compute-mode
    handle runs only the rows its spec owns (unowned cells report
    {!Shard.absent_result}) and records the owned rows into the handle;
    a replay-mode handle short-circuits the whole evaluation to the
    merged store, never invoking [state].  Because warm-start chains
    never cross rows, each owned cell is bitwise identical to the same
    cell of the unsharded run, and [sweep/cells] counts owned cells
    only so the counter sums exactly across a shard set.
    @raise Invalid_argument when [slice <= 0], or when [shard] is
    combined with a non-uniform [policy] (contrast/budget couple cells
    across the whole surface, which a partition cannot reproduce). *)

val manifest_fields : quick:bool -> unit -> (string * Lrd_obs.Json.t) list
(** The shared parameter grids above, for a run's provenance manifest:
    [buffers_seconds], [cutoffs_seconds] (infinity as the string
    ["inf"]), [hursts], [scalings], [stream_counts]. *)

val shuffled_loss :
  Lrd_rng.Rng.t ->
  Lrd_trace.Trace.t ->
  utilization:float ->
  buffer_seconds:float ->
  block:int option ->
  float
(** Trace-driven loss rate: externally shuffles the trace with the given
    block size ([None] leaves it unshuffled), feeds it to the exact fluid
    queue with [c = mean / utilization] and [B = buffer_seconds * c],
    and returns the measured loss rate. *)

val shuffle_blocks_of_cutoffs :
  Lrd_trace.Trace.t -> float array -> (float * int option) array
(** Maps each cutoff lag to the shuffle block size [T_c / slot]
    (infinity maps to [None], i.e. the unshuffled trace); cutoffs below
    one slot are clamped to a single-sample block. *)
