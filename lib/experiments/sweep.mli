(** Parameter grids and sweep helpers shared by the figure runners.

    The grid evaluators ([surface], [psurface], [map]) optionally run on
    a {!Lrd_parallel.Pool}; [?pool:None] (the default) evaluates
    sequentially in row-major order.  Cell functions must follow the
    pool's determinism contract — no shared mutable state except
    domain-safe caches, randomness derived from the cell index via
    {!Lrd_rng.Rng.split_indexed} — so that pooled evaluation is
    bit-identical to sequential evaluation. *)

val buffers : quick:bool -> ?max_seconds:float -> unit -> float array
(** Normalized buffer sizes in seconds, log-spaced from 10 ms up to
    [max_seconds] (default 2 s) — the "up to a few seconds" range the
    paper motivates with contemporary switch buffers.  7 points (4 in
    quick mode).
    @raise Invalid_argument unless [max_seconds > 0.01] (the logspace
    lower bound; anything at or below it would silently produce a
    degenerate, non-increasing grid). *)

val cutoffs : quick:bool -> unit -> float array
(** Cutoff lags in seconds, log-spaced from 100 ms to 100 s plus
    infinity.  8 points (5 in quick mode). *)

val hursts : quick:bool -> unit -> float array
(** Hurst parameters spanning the paper's (0.55, 0.95) range. *)

val scalings : quick:bool -> unit -> float array
(** Marginal scaling factors spanning the paper's (0.5, 1.5) range. *)

val stream_counts : quick:bool -> unit -> int array
(** Numbers of superposed streams, 1 .. 10. *)

val map :
  ?pool:Lrd_parallel.Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], optionally spread across the pool; results are in index
    order either way. *)

val surface :
  ?pool:Lrd_parallel.Pool.t ->
  xs:float array ->
  ys:float array ->
  f:(x:float -> y:float -> float) ->
  unit ->
  float array array
(** [cells.(row).(col) = f ~x:xs.(col) ~y:ys.(row)]. *)

val psurface :
  ?pool:Lrd_parallel.Pool.t ->
  xs:'a array ->
  ys:'b array ->
  f:('a -> 'b -> 'c) ->
  unit ->
  'c array array
(** Polymorphic [surface] for grids whose axes are not floats (shuffled
    traces, interarrival laws, ...): [cells.(row).(col) = f xs.(col)
    ys.(row)]. *)

val cell_key : float -> string
(** Hex-exact cache key for a float grid coordinate
    ([Printf.sprintf "%h"]): injective over distinct coordinates,
    including infinity, which is what {!Lrd_core.Workload.Cache}
    requires. *)

val manifest_fields : quick:bool -> unit -> (string * Lrd_obs.Json.t) list
(** The shared parameter grids above, for a run's provenance manifest:
    [buffers_seconds], [cutoffs_seconds] (infinity as the string
    ["inf"]), [hursts], [scalings], [stream_counts]. *)

val shuffled_loss :
  Lrd_rng.Rng.t ->
  Lrd_trace.Trace.t ->
  utilization:float ->
  buffer_seconds:float ->
  block:int option ->
  float
(** Trace-driven loss rate: externally shuffles the trace with the given
    block size ([None] leaves it unshuffled), feeds it to the exact fluid
    queue with [c = mean / utilization] and [B = buffer_seconds * c],
    and returns the measured loss rate. *)

val shuffle_blocks_of_cutoffs :
  Lrd_trace.Trace.t -> float array -> (float * int option) array
(** Maps each cutoff lag to the shuffle block size [T_c / slot]
    (infinity maps to [None], i.e. the unshuffled trace); cutoffs below
    one slot are clamped to a single-sample block. *)
