(* Ablation: Markovian baselines against the LRD trace.  A DAR(1) chain
   matched to the trace's marginal and lag-1 correlation captures only
   one time constant; a multi-time-scale on/off chain (mixture of
   geometrics) matched to mean, variance and the power-law correlation
   up to the correlation horizon does much better at realistic buffers —
   the paper's Section IV point that Markov models work once they cover
   correlation up to the CH. *)

let id = "abl-markov"

let title =
  "Ablation: Markovian baselines vs LRD trace (MTV, utilization 0.8)"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let slots = Lrd_trace.Trace.length trace in
  let slot = trace.Lrd_trace.Trace.slot in
  let marginal = Data.mtv_marginal ctx in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 123L) in
  let acf = Lrd_stats.Autocorr.autocorrelation trace.Lrd_trace.Trace.rates ~max_lag:1 in
  let dar = Lrd_baselines.Dar.of_lag1 ~marginal ~lag1:(Float.max 0.0 acf.(1)) in
  let dar_trace = Lrd_baselines.Dar.generate dar rng ~slots ~slot in
  (* Multi-scale chain matched to mean/variance and the H power law over
     a horizon of ~30 s of lags. *)
  let horizon_slots = max 2 (int_of_float (30.0 /. slot)) in
  let multiscale =
    Lrd_baselines.Multiscale.fit_power_law ~mean:(Lrd_trace.Trace.mean trace)
      ~variance:(Lrd_trace.Trace.variance trace) ~hurst:Data.mtv_hurst
      ~horizon:horizon_slots ()
  in
  let ms_trace = Lrd_baselines.Multiscale.generate multiscale rng ~slots ~slot in
  (* Order-1 empirical bin chain: full marginal plus one-slot residence
     behaviour. *)
  let bin_chain = Lrd_baselines.Markov_chain.fit_from_trace ~bins:50 trace in
  let bin_trace = Lrd_baselines.Markov_chain.generate bin_chain rng ~slots ~slot in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let buffers = Sweep.buffers ~quick:(Data.quick ctx) () in
  let losses t =
    (* The traces above are generated sequentially from the shared rng;
       only the (deterministic) queue runs are spread over the pool. *)
    Sweep.map ?pool:(Data.pool ctx)
      (fun buffer_seconds ->
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c
            ~buffer:(buffer_seconds *. c) ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim t))
      buffers
  in
  Table.print_multi_series fmt ~title ~xlabel:"buffer_s" ~ylabel:"loss rate"
    ~xs:buffers
    [
      ("lrd-trace", losses trace);
      ("dar1", losses dar_trace);
      ("multiscale", losses ms_trace);
      ("bin-chain", losses bin_trace);
    ];
  Format.fprintf fmt
    "(DAR(1) lag-1 rho = %.3f; multiscale: %d on/off layers over %d-slot \
     horizon.  DAR(1) matches the full marginal but only one time \
     constant, so its loss collapses once the buffer exceeds that scale; \
     the multi-time-scale chain matches the power-law correlation but \
     only the first two moments of the marginal - its near-binomial \
     rate distribution is far lighter-tailed than the video trace's, \
     and it underestimates loss everywhere.  Both failures are the \
     paper's two findings in one table: you need the correlation up to \
     the horizon AND the marginal)@."
    (Lrd_baselines.Dar.rho dar)
    (Array.length (Lrd_baselines.Multiscale.layers multiscale))
    horizon_slots
