(* Fig. 10: loss vs (Hurst parameter, marginal scaling factor) for the
   MTV-like trace at utilization 0.8, B = 1 s, infinite cutoff.  Theta is
   matched once at the nominal H (so varying H does not also change the
   short-range structure, as the paper is careful to do).  The punchline:
   halving the marginal width dwarfs any change of H. *)

let id = "fig10"

let title =
  "Fig. 10: model loss vs (Hurst, marginal scaling) - MTV, utilization 0.8, \
   B = 1 s, cutoff = inf"

let buffer_seconds = 1.0

let surface ctx ~base_marginal ~theta ~utilization ~title
    ~(transform : Lrd_dist.Marginal.t -> float -> Lrd_dist.Marginal.t)
    ~(xs : float array) ~xlabel =
  let quick = Data.quick ctx in
  let hursts = Sweep.hursts ~quick () in
  let params = Data.solver_params ctx in
  let cells =
    (* No cross-cell cache: the model differs along both axes, so no two
       cells share a workload here.  Warm-start chains still run along
       the x axis: [Marginal.scale] and [superpose] are mean-preserving,
       so the service rate — and with it the occupancy grid — is
       bitwise constant along each Hurst row. *)
    Sweep.scheduled_surface ?pool:(Data.pool ctx)
      ~policy:(Data.gap_policy ctx) ?shard:(Data.shard ctx) ~xs ~ys:hursts
      ~state:(fun x hurst ->
        let marginal = transform base_marginal x in
        let model =
          Lrd_core.Model.of_hurst ~marginal ~hurst ~theta
            ~cutoff:Float.infinity
        in
        Lrd_core.Solver.State.create_utilization ~params model ~utilization
          ~buffer_seconds)
      ()
    |> Array.map (Array.map (fun r -> r.Lrd_core.Solver.loss))
  in
  {
    Table.title;
    xlabel;
    ylabel = "hurst";
    zlabel = "loss rate";
    xs;
    ys = hursts;
    cells;
  }

let compute ctx =
  surface ctx ~base_marginal:(Data.mtv_marginal ctx) ~theta:(Data.mtv_theta ctx)
    ~utilization:Data.mtv_utilization ~title
    ~transform:(fun m a -> Lrd_dist.Marginal.scale ~clamp:true m ~factor:a)
    ~xs:(Sweep.scalings ~quick:(Data.quick ctx) ())
    ~xlabel:"scaling"

let run ctx fmt = Table.print_surface fmt (compute ctx)
